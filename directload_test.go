package directload_test

// Integration tests exercising the public facade exactly as a downstream
// user would: open stores, run the pipeline, crash and recover, and swap
// the baseline engine in.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"directload"
)

func TestFacadeStoreLifecycle(t *testing.T) {
	flash, err := directload.NewFlash(128 << 20)
	if err != nil {
		t.Fatal(err)
	}
	db, err := directload.OpenStoreOn(flash, directload.DefaultStoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put([]byte("k"), 1, []byte("v1"), false); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put([]byte("k"), 2, nil, true); err != nil {
		t.Fatal(err)
	}
	val, _, err := db.Get([]byte("k"), 2)
	if err != nil || string(val) != "v1" {
		t.Fatalf("dedup Get = %q, %v", val, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash/recover cycle through the facade.
	db2, err := directload.OpenStoreOn(flash, directload.DefaultStoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	val, _, err = db2.Get([]byte("k"), 2)
	if err != nil || string(val) != "v1" {
		t.Fatalf("Get after recovery = %q, %v", val, err)
	}
	if _, _, err := db2.Get([]byte("k"), 9); !errors.Is(err, directload.ErrNotFound) {
		t.Fatalf("sentinel error not exported properly: %v", err)
	}
}

func TestFacadeLSMBaseline(t *testing.T) {
	db, err := directload.OpenLSMStore(128<<20, directload.DefaultLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Put([]byte("k"), 1, []byte("v"), false); err != nil {
		t.Fatal(err)
	}
	val, _, err := db.Get([]byte("k"), 1)
	if err != nil || string(val) != "v" {
		t.Fatalf("LSM Get = %q, %v", val, err)
	}
}

func TestFacadeSystemPipeline(t *testing.T) {
	cfg := directload.DefaultSystemConfig()
	cfg.Mint.NodeCapacity = 64 << 20
	sys, err := directload.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	gen, err := directload.NewGenerator(directload.GeneratorConfig{
		Keys: 50, ValueSize: 2048, DupRatio: 0.7, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 2; v++ {
		var entries []directload.SystemEntry
		gen.NextVersion(func(e directload.WorkloadEntry) error {
			entries = append(entries, directload.SystemEntry{
				Key: e.Key, Value: e.Value, Stream: directload.StreamInverted,
			})
			return nil
		})
		rep, err := sys.PublishVersion(v, entries)
		if err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
		if rep.Keys != 50 {
			t.Fatalf("report keys = %d", rep.Keys)
		}
	}
	if err := sys.ActivateEverywhere(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i += 7 {
		val, _, err := sys.Get(sys.Top.Regions[0].DCs[1], gen.Key(i))
		if err != nil {
			t.Fatalf("Get key %d: %v", i, err)
		}
		if !bytes.Equal(val, gen.Value(i)) {
			t.Fatalf("value mismatch for key %d", i)
		}
	}
}

func TestFacadeIndexHelpers(t *testing.T) {
	crawler, err := directload.NewCrawler(directload.CrawlConfig{
		Documents: 50, VIPRatio: 0.1, VocabSize: 200,
		DocTerms: 20, MutateProb: 0.3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := crawler.Crawl()
	fwd := directload.BuildForward(docs)
	inv := directload.BuildInverted(fwd)
	sum := directload.BuildSummary(docs, 4)
	if len(fwd) != 50 || len(sum) != 50 || len(inv) == 0 {
		t.Fatalf("index sizes: fwd=%d inv=%d sum=%d", len(fwd), len(inv), len(sum))
	}
	urls := directload.DecodeURLList(directload.EncodeURLList(inv[0].URLs))
	if len(urls) != len(inv[0].URLs) {
		t.Fatal("URL list codec mismatch")
	}
	invMap := map[string][]string{}
	for _, e := range inv {
		invMap[e.Term] = e.URLs
	}
	sumMap := map[string]string{}
	for _, e := range sum {
		sumMap[e.URL] = e.Abstract
	}
	res := directload.Search([]string{docs[0].Terms[0]},
		func(t string) ([]string, bool) { u, ok := invMap[t]; return u, ok },
		func(u string) (string, bool) { a, ok := sumMap[u]; return a, ok },
		5)
	if len(res) == 0 {
		t.Fatal("Search returned nothing")
	}
}

func TestFacadeDeduper(t *testing.T) {
	d := directload.NewDeduper()
	d.Process([]byte("k"), []byte("same"))
	d.AdvanceVersion()
	if !d.Process([]byte("k"), []byte("same")) {
		t.Fatal("unchanged value should dedup")
	}
}

func TestFacadeMintCluster(t *testing.T) {
	cfg := directload.DefaultMintConfig()
	cfg.NodeCapacity = 32 << 20
	cfg.Groups = 2
	cfg.NodesPerGroup = 3
	c, err := directload.NewMintCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 20; i++ {
		if _, err := c.Put([]byte(fmt.Sprintf("k%02d", i)), 1, []byte("v"), false); err != nil {
			t.Fatal(err)
		}
	}
	if val, _, err := c.Get([]byte("k07"), 1); err != nil || string(val) != "v" {
		t.Fatalf("cluster Get = %q, %v", val, err)
	}
}
