package main

import (
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
goarch: amd64
BenchmarkPut20KB-8         	      50	     33544 ns/op	   20560 B/op	      10 allocs/op
BenchmarkGet20KB-8         	      50	     12000 ns/op	   20608 B/op	       4 allocs/op
BenchmarkRESPPipelined-8   	   20000	      1500 ns/op	     120 B/op	       3 allocs/op	  666666 ops/s
PASS
ok  	directload/internal/core	2.1s
`

func parseSample(t *testing.T, text string) map[string]*result {
	t.Helper()
	results, order, err := parseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(order) {
		t.Fatalf("results %d vs order %d", len(results), len(order))
	}
	return results
}

func TestParseBench(t *testing.T) {
	results := parseSample(t, sampleBench)
	if len(results) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(results))
	}
	put := results["Put20KB"]
	if put == nil || put.NsPerOp != 33544 || put.Iterations != 50 {
		t.Fatalf("Put20KB = %+v", put)
	}
	if put.AllocsPerOp == nil || *put.AllocsPerOp != 10 {
		t.Fatalf("Put20KB allocs = %+v", put.AllocsPerOp)
	}
	if resp := results["RESPPipelined"]; len(resp.Extra) != 1 || resp.Extra[0] != "666666 ops/s" {
		t.Fatalf("custom unit not carried: %+v", resp.Extra)
	}
}

func TestParseBenchMinOfRepeats(t *testing.T) {
	results := parseSample(t, `
BenchmarkPut20KB-8   	      50	     40000 ns/op	   20560 B/op	      12 allocs/op
BenchmarkPut20KB-8   	      50	     33000 ns/op	   20560 B/op	      10 allocs/op
BenchmarkPut20KB-8   	      50	     39000 ns/op	   20560 B/op	      11 allocs/op
`)
	put := results["Put20KB"]
	if put.NsPerOp != 33000 {
		t.Fatalf("ns/op = %v, want the fastest of the -count repeats (33000)", put.NsPerOp)
	}
	if put.AllocsPerOp == nil || *put.AllocsPerOp != 10 {
		t.Fatalf("allocs/op = %+v, want the fastest repeat's 10", put.AllocsPerOp)
	}
}

// mutate returns a copy of the baseline with one benchmark's figures
// scaled — the synthetic regression injector for the gate tests.
func mutate(t *testing.T, name string, nsScale, allocScale float64) (baseline, current map[string]*result) {
	t.Helper()
	baseline = parseSample(t, sampleBench)
	current = parseSample(t, sampleBench)
	r := current[name]
	if r == nil {
		t.Fatalf("no benchmark %q in sample", name)
	}
	r.NsPerOp *= nsScale
	if r.AllocsPerOp != nil {
		a := *r.AllocsPerOp * allocScale
		r.AllocsPerOp = &a
	}
	return baseline, current
}

func TestCompareCleanTreePasses(t *testing.T) {
	baseline, current := mutate(t, "Put20KB", 1.0, 1.0)
	var out strings.Builder
	if fails := compareResults(&out, baseline, current, nil, 0.15, 0.10, false); len(fails) != 0 {
		t.Fatalf("identical results failed the gate: %v\n%s", fails, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("no ok lines:\n%s", out.String())
	}
}

func TestCompareFailsOnDoubledAllocs(t *testing.T) {
	// The acceptance scenario: a synthetic 2x allocs/op regression on one
	// benchmark must fail the gate even with ns/op unchanged.
	baseline, current := mutate(t, "Put20KB", 1.0, 2.0)
	var out strings.Builder
	fails := compareResults(&out, baseline, current, nil, 0.15, 0.10, false)
	if len(fails) != 1 || fails[0] != "Put20KB" {
		t.Fatalf("fails = %v, want [Put20KB]\n%s", fails, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("missing REGRESSED marker:\n%s", out.String())
	}
}

func TestCompareFailsOnSlowdown(t *testing.T) {
	baseline, current := mutate(t, "Get20KB", 1.30, 1.0) // +30% ns/op > 15% slack
	var out strings.Builder
	if fails := compareResults(&out, baseline, current, nil, 0.15, 0.10, false); len(fails) != 1 {
		t.Fatalf("fails = %v, want exactly Get20KB\n%s", fails, out.String())
	}
}

func TestCompareWithinSlackPasses(t *testing.T) {
	baseline, current := mutate(t, "Get20KB", 1.10, 1.05) // under both thresholds
	var out strings.Builder
	if fails := compareResults(&out, baseline, current, nil, 0.15, 0.10, false); len(fails) != 0 {
		t.Fatalf("within-slack drift failed the gate: %v\n%s", fails, out.String())
	}
}

func TestCompareAllowlist(t *testing.T) {
	baseline, current := mutate(t, "Put20KB", 2.0, 2.0)
	var out strings.Builder
	fails := compareResults(&out, baseline, current, map[string]bool{"Put20KB": true}, 0.15, 0.10, false)
	if len(fails) != 0 {
		t.Fatalf("allowlisted regression still failed the gate: %v", fails)
	}
	if !strings.Contains(out.String(), "allowed") {
		t.Fatalf("allowlisted regression not reported:\n%s", out.String())
	}
}

func TestCompareDisjointSetsNotFatal(t *testing.T) {
	baseline, current := mutate(t, "Put20KB", 1.0, 1.0)
	delete(baseline, "Put20KB")      // new benchmark: no baseline yet
	delete(current, "RESPPipelined") // baseline covers a suite this run skipped
	var out strings.Builder
	if fails := compareResults(&out, baseline, current, nil, 0.15, 0.10, false); len(fails) != 0 {
		t.Fatalf("disjoint sets failed the gate: %v\n%s", fails, out.String())
	}
	if !strings.Contains(out.String(), "no baseline") || !strings.Contains(out.String(), "only in baseline") {
		t.Fatalf("missing one-sided markers:\n%s", out.String())
	}
}

func TestCompareSlackWidensToRepeatSpread(t *testing.T) {
	// Noisy machine: this run's own repeats of Put20KB disagree by 60%,
	// so a +30% delta over baseline is not distinguishable from jitter.
	baseline := parseSample(t, sampleBench)
	current := parseSample(t, `
BenchmarkPut20KB-8   	      50	     43600 ns/op	   20560 B/op	      10 allocs/op
BenchmarkPut20KB-8   	      50	     69000 ns/op	   20560 B/op	      10 allocs/op
`)
	if spread := current["Put20KB"].nsSpread; spread < 0.55 || spread > 0.65 {
		t.Fatalf("nsSpread = %v, want ~0.58", spread)
	}
	var out strings.Builder
	if fails := compareResults(&out, baseline, current, nil, 0.15, 0.10, false); len(fails) != 0 {
		t.Fatalf("within-spread drift failed the gate: %v\n%s", fails, out.String())
	}
	if !strings.Contains(out.String(), "within repeat spread") {
		t.Fatalf("widened slack not reported:\n%s", out.String())
	}

	// Quiet machine, same +30% delta: tight repeats, so the 15% gate holds.
	current = parseSample(t, `
BenchmarkPut20KB-8   	      50	     43600 ns/op	   20560 B/op	      10 allocs/op
BenchmarkPut20KB-8   	      50	     44100 ns/op	   20560 B/op	      10 allocs/op
`)
	out.Reset()
	if fails := compareResults(&out, baseline, current, nil, 0.15, 0.10, false); len(fails) != 1 {
		t.Fatalf("tight-spread regression passed the gate: %v\n%s", fails, out.String())
	}
}

func TestCompareSpreadNeverWidensAllocGate(t *testing.T) {
	// The alloc gate is deterministic and must fail a 2x regression no
	// matter how noisy the wall clock was.
	baseline := parseSample(t, sampleBench)
	current := parseSample(t, `
BenchmarkPut20KB-8   	      50	     33000 ns/op	   20560 B/op	      20 allocs/op
BenchmarkPut20KB-8   	      50	     66000 ns/op	   20560 B/op	      20 allocs/op
`)
	var out strings.Builder
	fails := compareResults(&out, baseline, current, nil, 0.15, 0.10, false)
	if len(fails) != 1 || fails[0] != "Put20KB" {
		t.Fatalf("doubled allocs passed on a noisy machine: %v\n%s", fails, out.String())
	}
}

func TestCompareCIAnnotation(t *testing.T) {
	baseline, current := mutate(t, "Put20KB", 1.0, 2.0)
	var out strings.Builder
	compareResults(&out, baseline, current, nil, 0.15, 0.10, true)
	if !strings.Contains(out.String(), "::warning::benchmark Put20KB") {
		t.Fatalf("missing GitHub annotation:\n%s", out.String())
	}
}
