// Command benchjson converts `go test -bench -benchmem` text output on
// stdin into a JSON report on stdout, keyed by benchmark name:
//
//	go test -run xxx -bench . -benchmem ./internal/core/ | benchjson > BENCH.json
//
// Each entry carries ops/s (derived from ns/op), ns/op, B/op and
// allocs/op where the run reported them. The `-cpu` suffix goroutine
// counts (`BenchmarkPut-8`) are stripped so the keys stay stable across
// machines; non-benchmark lines (PASS, ok, warm-up chatter) are
// ignored. Used by `make bench-json` to produce BENCH_directload.json
// from the engine, remote-publish and fleet (quorum-write / hedged-read)
// benchmark suites; custom ReportMetric units like puts/s and gets/s
// ride along in `extra`.
//
// With -history set, one {git_sha, ts, results} line is also appended
// to the given JSONL file, so successive runs accumulate a time series
// regression trackers can diff (-sha labels the line; default
// "unknown").
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// result is one benchmark's parsed figures. Fields the run did not
// report (e.g. allocs without -benchmem) are omitted from the JSON.
type result struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	OpsPerSec   float64  `json:"ops_per_sec"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	Extra       []string `json:"extra,omitempty"` // custom ReportMetric units
}

// benchLine matches "BenchmarkName-8   100   12345 ns/op   ..." with
// the -cpu suffix optional.
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

var (
	historyPath = flag.String("history", "", "append one {git_sha, ts, results} line to this JSONL file (empty = off)")
	gitSHA      = flag.String("sha", "unknown", "commit label stamped onto the -history line")
)

func main() {
	flag.Parse()
	results := make(map[string]*result)
	var order []string

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := &result{Iterations: iters}
		// The tail is value/unit pairs: "12345 ns/op 20480 B/op 3 allocs/op".
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
				if v > 0 {
					r.OpsPerSec = 1e9 / v
				}
			case "B/op":
				b := v
				r.BytesPerOp = &b
			case "allocs/op":
				a := v
				r.AllocsPerOp = &a
			default:
				r.Extra = append(r.Extra, fields[i]+" "+unit)
			}
		}
		if _, seen := results[name]; !seen {
			order = append(order, name)
		}
		results[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	// Emit in first-seen order for stable diffs.
	var buf strings.Builder
	buf.WriteString("{\n")
	for i, name := range order {
		body, err := json.Marshal(results[name])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(&buf, "  %q: %s", name, body)
		if i < len(order)-1 {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
	}
	buf.WriteString("}\n")
	os.Stdout.WriteString(buf.String())

	if *historyPath != "" {
		if err := appendHistory(*historyPath, *gitSHA, order, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// historyLine is one appended record of the benchmark history file:
// which commit, when, and every parsed result.
type historyLine struct {
	GitSHA  string             `json:"git_sha"`
	TS      time.Time          `json:"ts"`
	Results map[string]*result `json:"results"`
}

// appendHistory adds one JSONL line to path; append-only so successive
// CI runs extend the series rather than replacing it.
func appendHistory(path, sha string, order []string, results map[string]*result) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	line, err := json.Marshal(historyLine{GitSHA: sha, TS: time.Now().UTC(), Results: results})
	if err != nil {
		_ = f.Close() // the marshal error is the one worth reporting
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended %d results for %s to %s\n", len(order), sha, path)
	return nil
}
