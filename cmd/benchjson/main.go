// Command benchjson converts `go test -bench -benchmem` text output on
// stdin into a JSON report on stdout, keyed by benchmark name:
//
//	go test -run xxx -bench . -benchmem ./internal/core/ | benchjson > BENCH.json
//
// Each entry carries ops/s (derived from ns/op), ns/op, B/op and
// allocs/op where the run reported them. The `-cpu` suffix goroutine
// counts (`BenchmarkPut-8`) are stripped so the keys stay stable across
// machines; non-benchmark lines (PASS, ok, warm-up chatter) are
// ignored. `-count N` repeats of one benchmark collapse to the fastest
// repeat — the noise floor is the figure worth tracking. Used by `make bench-json` to produce BENCH_directload.json
// from the engine, remote-publish and fleet (quorum-write / hedged-read)
// benchmark suites; custom ReportMetric units like puts/s and gets/s
// ride along in `extra`.
//
// With -history set, one {git_sha, ts, results} line is also appended
// to the given JSONL file, so successive runs accumulate a time series
// regression trackers can diff (-sha labels the line; default
// "unknown").
//
// With -compare set, the freshly parsed results are diffed against a
// baseline report (a previous stdout of this command) instead of being
// re-emitted: the exit status is 1 when any benchmark's ns/op regressed
// more than -ns-slack (default 15%) or its allocs/op more than
// -allocs-slack (default 10%) over the baseline. The ns/op slack widens
// per benchmark to the spread of the current run's own -count repeats:
// on a machine whose back-to-back repeats disagree by 40%, a 15%
// wall-clock verdict would only measure the machine. allocs/op is
// deterministic, so its threshold never widens. -allow exempts a
// comma-separated list of benchmark names from the gate (still
// reported, never fatal) for known-noisy or intentionally changed
// paths. Under GitHub Actions (GITHUB_ACTIONS set) each regression also
// prints a ::warning:: annotation line. Used by `make bench-compare`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// result is one benchmark's parsed figures. Fields the run did not
// report (e.g. allocs without -benchmem) are omitted from the JSON.
type result struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	OpsPerSec   float64  `json:"ops_per_sec"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	Extra       []string `json:"extra,omitempty"` // custom ReportMetric units

	// nsSpread is (max-min)/min ns/op across this run's -count repeats:
	// how noisy the measuring environment was for this benchmark. Not
	// part of the report (unexported); -compare widens its ns/op slack
	// to at least the observed spread, since a gate tighter than the
	// machine's own jitter only measures the machine.
	nsSpread float64
}

// benchLine matches "BenchmarkName-8   100   12345 ns/op   ..." with
// the -cpu suffix optional.
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

var (
	historyPath = flag.String("history", "", "append one {git_sha, ts, results} line to this JSONL file (empty = off)")
	gitSHA      = flag.String("sha", "unknown", "commit label stamped onto the -history line")
	comparePath = flag.String("compare", "", "diff parsed results against this baseline JSON report; exit 1 on regression")
	allowNames  = flag.String("allow", "", "comma-separated benchmark names the -compare gate reports but never fails on")
	nsSlack     = flag.Float64("ns-slack", 0.15, "fractional ns/op regression tolerated by -compare")
	allocsSlack = flag.Float64("allocs-slack", 0.10, "fractional allocs/op regression tolerated by -compare")
)

// parseBench reads `go test -bench` text and returns the parsed results
// plus the first-seen name order (for stable output diffs).
func parseBench(r io.Reader) (map[string]*result, []string, error) {
	results := make(map[string]*result)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := &result{Iterations: iters}
		// The tail is value/unit pairs: "12345 ns/op 20480 B/op 3 allocs/op".
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
				if v > 0 {
					r.OpsPerSec = 1e9 / v
				}
			case "B/op":
				b := v
				r.BytesPerOp = &b
			case "allocs/op":
				a := v
				r.AllocsPerOp = &a
			default:
				r.Extra = append(r.Extra, fields[i]+" "+unit)
			}
		}
		// Repeated names come from `-count N` runs: keep the fastest
		// repeat. The minimum estimates the noise floor, which is the
		// stable figure to diff across commits — a genuine regression
		// slows every repeat, scheduler noise only some.
		if prev, seen := results[name]; !seen {
			order = append(order, name)
			results[name] = r
		} else {
			min, max := prev.NsPerOp, prev.NsPerOp*(1+prev.nsSpread)
			if r.NsPerOp < min {
				r.nsSpread = prev.nsSpread
				results[name] = r
				min = r.NsPerOp
			}
			if r.NsPerOp > max {
				max = r.NsPerOp
			}
			if min > 0 {
				results[name].nsSpread = (max - min) / min
			}
		}
	}
	return results, order, sc.Err()
}

func main() {
	flag.Parse()
	results, order, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *comparePath != "" {
		baseline, err := loadBaseline(*comparePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		allow := make(map[string]bool)
		for _, n := range strings.Split(*allowNames, ",") {
			if n = strings.TrimSpace(n); n != "" {
				allow[strings.TrimPrefix(n, "Benchmark")] = true
			}
		}
		failures := compareResults(os.Stdout, baseline, results, allow,
			*nsSlack, *allocsSlack, os.Getenv("GITHUB_ACTIONS") != "")
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed past the gate: %s\n",
				len(failures), strings.Join(failures, ", "))
			os.Exit(1)
		}
		return
	}

	// Emit in first-seen order for stable diffs.
	var buf strings.Builder
	buf.WriteString("{\n")
	for i, name := range order {
		body, err := json.Marshal(results[name])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(&buf, "  %q: %s", name, body)
		if i < len(order)-1 {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
	}
	buf.WriteString("}\n")
	os.Stdout.WriteString(buf.String())

	if *historyPath != "" {
		if err := appendHistory(*historyPath, *gitSHA, order, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// loadBaseline reads a previous JSON report (this command's stdout
// format: name -> result object).
func loadBaseline(path string) (map[string]*result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	baseline := make(map[string]*result)
	if err := json.Unmarshal(data, &baseline); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return baseline, nil
}

// compareResults diffs current against baseline and writes one line per
// shared benchmark. It returns the names that regressed past a slack
// threshold and are not allowlisted. Benchmarks present on only one
// side are reported but never fatal: new benchmarks have no baseline,
// and the baseline may cover suites this run skipped. When annotate is
// set (CI), each gate failure also prints a ::warning:: line GitHub
// renders on the workflow summary.
func compareResults(w io.Writer, baseline, current map[string]*result, allow map[string]bool, nsSlack, allocsSlack float64, annotate bool) []string {
	var names []string
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	for _, name := range names {
		cur := current[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Fprintf(w, "%-48s no baseline (new benchmark)\n", name)
			continue
		}
		// A machine whose own -count repeats disagree by 40% cannot
		// support a 15% wall-clock verdict: widen this benchmark's
		// slack to the spread the current run measured. A genuine
		// regression slows every repeat, so the floor still moves.
		effSlack := nsSlack
		if cur.nsSpread > effSlack {
			effSlack = cur.nsSpread
		}
		var bad []string
		line := fmt.Sprintf("%-48s ns/op %.0f -> %.0f (%+.1f%%)",
			name, base.NsPerOp, cur.NsPerOp, pctDelta(base.NsPerOp, cur.NsPerOp)*100)
		if base.NsPerOp > 0 && pctDelta(base.NsPerOp, cur.NsPerOp) > effSlack {
			bad = append(bad, fmt.Sprintf("ns/op +%.1f%% > %.0f%%",
				pctDelta(base.NsPerOp, cur.NsPerOp)*100, effSlack*100))
		} else if effSlack > nsSlack && pctDelta(base.NsPerOp, cur.NsPerOp) > nsSlack {
			line += fmt.Sprintf(" [within repeat spread %.0f%%]", effSlack*100)
		}
		if base.AllocsPerOp != nil && cur.AllocsPerOp != nil {
			line += fmt.Sprintf(", allocs/op %.0f -> %.0f (%+.1f%%)",
				*base.AllocsPerOp, *cur.AllocsPerOp, pctDelta(*base.AllocsPerOp, *cur.AllocsPerOp)*100)
			if *base.AllocsPerOp > 0 && pctDelta(*base.AllocsPerOp, *cur.AllocsPerOp) > allocsSlack {
				bad = append(bad, fmt.Sprintf("allocs/op +%.1f%% > %.0f%%",
					pctDelta(*base.AllocsPerOp, *cur.AllocsPerOp)*100, allocsSlack*100))
			}
		}
		switch {
		case len(bad) == 0:
			fmt.Fprintf(w, "%s ok\n", line)
		case allow[name]:
			fmt.Fprintf(w, "%s REGRESSED (allowed: %s)\n", line, strings.Join(bad, "; "))
		default:
			fmt.Fprintf(w, "%s REGRESSED (%s)\n", line, strings.Join(bad, "; "))
			if annotate {
				fmt.Fprintf(w, "::warning::benchmark %s regressed: %s\n", name, strings.Join(bad, "; "))
			}
			failures = append(failures, name)
		}
	}
	for name := range baseline {
		if _, ok := current[name]; !ok {
			fmt.Fprintf(w, "%-48s only in baseline (not run)\n", name)
		}
	}
	return failures
}

// pctDelta is (cur-base)/base; positive means cur is worse (slower,
// more allocations). Zero baselines compare as unchanged.
func pctDelta(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base
}

// historyLine is one appended record of the benchmark history file:
// which commit, when, and every parsed result.
type historyLine struct {
	GitSHA  string             `json:"git_sha"`
	TS      time.Time          `json:"ts"`
	Results map[string]*result `json:"results"`
}

// appendHistory adds one JSONL line to path; append-only so successive
// CI runs extend the series rather than replacing it.
func appendHistory(path, sha string, order []string, results map[string]*result) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	line, err := json.Marshal(historyLine{GitSHA: sha, TS: time.Now().UTC(), Results: results})
	if err != nil {
		_ = f.Close() // the marshal error is the one worth reporting
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended %d results for %s to %s\n", len(order), sha, path)
	return nil
}
