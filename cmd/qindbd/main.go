// Command qindbd runs a standalone QinDB storage node over TCP — the
// network face a Mint storage node presents inside a data center. The
// engine persists to a simulated SSD (the process's memory), which makes
// the daemon useful for protocol integration and load testing rather
// than durable storage.
//
//	go run ./cmd/qindbd -addr 127.0.0.1:7707 -capacity 1073741824
//
// Interact with it through internal/server.Client, e.g.:
//
//	cl, _ := server.Dial("127.0.0.1:7707", server.WithTimeout(2*time.Second))
//	cl.PutContext(ctx, []byte("k"), 1, []byte("v"), false)
//
// Clients negotiate protocol v2 automatically and may pipeline or batch
// requests; -max-inflight bounds how many the server dispatches
// concurrently per connection.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/metrics"
	"directload/internal/server"
	"directload/internal/ssd"
)

var (
	addr         = flag.String("addr", "127.0.0.1:7707", "listen address")
	capacity     = flag.Int64("capacity", 1<<30, "simulated SSD capacity in bytes")
	aofSize      = flag.Int64("aof", 64<<20, "AOF file size in bytes (paper: 64 MB)")
	gcThresh     = flag.Float64("gc", 0.25, "lazy GC occupancy threshold (paper: 0.25)")
	ckpt         = flag.Int64("checkpoint", 256<<20, "auto-checkpoint every N bytes (0 = off)")
	metricsAddr  = flag.String("metrics-addr", "", "HTTP address for /metrics and /debug/trace (empty = off)")
	maxInFlight  = flag.Int("max-inflight", 0, "concurrent requests dispatched per v2 connection (0 = default)")
	readTimeout  = flag.Duration("read-timeout", 0, "per-frame read deadline, doubles as idle timeout (0 = none)")
	writeTimeout = flag.Duration("write-timeout", 0, "per-frame write deadline (0 = none)")
)

// serveMetricsHTTP exposes the registry over HTTP: /metrics renders the
// expvar-style text dump (or JSON with ?format=json), /debug/trace the
// recent span ring.
func serveMetricsHTTP(httpAddr string, reg *metrics.Registry) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			payload, err := reg.MarshalJSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Write(payload)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.WriteTo(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.Tracer().WriteTo(w)
	})
	log.Printf("qindbd: metrics on http://%s/metrics", httpAddr)
	if err := http.ListenAndServe(httpAddr, mux); err != nil {
		log.Printf("qindbd: metrics server: %v", err)
	}
}

func main() {
	log.SetFlags(log.LstdFlags)
	flag.Parse()

	reg := metrics.NewRegistry()
	dev, err := ssd.NewDevice(ssd.DefaultConfig(*capacity))
	if err != nil {
		log.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF:                  aof.Config{FileSize: *aofSize, GCThreshold: *gcThresh},
		CheckpointEveryBytes: *ckpt,
		Seed:                 1,
		Metrics:              reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	s := server.New(db)
	s.SetMetrics(reg)
	if *maxInFlight > 0 {
		s.SetMaxInFlight(*maxInFlight)
	}
	s.SetTimeouts(*readTimeout, *writeTimeout)
	if *metricsAddr != "" {
		go serveMetricsHTTP(*metricsAddr, reg)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		log.Println("shutting down")
		s.Close()
	}()
	log.Printf("qindbd: serving on %s (capacity %d MB, AOF %d MB, GC threshold %.2f)",
		*addr, *capacity>>20, *aofSize>>20, *gcThresh)
	if err := s.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	log.Printf("qindbd: stopped after %d puts / %d gets, %d MB user writes",
		st.Puts, st.Gets, st.UserWriteBytes>>20)
}
