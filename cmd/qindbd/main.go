// Command qindbd runs a standalone QinDB storage node over TCP — the
// network face a Mint storage node presents inside a data center. The
// engine persists to a simulated SSD (the process's memory), which makes
// the daemon useful for protocol integration and load testing rather
// than durable storage.
//
//	go run ./cmd/qindbd -addr 127.0.0.1:7707 -capacity 1073741824
//
// Interact with it through internal/server.Client, e.g.:
//
//	cl, _ := server.Dial("127.0.0.1:7707", server.WithTimeout(2*time.Second))
//	cl.PutContext(ctx, []byte("k"), 1, []byte("v"), false)
//
// Clients negotiate protocol v2 automatically and may pipeline or batch
// requests; -max-inflight bounds how many the server dispatches
// concurrently per connection.
//
// With -resp-addr set the daemon additionally serves the same engine
// over RESP2 (the Redis protocol), so redis-cli and off-the-shelf Redis
// clients work out of the box:
//
//	go run ./cmd/qindbd -addr 127.0.0.1:7707 -resp-addr 127.0.0.1:6379
//	redis-cli -p 6379 SET greeting hello
//
// Both listeners share one server.Backend — one engine, one set of
// server.* metrics, one slowlog, one trace timeline.
//
// With -metrics-addr set the daemon exposes the operator endpoints of
// internal/ops: /metrics (text, ?format=json, ?format=prom), /slo,
// /events, /healthz, /readyz, /debug/trace, /debug/trace/export,
// /debug/slowlog, /debug/attrib (per-op resource attribution, see
// -attr-sample), /index (the inverted-index lifecycle of
// internal/search: create, ingest, query, CIFF export/import — index
// segments are versioned values in the same engine the KV front doors
// serve), and (with -pprof) the runtime profiler under
// /debug/pprof/ plus windowed delta captures at /debug/profile. Go
// runtime telemetry (heap, GC, goroutines) is sampled every
// -runtime-interval and exported as runtime.* gauges. With -record set
// it appends one JSONL snapshot of {slo, throughput, p99, runtime,
// events} per -record-interval to the given file — the artifact a
// chaos run or canary deploy is judged against. With -profile-on-burn
// set, an SLO burn crossing triggers one bounded heap+cpu profile
// capture into the given directory (10-minute cooldown).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/metrics"
	"directload/internal/ops"
	"directload/internal/resp"
	"directload/internal/search"
	"directload/internal/server"
	"directload/internal/ssd"
)

var (
	addr          = flag.String("addr", "127.0.0.1:7707", "listen address")
	respAddr      = flag.String("resp-addr", "", "Redis-compatible (RESP2) listen address (empty = off)")
	capacity      = flag.Int64("capacity", 1<<30, "simulated SSD capacity in bytes")
	aofSize       = flag.Int64("aof", 64<<20, "AOF file size in bytes (paper: 64 MB)")
	gcThresh      = flag.Float64("gc", 0.25, "lazy GC occupancy threshold (paper: 0.25)")
	ckpt          = flag.Int64("checkpoint", 256<<20, "auto-checkpoint every N bytes (0 = off)")
	metricsAddr   = flag.String("metrics-addr", "", "HTTP address for the operator endpoints (empty = off)")
	pprofOn       = flag.Bool("pprof", false, "mount /debug/pprof/* on the metrics address")
	slowThresh    = flag.Duration("slowlog-threshold", 10*time.Millisecond, "record ops at or above this latency in /debug/slowlog (0 = off)")
	slowCap       = flag.Int("slowlog-cap", 0, "slow-op entries retained (0 = default 256)")
	memHighWater  = flag.Int64("memtable-highwater", 0, "report not-ready once the memtable exceeds this many bytes (0 = no check)")
	maxInFlight   = flag.Int("max-inflight", 0, "concurrent requests dispatched per v2 connection (0 = default)")
	readTimeout   = flag.Duration("read-timeout", 0, "per-frame read deadline, doubles as idle timeout (0 = none)")
	writeTimeout  = flag.Duration("write-timeout", 0, "per-frame write deadline (0 = none)")
	shutdownGrace = flag.Duration("shutdown-grace", 3*time.Second, "deadline for draining the metrics HTTP server on shutdown")
	nodeID        = flag.String("node-id", "", "node name stamped onto exported trace spans (default: the listen address)")
	sloReadTarget = flag.Float64("slo-read-target", 0.006, "tolerated get-miss ratio for the read SLO (paper: 0.006; 0 = off)")
	eventsCap     = flag.Int("events-cap", 0, "structured events retained for /events (0 = default 1024)")
	recordPath    = flag.String("record", "", "append periodic {ts, slo, throughput, p99} JSONL snapshots to this file (empty = off)")
	recordEvery   = flag.Duration("record-interval", time.Second, "snapshot cadence for -record")
	attrSample    = flag.Int("attr-sample", 64, "measure one request in N for per-op resource attribution on /debug/attrib (0 = off)")
	runtimeEvery  = flag.Duration("runtime-interval", time.Second, "Go runtime telemetry sampling cadence for the runtime.* gauges (0 = off)")
	profileOnBurn = flag.String("profile-on-burn", "", "capture heap+cpu profiles into this directory when the read SLO starts burning (empty = off)")
)

// coreEngine adapts the storage engine to the search store's
// exact-version KV surface; index chunks become ordinary versioned
// engine values (dedup off: postings chunks change every version).
type coreEngine struct {
	db *core.DB
}

func (e coreEngine) Put(key string, version uint64, value []byte) error {
	_, err := e.db.Put([]byte(key), version, value, false)
	return err
}

func (e coreEngine) Get(key string, version uint64) ([]byte, error) {
	v, _, err := e.db.Get([]byte(key), version)
	return v, err
}

// readiness builds the /readyz check: the engine must be open, the AOF
// store not under space pressure, and the memtable below the high-water
// mark (when one is configured).
func readiness(db *core.DB, highWater int64) func() error {
	return func() error {
		h := db.Health()
		switch {
		case h.Closed:
			return fmt.Errorf("engine closed")
		case h.UnderPressure:
			return fmt.Errorf("aof store under space pressure")
		case highWater > 0 && h.MemtableBytes > highWater:
			return fmt.Errorf("memtable %d bytes over high-water %d", h.MemtableBytes, highWater)
		}
		return nil
	}
}

func main() {
	log.SetFlags(log.LstdFlags)
	flag.Parse()

	reg := metrics.NewRegistry()
	dev, err := ssd.NewDevice(ssd.DefaultConfig(*capacity))
	if err != nil {
		log.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF:                  aof.Config{FileSize: *aofSize, GCThreshold: *gcThresh},
		CheckpointEveryBytes: *ckpt,
		Seed:                 1,
		Metrics:              reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	slow := metrics.NewSlowLog(*slowCap, *slowThresh)
	events := metrics.NewEventLog(*eventsCap)
	var readSLO *metrics.SLO
	if *sloReadTarget > 0 {
		readSLO = metrics.NewSLO(metrics.SLOConfig{
			Name:   "node.read",
			Target: *sloReadTarget,
			Events: events,
		})
		readSLO.Register(reg)
	}
	s := server.New(db)
	s.SetMetrics(reg)
	s.SetSlowLog(slow)
	s.SetReadSLO(readSLO)
	if *attrSample > 0 {
		// Sampled per-op resource attribution across every front door,
		// served at /debug/attrib on the metrics address.
		s.SetAttribution(*attrSample)
	}
	var runtimeSampler *metrics.RuntimeSampler
	if *runtimeEvery > 0 {
		runtimeSampler = metrics.NewRuntimeSampler(metrics.RuntimeSamplerConfig{Interval: *runtimeEvery})
		runtimeSampler.Register(reg)
		runtimeSampler.Start()
		defer runtimeSampler.Close()
	}
	if *maxInFlight > 0 {
		s.SetMaxInFlight(*maxInFlight)
	}
	s.SetTimeouts(*readTimeout, *writeTimeout)

	node := *nodeID
	if node == "" {
		node = *addr
	}
	var respSrv *resp.Server
	if *respAddr != "" {
		// The RESP front door shares the native listener's Backend:
		// same engine, same server.* metrics, same slowlog and SLO.
		respSrv = resp.New(s.Backend())
		respSrv.SetNode(node)
		go func() {
			if err := respSrv.ListenAndServe(*respAddr); err != nil {
				log.Printf("qindbd: resp listener: %v", err)
			}
		}()
		log.Printf("qindbd: RESP (Redis-compatible) listener on %s", *respAddr)
	}
	var opsSrv *ops.Server
	if *metricsAddr != "" {
		// The index lifecycle rides on the operator address: segments
		// are versioned values in the same engine the KV front doors
		// serve, so /index queries and RESP/native traffic share one
		// store, one registry, one trace timeline.
		searchSvc := search.NewService(coreEngine{db: db}, reg)
		opsSrv, err = ops.Listen(*metricsAddr, ops.Config{
			Registry:    reg,
			SlowLog:     slow,
			Node:        node,
			SLOs:        []*metrics.SLO{readSLO},
			Events:      events,
			Ready:       readiness(db, *memHighWater),
			EnablePprof: *pprofOn,
			Attrib:      s.Backend().Attribution,
			Index:       search.NewHandler(searchSvc),
		})
		if err != nil {
			log.Fatal(err)
		}
		go opsSrv.Serve()
		log.Printf("qindbd: operator endpoints on http://%s/metrics", opsSrv.Addr())
	}
	var recorder *metrics.Recorder
	if *recordPath != "" {
		recorder, err = metrics.NewRecorder(metrics.RecorderConfig{
			Path:             *recordPath,
			Interval:         *recordEvery,
			Registry:         reg,
			SLOs:             []*metrics.SLO{readSLO},
			Events:           events,
			RateCounters:     []string{"server.req.get", "server.req.put", "server.req.putd", "server.req.batch"},
			LatencyHistogram: "server.req.get.latency_us",
			Runtime:          runtimeSampler,
		})
		if err != nil {
			log.Fatal(err)
		}
		recorder.Start()
		defer recorder.Close()
		log.Printf("qindbd: recording time series to %s every %s", *recordPath, *recordEvery)
	}
	var burnProf *metrics.BurnProfiler
	if *profileOnBurn != "" {
		burnProf = metrics.NewBurnProfiler(metrics.BurnProfilerConfig{
			Events: events,
			Dir:    *profileOnBurn,
			Types:  []string{"heap", "cpu"},
			Logf:   log.Printf,
		})
		burnProf.Start()
		defer burnProf.Close()
		log.Printf("qindbd: will capture profiles to %s on SLO burn", *profileOnBurn)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Println("shutting down")
		if respSrv != nil {
			respSrv.Close()
		}
		s.Close()
	}()
	log.Printf("qindbd: serving on %s (capacity %d MB, AOF %d MB, GC threshold %.2f)",
		*addr, *capacity>>20, *aofSize>>20, *gcThresh)
	if err := s.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
	// Drain the operator HTTP server under a deadline; a scrape stuck
	// past the grace period is reported, not silently abandoned.
	if opsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		if err := opsSrv.Shutdown(ctx); err != nil {
			log.Printf("qindbd: metrics server shutdown: %v", err)
		}
		cancel()
	}
	st := db.Stats()
	log.Printf("qindbd: stopped after %d puts / %d gets, %d MB user writes",
		st.Puts, st.Gets, st.UserWriteBytes>>20)
}
