// Command qindbd runs a standalone QinDB storage node over TCP — the
// network face a Mint storage node presents inside a data center. The
// engine persists to a simulated SSD (the process's memory), which makes
// the daemon useful for protocol integration and load testing rather
// than durable storage.
//
//	go run ./cmd/qindbd -addr 127.0.0.1:7707 -capacity 1073741824
//
// Interact with it through internal/server.Client, e.g.:
//
//	cl, _ := server.Dial("127.0.0.1:7707")
//	cl.Put([]byte("k"), 1, []byte("v"), false)
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/server"
	"directload/internal/ssd"
)

var (
	addr     = flag.String("addr", "127.0.0.1:7707", "listen address")
	capacity = flag.Int64("capacity", 1<<30, "simulated SSD capacity in bytes")
	aofSize  = flag.Int64("aof", 64<<20, "AOF file size in bytes (paper: 64 MB)")
	gcThresh = flag.Float64("gc", 0.25, "lazy GC occupancy threshold (paper: 0.25)")
	ckpt     = flag.Int64("checkpoint", 256<<20, "auto-checkpoint every N bytes (0 = off)")
)

func main() {
	log.SetFlags(log.LstdFlags)
	flag.Parse()

	dev, err := ssd.NewDevice(ssd.DefaultConfig(*capacity))
	if err != nil {
		log.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF:                  aof.Config{FileSize: *aofSize, GCThreshold: *gcThresh},
		CheckpointEveryBytes: *ckpt,
		Seed:                 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	s := server.New(db)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		log.Println("shutting down")
		s.Close()
	}()
	log.Printf("qindbd: serving on %s (capacity %d MB, AOF %d MB, GC threshold %.2f)",
		*addr, *capacity>>20, *aofSize>>20, *gcThresh)
	if err := s.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	log.Printf("qindbd: stopped after %d puts / %d gets, %d MB user writes",
		st.Puts, st.Gets, st.UserWriteBytes>>20)
}
