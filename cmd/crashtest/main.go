// Command crashtest is a randomized torture harness for the QinDB
// engine, in the spirit of LevelDB's db_stress: it drives random
// versioned PUT/PUT-dedup/DEL/DropVersion traffic against the engine and
// an in-memory oracle, interleaving garbage collection, checkpoints and
// crash/recovery cycles, and verifies after every round that the engine
// answers exactly like the oracle.
//
//	go run ./cmd/crashtest -rounds 20 -ops 2000 -seed 7
//
// Exit status 0 means every verification passed.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/ssd"
)

var (
	rounds   = flag.Int("rounds", 10, "crash/recovery rounds")
	ops      = flag.Int("ops", 2500, "operations per round")
	keys     = flag.Int("keys", 40, "distinct keys")
	versions = flag.Int("versions", 6, "distinct versions")
	valMax   = flag.Int("valmax", 16384, "max value size in bytes")
	seed     = flag.Int64("seed", 1, "random seed")
	capacity = flag.Int64("capacity", 2<<30, "simulated SSD capacity")
	verbose  = flag.Bool("v", false, "log every round")
)

// oracleVal mirrors one (key, version) state.
type oracleVal struct {
	val     []byte
	dedup   bool
	base    uint64
	hasBase bool
	deleted bool
}

type oracle map[string]map[uint64]*oracleVal

func (o oracle) resolveBase(key string, ver uint64) (uint64, bool) {
	var vers []uint64
	for v := range o[key] {
		if v < ver {
			vers = append(vers, v)
		}
	}
	for i := 1; i < len(vers); i++ {
		for j := i; j > 0 && vers[j-1] < vers[j]; j-- {
			vers[j-1], vers[j] = vers[j], vers[j-1]
		}
	}
	for _, v := range vers {
		m := o[key][v]
		if m.deleted {
			continue
		}
		if !m.dedup {
			return v, true
		}
		if m.hasBase {
			return m.base, true
		}
	}
	return 0, false
}

func (o oracle) expected(key string, ver uint64) ([]byte, bool) {
	mv := o[key][ver]
	if mv == nil || mv.deleted {
		return nil, false
	}
	if !mv.dedup {
		return mv.val, true
	}
	if !mv.hasBase {
		return nil, false
	}
	base := o[key][mv.base]
	if base == nil || base.dedup {
		return nil, false
	}
	return base.val, true
}

func main() {
	log.SetFlags(0)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	dev, err := ssd.NewDevice(ssd.DefaultConfig(*capacity))
	if err != nil {
		log.Fatal(err)
	}
	fs := blockfs.NewNativeFS(dev)
	opts := core.Options{
		AOF:                  aof.Config{FileSize: 1 << 20, GCThreshold: 0.25},
		CheckpointEveryBytes: 512 << 10,
		Seed:                 *seed,
	}
	db, err := core.Open(fs, opts)
	if err != nil {
		log.Fatal(err)
	}

	o := oracle{}
	keyName := func(i int) string { return fmt.Sprintf("key-%04d", i) }

	apply := func() error {
		for i := 0; i < *ops; i++ {
			k := keyName(rng.Intn(*keys))
			ver := uint64(rng.Intn(*versions) + 1)
			switch op := rng.Intn(10); {
			case op < 5: // plain put
				val := make([]byte, rng.Intn(*valMax)+1)
				rng.Read(val)
				if _, err := db.Put([]byte(k), ver, val, false); err != nil {
					return fmt.Errorf("put %s/%d: %w", k, ver, err)
				}
				if o[k] == nil {
					o[k] = map[uint64]*oracleVal{}
				}
				o[k][ver] = &oracleVal{val: val}
			case op < 7: // dedup put
				mv := &oracleVal{dedup: true}
				mv.base, mv.hasBase = o.resolveBase(k, ver)
				if _, err := db.Put([]byte(k), ver, nil, true); err != nil {
					return fmt.Errorf("putd %s/%d: %w", k, ver, err)
				}
				if o[k] == nil {
					o[k] = map[uint64]*oracleVal{}
				}
				o[k][ver] = mv
			case op < 9: // del
				mv := o[k][ver]
				_, err := db.Del([]byte(k), ver)
				if mv == nil || mv.deleted {
					if err == nil {
						return fmt.Errorf("del %s/%d succeeded, oracle says absent", k, ver)
					}
				} else {
					if err != nil {
						return fmt.Errorf("del %s/%d: %w", k, ver, err)
					}
					mv.deleted = true
				}
			default: // drop a whole version (rare)
				if rng.Intn(4) == 0 {
					if _, _, err := db.DropVersion(ver); err != nil {
						return fmt.Errorf("drop v%d: %w", ver, err)
					}
					for _, vers := range o {
						if mv := vers[ver]; mv != nil {
							mv.deleted = true
						}
					}
				}
			}
		}
		return nil
	}

	verify := func() error {
		for i := 0; i < *keys; i++ {
			k := keyName(i)
			for ver := uint64(1); ver <= uint64(*versions); ver++ {
				want, ok := o.expected(k, ver)
				got, _, err := db.Get([]byte(k), ver)
				if ok {
					if err != nil {
						return fmt.Errorf("get %s/%d: %v, oracle has %d bytes", k, ver, err, len(want))
					}
					if !bytes.Equal(got, want) {
						return fmt.Errorf("get %s/%d: value mismatch (%d vs %d bytes)", k, ver, len(got), len(want))
					}
				} else if err == nil && o[k][ver] != nil && !o[k][ver].deleted {
					return fmt.Errorf("get %s/%d succeeded, oracle expects failure", k, ver)
				}
			}
		}
		return nil
	}

	for round := 1; round <= *rounds; round++ {
		if err := apply(); err != nil {
			log.Fatalf("round %d apply: %v", round, err)
		}
		if err := verify(); err != nil {
			log.Fatalf("round %d pre-crash verify: %v", round, err)
		}
		// Occasionally drain GC before crashing.
		if rng.Intn(2) == 0 {
			if _, err := db.CollectAll(); err != nil {
				log.Fatalf("round %d gc: %v", round, err)
			}
		}
		// Crash: drop the memtable, reopen from flash.
		//lint:ignore errflow a simulated crash abandons the engine mid-flight; teardown errors are the point of the test, not a bug
		db.Close()
		db, err = core.Open(fs, opts)
		if err != nil {
			log.Fatalf("round %d recovery: %v", round, err)
		}
		if err := verify(); err != nil {
			log.Fatalf("round %d post-crash verify: %v", round, err)
		}
		if *verbose {
			st := db.Stats()
			log.Printf("round %2d OK: %5d items, %3d checkpoints, %3d gc runs, %6.1f MB flash",
				round, st.Keys, st.Checkpoints, st.Store.GCRuns,
				float64(st.Store.DiskBytes)/(1<<20))
		}
	}
	if err := db.Close(); err != nil {
		log.Fatalf("final close: %v", err)
	}
	fmt.Printf("crashtest: %d rounds x %d ops verified, %d keys x %d versions, seed %d\n",
		*rounds, *ops, *keys, *versions, *seed)
	os.Exit(0)
}
