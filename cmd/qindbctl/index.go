package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"directload/internal/fleet"
	"directload/internal/indexer"
	"directload/internal/search"
	"directload/internal/server"
)

// indexUsage prints the index subcommand's help and exits.
func indexUsage() {
	fmt.Fprintln(os.Stderr, "usage: qindbctl [-http host:port] index <cmd> [args]")
	fmt.Fprintln(os.Stderr, "       list                                      known indexes (-http address)")
	fmt.Fprintln(os.Stderr, "       create <name>                             register an empty index")
	fmt.Fprintln(os.Stderr, "       build [-docs N] [-vocab N] [-doc-terms N] [-seed N] <name>")
	fmt.Fprintln(os.Stderr, "                                                 crawl a synthetic corpus and publish it;")
	fmt.Fprintln(os.Stderr, "                                                 -nodes 'a,b,c[;d,e,f]' -version N publishes")
	fmt.Fprintln(os.Stderr, "                                                 the built segment through the fleet router")
	fmt.Fprintln(os.Stderr, "       ingest <name> [file]                      publish documents (JSON array or")
	fmt.Fprintln(os.Stderr, "                                                 'url term term ...' lines; default stdin)")
	fmt.Fprintln(os.Stderr, "       query [-mode and|term|phrase] [-version N] [-limit N] [-json] <name> <term>...")
	fmt.Fprintln(os.Stderr, "                                                 -nodes serves the query from fleet reads")
	fmt.Fprintln(os.Stderr, "                                                 against a pinned -version")
	fmt.Fprintln(os.Stderr, "       export [-version N] [-out file] <name>    CIFF stream (stdout without -out)")
	fmt.Fprintln(os.Stderr, "       import <name> <file>                      publish a CIFF file as a new version")
	fmt.Fprintln(os.Stderr, "`qindbctl search <name> <term>...` is shorthand for index query.")
	os.Exit(2)
}

// runIndex dispatches `qindbctl index <sub>` and the `qindbctl search`
// shorthand. Everything talks to the daemon's operator HTTP surface
// (/index, see internal/search) except the -nodes paths, which build
// or read segments client-side through the fleet router.
func runIndex(cmd string, args []string) {
	if cmd == "search" {
		runIndexQuery(args)
		return
	}
	if len(args) == 0 {
		indexUsage()
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "list":
		fetchHTTP("/index")
	case "create":
		if len(rest) != 1 {
			indexUsage()
		}
		postHTTP("/index/"+url.PathEscape(rest[0]), "text/plain", nil)
	case "build":
		runIndexBuild(rest)
	case "ingest":
		runIndexIngest(rest)
	case "query":
		runIndexQuery(rest)
	case "export":
		runIndexExport(rest)
	case "import":
		runIndexImport(rest)
	default:
		indexUsage()
	}
}

// postHTTP POSTs a body to the operator HTTP address and copies the
// response to stdout.
func postHTTP(path, contentType string, body []byte) {
	client := &http.Client{Timeout: *timeout}
	u := "http://" + *httpAddr + path
	resp, err := client.Post(u, contentType, bytes.NewReader(body))
	if err != nil {
		log.Fatalf("POST %s: %v (is qindbd running with -metrics-addr %s?)", u, err, *httpAddr)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("POST %s: %s: %s", u, resp.Status, strings.TrimSpace(string(msg)))
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		log.Fatal(err)
	}
}

// parseGroups splits a -nodes value: ';' between replication groups,
// ',' between member addresses.
func parseGroups(s string) [][]string {
	var groups [][]string
	for _, g := range strings.Split(s, ";") {
		var members []string
		for _, m := range strings.Split(g, ",") {
			if m = strings.TrimSpace(m); m != "" {
				members = append(members, m)
			}
		}
		if len(members) > 0 {
			groups = append(groups, members)
		}
	}
	return groups
}

// dialIndexFleet brings up a router over the -nodes groups for the
// index paths (default placement: 3 replicas, majority quorum).
func dialIndexFleet(nodes string) *fleet.Fleet {
	f, err := fleet.New(fleet.Config{
		Groups:   parseGroups(nodes),
		Replicas: 3,
		DialOpts: []server.DialOption{server.WithTimeout(*timeout)},
	})
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}
	return f
}

// fleetEngine adapts the router's hedged reads to the search store's
// engine surface; queries served this way never write.
type fleetEngine struct {
	ctx context.Context
	f   *fleet.Fleet
}

func (e fleetEngine) Put(string, uint64, []byte) error {
	return errors.New("qindbctl: fleet index reads are read-only; publish with index build -nodes")
}

func (e fleetEngine) Get(key string, version uint64) ([]byte, error) {
	return e.f.Get(e.ctx, []byte(key), version)
}

// runIndexBuild crawls a synthetic corpus (internal/indexer) and
// publishes it — through REST ingest by default, or as a client-built
// segment quorum-written via the fleet router with -nodes.
func runIndexBuild(args []string) {
	fs := flag.NewFlagSet("index build", flag.ExitOnError)
	docs := fs.Int("docs", 1000, "documents to crawl")
	vocab := fs.Int("vocab", 0, "vocabulary size (0 = crawler default)")
	docTerms := fs.Int("doc-terms", 0, "terms per document (0 = crawler default)")
	seed := fs.Int64("seed", 1, "crawl seed (same seed = identical corpus)")
	abstractTerms := fs.Int("abstract-terms", 8, "terms kept in each stored abstract")
	nodes := fs.String("nodes", "", "publish through the fleet router ( ';' groups, ',' members) instead of REST")
	version := fs.Uint64("version", 0, "version to publish at (required with -nodes)")
	fs.Usage = indexUsage
	fs.Parse(args)
	if fs.NArg() != 1 {
		indexUsage()
	}
	name := fs.Arg(0)

	cfg := indexer.DefaultCrawlConfig()
	cfg.Documents = *docs
	cfg.Seed = *seed
	if *vocab > 0 {
		cfg.VocabSize = *vocab
	}
	if *docTerms > 0 {
		cfg.DocTerms = *docTerms
	}
	crawler, err := indexer.NewCrawler(cfg)
	if err != nil {
		log.Fatalf("crawl: %v", err)
	}
	corpus := crawler.Crawl()
	inputs := search.FromDocuments(corpus, *abstractTerms)

	if *nodes != "" {
		if *version == 0 {
			log.Fatal("index build -nodes needs -version (the fleet has no version allocator)")
		}
		seg, err := search.BuildSegment(inputs)
		if err != nil {
			log.Fatalf("build: %v", err)
		}
		pairs := search.SegmentPairs(name, seg)
		entries := make([]fleet.Entry, len(pairs))
		for i, p := range pairs {
			entries[i] = fleet.Entry{Key: []byte(p.Key), Value: p.Value}
		}
		f := dialIndexFleet(*nodes)
		defer f.Close()
		start := time.Now()
		if err := f.PublishVersion(context.Background(), *version, entries); err != nil {
			log.Fatalf("fleet publish: %v", err)
		}
		fmt.Printf("published %s v=%d docs=%d terms=%d bytes=%d across the fleet in %s\n",
			name, *version, seg.DocCount(), seg.TermCount(), len(seg.Bytes()),
			time.Since(start).Round(time.Millisecond))
		return
	}

	body, err := json.Marshal(inputs)
	if err != nil {
		log.Fatal(err)
	}
	postHTTP("/index/"+url.PathEscape(name)+"/ingest", "application/json", body)
}

// runIndexIngest publishes documents from a file or stdin through REST.
func runIndexIngest(args []string) {
	if len(args) < 1 || len(args) > 2 {
		indexUsage()
	}
	in := io.Reader(os.Stdin)
	if len(args) == 2 {
		file, err := os.Open(args[1])
		if err != nil {
			log.Fatal(err)
		}
		defer file.Close()
		in = file
	}
	body, err := io.ReadAll(in)
	if err != nil {
		log.Fatal(err)
	}
	ct := "text/plain"
	if strings.HasPrefix(strings.TrimSpace(string(body)), "[") {
		ct = "application/json"
	}
	postHTTP("/index/"+url.PathEscape(args[0])+"/ingest", ct, body)
}

// runIndexQuery serves one query — via REST by default, or from fleet
// hedged reads against a pinned version with -nodes (the segment is
// loaded client-side and queried locally, so the answer is exactly the
// pinned version's regardless of what publishes meanwhile).
func runIndexQuery(args []string) {
	fs := flag.NewFlagSet("index query", flag.ExitOnError)
	mode := fs.String("mode", "", "query class: term, and (default) or phrase")
	version := fs.Uint64("version", 0, "pin to this version (0 = latest; required with -nodes)")
	limit := fs.Int("limit", 0, "max hits (0 = all)")
	jsonOut := fs.Bool("json", false, "JSON output")
	nodes := fs.String("nodes", "", "serve from fleet reads (';' groups, ',' members) instead of REST")
	fs.Usage = indexUsage
	fs.Parse(args)
	if fs.NArg() < 2 {
		indexUsage()
	}
	name, terms := fs.Arg(0), fs.Args()[1:]

	if *nodes != "" {
		if *version == 0 {
			log.Fatal("index query -nodes needs -version (fleet reads are pinned, never 'latest')")
		}
		class, err := search.ParseQueryClass(*mode)
		if err != nil {
			log.Fatal(err)
		}
		if class == search.ClassAnd && len(terms) == 1 {
			class = search.ClassTerm
		}
		f := dialIndexFleet(*nodes)
		defer f.Close()
		ctx := context.Background()
		seg, _, err := search.LoadSegment(fleetEngine{ctx: ctx, f: f}, name, *version)
		if err != nil {
			log.Fatalf("loading %s v=%d from fleet: %v", name, *version, err)
		}
		sn := search.NewSnapshot(name, *version, seg)
		res, stats, err := sn.Query(ctx, class, terms, *limit)
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			out, _ := json.MarshalIndent(res, "", "  ")
			fmt.Println(string(out))
			return
		}
		for _, hit := range res {
			fmt.Printf("%-28s tf=%-4d %s\n", hit.URL, hit.TF, hit.Abstract)
		}
		fmt.Printf("# %d hits  %s %v  v=%d  blocks scanned=%d skipped=%d (fleet)\n",
			len(res), class, terms, *version, stats.BlocksScanned, stats.BlocksSkipped)
		return
	}

	q := url.Values{}
	q.Set("q", strings.Join(terms, " "))
	if *mode != "" {
		q.Set("mode", *mode)
	}
	if *version != 0 {
		q.Set("version", fmt.Sprint(*version))
	}
	if *limit != 0 {
		q.Set("limit", fmt.Sprint(*limit))
	}
	if *jsonOut {
		q.Set("format", "json")
	}
	fetchHTTP("/index/" + url.PathEscape(name) + "/query?" + q.Encode())
}

// runIndexExport fetches the CIFF stream of an index version.
func runIndexExport(args []string) {
	fs := flag.NewFlagSet("index export", flag.ExitOnError)
	version := fs.Uint64("version", 0, "pin to this version (0 = latest)")
	out := fs.String("out", "", "write the CIFF stream to this file (default stdout)")
	fs.Usage = indexUsage
	fs.Parse(args)
	if fs.NArg() != 1 {
		indexUsage()
	}
	path := "/index/" + url.PathEscape(fs.Arg(0)) + "/export"
	if *version != 0 {
		path += fmt.Sprintf("?version=%d", *version)
	}
	client := &http.Client{Timeout: *timeout}
	u := "http://" + *httpAddr + path
	resp, err := client.Get(u)
	if err != nil {
		log.Fatalf("GET %s: %v (is qindbd running with -metrics-addr %s?)", u, err, *httpAddr)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(msg)))
	}
	dst := io.Writer(os.Stdout)
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := file.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		dst = file
	}
	n, err := io.Copy(dst, resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Printf("exported %d CIFF bytes to %s\n", n, *out)
	}
}

// runIndexImport publishes a CIFF file as a new index version.
func runIndexImport(args []string) {
	if len(args) != 2 {
		indexUsage()
	}
	body, err := os.ReadFile(args[1])
	if err != nil {
		log.Fatal(err)
	}
	postHTTP("/index/"+url.PathEscape(args[0])+"/import", "application/octet-stream", body)
}
