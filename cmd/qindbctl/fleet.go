package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"directload/internal/fleet"
	"directload/internal/metrics"
	"directload/internal/server"
)

// fleetUsage prints the fleet subcommand's help and exits.
func fleetUsage() {
	fmt.Fprintln(os.Stderr, "usage: qindbctl fleet -nodes 'a,b,c[;d,e,f]' [-replicas 3] [-quorum 0] <cmd> [args]")
	fmt.Fprintln(os.Stderr, "       -nodes groups are ';'-separated, members ','-separated")
	fmt.Fprintln(os.Stderr, "       put  <key> <version> <value>    quorum write onto the key's replica set")
	fmt.Fprintln(os.Stderr, "       get  <key> <version>            hedged parallel read")
	fmt.Fprintln(os.Stderr, "       drop <version>                  retire a version fleet-wide")
	fmt.Fprintln(os.Stderr, "       load <version>                  key<TAB>value lines from stdin, quorum-written")
	fmt.Fprintln(os.Stderr, "       where <key>                     print the key's group and replica set")
	fmt.Fprintln(os.Stderr, "       status                          router snapshot (breakers, handoff)")
	fmt.Fprintln(os.Stderr, "       record [-out f.jsonl] [-interval 1s] [-duration 30s] [-canary key@ver]")
	fmt.Fprintln(os.Stderr, "                                       append {ts, slo, throughput, p99, events} snapshots")
	os.Exit(2)
}

// runFleet is the `qindbctl fleet` entry point: a client-side shard
// router over the given nodes, speaking the same wire protocol as the
// single-node commands but placing each key on its rendezvous-chosen
// replica set.
func runFleet(args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	nodes := fs.String("nodes", "", "replication groups: ';' between groups, ',' between node addresses")
	replicas := fs.Int("replicas", 3, "replicas per key")
	quorum := fs.Int("quorum", 0, "write quorum (0 = majority of replicas)")
	hedge := fs.Duration("hedge", 2*time.Millisecond, "hedged-read delay before samples exist")
	fs.Usage = fleetUsage
	fs.Parse(args)
	if *nodes == "" || fs.NArg() == 0 {
		fleetUsage()
	}

	groups := parseGroups(*nodes)
	// The router always carries its own observability spine — metrics
	// registry, structured event log and read SLO — so status, record
	// and ad-hoc commands share one view of the run.
	reg := metrics.NewRegistry()
	events := metrics.NewEventLog(0)
	slo := metrics.NewSLO(metrics.SLOConfig{Name: "fleet.read", Target: 0.006, Events: events})
	slo.Register(reg)
	f, err := fleet.New(fleet.Config{
		Groups:      groups,
		Replicas:    *replicas,
		WriteQuorum: *quorum,
		HedgeAfter:  *hedge,
		Metrics:     reg,
		SLO:         slo,
		Events:      events,
		// Traced dials: the router's spans propagate across the wire,
		// so each node retains its half of every quorum write's
		// timeline for `qindbctl trace -nodes` to merge later.
		DialOpts: []server.DialOption{
			server.WithTimeout(*timeout),
			server.WithMetrics(reg),
		},
	})
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}
	defer f.Close()
	ctx := context.Background()

	cmd, cargs := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "put":
		if len(cargs) != 3 {
			fleetUsage()
		}
		err := f.PublishVersion(ctx, parseVersion(cargs[1]), []fleet.Entry{
			{Key: []byte(cargs[0]), Value: []byte(cargs[2])},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "get":
		if len(cargs) != 2 {
			fleetUsage()
		}
		val, err := f.Get(ctx, []byte(cargs[0]), parseVersion(cargs[1]))
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(val)
		fmt.Println()
	case "drop":
		if len(cargs) != 1 {
			fleetUsage()
		}
		if err := f.DropVersion(ctx, parseVersion(cargs[0])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "load":
		if len(cargs) != 1 {
			fleetUsage()
		}
		fleetLoadStdin(ctx, f, parseVersion(cargs[0]))
	case "where":
		if len(cargs) != 1 {
			fleetUsage()
		}
		group, ids := f.ReplicasFor([]byte(cargs[0]))
		fmt.Printf("group %d replicas %s\n", group, strings.Join(ids, " "))
	case "status":
		out, _ := json.MarshalIndent(f.Status(), "", "  ")
		fmt.Println(string(out))
	case "record":
		rfs := flag.NewFlagSet("fleet record", flag.ExitOnError)
		out := rfs.String("out", "fleet_record.jsonl", "JSONL artifact file (appended, restart-safe)")
		interval := rfs.Duration("interval", time.Second, "snapshot cadence")
		duration := rfs.Duration("duration", 30*time.Second, "how long to record")
		canary := rfs.String("canary", "", "key@version hedge-read once per interval, feeding the read SLO")
		rfs.Parse(cargs)
		fleetRecord(ctx, f, reg, slo, events, *out, *interval, *duration, *canary)
	default:
		fleetUsage()
	}
}

// fleetRecord drives the time-series recorder against the live router:
// one {ts, slo, throughput, p99, events} JSONL line per interval, with
// an optional canary read per interval so the SLO curve reflects the
// fleet's actual availability rather than only ambient traffic.
func fleetRecord(ctx context.Context, f *fleet.Fleet, reg *metrics.Registry, slo *metrics.SLO, events *metrics.EventLog, out string, interval, duration time.Duration, canary string) {
	rec, err := metrics.NewRecorder(metrics.RecorderConfig{
		Path:             out,
		Interval:         interval,
		Registry:         reg,
		SLOs:             []*metrics.SLO{slo},
		Events:           events,
		RateCounters:     []string{"fleet.read.requests", "fleet.publish.versions"},
		LatencyHistogram: "fleet.read.latency_us",
	})
	if err != nil {
		log.Fatalf("fleet record: %v", err)
	}
	rec.Start()
	var canaryKey []byte
	var canaryVer uint64
	if canary != "" {
		k, v, ok := strings.Cut(canary, "@")
		if !ok || k == "" {
			log.Fatalf("bad -canary %q (want key@version)", canary)
		}
		canaryKey, canaryVer = []byte(k), parseVersion(v)
	}
	deadline := time.Now().Add(duration)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for time.Now().Before(deadline) {
		<-ticker.C
		if canaryKey != nil {
			// Hit or miss, the read lands in the SLO via the router.
			_, _ = f.Get(ctx, canaryKey, canaryVer)
		}
	}
	if err := rec.Close(); err != nil {
		log.Fatalf("fleet record: %v", err)
	}
	fmt.Printf("recorded %s of fleet samples to %s\n", duration.Round(time.Second), out)
}

// fleetLoadStdin reads key<TAB>value lines and quorum-writes them as
// one version through the router — the sharded counterpart of `load`.
func fleetLoadStdin(ctx context.Context, f *fleet.Fleet, version uint64) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var entries []fleet.Entry
	for sc.Scan() {
		key, value, _ := strings.Cut(sc.Text(), "\t")
		if key == "" {
			continue
		}
		entries = append(entries, fleet.Entry{Key: []byte(key), Value: []byte(value)})
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := f.PublishVersion(ctx, version, entries); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("loaded %d records @v%d across the fleet in %s (%.0f/s)\n",
		len(entries), version, elapsed.Round(time.Millisecond),
		float64(len(entries))/elapsed.Seconds())
}
