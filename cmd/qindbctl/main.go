// Command qindbctl is a command-line client for a qindbd storage node.
//
//	qindbctl -addr 127.0.0.1:7707 put  <key> <version> <value>
//	qindbctl -addr 127.0.0.1:7707 putd <key> <version>          # dedup put
//	qindbctl -addr 127.0.0.1:7707 get  <key> <version>
//	qindbctl -addr 127.0.0.1:7707 del  <key> <version>
//	qindbctl -addr 127.0.0.1:7707 drop <version>
//	qindbctl -addr 127.0.0.1:7707 range [<from> [<to>]]
//	qindbctl -addr 127.0.0.1:7707 stats
//	qindbctl -addr 127.0.0.1:7707 ping
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"directload/internal/server"
)

var addr = flag.String("addr", "127.0.0.1:7707", "qindbd address")

func usage() {
	fmt.Fprintln(os.Stderr, "usage: qindbctl [-addr host:port] <put|putd|get|del|drop|range|stats|ping> [args]")
	os.Exit(2)
}

func parseVersion(s string) uint64 {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		log.Fatalf("bad version %q: %v", s, err)
	}
	return v
}

func main() {
	log.SetFlags(0)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cl, err := server.Dial(*addr)
	if err != nil {
		log.Fatalf("dial %s: %v", *addr, err)
	}
	defer cl.Close()

	cmd, args := args[0], args[1:]
	switch cmd {
	case "put":
		if len(args) != 3 {
			usage()
		}
		if err := cl.Put([]byte(args[0]), parseVersion(args[1]), []byte(args[2]), false); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "putd":
		if len(args) != 2 {
			usage()
		}
		if err := cl.Put([]byte(args[0]), parseVersion(args[1]), nil, true); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "get":
		if len(args) != 2 {
			usage()
		}
		val, err := cl.Get([]byte(args[0]), parseVersion(args[1]))
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(val)
		fmt.Println()
	case "del":
		if len(args) != 2 {
			usage()
		}
		if err := cl.Del([]byte(args[0]), parseVersion(args[1])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "drop":
		if len(args) != 1 {
			usage()
		}
		if err := cl.DropVersion(parseVersion(args[0])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "range":
		var from, to []byte
		if len(args) > 0 {
			from = []byte(args[0])
		}
		if len(args) > 1 {
			to = []byte(args[1])
		}
		entries, err := cl.Range(from, to, 1000)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range entries {
			fmt.Printf("%s\t@v%d\n", e.Key, e.Version)
		}
	case "stats":
		st, err := cl.Stats()
		if err != nil {
			log.Fatal(err)
		}
		out, _ := json.MarshalIndent(st, "", "  ")
		fmt.Println(string(out))
	case "ping":
		if err := cl.Ping(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("pong")
	default:
		usage()
	}
}
