// Command qindbctl is a command-line client for a qindbd storage node.
//
//	qindbctl -addr 127.0.0.1:7707 put  <key> <version> <value>
//	qindbctl -addr 127.0.0.1:7707 putd <key> <version>          # dedup put
//	qindbctl -addr 127.0.0.1:7707 get  <key> <version>
//	qindbctl -addr 127.0.0.1:7707 del  <key> <version>
//	qindbctl -addr 127.0.0.1:7707 drop <version>
//	qindbctl -addr 127.0.0.1:7707 range [<from> [<to>]]
//	qindbctl -addr 127.0.0.1:7707 stats
//	qindbctl -addr 127.0.0.1:7707 ping
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"time"

	"directload/internal/server"
)

var addr = flag.String("addr", "127.0.0.1:7707", "qindbd address")

func usage() {
	fmt.Fprintln(os.Stderr, "usage: qindbctl [-addr host:port] <put|putd|get|del|drop|range|stats|metrics|ping> [args]")
	fmt.Fprintln(os.Stderr, "       stats [-watch] [-interval 1s]   engine stats, or live metric deltas")
	os.Exit(2)
}

func parseVersion(s string) uint64 {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		log.Fatalf("bad version %q: %v", s, err)
	}
	return v
}

func main() {
	log.SetFlags(0)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cl, err := server.Dial(*addr)
	if err != nil {
		log.Fatalf("dial %s: %v", *addr, err)
	}
	defer cl.Close()

	cmd, args := args[0], args[1:]
	switch cmd {
	case "put":
		if len(args) != 3 {
			usage()
		}
		if err := cl.Put([]byte(args[0]), parseVersion(args[1]), []byte(args[2]), false); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "putd":
		if len(args) != 2 {
			usage()
		}
		if err := cl.Put([]byte(args[0]), parseVersion(args[1]), nil, true); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "get":
		if len(args) != 2 {
			usage()
		}
		val, err := cl.Get([]byte(args[0]), parseVersion(args[1]))
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(val)
		fmt.Println()
	case "del":
		if len(args) != 2 {
			usage()
		}
		if err := cl.Del([]byte(args[0]), parseVersion(args[1])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "drop":
		if len(args) != 1 {
			usage()
		}
		if err := cl.DropVersion(parseVersion(args[0])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "range":
		var from, to []byte
		if len(args) > 0 {
			from = []byte(args[0])
		}
		if len(args) > 1 {
			to = []byte(args[1])
		}
		entries, err := cl.Range(from, to, 1000)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range entries {
			fmt.Printf("%s\t@v%d\n", e.Key, e.Version)
		}
	case "stats":
		fs := flag.NewFlagSet("stats", flag.ExitOnError)
		watch := fs.Bool("watch", false, "poll the server and print metric deltas until interrupted")
		interval := fs.Duration("interval", time.Second, "poll interval with -watch")
		fs.Parse(args)
		if *watch {
			watchStats(cl, *interval)
			return
		}
		st, err := cl.Stats()
		if err != nil {
			log.Fatal(err)
		}
		out, _ := json.MarshalIndent(st, "", "  ")
		fmt.Println(string(out))
	case "metrics":
		m, err := cl.Metrics()
		if err != nil {
			log.Fatal(err)
		}
		for _, kv := range flattenMetrics(m) {
			fmt.Printf("%s %g\n", kv.name, kv.value)
		}
	case "ping":
		if err := cl.Ping(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("pong")
	default:
		usage()
	}
}

// metricKV is one flattened metric line.
type metricKV struct {
	name  string
	value float64
}

// flattenMetrics turns the nested OpMetrics snapshot into sorted
// name/value lines: scalar metrics pass through, histograms expand to
// suffixed entries (qindb.put.latency_us.p99 etc.).
func flattenMetrics(m map[string]any) []metricKV {
	var out []metricKV
	for name, v := range m {
		switch val := v.(type) {
		case float64:
			out = append(out, metricKV{name, val})
		case map[string]any:
			for field, fv := range val {
				if n, ok := fv.(float64); ok {
					out = append(out, metricKV{name + "." + field, n})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// watchStats polls the server's metrics and renders per-interval deltas,
// top-like, until the process is interrupted.
func watchStats(cl *server.Client, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	prev := make(map[string]float64)
	first := true
	for {
		m, err := cl.Metrics()
		if err != nil {
			log.Fatal(err)
		}
		kvs := flattenMetrics(m)
		if !first {
			fmt.Println()
		}
		fmt.Printf("--- %s ---\n", time.Now().Format("15:04:05"))
		for _, kv := range kvs {
			delta := kv.value - prev[kv.name]
			if first || delta == 0 {
				fmt.Printf("%-48s %14g\n", kv.name, kv.value)
			} else {
				fmt.Printf("%-48s %14g  %+g\n", kv.name, kv.value, delta)
			}
			prev[kv.name] = kv.value
		}
		first = false
		time.Sleep(interval)
	}
}
