// Command qindbctl is a command-line client for a qindbd storage node.
//
//	qindbctl -addr 127.0.0.1:7707 put  <key> <version> <value>
//	qindbctl -addr 127.0.0.1:7707 putd <key> <version>          # dedup put
//	qindbctl -addr 127.0.0.1:7707 get  <key> <version>
//	qindbctl -addr 127.0.0.1:7707 del  <key> <version>
//	qindbctl -addr 127.0.0.1:7707 drop <version>
//	qindbctl -addr 127.0.0.1:7707 range [<from> [<to>]]
//	qindbctl -addr 127.0.0.1:7707 load <version>                # batched key<TAB>value lines from stdin
//	qindbctl -addr 127.0.0.1:7707 stats
//	qindbctl -addr 127.0.0.1:7707 ping
//
// -timeout bounds each operation (and the dial); load streams stdin
// into OpBatch frames, one round trip per batch instead of per record.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"directload/internal/server"
)

var (
	addr    = flag.String("addr", "127.0.0.1:7707", "qindbd address")
	timeout = flag.Duration("timeout", 5*time.Second, "per-operation deadline (0 = none)")
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: qindbctl [-addr host:port] [-timeout 5s] <put|putd|get|del|drop|range|load|stats|metrics|ping> [args]")
	fmt.Fprintln(os.Stderr, "       load <version>                  batched load of key<TAB>value lines from stdin")
	fmt.Fprintln(os.Stderr, "       stats [-watch] [-interval 1s]   engine stats, or live metric deltas")
	os.Exit(2)
}

func parseVersion(s string) uint64 {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		log.Fatalf("bad version %q: %v", s, err)
	}
	return v
}

func main() {
	log.SetFlags(0)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cl, err := server.Dial(*addr, server.WithTimeout(*timeout))
	if err != nil {
		log.Fatalf("dial %s: %v", *addr, err)
	}
	defer cl.Close()
	ctx := context.Background()

	cmd, args := args[0], args[1:]
	switch cmd {
	case "put":
		if len(args) != 3 {
			usage()
		}
		if err := cl.PutContext(ctx, []byte(args[0]), parseVersion(args[1]), []byte(args[2]), false); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "putd":
		if len(args) != 2 {
			usage()
		}
		if err := cl.PutContext(ctx, []byte(args[0]), parseVersion(args[1]), nil, true); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "get":
		if len(args) != 2 {
			usage()
		}
		val, err := cl.GetContext(ctx, []byte(args[0]), parseVersion(args[1]))
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(val)
		fmt.Println()
	case "del":
		if len(args) != 2 {
			usage()
		}
		if err := cl.DelContext(ctx, []byte(args[0]), parseVersion(args[1])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "drop":
		if len(args) != 1 {
			usage()
		}
		if err := cl.DropVersionContext(ctx, parseVersion(args[0])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "range":
		var from, to []byte
		if len(args) > 0 {
			from = []byte(args[0])
		}
		if len(args) > 1 {
			to = []byte(args[1])
		}
		entries, applied, err := cl.RangeContext(ctx, from, to, 0)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range entries {
			fmt.Printf("%s\t@v%d\n", e.Key, e.Version)
		}
		if applied > 0 && len(entries) == applied {
			fmt.Fprintf(os.Stderr, "(truncated at server limit %d)\n", applied)
		}
	case "load":
		if len(args) != 1 {
			usage()
		}
		loadStdin(ctx, cl, parseVersion(args[0]))
	case "stats":
		fs := flag.NewFlagSet("stats", flag.ExitOnError)
		watch := fs.Bool("watch", false, "poll the server and print metric deltas until interrupted")
		interval := fs.Duration("interval", time.Second, "poll interval with -watch")
		fs.Parse(args)
		if *watch {
			watchStats(ctx, cl, *interval)
			return
		}
		st, err := cl.StatsContext(ctx)
		if err != nil {
			log.Fatal(err)
		}
		out, _ := json.MarshalIndent(st, "", "  ")
		fmt.Println(string(out))
	case "metrics":
		m, err := cl.MetricsContext(ctx)
		if err != nil {
			log.Fatal(err)
		}
		for _, kv := range flattenMetrics(m) {
			fmt.Printf("%s %g\n", kv.name, kv.value)
		}
	case "ping":
		if err := cl.PingContext(ctx); err != nil {
			log.Fatal(err)
		}
		fmt.Println("pong")
	default:
		usage()
	}
}

// loadStdin streams key<TAB>value lines into batched puts. A line
// without a tab stores its whole content as the key with an empty
// value.
func loadStdin(ctx context.Context, cl *server.Client, version uint64) {
	batch := cl.Batcher()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n int
	start := time.Now()
	for sc.Scan() {
		key, value, _ := strings.Cut(sc.Text(), "\t")
		if key == "" {
			continue
		}
		if err := batch.Put(ctx, []byte(key), version, []byte(value), false); err != nil {
			log.Fatalf("line %d: %v", n+1, err)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if err := batch.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("loaded %d records @v%d in %s (%.0f/s)\n",
		n, version, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
}

// metricKV is one flattened metric line.
type metricKV struct {
	name  string
	value float64
}

// flattenMetrics turns the nested OpMetrics snapshot into sorted
// name/value lines: scalar metrics pass through, histograms expand to
// suffixed entries (qindb.put.latency_us.p99 etc.).
func flattenMetrics(m map[string]any) []metricKV {
	var out []metricKV
	for name, v := range m {
		switch val := v.(type) {
		case float64:
			out = append(out, metricKV{name, val})
		case map[string]any:
			for field, fv := range val {
				if n, ok := fv.(float64); ok {
					out = append(out, metricKV{name + "." + field, n})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// watchStats polls the server's metrics and renders per-interval deltas,
// top-like, until the process is interrupted.
func watchStats(ctx context.Context, cl *server.Client, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	prev := make(map[string]float64)
	first := true
	for {
		m, err := cl.MetricsContext(ctx)
		if err != nil {
			log.Fatal(err)
		}
		kvs := flattenMetrics(m)
		if !first {
			fmt.Println()
		}
		fmt.Printf("--- %s ---\n", time.Now().Format("15:04:05"))
		for _, kv := range kvs {
			delta := kv.value - prev[kv.name]
			if first || delta == 0 {
				fmt.Printf("%-48s %14g\n", kv.name, kv.value)
			} else {
				fmt.Printf("%-48s %14g  %+g\n", kv.name, kv.value, delta)
			}
			prev[kv.name] = kv.value
		}
		first = false
		time.Sleep(interval)
	}
}
