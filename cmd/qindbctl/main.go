// Command qindbctl is a command-line client for a qindbd storage node.
//
//	qindbctl -addr 127.0.0.1:7707 put  <key> <version> <value>
//	qindbctl -addr 127.0.0.1:7707 putd <key> <version>          # dedup put
//	qindbctl -addr 127.0.0.1:7707 get  <key> <version>
//	qindbctl -addr 127.0.0.1:7707 del  <key> <version>
//	qindbctl -addr 127.0.0.1:7707 drop <version>
//	qindbctl -addr 127.0.0.1:7707 range [<from> [<to>]]
//	qindbctl -addr 127.0.0.1:7707 load <version>                # batched key<TAB>value lines from stdin
//	qindbctl -addr 127.0.0.1:7707 stats
//	qindbctl -addr 127.0.0.1:7707 ping
//	qindbctl -http 127.0.0.1:8080 trace <trace-id>              # one trace's timeline
//	qindbctl trace -nodes 'h1:8080,h2:8080' <trace-id>          # fleet-wide merged timeline
//	qindbctl -http 127.0.0.1:8080 slowlog [-n 20] [-op get] [-trace id]
//	qindbctl -http 127.0.0.1:8080 events [-since N] [-n 20] [-follow]
//	qindbctl profile -nodes 'a,b,c' [-type heap] [-seconds 5] [-out dir]  # fleet-wide pprof capture
//	qindbctl fleet -nodes 'a,b,c' <put|get|drop|load|where|status|record>  # shard router over several nodes
//	qindbctl index <list|create|build|ingest|query|export|import>          # index lifecycle (see index -h)
//	qindbctl search <name> <term>...                                       # query an index (= index query)
//
// -timeout bounds each operation (and the dial); load streams stdin
// into OpBatch frames, one round trip per batch instead of per record.
// trace, slowlog, events and profile talk to the daemon's operator HTTP
// address (qindbd -metrics-addr) instead of the storage port; trace
// -nodes fetches the same trace id from every listed operator address
// and merges the spans into one cross-node timeline. events -follow
// long polls so new events stream as they happen. profile captures one
// windowed pprof delta per node in parallel (heap, allocs, goroutine or
// cpu; the daemon must run with -pprof) and writes
// <node>.<type>.pprof files into -out. fleet ignores -addr and routes
// to its -nodes with rendezvous placement, quorum writes and hedged
// reads (see internal/fleet); fleet record appends periodic {ts, slo,
// throughput, p99, events} JSONL snapshots while driving canary reads.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"directload/internal/metrics"
	"directload/internal/server"
)

var (
	addr     = flag.String("addr", "127.0.0.1:7707", "qindbd address")
	httpAddr = flag.String("http", "127.0.0.1:8080", "qindbd operator HTTP address (for trace/slowlog)")
	timeout  = flag.Duration("timeout", 5*time.Second, "per-operation deadline (0 = none)")
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: qindbctl [-addr host:port] [-timeout 5s] <put|putd|get|del|drop|range|load|stats|metrics|ping|trace|slowlog|events|fleet> [args]")
	fmt.Fprintln(os.Stderr, "       load <version>                  batched load of key<TAB>value lines from stdin")
	fmt.Fprintln(os.Stderr, "       stats [-watch] [-interval 1s]   engine stats, or live metric deltas; -watch adds a")
	fmt.Fprintln(os.Stderr, "                                       runtime line (heap-live, gc-pause-p99, goroutines)")
	fmt.Fprintln(os.Stderr, "       trace [-nodes a,b] <trace-id>   one trace's timeline; -nodes merges spans fleet-wide")
	fmt.Fprintln(os.Stderr, "       slowlog [-n N] [-op get] [-trace id]  recent slow operations (-http address)")
	fmt.Fprintln(os.Stderr, "       events [-since N] [-n N] [-follow]    structured event log (-http address)")
	fmt.Fprintln(os.Stderr, "       profile [-nodes a,b] [-type heap] [-seconds 5] [-out dir]  pprof delta per node")
	fmt.Fprintln(os.Stderr, "       fleet -nodes 'a,b,c' <cmd>      shard router over several nodes (fleet -h)")
	fmt.Fprintln(os.Stderr, "       index <list|create|build|ingest|query|export|import>  index lifecycle (index -h)")
	fmt.Fprintln(os.Stderr, "       search <name> <term>...         query an index (= index query)")
	os.Exit(2)
}

// fetchHTTP GETs a path on the daemon's operator HTTP address and
// copies the body to stdout.
func fetchHTTP(path string) {
	client := &http.Client{Timeout: *timeout}
	url := "http://" + *httpAddr + path
	resp, err := client.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v (is qindbd running with -metrics-addr %s?)", url, err, *httpAddr)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		log.Fatal(err)
	}
}

// splitList splits a comma-separated flag value, dropping empty parts.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// collectTrace fetches one trace id from every listed operator endpoint
// and renders the merged fleet-wide timeline — spans from different
// processes nest under their cross-node parents.
func collectTrace(endpoints []string, id uint64) {
	c := &metrics.TraceCollector{
		Endpoints: endpoints,
		Client:    &http.Client{Timeout: *timeout},
	}
	merged, err := c.Collect(context.Background(), id)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := merged.WriteTimeline(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// captureProfiles fetches one windowed pprof delta from every listed
// operator endpoint in parallel and writes the files into dir, printing
// one result line per node. Exits non-zero when any node failed.
func captureProfiles(endpoints []string, typ string, seconds int, dir string) {
	pc := &metrics.ProfileCapture{
		Endpoints: endpoints,
		Type:      typ,
		Seconds:   seconds,
		// The capture blocks server-side for the delta window; give the
		// client the window plus the usual per-operation budget.
		Client: &http.Client{Timeout: time.Duration(seconds)*time.Second + *timeout + 10*time.Second},
	}
	results, err := pc.CaptureTo(context.Background(), dir)
	if err != nil {
		log.Fatal(err)
	}
	failed := 0
	for _, r := range results {
		if r.Err != "" {
			failed++
			fmt.Fprintf(os.Stderr, "%s: %s\n", r.Endpoint, r.Err)
			continue
		}
		fmt.Printf("%s -> %s (%d bytes)\n", r.Endpoint, r.Path, r.Bytes)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// followEvents long-polls the daemon's /events endpoint, printing new
// events as they arrive and advancing the cursor, until interrupted.
func followEvents(since uint64) {
	client := &http.Client{} // long poll: the server bounds each wait, not the client
	for {
		url := fmt.Sprintf("http://%s/events?since=%d&wait=30s&format=json", *httpAddr, since)
		resp, err := client.Get(url)
		if err != nil {
			log.Fatalf("GET %s: %v (is qindbd running with -metrics-addr %s?)", url, err, *httpAddr)
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			log.Fatalf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
		}
		var evs []metrics.Event
		err = json.NewDecoder(resp.Body).Decode(&evs)
		resp.Body.Close()
		if err != nil {
			log.Fatalf("decoding events: %v", err)
		}
		for _, e := range evs {
			suffix := ""
			if e.Node != "" {
				suffix += " node=" + e.Node
			}
			if e.Version != 0 {
				suffix += fmt.Sprintf(" v%d", e.Version)
			}
			if e.Detail != "" {
				suffix += " " + e.Detail
			}
			fmt.Printf("%d %s %s%s\n", e.Seq, e.Time.Format(time.RFC3339Nano), e.Type, suffix)
			if e.Seq > since {
				since = e.Seq
			}
		}
	}
}

func parseVersion(s string) uint64 {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		log.Fatalf("bad version %q: %v", s, err)
	}
	return v
}

func main() {
	log.SetFlags(0)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cmd, args := args[0], args[1:]
	// trace and slowlog talk to the operator HTTP address only — no
	// reason to require the storage port to be dialable.
	switch cmd {
	case "trace":
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		nodes := fs.String("nodes", "", "comma-separated operator HTTP addresses; fetch this trace from every one and merge into a fleet-wide timeline")
		fs.Parse(args)
		if fs.NArg() != 1 {
			usage()
		}
		id := strings.TrimPrefix(fs.Arg(0), "0x")
		idNum, err := strconv.ParseUint(id, 16, 64)
		if err != nil {
			log.Fatalf("bad trace id %q (want hex): %v", fs.Arg(0), err)
		}
		if *nodes != "" {
			collectTrace(splitList(*nodes), idNum)
			return
		}
		fetchHTTP("/debug/trace?id=" + id)
		return
	case "slowlog":
		fs := flag.NewFlagSet("slowlog", flag.ExitOnError)
		n := fs.Int("n", 0, "show only the newest N entries (0 = all retained)")
		op := fs.String("op", "", "show only this operation (put, get, batch, ...)")
		traceID := fs.String("trace", "", "show only entries of this trace id (hex)")
		fs.Parse(args)
		path := fmt.Sprintf("/debug/slowlog?n=%d", *n)
		if *op != "" {
			path += "&op=" + *op
		}
		if *traceID != "" {
			path += "&trace=" + strings.TrimPrefix(*traceID, "0x")
		}
		fetchHTTP(path)
		return
	case "events":
		fs := flag.NewFlagSet("events", flag.ExitOnError)
		since := fs.Uint64("since", 0, "resume after this sequence number")
		n := fs.Int("n", 0, "show only the newest N events (0 = all retained)")
		follow := fs.Bool("follow", false, "long-poll for new events until interrupted")
		fs.Parse(args)
		if *follow {
			followEvents(*since)
			return
		}
		fetchHTTP(fmt.Sprintf("/events?since=%d&n=%d", *since, *n))
		return
	case "profile":
		fs := flag.NewFlagSet("profile", flag.ExitOnError)
		nodes := fs.String("nodes", "", "comma-separated operator HTTP addresses; capture from every one in parallel (default: the -http address)")
		typ := fs.String("type", "heap", "profile type: heap, allocs, goroutine or cpu")
		seconds := fs.Int("seconds", 5, "delta window in seconds (0 = absolute snapshot; cpu always samples a window)")
		out := fs.String("out", ".", "directory to write <node>.<type>.pprof files into")
		fs.Parse(args)
		if fs.NArg() != 0 {
			usage()
		}
		endpoints := splitList(*nodes)
		if len(endpoints) == 0 {
			endpoints = []string{*httpAddr}
		}
		captureProfiles(endpoints, *typ, *seconds, *out)
		return
	case "fleet":
		// The router dials its own nodes; -addr is not involved.
		runFleet(args)
		return
	case "index", "search":
		// Index lifecycle rides the operator HTTP surface (or, with
		// -nodes, the fleet router); the storage port is not involved.
		runIndex(cmd, args)
		return
	}

	cl, err := server.Dial(*addr, server.WithTimeout(*timeout))
	if err != nil {
		log.Fatalf("dial %s: %v", *addr, err)
	}
	defer cl.Close()
	ctx := context.Background()

	switch cmd {
	case "put":
		if len(args) != 3 {
			usage()
		}
		if err := cl.PutContext(ctx, []byte(args[0]), parseVersion(args[1]), []byte(args[2]), false); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "putd":
		if len(args) != 2 {
			usage()
		}
		if err := cl.PutContext(ctx, []byte(args[0]), parseVersion(args[1]), nil, true); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "get":
		if len(args) != 2 {
			usage()
		}
		val, err := cl.GetContext(ctx, []byte(args[0]), parseVersion(args[1]))
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(val)
		fmt.Println()
	case "del":
		if len(args) != 2 {
			usage()
		}
		if err := cl.DelContext(ctx, []byte(args[0]), parseVersion(args[1])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "drop":
		if len(args) != 1 {
			usage()
		}
		if err := cl.DropVersionContext(ctx, parseVersion(args[0])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "range":
		var from, to []byte
		if len(args) > 0 {
			from = []byte(args[0])
		}
		if len(args) > 1 {
			to = []byte(args[1])
		}
		entries, applied, err := cl.RangeContext(ctx, from, to, 0)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range entries {
			fmt.Printf("%s\t@v%d\n", e.Key, e.Version)
		}
		if applied > 0 && len(entries) == applied {
			fmt.Fprintf(os.Stderr, "(truncated at server limit %d)\n", applied)
		}
	case "load":
		if len(args) != 1 {
			usage()
		}
		loadStdin(ctx, cl, parseVersion(args[0]))
	case "stats":
		fs := flag.NewFlagSet("stats", flag.ExitOnError)
		watch := fs.Bool("watch", false, "poll the server and print metric deltas until interrupted")
		interval := fs.Duration("interval", time.Second, "poll interval with -watch")
		fs.Parse(args)
		if *watch {
			watchStats(ctx, cl, *interval)
			return
		}
		st, err := cl.StatsContext(ctx)
		if err != nil {
			log.Fatal(err)
		}
		out, _ := json.MarshalIndent(st, "", "  ")
		fmt.Println(string(out))
	case "metrics":
		m, err := cl.MetricsContext(ctx)
		if err != nil {
			log.Fatal(err)
		}
		for _, kv := range flattenMetrics(m) {
			fmt.Printf("%s %g\n", kv.name, kv.value)
		}
	case "ping":
		if err := cl.PingContext(ctx); err != nil {
			log.Fatal(err)
		}
		fmt.Println("pong")
	default:
		usage()
	}
}

// loadStdin streams key<TAB>value lines into batched puts. A line
// without a tab stores its whole content as the key with an empty
// value.
func loadStdin(ctx context.Context, cl *server.Client, version uint64) {
	batch := cl.Batcher()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n int
	start := time.Now()
	for sc.Scan() {
		key, value, _ := strings.Cut(sc.Text(), "\t")
		if key == "" {
			continue
		}
		if err := batch.Put(ctx, []byte(key), version, []byte(value), false); err != nil {
			log.Fatalf("line %d: %v", n+1, err)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if err := batch.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("loaded %d records @v%d in %s (%.0f/s)\n",
		n, version, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
}

// metricKV is one flattened metric line.
type metricKV struct {
	name  string
	value float64
}

// flattenMetrics turns the nested OpMetrics snapshot into sorted
// name/value lines: scalar metrics pass through, histograms expand to
// suffixed entries (qindb.put.latency_us.p99 etc.).
func flattenMetrics(m map[string]any) []metricKV {
	var out []metricKV
	for name, v := range m {
		switch val := v.(type) {
		case float64:
			out = append(out, metricKV{name, val})
		case map[string]any:
			for field, fv := range val {
				if n, ok := fv.(float64); ok {
					out = append(out, metricKV{name + "." + field, n})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// watchRow is one line of the -watch view: a scalar metric's value, or
// a histogram's count with its current p99 alongside.
type watchRow struct {
	name  string
	value float64
	p99   float64 // < 0 when the metric is not a histogram
}

// flattenWatch turns the nested OpMetrics snapshot into sorted -watch
// rows: scalars pass through, each histogram becomes one row whose
// value is its count and whose p99 rides in its own column (rather than
// exploding into seven suffixed lines as the metrics command does).
func flattenWatch(m map[string]any) []watchRow {
	var out []watchRow
	for name, v := range m {
		switch val := v.(type) {
		case float64:
			out = append(out, watchRow{name, val, -1})
		case map[string]any:
			count, _ := val["count"].(float64)
			p99 := -1.0
			if p, ok := val["p99"].(float64); ok {
				p99 = p
			}
			out = append(out, watchRow{name, count, p99})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// runtimeSummary condenses the runtime sampler's gauges into one line
// for the -watch header: live heap, GC pause p99 and goroutine count.
// Returns "" when the server predates the runtime sampler (none of the
// gauges are present).
func runtimeSummary(m map[string]any) string {
	heap, okHeap := m["runtime.heap.live_bytes"].(float64)
	pause, okPause := m["runtime.gc.pause_p99_us"].(float64)
	gor, okGor := m["runtime.goroutines"].(float64)
	if !okHeap && !okPause && !okGor {
		return ""
	}
	return fmt.Sprintf("runtime: heap-live %.1f MiB   gc-pause-p99 %.0f us   goroutines %.0f",
		heap/(1<<20), pause, gor)
}

// watchStats polls the server's metrics and renders per-interval deltas,
// top-like, until the process is interrupted. Histogram rows show their
// count plus a live p99 column; a runtime summary line (heap-live,
// gc-pause-p99, goroutines) rides under the timestamp header when the
// server exports the runtime gauges.
func watchStats(ctx context.Context, cl *server.Client, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	prev := make(map[string]float64)
	first := true
	for {
		m, err := cl.MetricsContext(ctx)
		if err != nil {
			log.Fatal(err)
		}
		rows := flattenWatch(m)
		if !first {
			fmt.Println()
		}
		fmt.Printf("--- %-44s %14s %12s %12s ---\n",
			time.Now().Format("15:04:05"), "value", "delta", "p99")
		if s := runtimeSummary(m); s != "" {
			fmt.Println(s)
		}
		for _, row := range rows {
			delta := ""
			if d := row.value - prev[row.name]; !first && d != 0 {
				delta = fmt.Sprintf("%+g", d)
			}
			p99 := ""
			if row.p99 >= 0 {
				p99 = fmt.Sprintf("%.1f", row.p99)
			}
			fmt.Printf("%-48s %14g %12s %12s\n", row.name, row.value, delta, p99)
			prev[row.name] = row.value
		}
		first = false
		time.Sleep(interval)
	}
}
