// Command qindb is a microbenchmark and inspection CLI for the QinDB
// storage engine and its LevelDB-style baseline — the per-node half of
// the paper's evaluation (Figs. 5-8).
//
//	go run ./cmd/qindb -engine qindb -keys 500 -versions 11
//	go run ./cmd/qindb -engine leveldb -reads 20000
//	go run ./cmd/qindb -mode latency
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"directload/internal/experiments"
)

var (
	engine   = flag.String("engine", "both", "engine: qindb, leveldb, both")
	mode     = flag.String("mode", "churn", "benchmark: churn (Figs 5-7), latency (Fig 8)")
	keys     = flag.Int("keys", 200, "distinct keys per version")
	valSize  = flag.Int("value", 20<<10, "mean value size in bytes")
	versions = flag.Int("versions", 11, "data versions to insert")
	retain   = flag.Int("retain", 4, "versions retained on flash")
	reads    = flag.Int("reads", 8000, "read operations (latency mode)")
	updates  = flag.Bool("updates", true, "interleave an update stream (latency mode)")
	seed     = flag.Int64("seed", 1, "workload seed")
)

func engines() []experiments.EngineKind {
	switch strings.ToLower(*engine) {
	case "qindb":
		return []experiments.EngineKind{experiments.QinDB}
	case "leveldb":
		return []experiments.EngineKind{experiments.LevelDB}
	default:
		return []experiments.EngineKind{experiments.LevelDB, experiments.QinDB}
	}
}

func main() {
	log.SetFlags(0)
	flag.Parse()
	switch strings.ToLower(*mode) {
	case "churn":
		churn()
	case "latency":
		latency()
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

func churn() {
	cfg := experiments.Fig5Config{
		Keys:           *keys,
		ValueSize:      *valSize,
		Versions:       *versions,
		Retain:         *retain,
		DeviceCapacity: 4 << 30,
		Seed:           *seed,
		Window:         experiments.DefaultFig5Config().Window,
	}
	fmt.Printf("churn workload: %d keys x %d versions x ~%d KB values, retain %d\n\n",
		cfg.Keys, cfg.Versions, cfg.ValueSize>>10, cfg.Retain)
	for _, kind := range engines() {
		r, err := experiments.RunFig5(kind, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s user %8.2f MB/s (stddev %.2f, cv %.2f)\n", r.Engine, r.UserMBps, r.UserStdDev, r.UserCV)
		fmt.Printf("         sys  %8.2f MB/s write, %8.2f MB/s read\n", r.SysWriteMBps, r.SysReadMBps)
		fmt.Printf("         write amplification %.2fx | disk %0.2f MB | device time %v\n\n",
			r.WriteAmp, r.FinalDiskGB*1024, r.Elapsed)
	}
}

func latency() {
	cfg := experiments.Fig8Config{
		Keys:           *keys,
		ValueSize:      *valSize,
		LoadVersions:   *retain,
		Reads:          *reads,
		ZipfSkew:       1.2,
		DeviceCapacity: 4 << 30,
		Seed:           *seed,
		WithUpdates:    *updates,
		UpdateEvery:    4,
	}
	fmt.Printf("latency workload: %d keys, %d reads, updates=%v\n\n", cfg.Keys, cfg.Reads, *updates)
	for _, kind := range engines() {
		r, err := experiments.RunFig8(kind, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s mean %6.0f us | p99 %6.0f us | p99.9 %6.0f us | max %6.0f us (%d reads)\n",
			r.Engine, r.Latency.Mean, r.Latency.P99, r.Latency.P999, r.Latency.Max, r.Latency.Count)
	}
}
