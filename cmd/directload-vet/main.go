// Command directload-vet is the repo's custom analyzer suite. It
// speaks the (unpublished) `go vet -vettool` protocol, so the go
// command does package loading, export data and result caching:
//
//	go build -o bin/directload-vet ./cmd/directload-vet
//	go vet -vettool=bin/directload-vet ./...
//
// Invoked with package patterns instead of a .cfg file it re-executes
// itself through `go vet`, so `go run ./cmd/directload-vet ./...`
// also works. Individual analyzers can be selected with their name as
// a boolean flag (`-locksafe ./...`); by default all run.
//
// Findings are suppressed with a lint directive on the flagged line
// or the line above:
//
//	//lint:ignore <analyzer> reason
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"directload/internal/analysis"
	"directload/internal/analysis/blockalign"
	"directload/internal/analysis/ctxflow"
	"directload/internal/analysis/errflow"
	"directload/internal/analysis/locksafe"
	"directload/internal/analysis/nilmetrics"
)

// suite is every analyzer directload-vet runs, in report order.
var suite = []*analysis.Analyzer{
	blockalign.Analyzer,
	ctxflow.Analyzer,
	errflow.Analyzer,
	locksafe.Analyzer,
	nilmetrics.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command probes `directload-vet -flags` before the real
	// run to learn which flags it may forward.
	if len(args) == 1 && args[0] == "-flags" {
		return printFlags()
	}

	fs := flag.NewFlagSet("directload-vet", flag.ExitOnError)
	version := fs.String("V", "", "print version and exit (go command protocol)")
	list := fs.Bool("list", false, "list analyzers and exit")
	selected := make(map[string]*bool, len(suite))
	for _, a := range suite {
		selected[a.Name] = fs.Bool(a.Name, false, "run only "+a.Name+" (default: all)")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version != "" {
		// The exact shape the go command expects from tool -V=full:
		// "<name> version <non-devel-version>". The version doubles as
		// the vet cache key, so bump it when analyzer behavior changes.
		fmt.Printf("directload-vet version 0.1.0\n")
		return 0
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := suite
	var picked []*analysis.Analyzer
	var pickedFlags []string
	for _, a := range suite {
		if *selected[a.Name] {
			picked = append(picked, a)
			pickedFlags = append(pickedFlags, "-"+a.Name)
		}
	}
	if len(picked) > 0 {
		analyzers = picked
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return analysis.RunUnit(rest[0], analyzers)
	}
	if len(rest) == 0 {
		fmt.Fprintln(os.Stderr, "usage: directload-vet [-<analyzer>...] <packages> | <vet.cfg>")
		return 2
	}
	return reexecGoVet(pickedFlags, rest)
}

// printFlags answers the go command's -flags query with the JSON
// description it expects.
func printFlags() int {
	type flagDesc struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var out []flagDesc
	for _, a := range suite {
		out = append(out, flagDesc{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println(string(data))
	return 0
}

// reexecGoVet runs `go vet -vettool=<self> <patterns>`, which hands
// each package back to this binary in .cfg form with export data and
// caching handled by the go command.
func reexecGoVet(analyzerFlags, patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "directload-vet: %v\n", err)
		return 1
	}
	cmdArgs := append([]string{"vet", "-vettool=" + self}, analyzerFlags...)
	cmdArgs = append(cmdArgs, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "directload-vet: %v\n", err)
		return 1
	}
	return 0
}
