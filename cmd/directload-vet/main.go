// Command directload-vet is the repo's custom analyzer suite. It
// speaks the (unpublished) `go vet -vettool` protocol, so the go
// command does package loading, export data, fact propagation and
// result caching:
//
//	go build -o bin/directload-vet ./cmd/directload-vet
//	go vet -vettool=bin/directload-vet ./...
//
// Invoked with package patterns instead of a .cfg file it re-executes
// itself through `go vet`, so `go run ./cmd/directload-vet ./...`
// also works. Individual analyzers can be selected with their name as
// a boolean flag (`-locksafe ./...`); by default all run.
//
// Machine-readable output (only meaningful in re-exec mode, where the
// whole run's findings are visible at once):
//
//	directload-vet -json ./...          findings as JSON on stdout
//	directload-vet -sarif=out.sarif ./...  SARIF 2.1.0 for CI upload
//
// Findings are suppressed with a lint directive on the flagged line
// or the line above:
//
//	//lint:ignore <analyzer> reason
//
// The reason is mandatory; `directload-vet -audit-ignores` lists every
// directive in the tree with its reason and fails if any directive
// lacks one.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"

	"directload/internal/analysis"
	"directload/internal/analysis/atomicmix"
	"directload/internal/analysis/blockalign"
	"directload/internal/analysis/bufown"
	"directload/internal/analysis/ctxflow"
	"directload/internal/analysis/errflow"
	"directload/internal/analysis/goroexit"
	"directload/internal/analysis/locksafe"
	"directload/internal/analysis/nilmetrics"
	"directload/internal/analysis/spanend"
)

// toolVersion doubles as the go command's vet cache key: bump it
// whenever analyzer behavior or the fact format changes, or stale
// cached results (and stale vetx files) survive the upgrade.
const toolVersion = "0.2.0"

// suite is every analyzer directload-vet runs, in report order.
var suite = []*analysis.Analyzer{
	atomicmix.Analyzer,
	blockalign.Analyzer,
	bufown.Analyzer,
	ctxflow.Analyzer,
	errflow.Analyzer,
	goroexit.Analyzer,
	locksafe.Analyzer,
	nilmetrics.Analyzer,
	spanend.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The go command probes `directload-vet -flags` before the real
	// run to learn which flags it may forward.
	if len(args) == 1 && args[0] == "-flags" {
		return printFlags(stdout, stderr)
	}

	fs := flag.NewFlagSet("directload-vet", flag.ExitOnError)
	version := fs.String("V", "", "print version and exit (go command protocol)")
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "print findings as JSON on stdout (re-exec mode)")
	sarifOut := fs.String("sarif", "", "write findings as SARIF 2.1.0 to this file, or - for stdout (re-exec mode)")
	audit := fs.Bool("audit-ignores", false, "list every //lint:ignore directive with its reason; fail on reasonless ones")
	selected := make(map[string]*bool, len(suite))
	for _, a := range suite {
		selected[a.Name] = fs.Bool(a.Name, false, "run only "+a.Name+" (default: all)")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version != "" {
		// The exact shape the go command expects from tool -V=full:
		// "<name> version <non-devel-version>".
		fmt.Fprintf(stdout, "directload-vet version %s\n", toolVersion)
		return 0
	}
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *audit {
		root := "."
		if fs.NArg() > 0 {
			root = fs.Arg(0)
		}
		return runAudit(root, stdout, stderr)
	}

	analyzers := suite
	var picked []*analysis.Analyzer
	var pickedFlags []string
	for _, a := range suite {
		if *selected[a.Name] {
			picked = append(picked, a)
			pickedFlags = append(pickedFlags, "-"+a.Name)
		}
	}
	if len(picked) > 0 {
		analyzers = picked
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return analysis.RunUnit(rest[0], analyzers)
	}
	if len(rest) == 0 {
		fmt.Fprintln(stderr, "usage: directload-vet [-<analyzer>...] [-json] [-sarif=FILE] <packages> | <vet.cfg> | -audit-ignores [dir]")
		return 2
	}
	return reexecGoVet(pickedFlags, rest, *jsonOut, *sarifOut, stdout, stderr)
}

// runAudit lists the tree's lint directives and fails on reasonless
// ones: a directive with no reason suppresses nothing (the engine
// treats it as inert), so it documents an intent it does not enforce.
func runAudit(root string, stdout, stderr io.Writer) int {
	entries, err := analysis.AuditIgnores(root)
	if err != nil {
		fmt.Fprintf(stderr, "directload-vet: audit: %v\n", err)
		return 1
	}
	bad := 0
	for _, e := range entries {
		fmt.Fprintln(stdout, e.String())
		if e.Reason == "" {
			bad++
		}
	}
	fmt.Fprintf(stdout, "%d directive(s), %d without a reason\n", len(entries), bad)
	if bad > 0 {
		fmt.Fprintf(stderr, "directload-vet: %d //lint:ignore directive(s) missing the mandatory reason\n", bad)
		return 2
	}
	return 0
}

// printFlags answers the go command's -flags query with the JSON
// description it expects. Only per-analyzer selection flags are
// forwardable; the driver-level output flags are not.
func printFlags(stdout, stderr io.Writer) int {
	type flagDesc struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var out []flagDesc
	for _, a := range suite {
		out = append(out, flagDesc{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintln(stdout, string(data))
	return 0
}

// finding is one parsed go vet diagnostic line.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// vetLineRe matches the diagnostic lines RunUnit prints through go
// vet: file:line:col: analyzer: message.
var vetLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): ([a-z]+): (.*)$`)

// parseVetLine extracts a finding from one stderr line, or ok=false
// for go vet's own chatter (# package headers, exit status, notes).
func parseVetLine(line string, analyzerNames map[string]bool) (finding, bool) {
	m := vetLineRe.FindStringSubmatch(line)
	if m == nil || !analyzerNames[m[4]] {
		return finding{}, false
	}
	ln, _ := strconv.Atoi(m[2])
	col, _ := strconv.Atoi(m[3])
	return finding{File: m[1], Line: ln, Col: col, Analyzer: m[4], Message: m[5]}, true
}

// reexecGoVet runs `go vet -vettool=<self> <patterns>`, which hands
// each package back to this binary in .cfg form with export data,
// fact propagation and caching handled by the go command. Findings
// stream through to stderr as usual; with -json or -sarif they are
// additionally parsed out of the stream and re-emitted structurally.
func reexecGoVet(analyzerFlags, patterns []string, jsonOut bool, sarifPath string, stdout, stderr io.Writer) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "directload-vet: %v\n", err)
		return 1
	}
	cmdArgs := append([]string{"vet", "-vettool=" + self}, analyzerFlags...)
	cmdArgs = append(cmdArgs, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stdout = stdout
	cmd.Stdin = os.Stdin

	var captured bytes.Buffer
	if jsonOut || sarifPath != "" {
		cmd.Stderr = io.MultiWriter(stderr, &captured)
	} else {
		cmd.Stderr = stderr
	}

	code := 0
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else {
			fmt.Fprintf(stderr, "directload-vet: %v\n", err)
			return 1
		}
	}
	if !jsonOut && sarifPath == "" {
		return code
	}

	names := make(map[string]bool, len(suite))
	for _, a := range suite {
		names[a.Name] = true
	}
	findings := []finding{}
	sc := bufio.NewScanner(&captured)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if f, ok := parseVetLine(sc.Text(), names); ok {
			findings = append(findings, f)
		}
	}

	if jsonOut {
		data, _ := json.MarshalIndent(findings, "", "  ")
		fmt.Fprintln(stdout, string(data))
	}
	if sarifPath != "" {
		data, err := json.MarshalIndent(sarifReport(findings), "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "directload-vet: sarif: %v\n", err)
			return 1
		}
		if sarifPath == "-" {
			fmt.Fprintln(stdout, string(data))
		} else if err := os.WriteFile(sarifPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "directload-vet: sarif: %v\n", err)
			return 1
		}
	}
	return code
}

// sarifReport renders findings as a minimal SARIF 2.1.0 log, the
// shape code-scanning UIs ingest. Built from maps rather than a type
// hierarchy: the format is write-only here.
func sarifReport(findings []finding) map[string]any {
	rules := make([]map[string]any, 0, len(suite))
	for _, a := range suite {
		rules = append(rules, map[string]any{
			"id":               a.Name,
			"shortDescription": map[string]any{"text": a.Doc},
		})
	}
	results := make([]map[string]any, 0, len(findings))
	for _, f := range findings {
		results = append(results, map[string]any{
			"ruleId":  f.Analyzer,
			"level":   "warning",
			"message": map[string]any{"text": f.Message},
			"locations": []map[string]any{{
				"physicalLocation": map[string]any{
					"artifactLocation": map[string]any{"uri": f.File},
					"region": map[string]any{
						"startLine":   f.Line,
						"startColumn": f.Col,
					},
				},
			}},
		})
	}
	return map[string]any{
		"$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		"version": "2.1.0",
		"runs": []map[string]any{{
			"tool": map[string]any{
				"driver": map[string]any{
					"name":    "directload-vet",
					"version": toolVersion,
					"rules":   rules,
				},
			},
			"results": results,
		}},
	}
}
