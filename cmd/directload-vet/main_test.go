package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseVetLine(t *testing.T) {
	names := map[string]bool{"bufown": true, "spanend": true}
	cases := []struct {
		line string
		ok   bool
		want finding
	}{
		{
			line: "internal/fleet/fleet.go:456:2: bufown: pooled buffer buf used after Put",
			ok:   true,
			want: finding{File: "internal/fleet/fleet.go", Line: 456, Col: 2, Analyzer: "bufown", Message: "pooled buffer buf used after Put"},
		},
		{
			line: "/abs/path/x.go:1:1: spanend: span closer end is never called: defer it",
			ok:   true,
			want: finding{File: "/abs/path/x.go", Line: 1, Col: 1, Analyzer: "spanend", Message: "span closer end is never called: defer it"},
		},
		{line: "# directload/internal/fleet", ok: false},
		{line: "exit status 2", ok: false},
		{line: "internal/fleet/fleet.go:456:2: printf: not in our suite", ok: false},
		{line: "", ok: false},
	}
	for _, c := range cases {
		got, ok := parseVetLine(c.line, names)
		if ok != c.ok {
			t.Errorf("parseVetLine(%q): ok=%v, want %v", c.line, ok, c.ok)
			continue
		}
		if ok && got != c.want {
			t.Errorf("parseVetLine(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}
}

func TestSarifReport(t *testing.T) {
	fs := []finding{
		{File: "a.go", Line: 3, Col: 7, Analyzer: "goroexit", Message: "goroutine loops with no termination path"},
	}
	data, err := json.Marshal(sarifReport(fs))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name    string `json:"name"`
					Version string `json:"version"`
					Rules   []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("unmarshal round trip: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("bad log shell: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "directload-vet" || run.Tool.Driver.Version != toolVersion {
		t.Errorf("driver = %s %s", run.Tool.Driver.Name, run.Tool.Driver.Version)
	}
	if len(run.Tool.Driver.Rules) != len(suite) {
		t.Errorf("rules: %d, want one per analyzer (%d)", len(run.Tool.Driver.Rules), len(suite))
	}
	if len(run.Results) != 1 {
		t.Fatalf("results: %d, want 1", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "goroexit" || r.Locations[0].PhysicalLocation.ArtifactLocation.URI != "a.go" ||
		r.Locations[0].PhysicalLocation.Region.StartLine != 3 {
		t.Errorf("bad result: %+v", r)
	}
}

func TestVersionHandshake(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errw); code != 0 {
		t.Fatalf("-V=full: exit %d, stderr %s", code, errw.String())
	}
	want := "directload-vet version " + toolVersion + "\n"
	if out.String() != want {
		t.Errorf("-V=full printed %q, want %q", out.String(), want)
	}
}

func TestAuditIgnores(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("good.go", "package p\n\n//lint:ignore goroexit process-lifetime flusher\nvar x int\n")
	write("sub/clean.go", "package q\nvar y int\n")
	write("testdata/src/fix/fix.go", "package fix\n//lint:ignore errflow fixture directive must not be audited\n")

	var out, errw bytes.Buffer
	if code := run([]string{"-audit-ignores", dir}, &out, &errw); code != 0 {
		t.Fatalf("audit of reasoned tree: exit %d, stderr %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "goroexit — process-lifetime flusher") {
		t.Errorf("audit output missing the directive: %s", out.String())
	}
	if strings.Contains(out.String(), "fixture directive") {
		t.Errorf("audit descended into testdata: %s", out.String())
	}

	write("bad.go", "package p\n\n//lint:ignore spanend\nvar z int\n")
	out.Reset()
	errw.Reset()
	if code := run([]string{"-audit-ignores", dir}, &out, &errw); code == 0 {
		t.Fatalf("audit passed with a reasonless directive:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "no reason") {
		t.Errorf("audit output does not call out the reasonless directive: %s", out.String())
	}
}
