// Command directload runs the end-to-end system simulation: a builder
// data center publishing versioned index data through Bifrost to six
// regional data centers running Mint/QinDB, with the full operational
// lifecycle (gray release, consistency audit, activation, retention).
//
//	go run ./cmd/directload -versions 6 -keys 500
//	go run ./cmd/directload -dedup=false          # the baseline system
//	go run ./cmd/directload -engine leveldb       # baseline storage
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"directload/internal/aof"
	"directload/internal/bifrost"
	"directload/internal/cluster"
	"directload/internal/core"
	"directload/internal/lsm"
	"directload/internal/mint"
	"directload/internal/workload"
)

var (
	versions  = flag.Int("versions", 5, "index versions to publish")
	keys      = flag.Int("keys", 400, "keys per version")
	valSize   = flag.Int("value", 8<<10, "mean value size in bytes")
	dupRatio  = flag.Float64("dup", 0.7, "cross-version duplicate ratio")
	dedup     = flag.Bool("dedup", true, "enable Bifrost deduplication")
	engine    = flag.String("engine", "qindb", "storage engine: qindb or leveldb")
	bandwidth = flag.Float64("bw", 5e6, "link bandwidth in bytes/sec")
	corrupt   = flag.Float64("corrupt", 0.02, "per-hop corruption probability")
	seed      = flag.Int64("seed", 1, "workload and failure seed")
)

func main() {
	log.SetFlags(0)
	flag.Parse()

	cfg := cluster.Config{
		Topology: bifrost.TopologyConfig{
			RegionNames:       []string{"north", "east", "south"},
			RelaysPerRegion:   6,
			DCsPerRegion:      2,
			BuilderUplink:     *bandwidth,
			BackboneBandwidth: *bandwidth,
			RegionalBandwidth: *bandwidth,
			ReserveStreams:    true,
			MonitorInterval:   time.Second,
		},
		Mint: mint.Config{
			Groups:        2,
			NodesPerGroup: 3,
			Replicas:      3,
			NodeCapacity:  512 << 20,
		},
		SliceLimit:     1 << 20,
		RetainVersions: 4,
		DedupEnabled:   *dedup,
		CorruptProb:    *corrupt,
		Seed:           *seed,
	}
	if strings.EqualFold(*engine, "leveldb") {
		cfg.Mint.Factory = mint.LSMFactory(lsm.DefaultOptions())
	} else {
		opts := core.DefaultOptions()
		opts.AOF = aof.Config{FileSize: 8 << 20, GCThreshold: 0.25}
		cfg.Mint.Factory = mint.QinDBFactory(opts)
	}

	sys, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	gen, err := workload.NewGenerator(workload.KVConfig{
		Keys: *keys, ValueSize: *valSize, ValueSizeStdDev: *valSize / 8,
		DupRatio: *dupRatio, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("DirectLoad simulation: %d DCs, dedup=%v, engine=%s\n\n",
		len(sys.DCs), *dedup, strings.ToLower(*engine))

	grayDC := sys.Top.Regions[0].DCs[0]
	auditKeys := make([][]byte, 0, 64)
	for i := 0; i < *keys && i < 64; i++ {
		auditKeys = append(auditKeys, gen.Key(i))
	}

	for v := uint64(1); v <= uint64(*versions); v++ {
		var entries []cluster.Entry
		err := gen.NextVersion(func(e workload.Entry) error {
			stream := bifrost.StreamInverted
			if len(entries)%3 == 0 {
				stream = bifrost.StreamSummary
			}
			entries = append(entries, cluster.Entry{Key: e.Key, Value: e.Value, Stream: stream})
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.PublishVersion(v, entries)
		if err != nil {
			log.Fatalf("publish v%d: %v", v, err)
		}
		saving := 0.0
		if rep.PayloadBytes > 0 {
			saving = 1 - float64(rep.WireBytes)/float64(rep.PayloadBytes)
		}
		fmt.Printf("v%d published: %5.1f MB payload, %5.1f MB on wire (%4.1f%% saved), "+
			"network %v, slowest DC load %v\n",
			v, float64(rep.PayloadBytes)/(1<<20), float64(rep.WireBytes)/(1<<20),
			100*saving, rep.UpdateTime.Round(time.Millisecond),
			(rep.EffectiveTime() - rep.UpdateTime).Round(time.Millisecond))

		// Gray release, audit, then activate everywhere.
		if err := sys.GrayRelease(v, grayDC); err != nil {
			log.Fatal(err)
		}
		inc := sys.AuditConsistency(auditKeys)
		fmt.Printf("   gray on %s: cross-region inconsistency %.2f%%", grayDC, 100*inc)
		if err := sys.ActivateEverywhere(v); err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" -> activated everywhere\n")
	}

	st := sys.Shipper.Stats()
	fmt.Printf("\nshipper: %d slices, %d deliveries, %d retransmits, %d repairs, miss ratio %.3f%%\n",
		st.SlicesSent, st.Deliveries, st.Retransmits, st.Repairs, 100*sys.Shipper.MissRatio())
	fmt.Printf("retained versions: %v\n", sys.Versions())
	var totalKeys int
	var disk int64
	for _, dc := range sys.DCs {
		s := dc.Store.Stats()
		totalKeys += s.Keys
		disk += s.DiskBytes
	}
	fmt.Printf("cluster: %d memtable items across DCs, %.1f MB on flash\n",
		totalKeys, float64(disk)/(1<<20))
}
