// Command figures regenerates every figure of the paper's evaluation
// section from the same runners the benchmarks use, printing the series
// and summary statistics, and optionally writing CSV files.
//
//	go run ./cmd/figures              # everything
//	go run ./cmd/figures -fig 5       # one figure (5, 6, 7, 8, 9, 10)
//	go run ./cmd/figures -fig rum     # §5 RUM ablation
//	go run ./cmd/figures -csv out/    # also write CSV series
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"directload/internal/experiments"
	"directload/internal/metrics"
)

var (
	figFlag = flag.String("fig", "all", "figure to regenerate: 5, 6, 7, 8, 9, 10, rum, iface, traceback, consistency, all")
	csvDir  = flag.String("csv", "", "directory to write CSV series into (optional)")
	seed    = flag.Int64("seed", 1, "workload seed")
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	which := strings.ToLower(*figFlag)
	run := func(name string) bool { return which == "all" || which == name }

	if run("5") || run("6") || run("7") {
		fig567()
	}
	if run("8") {
		fig8()
	}
	if run("9") || run("10") {
		fig910(run("9"), run("10") || which == "all")
	}
	if run("rum") {
		rum()
	}
	if run("iface") {
		iface()
	}
	if run("traceback") {
		traceback()
	}
	if run("consistency") {
		consistency()
	}
}

func consistency() {
	base := experiments.DefaultConsistencyConfig()
	base.Seed = *seed
	rs, err := experiments.ConsistencySweep(base, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== §3 gray-release search consistency vs content churn ==")
	fmt.Println("   paper: < 0.1% of search results inconsistent during gray release")
	fmt.Printf("%10s %14s %14s %14s\n", "churn", "changed-docs", "during-gray", "after-activate")
	for _, r := range rs {
		fmt.Printf("%10.2f %14d %13.2f%% %13.2f%%\n",
			r.MutateProb, r.ChangedDocs, 100*r.RateDuring, 100*r.RateAfter)
	}
	fmt.Println()
}

func writeCSV(name string, header string, s *metrics.Series) {
	if *csvDir == "" {
		return
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(*csvDir, name)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintln(f, header)
	xs, ys := s.Points()
	for i := range xs {
		fmt.Fprintf(f, "%.6f,%.6f\n", xs[i], ys[i])
	}
	log.Printf("wrote %s (%d points)", path, len(xs))
}

func fig567() {
	cfg := experiments.DefaultFig5Config()
	cfg.Seed = *seed
	q, l, err := experiments.Fig5Pair(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Figure 5: write amplification (LevelDB vs QinDB) ==")
	fmt.Println("   paper: LevelDB user 1.5 MB/s vs sys 30-50 MB/s (20-25x WA);")
	fmt.Println("          QinDB user 3.5 MB/s vs sys 7.5 MB/s (~2.1x WA)")
	for _, r := range []experiments.Fig5Result{l, q} {
		fmt.Printf("%-8s user %7.2f MB/s | sys write %7.2f MB/s | sys read %7.2f MB/s | WA %5.2fx | elapsed %v\n",
			r.Engine, r.UserMBps, r.SysWriteMBps, r.SysReadMBps, r.WriteAmp, r.Elapsed)
	}
	fmt.Printf("QinDB ingest speedup: %.2fx (paper: ~3x)\n\n", float64(l.Elapsed)/float64(q.Elapsed))

	fmt.Println("== Figure 6: user-write throughput dynamics ==")
	fmt.Println("   paper: stddev 0.6616 MB/s (LevelDB) vs 0.0501 MB/s (QinDB)")
	for _, r := range []experiments.Fig5Result{l, q} {
		fmt.Printf("%-8s stddev %7.3f MB/s | coefficient of variation %.3f | %d windows\n",
			r.Engine, r.UserStdDev, r.UserCV, r.UserWrite.Len())
	}
	fmt.Println()

	fmt.Println("== Figure 7: storage occupation ==")
	fmt.Println("   paper: QinDB ~80 GB vs LevelDB ~40 GB at the end of the run")
	for _, r := range []experiments.Fig5Result{l, q} {
		_, _, _, peak := r.Storage.YStats()
		fmt.Printf("%-8s final %7.2f MB | peak %7.2f MB\n",
			r.Engine, r.FinalDiskGB*1024, peak*1024)
	}
	fmt.Println()

	writeCSV("fig5_leveldb_user.csv", "minutes,MBps", l.UserWrite)
	writeCSV("fig5_leveldb_syswrite.csv", "minutes,MBps", l.SysWrite)
	writeCSV("fig5_leveldb_sysread.csv", "minutes,MBps", l.SysRead)
	writeCSV("fig5_qindb_user.csv", "minutes,MBps", q.UserWrite)
	writeCSV("fig5_qindb_syswrite.csv", "minutes,MBps", q.SysWrite)
	writeCSV("fig5_qindb_sysread.csv", "minutes,MBps", q.SysRead)
	writeCSV("fig7_leveldb_storage.csv", "minutes,GB", l.Storage)
	writeCSV("fig7_qindb_storage.csv", "minutes,GB", q.Storage)
}

func fig8() {
	cfg := experiments.DefaultFig8Config()
	cfg.Seed = *seed
	rs, err := experiments.Fig8All(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Figure 8: read latency (us) ==")
	fmt.Println("   paper 8a (no updates):  QinDB 1803/3558/6574  LevelDB 1846/3909/15081")
	fmt.Println("   paper 8b (with updates): QinDB 2104/4397/13663 LevelDB 2668/12789/26458")
	fmt.Printf("%-8s %-13s %9s %9s %9s %9s\n", "engine", "scenario", "mean", "p99", "p99.9", "max")
	for _, r := range rs {
		fmt.Printf("%-8s %-13s %9.0f %9.0f %9.0f %9.0f\n",
			r.Engine, r.Scenario, r.Latency.Mean, r.Latency.P99, r.Latency.P999, r.Latency.Max)
	}
	fmt.Println()
}

func fig910(show9, show10 bool) {
	cfg := experiments.DefaultMonthConfig()
	cfg.Seed = *seed
	with, without, days, withoutDays, err := experiments.MonthPair(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if show9 {
		fmt.Println("== Figure 9: dedup ratio and update time within one month ==")
		fmt.Println("   paper: 23% dedup -> 130 min; ~80% dedup -> ~30 min (anti-correlated)")
		fmt.Printf("%5s %12s %12s %9s\n", "day", "dedup-ratio", "update-min", "repairs")
		for _, d := range days {
			fmt.Printf("%5d %12.2f %12.3f %9d\n", d.Day, d.DedupRatio, d.UpdateMinutes, d.Repairs)
		}
		fmt.Println()
		series := &metrics.Series{}
		for _, d := range days {
			series.Append(float64(d.Day), d.UpdateMinutes)
		}
		writeCSV("fig9_update_time.csv", "day,update_min", series)
		ratio := &metrics.Series{}
		for _, d := range days {
			ratio.Append(float64(d.Day), d.DedupRatio)
		}
		writeCSV("fig9_dedup_ratio.csv", "day,dedup_ratio", ratio)
	}
	if show10 {
		fmt.Println("== Figure 10a: updating throughput (10^3 keys/s) ==")
		fmt.Println("   paper: up to 5x improvement with DirectLoad")
		mean, peak, clean := experiments.PairwiseSpeedup(days, withoutDays)
		fmt.Printf("DirectLoad %8.3f kps | baseline %8.3f kps\n", with.MeanKps, without.MeanKps)
		fmt.Printf("clean-day speedup: mean %.2fx, peak %.2fx (%d clean days)\n", mean, peak, clean)
		fmt.Println()
		fmt.Println("== Figure 10b: miss ratio ==")
		fmt.Println("   paper: 0.24% against a 0.6% SLO")
		fmt.Printf("DirectLoad miss ratio %.3f%% (SLO 0.6%%) | baseline %.3f%%\n",
			100*with.MissRatio, 100*without.MissRatio)
		fmt.Println()
		fmt.Println("== Headline numbers ==")
		saving := 1 - float64(with.WireBytes)/float64(with.PayloadBytes)
		fmt.Printf("bandwidth saved by dedup: %.1f%% (paper: 63%%)\n", 100*saving)
		mean2, _, _ := experiments.PairwiseSpeedup(days, withoutDays)
		fmt.Printf("update cycle compression (clean days): %.2fx (paper: 15 days -> 3 days = 5x)\n", mean2)
		fmt.Println()
	}
}

func rum() {
	cfg := experiments.DefaultFig5Config()
	cfg.Seed = *seed
	pts, err := experiments.RunRUMAblation(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== §5 RUM conjecture: lazy-GC threshold sweep on QinDB ==")
	fmt.Printf("%10s %8s %10s %10s %8s %12s\n",
		"threshold", "WA (U)", "read-us(R)", "disk-MB(M)", "gc-runs", "recovery")
	for _, p := range pts {
		fmt.Printf("%10.2f %8.2f %10.0f %10.1f %8d %12v\n",
			p.GCThreshold, p.WriteAmp, p.ReadMeanUs, p.DiskGB*1024, p.GCRuns, p.RecoveryTime)
	}
	fmt.Println()
}

func iface() {
	cfg := experiments.DefaultFig5Config()
	cfg.Seed = *seed
	rs, err := experiments.RunInterfaceAblation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Ablation: native (block-aligned) vs FTL flash interface ==")
	fmt.Printf("%-8s %-8s %8s %12s %10s\n", "engine", "iface", "WA", "migrations", "erases")
	for _, r := range rs {
		fmt.Printf("%-8s %-8s %8.2f %12d %10d\n",
			r.Engine, r.Interface, r.WriteAmp, r.Migrations, r.Erases)
	}
	fmt.Println()
}

func traceback() {
	pts, err := experiments.RunTracebackAblation(200, 16<<10, 8, nil, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Ablation: dedup traceback cost (bind-at-PUT) ==")
	fmt.Printf("%10s %10s %12s\n", "dup-ratio", "read-us", "tracebacks")
	for _, p := range pts {
		fmt.Printf("%10.1f %10.0f %12d\n", p.DupRatio, p.ReadMeanUs, p.Tracebacks)
	}
	fmt.Println()
}
