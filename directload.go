// Package directload is the public API of the DirectLoad reproduction —
// a web-scale index updating system (Qin et al., ICDE 2019) consisting
// of:
//
//   - QinDB, a key-value storage engine that replaces the LSM-tree with
//     an in-memory sorted memtable plus append-only files (AOFs) on
//     block-aligned flash, eliminating write amplification at both the
//     software and hardware level (open one with OpenStore);
//   - Bifrost, the cross-region delivery subsystem that removes ~70% of
//     update traffic by cross-version deduplication (NewDeduper) and
//     ships checksummed slices over a simulated national fabric;
//   - Mint, the regional distributed store placing replicas by key hash
//     onto node groups (NewMintCluster);
//   - the full orchestrated system with version lifecycle, gray release
//     and rollback (NewSystem).
//
// Everything runs over a built-in page/block-accurate SSD simulator, so
// the library is fully self-contained: no hardware, files or network
// access is required. See DESIGN.md for the mapping to the paper and
// EXPERIMENTS.md for the reproduced results.
package directload

import (
	"context"
	"time"

	"directload/internal/aof"
	"directload/internal/bifrost"
	"directload/internal/blockfs"
	"directload/internal/cluster"
	"directload/internal/core"
	"directload/internal/indexer"
	"directload/internal/lsm"
	"directload/internal/metrics"
	"directload/internal/mint"
	"directload/internal/ops"
	"directload/internal/server"
	"directload/internal/ssd"
	"directload/internal/workload"
)

// Re-exported building blocks. The aliases expose the full method sets
// of the internal implementations without letting callers construct
// inconsistent stacks by hand.
type (
	// Store is a QinDB engine instance (paper §2.3).
	Store = core.DB
	// StoreOptions configures a Store.
	StoreOptions = core.Options
	// StoreStats are QinDB engine counters.
	StoreStats = core.Stats

	// AOFConfig tunes the append-only file store and its lazy GC.
	AOFConfig = aof.Config

	// Deduper strips values unchanged since the previous version.
	Deduper = bifrost.Deduper
	// DedupStats summarizes deduplication effectiveness.
	DedupStats = bifrost.DedupStats
	// Slice is Bifrost's checksummed transmission unit.
	Slice = bifrost.Slice
	// SliceBuilder packs records into slices.
	SliceBuilder = bifrost.SliceBuilder

	// MintCluster is a regional replicated store.
	MintCluster = mint.Cluster
	// MintConfig sizes a MintCluster.
	MintConfig = mint.Config

	// System is the fully assembled DirectLoad deployment.
	System = cluster.DirectLoad
	// SystemConfig assembles a System.
	SystemConfig = cluster.Config
	// SystemEntry is one index record offered to PublishVersion.
	SystemEntry = cluster.Entry
	// UpdateReport summarizes one published version.
	UpdateReport = cluster.UpdateReport

	// SSDConfig describes simulated flash geometry.
	SSDConfig = ssd.Config
	// SSDDevice is the simulated flash device.
	SSDDevice = ssd.Device

	// LSMStore is the LevelDB-style baseline engine the paper compares
	// against; it shares QinDB's versioned-key API.
	LSMStore = lsm.DB
	// LSMOptions configures the baseline engine.
	LSMOptions = lsm.Options

	// Crawler simulates round-based web crawling (paper §1.1.1).
	Crawler = indexer.Crawler
	// CrawlConfig shapes the simulated web corpus.
	CrawlConfig = indexer.CrawlConfig
	// Document is one crawled page.
	Document = indexer.Document
	// SearchResult is one ranked query hit with its abstract.
	SearchResult = indexer.SearchResult

	// Generator produces deterministic versioned KV workloads with the
	// paper's key/value geometry and redundancy ratio.
	Generator = workload.Generator
	// GeneratorConfig shapes a Generator.
	GeneratorConfig = workload.KVConfig
	// WorkloadEntry is one generated key-value pair.
	WorkloadEntry = workload.Entry

	// Node is a TCP server exposing one QinDB engine — the network face
	// of a storage node.
	Node = server.Server
	// NodeClient is the matching client.
	NodeClient = server.Client
	// NodeDialOption configures DialNode (timeouts, pool size,
	// pipelining depth).
	NodeDialOption = server.DialOption
	// NodeMirror fans published versions out to remote storage nodes.
	NodeMirror = cluster.Mirror
	// NodeFuture is one in-flight pipelined operation (Client.Pipeline).
	NodeFuture = server.Future
	// NodeBatchError reports which sub-ops of a batch flush failed.
	NodeBatchError = server.BatchError

	// MetricsRegistry collects the whole system's counters, gauges,
	// histograms and trace spans; pass one via StoreOptions.Metrics,
	// SystemConfig.Metrics, Node.SetMetrics, or WithDialMetrics to
	// instrument each layer.
	MetricsRegistry = metrics.Registry
	// SpanContext identifies one span of a distributed trace; clients
	// carry it across the wire in contexts built by the registry's
	// StartSpan.
	SpanContext = metrics.SpanContext
	// SlowLog is a bounded ring of operations that exceeded a latency
	// threshold (attach with Node.SetSlowLog).
	SlowLog = metrics.SlowLog
	// OpsConfig wires the operator HTTP endpoints (/metrics, /healthz,
	// /readyz, /debug/trace, /debug/slowlog) to their data sources.
	OpsConfig = ops.Config
	// OpsServer serves the operator endpoints with graceful shutdown.
	OpsServer = ops.Server
)

// Common sentinel errors, re-exported for errors.Is checks.
var (
	ErrNotFound = core.ErrNotFound
	ErrDeleted  = core.ErrDeleted
	ErrClosed   = core.ErrClosed
)

// Stream types for SystemEntry.
const (
	StreamSummary  = bifrost.StreamSummary
	StreamInverted = bifrost.StreamInverted
)

// DefaultStoreOptions mirrors the paper's QinDB configuration: 64 MB
// AOFs and a 25% occupancy GC threshold.
func DefaultStoreOptions() StoreOptions { return core.DefaultOptions() }

// Flash is a simulated SSD together with its filesystem metadata (file
// name table and extent maps — state that lives on disk in a real
// deployment). Keep the Flash and reopen stores on it to simulate
// crash/restart cycles.
type Flash struct {
	dev *ssd.Device
	fs  blockfs.FS
}

// Device exposes the underlying simulated SSD (for firmware counters and
// the virtual clock).
func (f *Flash) Device() *SSDDevice { return f.dev }

// NewFlash creates a simulated SSD of the given capacity (bytes) using
// the paper's geometry (4 KB pages, 256 KB erase blocks), written
// block-aligned through the native interface — QinDB's stack.
func NewFlash(capacity int64) (*Flash, error) {
	dev, err := ssd.NewDevice(ssd.DefaultConfig(capacity))
	if err != nil {
		return nil, err
	}
	return &Flash{dev: dev, fs: blockfs.NewNativeFS(dev)}, nil
}

// OpenStore creates a QinDB instance over a fresh simulated SSD of the
// given capacity (bytes).
func OpenStore(capacity int64, opts StoreOptions) (*Store, error) {
	f, err := NewFlash(capacity)
	if err != nil {
		return nil, err
	}
	return core.Open(f.fs, opts)
}

// OpenStoreOn opens a QinDB instance over existing flash, recovering any
// state already stored on it (the memtable and GC table are rebuilt from
// the AOFs, paper §2.3).
func OpenStoreOn(f *Flash, opts StoreOptions) (*Store, error) {
	return core.Open(f.fs, opts)
}

// OpenLSMStore creates the LevelDB-style baseline over a fresh simulated
// SSD fronted by a conventional page-mapped FTL — the stack the paper
// benchmarks QinDB against.
func OpenLSMStore(capacity int64, opts LSMOptions) (*LSMStore, error) {
	dev, err := ssd.NewDevice(ssd.DefaultConfig(capacity))
	if err != nil {
		return nil, err
	}
	cfg := dev.Config()
	// Reserve ~12% of flash for FTL over-provisioning.
	logical := (cfg.Blocks - cfg.Blocks/8 - 4) * cfg.PagesPerBlock
	ftl, err := ssd.NewFTL(dev, logical)
	if err != nil {
		return nil, err
	}
	return lsm.Open(blockfs.NewFTLFS(ftl), opts)
}

// DefaultLSMOptions returns LevelDB 1.9's default configuration.
func DefaultLSMOptions() LSMOptions { return lsm.DefaultOptions() }

// NewDeduper creates a Bifrost cross-version deduper.
func NewDeduper() *Deduper { return bifrost.NewDeduper() }

// NewMintCluster builds a regional replicated store.
func NewMintCluster(cfg MintConfig) (*MintCluster, error) { return mint.New(cfg) }

// DefaultMintConfig returns a small, structurally faithful cluster.
func DefaultMintConfig() MintConfig { return mint.DefaultConfig() }

// NewSystem assembles the complete DirectLoad deployment: builder,
// three-region fabric, six data centers, and per-DC Mint clusters.
func NewSystem(cfg SystemConfig) (*System, error) { return cluster.New(cfg) }

// DefaultSystemConfig returns a laptop-scale six-DC deployment.
func DefaultSystemConfig() SystemConfig { return cluster.DefaultConfig() }

// Version is a convenience for the time-based version numbers production
// deployments typically use.
func Version(t time.Time) uint64 { return uint64(t.Unix()) }

// NewCrawler seeds a simulated web corpus.
func NewCrawler(cfg CrawlConfig) (*Crawler, error) { return indexer.NewCrawler(cfg) }

// DefaultCrawlConfig returns a small, paper-shaped corpus.
func DefaultCrawlConfig() CrawlConfig { return indexer.DefaultCrawlConfig() }

// BuildForward generates forward-index entries <URL, terms>.
func BuildForward(docs []Document) []indexer.ForwardEntry { return indexer.BuildForward(docs) }

// BuildInverted inverts forward entries into <term, URLs>.
func BuildInverted(fwd []indexer.ForwardEntry) []indexer.InvertedEntry {
	return indexer.BuildInverted(fwd)
}

// BuildSummary generates summary-index entries <URL, abstract>.
func BuildSummary(docs []Document, abstractTerms int) []indexer.SummaryEntry {
	return indexer.BuildSummary(docs, abstractTerms)
}

// EncodeURLList serializes an inverted entry's URL chain for storage.
func EncodeURLList(urls []string) []byte { return indexer.EncodeURLList(urls) }

// DecodeURLList parses EncodeURLList output.
func DecodeURLList(v []byte) []string { return indexer.DecodeURLList(v) }

// Search resolves a multi-term query against inverted and summary lookup
// functions (the read path of the paper's Figure 1).
func Search(terms []string,
	inverted func(term string) ([]string, bool),
	summary func(url string) (string, bool),
	limit int) []SearchResult {
	return indexer.Search(terms, inverted, summary, limit)
}

// NewGenerator creates a deterministic workload generator.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) { return workload.NewGenerator(cfg) }

// DefaultGeneratorConfig matches the paper's summary-index workload:
// 20-byte keys, 20 KB average values, 70% cross-version redundancy.
func DefaultGeneratorConfig() GeneratorConfig { return workload.DefaultKVConfig() }

// NewNode wraps a Store in a TCP server (see cmd/qindbd for a runnable
// daemon). The caller retains ownership of the store.
func NewNode(db *Store) *Node { return server.New(db) }

// DialNode connects to a serving Node, negotiating the newest protocol
// both sides speak (old servers fall back to v1 transparently). Options
// tune deadlines, pooling and pipelining:
//
//	cl, err := directload.DialNode(addr,
//	        directload.WithDialTimeout(2*time.Second),
//	        directload.WithDialPoolSize(4))
func DialNode(addr string, opts ...NodeDialOption) (*NodeClient, error) {
	return server.Dial(addr, opts...)
}

// WithDialTimeout sets the default per-operation deadline for a dialed
// node client, applied whenever a call's context carries none.
func WithDialTimeout(d time.Duration) NodeDialOption { return server.WithTimeout(d) }

// WithDialPoolSize makes DialNode open n connections and spread
// requests across them.
func WithDialPoolSize(n int) NodeDialOption { return server.WithPoolSize(n) }

// WithDialMaxInFlight bounds pipelined requests outstanding per
// connection.
func WithDialMaxInFlight(n int) NodeDialOption { return server.WithMaxInFlight(n) }

// WithDialMetrics attaches a registry for the client-side pool gauges
// and trace spans.
func WithDialMetrics(reg *MetricsRegistry) NodeDialOption { return server.WithMetrics(reg) }

// WithDialTracePropagation controls whether the client offers
// distributed-trace propagation when negotiating (default on); when the
// server grants it, calls whose context carries an active span ship it
// in the request frame.
func WithDialTracePropagation(enabled bool) NodeDialOption {
	return server.WithTracePropagation(enabled)
}

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// SpanFromContext returns the active trace span carried by ctx, if any
// (put one there with the registry's StartSpan).
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	return metrics.SpanFromContext(ctx)
}

// NewSlowLog creates a slow-op ring holding capacity entries (0 = 256)
// recording operations at or above threshold (0 = disabled).
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	return metrics.NewSlowLog(capacity, threshold)
}

// ListenOps binds the operator HTTP endpoints on addr (":0" for
// ephemeral); run the returned server's Serve on its own goroutine and
// stop it with Shutdown under a context deadline.
func ListenOps(addr string, cfg OpsConfig) (*OpsServer, error) { return ops.Listen(addr, cfg) }

// DialMirror connects a Mirror to remote storage nodes; attach it to a
// System with AttachMirror to replicate published versions over TCP.
func DialMirror(addrs []string, opts ...NodeDialOption) (*NodeMirror, error) {
	return cluster.NewMirror(addrs, opts...)
}

// WaitFutures blocks until every pipelined operation completes and
// returns the first error among them.
func WaitFutures(futures ...*NodeFuture) error { return server.Wait(futures...) }
