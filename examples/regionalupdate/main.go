// Command regionalupdate drives the full DirectLoad deployment: a
// builder data center publishing versioned index data through Bifrost
// deduplication to six data centers in three regions, followed by the
// operational lifecycle of paper §3 — gray release on one data center,
// cross-region consistency audit, promotion, and a rollback after a
// simulated bad release.
//
//	go run ./examples/regionalupdate
package main

import (
	"fmt"
	"log"

	"directload"
)

func main() {
	cfg := directload.DefaultSystemConfig()
	cfg.Mint.NodeCapacity = 128 << 20
	sys, err := directload.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	gen, err := directload.NewGenerator(directload.GeneratorConfig{
		Keys: 400, ValueSize: 8 << 10, ValueSizeStdDev: 1 << 10,
		DupRatio: 0.7, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	publish := func(version uint64) directload.UpdateReport {
		var entries []directload.SystemEntry
		gen.NextVersion(func(e directload.WorkloadEntry) error {
			entries = append(entries, directload.SystemEntry{
				Key: e.Key, Value: e.Value, Stream: directload.StreamInverted,
			})
			// A small summary record per key, stored in 3 of the 6 DCs.
			entries = append(entries, directload.SystemEntry{
				Key:    append([]byte("s/"), e.Key...),
				Value:  e.Value[:256],
				Stream: directload.StreamSummary,
			})
			return nil
		})
		rep, err := sys.PublishVersion(version, entries)
		if err != nil {
			log.Fatalf("publish v%d: %v", version, err)
		}
		fmt.Printf("v%d: %5d keys, %5.1f MB payload -> %5.1f MB on the wire "+
			"(%4.1f%% saved), update time %v\n",
			version, rep.Keys,
			float64(rep.PayloadBytes)/(1<<20), float64(rep.WireBytes)/(1<<20),
			100*(1-float64(rep.WireBytes)/float64(rep.PayloadBytes)),
			rep.UpdateTime.Round(1e6))
		return rep
	}

	// Version 1: the initial full load (nothing to deduplicate yet).
	publish(1)
	if err := sys.ActivateEverywhere(1); err != nil {
		log.Fatal(err)
	}

	// Version 2: ~70% of values unchanged; Bifrost strips them.
	publish(2)

	// Gray release on one data center only (paper §3).
	grayDC := sys.Top.Regions[0].DCs[0]
	if err := sys.GrayRelease(2, grayDC); err != nil {
		log.Fatal(err)
	}
	keys := make([][]byte, 100)
	for i := range keys {
		keys[i] = gen.Key(i)
	}
	fmt.Printf("gray release of v2 on %s: cross-region inconsistency %.2f%%\n",
		grayDC, 100*sys.AuditConsistency(keys))

	// The gray period looked fine: promote everywhere.
	if err := sys.ActivateEverywhere(2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v2 active everywhere: inconsistency %.2f%%\n",
		100*sys.AuditConsistency(keys))

	// Version 3 misbehaves during gray release -> rollback.
	publish(3)
	if err := sys.GrayRelease(3, grayDC); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gray release of v3 on %s... malfunction detected, rolling back\n", grayDC)
	if err := sys.Rollback(3, 2); err != nil {
		log.Fatal(err)
	}
	val, _, err := sys.Get(grayDC, gen.Key(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after rollback %s serves v2 (%d-byte value for key 0)\n", grayDC, len(val))

	// Keep publishing: the retention policy holds at most 4 versions.
	publish(4)
	publish(5)
	fmt.Printf("retained versions: %v (paper: at most four)\n", sys.Versions())
	fmt.Printf("shipper: %d deliveries, miss ratio %.3f%%\n",
		sys.Shipper.Stats().Deliveries, 100*sys.Shipper.MissRatio())
}
