// Command indexpipeline runs the paper's Figure-1 pipeline end to end on
// one machine: crawl a synthetic web, build forward/inverted/summary
// indices, deduplicate against the previous crawl round with Bifrost,
// store everything in QinDB, and answer a search query from the stored
// indices.
//
//	go run ./examples/indexpipeline
package main

import (
	"fmt"
	"log"

	"directload"
)

func main() {
	crawler, err := directload.NewCrawler(directload.CrawlConfig{
		Documents: 500, VIPRatio: 0.1, VocabSize: 2000,
		DocTerms: 60, MutateProb: 0.3, VIPMutateProb: 0.5, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One store for summary indices (<URL, abstract>) and one for
	// inverted indices (<term, URLs>), as in the paper's data centers.
	summaryDB, err := directload.OpenStore(256<<20, directload.DefaultStoreOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer summaryDB.Close()
	invertedDB, err := directload.OpenStore(256<<20, directload.DefaultStoreOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer invertedDB.Close()

	dedup := directload.NewDeduper()

	// Three crawl rounds = three index versions.
	for round := 1; round <= 3; round++ {
		downloaded := crawler.Crawl()
		corpus := crawler.Corpus()
		version := uint64(round)

		// Build the indices. Forward indices feed the inverted builder;
		// summaries come straight from the documents.
		forward := directload.BuildForward(corpus)
		inverted := directload.BuildInverted(forward)
		summaries := directload.BuildSummary(corpus, 8)

		var kept, stripped int
		for _, s := range summaries {
			key, val := []byte("sum/"+s.URL), []byte(s.Abstract)
			if dedup.Process(key, val) {
				// Unchanged since the previous version: ship key only.
				if _, err := summaryDB.Put(key, version, nil, true); err != nil {
					log.Fatal(err)
				}
				stripped++
			} else {
				if _, err := summaryDB.Put(key, version, val, false); err != nil {
					log.Fatal(err)
				}
				kept++
			}
		}
		for _, e := range inverted {
			key, val := []byte("inv/"+e.Term), directload.EncodeURLList(e.URLs)
			if dedup.Process(key, val) {
				if _, err := invertedDB.Put(key, version, nil, true); err != nil {
					log.Fatal(err)
				}
				stripped++
			} else {
				if _, err := invertedDB.Put(key, version, val, false); err != nil {
					log.Fatal(err)
				}
				kept++
			}
		}
		st := dedup.AdvanceVersion()
		fmt.Printf("round %d: crawled %4d docs, stored %5d entries, deduped %5d (%.0f%% of bytes saved)\n",
			round, len(downloaded), kept, stripped, 100*st.ByteRatio())

		// Retain at most 2 versions in this demo.
		summaryDB.RetainVersions(2)
		invertedDB.RetainVersions(2)
	}

	// Serve a query against the newest version, exactly like Figure 1:
	// terms -> inverted index -> URL chain -> summary index -> abstracts.
	corpus := crawler.Corpus()
	query := []string{corpus[0].Terms[0], corpus[0].Terms[1]}
	results := directload.Search(query,
		func(term string) ([]string, bool) {
			v, _, _, err := invertedDB.GetLatest([]byte("inv/" + term))
			if err != nil {
				return nil, false
			}
			return directload.DecodeURLList(v), true
		},
		func(url string) (string, bool) {
			v, _, _, err := summaryDB.GetLatest([]byte("sum/" + url))
			if err != nil {
				return "", false
			}
			return string(v), true
		},
		3)
	fmt.Printf("query %v -> %d results\n", query, len(results))
	for i, r := range results {
		fmt.Printf("  %d. %s\n     %s...\n", i+1, r.URL, clip(r.Abstract, 60))
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
