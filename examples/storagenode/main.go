// Command storagenode runs a QinDB storage node over TCP in-process and
// talks to it through the client — the wire-level view of a single Mint
// node serving deduplicated index data.
//
//	go run ./examples/storagenode
package main

import (
	"fmt"
	"log"
	"net"

	"directload"
)

func main() {
	// The node: a QinDB engine behind a TCP listener.
	db, err := directload.OpenStore(256<<20, directload.DefaultStoreOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	node := directload.NewNode(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go node.Serve(ln)
	defer node.Close()
	fmt.Printf("storage node listening on %s\n", ln.Addr())

	// The client side: versioned writes, dedup, reads, range, stats.
	cl, err := directload.DialNode(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 5; i++ {
		key := []byte(fmt.Sprintf("url/page-%02d", i))
		if err := cl.Put(key, 1, []byte(fmt.Sprintf("content of page %d", i)), false); err != nil {
			log.Fatal(err)
		}
	}
	// Version 2 arrives deduplicated for page-00 (unchanged content).
	if err := cl.Put([]byte("url/page-00"), 2, nil, true); err != nil {
		log.Fatal(err)
	}
	val, err := cl.Get([]byte("url/page-00"), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET url/page-00 @v2 -> %q (traceback server-side)\n", val)

	entries, err := cl.Range([]byte("url/page-01"), []byte("url/page-04"), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("range scan over the wire:")
	for _, e := range entries {
		fmt.Printf("  %s @v%d\n", e.Key, e.Version)
	}

	st, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node stats: %d puts, %d gets, %d bytes written, %d conns\n",
		st.Engine.Puts, st.Engine.Gets, st.Engine.UserWriteBytes, st.Conns)
}
