// Command storagenode runs a QinDB storage node over TCP in-process and
// talks to it through the client — the wire-level view of a single Mint
// node serving deduplicated index data. It demonstrates the protocol v2
// surface: context-aware calls, batched publishes, and pipelined reads.
//
//	go run ./examples/storagenode
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"directload"
)

func main() {
	// The node: a QinDB engine behind a TCP listener.
	db, err := directload.OpenStore(256<<20, directload.DefaultStoreOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	node := directload.NewNode(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go node.Serve(ln)
	defer node.Close()
	fmt.Printf("storage node listening on %s\n", ln.Addr())

	// The client negotiates protocol v2 automatically; WithDialTimeout
	// bounds every call whose context carries no deadline.
	cl, err := directload.DialNode(ln.Addr().String(),
		directload.WithDialTimeout(2*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Publish version 1 as one batch: a single OpBatch round trip
	// instead of one per record.
	batch := cl.Batcher()
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("url/page-%02d", i)
		value := fmt.Sprintf("content of page %d", i)
		if err := batch.Put(ctx, []byte(key), 1, []byte(value), false); err != nil {
			log.Fatal(err)
		}
	}
	if err := batch.Flush(ctx); err != nil {
		log.Fatal(err)
	}

	// Version 2 arrives deduplicated for page-00 (unchanged content).
	if err := cl.PutContext(ctx, []byte("url/page-00"), 2, nil, true); err != nil {
		log.Fatal(err)
	}
	val, err := cl.GetContext(ctx, []byte("url/page-00"), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET url/page-00 @v2 -> %q (traceback server-side)\n", val)

	// Pipelined reads: all five gets share the wire and complete
	// concurrently on the server.
	p := cl.Pipeline()
	var futures []*directload.NodeFuture
	for i := 0; i < 5; i++ {
		futures = append(futures, p.Get(ctx, []byte(fmt.Sprintf("url/page-%02d", i)), 1))
	}
	if err := directload.WaitFutures(futures...); err != nil {
		log.Fatal(err)
	}
	fmt.Println("pipelined gets:")
	for i, f := range futures {
		v, _ := f.Value()
		fmt.Printf("  url/page-%02d @v1 -> %d bytes\n", i, len(v))
	}

	// Range with the server's default limit; the reply reports the
	// limit that applied so callers can detect truncation.
	entries, applied, err := cl.RangeContext(ctx, []byte("url/page-01"), []byte("url/page-04"), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range scan over the wire (server limit %d):\n", applied)
	for _, e := range entries {
		fmt.Printf("  %s @v%d\n", e.Key, e.Version)
	}

	st, err := cl.StatsContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node stats: %d puts, %d gets, %d bytes written, %d conns\n",
		st.Engine.Puts, st.Engine.Gets, st.Engine.UserWriteBytes, st.Conns)
}
