// Command storagenode runs a QinDB storage node over TCP in-process and
// talks to it through the client — the wire-level view of a single Mint
// node serving deduplicated index data. It demonstrates the protocol v2
// surface (context-aware calls, batched publishes, pipelined reads) and
// the operator surface: metrics, distributed tracing across the wire,
// and the /healthz–/readyz–/debug endpoints.
//
//	go run ./examples/storagenode
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"directload"
)

func main() {
	// One registry instruments everything: the engine, the server, the
	// client pool — and, via the ops server, exposes it all over HTTP.
	reg := directload.NewMetricsRegistry()
	slow := directload.NewSlowLog(0, 5*time.Millisecond)

	// The node: a QinDB engine behind a TCP listener.
	opts := directload.DefaultStoreOptions()
	opts.Metrics = reg
	db, err := directload.OpenStore(256<<20, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	node := directload.NewNode(db)
	node.SetMetrics(reg)
	node.SetSlowLog(slow)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go node.Serve(ln)
	defer node.Close()
	fmt.Printf("storage node listening on %s\n", ln.Addr())

	// Operator endpoints: /metrics (?format=prom for scrapers),
	// /healthz, /readyz, /debug/trace, /debug/slowlog.
	opsSrv, err := directload.ListenOps("127.0.0.1:0", directload.OpsConfig{
		Registry: reg,
		SlowLog:  slow,
		Ready: func() error {
			if h := db.Health(); h.Closed || h.UnderPressure {
				return fmt.Errorf("engine not serving")
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	go opsSrv.Serve()
	fmt.Printf("operator endpoints on http://%s/metrics\n", opsSrv.Addr())

	// The client negotiates protocol v2 (and trace propagation)
	// automatically; WithDialTimeout bounds every call whose context
	// carries no deadline.
	cl, err := directload.DialNode(ln.Addr().String(),
		directload.WithDialTimeout(2*time.Second),
		directload.WithDialMetrics(reg))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Publish version 1 as one traced batch: a single OpBatch round
	// trip instead of one per record, and — because the context carries
	// a span — one end-to-end timeline at /debug/trace covering the
	// client flush, the server handler, and each engine write.
	pubCtx, endPublish := reg.StartSpan(ctx, "example.publish")
	batch := cl.Batcher()
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("url/page-%02d", i)
		value := fmt.Sprintf("content of page %d", i)
		if err := batch.Put(pubCtx, []byte(key), 1, []byte(value), false); err != nil {
			log.Fatal(err)
		}
	}
	err = batch.Flush(pubCtx)
	endPublish(err)
	if err != nil {
		log.Fatal(err)
	}
	if sc, ok := directload.SpanFromContext(pubCtx); ok {
		fmt.Printf("published v1 under trace %016x:\n", sc.TraceID)
		reg.Tracer().WriteTrace(os.Stdout, sc.TraceID)
	}

	// Version 2 arrives deduplicated for page-00 (unchanged content).
	if err := cl.PutContext(ctx, []byte("url/page-00"), 2, nil, true); err != nil {
		log.Fatal(err)
	}
	val, err := cl.GetContext(ctx, []byte("url/page-00"), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET url/page-00 @v2 -> %q (traceback server-side)\n", val)

	// Pipelined reads: all five gets share the wire and complete
	// concurrently on the server.
	p := cl.Pipeline()
	var futures []*directload.NodeFuture
	for i := 0; i < 5; i++ {
		futures = append(futures, p.Get(ctx, []byte(fmt.Sprintf("url/page-%02d", i)), 1))
	}
	if err := directload.WaitFutures(futures...); err != nil {
		log.Fatal(err)
	}
	fmt.Println("pipelined gets:")
	for i, f := range futures {
		v, _ := f.Value()
		fmt.Printf("  url/page-%02d @v1 -> %d bytes\n", i, len(v))
	}

	// Range with the server's default limit; the reply reports the
	// limit that applied so callers can detect truncation.
	entries, applied, err := cl.RangeContext(ctx, []byte("url/page-01"), []byte("url/page-04"), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range scan over the wire (server limit %d):\n", applied)
	for _, e := range entries {
		fmt.Printf("  %s @v%d\n", e.Key, e.Version)
	}

	st, err := cl.StatsContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node stats: %d puts, %d gets, %d bytes written, %d conns\n",
		st.Engine.Puts, st.Engine.Gets, st.Engine.UserWriteBytes, st.Conns)

	// Drain the operator HTTP server under a deadline; a shutdown error
	// (a stuck scrape, a dead listener) is worth reporting, not
	// discarding.
	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := opsSrv.Shutdown(shutCtx); err != nil {
		log.Printf("ops server shutdown: %v", err)
	}
}
