// Command quickstart shows the QinDB storage engine in five minutes:
// versioned PUT/GET/DEL, deduplicated entries with traceback, the lazy
// garbage collector, and crash recovery from the append-only files.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"directload"
)

func main() {
	// A 256 MB simulated SSD with the paper's geometry (4 KB pages,
	// 256 KB erase blocks), written block-aligned via the native
	// interface — no hardware write amplification.
	flash, err := directload.NewFlash(256 << 20)
	if err != nil {
		log.Fatal(err)
	}
	db, err := directload.OpenStoreOn(flash, directload.DefaultStoreOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 1. Versioned writes: every key carries a data version (k/t in the
	// paper). Version 1 is a full crawl.
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("http://example.com/page-%d", i)
		val := fmt.Sprintf("terms of page %d, crawl round 1", i)
		if _, err := db.Put([]byte(key), 1, []byte(val), false); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Deduplicated writes: in version 2 page-0 did not change, so
	// Bifrost stripped its value; the store records a NULL entry whose
	// GET traces back to version 1.
	if _, err := db.Put([]byte("http://example.com/page-0"), 2, nil, true); err != nil {
		log.Fatal(err)
	}
	val, _, err := db.Get([]byte("http://example.com/page-0"), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET page-0 @v2 (deduplicated) -> %q\n", val)

	// 3. Deletion is lazy: DEL flips a flag and updates the GC table;
	// flash space is reclaimed later, when a file's occupancy drops
	// below the threshold.
	if _, err := db.Del([]byte("http://example.com/page-1"), 1); err != nil {
		log.Fatal(err)
	}
	if _, _, err := db.Get([]byte("http://example.com/page-1"), 1); err != nil {
		fmt.Printf("GET page-1 @v1 after DEL -> %v\n", err)
	}

	// 4. Range scans over the newest live versions (the capability
	// hash-based KV stores lack, paper §6.1).
	fmt.Println("range scan:")
	db.Range(nil, nil, func(key []byte, ver uint64) bool {
		fmt.Printf("  %s @v%d\n", key, ver)
		return true
	})

	st := db.Stats()
	fmt.Printf("stats: %d memtable items, %d puts, user bytes written %d\n",
		st.Keys, st.Puts, st.UserWriteBytes)

	// 5. Crash recovery: close ("crash") and reopen over the same flash.
	// The memtable and GC table are rebuilt by scanning the AOFs.
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	db2, err := directload.OpenStoreOn(flash, directload.DefaultStoreOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	val, _, err = db2.Get([]byte("http://example.com/page-0"), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery, GET page-0 @v2 -> %q\n", val)
	fmt.Printf("device: %d bytes programmed to flash\n", flash.Device().Stats().SysWriteBytes)
}
