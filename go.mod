module directload

go 1.22
