// Package netsim is a discrete-event simulator of the wide-area fabric
// Bifrost ships index data over: nodes connected by directed links with
// finite bandwidth, transfers that share links fairly (with optional
// reserved fractions per traffic class), link failure and corruption
// injection, and a monitoring hook that samples per-link utilization —
// the paper's "centralized network monitoring platform" (§2.2).
//
// Time is virtual. The simulator advances in events: at any moment every
// active transfer progresses at its allocated rate; the next event is
// whichever transfer completes first (or a scheduled timer). This is the
// classic fluid-flow approximation, which is what update-time and
// miss-ratio arithmetic (Figs. 9-10) depend on.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Simulator errors.
var (
	ErrNoRoute    = errors.New("netsim: no route")
	ErrLinkDown   = errors.New("netsim: link down")
	ErrDupLink    = errors.New("netsim: duplicate link")
	ErrUnknown    = errors.New("netsim: unknown node")
	ErrBadPayload = errors.New("netsim: non-positive payload")
)

// NodeID names a simulated host.
type NodeID string

// Class partitions traffic for bandwidth reservation: the paper reserves
// 40% of each channel for summary indices and 60% for inverted indices.
type Class int

// Traffic classes.
const (
	ClassDefault Class = iota
	ClassSummary
	ClassInverted
	numClasses
)

// Link is a directed channel between two nodes.
type Link struct {
	From, To NodeID
	// Bandwidth in bytes per (virtual) second.
	Bandwidth float64
	// Reservation maps a class to its guaranteed share (0..1). Shares
	// need not sum to 1; unreserved capacity is split fairly among all
	// active transfers, and idle reservations are lent out.
	Reservation map[Class]float64

	down bool
	// accounting
	sentBytes   float64
	sentByCls   [numClasses]float64
	busy        time.Duration
	activeByCls [numClasses]int
}

func (l *Link) key() string { return string(l.From) + "→" + string(l.To) }

// Transfer is one in-flight payload.
type Transfer struct {
	ID      int64
	Path    []*Link // consecutive directed links
	Class   Class
	Size    float64 // bytes total
	Sent    float64 // bytes delivered so far
	Started time.Duration
	Done    bool
	Failed  error
	// OnDone, if set, runs when the transfer completes or fails.
	OnDone func(t *Transfer, now time.Duration)

	rate float64 // current allocation, bytes/sec
}

// Net is the simulated network.
type Net struct {
	nodes     map[NodeID]bool
	links     map[string]*Link
	transfers map[int64]*Transfer
	timers    timerHeap
	now       time.Duration
	nextID    int64
	monitor   *Monitor
}

// New creates an empty network.
func New() *Net {
	return &Net{
		nodes:     make(map[NodeID]bool),
		links:     make(map[string]*Link),
		transfers: make(map[int64]*Transfer),
	}
}

// Now returns the current virtual time.
func (n *Net) Now() time.Duration { return n.now }

// AddNode registers a host.
func (n *Net) AddNode(id NodeID) { n.nodes[id] = true }

// AddLink creates a directed link. Both endpoints must exist.
func (n *Net) AddLink(from, to NodeID, bandwidth float64, reservation map[Class]float64) (*Link, error) {
	if !n.nodes[from] || !n.nodes[to] {
		return nil, fmt.Errorf("%w: %s or %s", ErrUnknown, from, to)
	}
	l := &Link{From: from, To: to, Bandwidth: bandwidth, Reservation: reservation}
	if _, ok := n.links[l.key()]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDupLink, l.key())
	}
	n.links[l.key()] = l
	return l, nil
}

// LinkBetween returns the directed link from→to, if any.
func (n *Net) LinkBetween(from, to NodeID) (*Link, bool) {
	l, ok := n.links[string(from)+"→"+string(to)]
	return l, ok
}

// SetLinkDown marks a link failed (in-flight transfers on it fail at the
// next event boundary) or restores it.
func (n *Net) SetLinkDown(from, to NodeID, down bool) error {
	l, ok := n.LinkBetween(from, to)
	if !ok {
		return ErrNoRoute
	}
	l.down = down
	return nil
}

// Route returns the minimum-hop path from→to over live links, preferring
// (among equal hop counts) the path whose bottleneck link currently has
// the most headroom — the monitoring-driven channel selection of §2.2.
func (n *Net) Route(from, to NodeID) ([]*Link, error) {
	if from == to {
		return nil, nil
	}
	type state struct {
		hops     int
		headroom float64 // bottleneck available bandwidth
		via      *Link
		prev     NodeID
	}
	best := map[NodeID]state{from: {headroom: math.Inf(1)}}
	frontier := []NodeID{from}
	for len(frontier) > 0 {
		var next []NodeID
		for _, u := range frontier {
			su := best[u]
			for _, l := range n.links {
				if l.From != u || l.down {
					continue
				}
				avail := l.availableBandwidth()
				head := math.Min(su.headroom, avail)
				sv, seen := best[l.To]
				cand := state{hops: su.hops + 1, headroom: head, via: l, prev: u}
				if !seen || cand.hops < sv.hops || (cand.hops == sv.hops && cand.headroom > sv.headroom) {
					best[l.To] = cand
					next = append(next, l.To)
				}
			}
		}
		frontier = next
	}
	if _, ok := best[to]; !ok {
		return nil, fmt.Errorf("%w: %s -> %s", ErrNoRoute, from, to)
	}
	var path []*Link
	for at := to; at != from; {
		s := best[at]
		path = append([]*Link{s.via}, path...)
		at = s.prev
	}
	return path, nil
}

// availableBandwidth estimates a link's spare capacity under the current
// allocation (used by routing and the monitor).
func (l *Link) availableBandwidth() float64 {
	if l.down {
		return 0
	}
	active := 0
	for _, c := range l.activeByCls {
		active += c
	}
	if active == 0 {
		return l.Bandwidth
	}
	// With fair sharing a new transfer would get ~1/(active+1).
	return l.Bandwidth / float64(active+1)
}

// Send starts a transfer of size bytes along an explicit path.
func (n *Net) Send(path []*Link, class Class, size float64, onDone func(t *Transfer, now time.Duration)) (*Transfer, error) {
	if size <= 0 {
		return nil, ErrBadPayload
	}
	if len(path) == 0 {
		return nil, ErrNoRoute
	}
	for _, l := range path {
		if l.down {
			return nil, fmt.Errorf("%w: %s", ErrLinkDown, l.key())
		}
	}
	t := &Transfer{
		ID: n.nextID, Path: path, Class: class, Size: size,
		Started: n.now, OnDone: onDone,
	}
	n.nextID++
	n.transfers[t.ID] = t
	for _, l := range path {
		l.activeByCls[class]++
	}
	return t, nil
}

// SendBetween routes and starts a transfer in one step.
func (n *Net) SendBetween(from, to NodeID, class Class, size float64, onDone func(t *Transfer, now time.Duration)) (*Transfer, error) {
	path, err := n.Route(from, to)
	if err != nil {
		return nil, err
	}
	if len(path) == 0 {
		return nil, fmt.Errorf("%w: zero-length path %s->%s", ErrNoRoute, from, to)
	}
	return n.Send(path, class, size, onDone)
}

// After schedules fn to run at now+d.
func (n *Net) After(d time.Duration, fn func(now time.Duration)) {
	n.timers.push(timer{at: n.now + d, fn: fn, seq: n.nextID})
	n.nextID++
}

// allocate computes per-transfer rates: each link divides its bandwidth
// among its classes (reserved shares first, idle shares redistributed),
// then equally among that class's transfers; a transfer's rate is the
// minimum across its path (bottleneck).
func (n *Net) allocate() {
	for _, t := range n.transfers {
		if t.Done {
			continue
		}
		rate := math.Inf(1)
		for _, l := range t.Path {
			r := l.classRate(t.Class)
			if r < rate {
				rate = r
			}
		}
		t.rate = rate
	}
}

// classRate returns the per-transfer rate class cls receives on l.
func (l *Link) classRate(cls Class) float64 {
	if l.down {
		return 0
	}
	// Sum of reserved shares of classes that are currently active.
	var activeReserved float64
	var unreservedActive int
	for c := Class(0); c < numClasses; c++ {
		if l.activeByCls[c] == 0 {
			continue
		}
		if share, ok := l.Reservation[c]; ok {
			activeReserved += share
		} else {
			unreservedActive += l.activeByCls[c]
		}
	}
	share, reserved := l.Reservation[cls]
	if !reserved {
		// Unreserved classes split the leftover fairly per transfer.
		leftover := 1 - activeReserved
		if leftover <= 0 || unreservedActive == 0 {
			return 0
		}
		return l.Bandwidth * leftover / float64(unreservedActive)
	}
	// Reserved: own share, plus idle capacity split among active
	// reserved classes proportionally to their shares.
	idle := 1 - activeReserved
	if unreservedActive > 0 {
		idle = 0 // unreserved traffic soaks up the leftover
	}
	if activeReserved > 0 {
		share += idle * share / activeReserved
	}
	return l.Bandwidth * share / float64(l.activeByCls[cls])
}

// Step advances to the next event (transfer completion, link failure
// surfacing, or timer) and returns false when nothing remains.
func (n *Net) Step() bool {
	return n.stepLimit(time.Duration(math.MaxInt64))
}

// stepLimit is Step with a hard time ceiling: if the next event lies past
// deadline, time advances exactly to deadline instead.
func (n *Net) stepLimit(deadline time.Duration) bool {
	n.allocate()
	// Find the earliest completion among transfers and timers.
	nextAt := time.Duration(math.MaxInt64)
	haveEvent := false
	for _, t := range n.transfers {
		if t.Done {
			continue
		}
		if n.pathDown(t) {
			// Fails immediately.
			nextAt = n.now
			haveEvent = true
			break
		}
		if t.rate <= 0 {
			continue // starved: cannot finish until something changes
		}
		remain := (t.Size - t.Sent) / t.rate
		d := time.Duration(remain * float64(time.Second))
		if d <= 0 {
			// Sub-nanosecond remainder: the clock cannot represent it, so
			// advance one tick; advanceTo's completion epsilon (which is
			// rate-relative) will finish the transfer.
			d = 1
		}
		if at := n.now + d; at < nextAt {
			nextAt = at
			haveEvent = true
		}
	}
	if top, ok := n.timers.peek(); ok && (!haveEvent || top.at < nextAt) {
		nextAt = top.at
		haveEvent = true
	}
	if !haveEvent {
		return false
	}
	if nextAt < n.now {
		nextAt = n.now
	}
	if nextAt > deadline {
		n.advanceTo(deadline)
		return true
	}
	n.advanceTo(nextAt)
	return true
}

// pathDown reports whether any link of the transfer is failed.
func (n *Net) pathDown(t *Transfer) bool {
	for _, l := range t.Path {
		if l.down {
			return true
		}
	}
	return false
}

// advanceTo moves virtual time forward, crediting every transfer with
// rate*dt bytes, then fires whatever completed.
func (n *Net) advanceTo(at time.Duration) {
	dt := at - n.now
	secs := dt.Seconds()
	for _, t := range n.transfers {
		if t.Done || t.rate <= 0 {
			continue
		}
		credited := t.rate * secs
		t.Sent += credited
		for _, l := range t.Path {
			l.sentBytes += credited
			l.sentByCls[t.Class] += credited
			l.busy += dt
		}
	}
	n.now = at
	if n.monitor != nil {
		n.monitor.maybeSample(n)
	}
	// Complete / fail transfers.
	var done []*Transfer
	for _, t := range n.transfers {
		if t.Done {
			continue
		}
		if n.pathDown(t) {
			t.Done = true
			t.Failed = ErrLinkDown
			done = append(done, t)
			continue
		}
		// Completion epsilon: an absolute float tolerance plus whatever
		// the transfer could move in one clock tick — without the latter,
		// a remainder too small to schedule would spin forever.
		eps := 1e-6 + t.rate*1e-9
		if t.Sent >= t.Size-eps {
			t.Sent = t.Size
			t.Done = true
			done = append(done, t)
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].ID < done[j].ID })
	for _, t := range done {
		for _, l := range t.Path {
			l.activeByCls[t.Class]--
		}
		delete(n.transfers, t.ID)
		if t.OnDone != nil {
			t.OnDone(t, n.now)
		}
	}
	// Fire timers due now.
	for {
		top, ok := n.timers.peek()
		if !ok || top.at > n.now {
			break
		}
		n.timers.pop()
		top.fn(n.now)
	}
}

// Run steps until the network is idle or until the limit elapses
// (limit <= 0 means no limit). It returns the virtual time.
func (n *Net) Run(limit time.Duration) time.Duration {
	deadline := time.Duration(math.MaxInt64)
	if limit > 0 {
		deadline = n.now + limit
	}
	for n.now < deadline && n.stepLimit(deadline) {
	}
	return n.now
}

// InFlight returns the number of active transfers.
func (n *Net) InFlight() int { return len(n.transfers) }

// Cancel aborts an in-flight transfer; its OnDone callback fires with
// Failed set to ErrCancelled at the current virtual time. Cancelling a
// finished or unknown transfer is a no-op returning false.
func (n *Net) Cancel(t *Transfer) bool {
	cur, ok := n.transfers[t.ID]
	if !ok || cur != t || t.Done {
		return false
	}
	t.Done = true
	t.Failed = ErrCancelled
	for _, l := range t.Path {
		l.activeByCls[t.Class]--
	}
	delete(n.transfers, t.ID)
	if t.OnDone != nil {
		t.OnDone(t, n.now)
	}
	return true
}

// ErrCancelled reports a transfer aborted by Cancel.
var ErrCancelled = errors.New("netsim: transfer cancelled")

// timer and its heap -------------------------------------------------------

type timer struct {
	at  time.Duration
	seq int64
	fn  func(now time.Duration)
}

type timerHeap struct{ ts []timer }

func (h *timerHeap) less(i, j int) bool {
	if h.ts[i].at != h.ts[j].at {
		return h.ts[i].at < h.ts[j].at
	}
	return h.ts[i].seq < h.ts[j].seq
}

func (h *timerHeap) push(t timer) {
	h.ts = append(h.ts, t)
	i := len(h.ts) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.less(p, i) {
			break
		}
		h.ts[p], h.ts[i] = h.ts[i], h.ts[p]
		i = p
	}
}

func (h *timerHeap) peek() (timer, bool) {
	if len(h.ts) == 0 {
		return timer{}, false
	}
	return h.ts[0], true
}

func (h *timerHeap) pop() timer {
	top := h.ts[0]
	last := len(h.ts) - 1
	h.ts[0] = h.ts[last]
	h.ts = h.ts[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.ts) && h.less(l, small) {
			small = l
		}
		if r < len(h.ts) && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.ts[i], h.ts[small] = h.ts[small], h.ts[i]
		i = small
	}
	return top
}
