package netsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func twoNode(t *testing.T, bw float64) (*Net, *Link) {
	t.Helper()
	n := New()
	n.AddNode("a")
	n.AddNode("b")
	l, err := n.AddLink("a", "b", bw, nil)
	if err != nil {
		t.Fatal(err)
	}
	return n, l
}

func TestSingleTransferTiming(t *testing.T) {
	n, l := twoNode(t, 100) // 100 B/s
	var doneAt time.Duration
	_, err := n.Send([]*Link{l}, ClassDefault, 500, func(tr *Transfer, now time.Duration) {
		doneAt = now
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(0)
	if doneAt != 5*time.Second {
		t.Fatalf("doneAt = %v, want 5s", doneAt)
	}
	if n.InFlight() != 0 {
		t.Fatalf("InFlight = %d", n.InFlight())
	}
}

func TestFairSharing(t *testing.T) {
	n, l := twoNode(t, 100)
	var first, second time.Duration
	n.Send([]*Link{l}, ClassDefault, 500, func(tr *Transfer, now time.Duration) { first = now })
	n.Send([]*Link{l}, ClassDefault, 500, func(tr *Transfer, now time.Duration) { second = now })
	n.Run(0)
	// Both share 100 B/s: each gets 50 B/s, both finish at t=10s.
	if first != 10*time.Second || second != 10*time.Second {
		t.Fatalf("finish times = %v, %v; want 10s each", first, second)
	}
}

func TestShorterTransferFreesBandwidth(t *testing.T) {
	n, l := twoNode(t, 100)
	var bigDone time.Duration
	n.Send([]*Link{l}, ClassDefault, 1000, func(tr *Transfer, now time.Duration) { bigDone = now })
	n.Send([]*Link{l}, ClassDefault, 100, nil)
	n.Run(0)
	// Phase 1: both at 50 B/s until small (100B) finishes at t=2s; big has
	// 900 left, then runs at 100 B/s for 9s -> 11s total.
	if bigDone != 11*time.Second {
		t.Fatalf("bigDone = %v, want 11s", bigDone)
	}
}

func TestReservation4060(t *testing.T) {
	// The paper's empirical split: 40% summary, 60% inverted.
	n := New()
	n.AddNode("a")
	n.AddNode("b")
	l, _ := n.AddLink("a", "b", 100, map[Class]float64{
		ClassSummary:  0.4,
		ClassInverted: 0.6,
	})
	var sumDone, invDone time.Duration
	n.Send([]*Link{l}, ClassSummary, 400, func(tr *Transfer, now time.Duration) { sumDone = now })
	n.Send([]*Link{l}, ClassInverted, 600, func(tr *Transfer, now time.Duration) { invDone = now })
	n.Run(0)
	// Summary: 40 B/s for 400B = 10s. Inverted: 60 B/s for 600B = 10s.
	// The reservation makes both streams arrive simultaneously — exactly
	// the property §2.2 wants.
	if sumDone != 10*time.Second || invDone != 10*time.Second {
		t.Fatalf("summary=%v inverted=%v, want both 10s", sumDone, invDone)
	}
}

func TestIdleReservationLentOut(t *testing.T) {
	n := New()
	n.AddNode("a")
	n.AddNode("b")
	l, _ := n.AddLink("a", "b", 100, map[Class]float64{
		ClassSummary:  0.4,
		ClassInverted: 0.6,
	})
	var done time.Duration
	// Only the summary stream is active: it should get the full link.
	n.Send([]*Link{l}, ClassSummary, 1000, func(tr *Transfer, now time.Duration) { done = now })
	n.Run(0)
	if done != 10*time.Second {
		t.Fatalf("done = %v, want 10s (idle reservation lent out)", done)
	}
}

func TestMultiHopBottleneck(t *testing.T) {
	n := New()
	for _, id := range []NodeID{"a", "b", "c"} {
		n.AddNode(id)
	}
	l1, _ := n.AddLink("a", "b", 100, nil)
	l2, _ := n.AddLink("b", "c", 10, nil) // bottleneck
	var done time.Duration
	n.Send([]*Link{l1, l2}, ClassDefault, 100, func(tr *Transfer, now time.Duration) { done = now })
	n.Run(0)
	if done != 10*time.Second {
		t.Fatalf("done = %v, want 10s (bottleneck 10 B/s)", done)
	}
}

func TestRouting(t *testing.T) {
	n := New()
	for _, id := range []NodeID{"a", "b", "c", "d"} {
		n.AddNode(id)
	}
	n.AddLink("a", "b", 100, nil)
	n.AddLink("b", "d", 100, nil)
	n.AddLink("a", "c", 100, nil)
	n.AddLink("c", "d", 100, nil)
	n.AddLink("a", "d", 100, nil) // direct: 1 hop
	path, err := n.Route("a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0].From != "a" || path[0].To != "d" {
		t.Fatalf("Route picked %d hops, want direct link", len(path))
	}
	// Down the direct link: a 2-hop route must be found.
	n.SetLinkDown("a", "d", true)
	path, err = n.Route("a", "d")
	if err != nil || len(path) != 2 {
		t.Fatalf("Route after failure = %d hops, %v", len(path), err)
	}
	// No route at all.
	n.SetLinkDown("a", "b", true)
	n.SetLinkDown("a", "c", true)
	if _, err := n.Route("a", "d"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("want ErrNoRoute, got %v", err)
	}
}

func TestLinkFailureFailsTransfers(t *testing.T) {
	n, l := twoNode(t, 100)
	var failed error
	n.Send([]*Link{l}, ClassDefault, 1000, func(tr *Transfer, now time.Duration) { failed = tr.Failed })
	n.After(2*time.Second, func(now time.Duration) {
		n.SetLinkDown("a", "b", true)
	})
	n.Run(0)
	if !errors.Is(failed, ErrLinkDown) {
		t.Fatalf("transfer should fail with ErrLinkDown, got %v", failed)
	}
}

func TestSendValidation(t *testing.T) {
	n, l := twoNode(t, 100)
	if _, err := n.Send([]*Link{l}, ClassDefault, 0, nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("zero payload err = %v", err)
	}
	if _, err := n.Send(nil, ClassDefault, 10, nil); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("empty path err = %v", err)
	}
	n.SetLinkDown("a", "b", true)
	if _, err := n.Send([]*Link{l}, ClassDefault, 10, nil); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("down link err = %v", err)
	}
	if _, err := n.AddLink("a", "b", 1, nil); !errors.Is(err, ErrDupLink) {
		t.Fatalf("dup link err = %v", err)
	}
	if _, err := n.AddLink("a", "zz", 1, nil); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown node err = %v", err)
	}
}

func TestTimers(t *testing.T) {
	n, _ := twoNode(t, 100)
	var fired []time.Duration
	n.After(3*time.Second, func(now time.Duration) { fired = append(fired, now) })
	n.After(1*time.Second, func(now time.Duration) { fired = append(fired, now) })
	n.After(2*time.Second, func(now time.Duration) {
		fired = append(fired, now)
		n.After(time.Second, func(now time.Duration) { fired = append(fired, now) })
	})
	n.Run(0)
	want := []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second, 3 * time.Second}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestRunLimit(t *testing.T) {
	n, l := twoNode(t, 1)
	n.Send([]*Link{l}, ClassDefault, 1e9, nil) // would take ~31 years
	end := n.Run(5 * time.Second)
	if end > 6*time.Second {
		t.Fatalf("Run overshot limit: %v", end)
	}
	if n.InFlight() != 1 {
		t.Fatal("transfer should still be in flight at the limit")
	}
}

func TestMonitorPrediction(t *testing.T) {
	n, l := twoNode(t, 100)
	m := NewMonitor(n, time.Second, 0.5)
	// Saturate the link for 10 seconds.
	n.Send([]*Link{l}, ClassDefault, 1000, nil)
	n.Run(0)
	if m.Samples() == 0 {
		t.Fatal("monitor took no samples")
	}
	// The link was 100% busy: prediction should be near zero.
	if p := m.PredictedAvailable(n, "a", "b"); p > 10 {
		t.Fatalf("predicted available = %v, want near 0", p)
	}
	if hot := m.HotLinks(n, 0.5); len(hot) != 1 {
		t.Fatalf("HotLinks = %v", hot)
	}
	// Unknown link defaults to capacity / zero.
	if p := m.PredictedAvailable(n, "b", "a"); p != 0 {
		t.Fatalf("unknown link prediction = %v", p)
	}
}

func TestLinkStats(t *testing.T) {
	n, l := twoNode(t, 100)
	n.Send([]*Link{l}, ClassDefault, 500, nil)
	n.Run(0)
	sent, busy, ok := n.LinkStats("a", "b")
	if !ok || math.Abs(sent-500) > 1e-6 || busy != 5*time.Second {
		t.Fatalf("LinkStats = %v, %v, %v", sent, busy, ok)
	}
	if _, _, ok := n.LinkStats("x", "y"); ok {
		t.Fatal("unknown link should report !ok")
	}
}

func TestRouteSameNode(t *testing.T) {
	n, _ := twoNode(t, 100)
	path, err := n.Route("a", "a")
	if err != nil || path != nil {
		t.Fatalf("Route(a,a) = %v, %v", path, err)
	}
}

func TestManyTransfersConservation(t *testing.T) {
	// Property: total bytes delivered equals the sum of payload sizes,
	// and the elapsed time is at least total/capacity.
	n, l := twoNode(t, 1000)
	var delivered float64
	const k = 50
	for i := 0; i < k; i++ {
		size := float64(100 + 37*i)
		n.Send([]*Link{l}, ClassDefault, size, func(tr *Transfer, now time.Duration) {
			delivered += tr.Sent
		})
	}
	end := n.Run(0)
	var total float64
	for i := 0; i < k; i++ {
		total += float64(100 + 37*i)
	}
	if math.Abs(delivered-total) > 1 {
		t.Fatalf("delivered %v of %v bytes", delivered, total)
	}
	minTime := time.Duration(total / 1000 * float64(time.Second))
	if end < minTime-time.Millisecond {
		t.Fatalf("finished in %v, capacity bound is %v", end, minTime)
	}
}

func TestCancelTransfer(t *testing.T) {
	n, l := twoNode(t, 100)
	var failed error
	var doneAt time.Duration
	tr, err := n.Send([]*Link{l}, ClassDefault, 1000, func(tr *Transfer, now time.Duration) {
		failed = tr.Failed
		doneAt = now
	})
	if err != nil {
		t.Fatal(err)
	}
	n.After(2*time.Second, func(now time.Duration) {
		if !n.Cancel(tr) {
			t.Error("Cancel of in-flight transfer should succeed")
		}
	})
	n.Run(0)
	if !errors.Is(failed, ErrCancelled) {
		t.Fatalf("failed = %v, want ErrCancelled", failed)
	}
	if doneAt != 2*time.Second {
		t.Fatalf("cancelled at %v, want 2s", doneAt)
	}
	if n.Cancel(tr) {
		t.Fatal("double Cancel should be a no-op")
	}
	// Bandwidth freed: a new transfer gets the full link.
	var secondDone time.Duration
	n.Send([]*Link{l}, ClassDefault, 100, func(tr *Transfer, now time.Duration) { secondDone = now })
	n.Run(0)
	if secondDone != 3*time.Second {
		t.Fatalf("post-cancel transfer finished at %v, want 3s", secondDone)
	}
}

// TestReservationComplianceUnderSaturation: with both streams saturating
// a reserved link, the byte split converges to the 40/60 reservation.
func TestReservationComplianceUnderSaturation(t *testing.T) {
	n := New()
	n.AddNode("a")
	n.AddNode("b")
	l, _ := n.AddLink("a", "b", 100, map[Class]float64{
		ClassSummary:  0.4,
		ClassInverted: 0.6,
	})
	// Far more offered load than capacity in both classes.
	for i := 0; i < 10; i++ {
		n.Send([]*Link{l}, ClassSummary, 1000, nil)
		n.Send([]*Link{l}, ClassInverted, 1000, nil)
	}
	n.Run(100 * time.Second) // partial drain under contention
	sum, _ := n.LinkClassBytes("a", "b", ClassSummary)
	inv, _ := n.LinkClassBytes("a", "b", ClassInverted)
	total := sum + inv
	if total == 0 {
		t.Fatal("no traffic moved")
	}
	if share := sum / total; share < 0.35 || share > 0.45 {
		t.Fatalf("summary share = %.3f, want ~0.40", share)
	}
	if _, ok := n.LinkClassBytes("a", "zz", ClassSummary); ok {
		t.Fatal("unknown link should report !ok")
	}
}

// Property: on random star topologies with random transfers, every byte
// offered is delivered, and the finish time respects the per-link
// capacity lower bound.
func TestQuickConservation(t *testing.T) {
	f := func(sizes []uint16, fanout uint8, seed int64) bool {
		spokes := int(fanout%6) + 1
		n := New()
		n.AddNode("hub")
		var links []*Link
		for i := 0; i < spokes; i++ {
			id := NodeID(fmt.Sprintf("s%d", i))
			n.AddNode(id)
			l, err := n.AddLink("hub", id, float64(100+50*i), nil)
			if err != nil {
				return false
			}
			links = append(links, l)
		}
		rng := rand.New(rand.NewSource(seed))
		offered := make([]float64, spokes)
		var delivered float64
		count := 0
		for _, sz := range sizes {
			if count >= 40 {
				break
			}
			size := float64(sz%5000) + 1
			spoke := rng.Intn(spokes)
			offered[spoke] += size
			n.Send([]*Link{links[spoke]}, ClassDefault, size, func(tr *Transfer, now time.Duration) {
				delivered += tr.Sent
			})
			count++
		}
		end := n.Run(0)
		var total float64
		for _, o := range offered {
			total += o
		}
		if math.Abs(delivered-total) > 1 {
			return false
		}
		// Lower bound: the most loaded link needs offered/bandwidth time.
		var bound time.Duration
		for i, o := range offered {
			b := time.Duration(o / links[i].Bandwidth * float64(time.Second))
			if b > bound {
				bound = b
			}
		}
		return end >= bound-time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
