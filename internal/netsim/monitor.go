package netsim

import (
	"sort"
	"time"
)

// Monitor is the centralized network monitoring platform of paper §2.2:
// it samples per-link utilization on a fixed virtual-time cadence and
// predicts available bandwidth per channel with an exponentially weighted
// moving average. Bifrost's scheduler consults the predictions to steer
// index streams around channels sustaining high traffic.
type Monitor struct {
	interval time.Duration
	alpha    float64 // EWMA smoothing factor
	lastAt   time.Duration
	lastSent map[string]float64
	predict  map[string]float64 // bytes/sec predicted available
	samples  int64
}

// NewMonitor attaches a monitor to the network, sampling every interval
// of virtual time. alpha in (0,1] weighs recent samples.
func NewMonitor(n *Net, interval time.Duration, alpha float64) *Monitor {
	m := &Monitor{
		interval: interval,
		alpha:    alpha,
		lastSent: make(map[string]float64),
		predict:  make(map[string]float64),
	}
	n.monitor = m
	return m
}

// maybeSample records utilization samples once at least a full interval
// has elapsed. Because the simulator is event-driven, several intervals
// may pass between calls; the observed byte rate over the whole elapsed
// span is applied to each crossed interval (fluid-flow attribution).
func (m *Monitor) maybeSample(n *Net) {
	span := n.now - m.lastAt
	if span < m.interval {
		return
	}
	k := int64(span / m.interval)
	secs := span.Seconds()
	for key, l := range n.links {
		used := (l.sentBytes - m.lastSent[key]) / secs
		avail := l.Bandwidth - used
		if avail < 0 {
			avail = 0
		}
		p, ok := m.predict[key]
		if !ok {
			p = avail
		}
		for i := int64(0); i < k; i++ {
			p = m.alpha*avail + (1-m.alpha)*p
		}
		m.predict[key] = p
		m.lastSent[key] = l.sentBytes
	}
	m.lastAt += time.Duration(k) * m.interval
	m.samples += k
}

// PredictedAvailable returns the monitor's bandwidth prediction for the
// link from→to, defaulting to the raw capacity before the first sample.
func (m *Monitor) PredictedAvailable(n *Net, from, to NodeID) float64 {
	l, ok := n.LinkBetween(from, to)
	if !ok {
		return 0
	}
	if p, ok := m.predict[l.key()]; ok {
		return p
	}
	return l.Bandwidth
}

// Samples returns how many sampling rounds have run.
func (m *Monitor) Samples() int64 { return m.samples }

// HotLinks returns link keys whose predicted available bandwidth is below
// frac of capacity, most congested first.
func (m *Monitor) HotLinks(n *Net, frac float64) []string {
	type hot struct {
		key   string
		avail float64
	}
	var hs []hot
	for key, l := range n.links {
		p, ok := m.predict[key]
		if !ok {
			continue
		}
		if p < l.Bandwidth*frac {
			hs = append(hs, hot{key, p})
		}
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].avail < hs[j].avail })
	keys := make([]string, len(hs))
	for i, h := range hs {
		keys[i] = h.key
	}
	return keys
}

// LinkStats reports cumulative bytes and busy time for a link.
func (n *Net) LinkStats(from, to NodeID) (sentBytes float64, busy time.Duration, ok bool) {
	l, found := n.LinkBetween(from, to)
	if !found {
		return 0, 0, false
	}
	return l.sentBytes, l.busy, true
}

// LinkClassBytes reports cumulative bytes one traffic class moved over a
// link — the observable behind reservation-compliance checks.
func (n *Net) LinkClassBytes(from, to NodeID, cls Class) (float64, bool) {
	l, found := n.LinkBetween(from, to)
	if !found || cls < 0 || cls >= numClasses {
		return 0, false
	}
	return l.sentByCls[cls], true
}
