package ssd

import (
	"testing"
)

func TestWearStatsEmptyAndFresh(t *testing.T) {
	d, _ := NewDevice(testConfig(8))
	ws := d.WearStats()
	if ws.MinErases != 0 || ws.MaxErases != 0 || ws.MeanErases != 0 || ws.Skew != 0 {
		t.Fatalf("fresh device wear = %+v, want zeros", ws)
	}
}

func TestWearStatsTracksErases(t *testing.T) {
	d, _ := NewDevice(testConfig(4))
	// Erase block 0 three times, block 1 once.
	for i := 0; i < 3; i++ {
		id, _ := d.AllocBlock(OwnerNative)
		if id != 0 {
			t.Fatalf("alloc order changed: got block %d", id)
		}
		d.EraseBlock(OwnerNative, id)
	}
	id, _ := d.AllocBlock(OwnerNative) // block 0 again (LIFO free list)
	id2, _ := d.AllocBlock(OwnerNative)
	d.EraseBlock(OwnerNative, id)
	d.EraseBlock(OwnerNative, id2)
	ws := d.WearStats()
	if ws.MaxErases < 4 || ws.MinErases != 0 {
		t.Fatalf("wear = %+v", ws)
	}
	if ws.Skew <= 1 {
		t.Fatalf("skew = %v, want > 1 for uneven wear", ws.Skew)
	}
}

// TestFTLWearLeveling: under sustained uniform churn the tie-break
// victim selection keeps wear reasonably even across blocks.
func TestFTLWearLeveling(t *testing.T) {
	d, _ := NewDevice(testConfig(16))
	f, err := NewFTL(d, 10*64)
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 4096)
	for round := 0; round < 60; round++ {
		for lpn := 0; lpn < 10*64; lpn++ {
			if _, err := f.Write(lpn, page); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
	ws := d.WearStats()
	if ws.MeanErases < 10 {
		t.Fatalf("not enough churn for the test: %+v", ws)
	}
	if ws.Skew > 2.0 {
		t.Fatalf("wear skew %.2f too high (max %d vs mean %.1f)",
			ws.Skew, ws.MaxErases, ws.MeanErases)
	}
}
