package ssd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestFTL(t *testing.T, blocks, logicalPages int) *FTL {
	t.Helper()
	d, err := NewDevice(testConfig(blocks))
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFTL(d, logicalPages)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFTLReadWrite(t *testing.T) {
	f := newTestFTL(t, 8, 64)
	want := []byte("hello flash")
	if _, err := f.Write(3, want); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(want)], want) {
		t.Fatalf("Read(3) = %q", got[:len(want)])
	}
	if !f.Mapped(3) || f.Mapped(4) {
		t.Fatal("Mapped() incorrect")
	}
}

func TestFTLBounds(t *testing.T) {
	f := newTestFTL(t, 8, 64)
	if _, err := f.Write(-1, nil); !errors.Is(err, ErrBadLPN) {
		t.Fatalf("Write(-1) err = %v", err)
	}
	if _, err := f.Write(64, nil); !errors.Is(err, ErrBadLPN) {
		t.Fatalf("Write(64) err = %v", err)
	}
	if _, _, err := f.Read(5); !errors.Is(err, ErrLPNUnset) {
		t.Fatalf("Read of unwritten lpn err = %v", err)
	}
	if err := f.Trim(99); !errors.Is(err, ErrBadLPN) {
		t.Fatalf("Trim(99) err = %v", err)
	}
}

func TestFTLOverProvisionLimit(t *testing.T) {
	d, _ := NewDevice(testConfig(8))
	// 8 blocks * 64 pages = 512 physical pages; max logical is (8-4)*64.
	if _, err := NewFTL(d, 4*64+1); err == nil {
		t.Fatal("logical space beyond over-provision limit should be rejected")
	}
	if _, err := NewFTL(d, 0); err == nil {
		t.Fatal("zero logical pages should be rejected")
	}
	if _, err := NewFTL(d, 4*64); err != nil {
		t.Fatalf("max logical pages should be accepted: %v", err)
	}
}

func TestFTLOverwriteRemaps(t *testing.T) {
	f := newTestFTL(t, 8, 64)
	f.Write(0, []byte("v1"))
	f.Write(0, []byte("v2"))
	got, _, _ := f.Read(0)
	if string(got[:2]) != "v2" {
		t.Fatalf("after overwrite Read = %q, want v2", got[:2])
	}
	// Two programs happened even though one logical page is live.
	if s := f.dev.Stats(); s.SysWriteBytes != 2*4096 {
		t.Fatalf("SysWriteBytes = %d, want 2 pages", s.SysWriteBytes)
	}
}

func TestFTLTrim(t *testing.T) {
	f := newTestFTL(t, 8, 64)
	f.Write(1, []byte("x"))
	if err := f.Trim(1); err != nil {
		t.Fatal(err)
	}
	if f.Mapped(1) {
		t.Fatal("lpn should be unmapped after Trim")
	}
	if _, _, err := f.Read(1); !errors.Is(err, ErrLPNUnset) {
		t.Fatalf("Read after Trim err = %v", err)
	}
	if err := f.Trim(1); err != nil {
		t.Fatal("double Trim must be a no-op, not an error")
	}
}

// TestFTLGCReclaimsSpace overwrites a small logical space many times so
// the device fills with invalid pages; GC must keep it writable forever.
func TestFTLGCReclaimsSpace(t *testing.T) {
	f := newTestFTL(t, 16, 8*64) // 16 blocks physical, 8 blocks logical
	page := make([]byte, 4096)
	for round := 0; round < 40; round++ {
		for lpn := 0; lpn < 8*64; lpn++ {
			binary.LittleEndian.PutUint32(page, uint32(round*1000+lpn))
			if _, err := f.Write(lpn, page); err != nil {
				t.Fatalf("round %d lpn %d: %v", round, lpn, err)
			}
		}
	}
	// All logical pages must still read back the latest round.
	for lpn := 0; lpn < 8*64; lpn++ {
		got, _, err := f.Read(lpn)
		if err != nil {
			t.Fatal(err)
		}
		if v := binary.LittleEndian.Uint32(got); v != uint32(39*1000+lpn) {
			t.Fatalf("lpn %d = %d, want %d", lpn, v, 39*1000+lpn)
		}
	}
	st := f.Stats()
	if st.GCRuns == 0 {
		t.Fatal("GC should have run under sustained overwrites")
	}
	if st.ValidPages != 8*64 {
		t.Fatalf("ValidPages = %d, want %d", st.ValidPages, 8*64)
	}
}

// TestFTLGCWriteAmplification checks the signature behaviour of Fig. 4:
// random overwrites on a nearly-full device force valid-page migration,
// so device writes exceed user writes.
func TestFTLGCWriteAmplification(t *testing.T) {
	f := newTestFTL(t, 32, 26*64)
	rng := rand.New(rand.NewSource(7))
	page := make([]byte, 4096)
	// Fill once, then overwrite randomly. Random overwrites scatter
	// invalid pages across blocks so GC must migrate.
	for lpn := 0; lpn < 26*64; lpn++ {
		f.Write(lpn, page)
	}
	for i := 0; i < 26*64*3; i++ {
		f.Write(rng.Intn(26*64), page)
	}
	userBytes := int64(26*64*4) * 4096
	wa := f.dev.Stats().WriteAmplification(userBytes)
	if wa <= 1.05 {
		t.Fatalf("write amplification = %.3f, expected > 1.05 under random overwrite", wa)
	}
	if f.Stats().MigratedPages == 0 {
		t.Fatal("expected migrated pages")
	}
}

// TestFTLSequentialTrimFriendly is the flip side: sequential writes with
// whole-range trims (the AOF pattern) produce almost no migration.
func TestFTLSequentialTrimFriendly(t *testing.T) {
	f := newTestFTL(t, 32, 26*64)
	page := make([]byte, 4096)
	for round := 0; round < 6; round++ {
		for lpn := 0; lpn < 26*64; lpn++ {
			if _, err := f.Write(lpn, page); err != nil {
				t.Fatal(err)
			}
		}
		for lpn := 0; lpn < 26*64; lpn++ {
			f.Trim(lpn)
		}
	}
	userBytes := int64(6*26*64) * 4096
	wa := f.dev.Stats().WriteAmplification(userBytes)
	if wa > 1.1 {
		t.Fatalf("write amplification = %.3f, want ~1.0 for sequential+trim", wa)
	}
}

func TestFTLDeviceFull(t *testing.T) {
	f := newTestFTL(t, 8, 4*64)
	page := make([]byte, 4096)
	// Fill every logical page (all valid, nothing trimmable).
	for lpn := 0; lpn < 4*64; lpn++ {
		if _, err := f.Write(lpn, page); err != nil {
			t.Fatal(err)
		}
	}
	// Keep overwriting one page: always exactly one invalid page per GC
	// cycle; the FTL must survive (slow, but correct).
	for i := 0; i < 200; i++ {
		if _, err := f.Write(0, page); err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
	}
}

// Property: after any random sequence of writes and trims, every mapped
// lpn reads back the last value written to it.
func TestFTLQuickConsistency(t *testing.T) {
	type op struct {
		LPN  uint8
		Trim bool
		Val  uint32
	}
	f := func(ops []op) bool {
		ftl := newTestFTLQuick()
		ref := map[int]uint32{}
		page := make([]byte, 4096)
		for _, o := range ops {
			lpn := int(o.LPN) % ftl.LogicalPages()
			if o.Trim {
				if ftl.Trim(lpn) != nil {
					return false
				}
				delete(ref, lpn)
			} else {
				binary.LittleEndian.PutUint32(page, o.Val)
				if _, err := ftl.Write(lpn, page); err != nil {
					return false
				}
				ref[lpn] = o.Val
			}
		}
		for lpn, want := range ref {
			got, _, err := ftl.Read(lpn)
			if err != nil || binary.LittleEndian.Uint32(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func newTestFTLQuick() *FTL {
	d, _ := NewDevice(testConfig(8))
	f, _ := NewFTL(d, 2*64)
	return f
}
