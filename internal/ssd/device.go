// Package ssd simulates a flash solid-state drive at page/block
// granularity. It substitutes for the real SSDs and the native
// (open-channel) SSD programming interfaces used in the paper, which we
// do not have; see DESIGN.md §2.
//
// The simulator is faithful to the properties the paper measures:
//
//   - Asymmetric operations (paper Fig. 3): programs happen at page
//     granularity (4 KB), erases at block granularity (256 KB = 64 pages),
//     and pages within a block must be programmed sequentially.
//   - Device-level garbage collection (paper Fig. 4): the FTL layer in
//     ftl.go migrates valid pages out of victim blocks before erasing,
//     which is exactly the hardware read/write amplification QinDB's
//     block-aligned files avoid.
//   - Firmware counters: SysWriteBytes / SysReadBytes count every byte
//     the flash actually programs or reads — the "Sys Write"/"Sys Read"
//     series of paper Fig. 5. User-level write accounting is the storage
//     engine's job, not the device's.
//
// A calibrated latency model advances a virtual clock so experiments can
// report MB/s and microsecond latencies independent of host speed.
package ssd

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Common device errors.
var (
	ErrNoFreeBlocks   = errors.New("ssd: no free blocks")
	ErrBadBlock       = errors.New("ssd: block id out of range")
	ErrBadPage        = errors.New("ssd: page index out of range")
	ErrNotOwner       = errors.New("ssd: block not owned by caller")
	ErrOutOfOrder     = errors.New("ssd: pages must be programmed sequentially within a block")
	ErrPageOverflow   = errors.New("ssd: payload larger than a page")
	ErrPageUnwritten  = errors.New("ssd: reading an unprogrammed page")
	ErrDeviceReleased = errors.New("ssd: block already free")
)

// Config describes the device geometry and latency model. The defaults
// mirror the paper's Fig. 3: 4 KB pages, 64 pages per 256 KB block.
type Config struct {
	PageSize      int // bytes per page
	PagesPerBlock int // pages per erase block
	Blocks        int // total physical blocks
	Latency       LatencyModel
}

// LatencyModel holds per-operation costs. Channels models internal flash
// parallelism: total busy time is divided by Channels when advancing the
// virtual clock. Values roughly match mid-2010s NVMe MLC flash.
type LatencyModel struct {
	PageRead   time.Duration
	PageWrite  time.Duration
	BlockErase time.Duration
	Channels   int
}

// DefaultConfig returns the paper's geometry sized to capacity bytes
// (rounded down to whole blocks).
func DefaultConfig(capacity int64) Config {
	cfg := Config{
		PageSize:      4096,
		PagesPerBlock: 64,
		Latency: LatencyModel{
			PageRead:   80 * time.Microsecond,
			PageWrite:  200 * time.Microsecond,
			BlockErase: 1500 * time.Microsecond,
			Channels:   4,
		},
	}
	cfg.Blocks = int(capacity / int64(cfg.PageSize*cfg.PagesPerBlock))
	return cfg
}

// BlockSize returns the erase-block size in bytes.
func (c Config) BlockSize() int { return c.PageSize * c.PagesPerBlock }

// Capacity returns the raw device capacity in bytes.
func (c Config) Capacity() int64 { return int64(c.Blocks) * int64(c.BlockSize()) }

func (c Config) validate() error {
	if c.PageSize <= 0 || c.PagesPerBlock <= 0 || c.Blocks <= 0 {
		return fmt.Errorf("ssd: invalid geometry %d/%d/%d", c.PageSize, c.PagesPerBlock, c.Blocks)
	}
	if c.Latency.Channels <= 0 {
		return errors.New("ssd: latency model needs at least one channel")
	}
	return nil
}

// Owner identifies who holds an allocated block. The device enforces
// that FTL-managed and natively-managed blocks are not mixed up.
type Owner uint8

// Block owners.
const (
	OwnerNone Owner = iota // free
	OwnerNative
	OwnerFTL
)

type block struct {
	data     []byte // allocated lazily on first program, PagesPerBlock*PageSize
	written  int    // pages programmed so far (sequential-program pointer)
	owner    Owner
	eraseCnt int64
}

// Stats is a snapshot of the device firmware counters.
type Stats struct {
	SysWriteBytes int64 // bytes programmed to flash (any cause)
	SysReadBytes  int64 // bytes read from flash (any cause)
	Erases        int64 // block erase operations
	FreeBlocks    int   // currently free blocks
	BusyTime      time.Duration
}

// WriteAmplification returns SysWriteBytes divided by userBytes; the
// caller supplies the application-level byte count it tracked.
func (s Stats) WriteAmplification(userBytes int64) float64 {
	if userBytes == 0 {
		return 0
	}
	return float64(s.SysWriteBytes) / float64(userBytes)
}

// Device is the raw flash device. Its methods form the "native SSD
// programming interface" of paper §2.3: callers allocate whole blocks,
// program pages strictly in order, and erase whole blocks. The FTL type
// layers a conventional logical-page interface on top.
//
// All methods are safe for concurrent use.
type Device struct {
	mu     sync.Mutex
	cfg    Config
	blocks []block
	free   []int // LIFO free list of block ids

	sysWrite int64
	sysRead  int64
	erases   int64
	clock    time.Duration // virtual busy time

	// onWrite, if set, is invoked (without the device lock, via defer)
	// after each program operation with the virtual timestamp and byte
	// count. The experiment harness uses it for the Sys-Write series.
	onWrite func(now time.Duration, n int64)
	onRead  func(now time.Duration, n int64)
}

// NewDevice creates a device with all blocks free.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Device{cfg: cfg, blocks: make([]block, cfg.Blocks)}
	d.free = make([]int, cfg.Blocks)
	for i := range d.free {
		d.free[i] = cfg.Blocks - 1 - i // pop order: 0, 1, 2, ...
	}
	return d, nil
}

// Config returns the device geometry.
func (d *Device) Config() Config { return d.cfg }

// SetTraceFuncs installs optional per-operation hooks for write and read
// traffic. Pass nil to clear. Hooks run synchronously after the
// operation; they must not call back into the device.
func (d *Device) SetTraceFuncs(onWrite, onRead func(now time.Duration, n int64)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onWrite = onWrite
	d.onRead = onRead
}

// Now returns the virtual clock: accumulated device busy time divided by
// channel parallelism.
func (d *Device) Now() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clock
}

// AdvanceClock adds host/workload time that passes without device
// activity (e.g. think time between versions in a trace replay).
func (d *Device) AdvanceClock(dt time.Duration) {
	if dt <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock += dt
}

func (d *Device) tick(dt time.Duration) time.Duration {
	cost := dt / time.Duration(d.cfg.Latency.Channels)
	d.clock += cost
	return cost
}

// Stats returns a snapshot of the firmware counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		SysWriteBytes: d.sysWrite,
		SysReadBytes:  d.sysRead,
		Erases:        d.erases,
		FreeBlocks:    len(d.free),
		BusyTime:      d.clock,
	}
}

// FreeBlocks returns how many blocks are unallocated.
func (d *Device) FreeBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.free)
}

// TotalBlocks returns the device block count.
func (d *Device) TotalBlocks() int { return d.cfg.Blocks }

// AllocBlock takes a free block for the given owner and returns its id.
func (d *Device) AllocBlock(owner Owner) (int, error) {
	if owner == OwnerNone {
		return 0, errors.New("ssd: cannot allocate for OwnerNone")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocLocked(owner)
}

func (d *Device) allocLocked(owner Owner) (int, error) {
	if len(d.free) == 0 {
		return 0, ErrNoFreeBlocks
	}
	id := d.free[len(d.free)-1]
	d.free = d.free[:len(d.free)-1]
	b := &d.blocks[id]
	b.owner = owner
	b.written = 0
	return id, nil
}

func (d *Device) checkBlock(id int, owner Owner) (*block, error) {
	if id < 0 || id >= len(d.blocks) {
		return nil, ErrBadBlock
	}
	b := &d.blocks[id]
	if b.owner == OwnerNone {
		return nil, ErrDeviceReleased
	}
	if owner != OwnerNone && b.owner != owner {
		return nil, ErrNotOwner
	}
	return b, nil
}

// ProgramPage writes data (at most one page) into block id at pageIdx.
// NAND constraint: pageIdx must equal the number of pages already
// programmed in the block. Short payloads are zero-padded to a full page
// and a full page is charged to the counters, as real flash would. It
// returns the simulated operation cost.
func (d *Device) ProgramPage(owner Owner, id, pageIdx int, data []byte) (time.Duration, error) {
	if len(data) > d.cfg.PageSize {
		return 0, ErrPageOverflow
	}
	d.mu.Lock()
	b, err := d.checkBlock(id, owner)
	if err != nil {
		d.mu.Unlock()
		return 0, err
	}
	if pageIdx < 0 || pageIdx >= d.cfg.PagesPerBlock {
		d.mu.Unlock()
		return 0, ErrBadPage
	}
	if pageIdx != b.written {
		d.mu.Unlock()
		return 0, fmt.Errorf("%w: block %d expects page %d, got %d", ErrOutOfOrder, id, b.written, pageIdx)
	}
	if b.data == nil {
		b.data = make([]byte, d.cfg.BlockSize())
	}
	off := pageIdx * d.cfg.PageSize
	n := copy(b.data[off:off+d.cfg.PageSize], data)
	for i := off + n; i < off+d.cfg.PageSize; i++ {
		b.data[i] = 0
	}
	b.written++
	d.sysWrite += int64(d.cfg.PageSize)
	cost := d.tick(d.cfg.Latency.PageWrite)
	now := d.clock
	hook := d.onWrite
	d.mu.Unlock()
	if hook != nil {
		hook(now, int64(d.cfg.PageSize))
	}
	return cost, nil
}

// ReadPage reads one full page into a freshly allocated buffer and
// returns it with the simulated operation cost.
func (d *Device) ReadPage(owner Owner, id, pageIdx int) ([]byte, time.Duration, error) {
	d.mu.Lock()
	b, err := d.checkBlock(id, owner)
	if err != nil {
		d.mu.Unlock()
		return nil, 0, err
	}
	if pageIdx < 0 || pageIdx >= d.cfg.PagesPerBlock {
		d.mu.Unlock()
		return nil, 0, ErrBadPage
	}
	if pageIdx >= b.written {
		d.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: block %d page %d", ErrPageUnwritten, id, pageIdx)
	}
	off := pageIdx * d.cfg.PageSize
	out := make([]byte, d.cfg.PageSize)
	copy(out, b.data[off:off+d.cfg.PageSize])
	d.sysRead += int64(d.cfg.PageSize)
	cost := d.tick(d.cfg.Latency.PageRead)
	now := d.clock
	hook := d.onRead
	d.mu.Unlock()
	if hook != nil {
		hook(now, int64(d.cfg.PageSize))
	}
	return out, cost, nil
}

// WrittenPages returns how many pages have been programmed in block id.
func (d *Device) WrittenPages(id int) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	b, err := d.checkBlock(id, OwnerNone)
	if err != nil {
		return 0, err
	}
	return b.written, nil
}

// EraseBlock erases the whole block and returns it to the free list.
// This is the only way to make programmed pages writable again — the
// asymmetry of paper Fig. 3.
func (d *Device) EraseBlock(owner Owner, id int) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	b, err := d.checkBlock(id, owner)
	if err != nil {
		return 0, err
	}
	b.owner = OwnerNone
	b.written = 0
	b.data = nil // release backing memory
	b.eraseCnt++
	d.erases++
	d.free = append(d.free, id)
	return d.tick(d.cfg.Latency.BlockErase), nil
}

// EraseCount returns how many times block id has been erased (wear).
func (d *Device) EraseCount(id int) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || id >= len(d.blocks) {
		return 0
	}
	return d.blocks[id].eraseCnt
}

// WearStats summarizes flash wear: NAND blocks endure a limited number
// of program/erase cycles, which is one of the paper's arguments against
// compaction-heavy designs ("not suitable due to its life span based on
// limited write cycles"). Skew is max/mean; a perfectly leveled device
// approaches 1.
type WearStats struct {
	MinErases  int64
	MaxErases  int64
	MeanErases float64
	Skew       float64
}

// WearStats returns the current wear distribution across all blocks.
func (d *Device) WearStats() WearStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.blocks) == 0 {
		return WearStats{}
	}
	ws := WearStats{MinErases: d.blocks[0].eraseCnt}
	var sum int64
	for i := range d.blocks {
		c := d.blocks[i].eraseCnt
		sum += c
		if c < ws.MinErases {
			ws.MinErases = c
		}
		if c > ws.MaxErases {
			ws.MaxErases = c
		}
	}
	ws.MeanErases = float64(sum) / float64(len(d.blocks))
	if ws.MeanErases > 0 {
		ws.Skew = float64(ws.MaxErases) / ws.MeanErases
	}
	return ws
}
