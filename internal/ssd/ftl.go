package ssd

import (
	"errors"
	"fmt"
	"time"
)

// FTL errors.
var (
	ErrBadLPN     = errors.New("ssd: logical page out of range")
	ErrLPNUnset   = errors.New("ssd: logical page not written")
	ErrDeviceFull = errors.New("ssd: device full of valid data")
)

const unmapped = int32(-1)

// FTL is a page-mapped flash translation layer: the "conventional SSD"
// the LSM baseline writes to. It exposes a logical page address space,
// remaps overwrites to fresh pages, and runs greedy garbage collection
// when free blocks run low. GC migrations are charged to the device's
// Sys counters, reproducing the hardware write amplification the paper
// shows in Fig. 4.
type FTL struct {
	// The embedded device lock does not cover FTL state; the FTL has its
	// own lock discipline: all public methods run under dev.mu indirectly
	// via device calls, but FTL metadata needs its own synchronization.
	// We reuse a dedicated mutex and never hold it across hook callbacks.
	dev          *Device
	logicalPages int

	mu       chan struct{} // buffered(1) semaphore; see lock()/unlock()
	l2p      []int32       // logical page -> physical page number, or -1
	blocks   map[int]*ftlBlock
	active   int // active block id, -1 if none
	lowWater int // run GC when free blocks drop to this
	pph      int // pages per block (cached)

	migratedPages int64
	gcRuns        int64
}

type ftlBlock struct {
	lpns  []int32 // per page: owning logical page, or -1 once invalidated
	valid int
}

// FTLStats reports GC activity attributable to the translation layer.
type FTLStats struct {
	MigratedPages int64 // valid pages copied during device GC
	GCRuns        int64
	ValidPages    int64 // currently mapped logical pages
}

// NewFTL wraps dev with a page-mapped translation layer exposing
// logicalPages logical pages. The difference between the device's raw
// capacity and the logical capacity is the over-provisioning space GC
// needs; at least 4 spare blocks are required.
func NewFTL(dev *Device, logicalPages int) (*FTL, error) {
	cfg := dev.Config()
	spare := 4
	maxLogical := (cfg.Blocks - spare) * cfg.PagesPerBlock
	if logicalPages <= 0 || logicalPages > maxLogical {
		return nil, fmt.Errorf("ssd: logical pages %d out of range (max %d)", logicalPages, maxLogical)
	}
	f := &FTL{
		dev:          dev,
		logicalPages: logicalPages,
		mu:           make(chan struct{}, 1),
		l2p:          make([]int32, logicalPages),
		blocks:       make(map[int]*ftlBlock),
		active:       -1,
		lowWater:     2,
		pph:          cfg.PagesPerBlock,
	}
	for i := range f.l2p {
		f.l2p[i] = unmapped
	}
	return f, nil
}

func (f *FTL) lock()   { f.mu <- struct{}{} }
func (f *FTL) unlock() { <-f.mu }

// LogicalPages returns the size of the logical address space.
func (f *FTL) LogicalPages() int { return f.logicalPages }

// Device returns the underlying flash device.
func (f *FTL) Device() *Device { return f.dev }

// Stats returns FTL-level GC statistics.
func (f *FTL) Stats() FTLStats {
	f.lock()
	defer f.unlock()
	var valid int64
	for _, b := range f.blocks {
		valid += int64(b.valid)
	}
	return FTLStats{MigratedPages: f.migratedPages, GCRuns: f.gcRuns, ValidPages: valid}
}

func (f *FTL) ppn(blockID, page int) int32 { return int32(blockID*f.pph + page) }

func (f *FTL) split(ppn int32) (blockID, page int) {
	return int(ppn) / f.pph, int(ppn) % f.pph
}

// Write stores data (at most one page) at logical page lpn, remapping it
// to a fresh physical page. It returns the simulated cost including any
// GC work it triggered.
func (f *FTL) Write(lpn int, data []byte) (time.Duration, error) {
	if lpn < 0 || lpn >= f.logicalPages {
		return 0, ErrBadLPN
	}
	f.lock()
	defer f.unlock()
	var total time.Duration
	cost, err := f.ensureActiveLocked(&total)
	if err != nil {
		return total, err
	}
	total += cost
	f.invalidateLocked(lpn)
	b := f.blocks[f.active]
	page := len(b.lpns)
	//lint:ignore blockalign alignment is the caller's contract (blockfs slices f.tail[:pageSize]); the FTL forwards at most one page verbatim
	c, err := f.dev.ProgramPage(OwnerFTL, f.active, page, data)
	total += c
	if err != nil {
		return total, err
	}
	b.lpns = append(b.lpns, int32(lpn))
	b.valid++
	f.l2p[lpn] = f.ppn(f.active, page)
	return total, nil
}

// ensureActiveLocked guarantees the active block has a free page,
// allocating a new block (after GC if needed).
func (f *FTL) ensureActiveLocked(total *time.Duration) (time.Duration, error) {
	if f.active >= 0 && len(f.blocks[f.active].lpns) < f.pph {
		return 0, nil
	}
	var cost time.Duration
	if f.dev.FreeBlocks() <= f.lowWater {
		c, err := f.gcLocked()
		cost += c
		if err != nil {
			return cost, err
		}
	}
	id, err := f.dev.AllocBlock(OwnerFTL)
	if err != nil {
		return cost, err
	}
	f.blocks[id] = &ftlBlock{lpns: make([]int32, 0, f.pph)}
	f.active = id
	return cost, nil
}

func (f *FTL) invalidateLocked(lpn int) {
	old := f.l2p[lpn]
	if old == unmapped {
		return
	}
	blockID, page := f.split(old)
	b := f.blocks[blockID]
	if b != nil && b.lpns[page] == int32(lpn) {
		b.lpns[page] = unmapped
		b.valid--
	}
	f.l2p[lpn] = unmapped
}

// Read returns the page stored at lpn.
func (f *FTL) Read(lpn int) ([]byte, time.Duration, error) {
	if lpn < 0 || lpn >= f.logicalPages {
		return nil, 0, ErrBadLPN
	}
	f.lock()
	ppn := f.l2p[lpn]
	f.unlock()
	if ppn == unmapped {
		return nil, 0, fmt.Errorf("%w: %d", ErrLPNUnset, lpn)
	}
	blockID, page := f.split(ppn)
	return f.dev.ReadPage(OwnerFTL, blockID, page)
}

// Trim invalidates lpn (the logical discard a filesystem issues when a
// file is deleted). The physical page becomes garbage to be collected.
func (f *FTL) Trim(lpn int) error {
	if lpn < 0 || lpn >= f.logicalPages {
		return ErrBadLPN
	}
	f.lock()
	defer f.unlock()
	f.invalidateLocked(lpn)
	return nil
}

// Mapped reports whether lpn currently holds data.
func (f *FTL) Mapped(lpn int) bool {
	if lpn < 0 || lpn >= f.logicalPages {
		return false
	}
	f.lock()
	defer f.unlock()
	return f.l2p[lpn] != unmapped
}

// gcLocked reclaims blocks until the device has more than lowWater+1
// free blocks. Victims are chosen greedily (fewest valid pages). Valid
// pages are migrated into a dedicated destination chain, which is what
// charges the Sys-Read and Sys-Write amplification to the device.
func (f *FTL) gcLocked() (time.Duration, error) {
	var total time.Duration
	f.gcRuns++
	for f.dev.FreeBlocks() <= f.lowWater+1 {
		victim := f.pickVictimLocked()
		if victim < 0 {
			return total, ErrDeviceFull
		}
		vb := f.blocks[victim]
		for page, lpn := range vb.lpns {
			if lpn == unmapped {
				continue
			}
			data, c, err := f.dev.ReadPage(OwnerFTL, victim, page)
			total += c
			if err != nil {
				return total, err
			}
			c, err = f.migrateWriteLocked(int(lpn), data)
			total += c
			if err != nil {
				return total, err
			}
			f.migratedPages++
		}
		c, err := f.dev.EraseBlock(OwnerFTL, victim)
		total += c
		if err != nil {
			return total, err
		}
		delete(f.blocks, victim)
		if f.active == victim {
			f.active = -1
		}
	}
	return total, nil
}

// migrateWriteLocked writes a migrated page to the active chain without
// re-triggering GC (GC holds spare blocks by construction: lowWater >= 2
// guarantees an allocatable block while collecting).
func (f *FTL) migrateWriteLocked(lpn int, data []byte) (time.Duration, error) {
	var total time.Duration
	if f.active < 0 || len(f.blocks[f.active].lpns) >= f.pph {
		id, err := f.dev.AllocBlock(OwnerFTL)
		if err != nil {
			return total, err
		}
		f.blocks[id] = &ftlBlock{lpns: make([]int32, 0, f.pph)}
		f.active = id
	}
	b := f.blocks[f.active]
	page := len(b.lpns)
	//lint:ignore blockalign GC migration re-programs a page read back from flash, so it is page-sized by construction
	c, err := f.dev.ProgramPage(OwnerFTL, f.active, page, data)
	total += c
	if err != nil {
		return total, err
	}
	b.lpns = append(b.lpns, int32(lpn))
	b.valid++
	f.l2p[lpn] = f.ppn(f.active, page)
	return total, nil
}

// pickVictimLocked returns the fully-programmed, non-active block with
// the fewest valid pages, or -1 if none is reclaimable. Ties are broken
// toward the least-worn block, which levels wear at no extra migration
// cost. Blocks with all pages valid are skipped; if every block is fully
// valid the device is genuinely full.
func (f *FTL) pickVictimLocked() int {
	best, bestValid := -1, 1<<30
	var bestWear int64
	for id, b := range f.blocks {
		if id == f.active || len(b.lpns) < f.pph {
			continue
		}
		wear := f.dev.EraseCount(id)
		if b.valid < bestValid || (b.valid == bestValid && wear < bestWear) {
			best, bestValid, bestWear = id, b.valid, wear
		}
	}
	if best >= 0 && bestValid >= f.pph {
		return -1 // erasing it frees nothing
	}
	return best
}
