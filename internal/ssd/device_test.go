package ssd

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func testConfig(blocks int) Config {
	return Config{
		PageSize:      4096,
		PagesPerBlock: 64,
		Blocks:        blocks,
		Latency: LatencyModel{
			PageRead:   80 * time.Microsecond,
			PageWrite:  200 * time.Microsecond,
			BlockErase: 1500 * time.Microsecond,
			Channels:   1,
		},
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(1 << 30)
	if cfg.PageSize != 4096 || cfg.PagesPerBlock != 64 {
		t.Fatalf("geometry = %d/%d, want 4096/64 (paper Fig. 3)", cfg.PageSize, cfg.PagesPerBlock)
	}
	if cfg.BlockSize() != 256<<10 {
		t.Fatalf("BlockSize() = %d, want 256 KiB", cfg.BlockSize())
	}
	if cfg.Capacity() != 1<<30 {
		t.Fatalf("Capacity() = %d, want 1 GiB", cfg.Capacity())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewDevice(Config{}); err == nil {
		t.Fatal("zero config should be rejected")
	}
	cfg := testConfig(8)
	cfg.Latency.Channels = 0
	if _, err := NewDevice(cfg); err == nil {
		t.Fatal("zero channels should be rejected")
	}
}

func TestAllocProgramReadErase(t *testing.T) {
	d, err := NewDevice(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.AllocBlock(OwnerNative)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 100)
	if _, err := d.ProgramPage(OwnerNative, id, 0, payload); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.ReadPage(OwnerNative, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:100], payload) {
		t.Fatal("read back payload mismatch")
	}
	for _, b := range got[100:] {
		if b != 0 {
			t.Fatal("short program must zero-pad the page")
		}
	}
	if _, err := d.EraseBlock(OwnerNative, id); err != nil {
		t.Fatal(err)
	}
	if d.FreeBlocks() != 4 {
		t.Fatalf("FreeBlocks() = %d, want 4 after erase", d.FreeBlocks())
	}
}

func TestSequentialProgramConstraint(t *testing.T) {
	d, _ := NewDevice(testConfig(2))
	id, _ := d.AllocBlock(OwnerNative)
	if _, err := d.ProgramPage(OwnerNative, id, 1, nil); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("skipping page 0 should fail with ErrOutOfOrder, got %v", err)
	}
	if _, err := d.ProgramPage(OwnerNative, id, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Rewriting an already-programmed page is also out of order: flash
	// pages cannot be reprogrammed without an erase.
	if _, err := d.ProgramPage(OwnerNative, id, 0, nil); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("reprogramming page 0 should fail, got %v", err)
	}
}

func TestReadUnwrittenPage(t *testing.T) {
	d, _ := NewDevice(testConfig(2))
	id, _ := d.AllocBlock(OwnerNative)
	if _, _, err := d.ReadPage(OwnerNative, id, 0); !errors.Is(err, ErrPageUnwritten) {
		t.Fatalf("want ErrPageUnwritten, got %v", err)
	}
}

func TestOwnershipEnforcement(t *testing.T) {
	d, _ := NewDevice(testConfig(2))
	id, _ := d.AllocBlock(OwnerNative)
	if _, err := d.ProgramPage(OwnerFTL, id, 0, nil); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("cross-owner program should fail, got %v", err)
	}
	if _, err := d.EraseBlock(OwnerFTL, id); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("cross-owner erase should fail, got %v", err)
	}
	if _, err := d.AllocBlock(OwnerNone); err == nil {
		t.Fatal("AllocBlock(OwnerNone) should fail")
	}
}

func TestAllocExhaustion(t *testing.T) {
	d, _ := NewDevice(testConfig(3))
	for i := 0; i < 3; i++ {
		if _, err := d.AllocBlock(OwnerNative); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.AllocBlock(OwnerNative); !errors.Is(err, ErrNoFreeBlocks) {
		t.Fatalf("want ErrNoFreeBlocks, got %v", err)
	}
}

func TestUseAfterErase(t *testing.T) {
	d, _ := NewDevice(testConfig(2))
	id, _ := d.AllocBlock(OwnerNative)
	d.ProgramPage(OwnerNative, id, 0, []byte("x"))
	d.EraseBlock(OwnerNative, id)
	if _, _, err := d.ReadPage(OwnerNative, id, 0); !errors.Is(err, ErrDeviceReleased) {
		t.Fatalf("read after erase should fail, got %v", err)
	}
}

func TestStatsAndClock(t *testing.T) {
	d, _ := NewDevice(testConfig(4))
	id, _ := d.AllocBlock(OwnerNative)
	d.ProgramPage(OwnerNative, id, 0, []byte("a"))
	d.ProgramPage(OwnerNative, id, 1, []byte("b"))
	d.ReadPage(OwnerNative, id, 0)
	d.EraseBlock(OwnerNative, id)
	s := d.Stats()
	if s.SysWriteBytes != 2*4096 {
		t.Fatalf("SysWriteBytes = %d, want %d", s.SysWriteBytes, 2*4096)
	}
	if s.SysReadBytes != 4096 {
		t.Fatalf("SysReadBytes = %d, want 4096", s.SysReadBytes)
	}
	if s.Erases != 1 {
		t.Fatalf("Erases = %d, want 1", s.Erases)
	}
	want := 2*200*time.Microsecond + 80*time.Microsecond + 1500*time.Microsecond
	if s.BusyTime != want {
		t.Fatalf("BusyTime = %v, want %v", s.BusyTime, want)
	}
	if d.Now() != want {
		t.Fatalf("Now() = %v, want %v", d.Now(), want)
	}
	d.AdvanceClock(time.Second)
	if d.Now() != want+time.Second {
		t.Fatal("AdvanceClock should move the virtual clock")
	}
	d.AdvanceClock(-time.Second) // ignored
	if d.Now() != want+time.Second {
		t.Fatal("negative AdvanceClock must be ignored")
	}
}

func TestChannelsDivideLatency(t *testing.T) {
	cfg := testConfig(2)
	cfg.Latency.Channels = 4
	d, _ := NewDevice(cfg)
	id, _ := d.AllocBlock(OwnerNative)
	cost, _ := d.ProgramPage(OwnerNative, id, 0, nil)
	if cost != 50*time.Microsecond {
		t.Fatalf("cost = %v, want 50µs (200µs / 4 channels)", cost)
	}
}

func TestPageOverflow(t *testing.T) {
	d, _ := NewDevice(testConfig(2))
	id, _ := d.AllocBlock(OwnerNative)
	big := make([]byte, 4097)
	if _, err := d.ProgramPage(OwnerNative, id, 0, big); !errors.Is(err, ErrPageOverflow) {
		t.Fatalf("want ErrPageOverflow, got %v", err)
	}
}

func TestTraceHooks(t *testing.T) {
	d, _ := NewDevice(testConfig(2))
	var wrote, read int64
	d.SetTraceFuncs(
		func(now time.Duration, n int64) { wrote += n },
		func(now time.Duration, n int64) { read += n },
	)
	id, _ := d.AllocBlock(OwnerNative)
	d.ProgramPage(OwnerNative, id, 0, []byte("x"))
	d.ReadPage(OwnerNative, id, 0)
	if wrote != 4096 || read != 4096 {
		t.Fatalf("hooks saw write=%d read=%d, want 4096 each", wrote, read)
	}
}

func TestWearTracking(t *testing.T) {
	d, _ := NewDevice(testConfig(1))
	for i := 0; i < 3; i++ {
		id, _ := d.AllocBlock(OwnerNative)
		d.EraseBlock(OwnerNative, id)
	}
	if got := d.EraseCount(0); got != 3 {
		t.Fatalf("EraseCount(0) = %d, want 3", got)
	}
}

func TestWrittenPages(t *testing.T) {
	d, _ := NewDevice(testConfig(2))
	id, _ := d.AllocBlock(OwnerNative)
	for i := 0; i < 5; i++ {
		d.ProgramPage(OwnerNative, id, i, nil)
	}
	n, err := d.WrittenPages(id)
	if err != nil || n != 5 {
		t.Fatalf("WrittenPages = %d, %v; want 5", n, err)
	}
}

func TestWriteAmplificationHelper(t *testing.T) {
	s := Stats{SysWriteBytes: 300}
	if got := s.WriteAmplification(100); got != 3 {
		t.Fatalf("WA = %v, want 3", got)
	}
	if got := s.WriteAmplification(0); got != 0 {
		t.Fatalf("WA with zero user bytes = %v, want 0", got)
	}
}
