package metrics

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestEventLogNil(t *testing.T) {
	var l *EventLog
	if seq := l.Emit(EventNodeUp, "n1", 0, ""); seq != 0 {
		t.Fatalf("nil Emit = %d", seq)
	}
	if l.LastSeq() != 0 || l.Since(0, 0) != nil {
		t.Fatal("nil log must answer zero values")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if evs := l.Wait(ctx, 0); evs != nil {
		t.Fatalf("nil Wait = %+v", evs)
	}
}

func TestEventLogSeqAndSince(t *testing.T) {
	l := NewEventLog(8)
	for i := 0; i < 5; i++ {
		l.Emit(EventVersionPublish, "", uint64(i+1), "")
	}
	if got := l.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	evs := l.Since(2, 0)
	if len(evs) != 3 || evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("Since(2) = %+v", evs)
	}
	// max keeps the newest.
	evs = l.Since(0, 2)
	if len(evs) != 2 || evs[0].Seq != 4 {
		t.Fatalf("Since(0, max=2) = %+v", evs)
	}
}

func TestEventLogEviction(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Emit(EventNodeDown, "n1", 0, "")
	}
	evs := l.Since(0, 0)
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	// The ring holds the newest 4; sequence numbers expose the gap.
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("retained seqs %d..%d, want 7..10", evs[0].Seq, evs[3].Seq)
	}
}

func TestEventLogWait(t *testing.T) {
	l := NewEventLog(8)
	l.Emit(EventNodeUp, "n1", 0, "")

	// Past events satisfy the wait immediately.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if evs := l.Wait(ctx, 0); len(evs) != 1 {
		t.Fatalf("Wait(0) = %+v", evs)
	}

	// A future event releases a blocked waiter.
	got := make(chan []Event, 1)
	go func() { got <- l.Wait(ctx, 1) }()
	time.Sleep(10 * time.Millisecond) // let the waiter block
	l.Emit(EventNodeDown, "n2", 0, "probe timeout")
	select {
	case evs := <-got:
		if len(evs) != 1 || evs[0].Type != EventNodeDown {
			t.Fatalf("released with %+v", evs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never released")
	}

	// Context expiry unblocks with nil.
	short, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if evs := l.Wait(short, l.LastSeq()); evs != nil {
		t.Fatalf("expired Wait = %+v", evs)
	}
}

func TestEventLogJSONAndText(t *testing.T) {
	l := NewEventLog(8)
	l.Emit(EventBreakerOpen, "n3", 0, "5 consecutive failures")
	l.Emit(EventVersionRetire, "", 7, "")

	raw, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	var evs []Event
	if err := json.Unmarshal(raw, &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Type != EventBreakerOpen || evs[1].Version != 7 {
		t.Fatalf("round-trip = %+v", evs)
	}

	var sb strings.Builder
	if _, err := l.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"breaker.open", "node=n3", "5 consecutive failures", "version.retire", "v7"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
}
