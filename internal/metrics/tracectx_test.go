package metrics

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestStartSpanMintsRoot(t *testing.T) {
	r := NewRegistry()
	ctx, end := r.StartSpan(context.Background(), "root.op")
	sc, ok := SpanFromContext(ctx)
	if !ok || !sc.Valid() {
		t.Fatal("StartSpan put no valid span in the context")
	}
	end(nil)
	spans := r.Tracer().Trace(sc.TraceID)
	if len(spans) != 1 || spans[0].Name != "root.op" || spans[0].ParentID != 0 {
		t.Fatalf("trace = %+v", spans)
	}
	if spans[0].SpanID != sc.SpanID {
		t.Fatalf("recorded span id %016x != context span id %016x", spans[0].SpanID, sc.SpanID)
	}
}

func TestStartSpanNestsUnderParent(t *testing.T) {
	r := NewRegistry()
	ctx, endRoot := r.StartSpan(context.Background(), "outer")
	root, _ := SpanFromContext(ctx)
	child, endChild := r.StartSpan(ctx, "inner")
	csc, _ := SpanFromContext(child)
	if csc.TraceID != root.TraceID {
		t.Fatalf("child trace %016x != parent trace %016x", csc.TraceID, root.TraceID)
	}
	if csc.SpanID == root.SpanID {
		t.Fatal("child reused the parent span id")
	}
	endChild(errors.New("inner failed"))
	endRoot(nil)
	for _, rec := range r.Tracer().Trace(root.TraceID) {
		if rec.Name == "inner" {
			if rec.ParentID != root.SpanID {
				t.Fatalf("inner parent = %016x, want %016x", rec.ParentID, root.SpanID)
			}
			if rec.Err != "inner failed" {
				t.Fatalf("inner err = %q", rec.Err)
			}
		}
	}
}

// TestContinueSpanNoParentIsNoOp is the server-side contract: untraced
// traffic must not mint root traces.
func TestContinueSpanNoParentIsNoOp(t *testing.T) {
	r := NewRegistry()
	ctx, end := r.ContinueSpan(context.Background(), "server.req.get")
	if _, ok := SpanFromContext(ctx); ok {
		t.Fatal("ContinueSpan minted a span without a parent")
	}
	end(nil)
	if got := r.Tracer().Count(); got != 0 {
		t.Fatalf("ContinueSpan recorded %d spans without a parent", got)
	}
}

func TestContinueSpanWithParent(t *testing.T) {
	r := NewRegistry()
	parent := SpanContext{TraceID: 42, SpanID: 7}
	ctx := ContextWithSpan(context.Background(), parent)
	cctx, end := r.ContinueSpanNote(ctx, "server.req.put", "ops=3")
	sc, ok := SpanFromContext(cctx)
	if !ok || sc.TraceID != 42 || sc.SpanID == 7 {
		t.Fatalf("continued span = %+v", sc)
	}
	end(nil)
	spans := r.Tracer().Trace(42)
	if len(spans) != 1 || spans[0].ParentID != 7 || spans[0].Note != "ops=3" {
		t.Fatalf("trace = %+v", spans)
	}
}

func TestNewSpanIDUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := NewSpanID()
		if id == 0 || seen[id] {
			t.Fatalf("NewSpanID returned %d (dup or zero) at iteration %d", id, i)
		}
		seen[id] = true
	}
}

func TestNilRegistrySpansInert(t *testing.T) {
	var r *Registry
	ctx, end := r.StartSpan(context.Background(), "x")
	if _, ok := SpanFromContext(ctx); ok {
		t.Fatal("nil registry minted a span")
	}
	end(nil)
	ctx, end = r.ContinueSpan(context.Background(), "y")
	end(nil)
	_ = ctx
}

// TestWriteTraceTimeline checks the rendered parent/child indentation
// and that orphan spans (parent outside the ring) still print.
func TestWriteTraceTimeline(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	now := time.Now()
	tr.RecordSpan(SpanRecord{Name: "publish", Start: now, Dur: 3 * time.Millisecond,
		TraceID: 9, SpanID: 1})
	tr.RecordSpan(SpanRecord{Name: "ship", Start: now.Add(time.Millisecond),
		Dur: time.Millisecond, TraceID: 9, SpanID: 2, ParentID: 1})
	tr.RecordSpan(SpanRecord{Name: "orphan", Start: now.Add(2 * time.Millisecond),
		Dur: time.Millisecond, TraceID: 9, SpanID: 3, ParentID: 999})
	var sb strings.Builder
	if _, err := tr.WriteTrace(&sb, 9); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"publish", "ship", "orphan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// The child renders deeper than its parent.
	var publishIndent, shipIndent int
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		indent := len(line) - len(trimmed)
		if strings.Contains(line, "publish") {
			publishIndent = indent
		} else if strings.Contains(line, "ship") {
			shipIndent = indent
		}
	}
	if shipIndent <= publishIndent {
		t.Fatalf("child indent %d <= parent indent %d:\n%s", shipIndent, publishIndent, out)
	}
}
