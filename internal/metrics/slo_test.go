package metrics

import (
	"strings"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic window tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestSLONil(t *testing.T) {
	var s *SLO
	s.Record(true)
	s.Record(false)
	if s.Name() != "" || s.Target() != 0 || s.BurnRate(0) != 0 {
		t.Fatal("nil SLO must answer zero values")
	}
	if snap := s.Snapshot(); snap.Name != "" || len(snap.Windows) != 0 {
		t.Fatalf("nil SLO snapshot = %+v", snap)
	}
	s.Register(NewRegistry()) // must not panic
}

func TestSLORatioAndBurn(t *testing.T) {
	clk := newFakeClock()
	s := NewSLO(SLOConfig{
		Name:    "fleet.read",
		Target:  0.006, // the paper's 0.6 % read-miss objective
		Windows: []time.Duration{time.Minute},
		Now:     clk.now,
	})
	for i := 0; i < 994; i++ {
		s.Record(true)
	}
	for i := 0; i < 6; i++ {
		s.Record(false)
	}
	snap := s.Snapshot()
	if len(snap.Windows) != 1 {
		t.Fatalf("windows = %d, want 1", len(snap.Windows))
	}
	w := snap.Windows[0]
	if w.Good != 994 || w.Bad != 6 {
		t.Fatalf("good/bad = %d/%d, want 994/6", w.Good, w.Bad)
	}
	if got, want := w.Ratio, 0.006; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("ratio = %g, want %g", got, want)
	}
	// 0.6 % observed against a 0.6 % target burns at exactly 1×.
	if got := w.BurnRate; got < 1-1e-9 || got > 1+1e-9 {
		t.Fatalf("burn = %g, want 1.0", got)
	}
	if snap.TotalGood != 994 || snap.TotalBad != 6 {
		t.Fatalf("totals = %d/%d", snap.TotalGood, snap.TotalBad)
	}
}

func TestSLOWindowSlides(t *testing.T) {
	clk := newFakeClock()
	s := NewSLO(SLOConfig{
		Name:    "fleet.read",
		Target:  0.006,
		Windows: []time.Duration{time.Minute},
		Buckets: 60,
		Now:     clk.now,
	})
	for i := 0; i < 10; i++ {
		s.Record(false)
	}
	if got := s.BurnRate(time.Minute); got <= 0 {
		t.Fatalf("burn after misses = %g, want > 0", got)
	}
	// After more than a full window of wall time the misses expire.
	clk.advance(2 * time.Minute)
	if got := s.BurnRate(time.Minute); got != 0 {
		t.Fatalf("burn after window slid = %g, want 0", got)
	}
	snap := s.Snapshot()
	if w := snap.Windows[0]; w.Good != 0 || w.Bad != 0 {
		t.Fatalf("window still holds %d/%d after sliding", w.Good, w.Bad)
	}
	// Lifetime totals survive the slide.
	if snap.TotalBad != 10 {
		t.Fatalf("total bad = %d, want 10", snap.TotalBad)
	}
}

func TestSLOBurnEvents(t *testing.T) {
	clk := newFakeClock()
	ev := NewEventLog(16)
	s := NewSLO(SLOConfig{
		Name:    "fleet.read",
		Target:  0.01,
		Windows: []time.Duration{time.Minute},
		Events:  ev,
		Now:     clk.now,
	})
	s.Record(false) // ratio 1.0 >> target: crossing up
	evs := ev.Since(0, 0)
	if len(evs) != 1 || evs[0].Type != EventSLOBurn {
		t.Fatalf("events after burn = %+v, want one slo.burn", evs)
	}
	if !strings.Contains(evs[0].Detail, "fleet.read") || !strings.Contains(evs[0].Detail, "window=1m") {
		t.Fatalf("burn detail = %q", evs[0].Detail)
	}
	// Still burning: no duplicate event.
	s.Record(false)
	if got := len(ev.Since(0, 0)); got != 1 {
		t.Fatalf("duplicate burn events: %d", got)
	}
	// Slide the window clean and record a success: crossing down.
	clk.advance(2 * time.Minute)
	s.Record(true)
	evs = ev.Since(0, 0)
	if len(evs) != 2 || evs[1].Type != EventSLOClear {
		t.Fatalf("events after recovery = %+v, want slo.burn then slo.clear", evs)
	}
}

func TestSLORegisterGauges(t *testing.T) {
	clk := newFakeClock()
	reg := NewRegistry()
	s := NewSLO(SLOConfig{
		Name:    "fleet.read",
		Target:  0.5,
		Windows: []time.Duration{time.Minute},
		Now:     clk.now,
	})
	s.Register(reg)
	s.Record(false) // ratio 1.0, burn 2.0

	var sb strings.Builder
	if _, err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"slo_fleet_read_target 0.5",
		"slo_fleet_read_ratio_1m 1",
		"slo_fleet_read_burn_1m 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSLOBurnRateClosestWindow(t *testing.T) {
	clk := newFakeClock()
	s := NewSLO(SLOConfig{Name: "x", Target: 0.5, Now: clk.now}) // default 1m/5m/1h
	s.Record(false)
	// All windows hold the same single miss, so any width answers 2×;
	// the point is that the lookup picks a window rather than zero.
	for _, width := range []time.Duration{0, time.Minute, 7 * time.Minute, 2 * time.Hour} {
		if got := s.BurnRate(width); got < 2-1e-9 || got > 2+1e-9 {
			t.Fatalf("BurnRate(%s) = %g, want 2", width, got)
		}
	}
}

func TestDurLabel(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want string
	}{
		{time.Minute, "1m"},
		{5 * time.Minute, "5m"},
		{time.Hour, "1h"},
		{90 * time.Second, "90s"},
		{1500 * time.Millisecond, "1.5s"},
	}
	for _, c := range cases {
		if got := durLabel(c.in); got != c.want {
			t.Errorf("durLabel(%s) = %q, want %q", c.in, got, c.want)
		}
	}
}
