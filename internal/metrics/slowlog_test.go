package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(8, 10*time.Millisecond)
	l.Maybe("get", []byte("fast"), 9*time.Millisecond, 0, "")
	l.Maybe("put", []byte("edge"), 10*time.Millisecond, 0, "")
	l.Maybe("put", []byte("slow"), 25*time.Millisecond, 7, "timeout")
	if got := l.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2 (at-or-above threshold)", got)
	}
	entries := l.Entries(0)
	if len(entries) != 2 || entries[0].Key != "edge" || entries[1].Key != "slow" {
		t.Fatalf("Entries = %+v", entries)
	}
	if entries[1].TraceID != 7 || entries[1].Err != "timeout" {
		t.Fatalf("trace/err not retained: %+v", entries[1])
	}
}

func TestSlowLogDisabled(t *testing.T) {
	l := NewSlowLog(8, 0)
	l.Maybe("put", []byte("k"), time.Hour, 0, "")
	if l.Count() != 0 {
		t.Fatal("disabled log recorded an entry")
	}
	l.SetThreshold(time.Millisecond)
	l.Maybe("put", []byte("k"), time.Hour, 0, "")
	if l.Count() != 1 {
		t.Fatal("SetThreshold did not enable recording")
	}
	l.SetThreshold(0)
	l.Maybe("put", []byte("k"), time.Hour, 0, "")
	if l.Count() != 1 {
		t.Fatal("SetThreshold(0) did not disable recording")
	}
}

func TestSlowLogRingWrap(t *testing.T) {
	l := NewSlowLog(4, time.Millisecond)
	for i := 0; i < 10; i++ {
		l.Maybe("put", []byte(fmt.Sprintf("k-%d", i)), time.Second, 0, "")
	}
	if got := l.Count(); got != 10 {
		t.Fatalf("Count = %d, want 10 (total, not retained)", got)
	}
	entries := l.Entries(0)
	if len(entries) != 4 {
		t.Fatalf("retained %d entries, want 4", len(entries))
	}
	// Oldest first: the ring kept the newest four, k-6..k-9.
	for i, e := range entries {
		if want := fmt.Sprintf("k-%d", 6+i); e.Key != want {
			t.Fatalf("entry %d key = %q, want %q", i, e.Key, want)
		}
	}
	// Entries(n) trims to the newest n, still oldest first.
	newest := l.Entries(2)
	if len(newest) != 2 || newest[0].Key != "k-8" || newest[1].Key != "k-9" {
		t.Fatalf("Entries(2) = %+v", newest)
	}
}

func TestSlowLogKeyTruncation(t *testing.T) {
	l := NewSlowLog(2, time.Millisecond)
	long := bytes.Repeat([]byte("x"), 1000)
	l.Maybe("put", long, time.Second, 0, "")
	if got := len(l.Entries(0)[0].Key); got != 128 {
		t.Fatalf("retained key is %d bytes, want 128", got)
	}
}

func TestSlowLogNil(t *testing.T) {
	var l *SlowLog
	l.Maybe("put", []byte("k"), time.Hour, 0, "")
	l.SetThreshold(time.Second)
	if l.Count() != 0 || l.Entries(0) != nil || l.Threshold() != 0 {
		t.Fatal("nil SlowLog should be inert")
	}
	var sb strings.Builder
	if _, err := l.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestSlowLogJSONAndText(t *testing.T) {
	l := NewSlowLog(4, time.Millisecond)
	l.Maybe("put", []byte("jk"), 5*time.Millisecond, 0xabc, "boom")
	raw, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	var entries []SlowEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Op != "put" || entries[0].TraceID != 0xabc {
		t.Fatalf("round-tripped entries = %+v", entries)
	}
	var sb strings.Builder
	if _, err := l.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"put", "jk", "boom"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("text dump missing %q:\n%s", want, sb.String())
		}
	}
}

// TestSlowLogConcurrent hammers the ring from many goroutines; run
// under -race this guards the lock discipline.
func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(16, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Maybe("put", []byte(fmt.Sprintf("c-%d-%d", g, i)), time.Second, uint64(i), "")
				if i%16 == 0 {
					l.Entries(4)
					l.Count()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := l.Count(); got != 8*200 {
		t.Fatalf("Count = %d, want %d", got, 8*200)
	}
	if got := len(l.Entries(0)); got != 16 {
		t.Fatalf("retained %d, want 16", got)
	}
}
