package metrics

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTracerSpanBasics(t *testing.T) {
	tr := NewTracer(16)
	end := tr.Span("gc.cycle")
	end(nil)
	end2 := tr.Span("aof.rotate")
	end2(errors.New("boom"))

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("Spans() len = %d, want 2", len(spans))
	}
	if spans[0].Name != "gc.cycle" || spans[0].Err != "" || spans[0].Dur < 0 {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[1].Name != "aof.rotate" || spans[1].Err != "boom" {
		t.Fatalf("span 1 = %+v", spans[1])
	}
	if tr.Count() != 2 {
		t.Fatalf("Count() = %d, want 2", tr.Count())
	}
	lat := tr.Latencies()
	if lat["gc.cycle"].Count != 1 || lat["aof.rotate"].Count != 1 {
		t.Fatalf("Latencies() = %+v", lat)
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Span(fmt.Sprintf("s%d", i))(nil)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("Spans() len = %d, want 4", len(spans))
	}
	// The ring retains the newest 4 in chronological order.
	for i, want := range []string{"s6", "s7", "s8", "s9"} {
		if spans[i].Name != want {
			t.Fatalf("span %d = %q, want %q (all: %+v)", i, spans[i].Name, want, spans)
		}
	}
	if tr.Count() != 10 {
		t.Fatalf("Count() = %d, want 10", tr.Count())
	}
	// Latency histograms survive ring eviction.
	if lat := tr.Latencies(); lat["s0"].Count != 1 {
		t.Fatalf("evicted span lost its latency record: %+v", lat)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				end := tr.Span("hot")
				end(nil)
				if i%50 == 0 {
					tr.Spans()
					tr.Latencies()
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Count() != 1600 {
		t.Fatalf("Count() = %d, want 1600", tr.Count())
	}
	if got := tr.Latencies()["hot"].Count; got != 1600 {
		t.Fatalf("latency count = %d, want 1600", got)
	}
	if len(tr.Spans()) != 64 {
		t.Fatalf("ring should be full at 64, got %d", len(tr.Spans()))
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	end := tr.Span("x")
	end(nil) // must not panic
	if tr.Count() != 0 || tr.Spans() != nil || tr.Latencies() != nil {
		t.Fatal("nil tracer should report empty state")
	}
}

func TestTracerWriteTo(t *testing.T) {
	tr := NewTracer(8)
	tr.Span("recovery.scan")(nil)
	tr.Span("gc.cycle")(errors.New("nope"))
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"span gc.cycle count=1", "span recovery.scan count=1", "err=nope"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteTo output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrySpanDelegation(t *testing.T) {
	r := NewRegistry()
	r.Span("checkpoint.write")(nil)
	if r.Tracer().Count() != 1 {
		t.Fatalf("registry tracer count = %d, want 1", r.Tracer().Count())
	}
}
