package metrics

import (
	"math"
	runtimemetrics "runtime/metrics"
	"sync"
	"time"
)

// Default RuntimeSampler shape: one reading per second, five minutes of
// retained history. One sample is a handful of runtime/metrics reads —
// cheap enough to leave on in production, which is the whole point of
// continuous profiling.
const (
	defaultRuntimeInterval = time.Second
	defaultRuntimeCapacity = 300
)

// Preferred runtime/metrics keys, with fallbacks for toolchains that
// predate a rename. Resolved once against metrics.All() at first use so
// a missing key degrades to a zero field instead of a panic.
var runtimeKeyCandidates = map[string][]string{
	"heapLive":   {"/memory/classes/heap/objects:bytes"},
	"heapGoal":   {"/gc/heap/goal:bytes"},
	"stacks":     {"/memory/classes/heap/stacks:bytes"},
	"mapped":     {"/memory/classes/total:bytes"},
	"allocBytes": {"/gc/heap/allocs:bytes"},
	"allocObjs":  {"/gc/heap/allocs:objects"},
	"goroutines": {"/sched/goroutines:goroutines"},
	"gcCycles":   {"/gc/cycles/total:gc-cycles"},
	"gcPauses":   {"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"},
	"schedLat":   {"/sched/latencies:seconds"},
	"gcCPU":      {"/cpu/classes/gc/total:cpu-seconds"},
	"totalCPU":   {"/cpu/classes/total:cpu-seconds"},
}

// resolveRuntimeKeys intersects the candidates with what this
// toolchain's runtime actually exports.
var resolveRuntimeKeys = sync.OnceValue(func() map[string]string {
	have := make(map[string]bool)
	for _, d := range runtimemetrics.All() {
		have[d.Name] = true
	}
	out := make(map[string]string, len(runtimeKeyCandidates))
	for field, candidates := range runtimeKeyCandidates {
		for _, name := range candidates {
			if have[name] {
				out[field] = name
				break
			}
		}
	}
	return out
})

// RuntimeSample is one reading of the Go runtime's own telemetry: where
// the heap stands, what the collector is costing, and how contended the
// scheduler is. Distribution fields (GC pause p99, scheduling-latency
// p99) are computed over the *delta* since the previous sample, so they
// describe the last interval rather than the whole process lifetime.
type RuntimeSample struct {
	TS                time.Time `json:"ts"`
	HeapLiveBytes     uint64    `json:"heap_live_bytes"`
	HeapGoalBytes     uint64    `json:"heap_goal_bytes"`
	StackBytes        uint64    `json:"stack_bytes"`
	RuntimeTotalBytes uint64    `json:"runtime_total_bytes"` // all memory mapped by the Go runtime
	TotalAllocBytes   uint64    `json:"total_alloc_bytes"`   // cumulative since process start
	TotalAllocObjects uint64    `json:"total_alloc_objects"` // cumulative since process start
	Goroutines        int64     `json:"goroutines"`
	GCCycles          uint64    `json:"gc_cycles"`
	GCPauseP99Us      float64   `json:"gc_pause_p99_us"`  // over pauses since the previous sample
	GCCPUFraction     float64   `json:"gc_cpu_fraction"`  // over CPU spent since the previous sample
	SchedLatP99Us     float64   `json:"sched_lat_p99_us"` // over latencies since the previous sample
}

// RuntimeSamplerConfig shapes a RuntimeSampler.
type RuntimeSamplerConfig struct {
	// Interval is the sampling cadence (default 1 s). On-demand reads
	// (gauges, SampleNow) sharper than the interval reuse the previous
	// sample, so a Prometheus scrape touching ten runtime gauges costs
	// one runtime/metrics read, not ten.
	Interval time.Duration
	// Capacity bounds the retained sample ring (default 300).
	Capacity int
	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
}

// RuntimeSampler continuously reads runtime/metrics into a bounded ring
// of RuntimeSample readings. Start launches a background ticker;
// without Start the sampler still works pull-style — every gauge read
// or SampleNow call refreshes the reading when it is older than the
// interval. All methods are safe for concurrent use and no-ops on a nil
// receiver, matching the rest of the metrics package.
type RuntimeSampler struct {
	interval time.Duration
	now      func() time.Time

	mu        sync.Mutex
	buf       []runtimemetrics.Sample
	bufIdx    map[string]int // logical field -> index into buf
	prevPause []uint64       // previous cumulative GC pause bucket counts
	prevSched []uint64       // previous cumulative sched latency bucket counts
	prevGCCPU float64
	prevCPU   float64
	ring      []RuntimeSample
	next      int
	limit     int
	count     int64
	last      RuntimeSample

	stop     chan struct{}
	done     chan struct{}
	startOne sync.Once
	closeOne sync.Once
}

// NewRuntimeSampler builds a sampler for cfg, filling defaults for zero
// fields. The first sample is taken eagerly so Last is never zero on a
// live sampler.
func NewRuntimeSampler(cfg RuntimeSamplerConfig) *RuntimeSampler {
	if cfg.Interval <= 0 {
		cfg.Interval = defaultRuntimeInterval
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = defaultRuntimeCapacity
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &RuntimeSampler{
		interval: cfg.Interval,
		now:      cfg.Now,
		limit:    cfg.Capacity,
		bufIdx:   make(map[string]int),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	keys := resolveRuntimeKeys()
	for field, name := range keys {
		s.bufIdx[field] = len(s.buf)
		s.buf = append(s.buf, runtimemetrics.Sample{Name: name})
	}
	s.SampleNow()
	return s
}

// Start launches the periodic sampling goroutine. Safe to call once;
// further calls are no-ops.
func (s *RuntimeSampler) Start() {
	if s == nil {
		return
	}
	s.startOne.Do(func() {
		go s.loop()
	})
}

func (s *RuntimeSampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.SampleNow()
		case <-s.stop:
			return
		}
	}
}

// Close stops the sampling goroutine (if started). Safe to call more
// than once, and after Close the sampler still answers pull-style.
func (s *RuntimeSampler) Close() error {
	if s == nil {
		return nil
	}
	s.closeOne.Do(func() {
		close(s.stop)
		s.startOne.Do(func() { close(s.done) }) // never started: unblock the wait
		<-s.done
	})
	return nil
}

// SampleNow takes one reading immediately, appends it to the ring, and
// returns it. Safe for concurrent use with the ticker.
func (s *RuntimeSampler) SampleNow() RuntimeSample {
	if s == nil {
		return RuntimeSample{}
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	runtimemetrics.Read(s.buf)
	sample := RuntimeSample{
		TS:                now,
		HeapLiveBytes:     s.uint64Field("heapLive"),
		HeapGoalBytes:     s.uint64Field("heapGoal"),
		StackBytes:        s.uint64Field("stacks"),
		RuntimeTotalBytes: s.uint64Field("mapped"),
		TotalAllocBytes:   s.uint64Field("allocBytes"),
		TotalAllocObjects: s.uint64Field("allocObjs"),
		Goroutines:        int64(s.uint64Field("goroutines")),
		GCCycles:          s.uint64Field("gcCycles"),
	}
	if h := s.histField("gcPauses"); h != nil {
		sample.GCPauseP99Us = histDeltaQuantile(h, s.prevPause, 0.99) * 1e6
		s.prevPause = copyCounts(s.prevPause, h.Counts)
	}
	if h := s.histField("schedLat"); h != nil {
		sample.SchedLatP99Us = histDeltaQuantile(h, s.prevSched, 0.99) * 1e6
		s.prevSched = copyCounts(s.prevSched, h.Counts)
	}
	gcCPU, okGC := s.float64Field("gcCPU")
	totalCPU, okTotal := s.float64Field("totalCPU")
	if okGC && okTotal {
		dGC, dTotal := gcCPU-s.prevGCCPU, totalCPU-s.prevCPU
		if dTotal > 0 {
			frac := dGC / dTotal
			sample.GCCPUFraction = math.Max(0, math.Min(1, frac))
		}
		s.prevGCCPU, s.prevCPU = gcCPU, totalCPU
	}
	if len(s.ring) < s.limit {
		s.ring = append(s.ring, sample)
	} else {
		s.ring[s.next] = sample
		s.next = (s.next + 1) % s.limit
	}
	s.count++
	s.last = sample
	return sample
}

// refresh takes a fresh sample when the last one is older than the
// interval, so pull-style consumers (gauges, the recorder) stay current
// without a background goroutine.
func (s *RuntimeSampler) refresh() RuntimeSample {
	if s == nil {
		return RuntimeSample{}
	}
	s.mu.Lock()
	last, stale := s.last, s.now().Sub(s.last.TS) >= s.interval
	s.mu.Unlock()
	if stale {
		return s.SampleNow()
	}
	return last
}

// Last returns the most recent sample (zero on nil or before any
// sample), refreshing first when the reading has gone stale.
func (s *RuntimeSampler) Last() RuntimeSample {
	if s == nil {
		return RuntimeSample{}
	}
	return s.refresh()
}

// Recent returns up to n retained samples, oldest first (all retained
// when n <= 0).
func (s *RuntimeSampler) Recent(n int) []RuntimeSample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := append(append([]RuntimeSample(nil), s.ring[s.next:]...), s.ring[:s.next]...)
	s.mu.Unlock()
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Count returns how many samples were ever taken (0 on nil).
func (s *RuntimeSampler) Count() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Register exposes the sampler on a registry as computed gauges under
// the runtime.* prefix, so the Prometheus exposition, JSON snapshots,
// OpMetrics and `qindbctl stats -watch` all see the Go runtime without
// extra plumbing. Each gauge read refreshes the sample when stale; a
// scrape touching every gauge still costs at most one runtime read.
// Safe on a nil receiver or registry.
func (s *RuntimeSampler) Register(reg *Registry) {
	if s == nil || reg == nil {
		return
	}
	for _, g := range []struct {
		name string
		fn   func(RuntimeSample) float64
	}{
		{"runtime.heap.live_bytes", func(r RuntimeSample) float64 { return float64(r.HeapLiveBytes) }},
		{"runtime.heap.goal_bytes", func(r RuntimeSample) float64 { return float64(r.HeapGoalBytes) }},
		{"runtime.mem.stack_bytes", func(r RuntimeSample) float64 { return float64(r.StackBytes) }},
		{"runtime.mem.total_bytes", func(r RuntimeSample) float64 { return float64(r.RuntimeTotalBytes) }},
		{"runtime.alloc.bytes_total", func(r RuntimeSample) float64 { return float64(r.TotalAllocBytes) }},
		{"runtime.alloc.objects_total", func(r RuntimeSample) float64 { return float64(r.TotalAllocObjects) }},
		{"runtime.goroutines", func(r RuntimeSample) float64 { return float64(r.Goroutines) }},
		{"runtime.gc.cycles", func(r RuntimeSample) float64 { return float64(r.GCCycles) }},
		{"runtime.gc.pause_p99_us", func(r RuntimeSample) float64 { return r.GCPauseP99Us }},
		{"runtime.gc.cpu_fraction", func(r RuntimeSample) float64 { return r.GCCPUFraction }},
		{"runtime.sched.latency_p99_us", func(r RuntimeSample) float64 { return r.SchedLatP99Us }},
	} {
		fn := g.fn
		reg.GaugeFunc(g.name, func() float64 { return fn(s.refresh()) })
	}
}

// uint64Field reads one resolved uint64 metric from the sample buffer
// (0 when the key is unavailable). Runs with s.mu held after Read.
func (s *RuntimeSampler) uint64Field(field string) uint64 {
	i, ok := s.bufIdx[field]
	if !ok || s.buf[i].Value.Kind() != runtimemetrics.KindUint64 {
		return 0
	}
	return s.buf[i].Value.Uint64()
}

// float64Field reads one resolved float64 metric from the sample
// buffer. Runs with s.mu held after Read.
func (s *RuntimeSampler) float64Field(field string) (float64, bool) {
	i, ok := s.bufIdx[field]
	if !ok || s.buf[i].Value.Kind() != runtimemetrics.KindFloat64 {
		return 0, false
	}
	return s.buf[i].Value.Float64(), true
}

// histField reads one resolved histogram metric from the sample buffer.
// Runs with s.mu held after Read.
func (s *RuntimeSampler) histField(field string) *runtimemetrics.Float64Histogram {
	i, ok := s.bufIdx[field]
	if !ok || s.buf[i].Value.Kind() != runtimemetrics.KindFloat64Histogram {
		return nil
	}
	return s.buf[i].Value.Float64Histogram()
}

// histDeltaQuantile computes the q-quantile of a runtime histogram over
// the counts accumulated since prev (prev nil means since process
// start). Runtime histograms are cumulative, so subtracting the
// previous reading's bucket counts yields the distribution of just the
// last interval. Returns the matched bucket's upper boundary (the
// conservative read for a tail quantile), or 0 when the interval saw no
// events.
func histDeltaQuantile(cur *runtimemetrics.Float64Histogram, prev []uint64, q float64) float64 {
	if cur == nil || len(cur.Counts) == 0 {
		return 0
	}
	deltas := make([]uint64, len(cur.Counts))
	var total uint64
	for i, c := range cur.Counts {
		d := c
		if i < len(prev) && prev[i] <= c {
			d = c - prev[i]
		} else if i < len(prev) {
			d = 0 // counter reset (cannot happen in practice); be safe
		}
		deltas[i] = d
		total += d
	}
	if total == 0 {
		return 0
	}
	target := uint64(float64(total) * q)
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i, d := range deltas {
		cum += d
		if cum > target {
			// Bucket i spans [Buckets[i], Buckets[i+1]).
			hi := cur.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return cur.Buckets[i]
			}
			return hi
		}
	}
	return cur.Buckets[len(cur.Buckets)-1]
}

// copyCounts reuses dst to snapshot src, growing it as needed.
func copyCounts(dst []uint64, src []uint64) []uint64 {
	if cap(dst) < len(src) {
		dst = make([]uint64, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}
