package testutil

import (
	"strings"
	"testing"
	"time"
)

// fakeTB records failures instead of failing, so the checker can be
// tested on goroutines that really do leak.
type fakeTB struct {
	cleanups []func()
	errors   []string
	logs     []string
}

func (f *fakeTB) Helper()                           {}
func (f *fakeTB) Cleanup(fn func())                 { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) Errorf(format string, args ...any) { f.errors = append(f.errors, format) }
func (f *fakeTB) Logf(format string, args ...any)   { f.logs = append(f.logs, format) }
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestCheckGoroutinesClean(t *testing.T) {
	fake := &fakeTB{}
	CheckGoroutines(fake, Deadline(200*time.Millisecond))

	// A goroutine that finishes before test end is not a leak.
	done := make(chan struct{})
	go func() { close(done) }()
	<-done

	fake.runCleanups()
	if len(fake.errors) != 0 {
		t.Fatalf("clean test flagged as leaking: %v", fake.errors)
	}
}

func TestCheckGoroutinesWaitsForStragglers(t *testing.T) {
	fake := &fakeTB{}
	CheckGoroutines(fake, Deadline(2*time.Second))

	// Still running when cleanup starts, exits shortly after: the
	// retry loop must absorb it.
	release := make(chan struct{})
	go func() { <-release }()
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()

	fake.runCleanups()
	if len(fake.errors) != 0 {
		t.Fatalf("straggler within deadline flagged as leak: %v", fake.errors)
	}
}

func TestCheckGoroutinesCatchesLeak(t *testing.T) {
	fake := &fakeTB{}
	CheckGoroutines(fake, Deadline(100*time.Millisecond))

	stop := make(chan struct{})
	defer close(stop)
	go func() { <-stop }() // outlives the "test"

	fake.runCleanups()
	if len(fake.errors) == 0 {
		t.Fatal("leaked goroutine not reported")
	}
	if !strings.Contains(fake.errors[0], "leaked") {
		t.Fatalf("unexpected error format: %q", fake.errors[0])
	}
}

func TestCheckGoroutinesAllowlist(t *testing.T) {
	fake := &fakeTB{}
	CheckGoroutines(fake, Deadline(100*time.Millisecond), Allow("testutil.lifetimeWorker"))

	stop := make(chan struct{})
	defer close(stop)
	go lifetimeWorker(stop)

	fake.runCleanups()
	if len(fake.errors) != 0 {
		t.Fatalf("allowlisted goroutine flagged: %v", fake.errors)
	}
}

func lifetimeWorker(stop chan struct{}) { <-stop }
