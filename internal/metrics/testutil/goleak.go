// Package testutil holds test-only helpers shared across the repo's
// suites. The centerpiece is CheckGoroutines, a hand-rolled goroutine
// leak detector: snapshot the goroutines alive when a test starts,
// and fail it if new ones are still running when it ends. The
// goroexit analyzer proves every `go` statement has a termination
// path on paper; this harness proves the shutdown paths actually run.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// TB is the subset of testing.TB the checker needs; taking the
// interface keeps the package importable from non-test code paths and
// lets the checker test itself with a fake.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
	Logf(format string, args ...any)
}

// defaultAllow matches goroutines that are infrastructure, not leaks:
// the runtime's own workers and the test framework's.
var defaultAllow = []string{
	"testing.(*T).Run",        // the test runner itself
	"testing.(*M).",           // test main
	"testing.runTests",        // top-level driver
	"runtime.goexit",          // exited but not yet reaped
	"runtime/pprof",           // profile writers
	"runtime.ReadTrace",       // execution tracer drain
	"signal.loop",             // os/signal watcher, started once per process
	"runtime.ensureSigM",      // its starter
	"net/http.(*persistConn)", // keep-alive conns owned by the default transport
	"net/http.(*Transport).dialConnFor",
	"internal/poll.runtime_pollWait", // netpoll parkers unwinding
}

// Option adjusts one CheckGoroutines call.
type Option func(*config)

type config struct {
	allow    []string
	deadline time.Duration
}

// Allow ignores goroutines whose stack contains any of the given
// substrings — for components that are process-lifetime by design
// (the same ones a //lint:ignore goroexit directive documents).
func Allow(substrings ...string) Option {
	return func(c *config) { c.allow = append(c.allow, substrings...) }
}

// Deadline bounds how long the checker waits for stragglers to
// unwind before declaring them leaked (default 2s).
func Deadline(d time.Duration) Option {
	return func(c *config) { c.deadline = d }
}

// CheckGoroutines snapshots the current goroutines and registers a
// cleanup that fails the test if goroutines not in the snapshot (and
// not allowlisted) are still alive at test end. Goroutines need time
// to unwind after a Close/Stop call returns, so the cleanup retries
// until the deadline before reporting.
//
// Call it first thing in the test:
//
//	func TestServe(t *testing.T) {
//		testutil.CheckGoroutines(t)
//		...
//	}
func CheckGoroutines(t TB, opts ...Option) {
	t.Helper()
	cfg := &config{deadline: 2 * time.Second}
	for _, o := range opts {
		o(cfg)
	}
	cfg.allow = append(cfg.allow, defaultAllow...)

	before := goroutineSet(cfg.allow)
	t.Cleanup(func() {
		var leaked []string
		for start := time.Now(); ; {
			leaked = leaked[:0]
			for id, stack := range goroutineSet(cfg.allow) {
				if _, ok := before[id]; !ok {
					leaked = append(leaked, stack)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Since(start) > cfg.deadline {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		sort.Strings(leaked)
		t.Errorf("%d goroutine(s) leaked by this test:\n%s",
			len(leaked), strings.Join(leaked, "\n---\n"))
	})
}

// goroutineSet captures the stacks of all live goroutines, keyed by
// goroutine id, with allowlisted and checker-internal ones removed.
func goroutineSet(allow []string) map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		header, _, _ := strings.Cut(g, "\n")
		if !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		id := strings.Fields(header)[1]
		if strings.Contains(g, "testutil.goroutineSet") {
			continue // the checker's own goroutine
		}
		skip := false
		for _, a := range allow {
			if strings.Contains(g, a) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		out[id] = fmt.Sprintf("goroutine %s: %s", id, firstFrames(g, 4))
	}
	return out
}

// firstFrames renders the top frames of one goroutine dump compactly.
func firstFrames(g string, n int) string {
	lines := strings.Split(g, "\n")
	if len(lines) > 2*n+1 {
		lines = append(lines[:2*n+1], "\t...")
	}
	return strings.Join(lines, "\n")
}
