package metrics

import (
	"bytes"
	"compress/gzip"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// profileHandler serves a real heap profile — the shape /debug/profile
// produces — so the capture path is tested against genuine pprof bytes.
func profileHandler(t *testing.T) http.HandlerFunc {
	t.Helper()
	return func(w http.ResponseWriter, r *http.Request) {
		if got := r.URL.Query().Get("type"); got != "heap" {
			http.Error(w, "unexpected type "+got, http.StatusBadRequest)
			return
		}
		if err := pprof.Lookup("heap").WriteTo(w, 0); err != nil {
			t.Errorf("writing heap profile: %v", err)
		}
	}
}

func TestProfileCaptureTo(t *testing.T) {
	a := httptest.NewServer(profileHandler(t))
	defer a.Close()
	b := httptest.NewServer(profileHandler(t))
	defer b.Close()

	dir := t.TempDir()
	pc := &ProfileCapture{
		Endpoints: []string{a.URL, strings.TrimPrefix(b.URL, "http://")}, // mixed addressing
		Type:      "heap",
	}
	results, err := pc.CaptureTo(context.Background(), filepath.Join(dir, "capture"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Endpoint, r.Err)
		}
		if !strings.HasSuffix(r.Path, ".heap.pprof") {
			t.Errorf("path %q missing .heap.pprof suffix", r.Path)
		}
		body, err := os.ReadFile(r.Path)
		if err != nil {
			t.Fatal(err)
		}
		if err := validatePprof(body); err != nil {
			t.Errorf("%s: %v", r.Path, err)
		}
		if int64(len(body)) != r.Bytes {
			t.Errorf("reported %d bytes, file has %d", r.Bytes, len(body))
		}
	}
}

func TestProfileCapturePartialFailure(t *testing.T) {
	up := httptest.NewServer(profileHandler(t))
	defer up.Close()

	pc := &ProfileCapture{
		Endpoints: []string{up.URL, "127.0.0.1:1"}, // second node unreachable
		Type:      "heap",
		Client:    &http.Client{Timeout: 2 * time.Second},
	}
	results, err := pc.CaptureTo(context.Background(), t.TempDir())
	if err != nil {
		t.Fatalf("partial capture should succeed, got %v", err)
	}
	if results[0].Err != "" || results[1].Err == "" {
		t.Fatalf("want node 0 ok + node 1 failed, got %+v", results)
	}
}

func TestProfileCaptureAllFail(t *testing.T) {
	pc := &ProfileCapture{Endpoints: []string{"127.0.0.1:1"}, Client: &http.Client{Timeout: time.Second}}
	if _, err := pc.CaptureTo(context.Background(), t.TempDir()); err == nil {
		t.Fatal("want error when every node fails")
	}
}

func TestProfileCaptureRejectsNonPprof(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("<html>not a profile</html>"))
	}))
	defer srv.Close()
	pc := &ProfileCapture{Endpoints: []string{srv.URL}}
	results, err := pc.CaptureTo(context.Background(), t.TempDir())
	if err == nil {
		t.Fatal("want error for non-pprof body")
	}
	if results[0].Err == "" || !strings.Contains(results[0].Err, "gzip") {
		t.Fatalf("want gzip validation error, got %+v", results[0])
	}
}

func TestValidatePprof(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte("payload"))
	zw.Close()
	if err := validatePprof(buf.Bytes()); err != nil {
		t.Errorf("valid gzip rejected: %v", err)
	}
	if err := validatePprof([]byte("plain")); err == nil {
		t.Error("plain text accepted")
	}
	var empty bytes.Buffer
	zw = gzip.NewWriter(&empty)
	zw.Close()
	if err := validatePprof(empty.Bytes()); err == nil {
		t.Error("empty payload accepted")
	}
}

func TestSanitizeEndpoint(t *testing.T) {
	for in, want := range map[string]string{
		"http://10.0.0.1:9100":  "10.0.0.1_9100",
		"node-a.example.com:80": "node-a.example.com_80",
		"https://x/y":           "x_y",
	} {
		if got := sanitizeEndpoint(in); got != want {
			t.Errorf("sanitizeEndpoint(%q) = %q, want %q", in, got, want)
		}
	}
}
