package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// AttribTable accumulates sampled per-operation resource costs. One
// table sits behind a server Backend; every Nth request (SampleEvery)
// is measured with BeginResourceSample and its delta charged to the
// opcode that incurred it. Charge is lock-free on the steady path
// (atomic adds on an existing cell); the write lock is only taken the
// first time an op name appears.
type AttribTable struct {
	every int64

	mu    sync.RWMutex
	cells map[string]*attribCell
}

type attribCell struct {
	samples   atomic.Int64
	allocB    atomic.Int64
	allocObjs atomic.Int64
	cpuNs     atomic.Int64
	wallNs    atomic.Int64
}

// AttribEntry is one operation's averaged resource bill.
type AttribEntry struct {
	Op              string  `json:"op"`
	Samples         int64   `json:"samples"`
	AllocBytesPerOp float64 `json:"alloc_bytes_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	CPUUsPerOp      float64 `json:"cpu_us_per_op"`
	WallUsPerOp     float64 `json:"wall_us_per_op"`
}

// AttribSnapshot is a point-in-time view of the table, sorted by
// AllocBytesPerOp descending — the read order for a memory hunt.
type AttribSnapshot struct {
	SampleEvery int64         `json:"sample_every"`
	Entries     []AttribEntry `json:"entries"`
}

// NewAttribTable builds a table sampling one request in sampleEvery
// (values < 1 clamp to 1 = measure everything).
func NewAttribTable(sampleEvery int) *AttribTable {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &AttribTable{
		every: int64(sampleEvery),
		cells: make(map[string]*attribCell),
	}
}

// SampleEvery returns the sampling stride (0 on a nil table, meaning
// "never sample").
func (t *AttribTable) SampleEvery() int64 {
	if t == nil {
		return 0
	}
	return t.every
}

// Charge bills one measured request's delta to op.
func (t *AttribTable) Charge(op string, d ResourceDelta) {
	if t == nil || op == "" {
		return
	}
	c := t.cell(op)
	c.samples.Add(1)
	c.allocB.Add(d.AllocBytes)
	c.allocObjs.Add(d.AllocObjects)
	c.cpuNs.Add(int64(d.CPU))
	c.wallNs.Add(int64(d.Wall))
}

func (t *AttribTable) cell(op string) *attribCell {
	t.mu.RLock()
	c := t.cells[op]
	t.mu.RUnlock()
	if c != nil {
		return c
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c = t.cells[op]; c == nil {
		c = &attribCell{}
		t.cells[op] = c
	}
	return c
}

// Snapshot returns the current per-op averages sorted by bytes/op
// descending (zero snapshot on nil).
func (t *AttribTable) Snapshot() AttribSnapshot {
	if t == nil {
		return AttribSnapshot{}
	}
	t.mu.RLock()
	entries := make([]AttribEntry, 0, len(t.cells))
	for op, c := range t.cells {
		n := c.samples.Load()
		if n == 0 {
			continue
		}
		fn := float64(n)
		entries = append(entries, AttribEntry{
			Op:              op,
			Samples:         n,
			AllocBytesPerOp: float64(c.allocB.Load()) / fn,
			AllocsPerOp:     float64(c.allocObjs.Load()) / fn,
			CPUUsPerOp:      float64(c.cpuNs.Load()) / fn / float64(time.Microsecond),
			WallUsPerOp:     float64(c.wallNs.Load()) / fn / float64(time.Microsecond),
		})
	}
	t.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].AllocBytesPerOp != entries[j].AllocBytesPerOp {
			return entries[i].AllocBytesPerOp > entries[j].AllocBytesPerOp
		}
		return entries[i].Op < entries[j].Op
	})
	return AttribSnapshot{SampleEvery: t.every, Entries: entries}
}

// Reset clears all accumulated cells (keeps the stride).
func (t *AttribTable) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cells = make(map[string]*attribCell)
	t.mu.Unlock()
}
