package metrics

import (
	"context"
	"os"
	"sync/atomic"
	"time"
)

// SpanContext identifies one span within one distributed trace. It is
// what crosses process boundaries: the wire protocol carries the pair
// (TraceID, SpanID) so a remote server can parent its own spans under
// the caller's. The zero value means "no trace".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a real trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

// ctxKey is the context.Context key for the active span.
type ctxKey struct{}

// ContextWithSpan returns a context carrying sc as the active span.
// An invalid sc returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanFromContext returns the active span, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok
}

// idState seeds span/trace ID generation: a per-process random-ish base
// (clock entropy mixed with the pid) plus an atomic counter, fed through
// a splitmix64 finalizer. IDs are unique within a process and collide
// across processes only with the usual birthday odds — fine for an
// operator debugging aid, and crucially allocation- and lock-free.
var idCounter atomic.Uint64

func init() {
	idCounter.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)
}

// NewSpanID returns a fresh span (or trace) identifier — for callers
// that assemble SpanRecords by hand and feed them to Tracer.RecordSpan,
// such as the network simulator's virtual-duration delivery spans.
func NewSpanID() uint64 { return newID() }

// newID returns a non-zero identifier.
func newID() uint64 {
	for {
		x := idCounter.Add(0x9E3779B97F4A7C15) // splitmix64 increment
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// StartSpan begins a span under ctx's active span — or, when ctx
// carries none, starts a NEW trace with this span as its root. The
// returned context carries the new span (propagate it into child calls
// and across the wire); the closer records the span with its trace
// lineage. On a nil tracer the context passes through unchanged and the
// closer is a no-op.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, func(err error)) {
	return t.startSpan(ctx, name, "", true)
}

// ContinueSpan is StartSpan restricted to existing traces: when ctx
// carries no active span it records nothing and returns ctx unchanged.
// Servers use it so untraced requests do not each mint a fresh trace.
func (t *Tracer) ContinueSpan(ctx context.Context, name string) (context.Context, func(err error)) {
	return t.startSpan(ctx, name, "", false)
}

// StartSpanNote is StartSpan with a free-form annotation stored on the
// record (an address, a byte count) — the timeline renders it verbatim.
func (t *Tracer) StartSpanNote(ctx context.Context, name, note string) (context.Context, func(err error)) {
	return t.startSpan(ctx, name, note, true)
}

// ContinueSpanNote is ContinueSpan with an annotation.
func (t *Tracer) ContinueSpanNote(ctx context.Context, name, note string) (context.Context, func(err error)) {
	return t.startSpan(ctx, name, note, false)
}

func (t *Tracer) startSpan(ctx context.Context, name, note string, root bool) (context.Context, func(err error)) {
	if t == nil {
		return ctx, noopEnd
	}
	parent, ok := SpanFromContext(ctx)
	if !ok && !root {
		return ctx, noopEnd
	}
	sc := SpanContext{TraceID: parent.TraceID, SpanID: newID()}
	if sc.TraceID == 0 {
		sc.TraceID = newID()
	}
	start := time.Now()
	return ContextWithSpan(ctx, sc), func(err error) {
		rec := SpanRecord{
			Name: name, Start: start, Dur: time.Since(start),
			TraceID: sc.TraceID, SpanID: sc.SpanID, ParentID: parent.SpanID,
			Note: note,
		}
		if err != nil {
			rec.Err = err.Error()
		}
		t.RecordSpan(rec)
	}
}

// StartSpan begins a span on the registry's tracer (see Tracer.StartSpan).
// Safe on a nil registry.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, func(err error)) {
	return r.Tracer().StartSpan(ctx, name)
}

// ContinueSpan continues an existing trace on the registry's tracer
// (see Tracer.ContinueSpan). Safe on a nil registry.
func (r *Registry) ContinueSpan(ctx context.Context, name string) (context.Context, func(err error)) {
	return r.Tracer().ContinueSpan(ctx, name)
}

// StartSpanNote is StartSpan with an annotation. Safe on a nil registry.
func (r *Registry) StartSpanNote(ctx context.Context, name, note string) (context.Context, func(err error)) {
	return r.Tracer().StartSpanNote(ctx, name, note)
}

// ContinueSpanNote is ContinueSpan with an annotation. Safe on a nil
// registry.
func (r *Registry) ContinueSpanNote(ctx context.Context, name, note string) (context.Context, func(err error)) {
	return r.Tracer().ContinueSpanNote(ctx, name, note)
}
