package metrics

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// ProfileCapture fetches windowed pprof profiles from every node's
// operator endpoint in parallel — the fleet twin of TraceCollector, but
// for /debug/profile instead of /debug/trace/export. One capture yields
// one .pprof file per reachable node, ready for `go tool pprof`.
type ProfileCapture struct {
	// Endpoints are operator HTTP addresses ("host:port" or full
	// http:// URLs), one per node.
	Endpoints []string
	// Type selects the profile: heap, allocs, cpu, goroutine
	// (default heap).
	Type string
	// Seconds is the delta window. For heap/allocs a positive window
	// captures growth over the window instead of the absolute profile;
	// for cpu it is the sampling duration (default 5).
	Seconds int
	// Client overrides the HTTP client. The default timeout scales with
	// Seconds so a long cpu window is not cut off mid-capture.
	Client *http.Client
}

// ProfileResult is one node's outcome: the written file or the error
// that kept it out of the capture.
type ProfileResult struct {
	Endpoint string `json:"endpoint"`
	Path     string `json:"path,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
	Err      string `json:"err,omitempty"`
}

// gzipMagic opens every valid pprof file (they are gzipped protobuf).
var gzipMagic = []byte{0x1f, 0x8b}

// CaptureTo fetches one profile per endpoint in parallel and writes
// them under dir as <endpoint>.<type>.pprof (endpoint sanitized for the
// filesystem). It returns an error only when no node produced a valid
// profile — per-node failures ride in the result slice so a partial
// fleet still yields a partial capture.
func (c *ProfileCapture) CaptureTo(ctx context.Context, dir string) ([]ProfileResult, error) {
	typ := c.Type
	if typ == "" {
		typ = "heap"
	}
	seconds := c.Seconds
	if seconds <= 0 && typ == "cpu" {
		seconds = 5
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	client := c.Client
	if client == nil {
		client = &http.Client{Timeout: time.Duration(seconds+15) * time.Second}
	}
	results := make([]ProfileResult, len(c.Endpoints))
	var wg sync.WaitGroup
	for i, ep := range c.Endpoints {
		wg.Add(1)
		go func(i int, ep string) {
			defer wg.Done()
			results[i] = fetchNodeProfile(ctx, client, ep, typ, seconds, dir)
		}(i, ep)
	}
	wg.Wait()
	ok := false
	for _, r := range results {
		if r.Err == "" {
			ok = true
			break
		}
	}
	if !ok {
		var errs []error
		for _, r := range results {
			errs = append(errs, fmt.Errorf("%s: %s", r.Endpoint, r.Err))
		}
		return results, fmt.Errorf("metrics: profile capture %s: %w", typ, errors.Join(errs...))
	}
	return results, nil
}

// fetchNodeProfile GETs one node's /debug/profile and writes the
// validated body to dir.
func fetchNodeProfile(ctx context.Context, client *http.Client, endpoint, typ string, seconds int, dir string) ProfileResult {
	res := ProfileResult{Endpoint: endpoint}
	url := endpoint
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + fmt.Sprintf("/debug/profile?type=%s&seconds=%d", typ, seconds)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	resp, err := client.Do(req)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		res.Err = fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
		return res
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		res.Err = "reading profile: " + err.Error()
		return res
	}
	if err := validatePprof(body); err != nil {
		res.Err = err.Error()
		return res
	}
	path := filepath.Join(dir, sanitizeEndpoint(endpoint)+"."+typ+".pprof")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		res.Err = err.Error()
		return res
	}
	res.Path = path
	res.Bytes = int64(len(body))
	return res
}

// validatePprof checks the body is a non-empty gzipped payload — the
// shape every runtime/pprof profile has — so a capture never writes an
// HTML error page to disk as a .pprof file.
func validatePprof(body []byte) error {
	if len(body) < len(gzipMagic) || !bytes.Equal(body[:len(gzipMagic)], gzipMagic) {
		return errors.New("metrics: response is not a pprof profile (missing gzip header)")
	}
	zr, err := gzip.NewReader(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("metrics: invalid pprof gzip: %w", err)
	}
	defer zr.Close()
	n, err := io.Copy(io.Discard, zr)
	if err != nil {
		return fmt.Errorf("metrics: corrupt pprof payload: %w", err)
	}
	if n == 0 {
		return errors.New("metrics: empty pprof payload")
	}
	return nil
}

// sanitizeEndpoint maps an endpoint address to a filename-safe stem.
func sanitizeEndpoint(ep string) string {
	ep = strings.TrimPrefix(ep, "http://")
	ep = strings.TrimPrefix(ep, "https://")
	var sb strings.Builder
	for _, r := range ep {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-':
			sb.WriteRune(r)
		default:
			sb.WriteRune('_')
		}
	}
	return sb.String()
}
