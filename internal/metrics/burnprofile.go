package metrics

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"
)

// BurnProfilerConfig shapes a BurnProfiler.
type BurnProfilerConfig struct {
	// Events is the log watched for EventSLOBurn crossings.
	Events *EventLog
	// Dir receives the captured profiles.
	Dir string
	// Types are the profiles captured per burn (default heap).
	// Supported: heap, allocs, goroutine, cpu.
	Types []string
	// Seconds bounds the cpu capture window (default 5).
	Seconds int
	// Cooldown is the minimum gap between captures (default 10 m), so a
	// flapping SLO cannot turn the profiler into its own overload.
	Cooldown time.Duration
	// Logf, when non-nil, reports capture outcomes (e.g. log.Printf).
	Logf func(format string, args ...any)
	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
}

// BurnProfiler watches the event log and captures one bounded set of
// in-process profiles when the SLO starts burning — the "what was the
// process doing when it went bad" artifact, taken automatically at the
// moment it matters instead of minutes later by a paged operator.
type BurnProfiler struct {
	cfg    BurnProfilerConfig
	cancel context.CancelFunc

	mu       sync.Mutex
	lastCap  time.Time
	captures int64

	done     chan struct{}
	startOne sync.Once
	closeOne sync.Once
}

// NewBurnProfiler builds a profiler for cfg, filling defaults.
func NewBurnProfiler(cfg BurnProfilerConfig) *BurnProfiler {
	if len(cfg.Types) == 0 {
		cfg.Types = []string{"heap"}
	}
	if cfg.Seconds <= 0 {
		cfg.Seconds = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &BurnProfiler{cfg: cfg, done: make(chan struct{})}
}

// Start launches the watch goroutine. Safe to call once; further calls
// are no-ops. No-op when no event log is configured.
func (p *BurnProfiler) Start() {
	if p == nil || p.cfg.Events == nil {
		return
	}
	p.startOne.Do(func() {
		ctx, cancel := context.WithCancel(context.Background())
		p.cancel = cancel
		// Snapshot the cursor before launching, so an event emitted the
		// instant Start returns is never missed.
		go p.loop(ctx, p.cfg.Events.LastSeq())
	})
}

func (p *BurnProfiler) loop(ctx context.Context, since uint64) {
	defer close(p.done)
	for {
		evs := p.cfg.Events.Wait(ctx, since)
		if evs == nil { // ctx canceled
			return
		}
		burn := false
		for _, e := range evs {
			since = e.Seq
			if e.Type == EventSLOBurn {
				burn = true
			}
		}
		if burn {
			p.CaptureNow("slo.burn")
		}
	}
}

// CaptureNow captures the configured profile set immediately, subject
// to the cooldown. Returns the written paths (nil when skipped).
func (p *BurnProfiler) CaptureNow(reason string) []string {
	if p == nil {
		return nil
	}
	now := p.cfg.Now()
	p.mu.Lock()
	if !p.lastCap.IsZero() && now.Sub(p.lastCap) < p.cfg.Cooldown {
		p.mu.Unlock()
		return nil
	}
	p.lastCap = now
	p.captures++
	p.mu.Unlock()

	// File and profile I/O run outside the lock: a cpu capture blocks
	// for the full window.
	if err := os.MkdirAll(p.cfg.Dir, 0o755); err != nil {
		p.logf("burn profiler: %v", err)
		return nil
	}
	stamp := now.UTC().Format("20060102T150405")
	var paths []string
	for _, typ := range p.cfg.Types {
		path := filepath.Join(p.cfg.Dir, fmt.Sprintf("burn-%s-%s.pprof", stamp, typ))
		if err := captureProfile(typ, p.cfg.Seconds, path); err != nil {
			p.logf("burn profiler: %s: %v", typ, err)
			continue
		}
		paths = append(paths, path)
	}
	if len(paths) > 0 {
		p.cfg.Events.Emitf(EventProfileCapture, "", 0, "reason=%s types=%d dir=%s", reason, len(paths), p.cfg.Dir)
		p.logf("burn profiler: captured %d profile(s) to %s (reason=%s)", len(paths), p.cfg.Dir, reason)
	}
	return paths
}

// captureProfile writes one profile of typ to path.
func captureProfile(typ string, seconds int, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch typ {
	case "cpu":
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close() // the StartCPUProfile error is the one worth reporting
			os.Remove(path)
			return err
		}
		time.Sleep(time.Duration(seconds) * time.Second)
		pprof.StopCPUProfile()
	default:
		prof := pprof.Lookup(typ)
		if prof == nil {
			_ = f.Close() // the unknown-type error is the one worth reporting
			os.Remove(path)
			return fmt.Errorf("unknown profile %q", typ)
		}
		if err := prof.WriteTo(f, 0); err != nil {
			_ = f.Close() // the WriteTo error is the one worth reporting
			os.Remove(path)
			return err
		}
	}
	return f.Close()
}

// Captures returns how many capture rounds have fired (0 on nil).
func (p *BurnProfiler) Captures() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.captures
}

// Close stops the watch goroutine (if started). Safe to call more than
// once.
func (p *BurnProfiler) Close() error {
	if p == nil {
		return nil
	}
	p.closeOne.Do(func() {
		p.startOne.Do(func() { close(p.done) }) // never started: unblock the wait
		if p.cancel != nil {
			p.cancel()
		}
		<-p.done
	})
	return nil
}

func (p *BurnProfiler) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}
