//go:build linux

package metrics

import (
	"syscall"
	"unsafe"
)

// threadCPUSupported reports whether per-thread CPU accounting is
// available. On linux we read CLOCK_THREAD_CPUTIME_ID directly; the
// caller pins the goroutine to its OS thread around the measurement.
const threadCPUSupported = true

const clockThreadCPUTimeID = 3 // CLOCK_THREAD_CPUTIME_ID from <time.h>

// threadCPUNanos returns the calling OS thread's consumed CPU time in
// nanoseconds (user+system), or -1 when the clock read fails.
func threadCPUNanos() int64 {
	var ts syscall.Timespec
	_, _, errno := syscall.RawSyscall(syscall.SYS_CLOCK_GETTIME,
		clockThreadCPUTimeID, uintptr(unsafe.Pointer(&ts)), 0)
	if errno != 0 {
		return -1
	}
	return ts.Sec*1e9 + ts.Nsec
}
