package metrics

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// exportServer serves /debug/trace/export for a canned span set, the
// way internal/ops does on a real node.
func exportServer(t *testing.T, node string, spans []SpanRecord) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/trace/export" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(TraceExport{Node: node, TraceID: r.URL.Query().Get("id"), Spans: spans})
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestTraceCollectorMerge(t *testing.T) {
	const id = uint64(0xabc123)
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	// Node A holds the client span; node B holds the server span whose
	// parent is A's span — the cross-process link the merge restores.
	a := exportServer(t, "node-a", []SpanRecord{
		{Name: "fleet.write.node", Start: t0, Dur: 2 * time.Millisecond, TraceID: id, SpanID: 1},
	})
	b := exportServer(t, "node-b", []SpanRecord{
		{Name: "server.batch", Start: t0.Add(time.Millisecond), Dur: time.Millisecond, TraceID: id, SpanID: 2, ParentID: 1},
	})

	local := NewTracer(8)
	local.RecordSpan(SpanRecord{Name: "fleet.publish", Start: t0.Add(-time.Millisecond), Dur: 4 * time.Millisecond, TraceID: id, SpanID: 3})

	c := &TraceCollector{
		Endpoints: []string{a.URL, b.URL},
		Local:     local,
		LocalNode: "router",
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	merged, err := c.Collect(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Spans) != 3 {
		t.Fatalf("merged %d spans, want 3: %+v", len(merged.Spans), merged.Spans)
	}
	if got := merged.NodeCount(); got != 3 {
		t.Fatalf("NodeCount = %d, want 3", got)
	}
	// Start-sorted: router publish, then A's write, then B's batch.
	if merged.Spans[0].Node != "router" || merged.Spans[1].Node != "node-a" || merged.Spans[2].Node != "node-b" {
		t.Fatalf("merge order wrong: %+v", merged.Spans)
	}

	var sb strings.Builder
	if _, err := merged.WriteTimeline(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "3 spans across 3 node(s)") {
		t.Fatalf("timeline header:\n%s", out)
	}
	// The server span nests under its cross-node parent: deeper indent.
	lineA := lineContaining(t, out, "fleet.write.node")
	lineB := lineContaining(t, out, "server.batch")
	if indentAfterNode(lineB) <= indentAfterNode(lineA) {
		t.Fatalf("server.batch should nest under fleet.write.node:\n%s", out)
	}
}

func TestTraceCollectorPartialFleet(t *testing.T) {
	const id = uint64(0x77)
	a := exportServer(t, "node-a", []SpanRecord{
		{Name: "server.get", Start: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC), TraceID: id, SpanID: 9},
	})
	c := &TraceCollector{Endpoints: []string{a.URL, "127.0.0.1:1"}} // second node down
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	merged, err := c.Collect(ctx, id)
	if err != nil {
		t.Fatalf("partial fleet must still merge: %v", err)
	}
	if len(merged.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(merged.Spans))
	}
	var downErr string
	for _, nt := range merged.Nodes {
		if nt.Endpoint == "127.0.0.1:1" {
			downErr = nt.Err
		}
	}
	if downErr == "" {
		t.Fatal("down node's error not reported")
	}
	var sb strings.Builder
	merged.WriteTimeline(&sb)
	if !strings.Contains(sb.String(), "# 127.0.0.1:1") {
		t.Fatalf("timeline must surface the unreachable node:\n%s", sb.String())
	}
}

func TestTraceCollectorAllDown(t *testing.T) {
	c := &TraceCollector{Endpoints: []string{"127.0.0.1:1"}}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Collect(ctx, 1); err == nil {
		t.Fatal("all nodes down must error")
	}
}

func TestTraceCollectorNoSpans(t *testing.T) {
	a := exportServer(t, "node-a", nil)
	c := &TraceCollector{Endpoints: []string{a.URL}}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Collect(ctx, 42); err == nil {
		t.Fatal("zero retained spans must error")
	}
}

func lineContaining(t *testing.T, out, substr string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, substr) {
			return line
		}
	}
	t.Fatalf("no line contains %q:\n%s", substr, out)
	return ""
}

// indentAfterNode measures the indentation between the [node] prefix
// and the span's +offset column.
func indentAfterNode(line string) int {
	rest := line[strings.Index(line, "]")+1:]
	return len(rest) - len(strings.TrimLeft(rest, " "))
}
