package metrics

import (
	"strings"
	"testing"
)

func TestSanitizePromName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"qindb.put.latency_us", "qindb_put_latency_us"},
		{"server.req.batch", "server_req_batch"},
		{"aof-rotate.count", "aof_rotate_count"},
		{"already_legal:name", "already_legal:name"},
		{"9lives", "_9lives"},
		{"", "_"},
		{"mixed.CASE-42", "mixed_CASE_42"},
		{"sp ace", "sp_ace"},
	}
	for _, c := range cases {
		if got := SanitizePromName(c.in); got != c.want {
			t.Errorf("SanitizePromName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestWritePrometheusShape checks the exposition format: HELP/TYPE
// headers, counter and gauge samples, and histograms rendered as
// summaries with quantiles, _sum and _count.
func TestWritePrometheusShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("qindb.puts").Add(3)
	r.Gauge("qindb.memtable.bytes").Set(4096)
	r.GaugeFunc("aof.occupancy", func() float64 { return 0.5 })
	h := r.Histogram("qindb.put.latency_us")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}

	var sb strings.Builder
	if _, err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP qindb_puts directload metric qindb.puts",
		"# TYPE qindb_puts counter",
		"qindb_puts 3",
		"# TYPE qindb_memtable_bytes gauge",
		"qindb_memtable_bytes 4096",
		"# TYPE aof_occupancy gauge",
		"aof_occupancy 0.5",
		"# TYPE qindb_put_latency_us summary",
		`qindb_put_latency_us{quantile="0.5"}`,
		`qindb_put_latency_us{quantile="0.99"}`,
		`qindb_put_latency_us{quantile="0.999"}`,
		"qindb_put_latency_us_sum",
		"qindb_put_latency_us_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must start with a sanitized (legal) name.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if name != SanitizePromName(name) {
			t.Errorf("illegal metric name on the wire: %q", line)
		}
	}
}

// TestWritePrometheusSummariesComplete scans every summary family in
// the exposition and requires both the _sum and _count series —
// Prometheus clients compute rates from those, so a family missing
// either silently breaks dashboards.
func TestWritePrometheusSummariesComplete(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"qindb.put.latency_us", "fleet.read.latency_us", "relay.ship.latency_us"} {
		h := r.Histogram(name)
		for i := 1; i <= 10; i++ {
			h.Observe(float64(i))
		}
	}
	var sb strings.Builder
	if _, err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	families := 0
	for _, line := range strings.Split(out, "\n") {
		rest, ok := strings.CutPrefix(line, "# TYPE ")
		if !ok || !strings.HasSuffix(rest, " summary") {
			continue
		}
		families++
		name := strings.TrimSuffix(rest, " summary")
		for _, series := range []string{name + "_sum ", name + "_count "} {
			if !strings.Contains(out, "\n"+series) {
				t.Errorf("summary %s missing %q series:\n%s", name, strings.TrimSpace(series), out)
			}
		}
	}
	if families < 3 {
		t.Fatalf("expected at least 3 summary families, scanned %d:\n%s", families, out)
	}
}

// TestWritePrometheusCollision checks that two registry names mapping
// to one sanitized name emit only a single family (first wins) instead
// of an invalid duplicated exposition.
func TestWritePrometheusCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(1)
	r.Counter("a-b").Add(2)

	var sb strings.Builder
	if _, err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "# TYPE a_b counter"); got != 1 {
		t.Fatalf("collision emitted %d a_b families, want 1:\n%s", got, out)
	}
	// Lexicographically first original name wins: "a-b" < "a.b".
	if !strings.Contains(out, "a_b 2") {
		t.Fatalf("collision winner should be a-b (value 2):\n%s", out)
	}
}

// TestWritePrometheusNil checks the nil-registry escape hatch.
func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var sb strings.Builder
	n, err := r.WritePrometheus(&sb)
	if err != nil || n != 0 || sb.Len() != 0 {
		t.Fatalf("nil registry wrote %d bytes, err %v", n, err)
	}
}
