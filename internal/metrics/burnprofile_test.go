package metrics

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestBurnProfilerCapturesOnBurn(t *testing.T) {
	dir := t.TempDir()
	events := NewEventLog(64)
	p := NewBurnProfiler(BurnProfilerConfig{
		Events: events,
		Dir:    dir,
		Types:  []string{"heap", "goroutine"},
		Logf:   t.Logf,
	})
	p.Start()
	defer p.Close()

	events.Emit(EventSLOBurn, "node-a", 0, "burn=2.0")

	deadline := time.After(5 * time.Second)
	for p.Captures() == 0 {
		select {
		case <-deadline:
			t.Fatal("no capture after SLO burn event")
		case <-time.After(10 * time.Millisecond):
		}
	}
	// Wait for the files to land (capture runs after the counter bump).
	var files []string
	for len(files) < 2 {
		select {
		case <-deadline:
			t.Fatalf("profiles not written: %v", files)
		case <-time.After(10 * time.Millisecond):
		}
		files, _ = filepath.Glob(filepath.Join(dir, "burn-*.pprof"))
	}
	for _, f := range files {
		body, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := validatePprof(body); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
	// The capture itself lands in the event log.
	found := false
	for _, e := range events.Since(0, 0) {
		if e.Type == EventProfileCapture && strings.Contains(e.Detail, "reason=slo.burn") {
			found = true
		}
	}
	if !found {
		t.Error("EventProfileCapture missing from event log")
	}
}

func TestBurnProfilerCooldown(t *testing.T) {
	now := time.Unix(1000, 0)
	p := NewBurnProfiler(BurnProfilerConfig{
		Dir:      t.TempDir(),
		Cooldown: time.Minute,
		Now:      func() time.Time { return now },
	})
	if got := p.CaptureNow("test"); len(got) == 0 {
		t.Fatal("first capture produced nothing")
	}
	if got := p.CaptureNow("test"); got != nil {
		t.Fatalf("capture inside cooldown ran: %v", got)
	}
	now = now.Add(2 * time.Minute)
	if got := p.CaptureNow("test"); len(got) == 0 {
		t.Fatal("capture after cooldown produced nothing")
	}
	if got := p.Captures(); got != 2 {
		t.Fatalf("Captures = %d, want 2", got)
	}
}

func TestBurnProfilerIgnoresOtherEvents(t *testing.T) {
	events := NewEventLog(64)
	p := NewBurnProfiler(BurnProfilerConfig{Events: events, Dir: t.TempDir()})
	p.Start()
	defer p.Close()
	events.Emit(EventNodeDown, "node-a", 0, "")
	events.Emit(EventSLOClear, "node-a", 0, "")
	time.Sleep(50 * time.Millisecond)
	if got := p.Captures(); got != 0 {
		t.Fatalf("Captures = %d after non-burn events, want 0", got)
	}
}

func TestBurnProfilerNilAndCloseWithoutStart(t *testing.T) {
	var p *BurnProfiler
	p.Start()
	if got := p.CaptureNow("x"); got != nil {
		t.Errorf("nil CaptureNow = %v", got)
	}
	if got := p.Captures(); got != 0 {
		t.Errorf("nil Captures = %d", got)
	}
	if err := p.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}

	real := NewBurnProfiler(BurnProfilerConfig{Dir: t.TempDir()})
	if err := real.Close(); err != nil { // never started
		t.Fatal(err)
	}
	if err := real.Close(); err != nil { // double close
		t.Fatal(err)
	}
}
