package metrics

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func readSamples(t *testing.T, path string) []RecorderSample {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []RecorderSample
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var s RecorderSample
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRecorderSamples(t *testing.T) {
	clk := newFakeClock()
	reg := NewRegistry()
	ev := NewEventLog(16)
	slo := NewSLO(SLOConfig{Name: "fleet.read", Target: 0.006, Now: clk.now})
	path := filepath.Join(t.TempDir(), "series.jsonl")
	rec, err := NewRecorder(RecorderConfig{
		Path:             path,
		Registry:         reg,
		SLOs:             []*SLO{slo},
		Events:           ev,
		RateCounters:     []string{"server.ops.get", "server.ops.put"},
		LatencyHistogram: "fleet.read.latency_us",
		Now:              clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	// One second of traffic: 100 gets + 50 puts, some latency, a miss.
	reg.Counter("server.ops.get").Add(100)
	reg.Counter("server.ops.put").Add(50)
	for i := 1; i <= 100; i++ {
		reg.Histogram("fleet.read.latency_us").Observe(float64(i))
	}
	slo.Record(false)
	ev.Emit(EventBreakerOpen, "n2", 0, "")
	clk.advance(time.Second)
	s1, err := rec.SampleNow()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s1.ThroughputOps, 150.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("throughput = %g, want %g", got, want)
	}
	if s1.P99Us <= 0 {
		t.Fatalf("p99 = %g, want > 0", s1.P99Us)
	}
	if len(s1.SLO) != 1 || s1.SLO[0].TotalBad != 1 {
		t.Fatalf("slo in sample = %+v", s1.SLO)
	}
	if len(s1.Events) != 1 || s1.Events[0].Type != EventBreakerOpen {
		t.Fatalf("events in sample = %+v", s1.Events)
	}

	// Quiet second: zero throughput, no new events.
	clk.advance(time.Second)
	s2, err := rec.SampleNow()
	if err != nil {
		t.Fatal(err)
	}
	if s2.ThroughputOps != 0 || len(s2.Events) != 0 {
		t.Fatalf("quiet sample = %+v", s2)
	}

	if got := rec.Samples(); got != 2 {
		t.Fatalf("Samples = %d, want 2", got)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	disk := readSamples(t, path)
	if len(disk) != 2 {
		t.Fatalf("artifact holds %d lines, want 2", len(disk))
	}
	if disk[0].ThroughputOps != s1.ThroughputOps || len(disk[0].Events) != 1 {
		t.Fatalf("artifact line 1 = %+v", disk[0])
	}
}

func TestRecorderTicker(t *testing.T) {
	reg := NewRegistry()
	path := filepath.Join(t.TempDir(), "series.jsonl")
	rec, err := NewRecorder(RecorderConfig{
		Path:     path,
		Interval: 5 * time.Millisecond,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.Start()
	deadline := time.Now().Add(5 * time.Second)
	for rec.Samples() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(readSamples(t, path)); got < 3 {
		t.Fatalf("ticker wrote %d samples, want >= 3", got)
	}
	// Close is idempotent and the ticker is really stopped.
	n := rec.Samples()
	time.Sleep(20 * time.Millisecond)
	if rec.Samples() != n {
		t.Fatal("recorder still sampling after Close")
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderAppends(t *testing.T) {
	reg := NewRegistry()
	path := filepath.Join(t.TempDir(), "series.jsonl")
	for i := 0; i < 2; i++ {
		rec, err := NewRecorder(RecorderConfig{Path: path, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rec.SampleNow(); err != nil {
			t.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(readSamples(t, path)); got != 2 {
		t.Fatalf("restart truncated the series: %d lines, want 2", got)
	}
}

func TestRecorderNil(t *testing.T) {
	var rec *Recorder
	rec.Start()
	if _, err := rec.SampleNow(); err != nil {
		t.Fatal(err)
	}
	if rec.Samples() != 0 || rec.Close() != nil {
		t.Fatal("nil recorder must no-op")
	}
}

func TestRecorderRuntimeFields(t *testing.T) {
	clk := newFakeClock()
	reg := NewRegistry()
	rt := NewRuntimeSampler(RuntimeSamplerConfig{Interval: time.Hour, Now: clk.now})
	defer rt.Close()
	path := filepath.Join(t.TempDir(), "series.jsonl")
	rec, err := NewRecorder(RecorderConfig{
		Path:     path,
		Registry: reg,
		Runtime:  rt,
		Now:      clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	clk.advance(time.Second)
	s, err := rec.SampleNow()
	if err != nil {
		t.Fatal(err)
	}
	if s.HeapLiveBytes == 0 || s.HeapGoalBytes == 0 || s.Goroutines <= 0 || s.TotalAllocBytes == 0 {
		t.Fatalf("runtime fields missing from sample: %+v", s)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	// Schema round-trip: the JSONL line decodes back to the same values.
	disk := readSamples(t, path)
	if len(disk) != 1 {
		t.Fatalf("artifact holds %d lines, want 1", len(disk))
	}
	got := disk[0]
	if got.HeapLiveBytes != s.HeapLiveBytes || got.HeapGoalBytes != s.HeapGoalBytes ||
		got.Goroutines != s.Goroutines || got.TotalAllocBytes != s.TotalAllocBytes ||
		got.GCPauseP99Us != s.GCPauseP99Us || got.GCCPUFraction != s.GCCPUFraction {
		t.Fatalf("round trip mismatch:\n disk %+v\n mem  %+v", got, s)
	}
	// The raw line carries the documented field names.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"heap_live_bytes", "heap_goal_bytes", "goroutines", "total_alloc_bytes"} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("JSONL line missing %q: %s", key, raw)
		}
	}
}

func TestRecorderWithoutRuntime(t *testing.T) {
	path := filepath.Join(t.TempDir(), "series.jsonl")
	rec, err := NewRecorder(RecorderConfig{Path: path, Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	s, err := rec.SampleNow()
	if err != nil {
		t.Fatal(err)
	}
	if s.HeapLiveBytes != 0 || s.Goroutines != 0 {
		t.Fatalf("runtime fields set without a sampler: %+v", s)
	}
}
