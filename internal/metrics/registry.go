package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// registryHistCap bounds each registry histogram's reservoir. It is
// deliberately smaller than the standalone default: a live system may
// hold dozens of histograms and snapshots sort the reservoir, so the
// always-on path trades a little tail precision for cheap exports.
const registryHistCap = 1 << 13

// Registry is a named, hierarchical collection of metrics shared by the
// whole system. Names are dotted paths (`qindb.put.latency_us`,
// `aof.rotations`); the dots are a naming convention, not a tree — the
// registry itself is a flat map with a lock-cheap read path.
//
// All methods are safe for concurrent use, and every method is a no-op
// (returning nil handles or zero values) on a nil *Registry, so
// subsystems can accept an optional registry and instrument
// unconditionally: a nil registry yields nil Counter/Gauge/Histogram
// handles whose methods are themselves guarded no-ops, keeping
// uninstrumented hot paths allocation-free.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
	tracer   *Tracer
}

// NewRegistry returns an empty registry with an attached event tracer.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
		tracer:   NewTracer(0),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil (a valid no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil (a valid no-op handle) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(registryHistCap)
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a computed gauge evaluated at export time (e.g. a
// ratio over counters owned by another subsystem). fn must be safe to
// call from any goroutine; re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Tracer returns the registry's event tracer (nil on a nil registry;
// the nil Tracer is itself a valid no-op).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Span starts a traced span on the registry's tracer; the returned
// closer records the duration (see Tracer.Span). Safe on a nil registry.
func (r *Registry) Span(name string) func(err error) {
	return r.Tracer().Span(name)
}

// Snapshot returns every registered metric keyed by name: counters and
// gauges as int64, computed gauges as float64, histograms as Snapshot
// structs. The whole map is JSON-marshalable, which is how OpMetrics and
// the HTTP /metrics endpoint export it. Always non-nil.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return make(map[string]any)
	}
	out := make(map[string]any)
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.RUnlock()
	// Values are read outside the registry lock: a GaugeFunc may take
	// subsystem locks of its own, and holding r.mu here would order
	// registry-lock before engine-lock for no benefit.
	for k, c := range counters {
		out[k] = c.Load()
	}
	for k, g := range gauges {
		out[k] = g.Load()
	}
	for k, h := range hists {
		out[k] = h.Snapshot()
	}
	for k, fn := range funcs {
		out[k] = fn()
	}
	return out
}

// MarshalJSON exports the snapshot, so a *Registry can be embedded in
// JSON payloads directly.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// WriteTo dumps every metric as one text line per name, sorted, in the
// style of expvar: counters and gauges as `name value`, histograms as
// `name count=N mean=M p50=… p99=… p99.9=… max=…`.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var total int64
	for _, name := range names {
		var line string
		switch v := snap[name].(type) {
		case Snapshot:
			line = fmt.Sprintf("%s count=%d mean=%.1f p50=%.1f p99=%.1f p99.9=%.1f max=%.1f\n",
				name, v.Count, v.Mean, v.P50, v.P99, v.P999, v.Max)
		case float64:
			line = fmt.Sprintf("%s %g\n", name, v)
		default:
			line = fmt.Sprintf("%s %v\n", name, v)
		}
		n, err := io.WriteString(w, line)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
