package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestAttribTableChargeAndSnapshot(t *testing.T) {
	tab := NewAttribTable(64)
	if got := tab.SampleEvery(); got != 64 {
		t.Fatalf("SampleEvery = %d, want 64", got)
	}
	tab.Charge("put", ResourceDelta{AllocBytes: 1000, AllocObjects: 10, CPU: 2 * time.Microsecond, Wall: 4 * time.Microsecond})
	tab.Charge("put", ResourceDelta{AllocBytes: 3000, AllocObjects: 30, CPU: 4 * time.Microsecond, Wall: 8 * time.Microsecond})
	tab.Charge("get", ResourceDelta{AllocBytes: 500, AllocObjects: 5})

	snap := tab.Snapshot()
	if snap.SampleEvery != 64 {
		t.Errorf("snapshot SampleEvery = %d, want 64", snap.SampleEvery)
	}
	if len(snap.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(snap.Entries))
	}
	// Sorted by bytes/op descending: put (2000) before get (500).
	if snap.Entries[0].Op != "put" || snap.Entries[1].Op != "get" {
		t.Fatalf("sort order = %q, %q; want put, get", snap.Entries[0].Op, snap.Entries[1].Op)
	}
	p := snap.Entries[0]
	if p.Samples != 2 || p.AllocBytesPerOp != 2000 || p.AllocsPerOp != 20 {
		t.Errorf("put entry = %+v, want samples=2 bytes/op=2000 allocs/op=20", p)
	}
	if p.CPUUsPerOp != 3 || p.WallUsPerOp != 6 {
		t.Errorf("put entry = %+v, want cpu_us=3 wall_us=6", p)
	}
}

func TestAttribTableClampAndReset(t *testing.T) {
	tab := NewAttribTable(0) // clamps to 1
	if got := tab.SampleEvery(); got != 1 {
		t.Fatalf("SampleEvery = %d, want 1", got)
	}
	tab.Charge("", ResourceDelta{AllocBytes: 1}) // empty op ignored
	tab.Charge("x", ResourceDelta{AllocBytes: 1})
	if got := len(tab.Snapshot().Entries); got != 1 {
		t.Fatalf("entries = %d, want 1", got)
	}
	tab.Reset()
	if got := len(tab.Snapshot().Entries); got != 0 {
		t.Fatalf("entries after Reset = %d, want 0", got)
	}
}

func TestAttribTableConcurrent(t *testing.T) {
	tab := NewAttribTable(64)
	var wg sync.WaitGroup
	ops := []string{"put", "get", "del", "batch"}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				tab.Charge(ops[(i+j)%len(ops)], ResourceDelta{AllocBytes: 64, AllocObjects: 1})
				if j%100 == 0 {
					tab.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for _, e := range tab.Snapshot().Entries {
		total += e.Samples
	}
	if total != 8*500 {
		t.Fatalf("total samples = %d, want %d", total, 8*500)
	}
}

func TestAttribTableNil(t *testing.T) {
	var tab *AttribTable
	tab.Charge("put", ResourceDelta{AllocBytes: 1})
	tab.Reset()
	if got := tab.SampleEvery(); got != 0 {
		t.Errorf("nil SampleEvery = %d, want 0", got)
	}
	snap := tab.Snapshot()
	if snap.SampleEvery != 0 || len(snap.Entries) != 0 {
		t.Errorf("nil Snapshot = %+v, want zero", snap)
	}
}

func TestResourceSampleMeasuresAllocs(t *testing.T) {
	s := BeginResourceSample()
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	d := s.End()
	_ = sink
	// The runtime's alloc counters carry per-P slack, so assert the bulk
	// of the allocation is visible, not the exact total.
	if d.AllocBytes < 32*4096 {
		t.Errorf("AllocBytes = %d, want >= %d", d.AllocBytes, 32*4096)
	}
	if d.AllocObjects < 32 {
		t.Errorf("AllocObjects = %d, want >= 32", d.AllocObjects)
	}
	if d.Wall <= 0 {
		t.Errorf("Wall = %v, want > 0", d.Wall)
	}
	if threadCPUSupported && d.CPU < 0 {
		t.Errorf("CPU = %v, want >= 0", d.CPU)
	}
}

func TestResourceSampleNilEnd(t *testing.T) {
	var s *ResourceSample
	if d := s.End(); d != (ResourceDelta{}) {
		t.Errorf("nil End = %+v, want zero", d)
	}
}

func TestThreadCPUNanos(t *testing.T) {
	if !threadCPUSupported {
		t.Skip("thread CPU clock unsupported on this platform")
	}
	a := threadCPUNanos()
	if a < 0 {
		t.Fatal("threadCPUNanos returned -1 on a supported platform")
	}
	// Burn a little CPU and confirm the clock moves forward.
	x := 0
	for i := 0; i < 5_000_000; i++ {
		x += i
	}
	_ = x
	b := threadCPUNanos()
	if b < a {
		t.Fatalf("thread CPU clock went backwards: %d -> %d", a, b)
	}
}
