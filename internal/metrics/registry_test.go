package metrics

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.b")
	c2 := r.Counter("a.b")
	if c1 != c2 {
		t.Fatal("same name must return the same counter")
	}
	if r.Counter("a.c") == c1 {
		t.Fatal("distinct names must return distinct counters")
	}
	if r.Gauge("a.b") == nil || r.Histogram("a.b") == nil {
		t.Fatal("kinds are namespaced independently")
	}
	c1.Add(3)
	if got := r.Counter("a.b").Load(); got != 3 {
		t.Fatalf("counter value = %d, want 3", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Fatal("nil registry should hand out nil counters")
	}
	c.Inc() // must not panic
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.GaugeFunc("x", func() float64 { return 1 })
	end := r.Span("x")
	end(nil)
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil Snapshot = %v, want empty", snap)
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil WriteTo = %q, %v", sb.String(), err)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared.counter").Inc()
				r.Counter(fmt.Sprintf("own.%d", g)).Inc()
				r.Histogram("shared.hist").Observe(float64(i))
				r.Gauge("shared.gauge").Set(int64(i))
				if i%50 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Load(); got != 4000 {
		t.Fatalf("shared counter = %d, want 4000", got)
	}
	snap := r.Snapshot()
	hs, ok := snap["shared.hist"].(Snapshot)
	if !ok || hs.Count != 4000 {
		t.Fatalf("shared.hist snapshot = %#v", snap["shared.hist"])
	}
	if !(hs.P50 <= hs.P99 && hs.P99 <= hs.P999 && hs.P999 <= hs.Max) {
		t.Fatalf("inconsistent histogram snapshot: %+v", hs)
	}
}

func TestRegistrySnapshotConsistencyUnderLoad(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := float64(g)
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Histogram("lat").Observe(v)
				v = v*1.3 + 1
				if v > 1e6 {
					v = 0
				}
			}
		}(g)
	}
	for i := 0; i < 100; i++ {
		snap := r.Snapshot()
		s, ok := snap["lat"].(Snapshot)
		if !ok || s.Count == 0 {
			continue
		}
		if s.P99 > s.Max || s.P50 > s.P99 {
			t.Errorf("P99 %v > Max %v (or P50 > P99): %+v", s.P99, s.Max, s)
			break
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegistryGaugeFunc(t *testing.T) {
	r := NewRegistry()
	user := r.Counter("user.bytes")
	disk := r.Counter("disk.bytes")
	r.GaugeFunc("wa", func() float64 {
		u := user.Load()
		if u == 0 {
			return 0
		}
		return float64(disk.Load()) / float64(u)
	})
	user.Add(100)
	disk.Add(250)
	snap := r.Snapshot()
	if got, ok := snap["wa"].(float64); !ok || got != 2.5 {
		t.Fatalf("wa = %#v, want 2.5", snap["wa"])
	}
}

func TestRegistryWriteToAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(7)
	r.Gauge("a.gauge").Set(-3)
	r.Histogram("c.lat").Observe(42)
	r.GaugeFunc("d.ratio", func() float64 { return 0.5 })

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("WriteTo lines = %d: %q", len(lines), out)
	}
	// Sorted by name.
	for i, prefix := range []string{"a.gauge -3", "b.count 7", "c.lat count=1", "d.ratio 0.5"} {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Fatalf("line %d = %q, want prefix %q", i, lines[i], prefix)
		}
	}

	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["b.count"].(float64) != 7 {
		t.Fatalf("json b.count = %v", decoded["b.count"])
	}
	hist, ok := decoded["c.lat"].(map[string]any)
	if !ok || hist["count"].(float64) != 1 || hist["max"].(float64) != 42 {
		t.Fatalf("json c.lat = %#v", decoded["c.lat"])
	}
}
