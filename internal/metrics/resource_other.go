//go:build !linux

package metrics

// threadCPUSupported is false off linux: there is no portable
// per-thread CPU clock, so ResourceDelta.CPU stays zero and the alloc
// accounting carries the attribution on its own.
const threadCPUSupported = false

func threadCPUNanos() int64 { return -1 }
