package metrics

import (
	"fmt"
	"sync"
	"time"
)

// Default SLO shape: the paper's fleet-level objectives are reported
// over short control windows (is the fleet burning budget right now?)
// and a long accounting window (how did the day go?). 1m/5m/1h is the
// classic multi-window burn-rate ladder.
var defaultSLOWindows = []time.Duration{time.Minute, 5 * time.Minute, time.Hour}

// defaultSLOBuckets is the per-window ring resolution: each window is
// split into this many buckets, so the sliding window advances in
// window/buckets steps instead of jumping a full window at a time.
const defaultSLOBuckets = 60

// SLOConfig shapes one service-level objective tracker.
type SLOConfig struct {
	// Name labels the objective ("fleet.read", "cluster.cycle").
	Name string
	// Target is the tolerated bad-event ratio — the paper's read-miss
	// SLO of 0.6 % is 0.006. A burn rate of 1.0 means the budget is
	// being consumed exactly as fast as the objective allows.
	Target float64
	// Windows are the sliding windows tracked (default 1m, 5m, 1h).
	Windows []time.Duration
	// Buckets is the ring resolution per window (default 60).
	Buckets int
	// BurnThreshold is the burn rate at or above which a window is
	// "burning" and a crossing event is emitted (default 1.0).
	BurnThreshold float64
	// Events, when non-nil, receives slo.burn / slo.clear events on
	// threshold crossings.
	Events *EventLog
	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
}

// sloWindow is one sliding window: a ring of good/bad buckets plus
// running sums, advanced lazily against the absolute bucket index so an
// idle stretch costs one pass over the ring, not one per bucket.
type sloWindow struct {
	width   time.Duration
	bucket  time.Duration
	good    []int64
	bad     []int64
	sumGood int64
	sumBad  int64
	cur     int64 // absolute bucket index currently accumulating
	burning bool  // above the burn threshold as of the last check
}

// advance rotates the ring forward to the bucket containing now,
// clearing (and un-summing) every bucket that fell out of the window.
func (w *sloWindow) advance(now time.Time) {
	abs := now.UnixNano() / int64(w.bucket)
	if abs <= w.cur {
		return
	}
	steps := abs - w.cur
	if steps > int64(len(w.good)) {
		steps = int64(len(w.good))
	}
	for i := int64(1); i <= steps; i++ {
		slot := int((w.cur + i) % int64(len(w.good)))
		w.sumGood -= w.good[slot]
		w.sumBad -= w.bad[slot]
		w.good[slot] = 0
		w.bad[slot] = 0
	}
	w.cur = abs
}

// ratio returns the window's bad-event ratio (0 when empty).
func (w *sloWindow) ratio() float64 {
	total := w.sumGood + w.sumBad
	if total == 0 {
		return 0
	}
	return float64(w.sumBad) / float64(total)
}

// SLO tracks one service-level objective over several sliding windows:
// callers record good/bad events (read hit/miss, cycle within/over
// deadline) and the tracker answers ratio and burn-rate queries per
// window. Crossing the burn threshold in any window emits a structured
// event, so an operator sees "the 5m read-miss burn rate exceeded 1×"
// in /events rather than reconstructing it from counters. All methods
// are safe for concurrent use and no-ops on a nil receiver.
type SLO struct {
	name          string
	target        float64
	burnThreshold float64
	events        *EventLog
	now           func() time.Time

	mu        sync.Mutex
	windows   []*sloWindow
	totalGood int64
	totalBad  int64
}

// NewSLO builds a tracker for cfg, filling defaults for zero fields.
func NewSLO(cfg SLOConfig) *SLO {
	if cfg.Name == "" {
		cfg.Name = "slo"
	}
	if len(cfg.Windows) == 0 {
		cfg.Windows = defaultSLOWindows
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = defaultSLOBuckets
	}
	if cfg.BurnThreshold <= 0 {
		cfg.BurnThreshold = 1.0
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &SLO{
		name:          cfg.Name,
		target:        cfg.Target,
		burnThreshold: cfg.BurnThreshold,
		events:        cfg.Events,
		now:           cfg.Now,
	}
	for _, width := range cfg.Windows {
		if width <= 0 {
			continue
		}
		bucket := width / time.Duration(cfg.Buckets)
		if bucket <= 0 {
			bucket = time.Duration(1)
		}
		s.windows = append(s.windows, &sloWindow{
			width:  width,
			bucket: bucket,
			good:   make([]int64, cfg.Buckets),
			bad:    make([]int64, cfg.Buckets),
		})
	}
	return s
}

// Name returns the objective's label ("" on nil).
func (s *SLO) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Target returns the tolerated bad-event ratio (0 on nil).
func (s *SLO) Target() float64 {
	if s == nil {
		return 0
	}
	return s.target
}

// Record adds one event to every window: good=true for an event within
// the objective (read hit, cycle on time), false for a violation.
// Crossing the burn threshold in either direction emits slo.burn /
// slo.clear into the attached event log.
func (s *SLO) Record(good bool) {
	if s == nil {
		return
	}
	now := s.now()
	type crossing struct {
		up     bool
		window time.Duration
		burn   float64
	}
	var crossings []crossing
	s.mu.Lock()
	if good {
		s.totalGood++
	} else {
		s.totalBad++
	}
	for _, w := range s.windows {
		w.advance(now)
		slot := int(w.cur % int64(len(w.good)))
		if good {
			w.good[slot]++
			w.sumGood++
		} else {
			w.bad[slot]++
			w.sumBad++
		}
		burn := s.burnLocked(w)
		if burning := burn >= s.burnThreshold && s.target > 0; burning != w.burning {
			w.burning = burning
			crossings = append(crossings, crossing{up: burning, window: w.width, burn: burn})
		}
	}
	s.mu.Unlock()
	for _, c := range crossings {
		typ := EventSLOBurn
		if !c.up {
			typ = EventSLOClear
		}
		s.events.Emit(typ, "", 0, fmt.Sprintf("%s window=%s burn=%.2fx target=%g",
			s.name, durLabel(c.window), c.burn, s.target))
	}
}

// burnLocked is the window's burn rate: bad-event ratio over the
// target. A zero target reports 0 (no budget defined, nothing burns).
func (s *SLO) burnLocked(w *sloWindow) float64 {
	if s.target <= 0 {
		return 0
	}
	return w.ratio() / s.target
}

// SLOWindowSnapshot is one window's view at snapshot time.
type SLOWindowSnapshot struct {
	Window   string        `json:"window"` // "1m", "5m", "1h"
	Width    time.Duration `json:"width_ns"`
	Good     int64         `json:"good"`
	Bad      int64         `json:"bad"`
	Ratio    float64       `json:"ratio"`
	BurnRate float64       `json:"burn_rate"`
}

// SLOSnapshot is the full tracker state served by /slo and recorded by
// the time-series recorder.
type SLOSnapshot struct {
	Name      string              `json:"name"`
	Target    float64             `json:"target"`
	TotalGood int64               `json:"total_good"`
	TotalBad  int64               `json:"total_bad"`
	Windows   []SLOWindowSnapshot `json:"windows"`
}

// Snapshot advances every window to now and returns a consistent view.
// The zero value (empty Name) is returned on a nil receiver.
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SLOSnapshot{
		Name:      s.name,
		Target:    s.target,
		TotalGood: s.totalGood,
		TotalBad:  s.totalBad,
	}
	for _, w := range s.windows {
		w.advance(now)
		snap.Windows = append(snap.Windows, SLOWindowSnapshot{
			Window:   durLabel(w.width),
			Width:    w.width,
			Good:     w.sumGood,
			Bad:      w.sumBad,
			Ratio:    w.ratio(),
			BurnRate: s.burnLocked(w),
		})
	}
	return snap
}

// BurnRate returns the burn rate of the window closest to width (the
// shortest window when width is 0). Returns 0 on nil or no windows.
func (s *SLO) BurnRate(width time.Duration) float64 {
	if s == nil {
		return 0
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *sloWindow
	for _, w := range s.windows {
		if best == nil {
			best = w
			continue
		}
		if abs(w.width-width) < abs(best.width-width) {
			best = w
		}
	}
	if best == nil {
		return 0
	}
	best.advance(now)
	return s.burnLocked(best)
}

func abs(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// Register exposes the tracker on a registry as computed gauges —
// slo.<name>.ratio.<window>, slo.<name>.burn.<window> and
// slo.<name>.target — so the Prometheus exposition and JSON snapshots
// carry the SLO without extra plumbing. Safe on nil receiver/registry.
func (s *SLO) Register(reg *Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.GaugeFunc("slo."+s.name+".target", func() float64 { return s.target })
	s.mu.Lock()
	widths := make([]time.Duration, 0, len(s.windows))
	for _, w := range s.windows {
		widths = append(widths, w.width)
	}
	s.mu.Unlock()
	for _, width := range widths {
		width := width
		label := durLabel(width)
		reg.GaugeFunc(fmt.Sprintf("slo.%s.ratio.%s", s.name, label), func() float64 {
			for _, ws := range s.Snapshot().Windows {
				if ws.Width == width {
					return ws.Ratio
				}
			}
			return 0
		})
		reg.GaugeFunc(fmt.Sprintf("slo.%s.burn.%s", s.name, label), func() float64 {
			return s.BurnRate(width)
		})
	}
}

// durLabel renders a window width compactly for metric names and event
// details: 1m, 5m, 1h, 90s — not time.Duration's "1m0s".
func durLabel(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	case d >= time.Second && d%time.Second == 0:
		return fmt.Sprintf("%ds", d/time.Second)
	default:
		return d.String()
	}
}
