package metrics

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRuntimeSamplerSampleNow(t *testing.T) {
	s := NewRuntimeSampler(RuntimeSamplerConfig{Interval: time.Hour})
	defer s.Close()

	got := s.Last()
	if got.TS.IsZero() {
		t.Fatal("eager first sample missing")
	}
	if got.HeapLiveBytes == 0 {
		t.Error("HeapLiveBytes = 0, want > 0")
	}
	if got.HeapGoalBytes == 0 {
		t.Error("HeapGoalBytes = 0, want > 0")
	}
	if got.RuntimeTotalBytes == 0 {
		t.Error("RuntimeTotalBytes = 0, want > 0")
	}
	if got.Goroutines <= 0 {
		t.Errorf("Goroutines = %d, want > 0", got.Goroutines)
	}
	if got.TotalAllocBytes == 0 {
		t.Error("TotalAllocBytes = 0, want > 0")
	}
}

func TestRuntimeSamplerGCDelta(t *testing.T) {
	s := NewRuntimeSampler(RuntimeSamplerConfig{Interval: time.Hour})
	defer s.Close()

	before := s.Last().GCCycles
	runtime.GC()
	runtime.GC()
	after := s.SampleNow()
	if after.GCCycles <= before {
		t.Errorf("GCCycles did not advance: before=%d after=%d", before, after.GCCycles)
	}
	// Two forced GCs happened inside the last interval, so the delta
	// pause histogram must be non-empty and p99 positive.
	if after.GCPauseP99Us <= 0 {
		t.Errorf("GCPauseP99Us = %v, want > 0 after forced GC", after.GCPauseP99Us)
	}
	if after.GCCPUFraction < 0 || after.GCCPUFraction > 1 {
		t.Errorf("GCCPUFraction = %v, want within [0,1]", after.GCCPUFraction)
	}
}

func TestRuntimeSamplerRing(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewRuntimeSampler(RuntimeSamplerConfig{
		Interval: time.Second,
		Capacity: 3,
		Now:      func() time.Time { now = now.Add(time.Second); return now },
	})
	defer s.Close()

	for i := 0; i < 5; i++ {
		s.SampleNow()
	}
	if got := s.Count(); got != 6 { // 1 eager + 5 explicit
		t.Fatalf("Count = %d, want 6", got)
	}
	recent := s.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("Recent(0) returned %d samples, want capacity 3", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if !recent[i].TS.After(recent[i-1].TS) {
			t.Fatalf("Recent not oldest-first: %v then %v", recent[i-1].TS, recent[i].TS)
		}
	}
	if got := s.Recent(2); len(got) != 2 || !got[1].TS.Equal(recent[2].TS) {
		t.Fatalf("Recent(2) = %v, want last two of %v", got, recent)
	}
}

func TestRuntimeSamplerPullRefresh(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	s := NewRuntimeSampler(RuntimeSamplerConfig{Interval: time.Minute, Now: clock})
	defer s.Close()

	c0 := s.Count()
	s.Last() // fresh: must not resample
	if got := s.Count(); got != c0 {
		t.Fatalf("Last() on a fresh sample resampled: count %d -> %d", c0, got)
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	s.Last() // stale: must resample
	if got := s.Count(); got != c0+1 {
		t.Fatalf("Last() on a stale sample did not resample: count %d -> %d", c0, got)
	}
}

func TestRuntimeSamplerRegister(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(RuntimeSamplerConfig{Interval: time.Hour})
	defer s.Close()
	s.Register(reg)

	snap := reg.Snapshot()
	for _, name := range []string{
		"runtime.heap.live_bytes",
		"runtime.heap.goal_bytes",
		"runtime.goroutines",
		"runtime.gc.cycles",
		"runtime.gc.pause_p99_us",
		"runtime.gc.cpu_fraction",
		"runtime.sched.latency_p99_us",
		"runtime.alloc.bytes_total",
	} {
		v, ok := snap[name]
		if !ok {
			t.Errorf("gauge %q missing from snapshot", name)
			continue
		}
		f, ok := v.(float64)
		if !ok {
			t.Errorf("gauge %q: got %T, want float64", name, v)
			continue
		}
		switch name {
		case "runtime.heap.live_bytes", "runtime.heap.goal_bytes",
			"runtime.goroutines", "runtime.alloc.bytes_total":
			if f <= 0 {
				t.Errorf("gauge %q = %v, want > 0", name, f)
			}
		}
	}
}

func TestRuntimeSamplerPromExposition(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(RuntimeSamplerConfig{Interval: time.Hour})
	defer s.Close()
	s.Register(reg)

	var sb strings.Builder
	if _, err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"runtime_heap_live_bytes",
		"runtime_goroutines",
		"runtime_gc_pause_p99_us",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRuntimeSamplerStartTicker(t *testing.T) {
	s := NewRuntimeSampler(RuntimeSamplerConfig{Interval: time.Millisecond})
	s.Start()
	deadline := time.After(2 * time.Second)
	for s.Count() < 3 {
		select {
		case <-deadline:
			t.Fatalf("ticker took too long: count=%d", s.Count())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // double close is safe
		t.Fatal(err)
	}
}

func TestRuntimeSamplerCloseWithoutStart(t *testing.T) {
	s := NewRuntimeSampler(RuntimeSamplerConfig{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeSamplerNil(t *testing.T) {
	var s *RuntimeSampler
	s.Start()
	s.Register(NewRegistry())
	if got := s.SampleNow(); !got.TS.IsZero() {
		t.Errorf("nil SampleNow = %+v, want zero", got)
	}
	if got := s.Last(); !got.TS.IsZero() {
		t.Errorf("nil Last = %+v, want zero", got)
	}
	if got := s.Recent(5); got != nil {
		t.Errorf("nil Recent = %v, want nil", got)
	}
	if got := s.Count(); got != 0 {
		t.Errorf("nil Count = %d, want 0", got)
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil Close = %v, want nil", err)
	}
}

func TestHistDeltaQuantileMath(t *testing.T) {
	// Synthetic histogram check is exercised through forced GC above;
	// here verify copyCounts semantics used between samples.
	dst := copyCounts(nil, []uint64{1, 2, 3})
	if len(dst) != 3 || dst[2] != 3 {
		t.Fatalf("copyCounts = %v", dst)
	}
	dst2 := copyCounts(dst, []uint64{4, 5})
	if len(dst2) != 2 || dst2[0] != 4 {
		t.Fatalf("copyCounts reuse = %v", dst2)
	}
}
