package metrics

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// defaultEventCap is the ring size when NewEventLog is given 0.
const defaultEventCap = 1024

// EventType names one kind of fleet lifecycle event.
type EventType string

// The event vocabulary: the discrete state changes an operator replays
// to explain a dip in the SLO curve.
const (
	EventVersionPublish  EventType = "version.publish"
	EventVersionRetire   EventType = "version.retire"
	EventNodeUp          EventType = "node.up"
	EventNodeDown        EventType = "node.down"
	EventBreakerOpen     EventType = "breaker.open"
	EventBreakerHalfOpen EventType = "breaker.half_open"
	EventBreakerClose    EventType = "breaker.close"
	EventHandoffEnqueue  EventType = "handoff.enqueue"
	EventHandoffDrain    EventType = "handoff.drain"
	EventSLOBurn         EventType = "slo.burn"
	EventSLOClear        EventType = "slo.clear"
	EventProfileCapture  EventType = "profile.capture"
)

// Event is one typed, timestamped entry in the structured event log.
// Seq is a log-wide monotonic cursor: /events?since=<seq> resumes
// exactly after the last event a client saw, even across ring eviction.
type Event struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Type    EventType `json:"type"`
	Node    string    `json:"node,omitempty"`
	Version uint64    `json:"version,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// EventLog is a bounded ring of typed events with a monotonic cursor
// and long-poll support. All methods are safe for concurrent use and
// no-ops on a nil receiver, so subsystems emit unconditionally.
type EventLog struct {
	mu     sync.Mutex
	ring   []Event
	next   int
	limit  int
	seq    uint64
	notify chan struct{} // closed and replaced on every append
}

// NewEventLog returns a ring holding the most recent capacity events (0
// selects the default of 1024).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = defaultEventCap
	}
	return &EventLog{
		ring:   make([]Event, 0, capacity),
		limit:  capacity,
		notify: make(chan struct{}),
	}
}

// Emit appends one event, stamping its sequence number and (when unset)
// its timestamp. Returns the assigned sequence (0 on a nil log).
func (l *EventLog) Emit(typ EventType, node string, version uint64, detail string) uint64 {
	return l.Append(Event{Type: typ, Node: node, Version: version, Detail: detail})
}

// Emitf is Emit with a formatted detail string.
func (l *EventLog) Emitf(typ EventType, node string, version uint64, format string, args ...any) uint64 {
	if l == nil {
		return 0
	}
	return l.Emit(typ, node, version, fmt.Sprintf(format, args...))
}

// Append inserts e, stamping Seq (always) and Time (when zero).
func (l *EventLog) Append(e Event) uint64 {
	if l == nil {
		return 0
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	if len(l.ring) < l.limit {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
		l.next = (l.next + 1) % l.limit
	}
	notify := l.notify
	l.notify = make(chan struct{})
	l.mu.Unlock()
	close(notify)
	return e.Seq
}

// LastSeq returns the sequence number of the newest event (0 when none
// were ever emitted).
func (l *EventLog) LastSeq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Since returns retained events with Seq > since, oldest first; max > 0
// keeps only the newest max of them. A cursor older than the ring's
// tail silently resumes at the oldest retained event — the gap is
// visible to the caller as non-contiguous sequence numbers.
func (l *EventLog) Since(since uint64, max int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]Event, 0, len(l.ring))
	for _, e := range append(append([]Event(nil), l.ring[l.next:]...), l.ring[:l.next]...) {
		if e.Seq > since {
			out = append(out, e)
		}
	}
	l.mu.Unlock()
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Wait blocks until at least one event with Seq > since exists (long
// poll), returning the matching events, or nil when ctx expires first.
func (l *EventLog) Wait(ctx context.Context, since uint64) []Event {
	if l == nil {
		return nil
	}
	for {
		l.mu.Lock()
		notify := l.notify
		ready := l.seq > since
		l.mu.Unlock()
		if ready {
			if evs := l.Since(since, 0); len(evs) > 0 {
				return evs
			}
			// Everything after the cursor was already evicted and no
			// newer events remain retained; wait for the next append.
		}
		select {
		case <-notify:
		case <-ctx.Done():
			return nil
		}
	}
}

// MarshalJSON exports the retained events, oldest first.
func (l *EventLog) MarshalJSON() ([]byte, error) {
	evs := l.Since(0, 0)
	if evs == nil {
		evs = []Event{}
	}
	return json.Marshal(evs)
}

// WriteTo dumps the retained events as text, oldest first — the
// /events page.
func (l *EventLog) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range l.Since(0, 0) {
		suffix := ""
		if e.Node != "" {
			suffix += " node=" + e.Node
		}
		if e.Version != 0 {
			suffix += fmt.Sprintf(" v%d", e.Version)
		}
		if e.Detail != "" {
			suffix += " " + e.Detail
		}
		n, err := fmt.Fprintf(w, "%d %s %s%s\n",
			e.Seq, e.Time.Format(time.RFC3339Nano), e.Type, suffix)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
