package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// defaultSlowLogCap is the ring size when NewSlowLog is given 0.
const defaultSlowLogCap = 256

// slowKeyMax bounds how many key bytes one slow entry retains.
const slowKeyMax = 128

// SlowEntry is one operation that exceeded the slow-op threshold: what
// ran, against which key, how long it took, inside which trace, and how
// it ended — the line an operator greps for when a publish stalls.
type SlowEntry struct {
	Time    time.Time     `json:"time"`
	Op      string        `json:"op"`
	Key     string        `json:"key,omitempty"`
	Dur     time.Duration `json:"dur"`
	TraceID uint64        `json:"trace_id,omitempty"`
	Err     string        `json:"err,omitempty"`
}

// SlowLog is a bounded ring of slow operations. Recording is a single
// threshold comparison on the fast path (atomic load, no lock) and a
// short critical section when an entry actually qualifies. All methods
// are safe for concurrent use and no-ops on a nil receiver.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds; <=0 disables recording

	mu    sync.Mutex
	ring  []SlowEntry
	next  int
	limit int
	total int64
}

// NewSlowLog returns a ring holding the most recent capacity entries (0
// selects the default of 256), recording operations at or above
// threshold (<=0 starts disabled; SetThreshold can enable it later).
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = defaultSlowLogCap
	}
	l := &SlowLog{ring: make([]SlowEntry, 0, capacity), limit: capacity}
	l.threshold.Store(int64(threshold))
	return l
}

// SetThreshold changes the slow-op threshold at runtime (<=0 disables).
func (l *SlowLog) SetThreshold(d time.Duration) {
	if l == nil {
		return
	}
	l.threshold.Store(int64(d))
}

// Threshold returns the current threshold (0 when disabled or nil).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	if t := l.threshold.Load(); t > 0 {
		return time.Duration(t)
	}
	return 0
}

// Maybe records the operation if dur is at or above the threshold. The
// key is copied (truncated to 128 bytes) so callers may reuse buffers.
func (l *SlowLog) Maybe(op string, key []byte, dur time.Duration, trace uint64, errMsg string) {
	if l == nil {
		return
	}
	t := l.threshold.Load()
	if t <= 0 || int64(dur) < t {
		return
	}
	if len(key) > slowKeyMax {
		key = key[:slowKeyMax]
	}
	e := SlowEntry{Time: time.Now(), Op: op, Key: string(key), Dur: dur, TraceID: trace, Err: errMsg}
	l.mu.Lock()
	l.total++
	if len(l.ring) < l.limit {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
		l.next = (l.next + 1) % l.limit
	}
	l.mu.Unlock()
}

// Count returns how many slow operations were ever recorded (including
// entries overwritten in the ring).
func (l *SlowLog) Count() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entries returns the retained entries oldest first. n > 0 keeps only
// the newest n.
func (l *SlowLog) Entries(n int) []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]SlowEntry, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	l.mu.Unlock()
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// FilterEntries returns the retained entries oldest first, keeping only
// those matching op (when non-empty) and trace (when nonzero). n > 0
// keeps only the newest n matches — the filter runs before the cut, so
// "-n 5 -op publish" means the five newest publish entries.
func (l *SlowLog) FilterEntries(n int, op string, trace uint64) []SlowEntry {
	if l == nil {
		return nil
	}
	all := l.Entries(0)
	out := all[:0:0]
	for _, e := range all {
		if op != "" && e.Op != op {
			continue
		}
		if trace != 0 && e.TraceID != trace {
			continue
		}
		out = append(out, e)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// MarshalJSON exports the retained entries, oldest first.
func (l *SlowLog) MarshalJSON() ([]byte, error) {
	entries := l.Entries(0)
	if entries == nil {
		entries = []SlowEntry{}
	}
	return json.Marshal(entries)
}

// WriteTo dumps the retained entries as text, oldest first — the
// /debug/slowlog page.
func (l *SlowLog) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range l.Entries(0) {
		suffix := ""
		if e.TraceID != 0 {
			suffix += fmt.Sprintf(" trace=%016x", e.TraceID)
		}
		if e.Err != "" {
			suffix += " err=" + e.Err
		}
		n, err := fmt.Fprintf(w, "%s %s %q %s%s\n",
			e.Time.Format(time.RFC3339Nano), e.Op, e.Key, e.Dur, suffix)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
