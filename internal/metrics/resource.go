package metrics

import (
	"runtime"
	runtimemetrics "runtime/metrics"
	"time"
)

// ResourceDelta is what one measured request cost the process:
// allocated bytes/objects and on-CPU thread time between Begin and End.
//
// The alloc figures come from the process-global cumulative counters
// (/gc/heap/allocs), so concurrent goroutines add noise to any single
// measurement. Under sampling (one request in N) the noise is symmetric
// and the per-op averages converge on the true cost; treat a single
// delta as a statistical draw, not an exact bill.
type ResourceDelta struct {
	AllocBytes   int64
	AllocObjects int64
	CPU          time.Duration // on-CPU time of the serving thread; 0 where unsupported
	Wall         time.Duration
}

// ResourceSample is an in-flight measurement started by
// BeginResourceSample and finished by End.
type ResourceSample struct {
	start        time.Time
	allocBytes   uint64
	allocObjects uint64
	cpuStart     int64 // thread CPU ns; -1 when unsupported
	locked       bool  // holding runtime.LockOSThread until End
	buf          [2]runtimemetrics.Sample
}

const (
	allocBytesKey   = "/gc/heap/allocs:bytes"
	allocObjectsKey = "/gc/heap/allocs:objects"
)

// BeginResourceSample starts measuring the current goroutine's request.
// When thread-CPU accounting is supported (linux), the goroutine is
// locked to its OS thread until End so the CLOCK_THREAD_CPUTIME_ID
// delta bills the right thread. Callers must call End exactly once.
func BeginResourceSample() *ResourceSample {
	s := &ResourceSample{cpuStart: -1}
	s.buf[0].Name = allocBytesKey
	s.buf[1].Name = allocObjectsKey
	if threadCPUSupported {
		runtime.LockOSThread()
		s.locked = true
		s.cpuStart = threadCPUNanos()
	}
	runtimemetrics.Read(s.buf[:])
	if s.buf[0].Value.Kind() == runtimemetrics.KindUint64 {
		s.allocBytes = s.buf[0].Value.Uint64()
	}
	if s.buf[1].Value.Kind() == runtimemetrics.KindUint64 {
		s.allocObjects = s.buf[1].Value.Uint64()
	}
	s.start = time.Now()
	return s
}

// End finishes the measurement and returns the delta. Negative deltas
// (counter skew across a runtime metrics flush) clamp to zero.
func (s *ResourceSample) End() ResourceDelta {
	if s == nil {
		return ResourceDelta{}
	}
	var d ResourceDelta
	d.Wall = time.Since(s.start)
	runtimemetrics.Read(s.buf[:])
	if s.buf[0].Value.Kind() == runtimemetrics.KindUint64 {
		d.AllocBytes = clampDelta(s.buf[0].Value.Uint64(), s.allocBytes)
	}
	if s.buf[1].Value.Kind() == runtimemetrics.KindUint64 {
		d.AllocObjects = clampDelta(s.buf[1].Value.Uint64(), s.allocObjects)
	}
	if s.cpuStart >= 0 {
		if now := threadCPUNanos(); now >= s.cpuStart {
			d.CPU = time.Duration(now - s.cpuStart)
		}
	}
	if s.locked {
		runtime.UnlockOSThread()
		s.locked = false
	}
	return d
}

func clampDelta(cur, prev uint64) int64 {
	if cur < prev {
		return 0
	}
	return int64(cur - prev)
}
