package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load() = %d, want 42", got)
	}
	c.Add(-5) // ignored: monotonic
	if got := c.Load(); got != 42 {
		t.Fatalf("Load() after negative Add = %d, want 42", got)
	}
	if got := c.Reset(); got != 42 {
		t.Fatalf("Reset() = %d, want 42", got)
	}
	if got := c.Load(); got != 0 {
		t.Fatalf("Load() after Reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("Load() = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("Load() = %d, want 7", got)
	}
}

func TestHistogramExactQuantiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count() = %d, want 100", got)
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("Mean() = %v, want 50.5", got)
	}
	if got := h.Min(); got != 1 {
		t.Fatalf("Min() = %v, want 1", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("Max() = %v, want 100", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("Quantile(1) = %v, want 100", got)
	}
	if got := h.Quantile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("Quantile(0.5) = %v, want 50.5", got)
	}
	if got := h.Quantile(0.99); got < 99 || got > 100 {
		t.Fatalf("Quantile(0.99) = %v, want in [99, 100]", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(16)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	snap := h.Snapshot()
	if snap.Count != 0 {
		t.Fatalf("Snapshot().Count = %d, want 0", snap.Count)
	}
}

func TestHistogramReservoirSampling(t *testing.T) {
	// With a tiny reservoir the histogram must still track count/mean
	// exactly and keep quantiles within the observed range.
	h := NewHistogram(64)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i % 1000))
	}
	if got := h.Count(); got != 10000 {
		t.Fatalf("Count() = %d, want 10000", got)
	}
	q := h.Quantile(0.5)
	if q < 0 || q > 999 {
		t.Fatalf("Quantile(0.5) = %v, want within [0, 999]", q)
	}
	// The underlying data is uniform over [0,1000); the sampled median
	// should land broadly in the middle.
	if q < 200 || q > 800 {
		t.Fatalf("Quantile(0.5) = %v, implausible for uniform data", q)
	}
}

func TestHistogramSnapshotOrdering(t *testing.T) {
	h := NewHistogram(0)
	for i := 0; i < 5000; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if !(s.P50 <= s.P99 && s.P99 <= s.P999 && s.P999 <= s.Max) {
		t.Fatalf("quantiles out of order: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("String() should be non-empty")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(1, 10)
	s.Append(2, 20)
	s.Append(3, 30)
	if s.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", s.Len())
	}
	xs, ys := s.Points()
	if len(xs) != 3 || xs[2] != 3 || ys[2] != 30 {
		t.Fatalf("Points() = %v, %v", xs, ys)
	}
	mean, sd, min, max := s.YStats()
	if mean != 20 || min != 10 || max != 30 {
		t.Fatalf("YStats mean=%v min=%v max=%v", mean, min, max)
	}
	want := math.Sqrt(200.0 / 3.0)
	if math.Abs(sd-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", sd, want)
	}
}

func TestSeriesPointsAreCopies(t *testing.T) {
	var s Series
	s.Append(1, 1)
	xs, _ := s.Points()
	xs[0] = 99
	xs2, _ := s.Points()
	if xs2[0] != 1 {
		t.Fatal("Points() must return copies")
	}
}

func TestMeanStdDevHelpers(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty input should yield 0")
	}
	vs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(vs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := StdDev(vs); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestThroughputWindow(t *testing.T) {
	var s Series
	w := NewThroughputWindow(time.Minute, &s)
	// 1 MiB in the first minute, 2 MiB in the second.
	w.Record(0, 1<<20)
	w.Record(30*time.Second, 0)
	w.Record(time.Minute, 2<<20) // crosses boundary, flushes window 1
	w.Record(2*time.Minute, 0)   // flushes window 2
	xs, ys := s.Points()
	if len(xs) != 2 {
		t.Fatalf("series len = %d, want 2 (%v/%v)", len(xs), xs, ys)
	}
	if math.Abs(ys[0]-1.0/60.0) > 1e-9 {
		t.Fatalf("window1 MB/s = %v, want %v", ys[0], 1.0/60.0)
	}
	if math.Abs(ys[1]-2.0/60.0) > 1e-9 {
		t.Fatalf("window2 MB/s = %v, want %v", ys[1], 2.0/60.0)
	}
	if xs[0] != 1 || xs[1] != 2 {
		t.Fatalf("window end minutes = %v, want [1 2]", xs)
	}
}

func TestThroughputWindowFlushPartial(t *testing.T) {
	var s Series
	w := NewThroughputWindow(time.Minute, &s)
	w.Record(0, 6<<20)
	w.Flush()
	_, ys := s.Points()
	if len(ys) != 1 {
		t.Fatalf("series len = %d, want 1", len(ys))
	}
	if math.Abs(ys[0]-0.1) > 1e-9 { // 6 MiB over a 60 s window
		t.Fatalf("MB/s = %v, want 0.1", ys[0])
	}
}

func TestThroughputWindowGap(t *testing.T) {
	// A long quiet gap is elided: the closed window flushes normally and
	// the idle windows are skipped in one step instead of being appended
	// as a run of zero points (a real-clock idle hour would otherwise
	// add thousands of samples).
	var s Series
	w := NewThroughputWindow(time.Minute, &s)
	w.Record(0, 1<<20)
	w.Record(5*time.Minute, 1<<20)
	xs, ys := s.Points()
	if len(xs) != 1 {
		t.Fatalf("series len = %d, want 1 (%v/%v)", len(xs), xs, ys)
	}
	if xs[0] != 1 {
		t.Fatalf("window end = %v min, want 1", xs[0])
	}
	if got := w.SkippedWindows(); got != 4 {
		t.Fatalf("SkippedWindows() = %d, want 4", got)
	}
	// The second record lands in the window containing its timestamp.
	w.Flush()
	xs, _ = s.Points()
	if len(xs) != 2 || xs[1] != 6 {
		t.Fatalf("after flush xs = %v, want [1 6]", xs)
	}
}

func TestThroughputWindowGapZeroMarker(t *testing.T) {
	// When the open window itself was empty, the flush emits a single
	// zero sample marking the start of the gap before skipping the rest.
	var s Series
	w := NewThroughputWindow(time.Minute, &s)
	w.Record(0, 1<<20)
	w.Record(time.Minute, 0)        // flushes window 1 (1 MiB)
	w.Record(10*time.Minute, 1<<20) // window 2 empty: zero marker + skip
	xs, ys := s.Points()
	if len(xs) != 2 {
		t.Fatalf("series len = %d, want 2 (%v/%v)", len(xs), xs, ys)
	}
	if ys[1] != 0 || xs[1] != 2 {
		t.Fatalf("gap marker = (%v, %v), want (2, 0)", xs[1], ys[1])
	}
	if got := w.SkippedWindows(); got != 8 {
		t.Fatalf("SkippedWindows() = %d, want 8", got)
	}
}

func TestQuantilePreservesReservoirOrder(t *testing.T) {
	// Quantile must sort a copy: the reservoir's arrival order is what
	// algorithm R's replacement index addresses, and sorting it in place
	// would make replacement non-uniform over arrival order.
	h := NewHistogram(8)
	in := []float64{5, 3, 9, 1, 7, 2, 8, 4}
	for _, v := range in {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got == 0 {
		t.Fatalf("Quantile(0.5) = %v", got)
	}
	for i, v := range h.samples {
		if v != in[i] {
			t.Fatalf("samples reordered by Quantile: %v, want %v", h.samples, in)
		}
	}
	// Replacement after a query still targets arrival positions.
	for i := 0; i < 1000; i++ {
		h.Observe(100)
		h.Quantile(0.99)
	}
	if got := h.Count(); got != 1008 {
		t.Fatalf("Count() = %d, want 1008", got)
	}
}

func TestHistogramSnapshotConsistentUnderConcurrency(t *testing.T) {
	// Snapshot reads all fields under one lock acquisition; interleaved
	// observations must never yield an internally inconsistent summary
	// such as P99 > Max.
	h := NewHistogram(512)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := float64(g)
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(v)
				v = math.Mod(v*1.7+3, 1000)
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		if !(s.Min <= s.P50 && s.P50 <= s.P99 && s.P99 <= s.P999 && s.P999 <= s.Max) {
			t.Errorf("inconsistent snapshot: %+v", s)
			break
		}
		if s.Mean < s.Min || s.Mean > s.Max {
			t.Errorf("mean out of range: %+v", s)
			break
		}
	}
	close(stop)
	wg.Wait()
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("nil histogram should report zeros")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil Snapshot = %+v", s)
	}
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 || c.Reset() != 0 {
		t.Fatal("nil counter should be a no-op")
	}
	var g *Gauge
	g.Set(5)
	g.Add(1)
	if g.Load() != 0 {
		t.Fatal("nil gauge should be a no-op")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		h := NewHistogram(0)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
