// Package metrics provides the measurement primitives used throughout the
// DirectLoad reproduction: monotonic counters, latency histograms with
// tail-percentile queries, windowed throughput series, and simple summary
// statistics. Everything is safe for concurrent use unless noted otherwise.
//
// The experiments in the paper report throughput in MB/s over one-minute
// windows (Figs. 5-7), latency percentiles in microseconds (Fig. 8), and
// day-granularity series (Figs. 9-10); the types here are shaped around
// exactly those reports.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit counter. All methods are
// no-ops on a nil receiver, so instrumented code can hold nil handles
// (from a nil Registry) and stay allocation-free on the hot path.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Negative n is ignored: counters are
// monotonic by contract.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset sets the counter back to zero and returns the previous value.
func (c *Counter) Reset() int64 {
	if c == nil {
		return 0
	}
	return c.v.Swap(0)
}

// Gauge is a 64-bit value that may go up and down (e.g. live bytes).
// Methods are no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Add adjusts the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram records observations and answers percentile queries. It keeps
// exact values up to a bounded reservoir size; once full it switches to
// uniform reservoir sampling, which is plenty for p99/p99.9 on the run
// lengths used in the experiments. Observe and the query methods are
// no-ops (returning zeros) on a nil receiver.
//
// The reservoir itself is never reordered: algorithm R's replacement
// index addresses arrival order, so quantile queries sort a cached copy
// instead of the live slice.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  []float64 // cached sorted copy of samples; nil when stale
	count   int64
	sum     float64
	min     float64
	max     float64
	limit   int
	rng     uint64 // xorshift state for reservoir sampling
}

// NewHistogram returns a histogram with the given reservoir capacity.
// A capacity of 0 selects the default of 262144 samples.
func NewHistogram(capacity int) *Histogram {
	if capacity <= 0 {
		capacity = 1 << 18
	}
	return &Histogram{
		limit: capacity,
		min:   math.Inf(1),
		max:   math.Inf(-1),
		rng:   0x9E3779B97F4A7C15,
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.sorted = nil
	if len(h.samples) < h.limit {
		h.samples = append(h.samples, v)
		return
	}
	// Vitter's algorithm R: replace a random existing sample with
	// probability limit/count.
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if idx := h.rng % uint64(h.count); idx < uint64(h.limit) {
		h.samples[idx] = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of all observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// sortedLocked returns a sorted view of the reservoir, rebuilding the
// cached copy if observations arrived since the last query. The live
// samples slice is never reordered (reservoir replacement addresses
// arrival order). Runs with h.mu held.
func (h *Histogram) sortedLocked() []float64 {
	if h.sorted == nil {
		h.sorted = append([]float64(nil), h.samples...)
		sort.Float64s(h.sorted)
	}
	return h.sorted
}

// quantileSorted computes the q-quantile over a sorted sample set using
// nearest-rank interpolation. Returns 0 when empty.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantile returns the q-quantile (0 <= q <= 1) over the sampled
// observations using nearest-rank interpolation. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantileSorted(h.sortedLocked(), q)
}

// Snapshot bundles the latency statistics the paper reports in Fig. 8.
type Snapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

// Snapshot returns the current summary statistics. All fields are read
// under one lock acquisition, so the result is internally consistent: a
// concurrent Observe can never yield e.g. P99 > Max.
func (h *Histogram) Snapshot() Snapshot {
	if h == nil {
		return Snapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Snapshot{Count: h.count}
	if h.count == 0 {
		return s
	}
	s.Mean = h.sum / float64(h.count)
	s.Min = h.min
	s.Max = h.max
	sorted := h.sortedLocked()
	s.P50 = quantileSorted(sorted, 0.50)
	s.P99 = quantileSorted(sorted, 0.99)
	s.P999 = quantileSorted(sorted, 0.999)
	return s
}

// String renders the snapshot in the style used by EXPERIMENTS.md.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p99=%.0f p99.9=%.0f max=%.0f",
		s.Count, s.Mean, s.P99, s.P999, s.Max)
}

// Series is an append-only (x, y) time series, used for the
// throughput-over-time and occupation-over-time figures.
type Series struct {
	mu sync.Mutex
	xs []float64
	ys []float64
}

// Append records one point.
func (s *Series) Append(x, y float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
}

// Len returns the number of points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.xs)
}

// Points returns copies of the x and y slices.
func (s *Series) Points() (xs, ys []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	xs = append([]float64(nil), s.xs...)
	ys = append([]float64(nil), s.ys...)
	return xs, ys
}

// YStats returns mean, standard deviation, min and max of the y values.
// The standard deviation is the population form, matching the paper's
// "standard deviation of User Write throughput" metric in Fig. 6.
func (s *Series) YStats() (mean, stddev, min, max float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return summarize(s.ys)
}

func summarize(ys []float64) (mean, stddev, min, max float64) {
	if len(ys) == 0 {
		return 0, 0, 0, 0
	}
	min, max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, y := range ys {
		sum += y
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	mean = sum / float64(len(ys))
	var varsum float64
	for _, y := range ys {
		d := y - mean
		varsum += d * d
	}
	stddev = math.Sqrt(varsum / float64(len(ys)))
	return mean, stddev, min, max
}

// Mean computes the arithmetic mean of vs (0 for empty input).
func Mean(vs []float64) float64 {
	m, _, _, _ := summarize(vs)
	return m
}

// StdDev computes the population standard deviation of vs.
func StdDev(vs []float64) float64 {
	_, sd, _, _ := summarize(vs)
	return sd
}

// ThroughputWindow accumulates byte counts and emits one MB/s sample per
// fixed window of simulated (or real) time. It reproduces the per-minute
// sampling the paper uses for Figs. 5 and 6.
type ThroughputWindow struct {
	mu       sync.Mutex
	window   time.Duration
	start    time.Duration // current window start on the supplied clock
	bytes    int64
	skipped  int64 // idle windows elided from the series
	series   *Series
	anchored bool
}

// NewThroughputWindow creates a windowed throughput recorder emitting into
// series; window must be positive.
func NewThroughputWindow(window time.Duration, series *Series) *ThroughputWindow {
	if window <= 0 {
		panic("metrics: non-positive throughput window")
	}
	return &ThroughputWindow{window: window, series: series}
}

// Record adds n bytes at time now (any monotonically non-decreasing clock,
// e.g. the SSD simulator's virtual clock). When now crosses a window
// boundary, the just-closed window is appended to the series as
// (windowEndMinutes, MB/s).
//
// Idle gaps are elided: if more than one whole window elapsed with no
// recorded bytes, the closed window is emitted (possibly as a single
// zero sample marking the gap's start) and the remaining empty windows
// are skipped in one step rather than appended as a run of zero points.
// This deviates from the strict Fig. 5/6 per-minute semantics — those
// plots show a contiguous minute axis — but a long idle stretch on a
// real clock would otherwise flood the series with thousands of zeros.
// SkippedWindows reports how many windows were elided, so a renderer can
// reconstruct the contiguous axis if needed.
func (t *ThroughputWindow) Record(now time.Duration, n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.anchored {
		t.start = now
		t.anchored = true
	}
	if now-t.start >= t.window {
		t.flushLocked()
		if gap := now - t.start; gap >= t.window {
			skip := int64(gap / t.window)
			t.start += time.Duration(skip) * t.window
			t.skipped += skip
		}
	}
	t.bytes += n
}

// SkippedWindows returns how many fully idle windows were elided from
// the series (see Record).
func (t *ThroughputWindow) SkippedWindows() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.skipped
}

// Flush emits the current partial window if it holds any bytes.
func (t *ThroughputWindow) Flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bytes > 0 {
		t.flushLocked()
	}
}

func (t *ThroughputWindow) flushLocked() {
	end := t.start + t.window
	mbps := float64(t.bytes) / (1 << 20) / t.window.Seconds()
	t.series.Append(end.Minutes(), mbps)
	t.start = end
	t.bytes = 0
}
