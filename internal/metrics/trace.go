package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// defaultTraceCap is the ring size when NewTracer is given 0.
const defaultTraceCap = 1024

// SpanRecord is one completed span: a named, timestamped interval such
// as a GC cycle, an AOF rotation, a relay hop, or a recovery phase.
type SpanRecord struct {
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur"`
	Err   string        `json:"err,omitempty"`
}

// Tracer keeps a bounded ring buffer of completed spans plus a latency
// histogram per span name, so rare events (GC cycles, rotations,
// recoveries) stay inspectable after the fact without unbounded memory.
// All methods are safe for concurrent use and no-ops on a nil receiver.
type Tracer struct {
	mu    sync.Mutex
	ring  []SpanRecord
	next  int // overwrite cursor once the ring is full
	limit int
	total int64
	hists map[string]*Histogram
}

// NewTracer returns a tracer holding the most recent capacity spans
// (0 selects the default of 1024).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultTraceCap
	}
	return &Tracer{
		ring:  make([]SpanRecord, 0, capacity),
		limit: capacity,
		hists: make(map[string]*Histogram),
	}
}

// noopEnd is the closer handed out by a nil tracer; a shared value keeps
// the nil path allocation-free.
var noopEnd = func(error) {}

// Span starts a span and returns its closer. Call the closer exactly
// once, passing the operation's error (nil for success):
//
//	end := tracer.Span("gc.cycle")
//	...
//	end(err)
func (t *Tracer) Span(name string) func(err error) {
	if t == nil {
		return noopEnd
	}
	start := time.Now()
	return func(err error) {
		t.record(name, start, time.Since(start), err)
	}
}

func (t *Tracer) record(name string, start time.Time, dur time.Duration, err error) {
	rec := SpanRecord{Name: name, Start: start, Dur: dur}
	if err != nil {
		rec.Err = err.Error()
	}
	t.mu.Lock()
	t.total++
	if len(t.ring) < t.limit {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
		t.next = (t.next + 1) % t.limit
	}
	h := t.hists[name]
	if h == nil {
		h = NewHistogram(registryHistCap)
		t.hists[name] = h
	}
	t.mu.Unlock()
	h.Observe(float64(dur) / float64(time.Microsecond))
}

// Count returns how many spans were ever recorded (including those that
// have been overwritten in the ring).
func (t *Tracer) Count() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the retained spans in chronological order (oldest
// first).
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Latencies returns a consistent latency summary per span name.
func (t *Tracer) Latencies() map[string]Snapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	hists := make(map[string]*Histogram, len(t.hists))
	for k, v := range t.hists {
		hists[k] = v
	}
	t.mu.Unlock()
	out := make(map[string]Snapshot, len(hists))
	for k, h := range hists {
		out[k] = h.Snapshot()
	}
	return out
}

// WriteTo dumps the per-name latency summaries followed by the retained
// spans, newest last — the /debug/trace page.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	var total int64
	write := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	lat := t.Latencies()
	names := make([]string, 0, len(lat))
	for name := range lat {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := lat[name]
		if err := write("span %s count=%d mean_us=%.1f p99_us=%.1f max_us=%.1f\n",
			name, s.Count, s.Mean, s.P99, s.Max); err != nil {
			return total, err
		}
	}
	for _, rec := range t.Spans() {
		suffix := ""
		if rec.Err != "" {
			suffix = " err=" + rec.Err
		}
		if err := write("%s %s %s%s\n",
			rec.Start.Format(time.RFC3339Nano), rec.Name, rec.Dur, suffix); err != nil {
			return total, err
		}
	}
	return total, nil
}
