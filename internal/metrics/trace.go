package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// defaultTraceCap is the ring size when NewTracer is given 0.
const defaultTraceCap = 1024

// SpanRecord is one completed span: a named, timestamped interval such
// as a GC cycle, an AOF rotation, a relay hop, or a recovery phase.
// Spans created inside a distributed trace (see StartSpan) additionally
// carry their trace lineage; process-local spans leave those fields 0.
type SpanRecord struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Dur      time.Duration `json:"dur"`
	Err      string        `json:"err,omitempty"`
	TraceID  uint64        `json:"trace_id,omitempty"`
	SpanID   uint64        `json:"span_id,omitempty"`
	ParentID uint64        `json:"parent_id,omitempty"`
	Note     string        `json:"note,omitempty"`
	// Node names the process that recorded the span. Local tracers
	// leave it empty; the cross-node TraceCollector stamps it while
	// merging exports, so a fleet-wide timeline says which machine
	// each span ran on.
	Node string `json:"node,omitempty"`
}

// Tracer keeps a bounded ring buffer of completed spans plus a latency
// histogram per span name, so rare events (GC cycles, rotations,
// recoveries) stay inspectable after the fact without unbounded memory.
// All methods are safe for concurrent use and no-ops on a nil receiver.
type Tracer struct {
	mu    sync.Mutex
	ring  []SpanRecord
	next  int // overwrite cursor once the ring is full
	limit int
	total int64
	hists map[string]*Histogram
}

// NewTracer returns a tracer holding the most recent capacity spans
// (0 selects the default of 1024).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultTraceCap
	}
	return &Tracer{
		ring:  make([]SpanRecord, 0, capacity),
		limit: capacity,
		hists: make(map[string]*Histogram),
	}
}

// noopEnd is the closer handed out by a nil tracer; a shared value keeps
// the nil path allocation-free.
var noopEnd = func(error) {}

// Span starts a span and returns its closer. Call the closer exactly
// once, passing the operation's error (nil for success):
//
//	end := tracer.Span("gc.cycle")
//	...
//	end(err)
func (t *Tracer) Span(name string) func(err error) {
	if t == nil {
		return noopEnd
	}
	start := time.Now()
	return func(err error) {
		t.record(name, start, time.Since(start), err)
	}
}

func (t *Tracer) record(name string, start time.Time, dur time.Duration, err error) {
	rec := SpanRecord{Name: name, Start: start, Dur: dur}
	if err != nil {
		rec.Err = err.Error()
	}
	t.RecordSpan(rec)
}

// RecordSpan inserts a pre-built record — the escape hatch for spans
// whose duration is not wall time (e.g. the network simulator's virtual
// ship times) or that were completed elsewhere. No-op on a nil tracer.
func (t *Tracer) RecordSpan(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total++
	if len(t.ring) < t.limit {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
		t.next = (t.next + 1) % t.limit
	}
	h := t.hists[rec.Name]
	if h == nil {
		h = NewHistogram(registryHistCap)
		t.hists[rec.Name] = h
	}
	t.mu.Unlock()
	h.Observe(float64(rec.Dur) / float64(time.Microsecond))
}

// Count returns how many spans were ever recorded (including those that
// have been overwritten in the ring).
func (t *Tracer) Count() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the retained spans in chronological order (oldest
// first).
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Latencies returns a consistent latency summary per span name.
func (t *Tracer) Latencies() map[string]Snapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	hists := make(map[string]*Histogram, len(t.hists))
	for k, v := range t.hists {
		hists[k] = v
	}
	t.mu.Unlock()
	out := make(map[string]Snapshot, len(hists))
	for k, h := range hists {
		out[k] = h.Snapshot()
	}
	return out
}

// Trace returns the retained spans of one trace in start order
// (stable-sorted, so equal timestamps keep ring order).
func (t *Tracer) Trace(id uint64) []SpanRecord {
	if t == nil || id == 0 {
		return nil
	}
	var out []SpanRecord
	for _, rec := range t.Spans() {
		if rec.TraceID == id {
			out = append(out, rec)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// WriteTrace renders one trace as an indented timeline: each span on a
// line with its offset from the trace's first span, duration, note and
// error, children nested under their parents. Spans whose parent was
// evicted from the ring surface at top level rather than vanishing.
func (t *Tracer) WriteTrace(w io.Writer, id uint64) (int64, error) {
	spans := t.Trace(id)
	var total int64
	write := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if len(spans) == 0 {
		return total, write("trace %016x: no spans retained\n", id)
	}
	t0 := spans[0].Start
	byID := make(map[uint64]bool, len(spans))
	children := make(map[uint64][]SpanRecord, len(spans))
	var roots []SpanRecord
	for _, s := range spans {
		byID[s.SpanID] = true
	}
	for _, s := range spans {
		if s.ParentID != 0 && byID[s.ParentID] {
			children[s.ParentID] = append(children[s.ParentID], s)
		} else {
			roots = append(roots, s)
		}
	}
	if err := write("trace %016x: %d spans\n", id, len(spans)); err != nil {
		return total, err
	}
	var dump func(s SpanRecord, depth int) error
	dump = func(s SpanRecord, depth int) error {
		suffix := ""
		if s.Note != "" {
			suffix += " " + s.Note
		}
		if s.Err != "" {
			suffix += " err=" + s.Err
		}
		if err := write("%*s+%-12s %-28s %12s%s\n",
			2*depth, "", s.Start.Sub(t0).Round(time.Microsecond).String(),
			s.Name, s.Dur.Round(time.Microsecond), suffix); err != nil {
			return err
		}
		for _, c := range children[s.SpanID] {
			if err := dump(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := dump(r, 1); err != nil {
			return total, err
		}
	}
	return total, nil
}

// WriteTo dumps the per-name latency summaries followed by the retained
// spans, newest last — the /debug/trace page.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	var total int64
	write := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	lat := t.Latencies()
	names := make([]string, 0, len(lat))
	for name := range lat {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := lat[name]
		if err := write("span %s count=%d mean_us=%.1f p99_us=%.1f max_us=%.1f\n",
			name, s.Count, s.Mean, s.P99, s.Max); err != nil {
			return total, err
		}
	}
	for _, rec := range t.Spans() {
		suffix := ""
		if rec.TraceID != 0 {
			suffix += fmt.Sprintf(" trace=%016x", rec.TraceID)
		}
		if rec.Note != "" {
			suffix += " " + rec.Note
		}
		if rec.Err != "" {
			suffix += " err=" + rec.Err
		}
		if err := write("%s %s %s%s\n",
			rec.Start.Format(time.RFC3339Nano), rec.Name, rec.Dur, suffix); err != nil {
			return total, err
		}
	}
	return total, nil
}
