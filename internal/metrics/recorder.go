package metrics

import (
	"encoding/json"
	"os"
	"sync"
	"time"
)

// defaultRecordInterval is the snapshot cadence when RecorderConfig
// leaves Interval zero.
const defaultRecordInterval = time.Second

// RecorderConfig shapes a time-series recorder.
type RecorderConfig struct {
	// Path is the JSONL artifact file, opened in append mode so
	// restarts extend the series instead of truncating it.
	Path string
	// Interval is the snapshot cadence (default 1 s).
	Interval time.Duration
	// Registry supplies throughput counters and the latency histogram.
	Registry *Registry
	// SLOs are snapshotted into every sample.
	SLOs []*SLO
	// Events, when non-nil, contributes the events emitted since the
	// previous sample, so each JSONL line explains its own dip.
	Events *EventLog
	// RateCounters name the registry counters whose summed delta per
	// elapsed second is the sample's throughput (e.g. server.ops.get,
	// server.ops.put).
	RateCounters []string
	// LatencyHistogram names the registry histogram whose p99 (µs) is
	// recorded per sample.
	LatencyHistogram string
	// Runtime, when non-nil, contributes Go-runtime telemetry (heap,
	// GC, goroutines) to every sample.
	Runtime *RuntimeSampler
	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
}

// RecorderSample is one JSONL line of the recorded series: a timestamp,
// the SLO state, derived throughput, tail latency, and the structured
// events that happened since the previous line.
type RecorderSample struct {
	TS            time.Time     `json:"ts"`
	SLO           []SLOSnapshot `json:"slo,omitempty"`
	ThroughputOps float64       `json:"throughput_ops_s"`
	P99Us         float64       `json:"p99_us"`
	Events        []Event       `json:"events,omitempty"`

	// Runtime telemetry, present when RecorderConfig.Runtime is set.
	HeapLiveBytes   uint64  `json:"heap_live_bytes,omitempty"`
	HeapGoalBytes   uint64  `json:"heap_goal_bytes,omitempty"`
	Goroutines      int64   `json:"goroutines,omitempty"`
	GCPauseP99Us    float64 `json:"gc_pause_p99_us,omitempty"`
	GCCPUFraction   float64 `json:"gc_cpu_fraction,omitempty"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes,omitempty"`
}

// Recorder appends periodic RecorderSample lines to a JSONL artifact —
// the flight recorder a chaos run or a canary deploy is judged against
// after the fact. Start launches the ticker; SampleNow records one line
// on demand; Close stops the ticker and syncs the file.
type Recorder struct {
	cfg  RecorderConfig
	file *os.File

	mu       sync.Mutex
	lastOps  int64
	lastTime time.Time
	lastSeq  uint64
	samples  int64

	stop     chan struct{}
	done     chan struct{}
	startOne sync.Once
	closeOne sync.Once
}

// NewRecorder opens (creating or appending to) cfg.Path and returns a
// recorder ready to Start. The first sample's throughput is measured
// from construction time.
func NewRecorder(cfg RecorderConfig) (*Recorder, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = defaultRecordInterval
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	f, err := os.OpenFile(cfg.Path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	r := &Recorder{
		cfg:  cfg,
		file: f,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	r.lastOps = r.sumRateCounters()
	r.lastTime = cfg.Now()
	r.lastSeq = cfg.Events.LastSeq()
	return r, nil
}

// Start launches the periodic snapshot goroutine. Safe to call once;
// further calls are no-ops.
func (r *Recorder) Start() {
	if r == nil {
		return
	}
	r.startOne.Do(func() {
		go r.loop()
	})
}

func (r *Recorder) loop() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.SampleNow()
		case <-r.stop:
			return
		}
	}
}

// SampleNow takes one snapshot and appends it to the artifact file,
// returning the sample written. Safe for concurrent use with the
// ticker; each call produces exactly one JSONL line.
func (r *Recorder) SampleNow() (RecorderSample, error) {
	if r == nil {
		return RecorderSample{}, nil
	}
	now := r.cfg.Now()
	ops := r.sumRateCounters()
	seq := r.cfg.Events.LastSeq()
	rt := r.cfg.Runtime.Last() // before r.mu: Last may take its own sample

	r.mu.Lock()
	defer r.mu.Unlock()
	sample := RecorderSample{TS: now}
	if r.cfg.Runtime != nil {
		sample.HeapLiveBytes = rt.HeapLiveBytes
		sample.HeapGoalBytes = rt.HeapGoalBytes
		sample.Goroutines = rt.Goroutines
		sample.GCPauseP99Us = rt.GCPauseP99Us
		sample.GCCPUFraction = rt.GCCPUFraction
		sample.TotalAllocBytes = rt.TotalAllocBytes
	}
	if elapsed := now.Sub(r.lastTime).Seconds(); elapsed > 0 {
		sample.ThroughputOps = float64(ops-r.lastOps) / elapsed
	}
	if r.cfg.LatencyHistogram != "" {
		sample.P99Us = r.cfg.Registry.Histogram(r.cfg.LatencyHistogram).Snapshot().P99
	}
	for _, s := range r.cfg.SLOs {
		if s == nil {
			continue
		}
		sample.SLO = append(sample.SLO, s.Snapshot())
	}
	sample.Events = r.cfg.Events.Since(r.lastSeq, 0)
	line, err := json.Marshal(sample)
	if err != nil {
		return sample, err
	}
	if _, err := r.file.Write(append(line, '\n')); err != nil {
		return sample, err
	}
	r.lastOps = ops
	r.lastTime = now
	r.lastSeq = seq
	r.samples++
	return sample, nil
}

// sumRateCounters loads and sums the configured throughput counters.
func (r *Recorder) sumRateCounters() int64 {
	var total int64
	for _, name := range r.cfg.RateCounters {
		total += r.cfg.Registry.Counter(name).Load()
	}
	return total
}

// Samples returns how many lines this recorder has written.
func (r *Recorder) Samples() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samples
}

// Close stops the ticker goroutine (if started) and closes the file.
// Safe to call more than once.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	var err error
	r.closeOne.Do(func() {
		close(r.stop)
		r.startOne.Do(func() { close(r.done) }) // never started: unblock the wait
		<-r.done
		err = r.file.Close()
	})
	return err
}
