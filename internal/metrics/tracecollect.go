package metrics

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceExport is the machine-readable payload served by the operator
// endpoint /debug/trace/export?id=: one node's retained spans for one
// trace, plus the node's self-reported identity.
type TraceExport struct {
	Node    string       `json:"node,omitempty"`
	TraceID string       `json:"trace_id"` // hex, matching ?id=
	Spans   []SpanRecord `json:"spans"`
}

// NodeTrace is one node's contribution to a collected trace — either
// its spans or the fetch error that kept them out of the merge.
type NodeTrace struct {
	Endpoint string       `json:"endpoint"`
	Node     string       `json:"node,omitempty"`
	Spans    []SpanRecord `json:"spans,omitempty"`
	Err      string       `json:"err,omitempty"`
}

// MergedTrace is one trace's fleet-wide timeline: every span fetched
// from every reachable node (plus the collector's local tracer, when
// attached), node-stamped and start-sorted.
type MergedTrace struct {
	TraceID uint64       `json:"trace_id"`
	Nodes   []NodeTrace  `json:"nodes"`
	Spans   []SpanRecord `json:"spans"`
}

// NodeCount returns how many distinct nodes contributed at least one
// span to the merged timeline.
func (m MergedTrace) NodeCount() int {
	seen := make(map[string]bool)
	for _, s := range m.Spans {
		seen[s.Node] = true
	}
	return len(seen)
}

// TraceCollector fetches one trace ID's spans from every node's
// operator endpoint and merges them into a single fleet-wide timeline —
// the cross-node view a quorum write otherwise loses at each process
// boundary. The zero value needs only Endpoints; Collect is safe for
// concurrent use.
type TraceCollector struct {
	// Endpoints are operator HTTP addresses ("host:port" or full
	// http:// URLs), one per node — the same addresses qindbd's
	// -metrics-addr binds.
	Endpoints []string
	// Local, when non-nil, contributes the collector's own in-process
	// spans (e.g. the fleet router's) labeled LocalNode.
	Local *Tracer
	// LocalNode names the local tracer's spans (default "local").
	LocalNode string
	// Client overrides the HTTP client (default: 5 s timeout).
	Client *http.Client
}

// errNoSpans is returned when every endpoint answered but none retained
// the trace.
var errNoSpans = errors.New("metrics: no spans retained for trace")

// Collect fetches the trace from every endpoint in parallel and merges
// the results. It returns an error only when nothing was collected at
// all — per-node failures are reported in the Nodes slice so a partial
// fleet still yields a partial timeline.
func (c *TraceCollector) Collect(ctx context.Context, id uint64) (MergedTrace, error) {
	out := MergedTrace{TraceID: id, Nodes: make([]NodeTrace, len(c.Endpoints))}
	client := c.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	var wg sync.WaitGroup
	for i, ep := range c.Endpoints {
		wg.Add(1)
		go func(i int, ep string) {
			defer wg.Done()
			out.Nodes[i] = fetchNodeTrace(ctx, client, ep, id)
		}(i, ep)
	}
	wg.Wait()
	if c.Local != nil {
		node := c.LocalNode
		if node == "" {
			node = "local"
		}
		out.Nodes = append(out.Nodes, NodeTrace{Endpoint: "(local)", Node: node, Spans: c.Local.Trace(id)})
	}
	fetched := false
	for i := range out.Nodes {
		nt := &out.Nodes[i]
		if nt.Err == "" {
			fetched = true
		}
		if nt.Node == "" {
			nt.Node = nt.Endpoint
		}
		for _, s := range nt.Spans {
			if s.Node == "" {
				s.Node = nt.Node
			}
			out.Spans = append(out.Spans, s)
		}
	}
	sort.SliceStable(out.Spans, func(i, j int) bool { return out.Spans[i].Start.Before(out.Spans[j].Start) })
	if !fetched {
		var errs []error
		for _, nt := range out.Nodes {
			errs = append(errs, fmt.Errorf("%s: %s", nt.Endpoint, nt.Err))
		}
		return out, fmt.Errorf("metrics: trace collect %016x: %w", id, errors.Join(errs...))
	}
	if len(out.Spans) == 0 {
		return out, fmt.Errorf("%w %016x", errNoSpans, id)
	}
	return out, nil
}

// fetchNodeTrace GETs one node's /debug/trace/export for the trace.
func fetchNodeTrace(ctx context.Context, client *http.Client, endpoint string, id uint64) NodeTrace {
	nt := NodeTrace{Endpoint: endpoint}
	url := endpoint
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + fmt.Sprintf("/debug/trace/export?id=%016x", id)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		nt.Err = err.Error()
		return nt
	}
	resp, err := client.Do(req)
	if err != nil {
		nt.Err = err.Error()
		return nt
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		nt.Err = fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
		return nt
	}
	var export TraceExport
	if err := json.NewDecoder(resp.Body).Decode(&export); err != nil {
		nt.Err = "decoding export: " + err.Error()
		return nt
	}
	nt.Node = export.Node
	nt.Spans = export.Spans
	return nt
}

// WriteTimeline renders the merged trace as one indented timeline in
// the style of Tracer.WriteTrace, with each span prefixed by the node
// that recorded it. Children nest under their parents even across node
// boundaries — that is the point of collecting: a remote server span
// whose parent is the router's client span renders under it.
func (m MergedTrace) WriteTimeline(w io.Writer) (int64, error) {
	var total int64
	write := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	for _, nt := range m.Nodes {
		if nt.Err != "" {
			if err := write("# %s (%s): %s\n", nt.Node, nt.Endpoint, nt.Err); err != nil {
				return total, err
			}
		}
	}
	if len(m.Spans) == 0 {
		return total, write("trace %016x: no spans retained on any node\n", m.TraceID)
	}
	nodeWidth := 0
	byID := make(map[uint64]bool, len(m.Spans))
	children := make(map[uint64][]SpanRecord, len(m.Spans))
	var roots []SpanRecord
	for _, s := range m.Spans {
		byID[s.SpanID] = true
		if len(s.Node) > nodeWidth {
			nodeWidth = len(s.Node)
		}
	}
	for _, s := range m.Spans {
		if s.ParentID != 0 && byID[s.ParentID] {
			children[s.ParentID] = append(children[s.ParentID], s)
		} else {
			roots = append(roots, s)
		}
	}
	t0 := m.Spans[0].Start
	if err := write("trace %016x: %d spans across %d node(s)\n",
		m.TraceID, len(m.Spans), m.NodeCount()); err != nil {
		return total, err
	}
	var dump func(s SpanRecord, depth int) error
	dump = func(s SpanRecord, depth int) error {
		suffix := ""
		if s.Note != "" {
			suffix += " " + s.Note
		}
		if s.Err != "" {
			suffix += " err=" + s.Err
		}
		if err := write("[%-*s] %*s+%-12s %-28s %12s%s\n",
			nodeWidth, s.Node, 2*depth, "",
			s.Start.Sub(t0).Round(time.Microsecond).String(),
			s.Name, s.Dur.Round(time.Microsecond), suffix); err != nil {
			return err
		}
		for _, c := range children[s.SpanID] {
			if err := dump(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := dump(r, 1); err != nil {
			return total, err
		}
	}
	return total, nil
}
