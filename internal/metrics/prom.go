package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SanitizePromName maps a registry's dotted metric name onto a legal
// Prometheus metric name. The registry's naming convention uses `.` as
// the hierarchy separator and allows `-`; Prometheus allows only
// [a-zA-Z_:][a-zA-Z0-9_:]*. The mapping is:
//
//   - `.` and `-` become `_` (so `server.req.put` → `server_req_put`)
//   - any other illegal character becomes `_`
//   - a leading digit is prefixed with `_`
//   - an empty name becomes `_`
//
// JSON snapshots and the text dump keep the original dotted names; only
// the Prometheus exposition is sanitized.
func SanitizePromName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default: // '.', '-', and anything else illegal
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFamily is one metric family prepared for exposition.
type promFamily struct {
	name string // sanitized
	orig string // registry name, shown in HELP
	typ  string // counter | gauge | summary
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   func() float64
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): counters as `counter`, gauges
// and computed gauges as `gauge`, histograms as `summary` families with
// p50/p99/p99.9 quantiles plus _sum and _count. Names are sanitized via
// SanitizePromName; when two registry names collide after sanitization
// the lexicographically first wins and the rest are skipped (a family
// may not repeat in an exposition). Safe on a nil registry (writes
// nothing).
func (r *Registry) WritePrometheus(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	var fams []promFamily
	r.mu.RLock()
	for k, v := range r.counters {
		fams = append(fams, promFamily{orig: k, typ: "counter", c: v})
	}
	for k, v := range r.gauges {
		fams = append(fams, promFamily{orig: k, typ: "gauge", g: v})
	}
	for k, v := range r.funcs {
		fams = append(fams, promFamily{orig: k, typ: "gauge", fn: v})
	}
	for k, v := range r.hists {
		fams = append(fams, promFamily{orig: k, typ: "summary", h: v})
	}
	r.mu.RUnlock()
	for i := range fams {
		fams[i].name = SanitizePromName(fams[i].orig)
	}
	sort.Slice(fams, func(i, j int) bool {
		if fams[i].name != fams[j].name {
			return fams[i].name < fams[j].name
		}
		return fams[i].orig < fams[j].orig
	})

	var total int64
	write := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	// Values are read outside the registry lock — a GaugeFunc may take
	// subsystem locks of its own (same rule as Snapshot).
	prev := ""
	for _, f := range fams {
		if f.name == prev {
			continue // sanitized collision: first family wins
		}
		prev = f.name
		if err := write("# HELP %s directload metric %s\n# TYPE %s %s\n",
			f.name, f.orig, f.name, f.typ); err != nil {
			return total, err
		}
		var err error
		switch {
		case f.c != nil:
			err = write("%s %d\n", f.name, f.c.Load())
		case f.g != nil:
			err = write("%s %d\n", f.name, f.g.Load())
		case f.fn != nil:
			err = write("%s %g\n", f.name, f.fn())
		case f.h != nil:
			s := f.h.Snapshot()
			for _, q := range [...]struct {
				label string
				v     float64
			}{{"0.5", s.P50}, {"0.99", s.P99}, {"0.999", s.P999}} {
				if err = write("%s{quantile=%q} %g\n", f.name, q.label, q.v); err != nil {
					return total, err
				}
			}
			if err = write("%s_sum %g\n", f.name, s.Mean*float64(s.Count)); err != nil {
				return total, err
			}
			err = write("%s_count %d\n", f.name, s.Count)
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
