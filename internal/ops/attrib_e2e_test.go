package ops

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/metrics"
	"directload/internal/resp"
	"directload/internal/server"
	"directload/internal/ssd"
)

// TestAttributionE2EBothFrontDoors is the acceptance check for per-op
// attribution: one engine, one Backend, a native v2 listener AND a RESP
// listener on top of it, real traffic through both wires, and
// /debug/attrib reporting alloc bytes/op for the opcodes each front
// door exercised — in one shared table.
func TestAttributionE2EBothFrontDoors(t *testing.T) {
	dev, err := ssd.NewDevice(ssd.DefaultConfig(64 << 20))
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF: aof.Config{FileSize: 4 << 20, GCThreshold: 0.25}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	srv := server.New(db)
	srv.SetLogf(nil)
	srv.SetMetrics(metrics.NewRegistry())
	srv.SetAttribution(1) // measure every request: deterministic counts
	backend := srv.Backend()

	nativeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(nativeLn)
	defer srv.Close()

	respSrv := resp.New(backend)
	respSrv.SetLogf(nil)
	respLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go respSrv.Serve(respLn)
	defer respSrv.Close()

	opsSrv := httptest.NewServer(NewMux(Config{Attrib: backend.Attribution}))
	defer opsSrv.Close()

	// Native v2 traffic: puts.
	cl, err := server.Dial(nativeLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	val := make([]byte, 2048)
	for i := 0; i < 16; i++ {
		key := []byte{'k', byte('0' + i%10), byte('a' + i/10)}
		if err := cl.PutContext(ctx, key, 1, val, false); err != nil {
			t.Fatal(err)
		}
	}

	// RESP traffic: gets of the same keys through the other front door.
	rc, err := resp.Dial(respLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	for i := 0; i < 16; i++ {
		key := string([]byte{'k', byte('0' + i%10), byte('a' + i/10)})
		reply, err := rc.Do("GET", key)
		if err != nil {
			t.Fatal(err)
		}
		if reply.IsNil() || len(reply.Bulk) != len(val) {
			t.Fatalf("RESP GET %q = %+v, want the native put's value", key, reply)
		}
	}

	// One table, both wires.
	code, body, _ := get(t, opsSrv, "/debug/attrib?format=json")
	if code != 200 {
		t.Fatalf("/debug/attrib = %d: %s", code, body)
	}
	var snap metrics.AttribSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("bad json: %v\n%s", err, body)
	}
	byOp := make(map[string]metrics.AttribEntry)
	for _, e := range snap.Entries {
		byOp[e.Op] = e
	}
	putE, ok := byOp["put"]
	if !ok || putE.Samples < 16 {
		t.Fatalf("native put traffic missing from table: %+v", snap.Entries)
	}
	getE, ok := byOp["get"]
	if !ok || getE.Samples < 16 {
		t.Fatalf("RESP get traffic missing from table: %+v", snap.Entries)
	}
	if putE.AllocBytesPerOp <= 0 || getE.AllocBytesPerOp <= 0 {
		t.Fatalf("alloc bytes/op not attributed: put=%+v get=%+v", putE, getE)
	}
	// The text form renders the same table.
	code, text, _ := get(t, opsSrv, "/debug/attrib")
	if code != 200 || !strings.Contains(text, "put") || !strings.Contains(text, "get") {
		t.Fatalf("text form = %d:\n%s", code, text)
	}
}

// TestProfileCaptureFleet drives metrics.ProfileCapture against two
// real ops servers — the path `qindbctl profile -nodes` takes — and
// checks one valid windowed pprof delta lands per node.
func TestProfileCaptureFleet(t *testing.T) {
	var endpoints []string
	for i := 0; i < 2; i++ {
		s, err := Listen("127.0.0.1:0", Config{EnablePprof: true})
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve()
		t.Cleanup(func() {
			s.Shutdown(context.Background())
		})
		endpoints = append(endpoints, s.Addr())
	}

	dir := t.TempDir()
	pc := &metrics.ProfileCapture{Endpoints: endpoints, Type: "allocs", Seconds: 1}
	results, err := pc.CaptureTo(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Endpoint, r.Err)
		}
		fi, err := os.Stat(r.Path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 || fi.Size() != r.Bytes {
			t.Fatalf("%s: size %d vs reported %d", r.Path, fi.Size(), r.Bytes)
		}
		if !strings.HasSuffix(r.Path, ".allocs.pprof") {
			t.Fatalf("unexpected capture filename %q", r.Path)
		}
	}
}
