package ops

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/fleet"
	"directload/internal/metrics"
	"directload/internal/server"
	"directload/internal/ssd"
)

// obsClock is a controllable clock shared by the SLO tracker and the
// recorder, so sliding windows advance when the test says so.
type obsClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *obsClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *obsClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// obsNode is one restartable storage node with its own metrics registry
// and its own operator HTTP endpoint — three separate processes in
// miniature, which is what makes the trace merge meaningful.
type obsNode struct {
	t    *testing.T
	name string
	addr string
	db   *core.DB
	srv  *server.Server
	reg  *metrics.Registry
	ops  *Server
}

func startObsNode(t *testing.T, name string) *obsNode {
	t.Helper()
	dev, err := ssd.NewDevice(ssd.DefaultConfig(64 << 20))
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF: aof.Config{FileSize: 4 << 20, GCThreshold: 0.25}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := &obsNode{t: t, name: name, db: db, reg: metrics.NewRegistry()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.addr = ln.Addr().String()
	n.serve(ln)
	n.ops, err = Listen("127.0.0.1:0", Config{Registry: n.reg, Node: name})
	if err != nil {
		t.Fatal(err)
	}
	go n.ops.Serve()
	t.Cleanup(func() {
		n.stop()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		n.ops.Shutdown(ctx)
		cancel()
		db.Close()
	})
	return n
}

func (n *obsNode) serve(ln net.Listener) {
	s := server.New(n.db)
	s.SetLogf(nil)
	s.SetMetrics(n.reg)
	go s.Serve(ln)
	for s.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	n.srv = s
}

// stop kills the storage port; the engine and the operator endpoint
// stay up, like a wedged server whose sidecar still answers.
func (n *obsNode) stop() {
	if n.srv != nil {
		n.srv.Close()
		n.srv = nil
	}
}

func (n *obsNode) restart() {
	n.t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", n.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		n.t.Fatalf("rebind %s: %v", n.addr, err)
	}
	n.serve(ln)
}

// eventSeq returns the sequence number of the first event of the given
// type, or 0 when absent.
func eventSeq(evs []metrics.Event, typ metrics.EventType) uint64 {
	for _, e := range evs {
		if e.Type == typ {
			return e.Seq
		}
	}
	return 0
}

// TestFleetObservabilityE2E is the acceptance run for the observability
// spine: a 3-node fleet takes quorum writes and hedged reads through an
// injected outage, and the test asserts what an operator would see —
// /slo burning during the outage and recovering after, /events telling
// the breaker/handoff story in order, one trace id merging spans from
// several nodes, and the recorder capturing the dip as JSONL snapshots.
func TestFleetObservabilityE2E(t *testing.T) {
	clock := &obsClock{t: time.Now()}
	n1 := startObsNode(t, "dc1-n1")
	n2 := startObsNode(t, "dc1-n2")
	n3 := startObsNode(t, "dc1-n3")

	routerReg := metrics.NewRegistry()
	events := metrics.NewEventLog(0)
	slo := metrics.NewSLO(metrics.SLOConfig{
		Name:   "fleet.read",
		Target: 0.006, // the paper's 0.6 % read-miss objective
		Events: events,
		Now:    clock.now,
	})
	slo.Register(routerReg)

	f, err := fleet.New(fleet.Config{
		Groups:           [][]string{{n1.addr, n2.addr, n3.addr}},
		Replicas:         3,
		WriteQuorum:      2,
		WriteRetries:     1,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
		ProbeInterval:    -1,
		Metrics:          routerReg,
		SLO:              slo,
		Events:           events,
		OpsAddrs:         []string{n1.ops.Addr(), n2.ops.Addr(), n3.ops.Addr()},
		DialOpts: []server.DialOption{
			server.WithTimeout(2 * time.Second),
			server.WithMetrics(routerReg),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// The router's own operator endpoint: /slo and /events below are
	// asserted through HTTP, the way an operator would read them.
	routerSrv := httptest.NewServer(NewMux(Config{
		Registry: routerReg,
		Node:     "fleet-router",
		SLOs:     []*metrics.SLO{slo},
		Events:   events,
		Fleet:    f.Status,
	}))
	defer routerSrv.Close()

	// The recorder writes to $RECORD_ARTIFACT when set (CI uploads it)
	// and to a scratch file otherwise.
	artifact := os.Getenv("RECORD_ARTIFACT")
	if artifact == "" {
		artifact = filepath.Join(t.TempDir(), "fleet_obs.jsonl")
	}
	rec, err := metrics.NewRecorder(metrics.RecorderConfig{
		Path:             artifact,
		Registry:         routerReg,
		SLOs:             []*metrics.SLO{slo},
		Events:           events,
		RateCounters:     []string{"fleet.read.requests"},
		LatencyHistogram: "fleet.read.latency_us",
		Now:              clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	ctx := context.Background()

	// --- phase 1: healthy fleet, one traced write+read ---------------
	tctx, endSpan := routerReg.StartSpan(ctx, "e2e.fleet")
	sc, ok := metrics.SpanFromContext(tctx)
	if !ok {
		t.Fatal("no span in traced context")
	}
	entries := make([]fleet.Entry, 8)
	for i := range entries {
		entries[i] = fleet.Entry{
			Key:   []byte{'k', byte('0' + i)},
			Value: []byte{'v', byte('0' + i)},
		}
	}
	if err := f.PublishVersion(tctx, 1, entries); err != nil {
		t.Fatalf("publish v1: %v", err)
	}
	if val, err := f.Get(tctx, []byte("k3"), 1); err != nil || string(val) != "v3" {
		t.Fatalf("healthy Get = %q, %v", val, err)
	}
	endSpan(nil)
	clock.advance(time.Second)
	healthy, err := rec.SampleNow()
	if err != nil {
		t.Fatalf("sample healthy: %v", err)
	}
	if healthy.ThroughputOps <= 0 {
		t.Fatalf("healthy throughput = %v, want > 0", healthy.ThroughputOps)
	}

	// --- merged cross-node trace -------------------------------------
	merged, err := f.CollectTrace(ctx, sc.TraceID)
	if err != nil {
		t.Fatalf("CollectTrace: %v", err)
	}
	if got := merged.NodeCount(); got < 2 {
		t.Fatalf("merged trace covers %d node(s), want >= 2", got)
	}
	byNode := make(map[string]int)
	for _, s := range merged.Spans {
		byNode[s.Node]++
	}
	if byNode["fleet-router"] == 0 {
		t.Fatalf("merged trace missing router spans: %v", byNode)
	}
	if byNode["dc1-n1"]+byNode["dc1-n2"]+byNode["dc1-n3"] == 0 {
		t.Fatalf("merged trace missing storage-node spans: %v", byNode)
	}
	var timeline bytes.Buffer
	if _, err := merged.WriteTimeline(&timeline); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(timeline.Bytes(), []byte("node(s)")) {
		t.Fatalf("timeline header missing:\n%s", timeline.String())
	}

	// --- phase 2: outage ---------------------------------------------
	// One node dies mid-publish: quorum still holds, but its share is
	// hinted and its breaker trips. Then the rest die and reads miss.
	n3.stop()
	if err := f.PublishVersion(ctx, 2, entries); err != nil {
		t.Fatalf("publish v2 with one node down: %v", err)
	}
	n1.stop()
	n2.stop()
	f.ProbeNow() // observe the dead nodes -> node.down events
	for i := 0; i < 4; i++ {
		if _, err := f.Get(ctx, []byte("k3"), 1); err == nil {
			t.Fatal("Get succeeded with every node down")
		}
	}
	clock.advance(time.Second)
	dip, err := rec.SampleNow()
	if err != nil {
		t.Fatalf("sample dip: %v", err)
	}
	if len(dip.SLO) == 0 || dip.SLO[0].TotalBad == 0 {
		t.Fatalf("dip sample shows no bad reads: %+v", dip.SLO)
	}
	if eventSeq(dip.Events, metrics.EventBreakerOpen) == 0 {
		t.Fatalf("dip sample missing breaker.open: %+v", dip.Events)
	}

	// /slo over HTTP: the read objective must be burning.
	code, body, _ := get(t, routerSrv, "/slo?format=json")
	if code != 200 {
		t.Fatalf("/slo = %d: %s", code, body)
	}
	var snaps []metrics.SLOSnapshot
	if err := json.Unmarshal([]byte(body), &snaps); err != nil {
		t.Fatalf("/slo json: %v\n%s", err, body)
	}
	if len(snaps) != 1 || snaps[0].Name != "fleet.read" {
		t.Fatalf("/slo snapshots = %+v", snaps)
	}
	var burn1m float64
	for _, w := range snaps[0].Windows {
		if w.Window == "1m" {
			burn1m = w.BurnRate
		}
	}
	if burn1m < 1 {
		t.Fatalf("1m burn during outage = %v, want >= 1", burn1m)
	}

	// --- phase 3: recovery -------------------------------------------
	n1.restart()
	n2.restart()
	n3.restart()
	time.Sleep(60 * time.Millisecond) // let the breaker cooldown lapse
	f.ProbeNow()                      // node.up, breaker.close, handoff drain
	if !n3.db.Has([]byte("k0"), 2) {
		t.Fatal("recovered node missing hinted v2 writes after drain")
	}
	clock.advance(2 * time.Minute) // slide the bad reads out of the 1m window
	for i := 0; i < 3; i++ {
		if val, err := f.Get(ctx, []byte("k3"), 1); err != nil || string(val) != "v3" {
			t.Fatalf("recovered Get = %q, %v", val, err)
		}
	}
	clock.advance(time.Second)
	recovered, err := rec.SampleNow()
	if err != nil {
		t.Fatalf("sample recovered: %v", err)
	}
	for _, w := range recovered.SLO[0].Windows {
		if w.Window == "1m" && w.BurnRate >= 1 {
			t.Fatalf("1m burn after recovery = %v, want < 1", w.BurnRate)
		}
	}

	// --- /events tells the story in order ----------------------------
	code, body, _ = get(t, routerSrv, "/events?format=json")
	if code != 200 {
		t.Fatalf("/events = %d: %s", code, body)
	}
	var evs []metrics.Event
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("/events json: %v\n%s", err, body)
	}
	seqs := map[metrics.EventType]uint64{}
	for _, typ := range []metrics.EventType{
		metrics.EventBreakerOpen, metrics.EventBreakerClose,
		metrics.EventHandoffEnqueue, metrics.EventHandoffDrain,
		metrics.EventNodeDown, metrics.EventNodeUp,
		metrics.EventSLOBurn, metrics.EventSLOClear,
	} {
		seq := eventSeq(evs, typ)
		if seq == 0 {
			t.Fatalf("/events missing %s:\n%s", typ, body)
		}
		seqs[typ] = seq
	}
	for _, ord := range [][2]metrics.EventType{
		{metrics.EventBreakerOpen, metrics.EventBreakerClose},
		{metrics.EventHandoffEnqueue, metrics.EventHandoffDrain},
		{metrics.EventNodeDown, metrics.EventNodeUp},
		{metrics.EventSLOBurn, metrics.EventSLOClear},
	} {
		if seqs[ord[0]] >= seqs[ord[1]] {
			t.Fatalf("event order wrong: %s (seq %d) should precede %s (seq %d)",
				ord[0], seqs[ord[0]], ord[1], seqs[ord[1]])
		}
	}

	// --- recorder artifact -------------------------------------------
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if n := rec.Samples(); n < 3 {
		t.Fatalf("recorder wrote %d samples, want >= 3", n)
	}
	data, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("artifact has %d lines, want >= 3", len(lines))
	}
	var last metrics.RecorderSample
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatalf("last artifact line not JSON: %v\n%s", err, lines[len(lines)-1])
	}
	if len(last.SLO) == 0 {
		t.Fatalf("last artifact line carries no SLO snapshot: %s", lines[len(lines)-1])
	}
}
