package ops

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"directload/internal/metrics"
)

func TestSLOEndpoint(t *testing.T) {
	slo := metrics.NewSLO(metrics.SLOConfig{
		Name:    "fleet.read",
		Target:  0.5,
		Windows: []time.Duration{time.Minute},
	})
	slo.Record(true)
	slo.Record(false)
	srv := httptest.NewServer(NewMux(Config{SLOs: []*metrics.SLO{slo, nil}}))
	defer srv.Close()

	code, body, _ := get(t, srv, "/slo")
	if code != 200 {
		t.Fatalf("/slo = %d:\n%s", code, body)
	}
	for _, want := range []string{"slo fleet.read target=0.5", "total_good=1 total_bad=1", "1m", "burn=1.00x"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/slo text missing %q:\n%s", want, body)
		}
	}

	code, body, hdr := get(t, srv, "/slo?format=json")
	if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "json") {
		t.Fatalf("json /slo = %d (%s)", code, hdr.Get("Content-Type"))
	}
	var snaps []metrics.SLOSnapshot
	if err := json.Unmarshal([]byte(body), &snaps); err != nil {
		t.Fatalf("json /slo decode: %v\n%s", err, body)
	}
	// The nil tracker is skipped, not serialized as an empty object.
	if len(snaps) != 1 || snaps[0].Name != "fleet.read" || len(snaps[0].Windows) != 1 {
		t.Fatalf("json /slo = %+v", snaps)
	}
	if got := snaps[0].Windows[0].BurnRate; got < 1-1e-9 || got > 1+1e-9 {
		t.Fatalf("burn over the wire = %g, want 1", got)
	}
}

func TestEventsEndpoint(t *testing.T) {
	ev := metrics.NewEventLog(16)
	ev.Emit(metrics.EventVersionPublish, "", 3, "")
	ev.Emit(metrics.EventBreakerOpen, "n2", 0, "2 consecutive failures")
	ev.Emit(metrics.EventBreakerClose, "n2", 0, "")
	srv := httptest.NewServer(NewMux(Config{Events: ev}))
	defer srv.Close()

	code, body, _ := get(t, srv, "/events")
	if code != 200 {
		t.Fatalf("/events = %d:\n%s", code, body)
	}
	for _, want := range []string{"version.publish", "v3", "breaker.open", "node=n2", "breaker.close"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/events text missing %q:\n%s", want, body)
		}
	}

	// Cursor: since=1 skips the publish.
	code, body, _ = get(t, srv, "/events?since=1&format=json")
	var evs []metrics.Event
	if code != 200 || json.Unmarshal([]byte(body), &evs) != nil {
		t.Fatalf("json /events = %d:\n%s", code, body)
	}
	if len(evs) != 2 || evs[0].Type != metrics.EventBreakerOpen || evs[0].Seq != 2 {
		t.Fatalf("since=1 = %+v", evs)
	}

	// n keeps the newest.
	code, body, _ = get(t, srv, "/events?n=1&format=json")
	evs = nil
	if code != 200 || json.Unmarshal([]byte(body), &evs) != nil || len(evs) != 1 || evs[0].Type != metrics.EventBreakerClose {
		t.Fatalf("n=1 = %d %+v", code, evs)
	}

	// Long poll: a blocked request is released by a fresh event.
	type result struct {
		code int
		evs  []metrics.Event
	}
	got := make(chan result, 1)
	go func() {
		resp, err := srv.Client().Get(srv.URL + "/events?since=3&wait=5s&format=json")
		if err != nil {
			got <- result{code: -1}
			return
		}
		defer resp.Body.Close()
		var evs []metrics.Event
		json.NewDecoder(resp.Body).Decode(&evs)
		got <- result{code: resp.StatusCode, evs: evs}
	}()
	time.Sleep(20 * time.Millisecond) // let the poller block
	ev.Emit(metrics.EventNodeUp, "n2", 0, "probe ok")
	select {
	case r := <-got:
		if r.code != 200 || len(r.evs) != 1 || r.evs[0].Type != metrics.EventNodeUp {
			t.Fatalf("long poll = %d %+v", r.code, r.evs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll never released")
	}

	// An expired wait answers 200 with no events, not an error.
	code, body, _ = get(t, srv, fmt.Sprintf("/events?since=%d&wait=30ms&format=json", ev.LastSeq()))
	if code != 200 || strings.TrimSpace(body) != "[]" {
		t.Fatalf("expired wait = %d %q, want 200 []", code, body)
	}

	for _, path := range []string{"/events?since=bogus", "/events?n=-1", "/events?wait=bogus"} {
		if code, _, _ := get(t, srv, path); code != http.StatusBadRequest {
			t.Fatalf("%s = %d, want 400", path, code)
		}
	}
}

func TestTraceExportEndpoint(t *testing.T) {
	mux, _, traceID := testMux(t, nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, body, hdr := get(t, srv, fmt.Sprintf("/debug/trace/export?id=%016x", traceID))
	if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "json") {
		t.Fatalf("/debug/trace/export = %d (%s):\n%s", code, hdr.Get("Content-Type"), body)
	}
	var export metrics.TraceExport
	if err := json.Unmarshal([]byte(body), &export); err != nil {
		t.Fatalf("export decode: %v\n%s", err, body)
	}
	if export.TraceID != fmt.Sprintf("%016x", traceID) || len(export.Spans) != 1 || export.Spans[0].Name != "test.op" {
		t.Fatalf("export = %+v", export)
	}

	// Node label rides along when configured.
	reg := metrics.NewRegistry()
	named := httptest.NewServer(NewMux(Config{Registry: reg, Node: "dc1-n7"}))
	defer named.Close()
	code, body, _ = get(t, named, "/debug/trace/export?id=1")
	export = metrics.TraceExport{}
	if code != 200 || json.Unmarshal([]byte(body), &export) != nil || export.Node != "dc1-n7" {
		t.Fatalf("named export = %d %+v", code, export)
	}
	if export.Spans == nil || len(export.Spans) != 0 {
		t.Fatalf("unknown trace must export [], got %+v", export.Spans)
	}

	if code, _, _ := get(t, srv, "/debug/trace/export"); code != http.StatusBadRequest {
		t.Fatalf("missing id = %d, want 400", code)
	}
	if code, _, _ := get(t, srv, "/debug/trace/export?id=zzz"); code != http.StatusBadRequest {
		t.Fatalf("bad id = %d, want 400", code)
	}
}

func TestSlowlogFilters(t *testing.T) {
	slow := metrics.NewSlowLog(8, time.Millisecond)
	slow.Maybe("put", []byte("k1"), 2*time.Millisecond, 0xaaa, "")
	slow.Maybe("get", []byte("k2"), 3*time.Millisecond, 0xbbb, "")
	slow.Maybe("put", []byte("k3"), 4*time.Millisecond, 0xbbb, "")
	srv := httptest.NewServer(NewMux(Config{SlowLog: slow}))
	defer srv.Close()

	code, body, _ := get(t, srv, "/debug/slowlog?op=put&format=json")
	var entries []metrics.SlowEntry
	if code != 200 || json.Unmarshal([]byte(body), &entries) != nil || len(entries) != 2 {
		t.Fatalf("op=put = %d:\n%s", code, body)
	}
	for _, e := range entries {
		if e.Op != "put" {
			t.Fatalf("op filter leaked %+v", e)
		}
	}

	code, body, _ = get(t, srv, "/debug/slowlog?trace=bbb&format=json")
	entries = nil
	if code != 200 || json.Unmarshal([]byte(body), &entries) != nil || len(entries) != 2 {
		t.Fatalf("trace=bbb = %d:\n%s", code, body)
	}

	// Combined: op and trace intersect; n cuts to the newest.
	code, body, _ = get(t, srv, "/debug/slowlog?op=put&trace=bbb&format=json")
	entries = nil
	if code != 200 || json.Unmarshal([]byte(body), &entries) != nil || len(entries) != 1 || entries[0].Key != "k3" {
		t.Fatalf("op+trace = %d %+v", code, entries)
	}

	// Text path honors the filters too.
	code, body, _ = get(t, srv, "/debug/slowlog?op=get")
	if code != 200 || !strings.Contains(body, "k2") || strings.Contains(body, "k1") {
		t.Fatalf("text op=get = %d:\n%s", code, body)
	}

	if code, _, _ := get(t, srv, "/debug/slowlog?trace=zzz"); code != http.StatusBadRequest {
		t.Fatalf("bad trace = %d, want 400", code)
	}
}

// TestObservabilityEndpointsNil checks every new endpoint against a
// zero Config: empty output, never a panic.
func TestObservabilityEndpointsNil(t *testing.T) {
	srv := httptest.NewServer(NewMux(Config{}))
	defer srv.Close()
	for _, path := range []string{
		"/slo", "/slo?format=json",
		"/events", "/events?format=json", "/events?since=5&n=2",
		"/debug/trace/export?id=1",
		"/debug/slowlog?op=put&trace=ab",
	} {
		if code, _, _ := get(t, srv, path); code != 200 {
			t.Fatalf("%s with nil config = %d", path, code)
		}
	}
	// A long poll against a nil event log returns immediately empty
	// rather than hanging until the wait expires.
	start := time.Now()
	code, body, _ := get(t, srv, "/events?wait=10s&format=json")
	if code != 200 || strings.TrimSpace(body) != "[]" {
		t.Fatalf("nil long poll = %d %q", code, body)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("nil long poll blocked")
	}
}
