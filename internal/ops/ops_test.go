package ops

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"directload/internal/fleet"
	"directload/internal/metrics"
	"directload/internal/metrics/testutil"
)

// testMux builds a mux over a populated registry and slow log.
func testMux(t *testing.T, ready func() error) (*http.ServeMux, *metrics.Registry, uint64) {
	t.Helper()
	reg := metrics.NewRegistry()
	reg.Counter("ops.requests").Add(5)
	reg.Histogram("ops.latency_us").Observe(120)
	ctx, end := reg.StartSpan(context.Background(), "test.op")
	sc, _ := metrics.SpanFromContext(ctx)
	end(nil)
	slow := metrics.NewSlowLog(8, time.Millisecond)
	slow.Maybe("put", []byte("sk"), 5*time.Millisecond, sc.TraceID, "")
	return NewMux(Config{Registry: reg, SlowLog: slow, Ready: ready}), reg, sc.TraceID
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestMetricsFormats(t *testing.T) {
	mux, _, _ := testMux(t, nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, body, _ := get(t, srv, "/metrics")
	if code != 200 || !strings.Contains(body, "ops.requests") {
		t.Fatalf("text /metrics = %d:\n%s", code, body)
	}

	code, body, _ = get(t, srv, "/metrics?format=json")
	if code != 200 {
		t.Fatalf("json /metrics = %d", code)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("json /metrics not JSON: %v\n%s", err, body)
	}
	if m["ops.requests"] != float64(5) {
		t.Fatalf("json ops.requests = %v", m["ops.requests"])
	}

	code, body, hdr := get(t, srv, "/metrics?format=prom")
	if code != 200 {
		t.Fatalf("prom /metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("prom Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE ops_requests counter",
		"ops_requests 5",
		"# TYPE ops_latency_us summary",
		"ops_latency_us_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, body)
		}
	}
}

func TestHealthAndReady(t *testing.T) {
	var failing error
	mux, _, _ := testMux(t, func() error { return failing })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if code, body, _ := get(t, srv, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body, _ := get(t, srv, "/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("/readyz = %d %q", code, body)
	}
	failing = errors.New("memtable over high-water")
	code, body, _ := get(t, srv, "/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "high-water") {
		t.Fatalf("failing /readyz = %d %q", code, body)
	}
}

func TestSlowlogEndpoint(t *testing.T) {
	mux, _, traceID := testMux(t, nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, body, _ := get(t, srv, "/debug/slowlog")
	if code != 200 || !strings.Contains(body, "sk") {
		t.Fatalf("/debug/slowlog = %d:\n%s", code, body)
	}
	if !strings.Contains(body, fmt.Sprintf("%016x", traceID)) {
		t.Fatalf("slowlog entry lost its trace id:\n%s", body)
	}

	code, body, _ = get(t, srv, "/debug/slowlog?format=json")
	var entries []metrics.SlowEntry
	if code != 200 || json.Unmarshal([]byte(body), &entries) != nil || len(entries) != 1 {
		t.Fatalf("json /debug/slowlog = %d:\n%s", code, body)
	}
	if entries[0].Op != "put" || entries[0].TraceID != traceID {
		t.Fatalf("entry = %+v", entries[0])
	}

	if code, _, _ := get(t, srv, "/debug/slowlog?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad n = %d, want 400", code)
	}
}

func TestTraceEndpoint(t *testing.T) {
	mux, _, traceID := testMux(t, nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, body, _ := get(t, srv, "/debug/trace")
	if code != 200 || !strings.Contains(body, "test.op") {
		t.Fatalf("/debug/trace = %d:\n%s", code, body)
	}

	code, body, _ = get(t, srv, fmt.Sprintf("/debug/trace?id=%016x", traceID))
	if code != 200 || !strings.Contains(body, "test.op") {
		t.Fatalf("/debug/trace?id = %d:\n%s", code, body)
	}

	code, body, _ = get(t, srv, fmt.Sprintf("/debug/trace?id=%016x&format=json", traceID))
	var spans []metrics.SpanRecord
	if code != 200 || json.Unmarshal([]byte(body), &spans) != nil || len(spans) != 1 {
		t.Fatalf("json trace = %d:\n%s", code, body)
	}
	if spans[0].TraceID != traceID {
		t.Fatalf("span = %+v", spans[0])
	}

	if code, _, _ := get(t, srv, "/debug/trace?id=zzz"); code != http.StatusBadRequest {
		t.Fatalf("bad id = %d, want 400", code)
	}
	// Unknown trace: empty but well-formed.
	code, body, _ = get(t, srv, "/debug/trace?id=dead&format=json")
	if code != 200 || strings.TrimSpace(body) != "[]" {
		t.Fatalf("unknown trace = %d %q, want 200 []", code, body)
	}
}

func TestNilConfigEndpointsDontPanic(t *testing.T) {
	srv := httptest.NewServer(NewMux(Config{}))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/metrics?format=prom", "/metrics?format=json",
		"/debug/trace", "/debug/slowlog", "/healthz", "/readyz"} {
		if code, _, _ := get(t, srv, path); code != 200 {
			t.Fatalf("%s with nil config = %d", path, code)
		}
	}
	// pprof stays unmounted unless enabled.
	if code, _, _ := get(t, srv, "/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ mounted without EnablePprof (code %d)", code)
	}
}

func TestPprofGated(t *testing.T) {
	srv := httptest.NewServer(NewMux(Config{EnablePprof: true}))
	defer srv.Close()
	if code, body, _ := get(t, srv, "/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestServerServeShutdown(t *testing.T) {
	testutil.CheckGoroutines(t)
	reg := metrics.NewRegistry()
	s, err := Listen("127.0.0.1:0", Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()

	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The listener is really closed.
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Fatal("server still answering after Shutdown")
	}
}

func TestFleetEndpoint(t *testing.T) {
	st := fleet.Status{
		Groups: 1, Replicas: 3, WriteQuorum: 2, HedgeDelayUs: 2000,
		Nodes: []fleet.NodeStatus{
			{ID: "127.0.0.1:7001", Addr: "127.0.0.1:7001", Breaker: "closed"},
			{ID: "127.0.0.1:7002", Addr: "127.0.0.1:7002", Breaker: "open",
				ConsecutiveFails: 4, HandoffDepth: 12, HandoffDropped: 1,
				LastError: "connection refused"},
		},
	}
	mux := NewMux(Config{Fleet: func() fleet.Status { return st }})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, body, _ := get(t, srv, "/fleet")
	if code != 200 {
		t.Fatalf("/fleet = %d:\n%s", code, body)
	}
	for _, want := range []string{"R=3 W=2", "breaker=open", "handoff=12", "dropped=1", "connection refused"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/fleet text missing %q:\n%s", want, body)
		}
	}

	code, body, hdr := get(t, srv, "/fleet?format=json")
	if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "json") {
		t.Fatalf("json /fleet = %d (%s)", code, hdr.Get("Content-Type"))
	}
	var got fleet.Status
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("json /fleet decode: %v", err)
	}
	if got.WriteQuorum != 2 || len(got.Nodes) != 2 || got.Nodes[1].HandoffDepth != 12 {
		t.Fatalf("json /fleet round-trip = %+v", got)
	}

	// Unset Fleet: 404, not a panic.
	bare := httptest.NewServer(NewMux(Config{}))
	defer bare.Close()
	if code, _, _ := get(t, bare, "/fleet"); code != 404 {
		t.Fatalf("/fleet without source = %d, want 404", code)
	}
}
