// Package ops is the operator-facing HTTP surface shared by qindbd and
// embedding programs: metrics exposition (text, JSON, Prometheus),
// trace timelines, the slow-op log, liveness/readiness probes, and —
// behind a switch — the runtime profiler. One mux, one graceful server,
// so every binary exposes the same endpoints the docs describe:
//
//	/metrics             text dump; ?format=json | ?format=prom
//	/debug/trace         span ring + latency summaries; ?id=<hex> for
//	                     one trace's timeline; ?format=json
//	/debug/slowlog       slow operations, oldest first; ?n=<count>,
//	                     ?format=json
//	/fleet               fleet router snapshot (placement, breakers,
//	                     handoff depths); ?format=json
//	/healthz             200 while the process is up
//	/readyz              200 when Ready() returns nil, 503 otherwise
//	/debug/pprof/*       net/http/pprof, only when EnablePprof is set
package ops

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"directload/internal/fleet"
	"directload/internal/metrics"
)

// Config wires the endpoints to their data sources. Nil fields disable
// the corresponding endpoint gracefully (empty output or 404, never a
// panic).
type Config struct {
	// Registry backs /metrics and /debug/trace.
	Registry *metrics.Registry
	// SlowLog backs /debug/slowlog.
	SlowLog *metrics.SlowLog
	// Ready, when set, backs /readyz: nil means ready, an error is
	// reported with a 503. When unset /readyz behaves like /healthz.
	Ready func() error
	// Fleet, when set, backs /fleet with a live router snapshot — a
	// func so the handler always serves current breaker states and
	// handoff depths, not a boot-time copy. Unset returns 404.
	Fleet func() fleet.Status
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints can stall a loaded process and
	// should be an explicit operator decision.
	EnablePprof bool
}

// NewMux builds the operator mux for cfg.
func NewMux(cfg Config) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("format") {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(cfg.Registry)
		case "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			cfg.Registry.WritePrometheus(w)
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			cfg.Registry.WriteTo(w)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		tracer := cfg.Registry.Tracer()
		if idStr := q.Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
				return
			}
			if q.Get("format") == "json" {
				w.Header().Set("Content-Type", "application/json")
				spans := tracer.Trace(id)
				if spans == nil {
					spans = []metrics.SpanRecord{}
				}
				json.NewEncoder(w).Encode(spans)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			tracer.WriteTrace(w, id)
			return
		}
		if q.Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			spans := tracer.Spans()
			if spans == nil {
				spans = []metrics.SpanRecord{}
			}
			json.NewEncoder(w).Encode(spans)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tracer.WriteTo(w)
	})
	mux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		n := 0
		if nStr := q.Get("n"); nStr != "" {
			v, err := strconv.Atoi(nStr)
			if err != nil || v < 0 {
				http.Error(w, "bad n (want non-negative integer)", http.StatusBadRequest)
				return
			}
			n = v
		}
		if q.Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			entries := cfg.SlowLog.Entries(n)
			if entries == nil {
				entries = []metrics.SlowEntry{}
			}
			json.NewEncoder(w).Encode(entries)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if n > 0 {
			for _, e := range cfg.SlowLog.Entries(n) {
				fmt.Fprintf(w, "%s %s %q %s\n", e.Time.Format("15:04:05.000"), e.Op, e.Key, e.Dur)
			}
			return
		}
		cfg.SlowLog.WriteTo(w)
	})
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Fleet == nil {
			http.Error(w, "no fleet attached", http.StatusNotFound)
			return
		}
		st := cfg.Fleet()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(st)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "fleet: %d group(s), R=%d W=%d, hedge after %dus\n",
			st.Groups, st.Replicas, st.WriteQuorum, st.HedgeDelayUs)
		for _, n := range st.Nodes {
			fmt.Fprintf(w, "g%d %-24s breaker=%-9s fails=%d handoff=%d",
				n.Group, n.ID, n.Breaker, n.ConsecutiveFails, n.HandoffDepth)
			if n.HandoffDropped > 0 {
				fmt.Fprintf(w, " dropped=%d", n.HandoffDropped)
			}
			if n.LastError != "" {
				fmt.Fprintf(w, " last_err=%q", n.LastError)
			}
			fmt.Fprintln(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Ready != nil {
			if err := cfg.Ready(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ready\n"))
	})
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Server is a listening operator HTTP server with graceful shutdown.
type Server struct {
	srv *http.Server
	ln  net.Listener

	mu      sync.Mutex
	serveCh chan error // buffered; Serve's outcome for Shutdown to read
}

// Listen binds addr (":0" for ephemeral) and returns a server ready to
// Serve. Binding eagerly — rather than inside Serve — lets callers
// print the resolved address before requests arrive.
func Listen(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Server{
		srv:     &http.Server{Handler: NewMux(cfg)},
		ln:      ln,
		serveCh: make(chan error, 1),
	}, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve blocks serving requests until Shutdown (returning nil) or a
// listener failure (returning it). Run it on its own goroutine.
func (s *Server) Serve() error {
	err := s.srv.Serve(s.ln)
	if err == http.ErrServerClosed {
		err = nil
	}
	s.serveCh <- err
	return err
}

// Shutdown stops the server gracefully: no new connections, in-flight
// requests run to completion, bounded by ctx's deadline. It returns
// ctx's error if the deadline expired first, or Serve's listener error
// if the serve loop had already failed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.srv.Shutdown(ctx)
	select {
	case serr := <-s.serveCh:
		if err == nil {
			err = serr
		}
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}
