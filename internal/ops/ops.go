// Package ops is the operator-facing HTTP surface shared by qindbd and
// embedding programs: metrics exposition (text, JSON, Prometheus),
// trace timelines, the slow-op log, liveness/readiness probes, and —
// behind a switch — the runtime profiler. One mux, one graceful server,
// so every binary exposes the same endpoints the docs describe:
//
//	/metrics             text dump; ?format=json | ?format=prom
//	/slo                 SLO trackers: per-window ratios and burn
//	                     rates; ?format=json
//	/events              structured event log, oldest first; ?since=
//	                     <seq> resumes a cursor, ?n=<count> keeps the
//	                     newest n, ?wait=<dur> long-polls, ?format=json
//	/debug/trace         span ring + latency summaries; ?id=<hex> for
//	                     one trace's timeline; ?format=json
//	/debug/trace/export  machine-readable spans of one trace (?id=
//	                     <hex>, required) for cross-node aggregation
//	/debug/slowlog       slow operations, oldest first; ?n=<count>,
//	                     ?op=<name> and ?trace=<hex> filter,
//	                     ?format=json
//	/fleet               fleet router snapshot (placement, breakers,
//	                     handoff depths); ?format=json
//	/debug/attrib        sampled per-opcode resource attribution, sorted
//	                     by alloc bytes/op; ?format=json
//	/debug/profile       windowed pprof capture (?type=heap|allocs|cpu|
//	                     goroutine, ?seconds=N for a delta window), only
//	                     when EnablePprof is set
//	/index               index lifecycle (internal/search): list,
//	                     create, ingest, query, CIFF export/import —
//	                     only when an Index handler is configured
//	/healthz             200 while the process is up
//	/readyz              200 when Ready() returns nil, 503 otherwise
//	/debug/pprof/*       net/http/pprof, only when EnablePprof is set
package ops

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"directload/internal/fleet"
	"directload/internal/metrics"
)

// Config wires the endpoints to their data sources. Nil fields disable
// the corresponding endpoint gracefully (empty output or 404, never a
// panic).
type Config struct {
	// Registry backs /metrics and /debug/trace.
	Registry *metrics.Registry
	// SlowLog backs /debug/slowlog.
	SlowLog *metrics.SlowLog
	// Node names this process in /debug/trace/export payloads so the
	// cross-node trace collector can label merged spans.
	Node string
	// SLOs back /slo (and ride along in ?format=prom via their
	// registered gauges).
	SLOs []*metrics.SLO
	// Events backs /events.
	Events *metrics.EventLog
	// Ready, when set, backs /readyz: nil means ready, an error is
	// reported with a 503. When unset /readyz behaves like /healthz.
	Ready func() error
	// Fleet, when set, backs /fleet with a live router snapshot — a
	// func so the handler always serves current breaker states and
	// handoff depths, not a boot-time copy. Unset returns 404.
	Fleet func() fleet.Status
	// Attrib, when set, backs /debug/attrib with the backend's sampled
	// per-opcode resource table (server.Backend.Attribution). Unset
	// returns 404.
	Attrib func() metrics.AttribSnapshot
	// Index, when set, serves the index-lifecycle REST surface
	// (internal/search.NewHandler) under /index. Unset returns 404.
	Index http.Handler
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints can stall a loaded process and
	// should be an explicit operator decision.
	EnablePprof bool
}

// NewMux builds the operator mux for cfg.
func NewMux(cfg Config) *http.ServeMux {
	mux := http.NewServeMux()
	if cfg.Index != nil {
		mux.Handle("/index", cfg.Index)
		mux.Handle("/index/", cfg.Index)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("format") {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(cfg.Registry)
		case "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			cfg.Registry.WritePrometheus(w)
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			cfg.Registry.WriteTo(w)
		}
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		snaps := make([]metrics.SLOSnapshot, 0, len(cfg.SLOs))
		for _, s := range cfg.SLOs {
			if s == nil {
				continue
			}
			snaps = append(snaps, s.Snapshot())
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(snaps)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, snap := range snaps {
			fmt.Fprintf(w, "slo %s target=%g total_good=%d total_bad=%d\n",
				snap.Name, snap.Target, snap.TotalGood, snap.TotalBad)
			for _, win := range snap.Windows {
				fmt.Fprintf(w, "  %-4s good=%d bad=%d ratio=%.6f burn=%.2fx\n",
					win.Window, win.Good, win.Bad, win.Ratio, win.BurnRate)
			}
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var since uint64
		if sStr := q.Get("since"); sStr != "" {
			v, err := strconv.ParseUint(sStr, 10, 64)
			if err != nil {
				http.Error(w, "bad since (want decimal sequence number)", http.StatusBadRequest)
				return
			}
			since = v
		}
		n := 0
		if nStr := q.Get("n"); nStr != "" {
			v, err := strconv.Atoi(nStr)
			if err != nil || v < 0 {
				http.Error(w, "bad n (want non-negative integer)", http.StatusBadRequest)
				return
			}
			n = v
		}
		var evs []metrics.Event
		if waitStr := q.Get("wait"); waitStr != "" {
			d, err := time.ParseDuration(waitStr)
			if err != nil || d <= 0 {
				http.Error(w, "bad wait (want positive duration)", http.StatusBadRequest)
				return
			}
			ctx, cancel := context.WithTimeout(r.Context(), d)
			evs = cfg.Events.Wait(ctx, since)
			cancel()
			if n > 0 && len(evs) > n {
				evs = evs[len(evs)-n:]
			}
		} else {
			evs = cfg.Events.Since(since, n)
		}
		if q.Get("format") == "json" {
			if evs == nil {
				evs = []metrics.Event{}
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(evs)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, e := range evs {
			suffix := ""
			if e.Node != "" {
				suffix += " node=" + e.Node
			}
			if e.Version != 0 {
				suffix += fmt.Sprintf(" v%d", e.Version)
			}
			if e.Detail != "" {
				suffix += " " + e.Detail
			}
			fmt.Fprintf(w, "%d %s %s%s\n", e.Seq, e.Time.Format(time.RFC3339Nano), e.Type, suffix)
		}
	})
	mux.HandleFunc("/debug/trace/export", func(w http.ResponseWriter, r *http.Request) {
		idStr := r.URL.Query().Get("id")
		if idStr == "" {
			http.Error(w, "missing id (want hex trace id)", http.StatusBadRequest)
			return
		}
		id, err := strconv.ParseUint(idStr, 16, 64)
		if err != nil {
			http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
			return
		}
		spans := cfg.Registry.Tracer().Trace(id)
		if spans == nil {
			spans = []metrics.SpanRecord{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(metrics.TraceExport{
			Node:    cfg.Node,
			TraceID: fmt.Sprintf("%016x", id),
			Spans:   spans,
		})
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		tracer := cfg.Registry.Tracer()
		if idStr := q.Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
				return
			}
			if q.Get("format") == "json" {
				w.Header().Set("Content-Type", "application/json")
				spans := tracer.Trace(id)
				if spans == nil {
					spans = []metrics.SpanRecord{}
				}
				json.NewEncoder(w).Encode(spans)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			tracer.WriteTrace(w, id)
			return
		}
		if q.Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			spans := tracer.Spans()
			if spans == nil {
				spans = []metrics.SpanRecord{}
			}
			json.NewEncoder(w).Encode(spans)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tracer.WriteTo(w)
	})
	mux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		n := 0
		if nStr := q.Get("n"); nStr != "" {
			v, err := strconv.Atoi(nStr)
			if err != nil || v < 0 {
				http.Error(w, "bad n (want non-negative integer)", http.StatusBadRequest)
				return
			}
			n = v
		}
		op := q.Get("op")
		var trace uint64
		if tStr := q.Get("trace"); tStr != "" {
			v, err := strconv.ParseUint(tStr, 16, 64)
			if err != nil {
				http.Error(w, "bad trace (want hex trace id)", http.StatusBadRequest)
				return
			}
			trace = v
		}
		if q.Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			entries := cfg.SlowLog.FilterEntries(n, op, trace)
			if entries == nil {
				entries = []metrics.SlowEntry{}
			}
			json.NewEncoder(w).Encode(entries)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if n > 0 || op != "" || trace != 0 {
			for _, e := range cfg.SlowLog.FilterEntries(n, op, trace) {
				fmt.Fprintf(w, "%s %s %q %s\n", e.Time.Format("15:04:05.000"), e.Op, e.Key, e.Dur)
			}
			return
		}
		cfg.SlowLog.WriteTo(w)
	})
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Fleet == nil {
			http.Error(w, "no fleet attached", http.StatusNotFound)
			return
		}
		st := cfg.Fleet()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(st)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "fleet: %d group(s), R=%d W=%d, hedge after %dus\n",
			st.Groups, st.Replicas, st.WriteQuorum, st.HedgeDelayUs)
		for _, n := range st.Nodes {
			fmt.Fprintf(w, "g%d %-24s breaker=%-9s fails=%d handoff=%d",
				n.Group, n.ID, n.Breaker, n.ConsecutiveFails, n.HandoffDepth)
			if n.HandoffDropped > 0 {
				fmt.Fprintf(w, " dropped=%d", n.HandoffDropped)
			}
			if n.LastError != "" {
				fmt.Fprintf(w, " last_err=%q", n.LastError)
			}
			fmt.Fprintln(w)
		}
	})
	mux.HandleFunc("/debug/attrib", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Attrib == nil {
			http.Error(w, "attribution not enabled (start with -attr-sample > 0)", http.StatusNotFound)
			return
		}
		snap := cfg.Attrib()
		if r.URL.Query().Get("format") == "json" {
			if snap.Entries == nil {
				snap.Entries = []metrics.AttribEntry{}
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if snap.SampleEvery == 0 {
			fmt.Fprintln(w, "attribution disabled")
			return
		}
		fmt.Fprintf(w, "resource attribution, sampling 1/%d requests\n", snap.SampleEvery)
		fmt.Fprintf(w, "%-10s %10s %16s %14s %12s %12s\n",
			"op", "samples", "alloc_bytes/op", "allocs/op", "cpu_us/op", "wall_us/op")
		for _, e := range snap.Entries {
			fmt.Fprintf(w, "%-10s %10d %16.0f %14.1f %12.1f %12.1f\n",
				e.Op, e.Samples, e.AllocBytesPerOp, e.AllocsPerOp, e.CPUUsPerOp, e.WallUsPerOp)
		}
	})
	mux.HandleFunc("/debug/profile", func(w http.ResponseWriter, r *http.Request) {
		if !cfg.EnablePprof {
			http.Error(w, "profiling not enabled (start with -pprof)", http.StatusForbidden)
			return
		}
		q := r.URL.Query()
		typ := q.Get("type")
		if typ == "" {
			typ = "heap"
		}
		seconds := 0
		if sStr := q.Get("seconds"); sStr != "" {
			v, err := strconv.Atoi(sStr)
			if err != nil || v < 0 || v > 300 {
				http.Error(w, "bad seconds (want 0..300)", http.StatusBadRequest)
				return
			}
			seconds = v
		}
		// Delegate to net/http/pprof, which already implements windowed
		// delta profiles: a seconds= parameter on a profile handler
		// captures the difference between two snapshots that far apart.
		r2 := r.Clone(r.Context())
		switch typ {
		case "cpu":
			if seconds <= 0 {
				seconds = 5
			}
			r2.URL.RawQuery = fmt.Sprintf("seconds=%d", seconds)
			pprof.Profile(w, r2)
		case "heap", "allocs", "goroutine":
			if seconds > 0 {
				r2.URL.RawQuery = fmt.Sprintf("seconds=%d", seconds)
			} else {
				r2.URL.RawQuery = ""
			}
			pprof.Handler(typ).ServeHTTP(w, r2)
		default:
			http.Error(w, "bad type (want heap, allocs, cpu or goroutine)", http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Ready != nil {
			if err := cfg.Ready(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ready\n"))
	})
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Server is a listening operator HTTP server with graceful shutdown.
type Server struct {
	srv *http.Server
	ln  net.Listener

	mu      sync.Mutex
	serveCh chan error // buffered; Serve's outcome for Shutdown to read
}

// Listen binds addr (":0" for ephemeral) and returns a server ready to
// Serve. Binding eagerly — rather than inside Serve — lets callers
// print the resolved address before requests arrive.
func Listen(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Server{
		srv:     &http.Server{Handler: NewMux(cfg)},
		ln:      ln,
		serveCh: make(chan error, 1),
	}, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve blocks serving requests until Shutdown (returning nil) or a
// listener failure (returning it). Run it on its own goroutine.
func (s *Server) Serve() error {
	err := s.srv.Serve(s.ln)
	if err == http.ErrServerClosed {
		err = nil
	}
	s.serveCh <- err
	return err
}

// Shutdown stops the server gracefully: no new connections, in-flight
// requests run to completion, bounded by ctx's deadline. It returns
// ctx's error if the deadline expired first, or Serve's listener error
// if the serve loop had already failed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.srv.Shutdown(ctx)
	select {
	case serr := <-s.serveCh:
		if err == nil {
			err = serr
		}
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}
