package ops

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"directload/internal/metrics"
)

func TestDebugAttrib(t *testing.T) {
	tab := metrics.NewAttribTable(64)
	tab.Charge("put", metrics.ResourceDelta{AllocBytes: 70000, AllocObjects: 12, CPU: 30 * time.Microsecond, Wall: 50 * time.Microsecond})
	tab.Charge("put", metrics.ResourceDelta{AllocBytes: 66000, AllocObjects: 10, CPU: 20 * time.Microsecond, Wall: 40 * time.Microsecond})
	tab.Charge("get", metrics.ResourceDelta{AllocBytes: 2000, AllocObjects: 3})
	srv := httptest.NewServer(NewMux(Config{Attrib: tab.Snapshot}))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/debug/attrib")
	if code != 200 {
		t.Fatalf("/debug/attrib = %d: %s", code, body)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "text/plain") {
		t.Errorf("content type = %q", hdr.Get("Content-Type"))
	}
	if !strings.Contains(body, "sampling 1/64") {
		t.Errorf("missing sampling header:\n%s", body)
	}
	// put (68000 bytes/op) sorts above get (2000 bytes/op).
	if !strings.Contains(body, "put") || !strings.Contains(body, "get") ||
		strings.Index(body, "put") > strings.Index(body, "get") {
		t.Errorf("ops missing or unsorted:\n%s", body)
	}

	code, body, hdr = get(t, srv, "/debug/attrib?format=json")
	if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("json form = %d %q", code, hdr.Get("Content-Type"))
	}
	var snap metrics.AttribSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("bad json: %v\n%s", err, body)
	}
	if snap.SampleEvery != 64 || len(snap.Entries) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Entries[0].Op != "put" || snap.Entries[0].AllocBytesPerOp != 68000 {
		t.Fatalf("entry 0 = %+v, want put at 68000 bytes/op", snap.Entries[0])
	}
}

func TestDebugAttribUnset(t *testing.T) {
	srv := httptest.NewServer(NewMux(Config{}))
	defer srv.Close()
	if code, _, _ := get(t, srv, "/debug/attrib"); code != 404 {
		t.Fatalf("/debug/attrib without source = %d, want 404", code)
	}
}

func TestDebugAttribDisabledTable(t *testing.T) {
	srv := httptest.NewServer(NewMux(Config{
		Attrib: func() metrics.AttribSnapshot { return metrics.AttribSnapshot{} },
	}))
	defer srv.Close()
	code, body, _ := get(t, srv, "/debug/attrib")
	if code != 200 || !strings.Contains(body, "disabled") {
		t.Fatalf("/debug/attrib disabled = %d %q", code, body)
	}
	// The JSON form still answers, with an empty entry list.
	code, body, _ = get(t, srv, "/debug/attrib?format=json")
	if code != 200 || !strings.Contains(body, `"entries":[]`) {
		t.Fatalf("json disabled = %d %q", code, body)
	}
}

func TestDebugProfileHeap(t *testing.T) {
	srv := httptest.NewServer(NewMux(Config{EnablePprof: true}))
	defer srv.Close()

	for _, path := range []string{
		"/debug/profile",                       // default: absolute heap
		"/debug/profile?type=allocs&seconds=1", // windowed delta
		"/debug/profile?type=goroutine",
	} {
		code, body, _ := get(t, srv, path)
		if code != 200 {
			t.Fatalf("%s = %d: %s", path, code, body)
		}
		if len(body) < 2 || body[0] != 0x1f || body[1] != 0x8b {
			t.Fatalf("%s did not return a gzipped pprof profile", path)
		}
	}
}

func TestDebugProfileCPU(t *testing.T) {
	srv := httptest.NewServer(NewMux(Config{EnablePprof: true}))
	defer srv.Close()
	code, body, _ := get(t, srv, "/debug/profile?type=cpu&seconds=1")
	if code != 200 {
		t.Fatalf("cpu profile = %d: %s", code, body)
	}
	if len(body) < 2 || body[0] != 0x1f || body[1] != 0x8b {
		t.Fatal("cpu profile is not gzipped pprof output")
	}
}

func TestDebugProfileDisabled(t *testing.T) {
	srv := httptest.NewServer(NewMux(Config{}))
	defer srv.Close()
	code, body, _ := get(t, srv, "/debug/profile?type=heap")
	if code != 403 {
		t.Fatalf("/debug/profile without -pprof = %d, want 403: %s", code, body)
	}
}

func TestDebugProfileBadParams(t *testing.T) {
	srv := httptest.NewServer(NewMux(Config{EnablePprof: true}))
	defer srv.Close()
	for _, path := range []string{
		"/debug/profile?type=mutexxx",
		"/debug/profile?seconds=-1",
		"/debug/profile?seconds=9999",
		"/debug/profile?seconds=abc",
	} {
		if code, _, _ := get(t, srv, path); code != 400 {
			t.Fatalf("%s = %d, want 400", path, code)
		}
	}
}
