package ops

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"directload/internal/metrics"
	"directload/internal/search"
)

// TestIndexEndpointThroughOps mounts the search REST surface on the
// ops mux — the same wiring qindbd uses — and drives the lifecycle
// through it: create, ingest, query, and the search metrics landing in
// the shared registry.
func TestIndexEndpointThroughOps(t *testing.T) {
	reg := metrics.NewRegistry()
	svc := search.NewService(search.NewMemEngine(), reg)
	mux := NewMux(Config{Registry: reg, Index: search.NewHandler(svc)})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+path, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(out)
	}

	if code, body := post("/index/web", ""); code != 201 {
		t.Fatalf("create: %d %q", code, body)
	}
	if code, body := post("/index/web/ingest", "u/a apple banana\nu/b banana\n"); code != 200 || !strings.Contains(body, "v=1") {
		t.Fatalf("ingest: %d %q", code, body)
	}
	code, body, _ := get(t, srv, "/index/web/query?q=banana&format=json")
	if code != 200 {
		t.Fatalf("query: %d %q", code, body)
	}
	var qr struct {
		Version uint64          `json:"version"`
		Hits    []search.Result `json:"hits"`
	}
	if err := json.Unmarshal([]byte(body), &qr); err != nil || qr.Version != 1 || len(qr.Hits) != 2 {
		t.Fatalf("query response %q (%v)", body, err)
	}
	if code, body, _ := get(t, srv, "/index"); code != 200 || !strings.Contains(body, "web") {
		t.Fatalf("list: %d %q", code, body)
	}

	// The shared registry saw the publish and the query.
	code, body, _ = get(t, srv, "/metrics?format=json")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	if !strings.Contains(body, "search.index.publishes") || !strings.Contains(body, "search.query.count") {
		t.Fatalf("search metrics missing from ops registry:\n%s", body)
	}

	// Without an Index handler the route 404s.
	bare := httptest.NewServer(NewMux(Config{Registry: metrics.NewRegistry()}))
	defer bare.Close()
	if code, _, _ := get(t, bare, "/index"); code != 404 {
		t.Fatalf("unmounted /index: %d", code)
	}
}
