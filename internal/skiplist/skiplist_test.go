package skiplist

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func intCmp(a, b int) int { return a - b }

func strCmp(a, b string) int { return strings.Compare(a, b) }

func TestSetGet(t *testing.T) {
	l := New[int, string](intCmp, 1)
	if _, ok := l.Get(1); ok {
		t.Fatal("Get on empty list should miss")
	}
	if !l.Set(1, "one") {
		t.Fatal("first Set should insert")
	}
	if l.Set(1, "uno") {
		t.Fatal("second Set of same key should replace, not insert")
	}
	v, ok := l.Get(1)
	if !ok || v != "uno" {
		t.Fatalf("Get(1) = %q, %v; want uno, true", v, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", l.Len())
	}
}

func TestDelete(t *testing.T) {
	l := New[int, int](intCmp, 2)
	for i := 0; i < 100; i++ {
		l.Set(i, i*10)
	}
	if !l.Delete(50) {
		t.Fatal("Delete(50) should succeed")
	}
	if l.Delete(50) {
		t.Fatal("second Delete(50) should fail")
	}
	if _, ok := l.Get(50); ok {
		t.Fatal("Get(50) should miss after delete")
	}
	if l.Len() != 99 {
		t.Fatalf("Len() = %d, want 99", l.Len())
	}
	// Remaining keys intact.
	for i := 0; i < 100; i++ {
		if i == 50 {
			continue
		}
		if v, ok := l.Get(i); !ok || v != i*10 {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	l := New[int, int](intCmp, 3)
	for i := 0; i < 64; i++ {
		l.Set(i, i)
	}
	for i := 0; i < 64; i++ {
		if !l.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if l.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", l.Len())
	}
	if _, _, ok := l.Min(); ok {
		t.Fatal("Min on empty list should miss")
	}
	l.Set(7, 70)
	if v, ok := l.Get(7); !ok || v != 70 {
		t.Fatal("list unusable after emptying")
	}
}

func TestOrderedIteration(t *testing.T) {
	l := New[int, int](intCmp, 4)
	perm := rand.New(rand.NewSource(9)).Perm(1000)
	for _, k := range perm {
		l.Set(k, k)
	}
	var got []int
	l.AscendAll(func(k, v int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 1000 {
		t.Fatalf("iterated %d items, want 1000", len(got))
	}
	if !sort.IntsAreSorted(got) {
		t.Fatal("AscendAll must visit keys in ascending order")
	}
}

func TestAscendFrom(t *testing.T) {
	l := New[int, int](intCmp, 5)
	for i := 0; i < 100; i += 2 { // even keys only
		l.Set(i, i)
	}
	var got []int
	l.Ascend(51, func(k, v int) bool { // 51 absent; first >= is 52
		got = append(got, k)
		return len(got) < 3
	})
	want := []int{52, 54, 56}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Ascend(51) = %v, want %v", got, want)
	}
}

func TestMin(t *testing.T) {
	l := New[int, string](intCmp, 6)
	l.Set(42, "a")
	l.Set(7, "b")
	l.Set(100, "c")
	k, v, ok := l.Min()
	if !ok || k != 7 || v != "b" {
		t.Fatalf("Min() = %d, %q, %v", k, v, ok)
	}
}

func TestUpdate(t *testing.T) {
	l := New[string, int](strCmp, 7)
	l.Set("k", 1)
	if !l.Update("k", func(v int) int { return v + 10 }) {
		t.Fatal("Update of present key should succeed")
	}
	if v, _ := l.Get("k"); v != 11 {
		t.Fatalf("Get = %d, want 11", v)
	}
	if l.Update("missing", func(v int) int { return v }) {
		t.Fatal("Update of absent key should fail")
	}
}

func TestIteratorSeekNext(t *testing.T) {
	l := New[int, int](intCmp, 8)
	for i := 10; i <= 50; i += 10 {
		l.Set(i, i)
	}
	it := l.NewIterator()
	if it.Valid() {
		t.Fatal("fresh iterator should not be valid")
	}
	if !it.Next() || it.Key() != 10 {
		t.Fatalf("first Next should land on 10, got valid=%v", it.Valid())
	}
	if !it.Seek(25) || it.Key() != 30 {
		t.Fatalf("Seek(25) should land on 30, got %d", it.Key())
	}
	if !it.Next() || it.Key() != 40 {
		t.Fatalf("Next after Seek should land on 40")
	}
	it.Seek(51)
	if it.Valid() {
		t.Fatal("Seek past end should invalidate iterator")
	}
	if it.Next() {
		t.Fatal("Next past end should report false")
	}
}

func TestIteratorEmptyList(t *testing.T) {
	l := New[int, int](intCmp, 9)
	it := l.NewIterator()
	if it.Next() {
		t.Fatal("Next on empty list should report false")
	}
	if it.Seek(0) {
		t.Fatal("Seek on empty list should report false")
	}
}

func TestStringKeys(t *testing.T) {
	l := New[string, int](strCmp, 10)
	keys := []string{"banana", "apple", "cherry", "apple/2", "apple/1"}
	for i, k := range keys {
		l.Set(k, i)
	}
	var got []string
	l.AscendAll(func(k string, _ int) bool {
		got = append(got, k)
		return true
	})
	if !sort.StringsAreSorted(got) {
		t.Fatalf("string keys out of order: %v", got)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	l := New[int, int](intCmp, 11)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Set(w*1000+i, i)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Get(i)
				l.Ascend(i, func(k, v int) bool { return false })
			}
		}()
	}
	wg.Wait()
	if l.Len() != 2000 {
		t.Fatalf("Len() = %d, want 2000", l.Len())
	}
}

// Property: a skip list agrees with a reference map under a random
// sequence of Set/Delete operations, and iteration is always sorted.
func TestQuickAgainstMap(t *testing.T) {
	type op struct {
		Key int8
		Del bool
	}
	f := func(ops []op) bool {
		l := New[int, int](intCmp, 42)
		ref := map[int]int{}
		for i, o := range ops {
			k := int(o.Key)
			if o.Del {
				inList := l.Delete(k)
				_, inRef := ref[k]
				delete(ref, k)
				if inList != inRef {
					return false
				}
			} else {
				l.Set(k, i)
				ref[k] = i
			}
		}
		if l.Len() != len(ref) {
			return false
		}
		prev := -1 << 30
		ok := true
		l.AscendAll(func(k, v int) bool {
			if k <= prev || ref[k] != v {
				ok = false
				return false
			}
			prev = k
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeInsertHeightGrowth(t *testing.T) {
	l := New[int, int](intCmp, 12)
	const n = 50000
	for i := 0; i < n; i++ {
		l.Set(i, i)
	}
	if l.Len() != n {
		t.Fatalf("Len() = %d, want %d", l.Len(), n)
	}
	// Spot-check lookups stay correct at scale.
	for _, k := range []int{0, 1, n / 2, n - 1} {
		if v, ok := l.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) = %d, %v", k, v, ok)
		}
	}
}

func BenchmarkSet(b *testing.B) {
	l := New[int, int](intCmp, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Set(i, i)
	}
}

func BenchmarkGet(b *testing.B) {
	l := New[int, int](intCmp, 1)
	for i := 0; i < 1<<16; i++ {
		l.Set(i, i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Get(i & (1<<16 - 1))
	}
}

func ExampleList() {
	l := New[string, int](strCmp, 1)
	l.Set("url/b", 2)
	l.Set("url/a", 1)
	l.AscendAll(func(k string, v int) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// url/a 1
	// url/b 2
}
