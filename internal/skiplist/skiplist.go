// Package skiplist implements the probabilistic ordered map of Pugh
// (CACM 1990) that both QinDB's memtable and the LSM baseline's memtable
// are built on. The paper keeps only keys plus AOF offsets in memory
// (§2.1), so the list is generic over small value types and optimized for
// ordered scans: equal keys sort adjacently, which is what makes QinDB's
// version traceback a short forward walk.
//
// The list is safe for concurrent use: mutations take an exclusive lock,
// lookups and iteration take a shared lock. This matches the engine's
// access pattern (few writer threads, many readers) without the
// complexity of a lock-free list, which the paper does not require.
package skiplist

import (
	"math/rand"
	"sync"
)

const (
	maxHeight = 18 // supports ~2^18 * 4 items before degrading
	branching = 4  // P(level k+1 | level k) = 1/branching
)

// Compare returns a negative number if a sorts before b, zero if they are
// equal, and a positive number otherwise.
type Compare[K any] func(a, b K) int

type node[K, V any] struct {
	key   K
	value V
	next  []*node[K, V]
}

// List is an ordered map from K to V.
type List[K, V any] struct {
	mu     sync.RWMutex
	cmp    Compare[K]
	head   *node[K, V]
	height int
	length int
	rng    *rand.Rand
}

// New creates an empty list ordered by cmp. The seed makes level choices
// deterministic, which keeps tests and benchmarks reproducible.
func New[K, V any](cmp Compare[K], seed int64) *List[K, V] {
	return &List[K, V]{
		cmp:    cmp,
		head:   &node[K, V]{next: make([]*node[K, V], maxHeight)},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Len returns the number of items in the list.
func (l *List[K, V]) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.length
}

func (l *List[K, V]) randomHeight() int {
	h := 1
	for h < maxHeight && l.rng.Intn(branching) == 0 {
		h++
	}
	return h
}

// findGE returns the first node with key >= key, filling prev with the
// rightmost node before that position at every level. Callers hold l.mu.
func (l *List[K, V]) findGE(key K, prev []*node[K, V]) *node[K, V] {
	x := l.head
	for level := l.height - 1; level >= 0; level-- {
		for x.next[level] != nil && l.cmp(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Set inserts key with value, replacing any existing value for an equal
// key. It reports whether a new item was inserted (false means replaced).
func (l *List[K, V]) Set(key K, value V) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := make([]*node[K, V], maxHeight)
	for i := l.height; i < maxHeight; i++ {
		prev[i] = l.head
	}
	if n := l.findGE(key, prev); n != nil && l.cmp(n.key, key) == 0 {
		n.value = value
		return false
	}
	h := l.randomHeight()
	if h > l.height {
		l.height = h
	}
	n := &node[K, V]{key: key, value: value, next: make([]*node[K, V], h)}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	l.length++
	return true
}

// Get returns the value stored under key.
func (l *List[K, V]) Get(key K) (V, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := l.findGE(key, nil)
	if n != nil && l.cmp(n.key, key) == 0 {
		return n.value, true
	}
	var zero V
	return zero, false
}

// Update applies fn to the value stored under key in place, holding the
// write lock for the duration. It reports whether the key was found.
// QinDB uses this to flip delete flags and to relocate AOF offsets during
// garbage collection without a delete/re-insert cycle.
func (l *List[K, V]) Update(key K, fn func(v V) V) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.findGE(key, nil)
	if n != nil && l.cmp(n.key, key) == 0 {
		n.value = fn(n.value)
		return true
	}
	return false
}

// Delete removes key and reports whether it was present.
func (l *List[K, V]) Delete(key K) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := make([]*node[K, V], maxHeight)
	for i := range prev {
		prev[i] = l.head
	}
	n := l.findGE(key, prev)
	if n == nil || l.cmp(n.key, key) != 0 {
		return false
	}
	for level := 0; level < len(n.next); level++ {
		if prev[level].next[level] == n {
			prev[level].next[level] = n.next[level]
		}
	}
	for l.height > 1 && l.head.next[l.height-1] == nil {
		l.height--
	}
	l.length--
	return true
}

// Min returns the smallest key and its value.
func (l *List[K, V]) Min() (K, V, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if n := l.head.next[0]; n != nil {
		return n.key, n.value, true
	}
	var zk K
	var zv V
	return zk, zv, false
}

// Ascend calls fn for every item with key >= from, in ascending order,
// until fn returns false. The shared lock is held for the whole scan;
// fn must not mutate the list.
func (l *List[K, V]) Ascend(from K, fn func(key K, value V) bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for n := l.findGE(from, nil); n != nil; n = n.next[0] {
		if !fn(n.key, n.value) {
			return
		}
	}
}

// AscendAll calls fn for every item in ascending order until fn returns
// false.
func (l *List[K, V]) AscendAll(fn func(key K, value V) bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for n := n0(l); n != nil; n = n.next[0] {
		if !fn(n.key, n.value) {
			return
		}
	}
}

func n0[K, V any](l *List[K, V]) *node[K, V] { return l.head.next[0] }

// Iterator walks the list in ascending order. It holds no lock between
// calls; instead each advance re-acquires the shared lock, so iteration
// is safe alongside concurrent mutations but sees a live view (items
// inserted behind the cursor are skipped, items ahead are observed).
type Iterator[K, V any] struct {
	l       *List[K, V]
	cur     *node[K, V]
	started bool
}

// NewIterator returns an iterator positioned before the first item.
func (l *List[K, V]) NewIterator() *Iterator[K, V] {
	return &Iterator[K, V]{l: l}
}

// Seek positions the iterator at the first item with key >= key and
// reports whether such an item exists.
func (it *Iterator[K, V]) Seek(key K) bool {
	it.l.mu.RLock()
	defer it.l.mu.RUnlock()
	it.cur = it.l.findGE(key, nil)
	it.started = true
	return it.cur != nil
}

// Next advances to the following item and reports whether one exists.
// Calling Next on a fresh iterator positions it at the first item.
func (it *Iterator[K, V]) Next() bool {
	it.l.mu.RLock()
	defer it.l.mu.RUnlock()
	if !it.started {
		it.cur = it.l.head.next[0]
		it.started = true
	} else if it.cur != nil {
		it.cur = it.cur.next[0]
	}
	return it.cur != nil
}

// Valid reports whether the iterator is positioned at an item.
func (it *Iterator[K, V]) Valid() bool { return it.started && it.cur != nil }

// Key returns the key at the current position; it must only be called
// when Valid() is true.
func (it *Iterator[K, V]) Key() K { return it.cur.key }

// Value returns the value at the current position; it must only be
// called when Valid() is true.
func (it *Iterator[K, V]) Value() V { return it.cur.value }
