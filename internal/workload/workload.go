// Package workload generates the deterministic synthetic workloads that
// substitute for Baidu's production index traces (DESIGN.md §2). The
// generators reproduce the geometry the paper states: 20-byte keys,
// values of 20 KB on average (summary index), a configurable fraction of
// values identical to the previous version (the paper observes ~70%),
// and Zipf-distributed read popularity.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// KVConfig shapes a key-value stream.
type KVConfig struct {
	// Keys is the number of distinct keys in the key space.
	Keys int
	// KeyPrefix lets multiple streams coexist; the full key is
	// "<prefix><index padded to fill 20 bytes>".
	KeyPrefix string
	// ValueSize is the mean value size in bytes (paper: 20 KB).
	ValueSize int
	// ValueSizeStdDev spreads value sizes normally around the mean
	// (clamped to [64, 4*mean]); 0 produces fixed-size values.
	ValueSizeStdDev int
	// DupRatio is the probability that a key's value is byte-identical
	// to its previous version (paper: ~0.7 on average).
	DupRatio float64
	// Seed drives all randomness; identical configs generate identical
	// streams.
	Seed int64
}

// DefaultKVConfig matches the paper's summary-index microbenchmark:
// 20-byte keys, 20 KB average values.
func DefaultKVConfig() KVConfig {
	return KVConfig{
		Keys:            1000,
		ValueSize:       20 << 10,
		ValueSizeStdDev: 4 << 10,
		DupRatio:        0.7,
		Seed:            1,
	}
}

// Entry is one generated key-value pair.
type Entry struct {
	Key     []byte
	Version uint64
	Value   []byte
	// Dup reports that the value equals the previous version's (the
	// deduper would strip it).
	Dup bool
}

// Generator produces versioned KV streams.
type Generator struct {
	cfg KVConfig
	rng *rand.Rand
	// valueSeed tracks the generation seed of each key's current value so
	// duplicates are byte-identical and changes are not.
	valueSeed []int64
	valueLen  []int
	version   uint64
}

// NewGenerator validates cfg and creates a generator.
func NewGenerator(cfg KVConfig) (*Generator, error) {
	if cfg.Keys <= 0 {
		return nil, fmt.Errorf("workload: non-positive key count %d", cfg.Keys)
	}
	if cfg.ValueSize <= 0 {
		return nil, fmt.Errorf("workload: non-positive value size %d", cfg.ValueSize)
	}
	if cfg.DupRatio < 0 || cfg.DupRatio > 1 {
		return nil, fmt.Errorf("workload: dup ratio %v out of [0,1]", cfg.DupRatio)
	}
	return &Generator{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		valueSeed: make([]int64, cfg.Keys),
		valueLen:  make([]int, cfg.Keys),
	}, nil
}

// Key renders the i-th key: exactly 20 bytes (paper's key size) unless
// the prefix already exceeds it.
func (g *Generator) Key(i int) []byte {
	body := fmt.Sprintf("%s%d", g.cfg.KeyPrefix, i)
	if pad := 20 - len(body); pad > 0 {
		return []byte(fmt.Sprintf("%s%0*d", g.cfg.KeyPrefix, 20-len(g.cfg.KeyPrefix), i))
	}
	return []byte(body)
}

// KeyCount returns the key-space size.
func (g *Generator) KeyCount() int { return g.cfg.Keys }

// Version returns the last version generated (0 before the first).
func (g *Generator) Version() uint64 { return g.version }

// NextVersion advances to the next version and emits every key once, in
// key order, calling fn for each entry. A fraction DupRatio of keys keep
// their previous value byte-for-byte; the rest mutate. The first version
// never contains duplicates.
func (g *Generator) NextVersion(fn func(e Entry) error) error {
	return g.NextVersionRatio(g.cfg.DupRatio, fn)
}

// NextVersionRatio is NextVersion with an explicit duplicate ratio,
// letting trace replays vary redundancy day by day (Fig. 9).
func (g *Generator) NextVersionRatio(dupRatio float64, fn func(e Entry) error) error {
	g.version++
	for i := 0; i < g.cfg.Keys; i++ {
		dup := g.version > 1 && g.rng.Float64() < dupRatio
		if !dup {
			g.valueSeed[i] = g.rng.Int63()
			g.valueLen[i] = g.pickSize()
		}
		e := Entry{
			Key:     g.Key(i),
			Version: g.version,
			Value:   g.materialize(i),
			Dup:     dup,
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// pickSize draws a value size.
func (g *Generator) pickSize() int {
	if g.cfg.ValueSizeStdDev == 0 {
		return g.cfg.ValueSize
	}
	s := int(g.rng.NormFloat64()*float64(g.cfg.ValueSizeStdDev)) + g.cfg.ValueSize
	if s < 64 {
		s = 64
	}
	if max := g.cfg.ValueSize * 4; s > max {
		s = max
	}
	return s
}

// materialize renders the current value of key i deterministically from
// its seed, so duplicate versions are byte-identical.
func (g *Generator) materialize(i int) []byte {
	r := rand.New(rand.NewSource(g.valueSeed[i]))
	v := make([]byte, g.valueLen[i])
	r.Read(v)
	return v
}

// Value returns the current value of key i (for verification).
func (g *Generator) Value(i int) []byte { return g.materialize(i) }

// --- read workload ---------------------------------------------------------

// ReadGen draws keys with Zipf popularity — the read-side pattern of the
// paper's latency experiment (Fig. 8).
type ReadGen struct {
	zipf *rand.Zipf
	keys int
}

// NewReadGen creates a Zipf read generator over n keys with skew s > 1
// (s closer to 1 is more uniform; ~1.1 is typical web skew).
func NewReadGen(n int, s float64, seed int64) (*ReadGen, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive key count %d", n)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf skew must be > 1, got %v", s)
	}
	rng := rand.New(rand.NewSource(seed))
	return &ReadGen{zipf: rand.NewZipf(rng, s, 1, uint64(n-1)), keys: n}, nil
}

// Next returns the next key index to read.
func (r *ReadGen) Next() int { return int(r.zipf.Uint64()) }

// --- trace profiles ---------------------------------------------------------

// DayProfile describes one day of the month-long trace behind Figs. 9-10:
// the redundancy ratio Bifrost will see and whether a new index version
// is generated that day.
type DayProfile struct {
	Day        int
	DupRatio   float64
	NewVersion bool
}

// MonthProfile generates a deterministic 30-day profile with 10 version
// builds (the paper analyses "a one-month long system log containing 10
// versions of index data") whose redundancy wanders between lo and hi.
func MonthProfile(lo, hi float64, seed int64) []DayProfile {
	rng := rand.New(rand.NewSource(seed))
	days := make([]DayProfile, 30)
	// Spread 10 version builds across the month deterministically.
	buildDays := map[int]bool{}
	for len(buildDays) < 10 {
		buildDays[rng.Intn(30)] = true
	}
	ratio := (lo + hi) / 2
	for d := 0; d < 30; d++ {
		// Random walk between lo and hi.
		ratio += rng.NormFloat64() * (hi - lo) / 8
		ratio = math.Max(lo, math.Min(hi, ratio))
		days[d] = DayProfile{Day: d + 1, DupRatio: ratio, NewVersion: buildDays[d]}
	}
	return days
}
