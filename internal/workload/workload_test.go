package workload

import (
	"bytes"
	"testing"
)

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(KVConfig{Keys: 0, ValueSize: 1}); err == nil {
		t.Fatal("zero keys should fail")
	}
	if _, err := NewGenerator(KVConfig{Keys: 1, ValueSize: 0}); err == nil {
		t.Fatal("zero value size should fail")
	}
	if _, err := NewGenerator(KVConfig{Keys: 1, ValueSize: 1, DupRatio: 1.5}); err == nil {
		t.Fatal("bad dup ratio should fail")
	}
}

func TestKeysAre20Bytes(t *testing.T) {
	g, err := NewGenerator(DefaultKVConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 999} {
		if k := g.Key(i); len(k) != 20 {
			t.Fatalf("Key(%d) = %q (%d bytes), want 20 (paper's key size)", i, k, len(k))
		}
	}
	if string(g.Key(1)) == string(g.Key(2)) {
		t.Fatal("keys must be distinct")
	}
}

func TestKeysWithPrefix(t *testing.T) {
	cfg := DefaultKVConfig()
	cfg.KeyPrefix = "inv/"
	g, _ := NewGenerator(cfg)
	k := g.Key(7)
	if len(k) != 20 || string(k[:4]) != "inv/" {
		t.Fatalf("Key = %q", k)
	}
}

func TestDupRatioRealized(t *testing.T) {
	cfg := DefaultKVConfig()
	cfg.Keys = 2000
	cfg.ValueSize = 128
	cfg.ValueSizeStdDev = 0
	cfg.DupRatio = 0.7
	g, _ := NewGenerator(cfg)

	prev := map[string][]byte{}
	if err := g.NextVersion(func(e Entry) error {
		if e.Dup {
			t.Fatal("first version must not contain duplicates")
		}
		prev[string(e.Key)] = e.Value
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	dups := 0
	if err := g.NextVersion(func(e Entry) error {
		same := bytes.Equal(prev[string(e.Key)], e.Value)
		if e.Dup != same {
			t.Fatalf("Dup flag %v but value equality %v", e.Dup, same)
		}
		if e.Dup {
			dups++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ratio := float64(dups) / 2000
	if ratio < 0.65 || ratio > 0.75 {
		t.Fatalf("realized dup ratio = %v, want ~0.7", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() [][]byte {
		cfg := DefaultKVConfig()
		cfg.Keys = 50
		g, _ := NewGenerator(cfg)
		var out [][]byte
		for v := 0; v < 3; v++ {
			g.NextVersion(func(e Entry) error {
				out = append(out, append([]byte(nil), e.Value...))
				return nil
			})
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("run lengths differ")
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("runs diverge at %d", i)
		}
	}
}

func TestValueSizesSpread(t *testing.T) {
	cfg := DefaultKVConfig()
	cfg.Keys = 500
	g, _ := NewGenerator(cfg)
	var min, max, sum int
	min = 1 << 30
	g.NextVersion(func(e Entry) error {
		n := len(e.Value)
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
		sum += n
		return nil
	})
	mean := sum / 500
	if mean < 16<<10 || mean > 24<<10 {
		t.Fatalf("mean value size = %d, want ~20KB", mean)
	}
	if min == max {
		t.Fatal("sizes should spread with non-zero stddev")
	}
	if min < 64 {
		t.Fatalf("min size = %d, clamp failed", min)
	}
}

func TestValueAccessorMatchesStream(t *testing.T) {
	cfg := DefaultKVConfig()
	cfg.Keys = 20
	g, _ := NewGenerator(cfg)
	vals := map[int][]byte{}
	g.NextVersion(func(e Entry) error { return nil })
	for i := 0; i < 20; i++ {
		vals[i] = g.Value(i)
	}
	// Value() is stable until the next version changes it.
	for i := 0; i < 20; i++ {
		if !bytes.Equal(vals[i], g.Value(i)) {
			t.Fatalf("Value(%d) not stable", i)
		}
	}
}

func TestReadGenZipf(t *testing.T) {
	if _, err := NewReadGen(0, 1.1, 1); err == nil {
		t.Fatal("zero keys should fail")
	}
	if _, err := NewReadGen(10, 1.0, 1); err == nil {
		t.Fatal("skew <= 1 should fail")
	}
	r, err := NewReadGen(1000, 1.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		k := r.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Zipf: the most popular key dominates the 500th.
	if counts[0] <= counts[500]*10 {
		t.Fatalf("distribution not skewed: head=%d mid=%d", counts[0], counts[500])
	}
}

func TestMonthProfile(t *testing.T) {
	days := MonthProfile(0.2, 0.85, 7)
	if len(days) != 30 {
		t.Fatalf("days = %d", len(days))
	}
	builds := 0
	for i, d := range days {
		if d.Day != i+1 {
			t.Fatalf("day numbering broken at %d", i)
		}
		if d.DupRatio < 0.2 || d.DupRatio > 0.85 {
			t.Fatalf("day %d ratio %v out of bounds", d.Day, d.DupRatio)
		}
		if d.NewVersion {
			builds++
		}
	}
	if builds != 10 {
		t.Fatalf("builds = %d, want 10 (paper: 10 versions in a month)", builds)
	}
	// Deterministic.
	again := MonthProfile(0.2, 0.85, 7)
	for i := range days {
		if days[i] != again[i] {
			t.Fatal("MonthProfile not deterministic")
		}
	}
}
