package aof

import (
	"testing"
	"time"

	"directload/internal/blockfs"
	"directload/internal/ssd"
)

// BenchmarkAOFAppendAligned appends records encoded to exactly one
// flash page each, the geometry the paper's ~2.5x write-amplification
// claim rests on. Tracked in BENCH_directload.json via `make
// bench-json` so regressions on the aligned append path are visible.
func BenchmarkAOFAppendAligned(b *testing.B) {
	cfg := ssd.Config{
		PageSize:      4096,
		PagesPerBlock: 64,
		Blocks:        4096, // 1 GiB: plenty for fixed-benchtime runs
		Latency: ssd.LatencyModel{
			PageRead: 80 * time.Microsecond, PageWrite: 200 * time.Microsecond,
			BlockErase: 1500 * time.Microsecond, Channels: 1,
		},
	}
	d, err := ssd.NewDevice(cfg)
	if err != nil {
		b.Fatal(err)
	}
	st, err := Open(blockfs.NewNativeFS(d), Config{FileSize: 16 << 20, GCThreshold: 0.25})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()

	key := []byte("bench/key/0001")
	rec := Record{
		Key:   key,
		Value: make([]byte, cfg.PageSize-headerSize-len(key)),
	}
	b.SetBytes(int64(cfg.PageSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Version = uint64(i + 1)
		if _, _, _, err := st.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
