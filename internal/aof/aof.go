// Package aof implements QinDB's on-flash layout: a set of fixed-size
// append-only files (AOFs, paper §2.3) holding length-prefixed,
// checksummed key-value records, plus the in-memory GC table that tracks
// per-file occupancy for the lazy garbage collection policy.
//
// The store is policy-free about liveness: the engine (internal/core)
// owns the memtable and therefore knows which records are referenced; GC
// asks it through callbacks. What lives here is the mechanics the paper
// describes: append records to the active file, rotate at the size
// limit, maintain the occupancy ratio table, and — when a file's
// occupancy falls below the threshold — re-append the records the engine
// wants kept and erase the file (steps 3–6 of paper Fig. 2).
package aof

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"time"

	"directload/internal/blockfs"
	"directload/internal/metrics"
)

// Record flags.
const (
	// FlagDedup marks a record whose value was removed by Bifrost
	// deduplication: the value field is NULL and readers must trace back
	// to an older version for the payload (paper Fig. 2, GET).
	FlagDedup uint8 = 1 << iota
	// FlagTombstone marks a deletion record, written so that DEL
	// operations survive crash recovery (the memtable delete flag alone
	// lives only in memory).
	FlagTombstone
	// FlagDropped marks a record whose key/version had already been
	// deleted when garbage collection relocated it (kept only because a
	// newer deduplicated version still refers to its value). Recovery
	// replays it with the delete flag set.
	FlagDropped
	// FlagVersionDrop marks a meta-record (empty key) recording that a
	// whole data version was dropped by the retention policy; recovery
	// replays the bulk delete.
	FlagVersionDrop
)

// Record is one key-value entry as stored in an AOF. Seq is assigned by
// the store at append time and increases monotonically across the whole
// store lifetime; recovery replays records in Seq order so that the
// jumbled physical order left behind by GC relocation cannot reorder
// logically-later operations before earlier ones.
type Record struct {
	Seq     uint64
	Key     []byte
	Version uint64
	Flags   uint8
	Value   []byte
}

// IsDedup reports whether the value field was removed by deduplication.
func (r Record) IsDedup() bool { return r.Flags&FlagDedup != 0 }

// IsTombstone reports whether this is a deletion record.
func (r Record) IsTombstone() bool { return r.Flags&FlagTombstone != 0 }

// IsDropped reports whether the record was relocated after deletion.
func (r Record) IsDropped() bool { return r.Flags&FlagDropped != 0 }

// IsVersionDrop reports whether this is a version-retention meta-record.
func (r Record) IsVersionDrop() bool { return r.Flags&FlagVersionDrop != 0 }

// Ref locates a record on flash.
type Ref struct {
	File uint32 // AOF file id
	Off  int64  // byte offset of the record header within the file
	Len  uint32 // total encoded length
}

// Zero is the zero Ref, used as "no location".
var Zero Ref

// Store errors.
var (
	ErrCorrupt = errors.New("aof: corrupt record")
	ErrNoFile  = errors.New("aof: unknown file")
)

// record wire format:
//
//	crc      uint32   // over everything after this field
//	seq      uint64
//	version  uint64
//	flags    uint8
//	keyLen   uint16
//	valLen   uint32
//	key      [keyLen]byte
//	value    [valLen]byte
const headerSize = 4 + 8 + 8 + 1 + 2 + 4

// EncodedLen returns the on-flash size of a record.
func EncodedLen(keyLen, valLen int) int { return headerSize + keyLen + valLen }

// Encode serializes rec into a fresh buffer.
func Encode(rec Record) []byte {
	buf := make([]byte, EncodedLen(len(rec.Key), len(rec.Value)))
	binary.LittleEndian.PutUint64(buf[4:], rec.Seq)
	binary.LittleEndian.PutUint64(buf[12:], rec.Version)
	buf[20] = rec.Flags
	binary.LittleEndian.PutUint16(buf[21:], uint16(len(rec.Key)))
	binary.LittleEndian.PutUint32(buf[23:], uint32(len(rec.Value)))
	copy(buf[headerSize:], rec.Key)
	copy(buf[headerSize+len(rec.Key):], rec.Value)
	binary.LittleEndian.PutUint32(buf, crc32.ChecksumIEEE(buf[4:]))
	return buf
}

// Decode parses one record from buf, returning it and the encoded length.
func Decode(buf []byte) (Record, int, error) {
	if len(buf) < headerSize {
		return Record{}, 0, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(buf))
	}
	keyLen := int(binary.LittleEndian.Uint16(buf[21:]))
	valLen := int(binary.LittleEndian.Uint32(buf[23:]))
	total := headerSize + keyLen + valLen
	if len(buf) < total {
		return Record{}, 0, fmt.Errorf("%w: short body (%d < %d)", ErrCorrupt, len(buf), total)
	}
	if crc32.ChecksumIEEE(buf[4:total]) != binary.LittleEndian.Uint32(buf) {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	rec := Record{
		Seq:     binary.LittleEndian.Uint64(buf[4:]),
		Version: binary.LittleEndian.Uint64(buf[12:]),
		Flags:   buf[20],
		Key:     append([]byte(nil), buf[headerSize:headerSize+keyLen]...),
		Value:   append([]byte(nil), buf[headerSize+keyLen:total]...),
	}
	if valLen == 0 {
		rec.Value = nil
	}
	return rec, total, nil
}

// Config controls the store geometry and GC policy.
type Config struct {
	// FileSize is the AOF rotation size; the paper fixes it at 64 MB.
	FileSize int64
	// GCThreshold is the occupancy ratio at or below which a sealed file
	// becomes a GC candidate; the paper uses 0.25.
	GCThreshold float64
	// MinFreeBytes: when the filesystem's free space falls below this,
	// GC runs even while reads are in flight (the "free disk space"
	// clause of the lazy policy). Zero disables the pressure override.
	MinFreeBytes int64
	// Metrics, when non-nil, receives the store's `aof.*` metrics
	// (appends, rotations, fsyncs, GC activity). Nil keeps the store
	// uninstrumented at zero cost.
	Metrics *metrics.Registry
}

// DefaultConfig matches the paper: 64 MB AOFs, 25 % occupancy threshold.
func DefaultConfig() Config {
	return Config{FileSize: 64 << 20, GCThreshold: 0.25}
}

type fileInfo struct {
	total int64 // bytes of records appended
	live  int64 // bytes of records still referenced
	seal  bool  // no longer the active file
}

// Store is the AOF set plus the GC table.
type Store struct {
	mu     sync.Mutex
	fs     blockfs.FS
	cfg    Config
	files  map[uint32]*fileInfo
	nextID uint32
	active uint32
	writer blockfs.Writer

	seq       uint64 // next sequence number to assign
	readers   int    // reads in flight (lazy-GC deferral input)
	appended  int64  // lifetime record bytes appended (incl. GC re-appends)
	gcRuns    int64
	gcMoved   int64 // bytes re-appended by GC
	gcFreed   int64 // bytes of reclaimed files
	gcPending int64 // dead bytes awaiting GC

	met storeMetrics
}

// storeMetrics holds the store's registry handles. All fields stay nil
// without a registry; the metric types' nil-receiver no-ops keep the
// append path allocation-free in that case.
type storeMetrics struct {
	appends     *metrics.Counter
	appendBytes *metrics.Counter
	rotations   *metrics.Counter
	fsyncs      *metrics.Counter
	reads       *metrics.Counter
	files       *metrics.Gauge
	gcCollects  *metrics.Counter
	gcMoved     *metrics.Counter
	gcFreed     *metrics.Counter
	tracer      *metrics.Tracer
}

func newStoreMetrics(reg *metrics.Registry) storeMetrics {
	return storeMetrics{
		appends:     reg.Counter("aof.appends"),
		appendBytes: reg.Counter("aof.append.bytes"),
		rotations:   reg.Counter("aof.rotations"),
		fsyncs:      reg.Counter("aof.fsyncs"),
		reads:       reg.Counter("aof.reads"),
		files:       reg.Gauge("aof.files"),
		gcCollects:  reg.Counter("aof.gc.collects"),
		gcMoved:     reg.Counter("aof.gc.moved_bytes"),
		gcFreed:     reg.Counter("aof.gc.freed_bytes"),
		tracer:      reg.Tracer(),
	}
}

// filename formats the AOF file name for id.
func filename(id uint32) string { return fmt.Sprintf("aof-%08d", id) }

// parseFilename returns the id encoded in an AOF name.
func parseFilename(name string) (uint32, bool) {
	var id uint32
	if _, err := fmt.Sscanf(name, "aof-%08d", &id); err != nil {
		return 0, false
	}
	return id, true
}

// Open creates a store over fs. If AOF files already exist (recovery),
// they are registered sealed with zero live bytes; the engine's recovery
// scan re-marks live records via MarkLive.
func Open(fs blockfs.FS, cfg Config) (*Store, error) {
	if cfg.FileSize <= 0 {
		return nil, errors.New("aof: non-positive file size")
	}
	if cfg.GCThreshold < 0 || cfg.GCThreshold > 1 {
		return nil, errors.New("aof: GC threshold must be in [0, 1]")
	}
	s := &Store{fs: fs, cfg: cfg, files: make(map[uint32]*fileInfo), met: newStoreMetrics(cfg.Metrics)}
	for _, name := range fs.List() {
		id, ok := parseFilename(name)
		if !ok {
			continue
		}
		size, err := fs.Size(name)
		if err != nil {
			return nil, err
		}
		s.files[id] = &fileInfo{total: size, seal: true}
		if id >= s.nextID {
			s.nextID = id + 1
		}
	}
	s.met.files.Set(int64(len(s.files)))
	return s, nil
}

// rotateLocked seals the active file and opens a fresh one.
func (s *Store) rotateLocked() error {
	end := s.met.tracer.Span("aof.rotate")
	if s.writer != nil {
		if _, err := s.writer.Close(); err != nil {
			end(err)
			return err
		}
		s.files[s.active].seal = true
		s.writer = nil
	}
	id := s.nextID
	w, err := s.fs.Create(filename(id))
	if err != nil {
		end(err)
		return err
	}
	s.nextID++
	s.active = id
	s.writer = w
	s.files[id] = &fileInfo{}
	s.met.rotations.Inc()
	s.met.files.Set(int64(len(s.files)))
	end(nil)
	return nil
}

// Append writes rec to the active AOF, rotating first if it would exceed
// the file size limit. The record starts live. The store assigns the
// record's sequence number; the caller's Seq field is ignored. The
// assigned value is returned so the engine can track recovery floors.
func (s *Store) Append(rec Record) (Ref, uint64, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec.Seq = s.seq
	s.seq++
	ref, cost, err := s.appendLocked(Encode(rec))
	return ref, rec.Seq, cost, err
}

// SeqFloor raises the next sequence number to at least floor. The engine
// calls this after a recovery scan so new appends sort after everything
// already on flash.
func (s *Store) SeqFloor(floor uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if floor > s.seq {
		s.seq = floor
	}
}

func (s *Store) appendLocked(buf []byte) (Ref, time.Duration, error) {
	if s.writer == nil || s.writer.Offset()+int64(len(buf)) > s.cfg.FileSize {
		if err := s.rotateLocked(); err != nil {
			return Zero, 0, err
		}
	}
	off, cost, err := s.writer.Append(buf)
	if err != nil {
		return Zero, cost, err
	}
	fi := s.files[s.active]
	fi.total += int64(len(buf))
	fi.live += int64(len(buf))
	s.appended += int64(len(buf))
	s.met.appends.Inc()
	s.met.appendBytes.Add(int64(len(buf)))
	return Ref{File: s.active, Off: off, Len: uint32(len(buf))}, cost, nil
}

// Read fetches and decodes the record at ref. Reads are tracked so the
// lazy GC policy can defer collection while reads are in flight.
func (s *Store) Read(ref Ref) (Record, time.Duration, error) {
	s.met.reads.Inc()
	s.mu.Lock()
	s.readers++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.readers--
		s.mu.Unlock()
	}()
	r, err := s.fs.Open(filename(ref.File))
	if err != nil {
		return Record{}, 0, fmt.Errorf("%w: %d", ErrNoFile, ref.File)
	}
	buf := make([]byte, ref.Len)
	n, cost, err := r.ReadAt(buf, ref.Off)
	if err != nil {
		return Record{}, cost, err
	}
	rec, _, err := Decode(buf[:n])
	return rec, cost, err
}

// MarkDead records that the record at ref is no longer referenced,
// updating the GC table's occupancy ratio (paper Fig. 2, DEL step 2).
func (s *Store) MarkDead(ref Ref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fi, ok := s.files[ref.File]; ok {
		fi.live -= int64(ref.Len)
		if fi.live < 0 {
			fi.live = 0
		}
		s.gcPending += int64(ref.Len)
	}
}

// MarkLive re-registers a referenced record during recovery scans.
func (s *Store) MarkLive(ref Ref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fi, ok := s.files[ref.File]; ok {
		fi.live += int64(ref.Len)
		if fi.live > fi.total {
			fi.live = fi.total
		}
	}
}

// Occupancy returns live/total for the file, or -1 if unknown.
func (s *Store) Occupancy(file uint32) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	fi, ok := s.files[file]
	if !ok || fi.total == 0 {
		return -1
	}
	return float64(fi.live) / float64(fi.total)
}

// Sync flushes the active writer's complete pages.
func (s *Store) Sync() (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writer == nil {
		return 0, nil
	}
	s.met.fsyncs.Inc()
	return s.writer.Sync()
}

// Close seals the active file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writer == nil {
		return nil
	}
	_, err := s.writer.Close()
	s.files[s.active].seal = true
	s.writer = nil
	return err
}

// Files returns the ids of all AOF files in ascending order.
func (s *Store) Files() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]uint32, 0, len(s.files))
	for id := range s.files {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Stats summarizes store and GC state.
type Stats struct {
	Files         int
	TotalBytes    int64 // sum of record bytes across files
	LiveBytes     int64
	DiskBytes     int64 // physical flash occupied (page-padded)
	AppendedBytes int64 // lifetime record bytes appended (incl. GC re-appends)
	GCRuns        int64
	GCMoved       int64 // bytes re-appended during GC
	GCFreed       int64 // record bytes in files erased by GC
}

// Stats returns current statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Files: len(s.files), AppendedBytes: s.appended,
		GCRuns: s.gcRuns, GCMoved: s.gcMoved, GCFreed: s.gcFreed}
	for _, fi := range s.files {
		st.TotalBytes += fi.total
		st.LiveBytes += fi.live
	}
	st.DiskBytes = s.fs.UsedBytes()
	return st
}

// ScanFile iterates the records of one file in append order, stopping if
// fn returns an error. Used for recovery and by GC.
func (s *Store) ScanFile(id uint32, fn func(rec Record, ref Ref) error) error {
	name := filename(id)
	size, err := s.fs.Size(name)
	if err != nil {
		return err
	}
	r, err := s.fs.Open(name)
	if err != nil {
		return err
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, _, err := r.ReadAt(buf, 0); err != nil {
			return err
		}
	}
	var off int64
	for off < size {
		rec, n, err := Decode(buf[off:])
		if err != nil {
			return fmt.Errorf("file %d offset %d: %w", id, off, err)
		}
		if err := fn(rec, Ref{File: id, Off: off, Len: uint32(n)}); err != nil {
			return err
		}
		off += int64(n)
	}
	return nil
}

// ScanAll iterates every record of every file in (file id, offset) order.
func (s *Store) ScanAll(fn func(rec Record, ref Ref) error) error {
	for _, id := range s.Files() {
		if err := s.ScanFile(id, fn); err != nil {
			return err
		}
	}
	return nil
}

// Judge is the engine's liveness oracle for GC: it returns true when the
// record at ref must be preserved — either it is the current target of a
// memtable item, or it is an older version still reachable through dedup
// traceback (paper: "invalid key-value pairs that are referred by later
// version keys"). The judge may mutate the record's flags before the
// relocation copy is written (e.g. folding a memtable delete flag into
// FlagDropped so the deletion survives recovery).
type Judge func(rec *Record, ref Ref) bool

// Relocated notifies the engine that a preserved record moved, so it can
// update the offset fields in the skip list (paper Fig. 2, GC step 5).
type Relocated func(rec Record, old, new Ref)

// Candidates returns sealed files whose occupancy is at or below the GC
// threshold, lowest occupancy first.
func (s *Store) Candidates() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	type cand struct {
		id  uint32
		occ float64
	}
	var cs []cand
	for id, fi := range s.files {
		if !fi.seal || fi.total == 0 {
			continue
		}
		occ := float64(fi.live) / float64(fi.total)
		if occ <= s.cfg.GCThreshold {
			cs = append(cs, cand{id, occ})
		}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].occ < cs[j].occ })
	ids := make([]uint32, len(cs))
	for i, c := range cs {
		ids[i] = c.id
	}
	return ids
}

// ShouldCollect applies the paper's lazy deferral rule: collect only if
// there are candidates and either no reads are in flight or free space
// has fallen below the pressure threshold.
func (s *Store) ShouldCollect() bool {
	s.mu.Lock()
	readers := s.readers
	s.mu.Unlock()
	if len(s.Candidates()) == 0 {
		return false
	}
	if readers == 0 {
		return true
	}
	if s.cfg.MinFreeBytes > 0 {
		free := s.fs.Device().Config().Capacity() - s.fs.UsedBytes()
		return free < s.cfg.MinFreeBytes
	}
	return false
}

// CollectFile garbage-collects one file: preserved records (per judge)
// are re-appended to the active AOF, the engine is told their new
// location, and the file is erased. It returns the record bytes
// reclaimed and the simulated device cost. This is the software-level
// write amplification QinDB pays (paper: "up to 2.5x ... as QinDB has to
// re-append valid data of deleted files in the GC process").
func (s *Store) CollectFile(id uint32, judge Judge, relocated Relocated) (int64, time.Duration, error) {
	s.mu.Lock()
	fi, ok := s.files[id]
	if !ok {
		s.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: %d", ErrNoFile, id)
	}
	if !fi.seal {
		s.mu.Unlock()
		return 0, 0, fmt.Errorf("aof: file %d is active", id)
	}
	total := fi.total
	s.mu.Unlock()

	var cost time.Duration
	var moved int64
	err := s.ScanFile(id, func(rec Record, ref Ref) error {
		if !judge(&rec, ref) {
			return nil
		}
		s.mu.Lock()
		// Data records get a fresh sequence number: recovery relies on
		// relocations sorting after a checkpoint's floor so it re-points
		// checkpointed items. Tombstones and version-drop meta-records
		// keep their ORIGINAL sequence: their deletion effect is
		// position-dependent, and replaying one after a later revive of
		// the same key/version would resurrect the deletion.
		if !rec.IsTombstone() {
			rec.Seq = s.seq
			s.seq++
		}
		buf := Encode(rec)
		newRef, c, err := s.appendLocked(buf)
		s.mu.Unlock()
		cost += c
		if err != nil {
			return err
		}
		moved += int64(len(buf))
		if relocated != nil {
			relocated(rec, ref, newRef)
		}
		return nil
	})
	if err != nil {
		return 0, cost, err
	}
	c, err := s.fs.Remove(filename(id))
	cost += c
	if err != nil {
		return 0, cost, err
	}
	s.mu.Lock()
	delete(s.files, id)
	s.gcRuns++
	s.gcMoved += moved
	s.gcFreed += total
	if dead := total - moved; dead > 0 {
		s.gcPending -= dead
		if s.gcPending < 0 {
			s.gcPending = 0
		}
	}
	s.met.gcCollects.Inc()
	s.met.gcMoved.Add(moved)
	s.met.gcFreed.Add(total)
	s.met.files.Set(int64(len(s.files)))
	s.mu.Unlock()
	return total - moved, cost, nil
}

// CollectOnce collects the best candidate if the lazy policy allows,
// returning whether a file was collected.
func (s *Store) CollectOnce(judge Judge, relocated Relocated) (bool, time.Duration, error) {
	if !s.ShouldCollect() {
		return false, 0, nil
	}
	cands := s.Candidates()
	if len(cands) == 0 {
		return false, 0, nil
	}
	_, cost, err := s.CollectFile(cands[0], judge, relocated)
	return err == nil, cost, err
}

// UnderPressure reports whether free flash space has dropped below the
// configured MinFreeBytes (always false when the override is disabled).
func (s *Store) UnderPressure() bool {
	if s.cfg.MinFreeBytes <= 0 {
		return false
	}
	free := s.fs.Device().Config().Capacity() - s.fs.UsedBytes()
	return free < s.cfg.MinFreeBytes
}

// PressureCandidate returns the sealed file with the lowest occupancy —
// the victim to collect when space pressure overrides the lazy threshold.
// Files above 95% occupancy are not worth rewriting and are skipped.
func (s *Store) PressureCandidate() (uint32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	best := uint32(0)
	bestOcc := 0.95
	found := false
	for id, fi := range s.files {
		if !fi.seal || fi.total == 0 {
			continue
		}
		occ := float64(fi.live) / float64(fi.total)
		if occ < bestOcc {
			best, bestOcc, found = id, occ, true
		}
	}
	return best, found
}
