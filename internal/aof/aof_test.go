package aof

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"directload/internal/blockfs"
	"directload/internal/ssd"
)

func testFS(t *testing.T, blocks int) blockfs.FS {
	t.Helper()
	cfg := ssd.Config{
		PageSize:      4096,
		PagesPerBlock: 64,
		Blocks:        blocks,
		Latency: ssd.LatencyModel{
			PageRead: 80 * time.Microsecond, PageWrite: 200 * time.Microsecond,
			BlockErase: 1500 * time.Microsecond, Channels: 1,
		},
	}
	d, err := ssd.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return blockfs.NewNativeFS(d)
}

func smallConfig() Config {
	return Config{FileSize: 1 << 20, GCThreshold: 0.25} // 1 MB AOFs for tests
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Record{
		{Key: []byte("k"), Version: 1, Value: []byte("v")},
		{Key: []byte("key/with/slashes"), Version: 1 << 40, Value: bytes.Repeat([]byte{7}, 5000)},
		{Key: []byte("dedup"), Version: 3, Flags: FlagDedup},
		{Key: []byte("dead"), Version: 9, Flags: FlagTombstone},
		{Key: []byte{}, Version: 0},
	}
	for i, rec := range cases {
		buf := Encode(rec)
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n != len(buf) {
			t.Fatalf("case %d: n = %d, want %d", i, n, len(buf))
		}
		if !bytes.Equal(got.Key, rec.Key) && !(len(got.Key) == 0 && len(rec.Key) == 0) {
			t.Fatalf("case %d: key %q != %q", i, got.Key, rec.Key)
		}
		if got.Version != rec.Version || got.Flags != rec.Flags {
			t.Fatalf("case %d: meta mismatch %+v", i, got)
		}
		if !bytes.Equal(got.Value, rec.Value) {
			t.Fatalf("case %d: value mismatch", i)
		}
	}
}

func TestDecodeCorruption(t *testing.T) {
	buf := Encode(Record{Key: []byte("k"), Version: 1, Value: []byte("hello")})
	if _, _, err := Decode(buf[:3]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short header err = %v", err)
	}
	if _, _, err := Decode(buf[:len(buf)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short body err = %v", err)
	}
	buf[len(buf)-1] ^= 0xFF
	if _, _, err := Decode(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip err = %v", err)
	}
}

func TestAppendRead(t *testing.T) {
	s, err := Open(testFS(t, 64), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Key: []byte("url1"), Version: 5, Value: []byte("payload")}
	ref, _, _, err := s.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Read(ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Key) != "url1" || got.Version != 5 || string(got.Value) != "payload" {
		t.Fatalf("Read = %+v", got)
	}
}

func TestFileRotation(t *testing.T) {
	s, _ := Open(testFS(t, 256), smallConfig())
	val := bytes.Repeat([]byte{1}, 100<<10) // 100 KB values
	for i := 0; i < 25; i++ {               // ~2.5 MB total > 2 files
		if _, _, _, err := s.Append(Record{Key: []byte(fmt.Sprintf("k%02d", i)), Version: 1, Value: val}); err != nil {
			t.Fatal(err)
		}
	}
	if files := s.Files(); len(files) < 3 {
		t.Fatalf("Files = %v, want >= 3 after rotation", files)
	}
	st := s.Stats()
	if st.LiveBytes != st.TotalBytes {
		t.Fatalf("all records live: live %d != total %d", st.LiveBytes, st.TotalBytes)
	}
}

func TestMarkDeadOccupancy(t *testing.T) {
	s, _ := Open(testFS(t, 64), smallConfig())
	var refs []Ref
	for i := 0; i < 10; i++ {
		ref, _, _, _ := s.Append(Record{Key: []byte{byte(i)}, Version: 1, Value: make([]byte, 1000)})
		refs = append(refs, ref)
	}
	if occ := s.Occupancy(refs[0].File); occ != 1.0 {
		t.Fatalf("initial occupancy = %v, want 1", occ)
	}
	for _, r := range refs[:5] {
		s.MarkDead(r)
	}
	occ := s.Occupancy(refs[0].File)
	if occ <= 0.45 || occ >= 0.55 {
		t.Fatalf("occupancy after killing half = %v, want ~0.5", occ)
	}
	if s.Occupancy(999) != -1 {
		t.Fatal("unknown file occupancy should be -1")
	}
}

func TestScanAllOrder(t *testing.T) {
	s, _ := Open(testFS(t, 256), smallConfig())
	val := bytes.Repeat([]byte{2}, 200<<10)
	for i := 0; i < 10; i++ {
		s.Append(Record{Key: []byte{byte(i)}, Version: uint64(i), Value: val})
	}
	var seen []uint64
	if err := s.ScanAll(func(rec Record, ref Ref) error {
		seen = append(seen, rec.Version)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 {
		t.Fatalf("scanned %d records, want 10", len(seen))
	}
	for i, v := range seen {
		if v != uint64(i) {
			t.Fatalf("scan order broken at %d: %v", i, seen)
		}
	}
}

func TestCandidatesThreshold(t *testing.T) {
	s, _ := Open(testFS(t, 256), smallConfig())
	val := bytes.Repeat([]byte{3}, 100<<10)
	var refs []Ref
	for i := 0; i < 25; i++ {
		ref, _, _, _ := s.Append(Record{Key: []byte{byte(i)}, Version: 1, Value: val})
		refs = append(refs, ref)
	}
	if len(s.Candidates()) != 0 {
		t.Fatal("no candidates expected while fully live")
	}
	// Kill every record in the first file.
	first := refs[0].File
	for _, r := range refs {
		if r.File == first {
			s.MarkDead(r)
		}
	}
	cands := s.Candidates()
	if len(cands) != 1 || cands[0] != first {
		t.Fatalf("Candidates = %v, want [%d]", cands, first)
	}
}

func TestActiveFileNeverCandidate(t *testing.T) {
	s, _ := Open(testFS(t, 64), smallConfig())
	ref, _, _, _ := s.Append(Record{Key: []byte("a"), Version: 1, Value: make([]byte, 100)})
	s.MarkDead(ref)
	if len(s.Candidates()) != 0 {
		t.Fatal("the active file must not be a GC candidate")
	}
	if _, _, err := s.CollectFile(ref.File, nil, nil); err == nil {
		t.Fatal("collecting the active file should fail")
	}
}

func TestCollectFilePreservesJudgedRecords(t *testing.T) {
	s, _ := Open(testFS(t, 256), smallConfig())
	val := bytes.Repeat([]byte{4}, 100<<10)
	type item struct {
		ref  Ref
		live bool
	}
	items := map[string]*item{}
	for i := 0; i < 25; i++ {
		key := fmt.Sprintf("k%02d", i)
		ref, _, _, _ := s.Append(Record{Key: []byte(key), Version: 1, Value: val})
		items[key] = &item{ref: ref, live: i%5 == 0} // keep 1 in 5
	}
	firstFile := items["k00"].ref.File
	for key, it := range items {
		if it.ref.File == firstFile && !it.live {
			s.MarkDead(it.ref)
		}
		_ = key
	}
	if got := s.Candidates(); len(got) == 0 || got[0] != firstFile {
		t.Fatalf("candidates = %v", got)
	}
	judge := func(rec *Record, ref Ref) bool { return items[string(rec.Key)].live }
	var relocations int
	reclaimed, _, err := s.CollectFile(firstFile, judge, func(rec Record, old, new Ref) {
		items[string(rec.Key)].ref = new
		relocations++
		if old.File != firstFile {
			t.Errorf("relocated from wrong file %d", old.File)
		}
		if new.File == firstFile {
			t.Error("relocated into the erased file")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if relocations == 0 {
		t.Fatal("expected relocations of live records")
	}
	if reclaimed <= 0 {
		t.Fatal("expected reclaimed bytes")
	}
	// Live records must still read back from their new refs.
	for key, it := range items {
		if !it.live || it.ref.File != 0 && it.ref.File == firstFile {
			continue
		}
		if it.live {
			rec, _, err := s.Read(it.ref)
			if err != nil {
				t.Fatalf("read %s after GC: %v", key, err)
			}
			if string(rec.Key) != key {
				t.Fatalf("wrong record after GC: %q", rec.Key)
			}
		}
	}
	// The file is gone.
	if err := s.ScanFile(firstFile, func(Record, Ref) error { return nil }); err == nil {
		t.Fatal("victim file should be erased")
	}
	if st := s.Stats(); st.GCRuns != 1 || st.GCFreed == 0 {
		t.Fatalf("GC stats = %+v", st)
	}
}

func TestLazyDeferralWithReaders(t *testing.T) {
	fs := testFS(t, 256)
	s, _ := Open(fs, smallConfig())
	val := bytes.Repeat([]byte{5}, 100<<10)
	var refs []Ref
	for i := 0; i < 25; i++ {
		ref, _, _, _ := s.Append(Record{Key: []byte{byte(i)}, Version: 1, Value: val})
		refs = append(refs, ref)
	}
	first := refs[0].File
	for _, r := range refs {
		if r.File == first {
			s.MarkDead(r)
		}
	}
	if !s.ShouldCollect() {
		t.Fatal("ShouldCollect = false with candidate and no readers")
	}
	// Simulate an in-flight read by hijacking Read with a slow judge: we
	// can't easily pause Read, so exercise the deferral through the
	// readers counter via a concurrent Read in a goroutine is racy;
	// instead verify the no-pressure branch using a live reader window.
	done := make(chan struct{})
	go func() {
		// A Read takes the reader slot for its duration.
		s.Read(refs[len(refs)-1])
		close(done)
	}()
	<-done // after it finishes, counter is back to zero
	if !s.ShouldCollect() {
		t.Fatal("ShouldCollect should be true once reads drain")
	}
}

func TestCollectOnceNoCandidates(t *testing.T) {
	s, _ := Open(testFS(t, 64), smallConfig())
	collected, _, err := s.CollectOnce(nil, nil)
	if err != nil || collected {
		t.Fatalf("CollectOnce on empty store = %v, %v", collected, err)
	}
}

func TestRecoveryScanRebuild(t *testing.T) {
	fs := testFS(t, 256)
	s, _ := Open(fs, smallConfig())
	val := bytes.Repeat([]byte{6}, 50<<10)
	want := map[string]Ref{}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("key-%03d", i)
		ref, _, _, _ := s.Append(Record{Key: []byte(key), Version: uint64(i), Value: val})
		want[key] = ref
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash": reopen over the same filesystem and rebuild liveness.
	s2, err := Open(fs, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]Ref{}
	if err := s2.ScanAll(func(rec Record, ref Ref) error {
		got[string(rec.Key)] = ref
		s2.MarkLive(ref)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for key, ref := range want {
		if got[key] != ref {
			t.Fatalf("ref mismatch for %s: %+v != %+v", key, got[key], ref)
		}
		rec, _, err := s2.Read(ref)
		if err != nil || string(rec.Key) != key {
			t.Fatalf("read after recovery failed for %s: %v", key, err)
		}
	}
	// Liveness restored: occupancy of sealed files should be 1.
	for _, id := range s2.Files() {
		if occ := s2.Occupancy(id); occ < 0.999 {
			t.Fatalf("file %d occupancy = %v after MarkLive rebuild", id, occ)
		}
	}
}

func TestOpenValidation(t *testing.T) {
	fs := testFS(t, 16)
	if _, err := Open(fs, Config{FileSize: 0}); err == nil {
		t.Fatal("zero file size should be rejected")
	}
	if _, err := Open(fs, Config{FileSize: 1, GCThreshold: 2}); err == nil {
		t.Fatal("threshold > 1 should be rejected")
	}
}

// Property: encode/decode round-trips arbitrary records.
func TestQuickEncodeDecode(t *testing.T) {
	f := func(key []byte, version uint64, flags uint8, value []byte) bool {
		if len(key) > 60000 {
			key = key[:60000]
		}
		rec := Record{Key: key, Version: version, Flags: flags, Value: value}
		got, n, err := Decode(Encode(rec))
		if err != nil || n != EncodedLen(len(key), len(value)) {
			return false
		}
		return bytes.Equal(got.Key, key) && got.Version == version &&
			got.Flags == flags && bytes.Equal(got.Value, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
