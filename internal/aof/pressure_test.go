package aof

import (
	"bytes"
	"testing"
)

func TestUnderPressureDisabledByDefault(t *testing.T) {
	s, _ := Open(testFS(t, 16), smallConfig())
	s.Append(Record{Key: []byte("k"), Version: 1, Value: bytes.Repeat([]byte{1}, 3<<20)})
	if s.UnderPressure() {
		t.Fatal("pressure must be disabled when MinFreeBytes is zero")
	}
}

func TestUnderPressureThreshold(t *testing.T) {
	// Device: 16 blocks x 256KB = 4 MB. Pressure floor: 2 MB free.
	cfg := Config{FileSize: 1 << 20, GCThreshold: 0.25, MinFreeBytes: 2 << 20}
	s, _ := Open(testFS(t, 16), cfg)
	if s.UnderPressure() {
		t.Fatal("fresh store should not report pressure")
	}
	val := bytes.Repeat([]byte{2}, 512<<10)
	for i := 0; i < 5; i++ { // ~2.5 MB used -> free < 2 MB
		if _, _, _, err := s.Append(Record{Key: []byte{byte(i)}, Version: 1, Value: val}); err != nil {
			t.Fatal(err)
		}
	}
	if !s.UnderPressure() {
		t.Fatal("store should report pressure once free space < MinFreeBytes")
	}
}

func TestPressureCandidatePicksEmptiest(t *testing.T) {
	s, _ := Open(testFS(t, 64), smallConfig())
	val := bytes.Repeat([]byte{3}, 100<<10)
	var refs []Ref
	for i := 0; i < 25; i++ { // several sealed 1MB files
		ref, _, _, _ := s.Append(Record{Key: []byte{byte(i)}, Version: 1, Value: val})
		refs = append(refs, ref)
	}
	// No file below the candidate ceiling yet (all fully live).
	if _, ok := s.PressureCandidate(); ok {
		t.Fatal("fully-live store should have no pressure candidate")
	}
	// Kill 60% of the second file: occupancy ~0.4, above the lazy 0.25
	// threshold (not a normal candidate) but a valid pressure victim.
	second := refs[0].File + 1
	killed := 0
	for _, r := range refs {
		if r.File == second && killed < 6 {
			s.MarkDead(r)
			killed++
		}
	}
	if cands := s.Candidates(); len(cands) != 0 {
		t.Fatalf("lazy candidates = %v, want none at ~0.4 occupancy", cands)
	}
	id, ok := s.PressureCandidate()
	if !ok || id != second {
		t.Fatalf("PressureCandidate = %d, %v; want file %d", id, ok, second)
	}
}

func TestPressureCandidateSkipsNearlyFull(t *testing.T) {
	s, _ := Open(testFS(t, 64), smallConfig())
	val := bytes.Repeat([]byte{4}, 40<<10) // ~25 records per 1MB file
	var refs []Ref
	for i := 0; i < 60; i++ {
		ref, _, _, _ := s.Append(Record{Key: []byte{byte(i)}, Version: 1, Value: val})
		refs = append(refs, ref)
	}
	// Kill just one record of the first file: ~96% occupancy remains,
	// above the 95% ceiling — rewriting it would reclaim almost nothing.
	s.MarkDead(refs[0])
	if id, ok := s.PressureCandidate(); ok {
		t.Fatalf("PressureCandidate = %d, want none for ~96%% occupancy", id)
	}
}
