package aof_test

import (
	"bytes"
	"testing"

	"directload/internal/aof"
)

// FuzzDecode drives arbitrary bytes through the AOF record decoder.
// Anything it accepts must re-encode to the exact bytes consumed (the
// encoding is canonical: recomputing the CRC reproduces the input).
func FuzzDecode(f *testing.F) {
	f.Add(aof.Encode(aof.Record{Seq: 1, Version: 2, Key: []byte("k"), Value: []byte("v")}))
	f.Add(aof.Encode(aof.Record{Seq: 9, Version: 1, Flags: aof.FlagTombstone, Key: []byte("dead")}))
	f.Add(aof.Encode(aof.Record{Seq: 3, Version: 4, Flags: aof.FlagDedup, Key: []byte("dup"), Value: bytes.Repeat([]byte{7}, 512)}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := aof.Decode(data)
		if err != nil {
			return
		}
		if n < aof.EncodedLen(0, 0) || n > len(data) {
			t.Fatalf("decoded length %d outside [header, %d]", n, len(data))
		}
		enc := aof.Encode(rec)
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("re-encode differs from the %d input bytes consumed", n)
		}
		rec2, n2, err := aof.Decode(enc)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if n2 != n || rec2.Seq != rec.Seq || rec2.Version != rec.Version || rec2.Flags != rec.Flags ||
			!bytes.Equal(rec2.Key, rec.Key) || !bytes.Equal(rec2.Value, rec.Value) {
			t.Fatalf("round-trip record mismatch")
		}
	})
}
