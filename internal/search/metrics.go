package search

import "directload/internal/metrics"

// searchMetrics holds the search.* registry handles. Every handle is a
// nil-safe no-op when built from a nil registry, so uninstrumented
// paths stay allocation-free; the struct itself is shared by a service
// and every snapshot it opens.
type searchMetrics struct {
	termLat   *metrics.Histogram // search.query.term.latency_us
	andLat    *metrics.Histogram // search.query.and.latency_us
	phraseLat *metrics.Histogram // search.query.phrase.latency_us

	queries       *metrics.Counter // search.query.count
	queryErrors   *metrics.Counter // search.query.errors
	blocksScanned *metrics.Counter // search.postings.blocks_scanned
	blocksSkipped *metrics.Counter // search.postings.blocks_skipped
	publishes     *metrics.Counter // search.index.publishes
	snapLoads     *metrics.Counter // search.snapshot.loads
	snapVersion   *metrics.Gauge   // search.snapshot.version
}

func newSearchMetrics(reg *metrics.Registry) *searchMetrics {
	return &searchMetrics{
		termLat:       reg.Histogram("search.query.term.latency_us"),
		andLat:        reg.Histogram("search.query.and.latency_us"),
		phraseLat:     reg.Histogram("search.query.phrase.latency_us"),
		queries:       reg.Counter("search.query.count"),
		queryErrors:   reg.Counter("search.query.errors"),
		blocksScanned: reg.Counter("search.postings.blocks_scanned"),
		blocksSkipped: reg.Counter("search.postings.blocks_skipped"),
		publishes:     reg.Counter("search.index.publishes"),
		snapLoads:     reg.Counter("search.snapshot.loads"),
		snapVersion:   reg.Gauge("search.snapshot.version"),
	}
}

// recordQuery charges one successful query to its class histogram and
// the postings-block counters. Nil-safe: snapshots without metrics
// skip everything.
func (m *searchMetrics) recordQuery(class QueryClass, latencyUs float64, st QueryStats) {
	if m == nil {
		return
	}
	m.queries.Inc()
	switch class {
	case ClassTerm:
		m.termLat.Observe(latencyUs)
	case ClassPhrase:
		m.phraseLat.Observe(latencyUs)
	default:
		m.andLat.Observe(latencyUs)
	}
	m.blocksScanned.Add(int64(st.BlocksScanned))
	m.blocksSkipped.Add(int64(st.BlocksSkipped))
}

// recordError counts one failed query. Nil-safe.
func (m *searchMetrics) recordError() {
	if m == nil {
		return
	}
	m.queryErrors.Inc()
}
