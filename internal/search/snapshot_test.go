package search

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/indexer"
	"directload/internal/ssd"
)

// coreDBEngine adapts *core.DB (the production storage engine) to the
// search Engine interface, mirroring the qindbd wiring.
type coreDBEngine struct{ db *core.DB }

func (e coreDBEngine) Put(key string, version uint64, value []byte) error {
	_, err := e.db.Put([]byte(key), version, value, false)
	return err
}

func (e coreDBEngine) Get(key string, version uint64) ([]byte, error) {
	v, _, err := e.db.Get([]byte(key), version)
	return v, err
}

func newCoreEngine(t testing.TB) Engine {
	t.Helper()
	dev, err := ssd.NewDevice(ssd.DefaultConfig(256 << 20))
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF: aof.Config{FileSize: 2 << 20, GCThreshold: 0.25}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	return coreDBEngine{db: db}
}

// queryFingerprint runs a fixed query mix against one snapshot and
// returns the JSON-marshalled results — a byte-stable digest of what a
// client would observe.
func queryFingerprint(t *testing.T, sn *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	queries := []struct {
		class QueryClass
		terms []string
	}{
		{ClassTerm, []string{"term00001"}},
		{ClassTerm, []string{"term00042"}},
		{ClassAnd, []string{"term00001", "term00002"}},
		{ClassAnd, []string{"term00003", "term00007", "term00001"}},
		{ClassPhrase, []string{"term00001", "term00002"}},
	}
	for _, q := range queries {
		res, _, err := sn.Query(context.Background(), q.class, q.terms, 0)
		if err != nil {
			t.Fatalf("%s %v: %v", q.class, q.terms, err)
		}
		if err := json.NewEncoder(&buf).Encode(res); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestSnapshotIsolationDuringPublish is the acceptance check from the
// issue: queries pinned to version N must return byte-identical results
// while version N+1 (and beyond) publish concurrently into the same
// engine.
func TestSnapshotIsolationDuringPublish(t *testing.T) {
	eng := newCoreEngine(t)
	svc := NewService(eng, nil)

	cfg := indexer.DefaultCrawlConfig()
	cfg.Documents = 250
	cfg.VocabSize = 120
	cfg.DocTerms = 30
	cfg.Seed = 11
	crawler, err := indexer.NewCrawler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	crawler.Crawl()
	info, err := svc.Ingest("web", FromDocuments(crawler.Corpus(), 6))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Fatalf("first publish got version %d", info.Version)
	}

	pinned, err := svc.Snapshot("web", 1)
	if err != nil {
		t.Fatal(err)
	}
	baseline := queryFingerprint(t, pinned)
	segV1, _, err := LoadSegment(eng, "web", 1)
	if err != nil {
		t.Fatal(err)
	}
	rawV1 := append([]byte(nil), segV1.Bytes()...)

	// Publisher: four more versions with mutated corpora, racing the
	// readers below.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 2; v <= 5; v++ {
			crawler.Crawl()
			if _, err := svc.Ingest("web", FromDocuments(crawler.Corpus(), 6)); err != nil {
				t.Errorf("publish v%d: %v", v, err)
				return
			}
		}
	}()

	// Readers: the pinned snapshot must stay byte-stable throughout,
	// both through the service cache and via fresh engine loads.
	var rwg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for i := 0; i < 10; i++ {
				sn, err := svc.Snapshot("web", 1)
				if err != nil {
					t.Error(err)
					return
				}
				if got := queryFingerprint(t, sn); !bytes.Equal(got, baseline) {
					t.Error("pinned snapshot results changed during concurrent publish")
					return
				}
			}
		}()
	}
	rwg.Wait()
	wg.Wait()

	// After all publishes: version 1's stored bytes are untouched...
	reloaded, _, err := LoadSegment(eng, "web", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reloaded.Bytes(), rawV1) {
		t.Fatal("version 1 segment bytes changed after later publishes")
	}
	fresh := NewSnapshot("web", 1, reloaded)
	if got := queryFingerprint(t, fresh); !bytes.Equal(got, baseline) {
		t.Fatal("fresh load of version 1 disagrees with the pinned baseline")
	}
	// ...and unpinned queries serve the newest version.
	if latest, _ := svc.Latest("web"); latest != 5 {
		t.Fatalf("latest = %d, want 5", latest)
	}
	_, _, served, err := svc.Query(context.Background(), "web", 0, ClassTerm, []string{"term00001"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if served != 5 {
		t.Fatalf("unpinned query served version %d, want 5", served)
	}
}

func TestServiceLifecycle(t *testing.T) {
	svc := NewService(NewMemEngine(), nil)
	if err := svc.Create("docs"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Create("docs"); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if err := svc.Create("bad name"); err == nil {
		t.Fatal("invalid name accepted")
	}
	if _, err := svc.Snapshot("docs", 0); err == nil || !strings.Contains(err.Error(), "no published version") {
		t.Fatalf("snapshot of empty index: %v", err)
	}
	if _, err := svc.Snapshot("nosuch", 0); err == nil || !strings.Contains(err.Error(), "unknown index") {
		t.Fatalf("snapshot of unknown index: %v", err)
	}

	info, err := svc.Ingest("docs", smallDocs())
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Docs != 3 || info.Terms != 4 {
		t.Fatalf("ingest info = %+v", info)
	}
	list := svc.List()
	if len(list) != 1 || list[0] != info {
		t.Fatalf("List = %v", list)
	}

	res, _, served, err := svc.Query(context.Background(), "docs", 0, ClassTerm, []string{"banana"}, 0)
	if err != nil || served != 1 {
		t.Fatalf("query: %v (served %d)", err, served)
	}
	if len(res) != 2 || res[0].URL != "u/a" || res[1].URL != "u/b" {
		t.Fatalf("banana hits = %v", res)
	}

	// Second ingest bumps the version; pinned queries still see v1.
	v2docs := append(smallDocs(), DocInput{URL: "u/z", Terms: []string{"banana"}})
	if info, err = svc.Ingest("docs", v2docs); err != nil || info.Version != 2 {
		t.Fatalf("second ingest: %+v, %v", info, err)
	}
	res, _, served, err = svc.Query(context.Background(), "docs", 1, ClassTerm, []string{"banana"}, 0)
	if err != nil || served != 1 || len(res) != 2 {
		t.Fatalf("pinned query: %d hits, served %d, err %v", len(res), served, err)
	}
	res, _, served, err = svc.Query(context.Background(), "docs", 0, ClassTerm, []string{"banana"}, 0)
	if err != nil || served != 2 || len(res) != 3 {
		t.Fatalf("latest query: %d hits, served %d, err %v", len(res), served, err)
	}

	// Lifecycle errors surface typed sentinels for the REST layer.
	if _, _, _, err := svc.Query(context.Background(), "docs", 0, ClassAnd, nil, 0); !errors.Is(err, ErrEmptyQuery) {
		t.Fatalf("empty query: %v", err)
	}
	bad := []DocInput{{URL: "u/x", Terms: []string{"a", ""}}}
	if _, err := svc.Ingest("docs", bad); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("bad ingest: %v", err)
	}
}

// TestSnapshotCacheReload evicts the snapshot cache past its bound and
// proves pinned versions reload identically from the engine.
func TestSnapshotCacheReload(t *testing.T) {
	svc := NewService(NewMemEngine(), nil)
	if _, err := svc.Ingest("a", smallDocs()); err != nil {
		t.Fatal(err)
	}
	sn1, err := svc.Snapshot("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	base := queryFingerprint7(t, sn1)
	// Publish far past the cache bound so "a@1" is eventually evicted.
	for i := 0; i < maxCachedSnapshots+8; i++ {
		if _, err := svc.Ingest("a", smallDocs()); err != nil {
			t.Fatal(err)
		}
	}
	sn, err := svc.Snapshot("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(queryFingerprint7(t, sn), base) {
		t.Fatal("reloaded snapshot differs from original")
	}
}

// queryFingerprint7 digests the smallDocs corpus.
func queryFingerprint7(t *testing.T, sn *Snapshot) []byte {
	t.Helper()
	res, _, err := sn.Query(context.Background(), ClassTerm, []string{"banana"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
