package search

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"directload/internal/indexer"
)

func crawlSegment(t *testing.T, seed int64) *Segment {
	t.Helper()
	cfg := indexer.DefaultCrawlConfig()
	cfg.Documents = 200
	cfg.VocabSize = 90
	cfg.DocTerms = 25
	cfg.Seed = seed
	c, err := indexer.NewCrawler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Crawl()
	seg, err := BuildSegment(FromDocuments(c.Corpus(), 5))
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

// TestCIFFRoundTrip: export → import must preserve everything CIFF can
// carry — documents, lengths, and tf-bearing postings — so term and
// conjunctive queries agree exactly. Positions are not part of CIFF, so
// phrase queries degrade to ErrNoPositions.
func TestCIFFRoundTrip(t *testing.T) {
	seg := crawlSegment(t, 3)
	imported, err := ImportCIFF(ExportCIFF(seg))
	if err != nil {
		t.Fatal(err)
	}
	if imported.DocCount() != seg.DocCount() || imported.TermCount() != seg.TermCount() {
		t.Fatalf("shape changed: %s -> %s", seg, imported)
	}
	if imported.HasPositions() {
		t.Fatal("CIFF import must not claim positions")
	}
	for id := uint32(0); id < uint32(seg.DocCount()); id++ {
		a, b := seg.Doc(id), imported.Doc(id)
		if a.URL != b.URL || a.Len != b.Len {
			t.Fatalf("doc %d: %+v -> %+v", id, a, b)
		}
	}
	if !reflect.DeepEqual(seg.Terms(), imported.Terms()) {
		t.Fatal("term dictionaries differ")
	}
	for _, term := range seg.Terms() {
		if seg.DocFreq(term) != imported.DocFreq(term) {
			t.Fatalf("df(%q) changed", term)
		}
		want, _ := seg.QueryTerm(term, 0)
		got, _ := imported.QueryTerm(term, 0)
		// Imported docs carry no abstracts — compare the rest.
		for i := range got {
			got[i].Abstract = want[i].Abstract
		}
		if !sameResults(got, want) {
			t.Fatalf("term %q postings differ after round trip", term)
		}
	}
	terms := seg.Terms()[:2]
	want, _, err := seg.QueryAnd(terms, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := imported.QueryAnd(terms, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		got[i].Abstract = want[i].Abstract
	}
	if !sameResults(got, want) {
		t.Fatal("AND results differ after round trip")
	}
	if _, _, err := imported.QueryPhrase(terms, 0); !errors.Is(err, ErrNoPositions) {
		t.Fatalf("phrase on positionless import: %v", err)
	}
}

// TestCIFFExportIdempotent: export∘import is a fixed point — importing
// an export and re-exporting yields identical bytes.
func TestCIFFExportIdempotent(t *testing.T) {
	seg := crawlSegment(t, 4)
	ciff1 := ExportCIFF(seg)
	imported, err := ImportCIFF(ciff1)
	if err != nil {
		t.Fatal(err)
	}
	ciff2 := ExportCIFF(imported)
	if !bytes.Equal(ciff1, ciff2) {
		t.Fatalf("export not idempotent: %d vs %d bytes", len(ciff1), len(ciff2))
	}
}

func TestCIFFEmptySegment(t *testing.T) {
	seg, err := BuildSegment(nil)
	if err != nil {
		t.Fatal(err)
	}
	imported, err := ImportCIFF(ExportCIFF(seg))
	if err != nil {
		t.Fatal(err)
	}
	if imported.DocCount() != 0 || imported.TermCount() != 0 {
		t.Fatalf("empty round trip: %s", imported)
	}
}

// TestCIFFRejectsMalformed sweeps truncations and bit flips: decode may
// reject or accept, but must never panic, and anything accepted must
// re-export to its own canonical form.
func TestCIFFRejectsMalformed(t *testing.T) {
	seg := crawlSegment(t, 5)
	ciff := ExportCIFF(seg)
	for n := 0; n < len(ciff); n += 13 {
		if _, err := ImportCIFF(ciff[:n]); err == nil && n < len(ciff)-1 {
			t.Fatalf("accepted a %d-byte prefix", n)
		}
	}
	if _, err := ImportCIFF(append(append([]byte(nil), ciff...), 0)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
	for i := 0; i < len(ciff); i += 11 {
		mut := append([]byte(nil), ciff...)
		mut[i] ^= 0x20
		if seg2, err := ImportCIFF(mut); err == nil {
			re := ExportCIFF(seg2)
			if _, err := ImportCIFF(re); err != nil {
				t.Fatalf("byte %d: re-export of accepted mutant does not re-import: %v", i, err)
			}
		}
	}
}

// TestCIFFThroughService: import via the lifecycle API publishes a
// queryable version.
func TestCIFFThroughService(t *testing.T) {
	seg := crawlSegment(t, 6)
	svc := NewService(NewMemEngine(), nil)
	info, err := svc.ImportSegment("imported", ExportCIFF(seg))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Docs != seg.DocCount() || info.HasPositions {
		t.Fatalf("import info = %+v", info)
	}
	term := seg.Terms()[0]
	res, _, _, err := svc.Query(context.Background(), "imported", 0, ClassTerm, []string{term}, 3)
	if err != nil || len(res) == 0 {
		t.Fatalf("query imported index: %d hits, %v", len(res), err)
	}
	out, err := svc.ExportSegment("imported", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, ExportCIFF(seg)) {
		t.Fatal("service export differs from direct export")
	}
}
