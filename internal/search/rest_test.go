package search

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"directload/internal/metrics/testutil"
)

func newRESTServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(NewService(NewMemEngine(), nil)))
	t.Cleanup(srv.Close)
	return srv
}

func do(t *testing.T, method, url, contentType string, body []byte) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.String()
}

func TestRESTLifecycle(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := newRESTServer(t)

	resp, body := do(t, "GET", srv.URL+"/index", "", nil)
	if resp.StatusCode != 200 || !strings.Contains(body, "no indexes") {
		t.Fatalf("empty list: %d %q", resp.StatusCode, body)
	}
	resp, _ = do(t, "POST", srv.URL+"/index/web", "", nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	resp, _ = do(t, "POST", srv.URL+"/index/web", "", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: %d", resp.StatusCode)
	}
	resp, _ = do(t, "POST", srv.URL+"/index/bad%20name", "", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad name create: %d", resp.StatusCode)
	}

	// Text ingest: one doc per line.
	text := "u/a apple banana\nu/b banana banana date\nu/c cherry apple cherry\n"
	resp, body = do(t, "POST", srv.URL+"/index/web/ingest", "text/plain", []byte(text))
	if resp.StatusCode != 200 || !strings.Contains(body, "v=1") {
		t.Fatalf("text ingest: %d %q", resp.StatusCode, body)
	}

	// JSON ingest bumps the version.
	docs := []DocInput{{URL: "u/z", Terms: []string{"zebra"}, Abstract: "zebra"}}
	js, _ := json.Marshal(docs)
	resp, body = do(t, "POST", srv.URL+"/index/web/ingest?format=json", "application/json", js)
	if resp.StatusCode != 200 {
		t.Fatalf("json ingest: %d %q", resp.StatusCode, body)
	}
	var info IndexInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil || info.Version != 2 || info.Docs != 1 {
		t.Fatalf("json ingest info: %+v, %v", info, err)
	}

	// Text query against the pinned first version.
	resp, body = do(t, "GET", srv.URL+"/index/web/query?q=banana&version=1", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("query: %d %q", resp.StatusCode, body)
	}
	if !strings.Contains(body, "u/a") || !strings.Contains(body, "u/b") || !strings.Contains(body, "# 2 hits") {
		t.Fatalf("query body:\n%s", body)
	}

	// JSON query, phrase mode, latest version.
	resp, body = do(t, "GET", srv.URL+"/index/web/query?q=zebra&mode=term&format=json", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("json query: %d %q", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Version != 2 || len(qr.Hits) != 1 || qr.Hits[0].URL != "u/z" {
		t.Fatalf("json query response: %+v", qr)
	}

	// Listing shows the latest state.
	resp, body = do(t, "GET", srv.URL+"/index/?format=json", "", nil)
	var infos []IndexInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil || len(infos) != 1 || infos[0].Version != 2 {
		t.Fatalf("list: %d %q (%v)", resp.StatusCode, body, err)
	}
}

func TestRESTExportImportRoundTrip(t *testing.T) {
	srv := newRESTServer(t)
	text := "u/a apple banana\nu/b banana date\n"
	if resp, body := do(t, "POST", srv.URL+"/index/src/ingest", "", []byte(text)); resp.StatusCode != 200 {
		t.Fatalf("ingest: %d %q", resp.StatusCode, body)
	}
	resp, ciff := do(t, "GET", srv.URL+"/index/src/export", "", nil)
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("export: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	resp, body := do(t, "POST", srv.URL+"/index/copy/import?format=json", "application/octet-stream", []byte(ciff))
	if resp.StatusCode != 200 {
		t.Fatalf("import: %d %q", resp.StatusCode, body)
	}
	var info IndexInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil || info.Docs != 2 || info.HasPositions {
		t.Fatalf("import info: %+v, %v", info, err)
	}
	// The copy answers term queries identically (minus abstracts).
	_, got := do(t, "GET", srv.URL+"/index/copy/query?q=banana&format=json", "", nil)
	var qr queryResponse
	if err := json.Unmarshal([]byte(got), &qr); err != nil || len(qr.Hits) != 2 {
		t.Fatalf("copy query: %q (%v)", got, err)
	}
	// Re-export is byte-identical (CIFF canonical form).
	_, ciff2 := do(t, "GET", srv.URL+"/index/copy/export", "", nil)
	if ciff2 != ciff {
		t.Fatal("re-export differs")
	}
}

func TestRESTErrors(t *testing.T) {
	srv := newRESTServer(t)
	cases := []struct {
		method, path string
		body         string
		want         int
	}{
		{"GET", "/index/nosuch/query?q=x", "", http.StatusNotFound},
		{"GET", "/index/nosuch/export", "", http.StatusNotFound},
		{"POST", "/index/web/ingest", "", http.StatusBadRequest},
		{"POST", "/index/web/import", "garbage", http.StatusBadRequest},
		{"GET", "/index/web/query?q=", "", http.StatusNotFound}, // index not created yet
	}
	for _, c := range cases {
		resp, body := do(t, c.method, srv.URL+c.path, "", []byte(c.body))
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: got %d (%q), want %d", c.method, c.path, resp.StatusCode, body, c.want)
		}
	}
	// Created but never published: query is 404, empty query on a
	// published index is 400.
	do(t, "POST", srv.URL+"/index/web", "", nil)
	if resp, _ := do(t, "GET", srv.URL+"/index/web/query?q=x", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unpublished query: %d", resp.StatusCode)
	}
	do(t, "POST", srv.URL+"/index/web/ingest", "", []byte("u/a apple\n"))
	if resp, _ := do(t, "GET", srv.URL+"/index/web/query?q=", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty query: %d", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", srv.URL+"/index/web/query?q=x&mode=bogus", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mode: %d", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", srv.URL+"/index/web/query?q=x&version=zap", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad version: %d", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", srv.URL+"/index/web/query?q=a+b&mode=phrase&version=99", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing version: %d", resp.StatusCode)
	}
}
