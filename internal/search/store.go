package search

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
)

// DefaultChunkSize is how many segment bytes ride in one engine value.
// Segments are chunked so a web-scale index does not need one giant
// value: each chunk is an ordinary versioned engine entry, so the
// engine's dedup, replication and version-retention machinery apply
// unchanged.
const DefaultChunkSize = 64 << 10

// metaMagic brands a serialized IndexMeta.
var metaMagic = []byte("DLSM")

// Engine is the minimal versioned KV surface the search store needs.
// Get must be an exact-version lookup (the core engine's contract), so
// a snapshot pinned to version N never observes version N+1's writes.
type Engine interface {
	Put(key string, version uint64, value []byte) error
	Get(key string, version uint64) ([]byte, error)
}

// MetaKey returns the engine key of an index's per-version metadata.
func MetaKey(name string) string { return "!idx/" + name + "/meta" }

// ChunkKey returns the engine key of one segment chunk.
func ChunkKey(name string, i int) string { return fmt.Sprintf("!idx/%s/seg/%06d", name, i) }

// Pair is one (key, value) an index publish writes; SegmentPairs
// returns them so cluster/fleet callers can publish through their own
// replication paths instead of the Engine interface.
type Pair struct {
	Key   string
	Value []byte
}

// IndexMeta is the per-version index descriptor stored under MetaKey.
// It seals the chunk list: a reader fetches the meta at its pinned
// version and knows exactly which chunks, how many bytes, and what
// checksum to expect.
type IndexMeta struct {
	Chunks   int
	Bytes    int
	Checksum uint32 // CRC-32 (IEEE) of the whole segment
}

// Encode serializes the meta record.
func (m IndexMeta) Encode() []byte {
	buf := append([]byte(nil), metaMagic...)
	buf = binary.AppendUvarint(buf, uint64(m.Chunks))
	buf = binary.AppendUvarint(buf, uint64(m.Bytes))
	buf = binary.AppendUvarint(buf, uint64(m.Checksum))
	return buf
}

// DecodeIndexMeta parses a meta record.
func DecodeIndexMeta(data []byte) (IndexMeta, error) {
	r := &segReader{b: data}
	magic, err := r.bytes(len(metaMagic))
	if err != nil || string(magic) != string(metaMagic) {
		return IndexMeta{}, fmt.Errorf("%w: bad meta magic", ErrBadSegment)
	}
	chunks, err := r.uvarint()
	if err != nil {
		return IndexMeta{}, err
	}
	bytes, err := r.uvarint()
	if err != nil {
		return IndexMeta{}, err
	}
	sum, err := r.uvarint()
	if err != nil {
		return IndexMeta{}, err
	}
	if r.remaining() != 0 {
		return IndexMeta{}, fmt.Errorf("%w: %d trailing meta bytes", ErrBadSegment, r.remaining())
	}
	if chunks > 1<<31 || bytes > 1<<40 || sum > 1<<32-1 {
		return IndexMeta{}, fmt.Errorf("%w: meta fields out of range", ErrBadSegment)
	}
	return IndexMeta{Chunks: int(chunks), Bytes: int(bytes), Checksum: uint32(sum)}, nil
}

// SegmentPairs splits a segment into its publishable (key, value)
// entries: the chunk values followed by the sealing meta record. The
// chunk values alias seg.Bytes().
func SegmentPairs(name string, seg *Segment) []Pair {
	raw := seg.Bytes()
	var pairs []Pair
	for i := 0; i*DefaultChunkSize < len(raw) || i == 0; i++ {
		lo := i * DefaultChunkSize
		hi := lo + DefaultChunkSize
		if hi > len(raw) {
			hi = len(raw)
		}
		pairs = append(pairs, Pair{Key: ChunkKey(name, i), Value: raw[lo:hi]})
	}
	meta := IndexMeta{Chunks: len(pairs), Bytes: len(raw), Checksum: crc32.ChecksumIEEE(raw)}
	return append(pairs, Pair{Key: MetaKey(name), Value: meta.Encode()})
}

// WriteSegment publishes a segment to the engine at one version: all
// chunks first, the sealing meta record last, so a reader that can see
// the meta can see every chunk.
func WriteSegment(eng Engine, name string, version uint64, seg *Segment) error {
	w := NewSegmentWriter(eng, name, version)
	if _, err := w.Write(seg.Bytes()); err != nil {
		_ = w.Abort()
		return err
	}
	return w.Close()
}

// SegmentWriter streams serialized segment bytes into versioned engine
// chunks. Close flushes the final partial chunk and writes the sealing
// meta record — dropping the Close error loses the seal, so callers
// must check it (the errflow analyzer enforces this).
type SegmentWriter struct {
	eng     Engine
	name    string
	version uint64
	buf     []byte
	chunk   int
	n       int
	sum     uint32
	closed  bool
}

// NewSegmentWriter starts a chunked segment write at one version.
func NewSegmentWriter(eng Engine, name string, version uint64) *SegmentWriter {
	return &SegmentWriter{eng: eng, name: name, version: version, buf: make([]byte, 0, DefaultChunkSize)}
}

// Write appends segment bytes, flushing full chunks to the engine.
func (w *SegmentWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("search: write on closed SegmentWriter")
	}
	total := len(p)
	w.sum = crc32.Update(w.sum, crc32.IEEETable, p)
	w.n += total
	for len(p) > 0 {
		space := DefaultChunkSize - len(w.buf)
		if space > len(p) {
			space = len(p)
		}
		w.buf = append(w.buf, p[:space]...)
		p = p[space:]
		if len(w.buf) == DefaultChunkSize {
			if err := w.flush(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

func (w *SegmentWriter) flush() error {
	if err := w.eng.Put(ChunkKey(w.name, w.chunk), w.version, w.buf); err != nil {
		return err
	}
	w.chunk++
	w.buf = w.buf[:0]
	return nil
}

// Close flushes the tail chunk and seals the version with its meta
// record. The segment is not readable until Close returns nil.
func (w *SegmentWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.buf) > 0 || w.chunk == 0 {
		if err := w.flush(); err != nil {
			return err
		}
	}
	meta := IndexMeta{Chunks: w.chunk, Bytes: w.n, Checksum: w.sum}
	return w.eng.Put(MetaKey(w.name), w.version, meta.Encode())
}

// Abort abandons the write without sealing; already-written chunks
// stay as unreachable engine values (no meta points at them).
func (w *SegmentWriter) Abort() error {
	w.closed = true
	return nil
}

// LoadSegment reads the sealed segment at an exact version, verifying
// chunk count, byte count and checksum before the full decode.
func LoadSegment(eng Engine, name string, version uint64) (*Segment, IndexMeta, error) {
	mb, err := eng.Get(MetaKey(name), version)
	if err != nil {
		return nil, IndexMeta{}, fmt.Errorf("search: index %q version %d: %w", name, version, err)
	}
	meta, err := DecodeIndexMeta(mb)
	if err != nil {
		return nil, IndexMeta{}, err
	}
	raw := make([]byte, 0, meta.Bytes)
	for i := 0; i < meta.Chunks; i++ {
		chunk, err := eng.Get(ChunkKey(name, i), version)
		if err != nil {
			return nil, meta, fmt.Errorf("search: index %q version %d chunk %d: %w", name, version, i, err)
		}
		raw = append(raw, chunk...)
	}
	if len(raw) != meta.Bytes {
		return nil, meta, fmt.Errorf("%w: chunks total %d bytes, meta says %d", ErrBadSegment, len(raw), meta.Bytes)
	}
	if sum := crc32.ChecksumIEEE(raw); sum != meta.Checksum {
		return nil, meta, fmt.Errorf("%w: checksum %08x, meta says %08x", ErrBadSegment, sum, meta.Checksum)
	}
	seg, err := DecodeSegment(raw)
	if err != nil {
		return nil, meta, err
	}
	return seg, meta, nil
}

// MemEngine is an in-memory Engine for tests and the fleet-routed
// client path. Safe for concurrent use.
type MemEngine struct {
	mu sync.RWMutex
	m  map[string]map[uint64][]byte
}

// NewMemEngine returns an empty in-memory engine.
func NewMemEngine() *MemEngine {
	return &MemEngine{m: make(map[string]map[uint64][]byte)}
}

// Put stores an exact (key, version) value.
func (e *MemEngine) Put(key string, version uint64, value []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	vs := e.m[key]
	if vs == nil {
		vs = make(map[uint64][]byte)
		e.m[key] = vs
	}
	vs[version] = append([]byte(nil), value...)
	return nil
}

// Get returns the exact (key, version) value.
func (e *MemEngine) Get(key string, version uint64) ([]byte, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if v, ok := e.m[key][version]; ok {
		return v, nil
	}
	return nil, fmt.Errorf("search: not found: %q/%d", key, version)
}

// Keys returns every stored key, sorted (test helper).
func (e *MemEngine) Keys() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.m))
	for k := range e.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
