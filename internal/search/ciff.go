package search

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// CIFF interop: the Common Index File Format (Lin et al., "Supporting
// Interoperability Between Open-Source Search Engines with the Common
// Index File Format") is a varint-delimited sequence of protobuf
// messages — one Header, then Header.num_postings_lists PostingsList
// messages, then Header.num_docs DocRecord messages. The wire format
// is hand-rolled here (no protobuf dependency) but byte-compatible:
//
//	Header       1:version 2:num_postings_lists 3:num_docs
//	             4:total_postings_lists 5:total_docs
//	             6:total_terms_in_collection 7:average_doclength(double)
//	             8:description(string)
//	PostingsList 1:term 2:df 3:cf 4:postings(repeated Posting)
//	Posting      1:docid(d-gap) 2:tf
//	DocRecord    1:docid 2:collection_docid 3:doclength
//
// CIFF carries no positions or abstracts, so imported segments answer
// term and AND queries only (phrase returns ErrNoPositions), and an
// export→import round trip preserves exactly the postings, document
// identifiers and document lengths.

// ErrBadCIFF reports malformed CIFF input.
var ErrBadCIFF = errors.New("search: malformed CIFF")

// ciffDescription marks exports in the CIFF header's free-form field.
const ciffDescription = "directload internal/search export"

// ciffMaxTF bounds imported term frequencies (they must fit the
// segment format's uint32 and stay plausible for a single document).
const ciffMaxTF = 1 << 31

// ciffPosting is one (docID, tf) posting flowing through import.
type ciffPosting struct {
	docID uint32
	tf    uint64
}

// --- protobuf wire helpers --------------------------------------------------

const (
	wireVarint = 0
	wireI64    = 1
	wireLen    = 2
	wireI32    = 5
)

func pbVarintField(dst []byte, field int, v uint64) []byte {
	if v == 0 {
		return dst // proto3: zero-valued scalars are omitted
	}
	dst = binary.AppendUvarint(dst, uint64(field<<3|wireVarint))
	return binary.AppendUvarint(dst, v)
}

func pbBytesField(dst []byte, field int, v []byte) []byte {
	if len(v) == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(field<<3|wireLen))
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}

func pbDoubleField(dst []byte, field int, v float64) []byte {
	if v == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(field<<3|wireI64))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// pbFrame appends one varint-length-delimited message.
func pbFrame(dst, msg []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(msg)))
	return append(dst, msg...)
}

// pbReader walks protobuf wire data. Unlike segReader it accepts
// non-minimal varints (the proto spec does), but every declared length
// is still checked against the remaining input before any allocation.
type pbReader struct {
	b   []byte
	off int
}

func (r *pbReader) remaining() int { return len(r.b) - r.off }

func (r *pbReader) varint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated or oversized varint at %d", ErrBadCIFF, r.off)
	}
	r.off += n
	return v, nil
}

// frame reads one varint-delimited message body.
func (r *pbReader) frame() (*pbReader, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, fmt.Errorf("%w: frame of %d bytes, %d remain", ErrBadCIFF, n, r.remaining())
	}
	msg := &pbReader{b: r.b[r.off : r.off+int(n)]}
	r.off += int(n)
	return msg, nil
}

// field reads the next field key; ok=false at end of message.
func (r *pbReader) field() (num int, wire int, ok bool, err error) {
	if r.remaining() == 0 {
		return 0, 0, false, nil
	}
	key, err := r.varint()
	if err != nil {
		return 0, 0, false, err
	}
	if key>>3 == 0 || key>>3 > uint64(math.MaxInt32) {
		return 0, 0, false, fmt.Errorf("%w: field number %d", ErrBadCIFF, key>>3)
	}
	return int(key >> 3), int(key & 7), true, nil
}

// lenBytes reads a length-delimited payload.
func (r *pbReader) lenBytes() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, fmt.Errorf("%w: %d-byte field, %d remain", ErrBadCIFF, n, r.remaining())
	}
	out := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return out, nil
}

// skip discards one field of the given wire type.
func (r *pbReader) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := r.varint()
		return err
	case wireI64:
		if r.remaining() < 8 {
			return fmt.Errorf("%w: truncated fixed64", ErrBadCIFF)
		}
		r.off += 8
		return nil
	case wireLen:
		_, err := r.lenBytes()
		return err
	case wireI32:
		if r.remaining() < 4 {
			return fmt.Errorf("%w: truncated fixed32", ErrBadCIFF)
		}
		r.off += 4
		return nil
	}
	return fmt.Errorf("%w: wire type %d", ErrBadCIFF, wire)
}

// --- export -----------------------------------------------------------------

// ExportCIFF serializes a segment as a CIFF stream. The output is a
// deterministic function of the segment's postings, documents and
// lengths — exporting an imported segment reproduces the import's
// canonical form byte-for-byte.
func ExportCIFF(seg *Segment) []byte {
	var totalTerms uint64
	for _, d := range seg.docs {
		totalTerms += uint64(d.Len)
	}
	avg := 0.0
	if len(seg.docs) > 0 {
		avg = float64(totalTerms) / float64(len(seg.docs))
	}
	var hdr []byte
	hdr = pbVarintField(hdr, 1, 1) // format version
	hdr = pbVarintField(hdr, 2, uint64(len(seg.terms)))
	hdr = pbVarintField(hdr, 3, uint64(len(seg.docs)))
	hdr = pbVarintField(hdr, 4, uint64(len(seg.terms)))
	hdr = pbVarintField(hdr, 5, uint64(len(seg.docs)))
	hdr = pbVarintField(hdr, 6, totalTerms)
	hdr = pbDoubleField(hdr, 7, avg)
	hdr = pbBytesField(hdr, 8, []byte(ciffDescription))
	out := pbFrame(nil, hdr)

	var msg, pm []byte
	for i := range seg.terms {
		t := &seg.terms[i]
		pairs := make([]ciffPosting, 0, t.docFreq)
		var cf uint64
		it, _ := seg.Postings(t.term, nil)
		for it.Next() {
			tf := uint64(it.TF())
			pairs = append(pairs, ciffPosting{docID: it.DocID(), tf: tf})
			cf += tf
		}
		msg = msg[:0]
		msg = pbBytesField(msg, 1, []byte(t.term))
		msg = pbVarintField(msg, 2, uint64(t.docFreq))
		msg = pbVarintField(msg, 3, cf)
		prev := uint32(0)
		for _, p := range pairs {
			pm = pm[:0]
			pm = pbVarintField(pm, 1, uint64(p.docID-prev)) // d-gap; first is absolute
			pm = pbVarintField(pm, 2, p.tf)
			prev = p.docID
			// An empty Posting message (docid 0, tf 0) cannot occur: tf>=1.
			msg = binary.AppendUvarint(msg, uint64(4<<3|wireLen))
			msg = binary.AppendUvarint(msg, uint64(len(pm)))
			msg = append(msg, pm...)
		}
		out = pbFrame(out, msg)
	}
	for i, d := range seg.docs {
		msg = msg[:0]
		msg = pbVarintField(msg, 1, uint64(i))
		msg = pbBytesField(msg, 2, []byte(d.URL))
		msg = pbVarintField(msg, 3, uint64(d.Len))
		out = pbFrame(out, msg)
	}
	return out
}

// --- import -----------------------------------------------------------------

// ImportCIFF parses a CIFF stream into a segment. The importer accepts
// any field order and skips unknown fields (standard proto semantics)
// but rejects structural lies: df disagreeing with the posting count,
// non-increasing doc IDs, out-of-range references, duplicate terms or
// collection doc IDs. CIFF doc IDs are positional; the segment orders
// documents by collection docid (URL), so postings are remapped.
// Allocation is bounded by the input size throughout.
func ImportCIFF(data []byte) (*Segment, error) {
	r := &pbReader{b: data}
	hdr, err := r.frame()
	if err != nil {
		return nil, err
	}
	var numLists, numDocs uint64
	for {
		num, wire, ok, err := hdr.field()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		switch {
		case num == 2 && wire == wireVarint:
			if numLists, err = hdr.varint(); err != nil {
				return nil, err
			}
		case num == 3 && wire == wireVarint:
			if numDocs, err = hdr.varint(); err != nil {
				return nil, err
			}
		default:
			if err := hdr.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	// Every message costs at least one framing byte, so the declared
	// counts cannot exceed the remaining input (bounds every make below).
	if numLists > uint64(r.remaining()) || numDocs > uint64(r.remaining()) ||
		numLists+numDocs > uint64(r.remaining()) {
		return nil, fmt.Errorf("%w: header declares %d lists + %d docs, %d bytes remain",
			ErrBadCIFF, numLists, numDocs, r.remaining())
	}

	terms := make([]string, 0, numLists)
	lists := make(map[string][]ciffPosting, numLists)
	for i := 0; i < int(numLists); i++ {
		msg, err := r.frame()
		if err != nil {
			return nil, fmt.Errorf("postings list %d: %w", i, err)
		}
		term, df, postings, err := parseCIFFPostingsList(msg)
		if err != nil {
			return nil, fmt.Errorf("postings list %d: %w", i, err)
		}
		if df != uint64(len(postings)) {
			return nil, fmt.Errorf("%w: list %q declares df=%d, has %d postings", ErrBadCIFF, term, df, len(postings))
		}
		if len(postings) == 0 {
			return nil, fmt.Errorf("%w: empty postings list %q", ErrBadCIFF, term)
		}
		if _, dup := lists[term]; dup {
			return nil, fmt.Errorf("%w: duplicate term %q", ErrBadCIFF, term)
		}
		terms = append(terms, term)
		lists[term] = postings
	}

	docs := make([]DocEntry, 0, numDocs)
	for i := 0; i < int(numDocs); i++ {
		msg, err := r.frame()
		if err != nil {
			return nil, fmt.Errorf("doc record %d: %w", i, err)
		}
		d, docid, err := parseCIFFDocRecord(msg)
		if err != nil {
			return nil, fmt.Errorf("doc record %d: %w", i, err)
		}
		if docid != uint64(i) {
			return nil, fmt.Errorf("%w: doc record %d has docid %d", ErrBadCIFF, i, docid)
		}
		docs = append(docs, d)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCIFF, r.remaining())
	}

	// Remap positional CIFF doc IDs onto URL-sorted segment doc IDs.
	perm := make([]int, len(docs))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return docs[perm[a]].URL < docs[perm[b]].URL })
	sorted := make([]DocEntry, len(docs))
	old2new := make([]uint32, len(docs))
	for newID, oldID := range perm {
		if docs[oldID].URL == "" || (newID > 0 && sorted[newID-1].URL == docs[oldID].URL) {
			return nil, fmt.Errorf("%w: %v", ErrDocOrder, docs[oldID].URL)
		}
		sorted[newID] = docs[oldID]
		old2new[oldID] = uint32(newID)
	}
	sort.Strings(terms)
	for _, t := range terms {
		lst := lists[t]
		for i := range lst {
			if lst[i].docID >= uint32(len(docs)) {
				return nil, fmt.Errorf("%w: term %q references doc %d of %d", ErrBadCIFF, t, lst[i].docID, len(docs))
			}
			lst[i].docID = old2new[lst[i].docID]
		}
		sort.Slice(lst, func(a, b int) bool { return lst[a].docID < lst[b].docID })
	}
	seg, err := buildFromPostings(sorted, terms, lists)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCIFF, err)
	}
	return seg, nil
}

func parseCIFFPostingsList(msg *pbReader) (term string, df uint64, postings []ciffPosting, err error) {
	var prev uint64
	for {
		num, wire, ok, ferr := msg.field()
		if ferr != nil {
			return "", 0, nil, ferr
		}
		if !ok {
			break
		}
		switch {
		case num == 1 && wire == wireLen:
			b, err := msg.lenBytes()
			if err != nil {
				return "", 0, nil, err
			}
			term = string(b)
		case num == 2 && wire == wireVarint:
			if df, err = msg.varint(); err != nil {
				return "", 0, nil, err
			}
		case num == 4 && wire == wireLen:
			pm, err := msg.frame()
			if err != nil {
				return "", 0, nil, err
			}
			var gap, tf uint64
			for {
				pnum, pwire, pok, perr := pm.field()
				if perr != nil {
					return "", 0, nil, perr
				}
				if !pok {
					break
				}
				switch {
				case pnum == 1 && pwire == wireVarint:
					if gap, err = pm.varint(); err != nil {
						return "", 0, nil, err
					}
				case pnum == 2 && pwire == wireVarint:
					if tf, err = pm.varint(); err != nil {
						return "", 0, nil, err
					}
				default:
					if err := pm.skip(pwire); err != nil {
						return "", 0, nil, err
					}
				}
			}
			if tf == 0 || tf > ciffMaxTF {
				return "", 0, nil, fmt.Errorf("%w: posting tf %d", ErrBadCIFF, tf)
			}
			if len(postings) > 0 && gap == 0 {
				return "", 0, nil, fmt.Errorf("%w: zero d-gap", ErrBadCIFF)
			}
			prev += gap
			if prev > math.MaxUint32 {
				return "", 0, nil, fmt.Errorf("%w: doc ID %d overflows", ErrBadCIFF, prev)
			}
			postings = append(postings, ciffPosting{docID: uint32(prev), tf: tf})
		default:
			if err := msg.skip(wire); err != nil {
				return "", 0, nil, err
			}
		}
	}
	if term == "" {
		return "", 0, nil, fmt.Errorf("%w: postings list without term", ErrBadCIFF)
	}
	return term, df, postings, nil
}

func parseCIFFDocRecord(msg *pbReader) (d DocEntry, docid uint64, err error) {
	for {
		num, wire, ok, ferr := msg.field()
		if ferr != nil {
			return DocEntry{}, 0, ferr
		}
		if !ok {
			break
		}
		switch {
		case num == 1 && wire == wireVarint:
			if docid, err = msg.varint(); err != nil {
				return DocEntry{}, 0, err
			}
		case num == 2 && wire == wireLen:
			b, err := msg.lenBytes()
			if err != nil {
				return DocEntry{}, 0, err
			}
			d.URL = string(b)
		case num == 3 && wire == wireVarint:
			dl, err := msg.varint()
			if err != nil {
				return DocEntry{}, 0, err
			}
			if dl > 1<<31 {
				return DocEntry{}, 0, fmt.Errorf("%w: doclength %d", ErrBadCIFF, dl)
			}
			d.Len = int(dl)
		default:
			if err := msg.skip(wire); err != nil {
				return DocEntry{}, 0, err
			}
		}
	}
	if d.URL == "" {
		return DocEntry{}, 0, fmt.Errorf("%w: doc record without collection_docid", ErrBadCIFF)
	}
	return d, docid, nil
}
