package search

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestIndexMetaRoundTrip(t *testing.T) {
	m := IndexMeta{Chunks: 3, Bytes: 123456, Checksum: 0xdeadbeef}
	got, err := DecodeIndexMeta(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("meta round trip: %+v != %+v", got, m)
	}
	if _, err := DecodeIndexMeta([]byte("nope")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := DecodeIndexMeta(append(m.Encode(), 0)); err == nil {
		t.Fatal("trailing meta bytes accepted")
	}
}

// bigDocs builds a corpus whose segment spans several chunks.
func bigDocs(n int) []DocInput {
	docs := make([]DocInput, n)
	for i := range docs {
		docs[i] = DocInput{
			URL:      fmt.Sprintf("u/%06d", i),
			Terms:    []string{fmt.Sprintf("t%04d", i%50), "shared", fmt.Sprintf("t%04d", (i+7)%50)},
			Abstract: strings.Repeat("x", 200),
		}
	}
	return docs
}

func TestWriteLoadSegmentChunked(t *testing.T) {
	seg, err := BuildSegment(bigDocs(2000))
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Bytes()) <= 2*DefaultChunkSize {
		t.Fatalf("test corpus too small to chunk: %d bytes", len(seg.Bytes()))
	}
	eng := NewMemEngine()
	if err := WriteSegment(eng, "web", 1, seg); err != nil {
		t.Fatal(err)
	}
	meta, err := DecodeIndexMeta(mustGet(t, eng, MetaKey("web"), 1))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Chunks < 3 || meta.Bytes != len(seg.Bytes()) {
		t.Fatalf("meta = %+v for a %d-byte segment", meta, len(seg.Bytes()))
	}
	loaded, meta2, err := LoadSegment(eng, "web", 1)
	if err != nil {
		t.Fatal(err)
	}
	if meta2 != meta {
		t.Fatalf("loaded meta %+v != written %+v", meta2, meta)
	}
	if !bytes.Equal(loaded.Bytes(), seg.Bytes()) {
		t.Fatal("loaded segment differs from the written one")
	}
}

func mustGet(t *testing.T, eng Engine, key string, ver uint64) []byte {
	t.Helper()
	v, err := eng.Get(key, ver)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestLoadSegmentDetectsCorruption(t *testing.T) {
	seg, err := BuildSegment(smallDocs())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewMemEngine()
	if err := WriteSegment(eng, "idx", 1, seg); err != nil {
		t.Fatal(err)
	}
	// Flip a chunk byte under the sealed meta: the checksum must catch it.
	chunk := mustGet(t, eng, ChunkKey("idx", 0), 1)
	chunk[len(chunk)/2] ^= 0xff
	if err := eng.Put(ChunkKey("idx", 0), 1, chunk); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSegment(eng, "idx", 1); err == nil {
		t.Fatal("corrupted chunk loaded without error")
	}
	if _, _, err := LoadSegment(eng, "idx", 2); err == nil {
		t.Fatal("unpublished version loaded without error")
	}
}

// failingEngine fails puts after a budget — exercises the writer's
// error paths.
type failingEngine struct {
	*MemEngine
	budget int
}

func (e *failingEngine) Put(key string, version uint64, value []byte) error {
	if e.budget <= 0 {
		return fmt.Errorf("boom")
	}
	e.budget--
	return e.MemEngine.Put(key, version, value)
}

func TestSegmentWriterErrors(t *testing.T) {
	seg, err := BuildSegment(bigDocs(2000))
	if err != nil {
		t.Fatal(err)
	}
	for budget := 0; budget < 4; budget++ {
		eng := &failingEngine{MemEngine: NewMemEngine(), budget: budget}
		if err := WriteSegment(eng, "idx", 1, seg); err == nil {
			t.Fatalf("budget %d: write succeeded", budget)
		}
		// Nothing sealed: the meta record must not exist.
		if _, err := eng.Get(MetaKey("idx"), 1); err == nil {
			t.Fatalf("budget %d: meta sealed despite failed write", budget)
		}
	}
	w := NewSegmentWriter(NewMemEngine(), "idx", 1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal("second close must be a no-op")
	}
}

func TestSegmentPairsMatchWriter(t *testing.T) {
	seg, err := BuildSegment(bigDocs(2000))
	if err != nil {
		t.Fatal(err)
	}
	pairs := SegmentPairs("p", seg)
	eng := NewMemEngine()
	for _, p := range pairs {
		if err := eng.Put(p.Key, 5, p.Value); err != nil {
			t.Fatal(err)
		}
	}
	loaded, _, err := LoadSegment(eng, "p", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loaded.Bytes(), seg.Bytes()) {
		t.Fatal("pairs-published segment differs")
	}
	// Pairs and the streaming writer must produce identical engine state.
	eng2 := NewMemEngine()
	if err := WriteSegment(eng2, "p", 5, seg); err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if !bytes.Equal(mustGet(t, eng, p.Key, 5), mustGet(t, eng2, p.Key, 5)) {
			t.Fatalf("key %s differs between pairs and writer", p.Key)
		}
	}
}
