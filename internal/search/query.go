package search

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"directload/internal/metrics"
)

// QueryClass selects the execution strategy.
type QueryClass string

// Query classes.
const (
	ClassTerm   QueryClass = "term"   // single-term lookup
	ClassAnd    QueryClass = "and"    // conjunctive intersection, block-skip early exit
	ClassPhrase QueryClass = "phrase" // consecutive positions
)

// ParseQueryClass validates a query-class name ("" defaults to and).
func ParseQueryClass(s string) (QueryClass, error) {
	switch QueryClass(s) {
	case "":
		return ClassAnd, nil
	case ClassTerm, ClassAnd, ClassPhrase:
		return QueryClass(s), nil
	}
	return "", fmt.Errorf("%w: %q (want term, and or phrase)", ErrUnknownClass, s)
}

// Result is one query hit, in doc-ID order.
type Result struct {
	DocID    uint32 `json:"doc_id"`
	URL      string `json:"url"`
	Abstract string `json:"abstract,omitempty"`
	// TF is the summed term frequency across the query terms — the
	// stand-in ranking signal.
	TF int `json:"tf"`
}

// QueryStats reports the work one query did.
type QueryStats struct {
	BlocksScanned int `json:"blocks_scanned"`
	BlocksSkipped int `json:"blocks_skipped"`
}

// Snapshot is a query view pinned to one sealed index version: it holds
// the fully decoded segment, so concurrent publishes of later versions
// cannot change its results. Safe for concurrent queries.
type Snapshot struct {
	Name    string
	Version uint64
	Seg     *Segment

	reg *metrics.Registry
	met *searchMetrics
}

// NewSnapshot pins a decoded segment as a query view (used by callers
// that load segments themselves, e.g. the fleet-routed client path).
func NewSnapshot(name string, version uint64, seg *Segment) *Snapshot {
	return &Snapshot{Name: name, Version: version, Seg: seg}
}

// SetMetrics routes the snapshot's query metrics and trace spans
// through reg. A nil registry keeps the path allocation-free.
func (sn *Snapshot) SetMetrics(reg *metrics.Registry) {
	sn.reg = reg
	sn.met = newSearchMetrics(reg)
}

// setServiceMetrics shares the owning service's handles.
func (sn *Snapshot) setServiceMetrics(reg *metrics.Registry, met *searchMetrics) {
	sn.reg = reg
	sn.met = met
}

// Query executes one query of the given class against the pinned
// version, recording per-class latency, postings-block counters and a
// `search.query` trace span. limit <= 0 returns every hit.
func (sn *Snapshot) Query(ctx context.Context, class QueryClass, terms []string, limit int) (res []Result, stats QueryStats, err error) {
	start := time.Now()
	_, end := sn.reg.StartSpanNote(ctx, "search.query",
		fmt.Sprintf("%s %q on %s@v%d", class, strings.Join(terms, " "), sn.Name, sn.Version))
	defer func() { end(err) }()

	switch class {
	case ClassTerm:
		if len(terms) != 1 {
			err = fmt.Errorf("%w: term query wants exactly one term, got %d", ErrEmptyQuery, len(terms))
		} else {
			res, stats = sn.Seg.QueryTerm(terms[0], limit)
		}
	case ClassAnd:
		res, stats, err = sn.Seg.QueryAnd(terms, limit)
	case ClassPhrase:
		res, stats, err = sn.Seg.QueryPhrase(terms, limit)
	default:
		err = fmt.Errorf("%w: %q", ErrUnknownClass, class)
	}

	if err != nil {
		sn.met.recordError()
		return nil, stats, err
	}
	sn.met.recordQuery(class, float64(time.Since(start).Microseconds()), stats)
	return res, stats, nil
}

// QueryTerm returns every document containing term, in doc-ID order.
func (s *Segment) QueryTerm(term string, limit int) ([]Result, QueryStats) {
	var st IterStats
	var out []Result
	it, ok := s.Postings(term, &st)
	if ok {
		for it.Next() {
			out = append(out, s.result(it.DocID(), it.TF()))
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out, QueryStats{BlocksScanned: st.BlocksScanned, BlocksSkipped: st.BlocksSkipped}
}

// QueryAnd intersects the terms' postings with a leapfrog join: the
// iterators are ordered rarest-first and each candidate doc ID is
// Advance()d through the rest, so whole blocks of the common terms are
// skipped off their skip entries without being decoded.
func (s *Segment) QueryAnd(terms []string, limit int) ([]Result, QueryStats, error) {
	terms = dedupTerms(terms)
	if len(terms) == 0 {
		return nil, QueryStats{}, ErrEmptyQuery
	}
	var st IterStats
	its := make([]*Postings, 0, len(terms))
	for _, t := range terms {
		it, ok := s.Postings(t, &st)
		if !ok {
			// A missing term empties the conjunction before any I/O.
			return nil, QueryStats{}, nil
		}
		its = append(its, it)
	}
	sort.Slice(its, func(i, j int) bool { return its[i].DocFreq() < its[j].DocFreq() })
	var out []Result
	if !its[0].Next() {
		return nil, stats(st), nil
	}
	cand := its[0].DocID()
align:
	for {
		for _, it := range its {
			if !it.Advance(cand) {
				break align
			}
			if d := it.DocID(); d > cand {
				cand = d
				continue align
			}
		}
		tf := 0
		for _, it := range its {
			tf += it.TF()
		}
		out = append(out, s.result(cand, tf))
		if limit > 0 && len(out) >= limit {
			break
		}
		cand++
	}
	return out, stats(st), nil
}

// QueryPhrase returns documents containing the terms consecutively and
// in order, using the postings' position lists. Fails on segments
// without positions (CIFF imports).
func (s *Segment) QueryPhrase(terms []string, limit int) ([]Result, QueryStats, error) {
	if len(terms) == 0 {
		return nil, QueryStats{}, ErrEmptyQuery
	}
	if !s.hasPositions {
		return nil, QueryStats{}, ErrNoPositions
	}
	var st IterStats
	its := make([]*Postings, len(terms))
	for i, t := range terms {
		it, ok := s.Postings(t, &st)
		if !ok {
			return nil, QueryStats{}, nil
		}
		its[i] = it
	}
	var out []Result
	var cur, next, posBuf []uint32
	if !its[0].Next() {
		return nil, stats(st), nil
	}
	cand := its[0].DocID()
align:
	for {
		for _, it := range its {
			if !it.Advance(cand) {
				break align
			}
			if d := it.DocID(); d > cand {
				cand = d
				continue align
			}
		}
		// All terms present in cand: check adjacency. cur holds the
		// start positions of phrase prefixes matched so far.
		cur = its[0].Positions(cur[:0])
		for k := 1; k < len(its) && len(cur) > 0; k++ {
			posBuf = its[k].Positions(posBuf[:0])
			next = next[:0]
			i, j := 0, 0
			for i < len(cur) && j < len(posBuf) {
				want := cur[i] + uint32(k)
				switch {
				case posBuf[j] == want:
					next = append(next, cur[i])
					i++
					j++
				case posBuf[j] < want:
					j++
				default:
					i++
				}
			}
			cur, next = next, cur
		}
		if len(cur) > 0 {
			out = append(out, s.result(cand, len(cur)))
			if limit > 0 && len(out) >= limit {
				break
			}
		}
		cand++
	}
	return out, stats(st), nil
}

func stats(st IterStats) QueryStats {
	return QueryStats{BlocksScanned: st.BlocksScanned, BlocksSkipped: st.BlocksSkipped}
}

func (s *Segment) result(docID uint32, tf int) Result {
	d := s.docs[docID]
	return Result{DocID: docID, URL: d.URL, Abstract: d.Abstract, TF: tf}
}

// dedupTerms drops repeated terms, preserving first-seen order.
func dedupTerms(terms []string) []string {
	seen := make(map[string]bool, len(terms))
	out := terms[:0:0]
	for _, t := range terms {
		if t == "" || seen[t] {
			continue
		}
		seen[t] = true
		out = append(out, t)
	}
	return out
}
