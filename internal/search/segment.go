// Package search is the query-serving side of the index system: it
// turns the corpora built by internal/indexer into immutable,
// block-compressed postings segments, stores them as versioned engine
// values (chunked, checksummed), and executes term, conjunctive-AND and
// phrase queries against a Snapshot pinned to one sealed version — so
// queries keep returning identical results while the next version
// publishes (DESIGN.md §14). Segments round-trip to other engines
// through the Common Index File Format (ciff.go).
//
// The serialized segment is canonical: every integer is a minimal
// uvarint, doc IDs and positions are strictly-increasing gap codes,
// terms and URLs are sorted, and every declared length is exact.
// DecodeSegment enforces all of it, which is what makes the fuzzers'
// decode→re-encode equality property hold.
package search

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"directload/internal/indexer"
)

// BlockSize is the number of doc IDs per postings block. Every block of
// a postings list except the last is full, so a skip over one block
// header jumps exactly BlockSize documents.
const BlockSize = 128

// segMagic brands a serialized segment.
var segMagic = []byte("DLS1")

// Format errors.
var (
	ErrBadSegment   = errors.New("search: malformed segment")
	ErrNoPositions  = errors.New("search: segment has no positions (CIFF imports drop them); phrase queries need a locally built index")
	ErrEmptyQuery   = errors.New("search: empty query")
	ErrDocOrder     = errors.New("search: documents must have unique, non-empty URLs")
	ErrUnknownClass = errors.New("search: unknown query class")
)

// DocInput is one document offered to the segment builder.
type DocInput struct {
	URL      string   `json:"url"`
	Terms    []string `json:"terms"`
	Abstract string   `json:"abstract,omitempty"`
}

// FromDocuments adapts a crawled corpus into builder inputs, deriving
// each abstract from the document's first abstractTerms terms (the same
// summary the paper's summary index stores).
func FromDocuments(docs []indexer.Document, abstractTerms int) []DocInput {
	out := make([]DocInput, len(docs))
	for i, d := range docs {
		out[i] = DocInput{URL: d.URL, Terms: d.Terms, Abstract: d.Abstract(abstractTerms)}
	}
	return out
}

// DocEntry is one entry of the segment's doc store: the URL, the stored
// abstract, and the document length in terms (needed by CIFF export and
// by the position bounds check).
type DocEntry struct {
	URL      string
	Abstract string
	Len      int
}

// termEntry is one term dictionary row; postings aliases the raw
// segment buffer.
type termEntry struct {
	term     string
	docFreq  int
	postings []byte
}

// Segment is an immutable decoded postings segment. All methods are
// safe for concurrent use: nothing mutates after construction.
type Segment struct {
	raw          []byte
	hasPositions bool
	docs         []DocEntry
	terms        []termEntry
}

// DocCount returns the number of documents in the segment.
func (s *Segment) DocCount() int { return len(s.docs) }

// TermCount returns the number of distinct terms.
func (s *Segment) TermCount() int { return len(s.terms) }

// HasPositions reports whether postings carry term positions (locally
// built segments do; CIFF imports do not).
func (s *Segment) HasPositions() bool { return s.hasPositions }

// Bytes returns the canonical serialized form. Callers must not mutate
// the returned slice.
func (s *Segment) Bytes() []byte { return s.raw }

// Doc returns the doc-store entry for a doc ID.
func (s *Segment) Doc(id uint32) DocEntry { return s.docs[id] }

// Terms returns the sorted dictionary terms.
func (s *Segment) Terms() []string {
	out := make([]string, len(s.terms))
	for i, t := range s.terms {
		out[i] = t.term
	}
	return out
}

// DocFreq returns the term's document frequency (0 when absent).
func (s *Segment) DocFreq(term string) int {
	if i, ok := s.findTerm(term); ok {
		return s.terms[i].docFreq
	}
	return 0
}

func (s *Segment) findTerm(term string) (int, bool) {
	i := sort.Search(len(s.terms), func(i int) bool { return s.terms[i].term >= term })
	if i < len(s.terms) && s.terms[i].term == term {
		return i, true
	}
	return 0, false
}

// --- building ---------------------------------------------------------------

// docPosting is one (doc, positions) pair accumulated by the builder.
type docPosting struct {
	docID     uint32
	tf        uint32   // term frequency; used only when positions are absent
	positions []uint32 // strictly increasing term indexes
}

// BuildSegment builds a canonical segment from documents. Documents are
// sorted by URL (the segment's doc-ID order); duplicate or empty URLs
// are rejected. Positions are the term indexes within each document, so
// phrase queries work out of the box.
func BuildSegment(docs []DocInput) (*Segment, error) {
	sorted := append([]DocInput(nil), docs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].URL < sorted[j].URL })
	for i, d := range sorted {
		if d.URL == "" || (i > 0 && sorted[i-1].URL == d.URL) {
			return nil, fmt.Errorf("%w: %q", ErrDocOrder, d.URL)
		}
	}
	postings := make(map[string][]docPosting)
	for id, d := range sorted {
		seen := make(map[string]int, len(d.Terms)) // term -> index into postings[term] for this doc
		for pos, t := range d.Terms {
			if t == "" {
				return nil, fmt.Errorf("%w: empty term in %q", ErrBadSegment, d.URL)
			}
			lst := postings[t]
			if i, ok := seen[t]; ok {
				lst[i].positions = append(lst[i].positions, uint32(pos))
				continue
			}
			seen[t] = len(lst)
			postings[t] = append(lst, docPosting{docID: uint32(id), positions: []uint32{uint32(pos)}})
		}
	}
	terms := make([]string, 0, len(postings))
	for t := range postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)

	var buf []byte
	buf = append(buf, segMagic...)
	buf = binary.AppendUvarint(buf, 1) // flags: bit0 = hasPositions
	buf = binary.AppendUvarint(buf, uint64(len(sorted)))
	for _, d := range sorted {
		buf = binary.AppendUvarint(buf, uint64(len(d.URL)))
		buf = append(buf, d.URL...)
		buf = binary.AppendUvarint(buf, uint64(len(d.Abstract)))
		buf = append(buf, d.Abstract...)
		buf = binary.AppendUvarint(buf, uint64(len(d.Terms)))
	}
	buf = binary.AppendUvarint(buf, uint64(len(terms)))
	var scratch []byte
	for _, t := range terms {
		lst := postings[t]
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		buf = append(buf, t...)
		buf = binary.AppendUvarint(buf, uint64(len(lst)))
		scratch = encodePostings(scratch[:0], lst, true)
		buf = binary.AppendUvarint(buf, uint64(len(scratch)))
		buf = append(buf, scratch...)
	}
	return DecodeSegment(buf)
}

// buildFromPostings assembles a segment from already-inverted postings
// (the CIFF import path: tf only, no positions). docs are in doc-ID
// order, terms sorted ascending; lists maps each term to its (docID,
// tf) postings in doc-ID order.
func buildFromPostings(docs []DocEntry, terms []string, lists map[string][]ciffPosting) (*Segment, error) {
	var buf []byte
	buf = append(buf, segMagic...)
	buf = binary.AppendUvarint(buf, 0) // no positions
	buf = binary.AppendUvarint(buf, uint64(len(docs)))
	for _, d := range docs {
		buf = binary.AppendUvarint(buf, uint64(len(d.URL)))
		buf = append(buf, d.URL...)
		buf = binary.AppendUvarint(buf, uint64(len(d.Abstract)))
		buf = append(buf, d.Abstract...)
		buf = binary.AppendUvarint(buf, uint64(d.Len))
	}
	buf = binary.AppendUvarint(buf, uint64(len(terms)))
	var scratch []byte
	for _, t := range terms {
		lst := lists[t]
		dps := make([]docPosting, len(lst))
		for i, p := range lst {
			dps[i] = docPosting{docID: p.docID, tf: uint32(p.tf)}
		}
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		buf = append(buf, t...)
		buf = binary.AppendUvarint(buf, uint64(len(lst)))
		scratch = encodePostings(scratch[:0], dps, false)
		buf = binary.AppendUvarint(buf, uint64(len(scratch)))
		buf = append(buf, scratch...)
	}
	return DecodeSegment(buf)
}

// encodePostings appends the block-compressed postings list: full
// BlockSize blocks of doc-ID gaps with a (count, last, docBytes,
// posBytes) skip header, followed by the per-doc tf (and position gaps
// when withPositions).
func encodePostings(dst []byte, lst []docPosting, withPositions bool) []byte {
	blocks := (len(lst) + BlockSize - 1) / BlockSize
	dst = binary.AppendUvarint(dst, uint64(blocks))
	prev := int64(-1)
	var docBuf, posBuf []byte
	for b := 0; b < blocks; b++ {
		docBuf, posBuf = docBuf[:0], posBuf[:0]
		lo, hi := b*BlockSize, (b+1)*BlockSize
		if hi > len(lst) {
			hi = len(lst)
		}
		for _, p := range lst[lo:hi] {
			docBuf = binary.AppendUvarint(docBuf, uint64(int64(p.docID)-prev))
			prev = int64(p.docID)
			tf := uint64(p.tf)
			if withPositions {
				tf = uint64(len(p.positions))
			}
			posBuf = binary.AppendUvarint(posBuf, tf)
			if withPositions {
				pp := int64(-1)
				for _, pos := range p.positions {
					posBuf = binary.AppendUvarint(posBuf, uint64(int64(pos)-pp))
					pp = int64(pos)
				}
			}
		}
		dst = binary.AppendUvarint(dst, uint64(hi-lo))
		dst = binary.AppendUvarint(dst, uint64(lst[hi-1].docID))
		dst = binary.AppendUvarint(dst, uint64(len(docBuf)))
		dst = binary.AppendUvarint(dst, uint64(len(posBuf)))
		dst = append(dst, docBuf...)
		dst = append(dst, posBuf...)
	}
	return dst
}

// --- decoding ---------------------------------------------------------------

// segReader is a bounds-checked cursor over untrusted bytes. Every
// uvarint must be minimally encoded and every length fit the remaining
// input, so allocation is bounded by the input size.
type segReader struct {
	b   []byte
	off int
}

func (r *segReader) remaining() int { return len(r.b) - r.off }

func (r *segReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated or oversized varint at %d", ErrBadSegment, r.off)
	}
	if n > 1 && v < 1<<uint(7*(n-1)) {
		return 0, fmt.Errorf("%w: non-minimal varint at %d", ErrBadSegment, r.off)
	}
	r.off += n
	return v, nil
}

// intLen reads a uvarint meant to size an allocation and rejects it
// when it cannot possibly fit the remaining input.
func (r *segReader) intLen(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()) {
		return 0, fmt.Errorf("%w: %s length %d exceeds %d remaining bytes", ErrBadSegment, what, v, r.remaining())
	}
	return int(v), nil
}

func (r *segReader) bytes(n int) ([]byte, error) {
	if n > r.remaining() {
		return nil, fmt.Errorf("%w: truncated at %d", ErrBadSegment, r.off)
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

// DecodeSegment parses and fully validates a serialized segment: block
// structure, gap monotonicity, exact declared lengths, sorted terms and
// URLs, minimal varints. The returned segment aliases data; callers
// must not mutate it. Successful decodes are canonical: re-serializing
// the parsed structure reproduces data byte-for-byte.
func DecodeSegment(data []byte) (*Segment, error) {
	r := &segReader{b: data}
	magic, err := r.bytes(len(segMagic))
	if err != nil || string(magic) != string(segMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSegment)
	}
	flags, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if flags > 1 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrBadSegment, flags)
	}
	s := &Segment{raw: data, hasPositions: flags&1 != 0}
	docCount, err := r.intLen("doc table")
	if err != nil {
		return nil, err
	}
	s.docs = make([]DocEntry, docCount)
	for i := range s.docs {
		n, err := r.intLen("url")
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, fmt.Errorf("%w: empty URL at doc %d", ErrBadSegment, i)
		}
		url, err := r.bytes(n)
		if err != nil {
			return nil, err
		}
		if i > 0 && s.docs[i-1].URL >= string(url) {
			return nil, fmt.Errorf("%w: URLs not strictly ascending at doc %d", ErrBadSegment, i)
		}
		if n, err = r.intLen("abstract"); err != nil {
			return nil, err
		}
		abs, err := r.bytes(n)
		if err != nil {
			return nil, err
		}
		dl, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if dl > 1<<31 {
			return nil, fmt.Errorf("%w: doc length %d out of range", ErrBadSegment, dl)
		}
		s.docs[i] = DocEntry{URL: string(url), Abstract: string(abs), Len: int(dl)}
	}
	termCount, err := r.intLen("term dictionary")
	if err != nil {
		return nil, err
	}
	s.terms = make([]termEntry, termCount)
	for i := range s.terms {
		n, err := r.intLen("term")
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, fmt.Errorf("%w: empty term at %d", ErrBadSegment, i)
		}
		term, err := r.bytes(n)
		if err != nil {
			return nil, err
		}
		if i > 0 && s.terms[i-1].term >= string(term) {
			return nil, fmt.Errorf("%w: terms not strictly ascending at %d", ErrBadSegment, i)
		}
		df, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if df == 0 || df > uint64(docCount) {
			return nil, fmt.Errorf("%w: term %q docFreq %d out of range", ErrBadSegment, term, df)
		}
		if n, err = r.intLen("postings"); err != nil {
			return nil, err
		}
		postings, err := r.bytes(n)
		if err != nil {
			return nil, err
		}
		if err := s.validatePostings(postings, int(df)); err != nil {
			return nil, fmt.Errorf("term %q: %w", term, err)
		}
		s.terms[i] = termEntry{term: string(term), docFreq: int(df), postings: postings}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSegment, r.remaining())
	}
	return s, nil
}

// validatePostings walks one postings blob end to end, enforcing every
// canonical-form invariant the iterator later relies on (so iteration
// itself never has to handle errors).
func (s *Segment) validatePostings(blob []byte, docFreq int) error {
	r := &segReader{b: blob}
	blocks, err := r.uvarint()
	if err != nil {
		return err
	}
	wantBlocks := (docFreq + BlockSize - 1) / BlockSize
	if int(blocks) != wantBlocks {
		return fmt.Errorf("%w: %d blocks for docFreq %d (want %d)", ErrBadSegment, blocks, docFreq, wantBlocks)
	}
	prev := int64(-1)
	total := 0
	for b := 0; b < int(blocks); b++ {
		count, err := r.uvarint()
		if err != nil {
			return err
		}
		last, err := r.uvarint()
		if err != nil {
			return err
		}
		docBytesU, err := r.uvarint()
		if err != nil {
			return err
		}
		posBytesU, err := r.uvarint()
		if err != nil {
			return err
		}
		if docBytesU > uint64(r.remaining()) || posBytesU > uint64(r.remaining()) ||
			docBytesU+posBytesU > uint64(r.remaining()) {
			return fmt.Errorf("%w: block %d declares %d body bytes, %d remain", ErrBadSegment, b, docBytesU+posBytesU, r.remaining())
		}
		docBytes, posBytes := int(docBytesU), int(posBytesU)
		full := b < int(blocks)-1
		if (full && count != BlockSize) || count == 0 || count > BlockSize {
			return fmt.Errorf("%w: block %d count %d", ErrBadSegment, b, count)
		}
		dr := &segReader{b: blob[r.off : r.off+docBytes]}
		blockDocs := make([]uint32, 0, count)
		for i := 0; i < int(count); i++ {
			gap, err := dr.uvarint()
			if err != nil {
				return err
			}
			if gap == 0 {
				return fmt.Errorf("%w: zero doc-ID gap", ErrBadSegment)
			}
			prev += int64(gap)
			if prev >= int64(len(s.docs)) {
				return fmt.Errorf("%w: doc ID %d beyond doc count %d", ErrBadSegment, prev, len(s.docs))
			}
			blockDocs = append(blockDocs, uint32(prev))
		}
		if dr.remaining() != 0 {
			return fmt.Errorf("%w: doc block over-declared by %d bytes", ErrBadSegment, dr.remaining())
		}
		if uint64(prev) != last {
			return fmt.Errorf("%w: block %d skip entry says last=%d, actual %d", ErrBadSegment, b, last, prev)
		}
		r.off += docBytes
		pr := &segReader{b: blob[r.off : r.off+posBytes]}
		for _, docID := range blockDocs {
			tf, err := pr.uvarint()
			if err != nil {
				return err
			}
			if tf == 0 {
				return fmt.Errorf("%w: zero tf", ErrBadSegment)
			}
			if s.hasPositions {
				if tf > uint64(s.docs[docID].Len) {
					return fmt.Errorf("%w: tf %d exceeds doc length %d", ErrBadSegment, tf, s.docs[docID].Len)
				}
				pp := int64(-1)
				for i := 0; i < int(tf); i++ {
					gap, err := pr.uvarint()
					if err != nil {
						return err
					}
					if gap == 0 {
						return fmt.Errorf("%w: zero position gap", ErrBadSegment)
					}
					pp += int64(gap)
				}
				if pp >= int64(s.docs[docID].Len) {
					return fmt.Errorf("%w: position %d beyond doc length %d", ErrBadSegment, pp, s.docs[docID].Len)
				}
			}
		}
		if pr.remaining() != 0 {
			return fmt.Errorf("%w: payload block over-declared by %d bytes", ErrBadSegment, pr.remaining())
		}
		r.off += posBytes
		total += int(count)
	}
	if total != docFreq {
		return fmt.Errorf("%w: %d postings for declared docFreq %d", ErrBadSegment, total, docFreq)
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing postings bytes", ErrBadSegment, r.remaining())
	}
	return nil
}

// reencode re-serializes the decoded structure from scratch. Used by
// the fuzz harness to prove decode canonicality; postings blobs are
// re-emitted verbatim because validatePostings already pinned their
// byte-level form.
func (s *Segment) reencode() []byte {
	var buf []byte
	buf = append(buf, segMagic...)
	var flags uint64
	if s.hasPositions {
		flags = 1
	}
	buf = binary.AppendUvarint(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(s.docs)))
	for _, d := range s.docs {
		buf = binary.AppendUvarint(buf, uint64(len(d.URL)))
		buf = append(buf, d.URL...)
		buf = binary.AppendUvarint(buf, uint64(len(d.Abstract)))
		buf = append(buf, d.Abstract...)
		buf = binary.AppendUvarint(buf, uint64(d.Len))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.terms)))
	for _, t := range s.terms {
		buf = binary.AppendUvarint(buf, uint64(len(t.term)))
		buf = append(buf, t.term...)
		buf = binary.AppendUvarint(buf, uint64(t.docFreq))
		buf = binary.AppendUvarint(buf, uint64(len(t.postings)))
		buf = append(buf, t.postings...)
	}
	return buf
}

// String summarizes the segment for logs.
func (s *Segment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "segment{docs=%d terms=%d bytes=%d positions=%v}",
		len(s.docs), len(s.terms), len(s.raw), s.hasPositions)
	return b.String()
}
