package search

import (
	"bytes"
	"testing"
)

// FuzzPostingsDecode drives arbitrary bytes through the segment
// decoder. The encoding is canonical (minimal varints, exact lengths,
// sorted keys), so anything DecodeSegment accepts must re-encode to the
// exact input bytes — and decode must never panic or allocate beyond
// the input's own size class regardless of declared lengths.
func FuzzPostingsDecode(f *testing.F) {
	if seg, err := BuildSegment(smallDocs()); err == nil {
		f.Add(seg.Bytes())
	}
	if seg, err := BuildSegment(bigDocs(300)); err == nil {
		f.Add(seg.Bytes())
	}
	if seg, err := BuildSegment(nil); err == nil {
		f.Add(seg.Bytes())
	}
	f.Add([]byte("DLS1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := DecodeSegment(data)
		if err != nil {
			return
		}
		if !bytes.Equal(seg.reencode(), data) {
			t.Fatal("accepted input is not canonical")
		}
		// Everything the decoder admitted must be iterable without
		// faults, and iterator output must respect the declared shape.
		for _, term := range seg.Terms() {
			it, ok := seg.Postings(term, nil)
			if !ok {
				t.Fatalf("dictionary term %q has no postings", term)
			}
			n, prev := 0, -1
			for it.Next() {
				id := int(it.DocID())
				if id <= prev || id >= seg.DocCount() {
					t.Fatalf("term %q: doc %d out of order or range", term, id)
				}
				prev = id
				if it.TF() < 1 {
					t.Fatalf("term %q doc %d: tf < 1", term, id)
				}
				if seg.HasPositions() {
					if pos := it.Positions(nil); len(pos) != it.TF() {
						t.Fatalf("term %q doc %d: %d positions, tf %d", term, id, len(pos), it.TF())
					}
				}
				n++
			}
			if n != seg.DocFreq(term) {
				t.Fatalf("term %q: iterated %d docs, df %d", term, n, seg.DocFreq(term))
			}
		}
	})
}

// FuzzCIFFImport drives arbitrary bytes through the CIFF importer.
// Accepted inputs must round-trip through export∘import to a fixed
// point, and import must bound its allocations by the input size, not
// by declared counts.
func FuzzCIFFImport(f *testing.F) {
	if seg, err := BuildSegment(smallDocs()); err == nil {
		f.Add(ExportCIFF(seg))
	}
	if seg, err := BuildSegment(bigDocs(200)); err == nil {
		f.Add(ExportCIFF(seg))
	}
	if seg, err := BuildSegment(nil); err == nil {
		f.Add(ExportCIFF(seg))
	}
	f.Add([]byte{})
	f.Add([]byte{0x08, 0xff, 0xff, 0xff, 0xff, 0x0f}) // huge declared counts
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := ImportCIFF(data)
		if err != nil {
			return
		}
		ciff := ExportCIFF(seg)
		seg2, err := ImportCIFF(ciff)
		if err != nil {
			t.Fatalf("export of an accepted import does not re-import: %v", err)
		}
		if !bytes.Equal(ExportCIFF(seg2), ciff) {
			t.Fatal("export∘import is not a fixed point")
		}
		// The internal form must itself be canonical and storable.
		if !bytes.Equal(seg.reencode(), seg.Bytes()) {
			t.Fatal("imported segment is not canonical")
		}
		if _, err := DecodeSegment(seg.Bytes()); err != nil {
			t.Fatalf("imported segment does not decode: %v", err)
		}
	})
}
