package search

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"directload/internal/metrics"
)

// IndexInfo describes one index's latest published state.
type IndexInfo struct {
	Name         string `json:"name"`
	Version      uint64 `json:"version"` // latest published; 0 = created, nothing published
	Docs         int    `json:"docs"`
	Terms        int    `json:"terms"`
	Bytes        int    `json:"bytes"`
	HasPositions bool   `json:"has_positions"`
}

// maxCachedSnapshots bounds the decoded-segment cache; pinned readers
// past the bound simply reload from the engine.
const maxCachedSnapshots = 32

// indexState is the in-memory lifecycle record for one index. The
// engine holds the durable truth (chunks + meta per version); the
// service tracks which versions it has published this process.
type indexState struct {
	latest uint64 // highest sealed version
	next   uint64 // highest version ever allocated (>= latest)
	info   IndexInfo
}

// Service owns the index lifecycle on one node: create, ingest (build
// and publish a new version), query through snapshots pinned to sealed
// versions, and CIFF import/export. Engine I/O never runs under the
// service lock, so slow publishes cannot stall concurrent queries.
type Service struct {
	eng Engine
	reg *metrics.Registry
	met *searchMetrics

	mu    sync.Mutex
	idx   map[string]*indexState
	snaps map[string]*Snapshot // "name@version" -> pinned snapshot
}

// NewService builds a Service over a versioned engine. reg may be nil.
func NewService(eng Engine, reg *metrics.Registry) *Service {
	return &Service{
		eng:   eng,
		reg:   reg,
		met:   newSearchMetrics(reg),
		idx:   make(map[string]*indexState),
		snaps: make(map[string]*Snapshot),
	}
}

// ValidateIndexName rejects names that would break the engine key
// layout ("!idx/<name>/...") or the REST paths.
func ValidateIndexName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("search: index name must be 1..128 chars")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("search: index name %q: only [a-zA-Z0-9._-] allowed", name)
		}
	}
	return nil
}

func snapKey(name string, version uint64) string {
	return fmt.Sprintf("%s@%d", name, version)
}

// Create registers an empty index.
func (s *Service) Create(name string) error {
	if err := ValidateIndexName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.idx[name]; ok {
		return fmt.Errorf("search: index %q already exists", name)
	}
	s.idx[name] = &indexState{info: IndexInfo{Name: name}}
	return nil
}

// List returns every known index, sorted by name.
func (s *Service) List() []IndexInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]IndexInfo, 0, len(s.idx))
	for _, st := range s.idx {
		out = append(out, st.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Latest returns the newest sealed version (0 when nothing published).
func (s *Service) Latest(name string) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.idx[name]
	if !ok {
		return 0, false
	}
	return st.latest, true
}

// Ingest builds a segment from documents and publishes it as the
// index's next version, creating the index on first use. The previous
// version's chunks are untouched, so snapshots pinned to it keep
// serving identical results.
func (s *Service) Ingest(name string, docs []DocInput) (IndexInfo, error) {
	seg, err := BuildSegment(docs)
	if err != nil {
		return IndexInfo{}, err
	}
	return s.Publish(name, seg)
}

// ImportSegment publishes a CIFF stream as the index's next version.
func (s *Service) ImportSegment(name string, ciff []byte) (IndexInfo, error) {
	seg, err := ImportCIFF(ciff)
	if err != nil {
		return IndexInfo{}, err
	}
	return s.Publish(name, seg)
}

// Publish writes a built segment to the engine at a freshly allocated
// version and seals it. Concurrent publishes to the same index get
// distinct versions; the highest sealed one becomes the default for
// unpinned queries.
func (s *Service) Publish(name string, seg *Segment) (IndexInfo, error) {
	if err := ValidateIndexName(name); err != nil {
		return IndexInfo{}, err
	}
	s.mu.Lock()
	st := s.idx[name]
	if st == nil {
		st = &indexState{info: IndexInfo{Name: name}}
		s.idx[name] = st
	}
	st.next++
	ver := st.next
	s.mu.Unlock()

	if err := WriteSegment(s.eng, name, ver, seg); err != nil {
		return IndexInfo{}, err
	}

	info := IndexInfo{
		Name: name, Version: ver,
		Docs: seg.DocCount(), Terms: seg.TermCount(),
		Bytes: len(seg.Bytes()), HasPositions: seg.HasPositions(),
	}
	sn := NewSnapshot(name, ver, seg)
	sn.setServiceMetrics(s.reg, s.met)
	s.mu.Lock()
	if ver > st.latest {
		st.latest = ver
		st.info = info
	}
	s.cacheSnapLocked(sn)
	latest := st.latest
	s.mu.Unlock()
	s.met.publishes.Inc()
	s.met.snapVersion.Set(int64(latest))
	return info, nil
}

// Snapshot returns a query view pinned to version (0 = latest sealed).
// The decoded segment is cached, so repeated queries at the same
// version skip the engine entirely.
func (s *Service) Snapshot(name string, version uint64) (*Snapshot, error) {
	s.mu.Lock()
	st := s.idx[name]
	if st == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("search: unknown index %q", name)
	}
	if version == 0 {
		if st.latest == 0 {
			s.mu.Unlock()
			return nil, fmt.Errorf("search: index %q has no published version", name)
		}
		version = st.latest
	}
	if sn := s.snaps[snapKey(name, version)]; sn != nil {
		s.mu.Unlock()
		return sn, nil
	}
	s.mu.Unlock()

	seg, _, err := LoadSegment(s.eng, name, version)
	if err != nil {
		return nil, err
	}
	s.met.snapLoads.Inc()
	sn := NewSnapshot(name, version, seg)
	sn.setServiceMetrics(s.reg, s.met)
	s.mu.Lock()
	s.cacheSnapLocked(sn)
	s.mu.Unlock()
	return sn, nil
}

// cacheSnapLocked stores a snapshot, evicting an arbitrary entry past
// the bound. Callers hold s.mu.
func (s *Service) cacheSnapLocked(sn *Snapshot) {
	if len(s.snaps) >= maxCachedSnapshots {
		for k := range s.snaps {
			delete(s.snaps, k)
			break
		}
	}
	s.snaps[snapKey(sn.Name, sn.Version)] = sn
}

// Query runs one query against the index at version (0 = latest),
// returning the version actually served so clients can pin it.
func (s *Service) Query(ctx context.Context, name string, version uint64, class QueryClass, terms []string, limit int) ([]Result, QueryStats, uint64, error) {
	sn, err := s.Snapshot(name, version)
	if err != nil {
		return nil, QueryStats{}, 0, err
	}
	res, stats, err := sn.Query(ctx, class, terms, limit)
	return res, stats, sn.Version, err
}

// ExportSegment serializes the index at version (0 = latest) as CIFF.
func (s *Service) ExportSegment(name string, version uint64) ([]byte, error) {
	sn, err := s.Snapshot(name, version)
	if err != nil {
		return nil, err
	}
	return ExportCIFF(sn.Seg), nil
}

// ParseQuery splits a query string into terms (whitespace separated).
func ParseQuery(q string) []string {
	return strings.Fields(q)
}
