package search

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// maxIngestBody caps REST ingest/import request bodies.
const maxIngestBody = 256 << 20

// NewHandler serves the index-lifecycle REST surface. internal/ops
// mounts it at /index; paths follow the ops text-first convention
// (human-readable default, ?format=json for machines):
//
//	GET  /index                 list indexes
//	POST /index/{name}          create an empty index
//	POST /index/{name}/ingest   publish a new version; body is a JSON
//	                            array of {url, terms[, abstract]} or
//	                            text lines "url term term ..."
//	GET  /index/{name}/query    q=<terms> mode=term|and|phrase
//	                            version=N pins, limit=N caps results
//	GET  /index/{name}/export   CIFF stream (version=N pins)
//	POST /index/{name}/import   publish a new version from a CIFF body
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	h := &restHandler{svc: svc}
	mux.HandleFunc("GET /index", h.list)
	mux.HandleFunc("GET /index/{$}", h.list)
	mux.HandleFunc("POST /index/{name}", h.create)
	mux.HandleFunc("POST /index/{name}/ingest", h.ingest)
	mux.HandleFunc("GET /index/{name}/query", h.query)
	mux.HandleFunc("GET /index/{name}/export", h.export)
	mux.HandleFunc("POST /index/{name}/import", h.importCIFF)
	return mux
}

type restHandler struct {
	svc *Service
}

// fail maps service errors onto HTTP statuses.
func fail(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	msg := err.Error()
	switch {
	case errors.Is(err, ErrBadSegment), errors.Is(err, ErrBadCIFF),
		errors.Is(err, ErrEmptyQuery), errors.Is(err, ErrUnknownClass),
		errors.Is(err, ErrDocOrder), errors.Is(err, ErrNoPositions):
		status = http.StatusBadRequest
	case strings.Contains(msg, "unknown index"), strings.Contains(msg, "no published version"),
		strings.Contains(msg, "not found"):
		status = http.StatusNotFound
	case strings.Contains(msg, "already exists"):
		status = http.StatusConflict
	case strings.Contains(msg, "index name"):
		status = http.StatusBadRequest
	}
	http.Error(w, msg, status)
}

func wantJSON(r *http.Request) bool { return r.URL.Query().Get("format") == "json" }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (h *restHandler) list(w http.ResponseWriter, r *http.Request) {
	infos := h.svc.List()
	if wantJSON(r) {
		writeJSON(w, infos)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(infos) == 0 {
		fmt.Fprintln(w, "no indexes")
		return
	}
	for _, in := range infos {
		fmt.Fprintf(w, "%-20s v=%-4d docs=%-8d terms=%-8d bytes=%-10d positions=%v\n",
			in.Name, in.Version, in.Docs, in.Terms, in.Bytes, in.HasPositions)
	}
}

func (h *restHandler) create(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := h.svc.Create(name); err != nil {
		fail(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	fmt.Fprintf(w, "created %s\n", name)
}

// parseDocs reads an ingest body: JSON array of DocInput when the
// content type says JSON (or the body leads with '['), else text lines
// of "url term term ...".
func parseDocs(r *http.Request) ([]DocInput, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxIngestBody))
	if err != nil {
		return nil, fmt.Errorf("search: reading ingest body: %w", err)
	}
	trimmed := strings.TrimSpace(string(body))
	ct := r.Header.Get("Content-Type")
	if strings.Contains(ct, "json") || strings.HasPrefix(trimmed, "[") {
		var docs []DocInput
		if err := json.Unmarshal(body, &docs); err != nil {
			return nil, fmt.Errorf("%w: ingest JSON: %v", ErrBadSegment, err)
		}
		return docs, nil
	}
	var docs []DocInput
	for _, line := range strings.Split(trimmed, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		d := DocInput{URL: fields[0], Terms: fields[1:]}
		if len(d.Terms) > 0 {
			d.Abstract = strings.Join(d.Terms[:min(8, len(d.Terms))], " ")
		}
		docs = append(docs, d)
	}
	return docs, nil
}

func (h *restHandler) ingest(w http.ResponseWriter, r *http.Request) {
	docs, err := parseDocs(r)
	if err != nil {
		fail(w, err)
		return
	}
	if len(docs) == 0 {
		fail(w, fmt.Errorf("%w: ingest body has no documents", ErrEmptyQuery))
		return
	}
	info, err := h.svc.Ingest(r.PathValue("name"), docs)
	if err != nil {
		fail(w, err)
		return
	}
	if wantJSON(r) {
		writeJSON(w, info)
		return
	}
	fmt.Fprintf(w, "published %s v=%d docs=%d terms=%d bytes=%d\n",
		info.Name, info.Version, info.Docs, info.Terms, info.Bytes)
}

// queryResponse is the JSON query envelope.
type queryResponse struct {
	Index   string     `json:"index"`
	Version uint64     `json:"version"`
	Class   QueryClass `json:"class"`
	Terms   []string   `json:"terms"`
	Stats   QueryStats `json:"stats"`
	Hits    []Result   `json:"hits"`
}

func (h *restHandler) query(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	terms := ParseQuery(q.Get("q"))
	class, err := ParseQueryClass(q.Get("mode"))
	if err != nil {
		fail(w, err)
		return
	}
	if class == ClassAnd && len(terms) == 1 {
		class = ClassTerm // single-term AND is a term lookup
	}
	var version uint64
	if v := q.Get("version"); v != "" {
		if version, err = strconv.ParseUint(v, 10, 64); err != nil {
			fail(w, fmt.Errorf("%w: version %q", ErrBadSegment, v))
			return
		}
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil {
			fail(w, fmt.Errorf("%w: limit %q", ErrBadSegment, v))
			return
		}
	}
	res, stats, served, err := h.svc.Query(r.Context(), r.PathValue("name"), version, class, terms, limit)
	if err != nil {
		fail(w, err)
		return
	}
	if wantJSON(r) {
		writeJSON(w, queryResponse{
			Index: r.PathValue("name"), Version: served, Class: class,
			Terms: terms, Stats: stats, Hits: res,
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, hit := range res {
		fmt.Fprintf(w, "%-28s tf=%-4d %s\n", hit.URL, hit.TF, hit.Abstract)
	}
	fmt.Fprintf(w, "# %d hits  %s %v  v=%d  blocks scanned=%d skipped=%d\n",
		len(res), class, terms, served, stats.BlocksScanned, stats.BlocksSkipped)
}

func (h *restHandler) export(w http.ResponseWriter, r *http.Request) {
	var version uint64
	if v := r.URL.Query().Get("version"); v != "" {
		var err error
		if version, err = strconv.ParseUint(v, 10, 64); err != nil {
			fail(w, fmt.Errorf("%w: version %q", ErrBadSegment, v))
			return
		}
	}
	ciff, err := h.svc.ExportSegment(r.PathValue("name"), version)
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(ciff)))
	_, _ = w.Write(ciff)
}

func (h *restHandler) importCIFF(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxIngestBody))
	if err != nil {
		fail(w, fmt.Errorf("search: reading import body: %w", err))
		return
	}
	info, err := h.svc.ImportSegment(r.PathValue("name"), body)
	if err != nil {
		fail(w, err)
		return
	}
	if wantJSON(r) {
		writeJSON(w, info)
		return
	}
	fmt.Fprintf(w, "imported %s v=%d docs=%d terms=%d bytes=%d\n",
		info.Name, info.Version, info.Docs, info.Terms, info.Bytes)
}
