package search

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"directload/internal/indexer"
)

// smallDocs is a hand-written corpus whose posting lists are easy to
// reason about.
func smallDocs() []DocInput {
	return []DocInput{
		{URL: "u/c", Terms: []string{"cherry", "apple", "cherry"}, Abstract: "cherry apple"},
		{URL: "u/a", Terms: []string{"apple", "banana"}, Abstract: "apple banana"},
		{URL: "u/b", Terms: []string{"banana", "banana", "date"}, Abstract: "banana"},
	}
}

func TestBuildSegmentBasics(t *testing.T) {
	seg, err := BuildSegment(smallDocs())
	if err != nil {
		t.Fatal(err)
	}
	if seg.DocCount() != 3 {
		t.Fatalf("DocCount = %d, want 3", seg.DocCount())
	}
	// Doc IDs follow URL order: u/a=0, u/b=1, u/c=2.
	if got := seg.Doc(0).URL; got != "u/a" {
		t.Fatalf("doc 0 = %q, want u/a", got)
	}
	if !seg.HasPositions() {
		t.Fatal("locally built segment must carry positions")
	}
	wantDF := map[string]int{"apple": 2, "banana": 2, "cherry": 1, "date": 1}
	if seg.TermCount() != len(wantDF) {
		t.Fatalf("TermCount = %d, want %d", seg.TermCount(), len(wantDF))
	}
	for term, df := range wantDF {
		if got := seg.DocFreq(term); got != df {
			t.Errorf("DocFreq(%q) = %d, want %d", term, got, df)
		}
	}
	if seg.DocFreq("elderberry") != 0 {
		t.Error("absent term must have DocFreq 0")
	}
	// cherry appears twice in u/c (doc 2) at positions 0 and 2.
	it, ok := seg.Postings("cherry", nil)
	if !ok || !it.Next() {
		t.Fatal("cherry postings missing")
	}
	if it.DocID() != 2 || it.TF() != 2 {
		t.Fatalf("cherry posting = (doc %d, tf %d), want (2, 2)", it.DocID(), it.TF())
	}
	if pos := it.Positions(nil); len(pos) != 2 || pos[0] != 0 || pos[1] != 2 {
		t.Fatalf("cherry positions = %v, want [0 2]", pos)
	}
	if it.Next() {
		t.Fatal("cherry has only one posting")
	}
}

func TestBuildSegmentRejectsBadDocs(t *testing.T) {
	if _, err := BuildSegment([]DocInput{{URL: "", Terms: []string{"a"}}}); !errors.Is(err, ErrDocOrder) {
		t.Fatalf("empty URL: got %v, want ErrDocOrder", err)
	}
	dup := []DocInput{{URL: "u", Terms: []string{"a"}}, {URL: "u", Terms: []string{"b"}}}
	if _, err := BuildSegment(dup); !errors.Is(err, ErrDocOrder) {
		t.Fatalf("duplicate URL: got %v, want ErrDocOrder", err)
	}
	if _, err := BuildSegment([]DocInput{{URL: "u", Terms: []string{"a", ""}}}); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("empty term: got %v, want ErrBadSegment", err)
	}
}

func TestDecodeSegmentCanonical(t *testing.T) {
	seg, err := BuildSegment(smallDocs())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seg.Bytes(), seg.reencode()) {
		t.Fatal("decode→re-encode is not byte-identical")
	}
	// Any flipped byte must fail decode or decode to the same canonical
	// form — never to a segment whose re-encode differs from its input.
	raw := seg.Bytes()
	for i := 0; i < len(raw); i += 7 {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		if s2, err := DecodeSegment(mut); err == nil {
			if !bytes.Equal(s2.reencode(), mut) {
				t.Fatalf("byte %d: accepted non-canonical input", i)
			}
		}
	}
}

func TestDecodeSegmentRejectsTruncation(t *testing.T) {
	seg, err := BuildSegment(smallDocs())
	if err != nil {
		t.Fatal(err)
	}
	raw := seg.Bytes()
	for n := 0; n < len(raw); n++ {
		if _, err := DecodeSegment(raw[:n]); err == nil {
			t.Fatalf("decode accepted a %d-byte prefix of a %d-byte segment", n, len(raw))
		}
	}
	if _, err := DecodeSegment(append(append([]byte(nil), raw...), 0)); err == nil {
		t.Fatal("decode accepted trailing bytes")
	}
}

// TestPostingsBlockSkip builds a term spanning many blocks and checks
// Advance lands exactly and actually skips whole blocks.
func TestPostingsBlockSkip(t *testing.T) {
	const docCount = 5*BlockSize + 17
	docs := make([]DocInput, docCount)
	for i := range docs {
		terms := []string{"common"}
		if i%97 == 0 {
			terms = append(terms, "rare")
		}
		docs[i] = DocInput{URL: fmt.Sprintf("u/%06d", i), Terms: terms}
	}
	seg, err := BuildSegment(docs)
	if err != nil {
		t.Fatal(err)
	}
	var st IterStats
	it, ok := seg.Postings("common", &st)
	if !ok {
		t.Fatal("common missing")
	}
	target := uint32(4*BlockSize + 3)
	if !it.Advance(target) || it.DocID() != target {
		t.Fatalf("Advance(%d) landed at %v", target, it.DocID())
	}
	if st.BlocksSkipped < 3 {
		t.Fatalf("Advance over %d blocks skipped only %d", 4, st.BlocksSkipped)
	}
	// Advance never moves backwards.
	if !it.Advance(0) || it.DocID() != target {
		t.Fatal("Advance moved backwards")
	}
	// Advancing past the end exhausts cleanly.
	if it.Advance(docCount + 1) {
		t.Fatal("Advance past the end returned true")
	}
}

func TestFromDocuments(t *testing.T) {
	docs := []indexer.Document{{URL: "u", Terms: []string{"a", "b", "c"}}}
	in := FromDocuments(docs, 2)
	if len(in) != 1 || in[0].Abstract != "a b" || len(in[0].Terms) != 3 {
		t.Fatalf("FromDocuments = %+v", in)
	}
}

func TestSegmentString(t *testing.T) {
	seg, err := BuildSegment(smallDocs())
	if err != nil {
		t.Fatal(err)
	}
	if s := seg.String(); !strings.Contains(s, "docs=3") {
		t.Fatalf("String() = %q", s)
	}
}
