package search

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"directload/internal/indexer"
)

// benchCorpus builds a crawl-shaped corpus big enough that hot terms
// span multiple postings blocks.
func benchCorpus(tb testing.TB, docs int, seed int64) []DocInput {
	tb.Helper()
	cfg := indexer.DefaultCrawlConfig()
	cfg.Documents = docs
	cfg.VocabSize = 400
	cfg.DocTerms = 50
	cfg.Seed = seed
	c, err := indexer.NewCrawler(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	c.Crawl()
	return FromDocuments(c.Corpus(), 6)
}

func benchSnapshot(b *testing.B) *Snapshot {
	b.Helper()
	seg, err := BuildSegment(benchCorpus(b, 3000, 17))
	if err != nil {
		b.Fatal(err)
	}
	return NewSnapshot("bench", 1, seg)
}

// BenchmarkSearchTermQuery measures single-term lookups against an
// in-memory snapshot: dictionary binary search plus a full postings
// walk of a hot (Zipf head) term.
func BenchmarkSearchTermQuery(b *testing.B) {
	sn := benchSnapshot(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := sn.Query(ctx, ClassTerm, []string{"term00001"}, 10)
		if err != nil || len(res) == 0 {
			b.Fatalf("%d hits, %v", len(res), err)
		}
	}
}

// BenchmarkSearchAndQuery measures a three-term conjunction: rarest-
// first leapfrog intersection with block skipping.
func BenchmarkSearchAndQuery(b *testing.B) {
	sn := benchSnapshot(b)
	ctx := context.Background()
	terms := []string{"term00001", "term00005", "term00013"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sn.Query(ctx, ClassAnd, terms, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchQueryDuringPublish measures query latency on a pinned
// snapshot while a background publisher keeps writing new versions into
// the same core.DB engine — the read path the snapshot-isolation design
// has to keep flat.
func BenchmarkSearchQueryDuringPublish(b *testing.B) {
	eng := newCoreEngine(b)
	svc := NewService(eng, nil)
	docs := benchCorpus(b, 800, 19)
	if _, err := svc.Ingest("bench", docs); err != nil {
		b.Fatal(err)
	}
	sn, err := svc.Snapshot("bench", 1)
	if err != nil {
		b.Fatal(err)
	}

	var stop atomic.Bool
	done := make(chan error, 1)
	go func() {
		// Re-publish mutated versions until the timed section ends.
		for v := 2; !stop.Load(); v++ {
			mut := append([]DocInput(nil), docs...)
			mut[v%len(mut)].Terms = append([]string(nil), fmt.Sprintf("hot%05d", v))
			if _, err := svc.Ingest("bench", mut); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	ctx := context.Background()
	terms := []string{"term00001", "term00005"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sn.Query(ctx, ClassAnd, terms, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stop.Store(true)
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}
