package search

import "encoding/binary"

// IterStats counts the work one query did against the postings file:
// blocks whose doc IDs were actually decoded vs blocks skipped whole
// off their skip-entry header. The ratio is the early-exit win.
type IterStats struct {
	BlocksScanned int
	BlocksSkipped int
}

// Postings iterates one term's postings list. Segments are fully
// validated at decode time, so iteration is error-free by construction.
// A Postings is single-goroutine; create one per query.
type Postings struct {
	seg     *Segment
	data    []byte // whole postings blob
	off     int    // cursor into data
	left    int    // blocks not yet opened or skipped
	prev    int64  // doc-ID predecessor carried across blocks
	docFreq int
	stats   *IterStats

	// Current block state.
	docs    []uint32 // decoded doc IDs
	idx     int      // index into docs; -1 before the first Next
	payload []byte   // tf/position bytes, decoded on demand
	tfs     []uint32
	posOff  []int // tfs[i]'s positions start at payload[posOff[i]]
	decoded bool  // payload parsed into tfs/posOff
}

// Postings returns an iterator over term's postings, or false when the
// term is not in the dictionary. stats may be nil.
func (s *Segment) Postings(term string, stats *IterStats) (*Postings, bool) {
	i, ok := s.findTerm(term)
	if !ok {
		return nil, false
	}
	if stats == nil {
		stats = &IterStats{}
	}
	p := &Postings{seg: s, data: s.terms[i].postings, prev: -1, idx: -1, docFreq: s.terms[i].docFreq, stats: stats}
	blocks, n := binary.Uvarint(p.data)
	p.off = n
	p.left = int(blocks)
	return p, true
}

// DocFreq returns the total number of documents in the list.
func (p *Postings) DocFreq() int { return p.docFreq }

// header peeks the current block's skip entry without consuming it.
// Returns the header values and the offset just past the header.
func (p *Postings) header() (count int, last uint32, docBytes, posBytes, bodyOff int) {
	off := p.off
	c, n := binary.Uvarint(p.data[off:])
	off += n
	l, n := binary.Uvarint(p.data[off:])
	off += n
	db, n := binary.Uvarint(p.data[off:])
	off += n
	pb, n := binary.Uvarint(p.data[off:])
	off += n
	return int(c), uint32(l), int(db), int(pb), off
}

// openBlock decodes the next block's doc IDs and stages its payload.
func (p *Postings) openBlock() {
	count, _, docBytes, posBytes, off := p.header()
	p.docs = p.docs[:0]
	if cap(p.docs) < count {
		p.docs = make([]uint32, 0, BlockSize)
	}
	end := off + docBytes
	for i := 0; i < count; i++ {
		gap, n := binary.Uvarint(p.data[off:end])
		off += n
		p.prev += int64(gap)
		p.docs = append(p.docs, uint32(p.prev))
	}
	p.payload = p.data[end : end+posBytes]
	p.off = end + posBytes
	p.left--
	p.idx = -1
	p.decoded = false
	p.stats.BlocksScanned++
}

// skipBlock jumps the cursor past the next block without decoding it,
// keeping the doc-ID predecessor chain intact via the skip entry.
func (p *Postings) skipBlock() {
	_, last, docBytes, posBytes, off := p.header()
	p.prev = int64(last)
	p.off = off + docBytes + posBytes
	p.left--
	p.stats.BlocksSkipped++
}

// Next advances to the next posting, returning false at the end.
func (p *Postings) Next() bool {
	if p.idx+1 < len(p.docs) {
		p.idx++
		return true
	}
	if p.left == 0 {
		return false
	}
	p.openBlock()
	p.idx = 0
	return true
}

// Advance moves to the first posting with doc ID >= target, skipping
// whole blocks off their skip entries, and returns false when the list
// is exhausted first. Advance never moves backwards: a target at or
// below the current doc ID returns true immediately.
func (p *Postings) Advance(target uint32) bool {
	if p.idx >= 0 && p.idx < len(p.docs) && p.docs[p.idx] >= target {
		return true
	}
	// Finish the current block if the target can still live in it.
	if len(p.docs) > 0 && p.idx < len(p.docs) && p.docs[len(p.docs)-1] >= target {
		for p.idx+1 < len(p.docs) {
			p.idx++
			if p.docs[p.idx] >= target {
				return true
			}
		}
	}
	for p.left > 0 {
		_, last, _, _, _ := p.header()
		if last < target {
			p.skipBlock()
			continue
		}
		p.openBlock()
		for p.idx+1 < len(p.docs) {
			p.idx++
			if p.docs[p.idx] >= target {
				return true
			}
		}
	}
	// Exhausted: park past the end so DocID cannot be misread.
	p.idx = len(p.docs)
	return false
}

// DocID returns the current posting's document ID. Only valid after a
// true Next/Advance.
func (p *Postings) DocID() uint32 { return p.docs[p.idx] }

// decodePayload parses the staged block payload into per-doc tf values
// and position offsets. Deferred until a query asks for TF or
// positions, so AND intersections that only touch doc IDs never pay
// for it.
func (p *Postings) decodePayload() {
	p.tfs = p.tfs[:0]
	p.posOff = p.posOff[:0]
	off := 0
	for range p.docs {
		tf, n := binary.Uvarint(p.payload[off:])
		off += n
		p.tfs = append(p.tfs, uint32(tf))
		p.posOff = append(p.posOff, off)
		if p.seg.hasPositions {
			for i := uint64(0); i < tf; i++ {
				_, n := binary.Uvarint(p.payload[off:])
				off += n
			}
		}
	}
	p.decoded = true
}

// TF returns the current posting's term frequency.
func (p *Postings) TF() int {
	if !p.decoded {
		p.decodePayload()
	}
	return int(p.tfs[p.idx])
}

// Positions appends the current posting's term positions to dst and
// returns it. Empty (and dst unchanged) when the segment carries no
// positions.
func (p *Postings) Positions(dst []uint32) []uint32 {
	if !p.seg.hasPositions {
		return dst
	}
	if !p.decoded {
		p.decodePayload()
	}
	off := p.posOff[p.idx]
	prev := int64(-1)
	for i := 0; i < int(p.tfs[p.idx]); i++ {
		gap, n := binary.Uvarint(p.payload[off:])
		off += n
		prev += int64(gap)
		dst = append(dst, uint32(prev))
	}
	return dst
}
