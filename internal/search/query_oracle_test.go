package search

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"directload/internal/indexer"
)

// --- naive full-scan oracle -------------------------------------------------

// oracleDocs mirrors the builder's doc-ID assignment: URL-sorted.
func oracleDocs(docs []DocInput) []DocInput {
	sorted := append([]DocInput(nil), docs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].URL < sorted[j].URL })
	return sorted
}

// oracleQuery scans every document for each query class: term
// membership, conjunction, or consecutive phrase. Results carry the
// same summed-TF ranking signal as the real engine.
func oracleQuery(docs []DocInput, class QueryClass, terms []string, limit int) []Result {
	var out []Result
	switch class {
	case ClassTerm:
		terms = terms[:1]
	case ClassAnd:
		terms = dedupTerms(terms)
	}
	for id, d := range docs {
		tf := 0
		switch class {
		case ClassTerm, ClassAnd:
			counts := make(map[string]int)
			for _, t := range d.Terms {
				counts[t]++
			}
			ok := len(terms) > 0
			for _, q := range terms {
				if counts[q] == 0 {
					ok = false
					break
				}
				tf += counts[q]
			}
			if !ok {
				continue
			}
		case ClassPhrase:
			matches := 0
			for start := 0; start+len(terms) <= len(d.Terms); start++ {
				hit := true
				for k, q := range terms {
					if d.Terms[start+k] != q {
						hit = false
						break
					}
				}
				if hit {
					matches++
				}
			}
			if matches == 0 {
				continue
			}
			tf = matches
		}
		out = append(out, Result{DocID: uint32(id), URL: d.URL, Abstract: d.Abstract, TF: tf})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// randomCorpus builds a small dense corpus so multi-term conjunctions
// and phrases actually hit.
func randomCorpus(rng *rand.Rand, docs, vocab, docTerms int) []DocInput {
	out := make([]DocInput, docs)
	for i := range out {
		n := 1 + rng.Intn(docTerms)
		terms := make([]string, n)
		for j := range terms {
			terms[j] = fmt.Sprintf("t%02d", rng.Intn(vocab))
		}
		out[i] = DocInput{
			URL:      fmt.Sprintf("u/%04d", i),
			Terms:    terms,
			Abstract: strings.Join(terms[:min(4, len(terms))], " "),
		}
	}
	return out
}

// TestQueryMatchesOracle drives randomized corpora through all three
// query classes and demands exact agreement with the full scan.
func TestQueryMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		docs := randomCorpus(rng, 20+rng.Intn(120), 2+rng.Intn(18), 1+rng.Intn(30))
		seg, err := BuildSegment(docs)
		if err != nil {
			t.Fatal(err)
		}
		sorted := oracleDocs(docs)
		for q := 0; q < 40; q++ {
			nTerms := 1 + rng.Intn(3)
			terms := make([]string, nTerms)
			for i := range terms {
				if rng.Intn(4) == 0 && len(sorted) > 0 {
					// Bias toward terms that exist, sampled from a real doc.
					d := sorted[rng.Intn(len(sorted))]
					terms[i] = d.Terms[rng.Intn(len(d.Terms))]
				} else {
					terms[i] = fmt.Sprintf("t%02d", rng.Intn(25))
				}
			}
			limit := 0
			if rng.Intn(3) == 0 {
				limit = 1 + rng.Intn(5)
			}
			for _, class := range []QueryClass{ClassTerm, ClassAnd, ClassPhrase} {
				var got []Result
				var err error
				switch class {
				case ClassTerm:
					got, _ = seg.QueryTerm(terms[0], limit)
				case ClassAnd:
					got, _, err = seg.QueryAnd(terms, limit)
				case ClassPhrase:
					got, _, err = seg.QueryPhrase(terms, limit)
				}
				if err != nil {
					t.Fatalf("trial %d %s %v: %v", trial, class, terms, err)
				}
				want := oracleQuery(sorted, class, terms, limit)
				if !sameResults(got, want) {
					t.Fatalf("trial %d %s %v (limit %d):\n got %v\nwant %v",
						trial, class, terms, limit, got, want)
				}
			}
		}
	}
}

// sameResults treats nil and empty as equal, everything else exactly.
func sameResults(a, b []Result) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestQueryMatchesOracleOnCrawl runs the oracle comparison over the
// crawl simulator's corpus — realistic vocabulary skew, multi-block
// postings for the hot terms.
func TestQueryMatchesOracleOnCrawl(t *testing.T) {
	cfg := indexer.DefaultCrawlConfig()
	cfg.Documents = 400
	cfg.VocabSize = 150
	cfg.DocTerms = 40
	cfg.Seed = 9
	c, err := indexer.NewCrawler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Crawl()
	docs := FromDocuments(c.Corpus(), 6)
	seg, err := BuildSegment(docs)
	if err != nil {
		t.Fatal(err)
	}
	sorted := oracleDocs(docs)
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 60; q++ {
		terms := make([]string, 1+rng.Intn(3))
		for i := range terms {
			terms[i] = fmt.Sprintf("term%05d", rng.Intn(cfg.VocabSize))
		}
		got, _, err := seg.QueryAnd(terms, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracleQuery(sorted, ClassAnd, terms, 0); !sameResults(got, want) {
			t.Fatalf("and %v: got %d hits, want %d", terms, len(got), len(want))
		}
		phraseGot, _, err := seg.QueryPhrase(terms, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracleQuery(sorted, ClassPhrase, terms, 0); !sameResults(phraseGot, want) {
			t.Fatalf("phrase %v: got %d hits, want %d", terms, len(phraseGot), len(want))
		}
	}
}

func TestQueryEdgeCases(t *testing.T) {
	seg, err := BuildSegment(smallDocs())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := seg.QueryAnd(nil, 0); err == nil {
		t.Fatal("empty AND must fail")
	}
	if res, _, err := seg.QueryAnd([]string{"apple", "nosuch"}, 0); err != nil || len(res) != 0 {
		t.Fatalf("AND with a missing term: %v, %v", res, err)
	}
	// Duplicate terms collapse: "apple apple" == "apple".
	a, _, err := seg.QueryAnd([]string{"apple", "apple"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := seg.QueryTerm("apple", 0)
	if !sameResults(a, b) {
		t.Fatalf("dup-term AND %v != term %v", a, b)
	}
	// Phrase across two docs: "apple banana" only in u/a.
	ph, _, err := seg.QueryPhrase([]string{"apple", "banana"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ph) != 1 || ph[0].URL != "u/a" {
		t.Fatalf("phrase hits = %v", ph)
	}
}
