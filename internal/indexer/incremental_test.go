package indexer

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIncrementalBasic(t *testing.T) {
	ix := NewInvertedIndex()
	dirty := ix.Update(Document{URL: "u1", Terms: []string{"a", "b"}})
	if !reflect.DeepEqual(dirty, []string{"a", "b"}) {
		t.Fatalf("dirty = %v", dirty)
	}
	urls, ok := ix.URLs("a")
	if !ok || len(urls) != 1 || urls[0] != "u1" {
		t.Fatalf("URLs(a) = %v, %v", urls, ok)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestIncrementalUnchangedDocIsClean(t *testing.T) {
	ix := NewInvertedIndex()
	doc := Document{URL: "u1", Terms: []string{"x", "y", "x"}}
	ix.Update(doc)
	if dirty := ix.Update(doc); len(dirty) != 0 {
		t.Fatalf("re-indexing unchanged doc dirtied %v", dirty)
	}
}

func TestIncrementalTermChange(t *testing.T) {
	ix := NewInvertedIndex()
	ix.Update(Document{URL: "u1", Terms: []string{"old", "keep"}})
	dirty := ix.Update(Document{URL: "u1", Terms: []string{"new", "keep"}})
	if !reflect.DeepEqual(dirty, []string{"new", "old"}) {
		t.Fatalf("dirty = %v, want [new old]", dirty)
	}
	if _, ok := ix.URLs("old"); ok {
		t.Fatal("term 'old' should have an empty chain and be dropped")
	}
	if urls, _ := ix.URLs("keep"); len(urls) != 1 {
		t.Fatal("unchanged term disturbed")
	}
}

func TestIncrementalRemove(t *testing.T) {
	ix := NewInvertedIndex()
	ix.Update(Document{URL: "u1", Terms: []string{"a"}})
	ix.Update(Document{URL: "u2", Terms: []string{"a", "b"}})
	dirty := ix.Remove("u1")
	if !reflect.DeepEqual(dirty, []string{"a"}) {
		t.Fatalf("dirty = %v", dirty)
	}
	urls, _ := ix.URLs("a")
	if len(urls) != 1 || urls[0] != "u2" {
		t.Fatalf("URLs(a) = %v", urls)
	}
	if ix.Remove("u1") != nil {
		t.Fatal("removing an absent doc should dirty nothing")
	}
}

// TestIncrementalMatchesBatch: after any crawl history, the incremental
// index equals a batch rebuild over the final corpus.
func TestIncrementalMatchesBatch(t *testing.T) {
	c := testCrawler(t)
	ix := NewInvertedIndex()
	for round := 0; round < 5; round++ {
		for _, doc := range c.Crawl() {
			ix.Update(doc)
		}
	}
	batch := BuildInverted(BuildForward(c.Corpus()))
	inc := ix.Entries()
	if len(batch) != len(inc) {
		t.Fatalf("term counts differ: batch %d vs incremental %d", len(batch), len(inc))
	}
	for i := range batch {
		if batch[i].Term != inc[i].Term || !reflect.DeepEqual(batch[i].URLs, inc[i].URLs) {
			t.Fatalf("divergence at %q", batch[i].Term)
		}
	}
}

// TestIncrementalDeltaSmall: one modified document dirties only its own
// gained/lost terms, not the whole index — this is what keeps version
// deltas (and hence the dedup ratio) favourable.
func TestIncrementalDeltaSmall(t *testing.T) {
	ix := NewInvertedIndex()
	for i := 0; i < 200; i++ {
		ix.Update(Document{URL: fmt.Sprintf("u%03d", i), Terms: []string{
			fmt.Sprintf("t%03d", i), fmt.Sprintf("t%03d", (i+1)%200), "common",
		}})
	}
	total := ix.Len()
	dirty := ix.Update(Document{URL: "u000", Terms: []string{"t000", "brand-new", "common"}})
	if len(dirty) >= total/10 {
		t.Fatalf("one doc dirtied %d of %d terms", len(dirty), total)
	}
}

// Property: incremental updates over random document histories always
// agree with a batch rebuild.
func TestQuickIncrementalEquivalence(t *testing.T) {
	f := func(history [][]uint8) bool {
		ix := NewInvertedIndex()
		latest := map[string][]string{}
		for round, docs := range history {
			for d, termByte := range docs {
				url := fmt.Sprintf("u%d", d%5)
				terms := []string{
					fmt.Sprintf("t%d", termByte%7),
					fmt.Sprintf("t%d", (int(termByte)+round)%7),
				}
				ix.Update(Document{URL: url, Terms: terms})
				latest[url] = terms
			}
		}
		var fwd []ForwardEntry
		for url, terms := range latest {
			fwd = append(fwd, ForwardEntry{URL: url, Terms: terms})
		}
		batch := BuildInverted(fwd)
		inc := ix.Entries()
		if len(batch) != len(inc) {
			return false
		}
		for i := range batch {
			if batch[i].Term != inc[i].Term || !reflect.DeepEqual(batch[i].URLs, inc[i].URLs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
