// Package indexer reproduces the index building engine of paper §1.1.1:
// crawled documents become forward indices <URL, terms>, inverted indices
// <term, URLs> and summary indices <URL, abstract>. A crawl simulator
// substitutes for the web (DESIGN.md §2): a synthetic corpus whose
// documents mutate between rounds with configurable probability, split
// into VIP and non-VIP classes — VIP pages being the small, hot fraction
// that serves most queries.
package indexer

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Document is one crawled page.
type Document struct {
	URL     string
	Terms   []string // dismantled content, in document order
	VIP     bool
	Version uint64 // crawl round that last modified it
}

// Abstract returns the document summary stored in the summary index: the
// first n terms joined, which stands in for a contextual snippet.
func (d Document) Abstract(n int) string {
	if n > len(d.Terms) {
		n = len(d.Terms)
	}
	return strings.Join(d.Terms[:n], " ")
}

// CrawlConfig shapes the simulated web.
type CrawlConfig struct {
	Documents  int     // corpus size
	VIPRatio   float64 // fraction of VIP documents (small, hot set)
	VocabSize  int     // distinct terms
	DocTerms   int     // mean terms per document
	MutateProb float64 // per-round probability a document changed
	// VIPMutateProb overrides MutateProb for VIP documents (VIP data are
	// crawled and updated more frequently, paper §3).
	VIPMutateProb float64
	// Seed drives a per-crawler *rand.Rand (never the package-global
	// math/rand stream): the same seed replays the exact same corpus
	// and mutation history, and concurrent crawlers cannot interleave
	// each other's random streams.
	Seed int64
}

// DefaultCrawlConfig returns a small, paper-shaped corpus.
func DefaultCrawlConfig() CrawlConfig {
	return CrawlConfig{
		Documents:     2000,
		VIPRatio:      0.1,
		VocabSize:     5000,
		DocTerms:      80,
		MutateProb:    0.3, // ~70% unchanged between versions
		VIPMutateProb: 0.5,
		Seed:          1,
	}
}

// Crawler simulates round-based crawling: each round re-downloads only
// the documents modified since the previous round.
type Crawler struct {
	cfg   CrawlConfig
	rng   *rand.Rand
	docs  []Document
	round uint64
}

// NewCrawler seeds the corpus (round 0 content; nothing crawled yet).
func NewCrawler(cfg CrawlConfig) (*Crawler, error) {
	if cfg.Documents <= 0 || cfg.VocabSize <= 0 || cfg.DocTerms <= 0 {
		return nil, fmt.Errorf("indexer: bad crawl config %+v", cfg)
	}
	if cfg.MutateProb < 0 || cfg.MutateProb > 1 || cfg.VIPRatio < 0 || cfg.VIPRatio > 1 {
		return nil, fmt.Errorf("indexer: probabilities out of range in %+v", cfg)
	}
	c := &Crawler{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	c.docs = make([]Document, cfg.Documents)
	for i := range c.docs {
		c.docs[i] = Document{
			URL: fmt.Sprintf("http://site-%04d.example/page-%06d", i%512, i),
			VIP: c.rng.Float64() < cfg.VIPRatio,
		}
		c.regenerate(&c.docs[i])
	}
	return c, nil
}

// regenerate rewrites a document's content in place.
func (c *Crawler) regenerate(d *Document) {
	n := c.cfg.DocTerms/2 + c.rng.Intn(c.cfg.DocTerms)
	terms := make([]string, n)
	for i := range terms {
		// Zipf-ish term popularity: squaring skews toward low ids.
		t := int(float64(c.cfg.VocabSize) * c.rng.Float64() * c.rng.Float64())
		terms[i] = fmt.Sprintf("term%05d", t)
	}
	d.Terms = terms
	d.Version = c.round
}

// Crawl advances one round and returns the documents downloaded this
// round: every document whose content changed (plus all documents on the
// first round). This matches §1.1.1: "The web crawlers download a
// document ... only if it has been modified since last round".
func (c *Crawler) Crawl() []Document {
	c.round++
	var out []Document
	for i := range c.docs {
		d := &c.docs[i]
		if c.round == 1 {
			d.Version = c.round
			out = append(out, *d)
			continue
		}
		p := c.cfg.MutateProb
		if d.VIP && c.cfg.VIPMutateProb > 0 {
			p = c.cfg.VIPMutateProb
		}
		if c.rng.Float64() < p {
			c.regenerate(d)
			d.Version = c.round
			out = append(out, *d)
		}
	}
	return out
}

// Round returns the current crawl round.
func (c *Crawler) Round() uint64 { return c.round }

// Corpus returns the full current corpus (used to rebuild indices).
func (c *Crawler) Corpus() []Document {
	return append([]Document(nil), c.docs...)
}

// --- index building ---------------------------------------------------------

// ForwardEntry is one forward-index pair <URL, terms>.
type ForwardEntry struct {
	URL   string
	Terms []string
}

// SummaryEntry is one summary-index pair <URL, abstract>.
type SummaryEntry struct {
	URL      string
	Abstract string
}

// InvertedEntry is one inverted-index pair <term, URLs>.
type InvertedEntry struct {
	Term string
	URLs []string
}

// BuildForward generates forward-index entries from documents.
func BuildForward(docs []Document) []ForwardEntry {
	out := make([]ForwardEntry, len(docs))
	for i, d := range docs {
		out[i] = ForwardEntry{URL: d.URL, Terms: d.Terms}
	}
	return out
}

// BuildSummary generates summary-index entries: the key is the URL, the
// value a document abstract (paper: <URL, abstract>).
func BuildSummary(docs []Document, abstractTerms int) []SummaryEntry {
	out := make([]SummaryEntry, len(docs))
	for i, d := range docs {
		out[i] = SummaryEntry{URL: d.URL, Abstract: d.Abstract(abstractTerms)}
	}
	return out
}

// BuildInverted inverts forward entries into <term, URLs> with URLs
// sorted and deduplicated. Entries are returned in term order.
func BuildInverted(forward []ForwardEntry) []InvertedEntry {
	byTerm := make(map[string]map[string]bool)
	for _, f := range forward {
		for _, t := range f.Terms {
			if byTerm[t] == nil {
				byTerm[t] = make(map[string]bool)
			}
			byTerm[t][f.URL] = true
		}
	}
	terms := make([]string, 0, len(byTerm))
	for t := range byTerm {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	out := make([]InvertedEntry, len(terms))
	for i, t := range terms {
		urls := make([]string, 0, len(byTerm[t]))
		for u := range byTerm[t] {
			urls = append(urls, u)
		}
		sort.Strings(urls)
		out[i] = InvertedEntry{Term: t, URLs: urls}
	}
	return out
}

// EncodeURLList serializes an inverted entry's URL chain as the value
// payload stored in the KV system.
func EncodeURLList(urls []string) []byte {
	return []byte(strings.Join(urls, "\n"))
}

// DecodeURLList parses EncodeURLList output.
func DecodeURLList(value []byte) []string {
	if len(value) == 0 {
		return nil
	}
	return strings.Split(string(value), "\n")
}

// Search resolves a multi-term query against an inverted index lookup
// function, intersecting the URL chains, then fetches abstracts through
// the summary lookup — the read path of Figure 1. Terms missing from the
// index yield an empty result.
func Search(terms []string,
	inverted func(term string) ([]string, bool),
	summary func(url string) (string, bool),
	limit int) []SearchResult {
	if len(terms) == 0 {
		return nil
	}
	var candidate map[string]bool
	for _, t := range terms {
		urls, ok := inverted(t)
		if !ok {
			return nil
		}
		next := make(map[string]bool)
		for _, u := range urls {
			if candidate == nil || candidate[u] {
				next[u] = true
			}
		}
		candidate = next
		if len(candidate) == 0 {
			return nil
		}
	}
	hits := make([]string, 0, len(candidate))
	for u := range candidate {
		hits = append(hits, u)
	}
	sort.Strings(hits) // deterministic "ranking"
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	out := make([]SearchResult, 0, len(hits))
	for _, u := range hits {
		r := SearchResult{URL: u}
		if abs, ok := summary(u); ok {
			r.Abstract = abs
		}
		out = append(out, r)
	}
	return out
}

// SearchResult is one ranked hit with its abstract.
type SearchResult struct {
	URL      string
	Abstract string
}
