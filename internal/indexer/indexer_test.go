package indexer

import (
	"sort"
	"strings"
	"testing"
)

func testCrawler(t *testing.T) *Crawler {
	t.Helper()
	cfg := CrawlConfig{
		Documents: 300, VIPRatio: 0.1, VocabSize: 500,
		DocTerms: 40, MutateProb: 0.3, VIPMutateProb: 0.5, Seed: 7,
	}
	c, err := NewCrawler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCrawlConfigValidation(t *testing.T) {
	if _, err := NewCrawler(CrawlConfig{}); err == nil {
		t.Fatal("zero config should fail")
	}
	bad := DefaultCrawlConfig()
	bad.MutateProb = 1.5
	if _, err := NewCrawler(bad); err == nil {
		t.Fatal("bad probability should fail")
	}
}

func TestFirstCrawlDownloadsEverything(t *testing.T) {
	c := testCrawler(t)
	got := c.Crawl()
	if len(got) != 300 {
		t.Fatalf("first crawl = %d docs, want all 300", len(got))
	}
	if c.Round() != 1 {
		t.Fatalf("Round = %d", c.Round())
	}
}

func TestIncrementalCrawl(t *testing.T) {
	c := testCrawler(t)
	c.Crawl()
	second := c.Crawl()
	// Mutation probability ~0.3 (0.5 for the VIP tenth): roughly a third
	// of the corpus should re-download.
	if len(second) < 50 || len(second) > 180 {
		t.Fatalf("second crawl = %d docs, want ~90-100", len(second))
	}
	for _, d := range second {
		if d.Version != 2 {
			t.Fatalf("downloaded doc has version %d, want 2", d.Version)
		}
	}
}

func TestVIPDocsChurnFaster(t *testing.T) {
	c := testCrawler(t)
	c.Crawl()
	vip, non := 0, 0
	vipSeen, nonSeen := 0, 0
	for _, d := range c.Corpus() {
		if d.VIP {
			vipSeen++
		} else {
			nonSeen++
		}
	}
	for r := 0; r < 20; r++ {
		for _, d := range c.Crawl() {
			if d.VIP {
				vip++
			} else {
				non++
			}
		}
	}
	vipRate := float64(vip) / float64(vipSeen)
	nonRate := float64(non) / float64(nonSeen)
	if vipRate <= nonRate {
		t.Fatalf("VIP churn %v <= non-VIP churn %v", vipRate, nonRate)
	}
}

func TestBuildForwardAndSummary(t *testing.T) {
	docs := []Document{
		{URL: "u1", Terms: []string{"alpha", "beta", "gamma", "delta"}},
		{URL: "u2", Terms: []string{"beta"}},
	}
	fwd := BuildForward(docs)
	if len(fwd) != 2 || fwd[0].URL != "u1" || len(fwd[0].Terms) != 4 {
		t.Fatalf("forward = %+v", fwd)
	}
	sum := BuildSummary(docs, 2)
	if sum[0].Abstract != "alpha beta" {
		t.Fatalf("abstract = %q", sum[0].Abstract)
	}
	if sum[1].Abstract != "beta" {
		t.Fatalf("short abstract = %q", sum[1].Abstract)
	}
}

func TestBuildInverted(t *testing.T) {
	fwd := []ForwardEntry{
		{URL: "u2", Terms: []string{"b", "a", "b"}}, // duplicate term in doc
		{URL: "u1", Terms: []string{"a"}},
	}
	inv := BuildInverted(fwd)
	if len(inv) != 2 {
		t.Fatalf("inverted = %+v", inv)
	}
	if inv[0].Term != "a" || inv[1].Term != "b" {
		t.Fatalf("terms not sorted: %+v", inv)
	}
	if !sort.StringsAreSorted(inv[0].URLs) || len(inv[0].URLs) != 2 {
		t.Fatalf("URL chain for 'a' = %v", inv[0].URLs)
	}
	if len(inv[1].URLs) != 1 || inv[1].URLs[0] != "u2" {
		t.Fatalf("URL chain for 'b' = %v (must be deduplicated)", inv[1].URLs)
	}
}

func TestURLListCodec(t *testing.T) {
	urls := []string{"http://a", "http://b", "http://c"}
	got := DecodeURLList(EncodeURLList(urls))
	if len(got) != 3 || got[0] != "http://a" || got[2] != "http://c" {
		t.Fatalf("round trip = %v", got)
	}
	if DecodeURLList(nil) != nil {
		t.Fatal("empty decode should be nil")
	}
}

func TestSearchIntersection(t *testing.T) {
	inv := map[string][]string{
		"go":    {"u1", "u2", "u3"},
		"fast":  {"u2", "u3"},
		"index": {"u3", "u4"},
	}
	sum := map[string]string{"u3": "all about u3"}
	lookup := func(t string) ([]string, bool) { u, ok := inv[t]; return u, ok }
	abstracts := func(u string) (string, bool) { a, ok := sum[u]; return a, ok }

	got := Search([]string{"go", "fast", "index"}, lookup, abstracts, 10)
	if len(got) != 1 || got[0].URL != "u3" || got[0].Abstract != "all about u3" {
		t.Fatalf("Search = %+v", got)
	}
	if got := Search([]string{"missing"}, lookup, abstracts, 10); got != nil {
		t.Fatalf("missing term should yield nil, got %v", got)
	}
	if got := Search(nil, lookup, abstracts, 10); got != nil {
		t.Fatal("empty query should yield nil")
	}
	// Limit applies.
	got = Search([]string{"go"}, lookup, abstracts, 2)
	if len(got) != 2 {
		t.Fatalf("limited Search = %d results", len(got))
	}
}

func TestEndToEndIndexPipeline(t *testing.T) {
	// Crawl -> build all three indices -> serve a query.
	c := testCrawler(t)
	docs := c.Crawl()
	fwd := BuildForward(docs)
	inv := BuildInverted(fwd)
	sum := BuildSummary(docs, 5)

	invMap := map[string][]string{}
	for _, e := range inv {
		invMap[e.Term] = e.URLs
	}
	sumMap := map[string]string{}
	for _, e := range sum {
		sumMap[e.URL] = e.Abstract
	}
	// Query the most common term of the first document.
	term := docs[0].Terms[0]
	res := Search([]string{term},
		func(t string) ([]string, bool) { u, ok := invMap[t]; return u, ok },
		func(u string) (string, bool) { a, ok := sumMap[u]; return a, ok },
		5)
	if len(res) == 0 {
		t.Fatalf("no results for term %q", term)
	}
	found := false
	for _, r := range res {
		if r.URL == docs[0].URL {
			found = true
		}
		if r.Abstract == "" {
			t.Fatalf("missing abstract for %s", r.URL)
		}
	}
	// The first document may rank below the limit; at minimum, every hit
	// must actually contain the term.
	for _, r := range res {
		hit := false
		for _, d := range docs {
			if d.URL == r.URL {
				hit = strings.Contains(strings.Join(d.Terms, " "), term)
			}
		}
		if !hit {
			t.Fatalf("result %s does not contain %q", r.URL, term)
		}
	}
	_ = found
}
