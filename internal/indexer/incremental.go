package indexer

import (
	"sort"
)

// InvertedIndex maintains <term, URLs> chains incrementally: when a
// crawl round re-downloads only the modified documents (paper §1.1.1),
// only the terms those documents gained or lost produce new index
// entries — which is what keeps the per-version delta small and the
// Bifrost dedup ratio high for the rest.
type InvertedIndex struct {
	chains  map[string]map[string]bool // term -> set of URLs
	docTerm map[string][]string        // url -> terms at last indexing
}

// NewInvertedIndex returns an empty incremental index.
func NewInvertedIndex() *InvertedIndex {
	return &InvertedIndex{
		chains:  make(map[string]map[string]bool),
		docTerm: make(map[string][]string),
	}
}

// Update applies one re-downloaded document and returns the terms whose
// URL chains changed (sorted). Calling it again with an unchanged
// document returns nothing.
func (ix *InvertedIndex) Update(doc Document) []string {
	oldTerms := termSet(ix.docTerm[doc.URL])
	newTerms := termSet(doc.Terms)
	dirty := map[string]bool{}
	for t := range newTerms {
		if !oldTerms[t] {
			if ix.chains[t] == nil {
				ix.chains[t] = make(map[string]bool)
			}
			ix.chains[t][doc.URL] = true
			dirty[t] = true
		}
	}
	for t := range oldTerms {
		if !newTerms[t] {
			delete(ix.chains[t], doc.URL)
			if len(ix.chains[t]) == 0 {
				delete(ix.chains, t)
			}
			dirty[t] = true
		}
	}
	terms := make([]string, 0, len(newTerms))
	for t := range newTerms {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	ix.docTerm[doc.URL] = terms

	out := make([]string, 0, len(dirty))
	for t := range dirty {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Remove drops a document (e.g. a page gone from the web) and returns
// the terms whose chains changed.
func (ix *InvertedIndex) Remove(url string) []string {
	old := ix.docTerm[url]
	if old == nil {
		return nil
	}
	dirty := make([]string, 0, len(old))
	for _, t := range old {
		if ix.chains[t] != nil && ix.chains[t][url] {
			delete(ix.chains[t], url)
			if len(ix.chains[t]) == 0 {
				delete(ix.chains, t)
			}
			dirty = append(dirty, t)
		}
	}
	delete(ix.docTerm, url)
	sort.Strings(dirty)
	return dirty
}

// URLs returns the sorted URL chain of a term.
func (ix *InvertedIndex) URLs(term string) ([]string, bool) {
	set, ok := ix.chains[term]
	if !ok {
		return nil, false
	}
	urls := make([]string, 0, len(set))
	for u := range set {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	return urls, true
}

// Terms returns all indexed terms, sorted.
func (ix *InvertedIndex) Terms() []string {
	terms := make([]string, 0, len(ix.chains))
	for t := range ix.chains {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}

// Len returns the number of indexed terms.
func (ix *InvertedIndex) Len() int { return len(ix.chains) }

// Entries materializes the full index as sorted InvertedEntry values
// (for bulk loads and for comparing against the batch builder).
func (ix *InvertedIndex) Entries() []InvertedEntry {
	out := make([]InvertedEntry, 0, len(ix.chains))
	for _, t := range ix.Terms() {
		urls, _ := ix.URLs(t)
		out = append(out, InvertedEntry{Term: t, URLs: urls})
	}
	return out
}

func termSet(terms []string) map[string]bool {
	s := make(map[string]bool, len(terms))
	for _, t := range terms {
		s[t] = true
	}
	return s
}
