package indexer

import (
	"reflect"
	"sync"
	"testing"
)

// crawlRounds replays n rounds for one seed and returns each round's
// downloaded set plus the final corpus.
func crawlRounds(t *testing.T, seed int64, n int) ([][]Document, []Document) {
	t.Helper()
	cfg := DefaultCrawlConfig()
	cfg.Documents = 300
	cfg.Seed = seed
	c, err := NewCrawler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rounds := make([][]Document, n)
	for i := range rounds {
		rounds[i] = c.Crawl()
	}
	return rounds, c.Corpus()
}

// TestCrawlDeterministic: the same seed must replay the identical
// corpus and mutation history — the property every oracle test, bench
// and reproducer in this repo leans on.
func TestCrawlDeterministic(t *testing.T) {
	rounds1, corpus1 := crawlRounds(t, 42, 4)
	rounds2, corpus2 := crawlRounds(t, 42, 4)
	if !reflect.DeepEqual(rounds1, rounds2) {
		t.Fatal("same seed produced different crawl rounds")
	}
	if !reflect.DeepEqual(corpus1, corpus2) {
		t.Fatal("same seed produced different corpora")
	}
	_, corpus3 := crawlRounds(t, 43, 4)
	if reflect.DeepEqual(corpus1, corpus3) {
		t.Fatal("different seeds produced identical corpora")
	}
}

// TestCrawlersIndependent: each crawler owns its rng (seeded from
// CrawlConfig.Seed, not the package-global math/rand stream), so
// crawlers advancing concurrently cannot perturb each other's output.
func TestCrawlersIndependent(t *testing.T) {
	_, want := crawlRounds(t, 7, 3)

	var wg sync.WaitGroup
	results := make([][]Document, 8)
	for i := range results {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			cfg := DefaultCrawlConfig()
			cfg.Documents = 300
			cfg.Seed = 7
			c, err := NewCrawler(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < 3; r++ {
				c.Crawl()
			}
			results[slot] = c.Corpus()
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("crawler %d diverged from the sequential run under concurrency", i)
		}
	}
}
