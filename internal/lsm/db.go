package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"sync"
	"time"

	"directload/internal/blockfs"
	"directload/internal/skiplist"
)

// Engine errors.
var (
	ErrNotFound = errors.New("lsm: not found")
	ErrDeleted  = errors.New("lsm: deleted")
	ErrClosed   = errors.New("lsm: closed")
	ErrNoValue  = errors.New("lsm: dedup chain has no base value")
)

// Options mirror LevelDB's default configuration, which is what the paper
// benchmarks against.
type Options struct {
	// MemtableSize is write_buffer_size: flush to L0 beyond this.
	MemtableSize int64
	// L0CompactionTrigger is the L0 file count that triggers compaction.
	L0CompactionTrigger int
	// L1MaxBytes is the size budget of L1; level i holds 10^(i-1) times
	// more (LevelMultiplier).
	L1MaxBytes      int64
	LevelMultiplier int64
	// TargetFileSize caps the SSTables produced by compaction.
	TargetFileSize int64
	// MaxLevels is the number of levels (LevelDB: 7, L0..L6).
	MaxLevels int
	// BlockCacheBytes bounds the LRU data-block cache (LevelDB default:
	// 8 MB). Zero disables caching.
	BlockCacheBytes int64
	// Seed fixes the memtable skip-list randomness.
	Seed int64
}

// DefaultOptions returns LevelDB 1.9's defaults.
func DefaultOptions() Options {
	return Options{
		MemtableSize:        4 << 20,
		L0CompactionTrigger: 4,
		L1MaxBytes:          10 << 20,
		LevelMultiplier:     10,
		TargetFileSize:      2 << 20,
		MaxLevels:           7,
		BlockCacheBytes:     8 << 20,
		Seed:                1,
	}
}

// memval is the memtable payload.
type memval struct {
	kind  uint8
	value []byte
}

// Stats aggregates engine counters.
type Stats struct {
	UserWriteBytes   int64 // application payload accepted by Put/Del
	UserReadBytes    int64
	Puts, Gets, Dels int64
	Flushes          int64
	Compactions      int64
	CompactionRead   int64 // bytes read by compaction merges
	CompactionWrite  int64 // bytes written by compaction merges
	TablesPerLevel   []int
	BytesPerLevel    []int64
	DiskBytes        int64
	CacheHits        int64
	CacheMisses      int64
}

// DB is the LSM engine instance.
type DB struct {
	mu   sync.Mutex
	fs   blockfs.FS
	opts Options

	mem     *skiplist.List[ikey, memval]
	memSize int64
	wal     blockfs.Writer
	walNum  uint64

	levels  [][]tableMeta // levels[0] ordered oldest..newest; 1+ by smallest
	cache   *blockCache
	readers map[uint64]*tableReader
	nextNum uint64 // next file number (sst/wal/manifest share the space)
	maniNum uint64 // current manifest file number (0 = none)

	closed bool

	userWriteBytes  int64
	userReadBytes   int64
	puts, gets      int64
	dels            int64
	flushes         int64
	compactions     int64
	compactionRead  int64
	compactionWrite int64
	compactPtr      []string // per-level round-robin compaction cursor
}

// Open creates or recovers an LSM DB over fs.
func Open(fs blockfs.FS, opts Options) (*DB, error) {
	if opts.MemtableSize == 0 {
		opts = DefaultOptions()
	}
	if opts.MaxLevels < 2 {
		return nil, errors.New("lsm: need at least 2 levels")
	}
	db := &DB{
		fs:         fs,
		opts:       opts,
		mem:        skiplist.New[ikey, memval](ikeyCompare, opts.Seed),
		levels:     make([][]tableMeta, opts.MaxLevels),
		cache:      newBlockCache(opts.BlockCacheBytes),
		readers:    make(map[uint64]*tableReader),
		nextNum:    1,
		compactPtr: make([]string, opts.MaxLevels),
	}
	if err := db.recover(); err != nil {
		return nil, fmt.Errorf("lsm: recovery: %w", err)
	}
	if err := db.newWALLocked(); err != nil {
		return nil, err
	}
	// Leave a manifest that references the new WAL so a crash right after
	// Open cannot orphan it. If recovery replayed WAL entries into the
	// memtable, flushing them re-persists the data (the old WAL is gone).
	if db.mem.Len() > 0 {
		if _, err := db.flushMemLocked(); err != nil {
			return nil, err
		}
		if _, err := db.maybeCompactLocked(); err != nil {
			return nil, err
		}
	} else if _, err := db.writeManifestLocked(); err != nil {
		return nil, err
	}
	return db, nil
}

// Close flushes the memtable and seals the engine.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.closed = true
	if db.wal != nil {
		_, err := db.wal.Close()
		db.wal = nil
		if err != nil {
			return err
		}
	}
	return nil
}

// --- WAL ---------------------------------------------------------------

func walName(num uint64) string { return fmt.Sprintf("wal-%010d", num) }

func (db *DB) newWALLocked() error {
	num := db.nextNum
	db.nextNum++
	w, err := db.fs.Create(walName(num))
	if err != nil {
		return err
	}
	db.wal = w
	db.walNum = num
	return nil
}

// walAppend frames one entry as crc | len | payload.
func (db *DB) walAppendLocked(e entry) (time.Duration, error) {
	payload := encodeEntry(nil, e)
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(frame[4:], uint32(len(payload)))
	frame = append(frame, payload...)
	_, cost, err := db.wal.Append(frame)
	return cost, err
}

// replayWAL feeds surviving WAL entries back into the memtable.
func (db *DB) replayWAL(num uint64) error {
	name := walName(num)
	size, err := db.fs.Size(name)
	if err != nil {
		return err
	}
	r, err := db.fs.Open(name)
	if err != nil {
		return err
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, _, err := r.ReadAt(buf, 0); err != nil {
			return err
		}
	}
	for p := int64(0); p+8 <= size; {
		crc := binary.LittleEndian.Uint32(buf[p:])
		n := int64(binary.LittleEndian.Uint32(buf[p+4:]))
		if p+8+n > size {
			break // torn tail: stop replay (normal crash semantics)
		}
		payload := buf[p+8 : p+8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		e, _, err := decodeEntry(payload)
		if err != nil {
			break
		}
		db.applyToMemLocked(e)
		p += 8 + n
	}
	return nil
}

func (db *DB) applyToMemLocked(e entry) {
	old, existed := db.mem.Get(e.ik)
	db.mem.Set(e.ik, memval{kind: e.kind, value: e.value})
	sz := int64(len(e.ik.key) + len(e.value) + 16)
	if existed {
		db.memSize -= int64(len(e.ik.key) + len(old.value) + 16)
	}
	db.memSize += sz
}

// --- Write path ----------------------------------------------------------

// Put stores value under (key, version); dedup entries carry no value and
// are resolved by traceback at read time (the LSM baseline has no stable
// in-memory items to bind against).
func (db *DB) Put(key []byte, version uint64, value []byte, dedup bool) (time.Duration, error) {
	kind := kindValue
	if dedup {
		kind = kindDedup
		value = nil
	}
	return db.write(entry{ik: ikey{string(key), version}, kind: kind, value: value}, int64(len(key)+len(value)))
}

// Del writes a tombstone for (key, version).
func (db *DB) Del(key []byte, version uint64) (time.Duration, error) {
	cost, err := db.write(entry{ik: ikey{string(key), version}, kind: kindTombstone}, int64(len(key)))
	if err == nil {
		db.mu.Lock()
		db.dels++
		db.puts-- // write() counted it as a put
		db.mu.Unlock()
	}
	return cost, err
}

func (db *DB) write(e entry, userBytes int64) (time.Duration, error) {
	if len(e.ik.key) == 0 {
		return 0, errors.New("lsm: empty key")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	cost, err := db.walAppendLocked(e)
	if err != nil {
		return cost, err
	}
	db.applyToMemLocked(e)
	db.userWriteBytes += userBytes
	db.puts++
	if db.memSize >= db.opts.MemtableSize {
		c, err := db.flushMemLocked()
		cost += c
		if err != nil {
			return cost, err
		}
		c, err = db.maybeCompactLocked()
		cost += c
		if err != nil {
			return cost, err
		}
	}
	return cost, nil
}

// flushMemLocked writes the memtable to a new L0 table and starts a fresh
// WAL.
func (db *DB) flushMemLocked() (time.Duration, error) {
	if db.mem.Len() == 0 {
		return 0, nil
	}
	num := db.nextNum
	db.nextNum++
	tw, err := newTableWriter(db.fs, num, 0)
	if err != nil {
		return 0, err
	}
	var addErr error
	db.mem.AscendAll(func(k ikey, v memval) bool {
		if addErr = tw.add(entry{ik: k, kind: v.kind, value: v.value}); addErr != nil {
			return false
		}
		return true
	})
	if addErr != nil {
		tw.abandon()
		return tw.cost, addErr
	}
	meta, cost, err := tw.finish()
	if err != nil {
		tw.abandon()
		return cost, err
	}
	db.levels[0] = append(db.levels[0], meta)
	db.flushes++
	db.mem = skiplist.New[ikey, memval](ikeyCompare, db.opts.Seed+int64(num))
	db.memSize = 0
	// Retire the old WAL; its contents are now durable in the table.
	oldWAL := db.walNum
	if _, err := db.wal.Close(); err != nil {
		return cost, err
	}
	if err := db.newWALLocked(); err != nil {
		return cost, err
	}
	if _, err := db.fs.Remove(walName(oldWAL)); err != nil {
		return cost, err
	}
	c, err := db.writeManifestLocked()
	cost += c
	return cost, err
}

// Flush forces the memtable to L0 (used by benchmarks to settle state).
func (db *DB) Flush() (time.Duration, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	cost, err := db.flushMemLocked()
	if err != nil {
		return cost, err
	}
	c, err := db.maybeCompactLocked()
	return cost + c, err
}

// --- Manifest ------------------------------------------------------------

func manifestName(num uint64) string { return fmt.Sprintf("manifest-%010d", num) }

// writeManifestLocked persists the level layout.
func (db *DB) writeManifestLocked() (time.Duration, error) {
	num := db.nextNum
	db.nextNum++
	var body []byte
	put32 := func(v uint32) { body = binary.LittleEndian.AppendUint32(body, v) }
	put64 := func(v uint64) { body = binary.LittleEndian.AppendUint64(body, v) }
	putIK := func(ik ikey) {
		put32(uint32(len(ik.key)))
		body = append(body, ik.key...)
		put64(ik.ver)
	}
	put64(db.nextNum)
	put64(db.walNum)
	put32(uint32(len(db.levels)))
	for _, tables := range db.levels {
		put32(uint32(len(tables)))
		for _, m := range tables {
			put64(m.num)
			put64(uint64(m.size))
			put32(uint32(m.entries))
			putIK(m.smallest)
			putIK(m.largest)
		}
	}
	w, err := db.fs.Create(manifestName(num))
	if err != nil {
		return 0, err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(body))
	_, cost, err := w.Append(body)
	if err == nil {
		var c time.Duration
		_, c, err = w.Append(crcBuf[:])
		cost += c
	}
	if err != nil {
		_, cerr := w.Close()
		return cost, errors.Join(err, cerr)
	}
	c, err := w.Close()
	cost += c
	if err != nil {
		return cost, err
	}
	old := db.maniNum
	db.maniNum = num
	if old != 0 {
		if c, err := db.fs.Remove(manifestName(old)); err == nil {
			cost += c
		}
	}
	return cost, nil
}

// loadManifest restores the level layout; ok=false means no usable
// manifest (fresh DB or corrupt file).
func (db *DB) loadManifest() bool {
	var best string
	var bestNum uint64
	for _, n := range db.fs.List() {
		var num uint64
		if _, err := fmt.Sscanf(n, "manifest-%010d", &num); err == nil && num > bestNum {
			best, bestNum = n, num
		}
	}
	if best == "" {
		return false
	}
	size, err := db.fs.Size(best)
	if err != nil || size < 4 {
		return false
	}
	r, err := db.fs.Open(best)
	if err != nil {
		return false
	}
	buf := make([]byte, size)
	if _, _, err := r.ReadAt(buf, 0); err != nil {
		return false
	}
	body := buf[:size-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(buf[size-4:]) {
		return false
	}
	p := 0
	ok := true
	need := func(n int) bool {
		if p+n > len(body) {
			ok = false
			return false
		}
		return true
	}
	get32 := func() uint32 {
		if !need(4) {
			return 0
		}
		v := binary.LittleEndian.Uint32(body[p:])
		p += 4
		return v
	}
	get64 := func() uint64 {
		if !need(8) {
			return 0
		}
		v := binary.LittleEndian.Uint64(body[p:])
		p += 8
		return v
	}
	getIK := func() ikey {
		klen := int(get32())
		if !need(klen) {
			return ikey{}
		}
		k := string(body[p : p+klen])
		p += klen
		return ikey{key: k, ver: get64()}
	}
	nextNum := get64()
	walNum := get64()
	nLevels := int(get32())
	if !ok || nLevels <= 0 || nLevels > 16 {
		return false
	}
	levels := make([][]tableMeta, db.opts.MaxLevels)
	for l := 0; l < nLevels; l++ {
		n := int(get32())
		for i := 0; i < n && ok; i++ {
			m := tableMeta{level: l}
			m.num = get64()
			m.size = int64(get64())
			m.entries = int(get32())
			m.smallest = getIK()
			m.largest = getIK()
			if l < len(levels) {
				levels[l] = append(levels[l], m)
			}
		}
	}
	if !ok {
		return false
	}
	db.levels = levels
	db.nextNum = nextNum
	db.walNum = walNum
	db.maniNum = bestNum
	return true
}

// recover loads the manifest and replays any surviving WAL.
func (db *DB) recover() error {
	if !db.loadManifest() {
		// Fresh database (or unusable manifest): nothing to restore. Any
		// stray files from a partial crash are removed.
		for _, n := range db.fs.List() {
			db.fs.Remove(n)
		}
		return nil
	}
	// Replay the WAL the manifest points at, if it survived.
	if db.walNum != 0 {
		if _, err := db.fs.Size(walName(db.walNum)); err == nil {
			if err := db.replayWAL(db.walNum); err != nil {
				return err
			}
			db.fs.Remove(walName(db.walNum))
		}
	}
	db.wal = nil // Open() will create a fresh WAL
	// Drop orphan files not referenced by the manifest.
	live := map[string]bool{manifestName(db.maniNum): true}
	for _, tables := range db.levels {
		for _, m := range tables {
			live[tableName(m.num)] = true
		}
	}
	for _, n := range db.fs.List() {
		if !live[n] {
			db.fs.Remove(n)
		}
	}
	return nil
}

// --- Read path -----------------------------------------------------------

func (db *DB) reader(m tableMeta) (*tableReader, time.Duration, error) {
	if tr, ok := db.readers[m.num]; ok {
		return tr, 0, nil
	}
	tr, cost, err := openTable(db.fs, m)
	if err != nil {
		return nil, cost, err
	}
	tr.cache = db.cache
	db.readers[m.num] = tr
	return tr, cost, nil
}

// Get returns the value at (key, version), tracing deduplicated entries
// back to the first older version holding a value.
func (db *DB) Get(key []byte, version uint64) ([]byte, time.Duration, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, 0, ErrClosed
	}
	var total time.Duration
	value, kind, found, cost, err := db.findLocked(ikey{string(key), version})
	total += cost
	if err != nil {
		return nil, total, err
	}
	if !found {
		return nil, total, fmt.Errorf("%w: %q/%d", ErrNotFound, key, version)
	}
	switch kind {
	case kindTombstone:
		return nil, total, fmt.Errorf("%w: %q/%d", ErrDeleted, key, version)
	case kindValue:
		db.gets++
		db.userReadBytes += int64(len(value))
		return value, total, nil
	}
	// Dedup: walk older versions until a real value appears.
	it, cost, err := db.mergedIterLocked(ikey{string(key), version - 1})
	total += cost
	if err != nil {
		return nil, total, err
	}
	for it.valid() {
		e := it.cur()
		if e.ik.key != string(key) {
			break
		}
		if e.kind == kindValue {
			db.gets++
			db.userReadBytes += int64(len(e.value))
			total += it.cost()
			return e.value, total, nil
		}
		it.next()
	}
	total += it.cost()
	return nil, total, fmt.Errorf("%w: %q/%d", ErrNoValue, key, version)
}

// findLocked searches memtable then levels for the exact composite key.
func (db *DB) findLocked(ik ikey) ([]byte, uint8, bool, time.Duration, error) {
	if v, ok := db.mem.Get(ik); ok {
		return v.value, v.kind, true, 0, nil
	}
	var total time.Duration
	// L0: newest file first (files may overlap).
	for i := len(db.levels[0]) - 1; i >= 0; i-- {
		m := db.levels[0][i]
		if ik.key < m.smallest.key || ik.key > m.largest.key {
			continue
		}
		tr, cost, err := db.reader(m)
		total += cost
		if err != nil {
			return nil, 0, false, total, err
		}
		v, kind, found, cost, err := tr.get(ik)
		total += cost
		if err != nil || found {
			return v, kind, found, total, err
		}
	}
	// L1+: at most one file per level can contain the key.
	for l := 1; l < len(db.levels); l++ {
		tables := db.levels[l]
		idx := sort.Search(len(tables), func(i int) bool {
			return tables[i].largest.key >= ik.key
		})
		if idx >= len(tables) || ik.key < tables[idx].smallest.key {
			continue
		}
		tr, cost, err := db.reader(tables[idx])
		total += cost
		if err != nil {
			return nil, 0, false, total, err
		}
		v, kind, found, cost, err := tr.get(ik)
		total += cost
		if err != nil || found {
			return v, kind, found, total, err
		}
	}
	return nil, 0, false, total, nil
}

// Has reports whether (key, version) resolves to a live entry.
func (db *DB) Has(key []byte, version uint64) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return false
	}
	_, kind, found, _, err := db.findLocked(ikey{string(key), version})
	return err == nil && found && kind != kindTombstone
}

// Stats returns engine counters plus the level shape.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := Stats{
		UserWriteBytes:  db.userWriteBytes,
		UserReadBytes:   db.userReadBytes,
		Puts:            db.puts,
		Gets:            db.gets,
		Dels:            db.dels,
		Flushes:         db.flushes,
		Compactions:     db.compactions,
		CompactionRead:  db.compactionRead,
		CompactionWrite: db.compactionWrite,
		DiskBytes:       db.fs.UsedBytes(),
	}
	s.CacheHits, s.CacheMisses = db.cache.stats()
	for _, tables := range db.levels {
		s.TablesPerLevel = append(s.TablesPerLevel, len(tables))
		var b int64
		for _, m := range tables {
			b += m.size
		}
		s.BytesPerLevel = append(s.BytesPerLevel, b)
	}
	return s
}

var maxIkeyVer = uint64(math.MaxUint64)
