package lsm

import (
	"container/list"
	"sync"
)

// blockCache is the LRU data-block cache LevelDB fronts its SSTables
// with (default 8 MB; scaled down alongside the other constants in the
// experiments). Cached blocks are served without device time, which is
// where the baseline's read-mean benefits on skewed workloads come from.
type blockCache struct {
	mu    sync.Mutex
	cap   int64
	size  int64
	ll    *list.List // front = most recent
	items map[cacheKey]*list.Element

	hits   int64
	misses int64
}

type cacheKey struct {
	table uint64
	off   uint64
}

type cacheEntry struct {
	key  cacheKey
	data []byte
}

// newBlockCache returns a cache bounded to capacity bytes (nil if <= 0).
func newBlockCache(capacity int64) *blockCache {
	if capacity <= 0 {
		return nil
	}
	return &blockCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[cacheKey]*list.Element),
	}
}

// get returns the cached block and promotes it.
func (c *blockCache) get(key cacheKey) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// put inserts a block, evicting LRU entries beyond capacity. Blocks
// larger than the whole cache are not cached.
func (c *blockCache) put(key cacheKey, data []byte) {
	if c == nil || int64(len(data)) > c.cap {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		old := el.Value.(*cacheEntry)
		c.size += int64(len(data)) - int64(len(old.data))
		old.data = data
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, data: data})
		c.items[key] = el
		c.size += int64(len(data))
	}
	for c.size > c.cap {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, e.key)
		c.size -= int64(len(e.data))
	}
}

// dropTable evicts every cached block of a table (called when compaction
// deletes the file).
func (c *blockCache) dropTable(table uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.table == table {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.size -= int64(len(e.data))
		}
		el = next
	}
}

// stats returns hit/miss counters.
func (c *blockCache) stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
