package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestManifestCorruptionFallsBackToEmpty: a destroyed manifest means the
// engine cannot trust any on-disk state; it must come up empty and
// usable rather than serving garbage.
func TestManifestCorruptionFallsBackToEmpty(t *testing.T) {
	fs := testFS(t, 512)
	db, err := Open(fs, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		lput(t, db, fmt.Sprintf("k-%03d", i), 1, "v")
	}
	db.Flush()
	db.Close()

	// Corrupt every manifest byte-wise.
	for _, n := range fs.List() {
		var num uint64
		if _, err := fmt.Sscanf(n, "manifest-%010d", &num); err == nil {
			fs.Remove(n)
			w, _ := fs.Create(n)
			w.Append([]byte("definitely not a manifest"))
			w.Close()
		}
	}
	db2, err := Open(fs, smallOptions())
	if err != nil {
		t.Fatalf("open after manifest corruption: %v", err)
	}
	defer db2.Close()
	if _, _, err := db2.Get([]byte("k-000"), 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt-manifest DB should be empty, Get err = %v", err)
	}
	lput(t, db2, "fresh", 1, "usable")
	if got := lget(t, db2, "fresh", 1); got != "usable" {
		t.Fatal("DB unusable after manifest loss")
	}
}

// TestWALTornTail: a WAL whose last record is truncated replays the
// prefix and drops the torn record — standard crash semantics.
func TestWALTornTail(t *testing.T) {
	fs := testFS(t, 512)
	db, err := Open(fs, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	lput(t, db, "a", 1, "intact")
	lput(t, db, "b", 1, "also-intact")
	// Simulate the crash by NOT closing; instead corrupt the WAL tail by
	// appending garbage bytes that decode as a half-record.
	db.mu.Lock()
	walName := walName(db.walNum)
	db.wal.Append([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0xFF, 0xFF, 0xFF, 0x7F, 0x01}) // bogus frame
	db.mu.Unlock()
	_ = walName

	db2, err := Open(fs, smallOptions())
	if err != nil {
		t.Fatalf("open with torn WAL: %v", err)
	}
	defer db2.Close()
	if got := lget(t, db2, "a", 1); got != "intact" {
		t.Fatalf("a = %q", got)
	}
	if got := lget(t, db2, "b", 1); got != "also-intact" {
		t.Fatalf("b = %q", got)
	}
}

// TestBloomFiltersSaveIO: point lookups for absent keys should rarely
// touch data blocks thanks to the per-table bloom filters.
func TestBloomFiltersSaveIO(t *testing.T) {
	db := openLSM(t, 1024)
	defer db.Close()
	val := bytes.Repeat([]byte{1}, 512)
	for i := 0; i < 2000; i++ {
		lput(t, db, fmt.Sprintf("present-%05d", i), 1, string(val))
	}
	db.Flush()
	// Warm the table cache (index/filter loads).
	db.Get([]byte("present-00000"), 1)
	before := db.fs.Device().Stats().SysReadBytes
	misses := 0
	for i := 0; i < 500; i++ {
		if _, _, err := db.Get([]byte(fmt.Sprintf("absent-%05d", i)), 1); err == nil {
			t.Fatal("absent key found")
		}
		misses++
	}
	readPerMiss := float64(db.fs.Device().Stats().SysReadBytes-before) / float64(misses)
	// Without filters every miss would read >= one 4KB block per level
	// touched; with ~1% false positives it should average well under one
	// page per miss.
	if readPerMiss > 2048 {
		t.Fatalf("absent-key lookups read %.0f bytes each; bloom filters ineffective", readPerMiss)
	}
}

// TestGetAfterReopenFindsAllLevels: data spread across several levels by
// compaction survives restart (manifest + table files).
func TestGetAfterReopenFindsAllLevels(t *testing.T) {
	fs := testFS(t, 2048)
	db, err := Open(fs, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{2}, 1024)
	for round := 0; round < 8; round++ {
		for i := 0; i < 300; i++ {
			lput(t, db, fmt.Sprintf("key-%04d", i), uint64(round+1), string(val))
		}
	}
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatal("precondition: compactions must have run")
	}
	db.Close()

	db2, err := Open(fs, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 300; i += 17 {
		for _, v := range []uint64{5, 8} {
			if got := lget(t, db2, fmt.Sprintf("key-%04d", i), v); got != string(val) {
				t.Fatalf("key-%04d/%d lost across restart", i, v)
			}
		}
	}
	levels := db2.Stats().TablesPerLevel
	deep := 0
	for l := 1; l < len(levels); l++ {
		deep += levels[l]
	}
	if deep == 0 {
		t.Fatal("expected tables below L0 after restart")
	}
}

// TestRangeAcrossLevels: merged iteration sees memtable, L0 and deeper
// levels with correct shadowing.
func TestRangeAcrossLevels(t *testing.T) {
	db := openLSM(t, 1024)
	defer db.Close()
	val := bytes.Repeat([]byte{3}, 1024)
	// Old version of everything, pushed down by churn.
	for i := 0; i < 200; i++ {
		lput(t, db, fmt.Sprintf("key-%04d", i), 1, string(val))
	}
	for r := 0; r < 4; r++ {
		for i := 0; i < 200; i++ {
			lput(t, db, fmt.Sprintf("key-%04d", i), uint64(r+2), string(val))
		}
	}
	// Fresh memtable-only entries and a deletion.
	lput(t, db, "key-0000", 9, "newest")
	db.Del([]byte("key-0001"), 5)

	count := 0
	var sawNewest, sawTombstoned bool
	if _, err := db.Range(nil, nil, func(k []byte, ver uint64) bool {
		count++
		switch string(k) {
		case "key-0000":
			if ver != 9 {
				t.Fatalf("key-0000 newest version = %d, want 9", ver)
			}
			sawNewest = true
		case "key-0001":
			sawTombstoned = true
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// key-0001's newest version (5) is tombstoned, so Range skips the key
	// (both engines define Range over keys whose newest version is live).
	if count != 199 {
		t.Fatalf("Range saw %d keys, want 199", count)
	}
	if sawTombstoned {
		t.Fatal("key with tombstoned newest version must not appear")
	}
	if !sawNewest {
		t.Fatal("memtable entry not visible in Range")
	}
}

// TestBlockCache: repeated point reads of the same hot keys hit the
// cache and stop costing device time; compaction churn evicts dead
// tables' blocks.
func TestBlockCache(t *testing.T) {
	opts := smallOptions()
	opts.BlockCacheBytes = 1 << 20
	db, err := Open(testFS(t, 1024), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte{5}, 1024)
	for i := 0; i < 500; i++ {
		lput(t, db, fmt.Sprintf("key-%04d", i), 1, string(val))
	}
	db.Flush()
	// First read warms the cache; the second must be free.
	if _, cost1, err := db.Get([]byte("key-0123"), 1); err != nil || cost1 == 0 {
		t.Fatalf("first read cost %v, err %v", cost1, err)
	}
	_, cost2, err := db.Get([]byte("key-0123"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if cost2 != 0 {
		t.Fatalf("cached read cost = %v, want 0", cost2)
	}
	st := db.Stats()
	if st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("cache counters: hits=%d misses=%d", st.CacheHits, st.CacheMisses)
	}
}

func TestBlockCacheDisabled(t *testing.T) {
	opts := smallOptions()
	opts.BlockCacheBytes = 0
	db, err := Open(testFS(t, 512), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	lput(t, db, "k", 1, "v")
	db.Flush()
	db.Get([]byte("k"), 1)
	_, cost, _ := db.Get([]byte("k"), 1)
	if cost == 0 {
		t.Fatal("reads should cost device time with the cache disabled")
	}
	if h, m := db.Stats().CacheHits, db.Stats().CacheMisses; h != 0 || m != 0 {
		t.Fatalf("disabled cache counted: %d/%d", h, m)
	}
}

func TestBlockCacheEviction(t *testing.T) {
	c := newBlockCache(10_000)
	blob := bytes.Repeat([]byte{1}, 3000)
	for i := uint64(0); i < 6; i++ {
		c.put(cacheKey{table: i, off: 0}, blob)
	}
	if c.size > 10_000 {
		t.Fatalf("cache over capacity: %d", c.size)
	}
	// Oldest entries evicted.
	if _, ok := c.get(cacheKey{table: 0, off: 0}); ok {
		t.Fatal("oldest entry should be evicted")
	}
	if _, ok := c.get(cacheKey{table: 5, off: 0}); !ok {
		t.Fatal("newest entry should remain")
	}
	// dropTable removes a table's blocks.
	c.dropTable(5)
	if _, ok := c.get(cacheKey{table: 5, off: 0}); ok {
		t.Fatal("dropTable did not evict")
	}
	// Oversized blobs are not cached.
	c.put(cacheKey{table: 9, off: 0}, make([]byte, 20_000))
	if _, ok := c.get(cacheKey{table: 9, off: 0}); ok {
		t.Fatal("oversized blob must not be cached")
	}
	// A nil cache is inert.
	var nc *blockCache
	nc.put(cacheKey{}, blob)
	if _, ok := nc.get(cacheKey{}); ok {
		t.Fatal("nil cache returned a hit")
	}
}
