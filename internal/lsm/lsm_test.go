package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"directload/internal/blockfs"
	"directload/internal/ssd"
)

func testFS(t testing.TB, blocks int) blockfs.FS {
	t.Helper()
	cfg := ssd.Config{
		PageSize:      4096,
		PagesPerBlock: 64,
		Blocks:        blocks,
		Latency: ssd.LatencyModel{
			PageRead: 80 * time.Microsecond, PageWrite: 200 * time.Microsecond,
			BlockErase: 1500 * time.Microsecond, Channels: 1,
		},
	}
	d, err := ssd.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ftl, err := ssd.NewFTL(d, (blocks-blocks/8-4)*64)
	if err != nil {
		t.Fatal(err)
	}
	return blockfs.NewFTLFS(ftl)
}

// smallOptions shrinks everything so compaction triggers quickly.
func smallOptions() Options {
	return Options{
		MemtableSize:        64 << 10,
		L0CompactionTrigger: 4,
		L1MaxBytes:          256 << 10,
		LevelMultiplier:     10,
		TargetFileSize:      64 << 10,
		MaxLevels:           7,
		Seed:                1,
	}
}

func openLSM(t testing.TB, blocks int) *DB {
	t.Helper()
	db, err := Open(testFS(t, blocks), smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func lput(t testing.TB, db *DB, key string, ver uint64, val string) {
	t.Helper()
	if _, err := db.Put([]byte(key), ver, []byte(val), false); err != nil {
		t.Fatalf("Put(%s/%d): %v", key, ver, err)
	}
}

func lget(t testing.TB, db *DB, key string, ver uint64) string {
	t.Helper()
	v, _, err := db.Get([]byte(key), ver)
	if err != nil {
		t.Fatalf("Get(%s/%d): %v", key, ver, err)
	}
	return string(v)
}

func TestLSMPutGetMemtable(t *testing.T) {
	db := openLSM(t, 256)
	defer db.Close()
	lput(t, db, "k", 1, "v1")
	if got := lget(t, db, "k", 1); got != "v1" {
		t.Fatalf("Get = %q", got)
	}
	if _, _, err := db.Get([]byte("k"), 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing version err = %v", err)
	}
}

func TestLSMFlushAndGetFromTable(t *testing.T) {
	db := openLSM(t, 256)
	defer db.Close()
	for i := 0; i < 50; i++ {
		lput(t, db, fmt.Sprintf("key-%03d", i), 1, fmt.Sprintf("val-%03d", i))
	}
	if _, err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().TablesPerLevel[0] == 0 && db.Stats().TablesPerLevel[1] == 0 {
		t.Fatal("flush produced no tables")
	}
	for i := 0; i < 50; i++ {
		if got := lget(t, db, fmt.Sprintf("key-%03d", i), 1); got != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("key-%03d = %q", i, got)
		}
	}
}

func TestLSMOverwriteAcrossFlush(t *testing.T) {
	db := openLSM(t, 256)
	defer db.Close()
	lput(t, db, "k", 1, "old")
	db.Flush()
	lput(t, db, "k", 1, "new")
	if got := lget(t, db, "k", 1); got != "new" {
		t.Fatalf("Get = %q, want memtable to shadow table", got)
	}
	db.Flush()
	if got := lget(t, db, "k", 1); got != "new" {
		t.Fatalf("Get after second flush = %q (L0 newest must shadow)", got)
	}
}

func TestLSMDelete(t *testing.T) {
	db := openLSM(t, 256)
	defer db.Close()
	lput(t, db, "k", 1, "v")
	if _, err := db.Del([]byte("k"), 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Get([]byte("k"), 1); !errors.Is(err, ErrDeleted) {
		t.Fatalf("Get deleted err = %v", err)
	}
	db.Flush()
	if _, _, err := db.Get([]byte("k"), 1); !errors.Is(err, ErrDeleted) {
		t.Fatalf("Get deleted after flush err = %v", err)
	}
	if db.Has([]byte("k"), 1) {
		t.Fatal("Has should be false")
	}
}

func TestLSMVersionsIndependent(t *testing.T) {
	db := openLSM(t, 256)
	defer db.Close()
	lput(t, db, "k", 1, "v1")
	lput(t, db, "k", 2, "v2")
	lput(t, db, "k", 3, "v3")
	db.Del([]byte("k"), 2)
	if got := lget(t, db, "k", 1); got != "v1" {
		t.Fatalf("v1 = %q", got)
	}
	if got := lget(t, db, "k", 3); got != "v3" {
		t.Fatalf("v3 = %q", got)
	}
	if _, _, err := db.Get([]byte("k"), 2); !errors.Is(err, ErrDeleted) {
		t.Fatalf("v2 err = %v", err)
	}
}

func TestLSMDedupTraceback(t *testing.T) {
	db := openLSM(t, 256)
	defer db.Close()
	lput(t, db, "k", 1, "base")
	if _, err := db.Put([]byte("k"), 2, nil, true); err != nil {
		t.Fatal(err)
	}
	if got := lget(t, db, "k", 2); got != "base" {
		t.Fatalf("traceback = %q", got)
	}
	db.Flush()
	if got := lget(t, db, "k", 2); got != "base" {
		t.Fatalf("traceback after flush = %q", got)
	}
	if _, err := db.Put([]byte("orphan"), 3, nil, true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Get([]byte("orphan"), 3); !errors.Is(err, ErrNoValue) {
		t.Fatalf("orphan dedup err = %v", err)
	}
}

func TestLSMCompactionTriggered(t *testing.T) {
	db := openLSM(t, 2048)
	defer db.Close()
	val := bytes.Repeat([]byte{1}, 1024)
	for i := 0; i < 2000; i++ {
		lput(t, db, fmt.Sprintf("key-%06d", i%500), uint64(1+i/500), string(val))
	}
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatal("expected compactions under sustained writes")
	}
	if st.CompactionRead == 0 || st.CompactionWrite == 0 {
		t.Fatalf("compaction I/O not accounted: %+v", st)
	}
	// Every key still resolves to its newest version's value.
	for i := 0; i < 500; i++ {
		if got := lget(t, db, fmt.Sprintf("key-%06d", i), 4); got != string(val) {
			t.Fatalf("key-%06d lost after compaction", i)
		}
	}
	// Level invariant: L1+ tables sorted and non-overlapping.
	assertLevelInvariants(t, db)
}

func assertLevelInvariants(t *testing.T, db *DB) {
	t.Helper()
	db.mu.Lock()
	defer db.mu.Unlock()
	for l := 1; l < len(db.levels); l++ {
		tables := db.levels[l]
		for i := 1; i < len(tables); i++ {
			// Strict: every user key lives in exactly one table per
			// level (compaction never splits outputs mid-key).
			if tables[i-1].largest.key >= tables[i].smallest.key {
				t.Fatalf("level %d tables overlap by user key: %v / %v",
					l, tables[i-1].largest, tables[i].smallest)
			}
		}
	}
}

func TestLSMWriteAmplification(t *testing.T) {
	// The headline baseline behaviour: sustained overwrite traffic makes
	// device writes a large multiple of user writes.
	db := openLSM(t, 4096)
	defer db.Close()
	val := bytes.Repeat([]byte{2}, 2048)
	for round := 0; round < 10; round++ {
		for i := 0; i < 400; i++ {
			lput(t, db, fmt.Sprintf("key-%06d", i), uint64(round+1), string(val))
		}
	}
	st := db.Stats()
	sys := db.fs.Device().Stats()
	wa := float64(sys.SysWriteBytes) / float64(st.UserWriteBytes)
	if wa < 3 {
		t.Fatalf("LSM write amplification = %.1f, expected >= 3 for overwrite churn", wa)
	}
}

func TestLSMRange(t *testing.T) {
	db := openLSM(t, 256)
	defer db.Close()
	lput(t, db, "a", 1, "x")
	lput(t, db, "b", 1, "x")
	lput(t, db, "b", 2, "x")
	lput(t, db, "c", 1, "x")
	db.Del([]byte("c"), 1)
	db.Flush()
	lput(t, db, "d", 1, "x")

	type hit struct {
		key string
		ver uint64
	}
	var got []hit
	if _, err := db.Range(nil, nil, func(k []byte, v uint64) bool {
		got = append(got, hit{string(k), v})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []hit{{"a", 1}, {"b", 2}, {"d", 1}}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
}

func TestLSMDropVersion(t *testing.T) {
	db := openLSM(t, 512)
	defer db.Close()
	for i := 0; i < 20; i++ {
		lput(t, db, fmt.Sprintf("k%02d", i), 1, "v1")
		lput(t, db, fmt.Sprintf("k%02d", i), 2, "v2")
	}
	db.Flush()
	n, _, err := db.DropVersion(1)
	if err != nil || n != 20 {
		t.Fatalf("DropVersion = %d, %v", n, err)
	}
	for i := 0; i < 20; i++ {
		if _, _, err := db.Get([]byte(fmt.Sprintf("k%02d", i)), 1); !errors.Is(err, ErrDeleted) {
			t.Fatalf("k%02d/1 err = %v", i, err)
		}
		if got := lget(t, db, fmt.Sprintf("k%02d", i), 2); got != "v2" {
			t.Fatalf("k%02d/2 = %q", i, got)
		}
	}
}

func TestLSMRecovery(t *testing.T) {
	fs := testFS(t, 1024)
	db, err := Open(fs, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{3}, 1024)
	for i := 0; i < 300; i++ {
		lput(t, db, fmt.Sprintf("key-%04d", i), 1, string(val))
	}
	db.Del([]byte("key-0000"), 1)
	lput(t, db, "fresh", 1, "in-wal-only")
	db.Close()

	db2, err := Open(fs, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// Entries that reached tables.
	for i := 1; i < 300; i++ {
		if got := lget(t, db2, fmt.Sprintf("key-%04d", i), 1); got != string(val) {
			t.Fatalf("key-%04d lost in recovery", i)
		}
	}
	// WAL-only entries.
	if got := lget(t, db2, "fresh", 1); got != "in-wal-only" {
		t.Fatalf("WAL entry lost: %q", got)
	}
	if _, _, err := db2.Get([]byte("key-0000"), 1); !errors.Is(err, ErrDeleted) {
		t.Fatalf("tombstone lost in recovery: %v", err)
	}
}

func TestLSMRecoveryFreshDB(t *testing.T) {
	fs := testFS(t, 128)
	db, err := Open(fs, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Get([]byte("x"), 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fresh DB Get err = %v", err)
	}
	db.Close()
}

func TestLSMClosedErrors(t *testing.T) {
	db := openLSM(t, 128)
	db.Close()
	if err := db.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close err = %v", err)
	}
	if _, err := db.Put([]byte("k"), 1, nil, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put err = %v", err)
	}
	if _, _, err := db.Get([]byte("k"), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get err = %v", err)
	}
}

func TestLSMEmptyKeyRejected(t *testing.T) {
	db := openLSM(t, 128)
	defer db.Close()
	if _, err := db.Put(nil, 1, []byte("v"), false); err == nil {
		t.Fatal("empty key should be rejected")
	}
}

func TestLSMTombstonesDroppedAtBottom(t *testing.T) {
	// After enough churn, tombstones compacted to the bottommost level
	// disappear rather than accumulating forever.
	db := openLSM(t, 2048)
	defer db.Close()
	val := bytes.Repeat([]byte{4}, 1024)
	for i := 0; i < 500; i++ {
		lput(t, db, fmt.Sprintf("key-%04d", i), 1, string(val))
	}
	for i := 0; i < 500; i++ {
		db.Del([]byte(fmt.Sprintf("key-%04d", i)), 1)
	}
	// Churn other keys to force compactions through the levels.
	for r := 0; r < 6; r++ {
		for i := 0; i < 400; i++ {
			lput(t, db, fmt.Sprintf("other-%04d", i), uint64(r+1), string(val))
		}
	}
	db.Flush()
	for i := 0; i < 500; i += 50 {
		if db.Has([]byte(fmt.Sprintf("key-%04d", i)), 1) {
			t.Fatalf("key-%04d resurrected", i)
		}
	}
}

func TestBloomFilter(t *testing.T) {
	b := newBloomBuilder(10)
	for i := 0; i < 1000; i++ {
		b.add(fmt.Sprintf("key-%d", i))
	}
	f := bloomFilter(b.build())
	for i := 0; i < 1000; i++ {
		if !f.mayContain(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if f.mayContain(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / 10000; rate > 0.05 {
		t.Fatalf("false positive rate = %.3f, want < 5%%", rate)
	}
}

func TestBloomEmptyFilter(t *testing.T) {
	f := bloomFilter(nil)
	if !f.mayContain("anything") {
		t.Fatal("empty filter must not exclude")
	}
}

func TestSSTableRoundTrip(t *testing.T) {
	fs := testFS(t, 256)
	tw, err := newTableWriter(fs, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want []entry
	for i := 0; i < 500; i++ {
		e := entry{
			ik:    ikey{key: fmt.Sprintf("key-%05d", i), ver: uint64(i % 3)},
			kind:  kindValue,
			value: bytes.Repeat([]byte{byte(i)}, 64),
		}
		want = append(want, e)
		if err := tw.add(e); err != nil {
			t.Fatal(err)
		}
	}
	meta, _, err := tw.finish()
	if err != nil {
		t.Fatal(err)
	}
	if meta.entries != 500 {
		t.Fatalf("entries = %d", meta.entries)
	}
	tr, _, err := openTable(fs, meta)
	if err != nil {
		t.Fatal(err)
	}
	// Point lookups.
	for i := 0; i < len(want); i += 7 {
		e := want[i]
		v, kind, found, _, err := tr.get(e.ik)
		if err != nil || !found || kind != kindValue || !bytes.Equal(v, e.value) {
			t.Fatalf("get(%v) = %v %v %v", e.ik, found, kind, err)
		}
	}
	// Miss.
	if _, _, found, _, _ := tr.get(ikey{"zzz", 1}); found {
		t.Fatal("found nonexistent key")
	}
	// Full iteration preserves order and content.
	it := tr.iter()
	i := 0
	for it.next() {
		if ikeyCompare(it.cur.ik, want[i].ik) != 0 {
			t.Fatalf("iter order broken at %d", i)
		}
		i++
	}
	if i != 500 {
		t.Fatalf("iterated %d entries", i)
	}
	// Seek.
	if !it.seek(ikey{"key-00250", maxIkeyVer}) {
		t.Fatal("seek failed")
	}
	if it.cur.ik.key != "key-00250" {
		t.Fatalf("seek landed on %v", it.cur.ik)
	}
}

func TestSSTableOutOfOrderAdd(t *testing.T) {
	fs := testFS(t, 128)
	tw, _ := newTableWriter(fs, 1, 0)
	tw.add(entry{ik: ikey{"b", 1}, kind: kindValue})
	if err := tw.add(entry{ik: ikey{"a", 1}, kind: kindValue}); err == nil {
		t.Fatal("out-of-order add should fail")
	}
	tw.abandon()
}

// Property: LSM agrees with a model map over random versioned workloads
// with flush/compaction/recovery in the loop.
func TestLSMQuickModel(t *testing.T) {
	type op struct {
		Key byte
		Ver uint8
		Del bool
		Val uint16
	}
	f := func(ops []op) bool {
		fs := testFS(t, 1024)
		db, err := Open(fs, smallOptions())
		if err != nil {
			return false
		}
		type mkey struct {
			k string
			v uint64
		}
		model := map[mkey]string{}
		dels := map[mkey]bool{}
		for i, o := range ops {
			k := fmt.Sprintf("key-%02d", o.Key%32)
			ver := uint64(o.Ver%8) + 1
			mk := mkey{k, ver}
			if o.Del {
				db.Del([]byte(k), ver)
				delete(model, mk)
				dels[mk] = true
			} else {
				val := fmt.Sprintf("val-%d-%d", o.Val, i)
				if _, err := db.Put([]byte(k), ver, []byte(val), false); err != nil {
					return false
				}
				model[mk] = val
				delete(dels, mk)
			}
			if i%40 == 39 {
				if _, err := db.Flush(); err != nil {
					return false
				}
			}
		}
		check := func(d *DB) bool {
			for mk, want := range model {
				got, _, err := d.Get([]byte(mk.k), mk.v)
				if err != nil || string(got) != want {
					return false
				}
			}
			for mk := range dels {
				if _, _, err := d.Get([]byte(mk.k), mk.v); !errors.Is(err, ErrDeleted) && !errors.Is(err, ErrNotFound) {
					return false
				}
			}
			return true
		}
		if !check(db) {
			return false
		}
		db.Close()
		db2, err := Open(fs, smallOptions())
		if err != nil {
			return false
		}
		defer db2.Close()
		return check(db2)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
