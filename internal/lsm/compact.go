package lsm

import (
	"fmt"
	"time"
)

// --- merged iteration ----------------------------------------------------

// msource is a positioned, sorted entry stream. Sources are merged in
// priority order: when two sources yield the same composite key, the
// lower-index (newer) source wins and the duplicate is skipped.
type msource interface {
	valid() bool
	cur() entry
	next()
	cost() time.Duration
}

// memSource adapts the memtable iterator.
type memSource struct {
	it *skiplistIter
}

// skiplistIter materializes a memtable snapshot ascending from a start
// key. The memtable is tiny relative to values (keys only dominate), and
// compaction/Get hold db.mu anyway, so a copied snapshot keeps the
// iterator semantics simple.
type skiplistIter struct {
	entries []entry
	pos     int
}

func (db *DB) memIterLocked(start ikey) *skiplistIter {
	it := &skiplistIter{}
	db.mem.Ascend(start, func(k ikey, v memval) bool {
		it.entries = append(it.entries, entry{ik: k, kind: v.kind, value: v.value})
		return true
	})
	return it
}

func (s *memSource) valid() bool         { return s.it.pos < len(s.it.entries) }
func (s *memSource) cur() entry          { return s.it.entries[s.it.pos] }
func (s *memSource) next()               { s.it.pos++ }
func (s *memSource) cost() time.Duration { return 0 }

// tableSource adapts a tableIter.
type tableSource struct {
	it *tableIter
	ok bool
}

func newTableSource(it *tableIter, start ikey, seek bool) *tableSource {
	s := &tableSource{it: it}
	if seek {
		s.ok = it.seek(start)
	} else {
		s.ok = it.next()
	}
	return s
}

func (s *tableSource) valid() bool         { return s.ok && s.it.valid }
func (s *tableSource) cur() entry          { return s.it.cur }
func (s *tableSource) next()               { s.ok = s.it.next() }
func (s *tableSource) cost() time.Duration { return s.it.cost }

// mergedIter merges sources with newest-wins shadowing.
type mergedIter struct {
	srcs []msource
	e    entry
	ok   bool
}

func newMergedIter(srcs []msource) *mergedIter {
	m := &mergedIter{srcs: srcs}
	m.advance()
	return m
}

func (m *mergedIter) valid() bool { return m.ok }
func (m *mergedIter) cur() entry  { return m.e }

func (m *mergedIter) cost() time.Duration {
	var total time.Duration
	for _, s := range m.srcs {
		total += s.cost()
	}
	return total
}

// advance selects the smallest current key (ties: lowest source index)
// and consumes that key from every source.
func (m *mergedIter) advance() {
	best := -1
	for i, s := range m.srcs {
		if !s.valid() {
			continue
		}
		if best < 0 || ikeyLess(s.cur().ik, m.srcs[best].cur().ik) {
			best = i
		}
	}
	if best < 0 {
		m.ok = false
		return
	}
	m.e = m.srcs[best].cur()
	m.ok = true
	ik := m.e.ik
	for _, s := range m.srcs {
		for s.valid() && ikeyCompare(s.cur().ik, ik) == 0 {
			s.next()
		}
	}
}

func (m *mergedIter) next() { m.advance() }

// mergedIterLocked builds a merged iterator over the memtable and every
// table, seeked to start. Caller holds db.mu.
func (db *DB) mergedIterLocked(start ikey) (*mergedIter, time.Duration, error) {
	var total time.Duration
	srcs := []msource{&memSource{it: db.memIterLocked(start)}}
	// L0 newest first.
	for i := len(db.levels[0]) - 1; i >= 0; i-- {
		tr, cost, err := db.reader(db.levels[0][i])
		total += cost
		if err != nil {
			return nil, total, err
		}
		srcs = append(srcs, newTableSource(tr.iter(), start, true))
	}
	for l := 1; l < len(db.levels); l++ {
		for _, meta := range db.levels[l] {
			if meta.largest.key < start.key {
				continue
			}
			tr, cost, err := db.reader(meta)
			total += cost
			if err != nil {
				return nil, total, err
			}
			srcs = append(srcs, newTableSource(tr.iter(), start, true))
		}
	}
	return newMergedIter(srcs), total, nil
}

// Range calls fn for the newest live version of every key in [from, to)
// (empty "to" = unbounded), mirroring QinDB's Range.
func (db *DB) Range(from, to []byte, fn func(key []byte, version uint64) bool) (time.Duration, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	it, total, err := db.mergedIterLocked(ikey{string(from), maxIkeyVer})
	if err != nil {
		return total, err
	}
	last := ""
	first := true
	for it.valid() {
		e := it.cur()
		if len(to) > 0 && e.ik.key >= string(to) {
			break
		}
		if first || e.ik.key != last {
			first = false
			last = e.ik.key
			if e.kind != kindTombstone {
				if !fn([]byte(e.ik.key), e.ik.ver) {
					break
				}
			}
		}
		it.next()
	}
	total += it.cost()
	return total, nil
}

// DropVersion deletes every live entry of version (the paper's "deletion
// thread removes the oldest version"). The LSM engine has no version
// index, so this is a full scan followed by tombstone writes — exactly
// the extra work an LSM pays for bulk version retirement.
func (db *DB) DropVersion(version uint64) (int, time.Duration, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return 0, 0, ErrClosed
	}
	it, total, err := db.mergedIterLocked(ikey{"", maxIkeyVer})
	if err != nil {
		db.mu.Unlock()
		return 0, total, err
	}
	var victims []string
	for it.valid() {
		e := it.cur()
		if e.ik.ver == version && e.kind != kindTombstone {
			victims = append(victims, e.ik.key)
		}
		it.next()
	}
	total += it.cost()
	db.mu.Unlock()
	for _, k := range victims {
		cost, err := db.Del([]byte(k), version)
		total += cost
		if err != nil {
			return 0, total, err
		}
	}
	return len(victims), total, nil
}

// --- compaction ----------------------------------------------------------

// maxBytesForLevel returns LevelDB's level size budget.
func (db *DB) maxBytesForLevel(level int) int64 {
	bytes := db.opts.L1MaxBytes
	for l := 1; l < level; l++ {
		bytes *= db.opts.LevelMultiplier
	}
	return bytes
}

func (db *DB) levelBytesLocked(level int) int64 {
	var b int64
	for _, m := range db.levels[level] {
		b += m.size
	}
	return b
}

// pickCompactionLocked returns the level most in need of compaction, or
// -1 when the tree is within budget.
func (db *DB) pickCompactionLocked() int {
	if len(db.levels[0]) >= db.opts.L0CompactionTrigger {
		return 0
	}
	for l := 1; l < len(db.levels)-1; l++ {
		if db.levelBytesLocked(l) > db.maxBytesForLevel(l) {
			return l
		}
	}
	return -1
}

// maybeCompactLocked runs compactions until every level is within budget.
// Inline (synchronous) compaction makes the write-amplification series of
// Fig. 5 deterministic.
func (db *DB) maybeCompactLocked() (time.Duration, error) {
	var total time.Duration
	for {
		level := db.pickCompactionLocked()
		if level < 0 {
			return total, nil
		}
		cost, err := db.compactLevelLocked(level)
		total += cost
		if err != nil {
			return total, err
		}
	}
}

// compactLevelLocked merges inputs from level into level+1.
func (db *DB) compactLevelLocked(level int) (time.Duration, error) {
	target := level + 1
	var inputs []tableMeta // priority order: newest first
	if level == 0 {
		// All L0 files, newest first (they may overlap each other).
		for i := len(db.levels[0]) - 1; i >= 0; i-- {
			inputs = append(inputs, db.levels[0][i])
		}
	} else {
		// Round-robin cursor across the level's key space.
		tables := db.levels[level]
		idx := 0
		for i, m := range tables {
			if m.smallest.key > db.compactPtr[level] {
				idx = i
				break
			}
		}
		inputs = append(inputs, tables[idx])
		db.compactPtr[level] = tables[idx].largest.key
		if idx == len(tables)-1 {
			db.compactPtr[level] = "" // wrap
		}
	}
	// Key range of the inputs, then the overlapping files of the target
	// level (older: appended after).
	lo, hi := inputs[0].smallest.key, inputs[0].largest.key
	for _, m := range inputs[1:] {
		if m.smallest.key < lo {
			lo = m.smallest.key
		}
		if m.largest.key > hi {
			hi = m.largest.key
		}
	}
	var targetInputs []tableMeta
	for _, m := range db.levels[target] {
		if m.overlaps(lo, hi) {
			targetInputs = append(targetInputs, m)
		}
	}
	all := append(append([]tableMeta(nil), inputs...), targetInputs...)

	// Tombstones can be dropped when nothing below the target level can
	// hold an older entry for these keys.
	dropTombstones := true
	for l := target + 1; l < len(db.levels); l++ {
		for _, m := range db.levels[l] {
			if m.overlaps(lo, hi) {
				dropTombstones = false
			}
		}
	}

	var total time.Duration
	var srcs []msource
	for _, m := range all {
		tr, cost, err := db.reader(m)
		total += cost
		if err != nil {
			return total, err
		}
		srcs = append(srcs, newTableSource(tr.iter(), ikey{}, false))
		db.compactionRead += m.size
	}
	merged := newMergedIter(srcs)

	var outputs []tableMeta
	var tw *tableWriter
	var outBytes int64
	finishOutput := func() error {
		if tw == nil {
			return nil
		}
		meta, cost, err := tw.finish()
		total += cost
		if err != nil {
			tw.abandon()
			return err
		}
		outputs = append(outputs, meta)
		db.compactionWrite += meta.size
		tw = nil
		outBytes = 0
		return nil
	}
	lastKey := ""
	pendingSplit := false
	for merged.valid() {
		e := merged.cur()
		merged.next()
		if dropTombstones && e.kind == kindTombstone {
			continue
		}
		// Output files may only split between distinct user keys: the
		// point-lookup path locates at most one table per level for a
		// key, so all versions of a key must live in the same table.
		if pendingSplit && e.ik.key != lastKey {
			if err := finishOutput(); err != nil {
				return total, err
			}
			pendingSplit = false
		}
		if tw == nil {
			w, err := newTableWriter(db.fs, db.nextNum, target)
			if err != nil {
				return total, err
			}
			db.nextNum++
			tw = w
		}
		if err := tw.add(e); err != nil {
			tw.abandon()
			return total, err
		}
		lastKey = e.ik.key
		outBytes += int64(len(e.ik.key) + len(e.value) + 15)
		if outBytes >= db.opts.TargetFileSize {
			pendingSplit = true
		}
	}
	total += merged.cost()
	if err := finishOutput(); err != nil {
		return total, err
	}

	// Install outputs, retire inputs.
	dead := make(map[uint64]bool, len(all))
	for _, m := range all {
		dead[m.num] = true
	}
	if level == 0 {
		db.levels[0] = nil
	} else {
		db.levels[level] = removeTables(db.levels[level], dead)
	}
	db.levels[target] = removeTables(db.levels[target], dead)
	db.levels[target] = append(db.levels[target], outputs...)
	sortTables(db.levels[target])
	for _, m := range all {
		delete(db.readers, m.num)
		db.cache.dropTable(m.num)
		cost, err := db.fs.Remove(tableName(m.num))
		total += cost
		if err != nil {
			return total, fmt.Errorf("lsm: removing input table: %w", err)
		}
	}
	db.compactions++
	cost, err := db.writeManifestLocked()
	total += cost
	return total, err
}

func removeTables(tables []tableMeta, dead map[uint64]bool) []tableMeta {
	out := tables[:0]
	for _, m := range tables {
		if !dead[m.num] {
			out = append(out, m)
		}
	}
	return append([]tableMeta(nil), out...)
}

func sortTables(tables []tableMeta) {
	for i := 1; i < len(tables); i++ {
		for j := i; j > 0 && ikeyLess(tables[j].smallest, tables[j-1].smallest); j-- {
			tables[j], tables[j-1] = tables[j-1], tables[j]
		}
	}
}
