// Package lsm implements the LevelDB-style log-structured merge-tree
// storage engine that the paper uses as its baseline ("LevelDB 1.9.0
// running with the default configurations"). It is a from-scratch,
// self-contained engine over the same simulated flash as QinDB:
//
//   - a skip-list memtable in front of a CRC-framed write-ahead log,
//   - immutable SSTables with data blocks, a sparse index and a bloom
//     filter,
//   - a leveled layout (L0..L6) with LevelDB's sizing rules: L0 compacts
//     by file count, deeper levels by total size with a 10x fan-out,
//   - background-free, inline leveled compaction (compaction work is
//     performed synchronously on the write path once thresholds trip,
//     which makes the write-amplification accounting deterministic).
//
// The engine exposes the same versioned-key surface as QinDB so the
// paper's experiments can run identical workloads against both. Keys are
// stored as key/version composites with version order descending.
//
// What matters for the reproduction is the I/O behaviour the paper
// measures: every memtable flush, every compaction read and write, and
// every stale-file delete flows through blockfs onto the simulated SSD,
// so software and hardware write amplification are both observable.
package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"directload/internal/blockfs"
)

// SSTable format:
//
//	data block 0 | data block 1 | ... | filter block | index block | footer
//
// Each data block holds consecutive entries:
//
//	keyLen uint16 | version uint64 | kind uint8 | valLen uint32 | key | value
//
// The index block maps the last composite key of each data block to its
// (offset, length). The footer locates index and filter blocks:
//
//	indexOff uint64 | indexLen uint32 | filterOff uint64 | filterLen uint32 |
//	entryCount uint32 | crc uint32 (over index+filter) | magic uint64
const (
	sstMagic        = 0x51494E44424C534D // "QINDBLSM"
	footerSize      = 8 + 4 + 8 + 4 + 4 + 4 + 8
	targetBlockSize = 4096
)

// Entry kinds.
const (
	kindValue     uint8 = 1
	kindTombstone uint8 = 2
	kindDedup     uint8 = 3 // value removed by Bifrost deduplication
)

// ErrSSTCorrupt reports a malformed SSTable.
var ErrSSTCorrupt = errors.New("lsm: corrupt sstable")

// ikey is the composite (user key, version) with version descending, so a
// seek to (k, MaxUint64) lands on the newest entry of k.
type ikey struct {
	key string
	ver uint64
}

func ikeyLess(a, b ikey) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.ver > b.ver // newer first
}

func ikeyCompare(a, b ikey) int {
	switch {
	case ikeyLess(a, b):
		return -1
	case ikeyLess(b, a):
		return 1
	default:
		return 0
	}
}

// entry is one key-value pair flowing through the engine.
type entry struct {
	ik    ikey
	kind  uint8
	value []byte
}

func encodeEntry(buf []byte, e entry) []byte {
	var hdr [15]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(len(e.ik.key)))
	binary.LittleEndian.PutUint64(hdr[2:], e.ik.ver)
	hdr[10] = e.kind
	binary.LittleEndian.PutUint32(hdr[11:], uint32(len(e.value)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, e.ik.key...)
	buf = append(buf, e.value...)
	return buf
}

func decodeEntry(buf []byte) (entry, int, error) {
	if len(buf) < 15 {
		return entry{}, 0, fmt.Errorf("%w: short entry header", ErrSSTCorrupt)
	}
	klen := int(binary.LittleEndian.Uint16(buf[0:]))
	ver := binary.LittleEndian.Uint64(buf[2:])
	kind := buf[10]
	vlen := int(binary.LittleEndian.Uint32(buf[11:]))
	total := 15 + klen + vlen
	if len(buf) < total {
		return entry{}, 0, fmt.Errorf("%w: short entry body", ErrSSTCorrupt)
	}
	e := entry{
		ik:   ikey{key: string(buf[15 : 15+klen]), ver: ver},
		kind: kind,
	}
	if vlen > 0 {
		e.value = append([]byte(nil), buf[15+klen:total]...)
	}
	return e, total, nil
}

// tableMeta describes one SSTable resident in a level.
type tableMeta struct {
	num      uint64 // file number
	level    int
	size     int64
	smallest ikey
	largest  ikey
	entries  int
}

func tableName(num uint64) string { return fmt.Sprintf("sst-%010d", num) }

// indexEntry locates one data block.
type indexEntry struct {
	last ikey // last composite key in the block
	off  uint64
	len  uint32
}

// tableWriter streams sorted entries into an SSTable file.
type tableWriter struct {
	fs      blockfs.FS
	w       blockfs.Writer
	meta    tableMeta
	block   []byte
	index   []indexEntry
	filter  *bloomBuilder
	lastIK  ikey
	started bool
	cost    time.Duration
	dataOff uint64
}

func newTableWriter(fs blockfs.FS, num uint64, level int) (*tableWriter, error) {
	w, err := fs.Create(tableName(num))
	if err != nil {
		return nil, err
	}
	return &tableWriter{
		fs:     fs,
		w:      w,
		meta:   tableMeta{num: num, level: level},
		filter: newBloomBuilder(10),
	}, nil
}

// add appends an entry; entries must arrive in strictly increasing
// composite-key order.
func (tw *tableWriter) add(e entry) error {
	if tw.started && !ikeyLess(tw.lastIK, e.ik) {
		return fmt.Errorf("lsm: out-of-order add: %v after %v", e.ik, tw.lastIK)
	}
	if !tw.started {
		tw.meta.smallest = e.ik
		tw.started = true
	}
	tw.lastIK = e.ik
	tw.meta.largest = e.ik
	tw.meta.entries++
	tw.filter.add(e.ik.key)
	tw.block = encodeEntry(tw.block, e)
	if len(tw.block) >= targetBlockSize {
		return tw.flushBlock()
	}
	return nil
}

func (tw *tableWriter) flushBlock() error {
	if len(tw.block) == 0 {
		return nil
	}
	off, cost, err := tw.w.Append(tw.block)
	tw.cost += cost
	if err != nil {
		return err
	}
	tw.index = append(tw.index, indexEntry{last: tw.lastIK, off: uint64(off), len: uint32(len(tw.block))})
	tw.dataOff = uint64(off) + uint64(len(tw.block))
	tw.block = tw.block[:0]
	return nil
}

// finish writes filter, index and footer, closes the file and returns the
// table metadata.
func (tw *tableWriter) finish() (tableMeta, time.Duration, error) {
	if err := tw.flushBlock(); err != nil {
		return tableMeta{}, tw.cost, err
	}
	filter := tw.filter.build()
	filterOff, cost, err := tw.w.Append(filter)
	tw.cost += cost
	if err != nil {
		return tableMeta{}, tw.cost, err
	}
	var index []byte
	for _, ie := range tw.index {
		var hdr [26]byte
		binary.LittleEndian.PutUint16(hdr[0:], uint16(len(ie.last.key)))
		binary.LittleEndian.PutUint64(hdr[2:], ie.last.ver)
		binary.LittleEndian.PutUint64(hdr[10:], ie.off)
		binary.LittleEndian.PutUint32(hdr[18:], ie.len)
		binary.LittleEndian.PutUint32(hdr[22:], 0) // reserved
		index = append(index, hdr[:]...)
		index = append(index, ie.last.key...)
	}
	indexOff, cost, err := tw.w.Append(index)
	tw.cost += cost
	if err != nil {
		return tableMeta{}, tw.cost, err
	}
	crc := crc32.ChecksumIEEE(index)
	crc = crc32.Update(crc, crc32.IEEETable, filter)
	footer := make([]byte, footerSize)
	binary.LittleEndian.PutUint64(footer[0:], uint64(indexOff))
	binary.LittleEndian.PutUint32(footer[8:], uint32(len(index)))
	binary.LittleEndian.PutUint64(footer[12:], uint64(filterOff))
	binary.LittleEndian.PutUint32(footer[20:], uint32(len(filter)))
	binary.LittleEndian.PutUint32(footer[24:], uint32(tw.meta.entries))
	binary.LittleEndian.PutUint32(footer[28:], crc)
	binary.LittleEndian.PutUint64(footer[32:], sstMagic)
	_, cost, err = tw.w.Append(footer)
	tw.cost += cost
	if err != nil {
		return tableMeta{}, tw.cost, err
	}
	cost, err = tw.w.Close()
	tw.cost += cost
	if err != nil {
		return tableMeta{}, tw.cost, err
	}
	size, err := tw.fs.Size(tableName(tw.meta.num))
	if err != nil {
		return tableMeta{}, tw.cost, err
	}
	tw.meta.size = size
	return tw.meta, tw.cost, nil
}

// abandon closes and removes a partially written table after an error.
// The write already failed; its error wins, so teardown errors are
// discarded deliberately.
func (tw *tableWriter) abandon() {
	_, _ = tw.w.Close()
	tw.fs.Remove(tableName(tw.meta.num))
}

// tableReader reads an SSTable: sparse index + bloom filter are loaded
// once; data blocks are fetched on demand (each fetch pays device time,
// which is where LevelDB's read tail latency comes from).
type tableReader struct {
	fs     blockfs.FS
	meta   tableMeta
	r      blockfs.Reader
	index  []indexEntry
	filter bloomFilter
	cache  *blockCache // shared LRU data-block cache (may be nil)
}

// openTable loads the table's index and filter into memory.
func openTable(fs blockfs.FS, meta tableMeta) (*tableReader, time.Duration, error) {
	r, err := fs.Open(tableName(meta.num))
	if err != nil {
		return nil, 0, err
	}
	size := r.Size()
	if size < footerSize {
		return nil, 0, fmt.Errorf("%w: too small", ErrSSTCorrupt)
	}
	var total time.Duration
	footer := make([]byte, footerSize)
	_, cost, err := r.ReadAt(footer, size-footerSize)
	total += cost
	if err != nil {
		return nil, total, err
	}
	if binary.LittleEndian.Uint64(footer[32:]) != sstMagic {
		return nil, total, fmt.Errorf("%w: bad magic", ErrSSTCorrupt)
	}
	indexOff := binary.LittleEndian.Uint64(footer[0:])
	indexLen := binary.LittleEndian.Uint32(footer[8:])
	filterOff := binary.LittleEndian.Uint64(footer[12:])
	filterLen := binary.LittleEndian.Uint32(footer[20:])
	wantCRC := binary.LittleEndian.Uint32(footer[28:])

	indexBuf := make([]byte, indexLen)
	if indexLen > 0 {
		_, cost, err = r.ReadAt(indexBuf, int64(indexOff))
		total += cost
		if err != nil {
			return nil, total, err
		}
	}
	filterBuf := make([]byte, filterLen)
	if filterLen > 0 {
		_, cost, err = r.ReadAt(filterBuf, int64(filterOff))
		total += cost
		if err != nil {
			return nil, total, err
		}
	}
	crc := crc32.ChecksumIEEE(indexBuf)
	crc = crc32.Update(crc, crc32.IEEETable, filterBuf)
	if crc != wantCRC {
		return nil, total, fmt.Errorf("%w: index/filter checksum", ErrSSTCorrupt)
	}

	tr := &tableReader{fs: fs, meta: meta, r: r, filter: bloomFilter(filterBuf)}
	for p := 0; p < len(indexBuf); {
		if p+26 > len(indexBuf) {
			return nil, total, fmt.Errorf("%w: short index entry", ErrSSTCorrupt)
		}
		klen := int(binary.LittleEndian.Uint16(indexBuf[p:]))
		ie := indexEntry{
			last: ikey{ver: binary.LittleEndian.Uint64(indexBuf[p+2:])},
			off:  binary.LittleEndian.Uint64(indexBuf[p+10:]),
			len:  binary.LittleEndian.Uint32(indexBuf[p+18:]),
		}
		p += 26
		if p+klen > len(indexBuf) {
			return nil, total, fmt.Errorf("%w: short index key", ErrSSTCorrupt)
		}
		ie.last.key = string(indexBuf[p : p+klen])
		p += klen
		tr.index = append(tr.index, ie)
	}
	return tr, total, nil
}

// get searches the table for the exact composite key.
func (tr *tableReader) get(ik ikey) ([]byte, uint8, bool, time.Duration, error) {
	if !tr.filter.mayContain(ik.key) {
		return nil, 0, false, 0, nil
	}
	// Binary search the sparse index for the first block whose last key
	// is >= ik.
	lo, hi := 0, len(tr.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if ikeyLess(tr.index[mid].last, ik) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(tr.index) {
		return nil, 0, false, 0, nil
	}
	block, cost, err := tr.readBlockCached(tr.index[lo])
	if err != nil {
		return nil, 0, false, cost, err
	}
	for p := 0; p < len(block); {
		e, n, err := decodeEntry(block[p:])
		if err != nil {
			return nil, 0, false, cost, err
		}
		p += n
		if c := ikeyCompare(e.ik, ik); c == 0 {
			return e.value, e.kind, true, cost, nil
		} else if c > 0 {
			break
		}
	}
	return nil, 0, false, cost, nil
}

func (tr *tableReader) readBlock(ie indexEntry) ([]byte, time.Duration, error) {
	buf := make([]byte, ie.len)
	_, cost, err := tr.r.ReadAt(buf, int64(ie.off))
	return buf, cost, err
}

// readBlockCached consults the shared block cache first; cached blocks
// cost no device time. Iteration (compaction, range scans) bypasses the
// cache to avoid evicting the hot read set, matching LevelDB.
func (tr *tableReader) readBlockCached(ie indexEntry) ([]byte, time.Duration, error) {
	key := cacheKey{table: tr.meta.num, off: ie.off}
	if data, ok := tr.cache.get(key); ok {
		return data, 0, nil
	}
	data, cost, err := tr.readBlock(ie)
	if err == nil {
		tr.cache.put(key, data)
	}
	return data, cost, err
}

// iter returns a sorted iterator over the whole table (used by
// compaction and range scans).
func (tr *tableReader) iter() *tableIter {
	return &tableIter{tr: tr, blockIdx: -1}
}

// tableIter iterates a table in composite-key order.
type tableIter struct {
	tr       *tableReader
	blockIdx int
	block    []byte
	pos      int
	cur      entry
	valid    bool
	cost     time.Duration
	err      error
}

func (it *tableIter) next() bool {
	for {
		if it.block != nil && it.pos < len(it.block) {
			e, n, err := decodeEntry(it.block[it.pos:])
			if err != nil {
				it.err = err
				it.valid = false
				return false
			}
			it.pos += n
			it.cur = e
			it.valid = true
			return true
		}
		it.blockIdx++
		if it.blockIdx >= len(it.tr.index) {
			it.valid = false
			return false
		}
		block, cost, err := it.tr.readBlock(it.tr.index[it.blockIdx])
		it.cost += cost
		if err != nil {
			it.err = err
			it.valid = false
			return false
		}
		it.block = block
		it.pos = 0
	}
}

// seek positions the iterator at the first entry >= ik.
func (it *tableIter) seek(ik ikey) bool {
	lo, hi := 0, len(it.tr.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if ikeyLess(it.tr.index[mid].last, ik) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(it.tr.index) {
		it.valid = false
		return false
	}
	it.blockIdx = lo - 1 // next() will load block lo
	it.block = nil
	it.pos = 0
	for it.next() {
		if !ikeyLess(it.cur.ik, ik) {
			return true
		}
	}
	return false
}

// bloomBuilder builds a simple split bloom filter with k derived hashes.
type bloomBuilder struct {
	keys       [][]byte
	bitsPerKey int
}

func newBloomBuilder(bitsPerKey int) *bloomBuilder {
	return &bloomBuilder{bitsPerKey: bitsPerKey}
}

func (b *bloomBuilder) add(key string) {
	b.keys = append(b.keys, []byte(key))
}

func (b *bloomBuilder) build() []byte {
	n := len(b.keys)
	bits := n * b.bitsPerKey
	if bits < 64 {
		bits = 64
	}
	nbytes := (bits + 7) / 8
	bits = nbytes * 8
	k := uint32(float64(b.bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	out := make([]byte, nbytes+1)
	out[nbytes] = byte(k)
	for _, key := range b.keys {
		h := bloomHash(key)
		delta := h>>17 | h<<15
		for i := uint32(0); i < k; i++ {
			pos := h % uint32(bits)
			out[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return out
}

type bloomFilter []byte

func (f bloomFilter) mayContain(key string) bool {
	if len(f) < 2 {
		return true // no filter: cannot exclude
	}
	k := uint32(f[len(f)-1])
	if k > 30 {
		return true
	}
	bits := uint32((len(f) - 1) * 8)
	h := bloomHash([]byte(key))
	delta := h>>17 | h<<15
	for i := uint32(0); i < k; i++ {
		pos := h % bits
		if f[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// bloomHash is LevelDB's 32-bit Murmur-like hash.
func bloomHash(data []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(data))*m
	for ; len(data) >= 4; data = data[4:] {
		h += binary.LittleEndian.Uint32(data)
		h *= m
		h ^= h >> 16
	}
	switch len(data) {
	case 3:
		h += uint32(data[2]) << 16
		fallthrough
	case 2:
		h += uint32(data[1]) << 8
		fallthrough
	case 1:
		h += uint32(data[0])
		h *= m
		h ^= h >> 24
	}
	return h
}

// overlaps reports whether the table's key range intersects [smallest,
// largest] of another range (by user key, version-insensitive).
func (m tableMeta) overlaps(lo, hi string) bool {
	return !(m.largest.key < lo || (hi != "" && m.smallest.key > hi))
}
