package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"directload/internal/indexer"
	"directload/internal/search"
)

// TestPublishSearchIndexAcrossDCs pushes a postings segment through the
// full update pipeline and opens a pinned snapshot in every data
// center: each DC must answer queries identically to a local snapshot
// over the same segment.
func TestPublishSearchIndexAcrossDCs(t *testing.T) {
	d := newSystem(t)

	cfg := indexer.DefaultCrawlConfig()
	cfg.Documents = 150
	cfg.VocabSize = 80
	cfg.DocTerms = 20
	cfg.Seed = 21
	c, err := indexer.NewCrawler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Crawl()
	seg, err := search.BuildSegment(search.FromDocuments(c.Corpus(), 5))
	if err != nil {
		t.Fatal(err)
	}

	rep, err := d.PublishSearchIndex(context.Background(), 1, "web", seg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Keys == 0 || rep.Version != 1 {
		t.Fatalf("report keys=%d version=%d", rep.Keys, rep.Version)
	}

	local := search.NewSnapshot("web", 1, seg)
	queries := [][]string{
		{"term00001"},
		{"term00002", "term00005"},
		{"term00000", "term00003", "term00001"},
	}
	want := make([][]byte, len(queries))
	for i, terms := range queries {
		res, _, err := local.Query(context.Background(), search.ClassAnd, terms, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = json.Marshal(res); err != nil {
			t.Fatal(err)
		}
	}

	for id := range d.DCs {
		sn, cost, err := d.OpenSearchSnapshot(id, "web", 1)
		if err != nil {
			t.Fatalf("dc %s: %v", id, err)
		}
		if cost <= 0 {
			t.Errorf("dc %s: snapshot open reported no storage cost", id)
		}
		if sn.Version != 1 || sn.Seg.DocCount() != seg.DocCount() {
			t.Fatalf("dc %s: snapshot %s", id, sn.Seg)
		}
		for i, terms := range queries {
			res, _, err := sn.Query(context.Background(), search.ClassAnd, terms, 0)
			if err != nil {
				t.Fatalf("dc %s AND %v: %v", id, terms, err)
			}
			got, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want[i]) {
				t.Fatalf("dc %s AND %v: results differ from local snapshot", id, terms)
			}
		}
	}

	if _, err := d.SearchStore("nosuch"); err == nil {
		t.Fatal("SearchStore accepted an unknown DC")
	}
	if _, _, err := d.OpenSearchSnapshot("nosuch", "web", 1); err == nil {
		t.Fatal("OpenSearchSnapshot accepted an unknown DC")
	}
	for id := range d.DCs {
		if _, _, err := d.OpenSearchSnapshot(id, "web", 99); err == nil {
			t.Fatal("unpublished version opened")
		}
		break
	}
	if _, err := d.PublishSearchIndex(context.Background(), 2, "bad name", seg); err == nil {
		t.Fatal("invalid index name published")
	}
}
