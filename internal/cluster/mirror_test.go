package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"

	"directload/internal/aof"
	"directload/internal/bifrost"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/metrics"
	"directload/internal/server"
	"directload/internal/ssd"
)

// startNode brings up one real TCP storage node for mirroring.
func startNode(t *testing.T) (string, *core.DB) {
	t.Helper()
	dev, err := ssd.NewDevice(ssd.DefaultConfig(256 << 20))
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF: aof.Config{FileSize: 4 << 20, GCThreshold: 0.25}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(db)
	s.SetLogf(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() {
		s.Close()
		db.Close()
	})
	return ln.Addr().String(), db
}

// TestMirrorPublish runs the full remote publish path: a simulated
// deployment with an attached mirror ships every published version to
// real TCP nodes in batched frames, and retention drops old versions
// there too.
func TestMirrorPublish(t *testing.T) {
	addr1, db1 := startNode(t)
	addr2, _ := startNode(t)

	reg := metrics.NewRegistry()
	cfg := DefaultConfig()
	cfg.RetainVersions = 2
	cfg.Metrics = reg
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	m, err := NewMirror([]string{addr1, addr2}, server.WithPoolSize(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	d.AttachMirror(m)

	entries := func(version int) []Entry {
		out := make([]Entry, 0, 50)
		for i := 0; i < 50; i++ {
			out = append(out, Entry{
				Key:    []byte(fmt.Sprintf("mk-%03d", i)),
				Value:  []byte(fmt.Sprintf("val-%d-%03d", version, i)),
				Stream: bifrost.StreamInverted,
			})
		}
		return out
	}
	for v := 1; v <= 3; v++ {
		if _, err := d.PublishVersion(uint64(v), entries(v)); err != nil {
			t.Fatalf("publish v%d: %v", v, err)
		}
	}

	// Every mirrored node answers the live versions over the wire.
	ctx := context.Background()
	for _, addr := range []string{addr1, addr2} {
		cl, err := server.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		val, err := cl.GetContext(ctx, []byte("mk-007"), 3)
		if err != nil || string(val) != "val-3-007" {
			t.Fatalf("%s: Get v3 = %q, %v", addr, val, err)
		}
		// Retention (cap 2) dropped v1 remotely as well: the drop
		// tombstones every record of the version.
		if _, err := cl.GetContext(ctx, []byte("mk-007"), 1); !errors.Is(err, core.ErrDeleted) {
			t.Fatalf("%s: v1 should be retired, got %v", addr, err)
		}
		cl.Close()
	}
	// Spot-check a node engine directly: the records really landed.
	if !db1.Has([]byte("mk-000"), 2) {
		t.Fatal("node 1 missing mirrored v2 record")
	}

	// Mirror metrics flowed into the cluster registry.
	snap := reg.Snapshot()
	if got := snap["cluster.mirror.versions"]; got != int64(3) {
		t.Fatalf("cluster.mirror.versions = %v", got)
	}
	if got := snap["cluster.mirror.ops"]; got != int64(3*50*2) {
		t.Fatalf("cluster.mirror.ops = %v, want %d", got, 3*50*2)
	}
}

// TestMirrorPublishStandalone exercises the mirror without an attached
// system — the cluster publish path a builder uses to push a version
// straight to remote nodes.
func TestMirrorPublishStandalone(t *testing.T) {
	addr, _ := startNode(t)
	m, err := NewMirror([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx := context.Background()
	var entries []Entry
	for i := 0; i < 2000; i++ {
		entries = append(entries, Entry{
			Key:   []byte(fmt.Sprintf("bulk-%04d", i)),
			Value: []byte("payload"),
		})
	}
	if err := m.PublishVersion(ctx, 9, entries); err != nil {
		t.Fatal(err)
	}
	cl, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ents, _, err := cl.RangeContext(ctx, []byte("bulk-"), []byte("bulk-~"), 2500)
	if err != nil || len(ents) != 2000 {
		t.Fatalf("Range = %d entries, %v", len(ents), err)
	}
	if err := m.DropVersion(ctx, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetContext(ctx, []byte("bulk-0000"), 9); !errors.Is(err, core.ErrDeleted) {
		t.Fatalf("dropped version Get = %v", err)
	}
}
