package cluster

import (
	"context"
	"fmt"
	"time"

	"directload/internal/bifrost"
	"directload/internal/netsim"
	"directload/internal/search"
)

// PublishSearchIndex ships a built postings segment through the full
// update pipeline — dedup, slicing, cross-region fan-out, per-DC apply
// — as one published version. The segment rides as its chunk + meta
// key/value pairs on the inverted stream (every DC serves queries), so
// after the report comes back every data center can open a search
// snapshot pinned to this version.
func (d *DirectLoad) PublishSearchIndex(ctx context.Context, version uint64, name string, seg *search.Segment) (UpdateReport, error) {
	if err := search.ValidateIndexName(name); err != nil {
		return UpdateReport{}, err
	}
	pairs := search.SegmentPairs(name, seg)
	entries := make([]Entry, len(pairs))
	for i, p := range pairs {
		entries[i] = Entry{Key: []byte(p.Key), Value: p.Value, Stream: bifrost.StreamInverted}
	}
	return d.PublishVersionContext(ctx, version, entries)
}

// dcEngine adapts one data center's Mint store to the search engine
// surface (exact-version gets; puts go straight to the store, outside
// the publish pipeline — tests and backfills only).
type dcEngine struct {
	dc *DataCenter
}

func (e dcEngine) Put(key string, version uint64, value []byte) error {
	_, err := e.dc.Store.Put([]byte(key), version, value, false)
	return err
}

func (e dcEngine) Get(key string, version uint64) ([]byte, error) {
	v, _, err := e.dc.Store.Get([]byte(key), version)
	return v, err
}

// SearchStore returns a search engine view over one data center, for
// opening snapshots against versions published with PublishSearchIndex.
func (d *DirectLoad) SearchStore(dcID netsim.NodeID) (search.Engine, error) {
	dc, ok := d.DCs[dcID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDC, dcID)
	}
	return dcEngine{dc: dc}, nil
}

// OpenSearchSnapshot loads the named index at an exact published
// version from one data center and pins a query view to it. The
// virtual storage read cost of loading every chunk is returned
// alongside — the paper's measure of what a snapshot open costs the
// serving node.
func (d *DirectLoad) OpenSearchSnapshot(dcID netsim.NodeID, name string, version uint64) (*search.Snapshot, time.Duration, error) {
	dc, ok := d.DCs[dcID]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnknownDC, dcID)
	}
	var cost time.Duration
	eng := costEngine{dc: dc, cost: &cost}
	seg, _, err := search.LoadSegment(eng, name, version)
	if err != nil {
		return nil, cost, err
	}
	sn := search.NewSnapshot(name, version, seg)
	sn.SetMetrics(d.reg)
	return sn, cost, nil
}

// costEngine is dcEngine plus device-time accounting for Gets.
type costEngine struct {
	dc   *DataCenter
	cost *time.Duration
}

func (e costEngine) Put(key string, version uint64, value []byte) error {
	_, err := e.dc.Store.Put([]byte(key), version, value, false)
	return err
}

func (e costEngine) Get(key string, version uint64) ([]byte, error) {
	v, d, err := e.dc.Store.Get([]byte(key), version)
	*e.cost += d
	return v, err
}
