package cluster

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"

	"directload/internal/aof"
	"directload/internal/bifrost"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/metrics"
	"directload/internal/ops"
	"directload/internal/server"
	"directload/internal/ssd"
)

// startTracedNode brings up one real TCP storage node wired into the
// shared registry so its handler spans land in the same tracer as the
// publisher's.
func startTracedNode(t *testing.T, reg *metrics.Registry) string {
	t.Helper()
	dev, err := ssd.NewDevice(ssd.DefaultConfig(256 << 20))
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF: aof.Config{FileSize: 4 << 20, GCThreshold: 0.25}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(db)
	s.SetLogf(nil)
	s.SetMetrics(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() {
		s.Close()
		db.Close()
	})
	return ln.Addr().String()
}

// TestMirroredPublishOneTrace is the end-to-end tracing acceptance run:
// a mirrored publish over real TCP must produce ONE trace that covers
// the cluster publish, the Bifrost dedup/ship phases, the per-node
// batch flushes, the server-side batch handlers, and each engine write
// — and /debug/trace must render it.
func TestMirroredPublishOneTrace(t *testing.T) {
	reg := metrics.NewRegistry()
	addr1 := startTracedNode(t, reg)
	addr2 := startTracedNode(t, reg)

	cfg := DefaultConfig()
	cfg.Metrics = reg
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	m, err := NewMirror([]string{addr1, addr2},
		server.WithPoolSize(2), server.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	d.AttachMirror(m)

	const n = 40
	entries := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		entries = append(entries, Entry{
			Key:    []byte(fmt.Sprintf("tk-%03d", i)),
			Value:  []byte(fmt.Sprintf("tv-%03d", i)),
			Stream: bifrost.StreamInverted,
		})
	}
	ctx, end := reg.StartSpan(context.Background(), "test.publish")
	sc, ok := metrics.SpanFromContext(ctx)
	if !ok {
		t.Fatal("no span in the publish context")
	}
	if _, err := d.PublishVersionContext(ctx, 1, entries); err != nil {
		t.Fatalf("publish: %v", err)
	}
	end(nil)

	// One trace covers the whole fan-out.
	trace := reg.Tracer().Trace(sc.TraceID)
	counts := make(map[string]int)
	for _, rec := range trace {
		if rec.TraceID != sc.TraceID {
			t.Fatalf("span %q escaped into trace %016x", rec.Name, rec.TraceID)
		}
		counts[rec.Name]++
	}
	for name, want := range map[string]int{
		"cluster.publish":        1,
		"bifrost.dedup":          1,
		"bifrost.ship":           1,
		"cluster.mirror.publish": 1,
		"cluster.mirror.node":    2, // one per mirrored node
	} {
		if counts[name] != want {
			t.Fatalf("trace has %d %q spans, want %d (all: %v)", counts[name], name, want, counts)
		}
	}
	// The wire hop: at least one flush per node, each answered by a
	// server-side batch handler, each engine write its own sub-op span.
	if counts["client.batch.flush"] < 2 {
		t.Fatalf("trace has %d client.batch.flush spans, want >= 2 (all: %v)",
			counts["client.batch.flush"], counts)
	}
	if counts["server.req.batch"] < 2 {
		t.Fatalf("trace has %d server.req.batch spans, want >= 2 (all: %v)",
			counts["server.req.batch"], counts)
	}
	if counts["server.batch.put"] != n*2 {
		t.Fatalf("trace has %d server.batch.put spans, want %d (all: %v)",
			counts["server.batch.put"], n*2, counts)
	}

	// And the operator endpoint renders the same timeline.
	srv := httptest.NewServer(ops.NewMux(ops.Config{Registry: reg}))
	defer srv.Close()
	resp, err := srv.Client().Get(fmt.Sprintf("%s/debug/trace?id=%016x", srv.URL, sc.TraceID))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/trace = %d: %s", resp.StatusCode, body)
	}
	for _, want := range []string{"cluster.publish", "bifrost.ship", "cluster.mirror.node",
		"server.req.batch", "server.batch.put"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/debug/trace output missing %q:\n%s", want, body)
		}
	}
}
