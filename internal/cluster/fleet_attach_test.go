package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"

	"directload/internal/aof"
	"directload/internal/bifrost"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/fleet"
	"directload/internal/server"
	"directload/internal/ssd"
)

// startStoppableNode is startNode with the server exposed, for tests
// that take nodes down mid-run.
func startStoppableNode(t *testing.T) (string, *server.Server, *core.DB) {
	t.Helper()
	dev, err := ssd.NewDevice(ssd.DefaultConfig(256 << 20))
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF: aof.Config{FileSize: 4 << 20, GCThreshold: 0.25}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(db)
	s.SetLogf(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	for s.Addr() == nil {
	}
	t.Cleanup(func() {
		s.Close()
		db.Close()
	})
	return ln.Addr().String(), s, db
}

// TestMirrorPublishMultiError: with two of two mirror nodes down, the
// publish error must name both, not just the first to fail.
func TestMirrorPublishMultiError(t *testing.T) {
	addr1, s1, _ := startStoppableNode(t)
	addr2, s2, _ := startStoppableNode(t)
	m, err := NewMirror([]string{addr1, addr2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	s1.Close()
	s2.Close()
	err = m.PublishVersion(context.Background(), 1, []Entry{
		{Key: []byte("k"), Value: []byte("v")},
	})
	if err == nil {
		t.Fatal("publish with every node down should fail")
	}
	if msg := err.Error(); !strings.Contains(msg, addr1) || !strings.Contains(msg, addr2) {
		t.Fatalf("multi-error does not name both nodes: %v", msg)
	}
	if err := m.DropVersion(context.Background(), 1); err == nil {
		t.Fatal("drop with every node down should fail")
	} else if msg := err.Error(); !strings.Contains(msg, addr1) || !strings.Contains(msg, addr2) {
		t.Fatalf("drop multi-error does not name both nodes: %v", msg)
	}
}

// TestFleetAttachPublishGet runs the orchestrator with an attached
// fleet: every published version quorum-writes onto the sharded nodes,
// FleetGet serves the newest version via hedged reads, and retention
// drops retired versions fleet-side.
func TestFleetAttachPublishGet(t *testing.T) {
	addr1, _, db1 := startStoppableNode(t)
	addr2, _, _ := startStoppableNode(t)
	addr3, _, _ := startStoppableNode(t)

	cfg := DefaultConfig()
	cfg.RetainVersions = 2
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	f, err := fleet.New(fleet.Config{
		Groups:        [][]string{{addr1, addr2, addr3}},
		Replicas:      3,
		WriteQuorum:   2,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d.AttachFleet(f)

	entries := func(version int) []Entry {
		out := make([]Entry, 0, 40)
		for i := 0; i < 40; i++ {
			out = append(out, Entry{
				Key:    []byte(fmt.Sprintf("fk-%03d", i)),
				Value:  []byte(fmt.Sprintf("val-%d-%03d", version, i)),
				Stream: bifrost.StreamInverted,
			})
		}
		return out
	}
	ctx := context.Background()
	if _, err := d.FleetGet(ctx, []byte("fk-000")); err == nil {
		t.Fatal("FleetGet before any publish should fail")
	}
	for v := 1; v <= 3; v++ {
		if _, err := d.PublishVersion(uint64(v), entries(v)); err != nil {
			t.Fatalf("publish v%d: %v", v, err)
		}
	}

	// FleetGet reads the newest version through the router.
	val, err := d.FleetGet(ctx, []byte("fk-011"))
	if err != nil || string(val) != "val-3-011" {
		t.Fatalf("FleetGet = %q, %v", val, err)
	}
	// With R = group size, every node holds the records.
	if !db1.Has([]byte("fk-000"), 3) {
		t.Fatal("fleet node missing v3 record")
	}
	// Retention (cap 2) dropped v1 on the fleet too.
	if _, err := f.Get(ctx, []byte("fk-000"), 1); !errors.Is(err, core.ErrDeleted) {
		t.Fatalf("v1 should be retired fleet-side, got %v", err)
	}
}

// TestFleetGetDetached covers the no-fleet error path.
func TestFleetGetDetached(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.FleetGet(context.Background(), []byte("k")); err == nil {
		t.Fatal("FleetGet without a fleet should fail")
	}
}
