// Package cluster assembles the complete DirectLoad system: the builder
// data center feeds versioned index data through Bifrost deduplication
// and slicing, the shipper moves slices across the simulated national
// fabric, and each regional data center applies arriving records into its
// Mint store (QinDB nodes). On top sits the version lifecycle of paper
// §1.2/§3: at most four retained versions, gray release on a single data
// center, cross-region consistency audit, and rollback.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"directload/internal/bifrost"
	"directload/internal/fleet"
	"directload/internal/metrics"
	"directload/internal/mint"
	"directload/internal/netsim"
)

// Orchestration errors.
var (
	ErrUnknownDC      = errors.New("cluster: unknown data center")
	ErrVersionMissing = errors.New("cluster: version not prepared")
	ErrNotGray        = errors.New("cluster: version not in gray release")
)

// Config assembles a DirectLoad deployment.
type Config struct {
	Topology bifrost.TopologyConfig
	Mint     mint.Config
	// SliceLimit bounds slice size in bytes (paper ships GB-scale slices
	// hourly; simulations use smaller ones).
	SliceLimit int64
	// RetainVersions caps stored versions per node (paper: 4).
	RetainVersions int
	// DedupEnabled switches Bifrost deduplication (off = the "without
	// DirectLoad" baseline of Fig. 10a).
	DedupEnabled bool
	// CorruptProb injects per-hop corruption (Fig. 10b failure model).
	CorruptProb float64
	// Seed drives failure injection.
	Seed int64
	// Metrics, when non-nil, receives the orchestrator's `cluster.*`
	// metrics and is propagated to the shipper, the deduper and (unless
	// already set) the Mint clusters. Nil keeps all paths allocation-free.
	Metrics *metrics.Registry
	// Events, when non-nil, receives version.publish and version.retire
	// lifecycle events.
	Events *metrics.EventLog
	// CycleSLO, when non-nil, is fed one event per successful publish:
	// good when the cycle's EffectiveTime stayed within CycleTarget.
	CycleSLO *metrics.SLO
	// CycleTarget is the publish-cycle deadline CycleSLO judges against
	// (default 1h — the paper's hourly full-index update cadence).
	CycleTarget time.Duration
}

// DefaultConfig returns a small, structurally faithful deployment.
func DefaultConfig() Config {
	top := bifrost.DefaultTopologyConfig()
	top.RelaysPerRegion = 6
	m := mint.DefaultConfig()
	m.Groups = 2
	m.NodesPerGroup = 3
	m.NodeCapacity = 256 << 20
	return Config{
		Topology:       top,
		Mint:           m,
		SliceLimit:     4 << 20,
		RetainVersions: 4,
		DedupEnabled:   true,
		Seed:           1,
	}
}

// VersionState tracks a version's lifecycle at one data center.
type VersionState int

// Version lifecycle states.
const (
	VersionPending VersionState = iota // slices still arriving
	VersionReady                       // fully loaded, not serving
	VersionActive                      // serving queries
)

// DataCenter is one regional deployment: a Mint cluster plus version
// bookkeeping.
type DataCenter struct {
	ID     netsim.NodeID
	Region string
	Store  *mint.Cluster
	// StoresSummary: the paper keeps summary indices in only three of
	// the six data centers.
	StoresSummary bool

	state    map[uint64]VersionState
	expected map[uint64]int // slices expected for the version
	arrived  map[uint64]int
	active   uint64
	applyErr error
}

// State returns the lifecycle state of a version at this DC.
func (dc *DataCenter) State(version uint64) VersionState { return dc.state[version] }

// ActiveVersion returns the serving version (0 = none).
func (dc *DataCenter) ActiveVersion() uint64 { return dc.active }

// DirectLoad is the whole system.
type DirectLoad struct {
	cfg     Config
	Top     *bifrost.Topology
	Shipper *bifrost.Shipper
	Deduper *bifrost.Deduper
	DCs     map[netsim.NodeID]*DataCenter

	versions []uint64 // published versions in order
	mirror   *Mirror
	fleet    *fleet.Fleet
	reg      *metrics.Registry
	met      orchestratorMetrics
}

// AttachMirror makes every published version also fan out to the
// mirror's remote TCP nodes (batched, see Mirror); retention drops
// versions there too. Pass nil to detach. The caller keeps ownership of
// the mirror and closes it after the system shuts down.
func (d *DirectLoad) AttachMirror(m *Mirror) {
	d.mirror = m
	if m != nil && m.reg == nil && d.reg != nil {
		m.SetMetrics(d.reg)
	}
}

// AttachFleet routes every published version through the fleet's
// sharded quorum writes as well, and retention drops versions there.
// Unlike the mirror (every node gets every entry), the fleet places
// each key on its rendezvous-chosen replica set, so the remote
// deployment scales past one node's capacity. Pass nil to detach; the
// caller keeps ownership of the fleet and closes it after shutdown.
func (d *DirectLoad) AttachFleet(f *fleet.Fleet) {
	d.fleet = f
}

// FleetGet serves a read from the attached fleet's hedged parallel-read
// path against the newest retained version — the networked counterpart
// of Get against a simulated DC.
func (d *DirectLoad) FleetGet(ctx context.Context, key []byte) ([]byte, error) {
	if d.fleet == nil {
		return nil, errors.New("cluster: no fleet attached")
	}
	if len(d.versions) == 0 {
		return nil, fmt.Errorf("%w: nothing published", ErrVersionMissing)
	}
	return d.fleet.Get(ctx, key, d.versions[len(d.versions)-1])
}

// orchestratorMetrics holds the cluster-level registry handles; all nil
// without a registry, making every record site a guarded no-op.
type orchestratorMetrics struct {
	published     *metrics.Counter
	slicesApplied *metrics.Counter
	lateDelivs    *metrics.Counter
	replLagUs     *metrics.Gauge
}

func newOrchestratorMetrics(reg *metrics.Registry) orchestratorMetrics {
	return orchestratorMetrics{
		published:     reg.Counter("cluster.versions.published"),
		slicesApplied: reg.Counter("cluster.slices.applied"),
		lateDelivs:    reg.Counter("cluster.deliveries.late"),
		replLagUs:     reg.Gauge("cluster.replication.lag_us"),
	}
}

// New builds the fabric and one Mint cluster per data center.
func New(cfg Config) (*DirectLoad, error) {
	if cfg.SliceLimit <= 0 {
		cfg.SliceLimit = 4 << 20
	}
	if cfg.RetainVersions <= 0 {
		cfg.RetainVersions = 4
	}
	if cfg.CycleTarget <= 0 {
		cfg.CycleTarget = time.Hour
	}
	if cfg.Mint.Metrics == nil {
		cfg.Mint.Metrics = cfg.Metrics
	}
	top, err := bifrost.BuildTopology(cfg.Topology)
	if err != nil {
		return nil, err
	}
	d := &DirectLoad{
		cfg:     cfg,
		Top:     top,
		Shipper: bifrost.NewShipper(top, cfg.Seed),
		Deduper: bifrost.NewDeduper(),
		DCs:     make(map[netsim.NodeID]*DataCenter),
		reg:     cfg.Metrics,
		met:     newOrchestratorMetrics(cfg.Metrics),
	}
	d.Shipper.CorruptProb = cfg.CorruptProb
	if cfg.Metrics != nil {
		d.Shipper.SetMetrics(cfg.Metrics)
		d.Deduper.SetMetrics(cfg.Metrics)
	}
	for _, region := range top.Regions {
		for i, id := range region.DCs {
			store, err := mint.New(cfg.Mint)
			if err != nil {
				return nil, err
			}
			d.DCs[id] = &DataCenter{
				ID:            id,
				Region:        region.Name,
				Store:         store,
				StoresSummary: i == 0, // first DC of each region
				state:         make(map[uint64]VersionState),
				expected:      make(map[uint64]int),
				arrived:       make(map[uint64]int),
			}
		}
	}
	return d, nil
}

// Close shuts every data center down and reports every failure.
func (d *DirectLoad) Close() error {
	var errs []error
	for _, dc := range d.DCs {
		if err := dc.Store.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Entry is one index record to publish.
type Entry struct {
	Key    []byte
	Value  []byte
	Stream bifrost.StreamType
}

// UpdateReport summarizes one version's publication — the raw material of
// Figs. 9 and 10.
type UpdateReport struct {
	Version    uint64
	UpdateTime time.Duration // first record generated -> all DCs ready
	Dedup      bifrost.DedupStats
	Keys       int
	// PayloadBytes is the pre-dedup volume; WireBytes what was actually
	// offered to the network (post-dedup).
	PayloadBytes int64
	WireBytes    int64
	MissRatio    float64
	StorageCost  time.Duration // total device time applying records
	// StorageByDC is per-data-center apply time; the slowest DC is the
	// storage-side critical path of the update.
	StorageByDC map[netsim.NodeID]time.Duration
	// ReadyAt records when (virtual time) each DC finished loading the
	// version; the max-min spread is the cross-DC replication lag.
	ReadyAt map[netsim.NodeID]time.Duration
}

// EffectiveTime is the update's critical path: network delivery overlaps
// storage apply, so the version is usable at max(network, slowest DC).
func (r UpdateReport) EffectiveTime() time.Duration {
	worst := r.UpdateTime
	for _, d := range r.StorageByDC {
		if d > worst {
			worst = d
		}
	}
	return worst
}

// dcsForStream returns the target DCs of a region for a stream.
func (d *DirectLoad) dcsForStream(region bifrost.Region, stream bifrost.StreamType) []netsim.NodeID {
	if stream == bifrost.StreamInverted {
		return region.DCs
	}
	var out []netsim.NodeID
	for _, id := range region.DCs {
		if d.DCs[id].StoresSummary {
			out = append(out, id)
		}
	}
	return out
}

// PublishVersion runs the full update pipeline for one version:
// deduplicate, slice, ship to every data center, apply on arrival, and
// wait (in virtual time) until every DC has loaded the version. The
// retention policy then drops versions beyond the configured limit.
func (d *DirectLoad) PublishVersion(version uint64, entries []Entry) (UpdateReport, error) {
	return d.PublishVersionContext(context.Background(), version, entries)
}

// PublishVersionContext is PublishVersion under a caller context. The
// whole publish cycle runs as one trace (rooted here when ctx carries
// no span): the dedup pass, the simulated fan-out (with one
// virtual-duration span per slice delivery), and the remote mirror
// publish — across the wire into each node's handler spans — all
// nest under one "cluster.publish" root, which is what /debug/trace
// renders as the version's timeline.
func (d *DirectLoad) PublishVersionContext(ctx context.Context, version uint64, entries []Entry) (rep UpdateReport, err error) {
	ctx, end := d.reg.StartSpanNote(ctx, "cluster.publish",
		fmt.Sprintf("v%d keys=%d", version, len(entries)))
	defer func() { end(err) }()
	start := d.Top.Net.Now()
	rep = UpdateReport{
		Version:     version,
		Keys:        len(entries),
		StorageByDC: make(map[netsim.NodeID]time.Duration),
		ReadyAt:     make(map[netsim.NodeID]time.Duration),
	}

	// Bifrost: dedup and pack per stream.
	dedupStart := time.Now()
	builders := map[bifrost.StreamType]*bifrost.SliceBuilder{
		bifrost.StreamSummary:  bifrost.NewSliceBuilder(version, bifrost.StreamSummary, d.cfg.SliceLimit),
		bifrost.StreamInverted: bifrost.NewSliceBuilder(version, bifrost.StreamInverted, d.cfg.SliceLimit),
	}
	for _, e := range entries {
		rep.PayloadBytes += int64(len(e.Key) + len(e.Value))
		rec := bifrost.Record{Key: e.Key, Version: version, Value: e.Value}
		if d.cfg.DedupEnabled && d.Deduper.Process(e.Key, e.Value) {
			rec.Dedup = true
			rec.Value = nil
		} else if !d.cfg.DedupEnabled {
			// Keep the signature cache warm so enabling dedup later
			// compares against the true previous version.
			d.Deduper.Process(e.Key, e.Value)
		}
		rep.WireBytes += int64(len(e.Key) + len(rec.Value))
		builders[e.Stream].Add(rec)
	}
	slices := map[bifrost.StreamType][]*bifrost.Slice{}
	for st, b := range builders {
		slices[st] = b.Finish()
	}
	// The dedup pass's note reports the wire savings, which only exist
	// once the loop above finished — so the span is assembled by hand.
	if sc, ok := metrics.SpanFromContext(ctx); ok {
		d.reg.Tracer().RecordSpan(metrics.SpanRecord{
			Name: "bifrost.dedup", Start: dedupStart, Dur: time.Since(dedupStart),
			TraceID: sc.TraceID, SpanID: metrics.NewSpanID(), ParentID: sc.SpanID,
			Note: fmt.Sprintf("elided=%dB", rep.PayloadBytes-rep.WireBytes),
		})
	}

	// Register expectations, then ship.
	for _, dc := range d.DCs {
		dc.state[version] = VersionPending
		dc.expected[version] = 0
		dc.arrived[version] = 0
	}
	streamOrder := []bifrost.StreamType{bifrost.StreamSummary, bifrost.StreamInverted}
	for _, region := range d.Top.Regions {
		for _, st := range streamOrder {
			for _, id := range d.dcsForStream(region, st) {
				d.DCs[id].expected[version] += len(slices[st])
			}
		}
	}
	// A DC that stores none of this version's streams is trivially ready
	// (e.g. a summary-only publish reaches three of the six DCs).
	for _, dc := range d.DCs {
		if dc.expected[version] == 0 {
			dc.state[version] = VersionReady
			rep.ReadyAt[dc.ID] = start
		}
	}
	// The ship phase spans enqueueing every slice plus the virtual-time
	// drain; while it is bound, the shipper records one virtual-duration
	// span per slice delivery under it.
	shipCtx, endShip := d.reg.ContinueSpan(ctx, "bifrost.ship")
	if sc, ok := metrics.SpanFromContext(shipCtx); ok {
		d.Shipper.BindTrace(sc, d.reg.Tracer())
		defer d.Shipper.BindTrace(metrics.SpanContext{}, nil)
	}
	for _, region := range d.Top.Regions {
		for _, st := range streamOrder {
			targets := d.dcsForStream(region, st)
			if len(targets) == 0 {
				continue
			}
			for _, slice := range slices[st] {
				slice := slice
				err := d.Shipper.ShipToRegionDCs(slice, region, targets, func(del bifrost.Delivery) {
					d.applySlice(del, version, &rep)
				})
				if err != nil {
					endShip(err)
					return rep, fmt.Errorf("cluster: shipping v%d: %w", version, err)
				}
			}
		}
	}
	// Drain the network (virtual time).
	d.Top.Net.Run(0)
	endShip(nil)
	for _, dc := range d.DCs {
		if dc.applyErr != nil {
			return rep, dc.applyErr
		}
		if dc.state[version] != VersionReady {
			return rep, fmt.Errorf("cluster: %s stuck at %d/%d slices of v%d",
				dc.ID, dc.arrived[version], dc.expected[version], version)
		}
	}
	// Remote publish path: fan the version out to mirrored TCP nodes in
	// batched frames before declaring it published.
	if d.mirror != nil {
		if err := d.mirror.PublishVersion(ctx, version, entries); err != nil {
			return rep, err
		}
	}
	// Fleet path: quorum-write the version onto its sharded replica
	// sets. A quorum publish tolerates minority replica outages, so this
	// can succeed where the all-nodes mirror would fail.
	if d.fleet != nil {
		fe := make([]fleet.Entry, len(entries))
		for i, e := range entries {
			fe[i] = fleet.Entry{Key: e.Key, Value: e.Value}
		}
		if err := d.fleet.PublishVersion(ctx, version, fe); err != nil {
			return rep, fmt.Errorf("cluster: fleet publish v%d: %w", version, err)
		}
	}
	d.versions = append(d.versions, version)
	rep.UpdateTime = d.Top.Net.Now() - start
	rep.Dedup = d.Deduper.AdvanceVersion()
	rep.MissRatio = d.Shipper.MissRatio()
	d.met.published.Inc()
	eff := rep.EffectiveTime()
	d.cfg.Events.Emitf(metrics.EventVersionPublish, "", version,
		"keys=%d effective=%s", len(entries), eff)
	d.cfg.CycleSLO.Record(eff <= d.cfg.CycleTarget)
	if lag := rep.replicationLag(); lag >= 0 {
		d.met.replLagUs.Set(int64(lag / time.Microsecond))
	}

	// Retention: drop the oldest versions beyond the cap, cluster-wide.
	for len(d.versions) > d.cfg.RetainVersions {
		old := d.versions[0]
		d.versions = d.versions[1:]
		if d.mirror != nil {
			if err := d.mirror.DropVersion(ctx, old); err != nil {
				return rep, err
			}
		}
		if d.fleet != nil {
			if err := d.fleet.DropVersion(ctx, old); err != nil {
				return rep, fmt.Errorf("cluster: fleet drop v%d: %w", old, err)
			}
		}
		for _, dc := range d.DCs {
			if _, _, err := dc.Store.DropVersion(old); err != nil {
				return rep, err
			}
			delete(dc.state, old)
			delete(dc.expected, old)
			delete(dc.arrived, old)
			if dc.active == old {
				dc.active = 0
			}
		}
		d.cfg.Events.Emit(metrics.EventVersionRetire, "", old, "retention")
	}
	return rep, nil
}

// replicationLag is the spread between the first and last DC to finish
// loading the version, or -1 when fewer than two DCs took part.
func (r UpdateReport) replicationLag() time.Duration {
	if len(r.ReadyAt) < 2 {
		return -1
	}
	first := true
	var min, max time.Duration
	for _, t := range r.ReadyAt {
		if first {
			min, max = t, t
			first = false
			continue
		}
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	return max - min
}

// applySlice loads one delivered slice into the receiving DC's store.
func (d *DirectLoad) applySlice(del bifrost.Delivery, version uint64, rep *UpdateReport) {
	dc, ok := d.DCs[del.DC]
	if !ok {
		return
	}
	for _, rec := range del.Slice.Records {
		cost, err := dc.Store.Put(rec.Key, rec.Version, rec.Value, rec.Dedup)
		rep.StorageCost += cost
		rep.StorageByDC[dc.ID] += cost
		if err != nil && dc.applyErr == nil {
			dc.applyErr = fmt.Errorf("cluster: applying at %s: %w", dc.ID, err)
		}
	}
	d.met.slicesApplied.Inc()
	if del.Late(d.Shipper.Deadline) {
		d.met.lateDelivs.Inc()
	}
	dc.arrived[version]++
	if dc.arrived[version] >= dc.expected[version] {
		dc.state[version] = VersionReady
		rep.ReadyAt[dc.ID] = del.Arrived
	}
}

// Versions returns the retained version numbers, oldest first.
func (d *DirectLoad) Versions() []uint64 {
	return append([]uint64(nil), d.versions...)
}

// --- gray release, activation, rollback -----------------------------------

// GrayRelease activates the version at exactly one data center (paper §3:
// "a gray release that allows version advance at only one out of the six
// data centers"). The other DCs keep serving their current version.
func (d *DirectLoad) GrayRelease(version uint64, dcID netsim.NodeID) error {
	dc, ok := d.DCs[dcID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDC, dcID)
	}
	if dc.state[version] != VersionReady {
		return fmt.Errorf("%w: v%d at %s", ErrVersionMissing, version, dcID)
	}
	dc.state[version] = VersionActive
	if dc.active != 0 && dc.active != version {
		dc.state[dc.active] = VersionReady
	}
	dc.active = version
	return nil
}

// ActivateEverywhere promotes the version on every data center (the gray
// release validated fine).
func (d *DirectLoad) ActivateEverywhere(version uint64) error {
	for _, dc := range d.DCs {
		st := dc.state[version]
		if st != VersionReady && st != VersionActive {
			return fmt.Errorf("%w: v%d at %s", ErrVersionMissing, version, dc.ID)
		}
	}
	for _, dc := range d.DCs {
		if dc.active != 0 && dc.active != version {
			dc.state[dc.active] = VersionReady
		}
		dc.state[version] = VersionActive
		dc.active = version
	}
	return nil
}

// Rollback reverts a gray release: the gray DC returns to the previous
// version ("Rolling back to the last version is the last resort").
func (d *DirectLoad) Rollback(version uint64, to uint64) error {
	rolled := false
	for _, dc := range d.DCs {
		if dc.active == version {
			if dc.state[to] != VersionReady && dc.state[to] != VersionActive {
				return fmt.Errorf("%w: rollback target v%d at %s", ErrVersionMissing, to, dc.ID)
			}
			dc.state[version] = VersionReady
			dc.state[to] = VersionActive
			dc.active = to
			rolled = true
		}
	}
	if !rolled {
		return fmt.Errorf("%w: v%d", ErrNotGray, version)
	}
	return nil
}

// Get serves a read at one data center against its active version,
// falling back to older versions via the engine's traceback. Reads
// against a DC with no active version fail.
func (d *DirectLoad) Get(dcID netsim.NodeID, key []byte) ([]byte, time.Duration, error) {
	dc, ok := d.DCs[dcID]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnknownDC, dcID)
	}
	if dc.active == 0 {
		return nil, 0, fmt.Errorf("%w: no active version at %s", ErrVersionMissing, dcID)
	}
	return dc.Store.Get(key, dc.active)
}

// AuditConsistency samples keys and compares the answers of every pair
// of data centers, returning the fraction of (key, DC-pair) comparisons
// that disagree — the paper's cross-region search inconsistency metric
// (measured under 0.1% during gray release).
func (d *DirectLoad) AuditConsistency(keys [][]byte) float64 {
	var ids []netsim.NodeID
	for id := range d.DCs {
		ids = append(ids, id)
	}
	// Deterministic order.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	comparisons, disagreements := 0, 0
	for _, key := range keys {
		var answers []string
		for _, id := range ids {
			val, _, err := d.Get(id, key)
			if err != nil {
				continue
			}
			answers = append(answers, string(val))
		}
		for i := 1; i < len(answers); i++ {
			comparisons++
			if answers[i] != answers[0] {
				disagreements++
			}
		}
	}
	if comparisons == 0 {
		return 0
	}
	return float64(disagreements) / float64(comparisons)
}
