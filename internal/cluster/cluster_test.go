package cluster

import (
	"errors"

	"testing"
	"time"

	"directload/internal/aof"
	"directload/internal/bifrost"
	"directload/internal/core"
	"directload/internal/mint"
	"directload/internal/workload"
)

func testConfig() Config {
	return Config{
		Topology: bifrost.TopologyConfig{
			RegionNames:       []string{"north", "east", "south"},
			RelaysPerRegion:   3,
			DCsPerRegion:      2,
			BuilderUplink:     50e6,
			BackboneBandwidth: 50e6,
			RegionalBandwidth: 50e6,
			ReserveStreams:    true,
			MonitorInterval:   time.Second,
		},
		Mint: mint.Config{
			Groups:        2,
			NodesPerGroup: 3,
			Replicas:      3,
			NodeCapacity:  128 << 20,
			Engine: core.Options{
				AOF:  aof.Config{FileSize: 1 << 20, GCThreshold: 0.25},
				Seed: 1,
			},
		},
		SliceLimit:     256 << 10,
		RetainVersions: 4,
		DedupEnabled:   true,
		Seed:           1,
	}
}

func newSystem(t *testing.T) *DirectLoad {
	t.Helper()
	d, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// genEntries produces one version's entries from a shared generator.
func genEntries(t *testing.T, g *workload.Generator, stream bifrost.StreamType) []Entry {
	t.Helper()
	var out []Entry
	if err := g.NextVersion(func(e workload.Entry) error {
		out = append(out, Entry{Key: e.Key, Value: e.Value, Stream: stream})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func testGenerator(t *testing.T, keys, valSize int) *workload.Generator {
	t.Helper()
	g, err := workload.NewGenerator(workload.KVConfig{
		Keys: keys, ValueSize: valSize, DupRatio: 0.7, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublishLoadsAllDCs(t *testing.T) {
	d := newSystem(t)
	g := testGenerator(t, 100, 2048)
	rep, err := d.PublishVersion(1, genEntries(t, g, bifrost.StreamInverted))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Keys != 100 || rep.UpdateTime <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	for _, dc := range d.DCs {
		if dc.State(1) != VersionReady {
			t.Fatalf("%s state = %v", dc.ID, dc.State(1))
		}
	}
	// Inverted entries are stored in all six DCs.
	for id, dc := range d.DCs {
		if dc.Store.Stats().Keys == 0 {
			t.Fatalf("DC %s stored nothing", id)
		}
	}
}

func TestSummaryOnlyInThreeDCs(t *testing.T) {
	d := newSystem(t)
	g := testGenerator(t, 60, 1024)
	if _, err := d.PublishVersion(1, genEntries(t, g, bifrost.StreamSummary)); err != nil {
		t.Fatal(err)
	}
	withData, without := 0, 0
	for _, dc := range d.DCs {
		if dc.Store.Stats().Keys > 0 {
			withData++
			if !dc.StoresSummary {
				t.Fatalf("%s stores summary but should not", dc.ID)
			}
		} else {
			without++
		}
	}
	if withData != 3 || without != 3 {
		t.Fatalf("summary DCs = %d, want 3 (paper: summary in three of six)", withData)
	}
}

func TestDedupReducesWireBytes(t *testing.T) {
	d := newSystem(t)
	g := testGenerator(t, 200, 4096)
	rep1, err := d.PublishVersion(1, genEntries(t, g, bifrost.StreamInverted))
	if err != nil {
		t.Fatal(err)
	}
	if rep1.WireBytes != rep1.PayloadBytes {
		t.Fatalf("v1 should not dedup: wire %d payload %d", rep1.WireBytes, rep1.PayloadBytes)
	}
	rep2, err := d.PublishVersion(2, genEntries(t, g, bifrost.StreamInverted))
	if err != nil {
		t.Fatal(err)
	}
	saving := 1 - float64(rep2.WireBytes)/float64(rep2.PayloadBytes)
	if saving < 0.55 || saving > 0.8 {
		t.Fatalf("wire saving = %.2f, want ~0.7 (paper: 63%% bandwidth saved)", saving)
	}
	if rep2.Dedup.KeyRatio() < 0.6 {
		t.Fatalf("dedup key ratio = %v", rep2.Dedup.KeyRatio())
	}
	// Deduplicated version must still serve every key at every DC.
	if err := d.ActivateEverywhere(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i += 17 {
		key := g.Key(i)
		for id := range d.DCs {
			val, _, err := d.Get(id, key)
			if err != nil {
				t.Fatalf("Get(%s) at %s: %v", key, id, err)
			}
			if string(val) != string(g.Value(i)) {
				t.Fatalf("value mismatch for %s at %s", key, id)
			}
		}
	}
}

func TestDedupDisabledBaseline(t *testing.T) {
	cfg := testConfig()
	cfg.DedupEnabled = false
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	g := testGenerator(t, 100, 2048)
	d.PublishVersion(1, func() []Entry {
		var out []Entry
		g.NextVersion(func(e workload.Entry) error {
			out = append(out, Entry{Key: e.Key, Value: e.Value, Stream: bifrost.StreamInverted})
			return nil
		})
		return out
	}())
	var out []Entry
	g.NextVersion(func(e workload.Entry) error {
		out = append(out, Entry{Key: e.Key, Value: e.Value, Stream: bifrost.StreamInverted})
		return nil
	})
	rep, err := d.PublishVersion(2, out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WireBytes != rep.PayloadBytes {
		t.Fatalf("baseline must not dedup: wire %d payload %d", rep.WireBytes, rep.PayloadBytes)
	}
}

func TestVersionRetention(t *testing.T) {
	d := newSystem(t)
	g := testGenerator(t, 30, 512)
	for v := uint64(1); v <= 6; v++ {
		if _, err := d.PublishVersion(v, genEntries(t, g, bifrost.StreamInverted)); err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
	}
	vs := d.Versions()
	if len(vs) != 4 || vs[0] != 3 || vs[3] != 6 {
		t.Fatalf("Versions = %v, want [3 4 5 6] (paper: at most four versions)", vs)
	}
}

func TestGrayReleaseLifecycle(t *testing.T) {
	d := newSystem(t)
	g := testGenerator(t, 50, 1024)
	d.PublishVersion(1, genEntries(t, g, bifrost.StreamInverted))
	if err := d.ActivateEverywhere(1); err != nil {
		t.Fatal(err)
	}
	d.PublishVersion(2, genEntries(t, g, bifrost.StreamInverted))

	grayDC := d.Top.Regions[0].DCs[0]
	if err := d.GrayRelease(2, grayDC); err != nil {
		t.Fatal(err)
	}
	if d.DCs[grayDC].ActiveVersion() != 2 {
		t.Fatal("gray DC not on v2")
	}
	for id, dc := range d.DCs {
		if id != grayDC && dc.ActiveVersion() != 1 {
			t.Fatalf("%s advanced without gray approval", id)
		}
	}
	// Cross-region inconsistency during gray release stays small thanks
	// to the 70% value overlap between versions.
	keys := make([][]byte, 50)
	for i := range keys {
		keys[i] = g.Key(i)
	}
	inc := d.AuditConsistency(keys)
	if inc > 0.45 {
		t.Fatalf("gray inconsistency = %.3f, too high", inc)
	}
	// Promote everywhere: inconsistency collapses to zero.
	if err := d.ActivateEverywhere(2); err != nil {
		t.Fatal(err)
	}
	if inc := d.AuditConsistency(keys); inc != 0 {
		t.Fatalf("post-activation inconsistency = %v, want 0", inc)
	}
}

func TestRollback(t *testing.T) {
	d := newSystem(t)
	g := testGenerator(t, 40, 512)
	d.PublishVersion(1, genEntries(t, g, bifrost.StreamInverted))
	d.ActivateEverywhere(1)
	d.PublishVersion(2, genEntries(t, g, bifrost.StreamInverted))
	grayDC := d.Top.Regions[1].DCs[1]
	if err := d.GrayRelease(2, grayDC); err != nil {
		t.Fatal(err)
	}
	// Malfunction discovered: roll the gray DC back to v1.
	if err := d.Rollback(2, 1); err != nil {
		t.Fatal(err)
	}
	if d.DCs[grayDC].ActiveVersion() != 1 {
		t.Fatal("rollback did not restore v1")
	}
	if err := d.Rollback(2, 1); !errors.Is(err, ErrNotGray) {
		t.Fatalf("double rollback err = %v", err)
	}
}

func TestLifecycleErrors(t *testing.T) {
	d := newSystem(t)
	if err := d.GrayRelease(1, "bogus-dc"); !errors.Is(err, ErrUnknownDC) {
		t.Fatalf("unknown DC err = %v", err)
	}
	someDC := d.Top.Regions[0].DCs[0]
	if err := d.GrayRelease(9, someDC); !errors.Is(err, ErrVersionMissing) {
		t.Fatalf("missing version err = %v", err)
	}
	if err := d.ActivateEverywhere(9); !errors.Is(err, ErrVersionMissing) {
		t.Fatalf("activate missing err = %v", err)
	}
	if _, _, err := d.Get("bogus-dc", []byte("k")); !errors.Is(err, ErrUnknownDC) {
		t.Fatalf("Get unknown DC err = %v", err)
	}
	if _, _, err := d.Get(someDC, []byte("k")); !errors.Is(err, ErrVersionMissing) {
		t.Fatalf("Get with no active version err = %v", err)
	}
}

func TestCorruptionInjectionStillDelivers(t *testing.T) {
	cfg := testConfig()
	cfg.CorruptProb = 0.15
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	g := testGenerator(t, 80, 2048)
	var out []Entry
	g.NextVersion(func(e workload.Entry) error {
		out = append(out, Entry{Key: e.Key, Value: e.Value, Stream: bifrost.StreamInverted})
		return nil
	})
	rep, err := d.PublishVersion(1, out)
	if err != nil {
		t.Fatal(err)
	}
	st := d.Shipper.Stats()
	if st.CorruptionSeen == 0 {
		t.Fatal("corruption injection did nothing")
	}
	if rep.UpdateTime <= 0 {
		t.Fatal("no update time recorded")
	}
	for _, dc := range d.DCs {
		if dc.State(1) != VersionReady {
			t.Fatalf("%s did not finish despite retransmits", dc.ID)
		}
	}
}

func TestUpdateTimeTracksDedupRatio(t *testing.T) {
	// The Fig. 9 anti-correlation: higher dedup ratio -> shorter update.
	d := newSystem(t)
	g, err := workload.NewGenerator(workload.KVConfig{
		Keys: 150, ValueSize: 8192, DupRatio: 0, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	publish := func(v uint64, ratio float64) UpdateReport {
		var out []Entry
		g.NextVersionRatio(ratio, func(e workload.Entry) error {
			out = append(out, Entry{Key: e.Key, Value: e.Value, Stream: bifrost.StreamInverted})
			return nil
		})
		rep, err := d.PublishVersion(v, out)
		if err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
		return rep
	}
	publish(1, 0)
	low := publish(2, 0.2)  // little redundancy: big transfer
	high := publish(3, 0.9) // high redundancy: small transfer
	if high.UpdateTime >= low.UpdateTime {
		t.Fatalf("update times: dedup 0.9 -> %v, dedup 0.2 -> %v; want anti-correlation",
			high.UpdateTime, low.UpdateTime)
	}
}

func TestPublishManyKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := newSystem(t)
	g := testGenerator(t, 500, 4096)
	for v := uint64(1); v <= 3; v++ {
		entries := genEntries(t, g, bifrost.StreamInverted)
		// Mix in a summary stream for the same keys.
		sum := make([]Entry, 0, len(entries))
		for _, e := range entries {
			sum = append(sum, Entry{
				Key:    append([]byte("s/"), e.Key...),
				Value:  e.Value[:128],
				Stream: bifrost.StreamSummary,
			})
		}
		if _, err := d.PublishVersion(v, append(entries, sum...)); err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
	}
	if err := d.ActivateEverywhere(3); err != nil {
		t.Fatal(err)
	}
	val, _, err := d.Get(d.Top.Regions[2].DCs[1], g.Key(123))
	if err != nil || len(val) == 0 {
		t.Fatalf("final read: %v", err)
	}
}
