package cluster

import (
	"errors"
	"testing"
	"time"

	"directload/internal/bifrost"
	"directload/internal/lsm"
	"directload/internal/mint"
	"directload/internal/workload"
)

// TestPublishSurvivesNodeFailure: a storage node failing before a
// version arrives must not block the update (writes still reach quorum).
func TestPublishSurvivesNodeFailure(t *testing.T) {
	d := newSystem(t)
	// Fail one node in every DC.
	for _, dc := range d.DCs {
		ids := dc.Store.Nodes()
		if err := dc.Store.FailNode(ids[0]); err != nil {
			t.Fatal(err)
		}
	}
	g := testGenerator(t, 60, 1024)
	rep, err := d.PublishVersion(1, genEntries(t, g, bifrost.StreamInverted))
	if err != nil {
		t.Fatalf("publish with failed nodes: %v", err)
	}
	if rep.Keys != 60 {
		t.Fatalf("keys = %d", rep.Keys)
	}
	if err := d.ActivateEverywhere(1); err != nil {
		t.Fatal(err)
	}
	// Reads served by surviving replicas.
	for i := 0; i < 60; i += 11 {
		if _, _, err := d.Get(d.Top.Regions[0].DCs[0], g.Key(i)); err != nil {
			t.Fatalf("Get key %d: %v", i, err)
		}
	}
}

// TestNodeRecoveryCatchesUpViaReplicas: a node that was down during a
// version load misses that data; after recovery the cluster still serves
// everything through its peers (the paper's availability story), and the
// recovered node serves what it had before the crash.
func TestNodeRecoveryCatchesUpViaReplicas(t *testing.T) {
	d := newSystem(t)
	g := testGenerator(t, 60, 1024)
	if _, err := d.PublishVersion(1, genEntries(t, g, bifrost.StreamInverted)); err != nil {
		t.Fatal(err)
	}
	dc := d.DCs[d.Top.Regions[1].DCs[0]]
	victim := dc.Store.Nodes()[0]
	if err := dc.Store.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PublishVersion(2, genEntries(t, g, bifrost.StreamInverted)); err != nil {
		t.Fatal(err)
	}
	scan, err := dc.Store.RecoverNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	if scan <= 0 {
		t.Fatal("recovery scan time should be positive for a loaded node")
	}
	if err := d.ActivateEverywhere(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i += 13 {
		val, _, err := d.Get(dc.ID, g.Key(i))
		if err != nil {
			t.Fatalf("Get key %d after recovery: %v", i, err)
		}
		if string(val) != string(g.Value(i)) {
			t.Fatalf("stale value for key %d", i)
		}
	}
}

// TestBaselineEngineSystem runs the whole pipeline over LSM-backed Mint
// clusters — the full "without DirectLoad" stack of Fig. 10a.
func TestBaselineEngineSystem(t *testing.T) {
	cfg := testConfig()
	cfg.DedupEnabled = false
	cfg.Mint.Factory = mint.LSMFactory(lsm.DefaultOptions())
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	g := testGenerator(t, 50, 1024)
	for v := uint64(1); v <= 2; v++ {
		if _, err := d.PublishVersion(v, genEntries(t, g, bifrost.StreamInverted)); err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
	}
	if err := d.ActivateEverywhere(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i += 9 {
		val, _, err := d.Get(d.Top.Regions[2].DCs[0], g.Key(i))
		if err != nil || string(val) != string(g.Value(i)) {
			t.Fatalf("baseline Get key %d: %q, %v", i, val, err)
		}
	}
}

// TestGrayReleasePerDataType: VIP data advance more frequently than
// non-VIP (paper §3) — modeled as independent version streams that can
// sit at different active versions.
func TestGrayReleasePerDataType(t *testing.T) {
	d := newSystem(t)
	vip, err := workload.NewGenerator(workload.KVConfig{
		Keys: 30, KeyPrefix: "vip/", ValueSize: 512, DupRatio: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three fast VIP versions.
	for v := uint64(1); v <= 3; v++ {
		var entries []Entry
		vip.NextVersion(func(e workload.Entry) error {
			entries = append(entries, Entry{Key: e.Key, Value: e.Value, Stream: bifrost.StreamInverted})
			return nil
		})
		if _, err := d.PublishVersion(v, entries); err != nil {
			t.Fatalf("vip v%d: %v", v, err)
		}
		if err := d.ActivateEverywhere(v); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.DCs[d.Top.Regions[0].DCs[0]].ActiveVersion(); got != 3 {
		t.Fatalf("active = %d, want 3", got)
	}
	if vs := d.Versions(); len(vs) != 3 {
		t.Fatalf("retained = %v", vs)
	}
}

// TestStreamsArriveTogether: the paper's §2.2 requirement that the
// summary and inverted streams finish simultaneously — enforced by the
// 40/60 bandwidth reservation when the volumes are proportional.
func TestStreamsArriveTogether(t *testing.T) {
	d := newSystem(t)
	g := testGenerator(t, 120, 3000)
	var entries []Entry
	i := 0
	g.NextVersion(func(e workload.Entry) error {
		// 40% of the volume as summary, 60% as inverted.
		stream := bifrost.StreamInverted
		if i%5 < 2 {
			stream = bifrost.StreamSummary
		}
		i++
		entries = append(entries, Entry{Key: e.Key, Value: e.Value, Stream: stream})
		return nil
	})
	if _, err := d.PublishVersion(1, entries); err != nil {
		t.Fatal(err)
	}
	var lastSummary, lastInverted time.Duration
	for _, del := range d.Shipper.Deliveries() {
		if del.Slice.Stream == bifrost.StreamSummary && del.Arrived > lastSummary {
			lastSummary = del.Arrived
		}
		if del.Slice.Stream == bifrost.StreamInverted && del.Arrived > lastInverted {
			lastInverted = del.Arrived
		}
	}
	if lastSummary == 0 || lastInverted == 0 {
		t.Fatal("both streams must deliver")
	}
	skew := float64(lastSummary) / float64(lastInverted)
	if skew < 0.5 || skew > 2.0 {
		t.Fatalf("stream completion skew %.2f (summary %v vs inverted %v)",
			skew, lastSummary, lastInverted)
	}
}

// TestPublishFailsWhenQuorumUnreachable: with two of three replicas down
// in a group, applying a slice misses write quorum and the publish
// surfaces the error instead of silently under-replicating.
func TestPublishFailsWhenQuorumUnreachable(t *testing.T) {
	d := newSystem(t)
	// Fail 2 nodes of group 0 in one DC.
	dc := d.DCs[d.Top.Regions[0].DCs[0]]
	downed := 0
	for _, id := range dc.Store.Nodes() {
		n, _ := dc.Store.Node(id)
		if n != nil && dc.Store.GroupFor([]byte("probe")) != nil {
			// Just fail the first two nodes listed; some keys will land
			// on a group with <quorum live replicas.
			if downed < 4 {
				dc.Store.FailNode(id)
				downed++
			}
		}
	}
	g := testGenerator(t, 80, 512)
	_, err := d.PublishVersion(1, genEntries(t, g, bifrost.StreamInverted))
	if err == nil {
		t.Fatal("publish should fail when a DC cannot reach write quorum")
	}
	if !errors.Is(err, mint.ErrQuorum) {
		t.Fatalf("err = %v, want to wrap mint.ErrQuorum", err)
	}
}
