package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"directload/internal/metrics"
	"directload/internal/server"
)

// Mirror fans published versions out to real TCP storage nodes (qindbd
// daemons) alongside the simulated deployment — the remote publish
// path. Each node gets a pooled pipelined client, and every version is
// shipped as a handful of OpBatch frames instead of one round trip per
// record, which is what makes remote publish keep up with the
// simulated fabric (paper §2: bulk version loads, not point writes).
type Mirror struct {
	clients []*server.Client
	addrs   []string

	reg *metrics.Registry
	met mirrorMetrics
}

// mirrorMetrics holds the cluster.mirror.* handles; all nil-safe.
type mirrorMetrics struct {
	versions *metrics.Counter
	ops      *metrics.Counter
	errors   *metrics.Counter
}

// NewMirror dials one pooled client per node address. Dial options
// (server.WithPoolSize, server.WithTimeout, ...) apply to every node.
func NewMirror(addrs []string, opts ...server.DialOption) (*Mirror, error) {
	m := &Mirror{addrs: append([]string(nil), addrs...)}
	for _, addr := range addrs {
		cl, err := server.Dial(addr, opts...)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("cluster: mirror dial %s: %w", addr, err)
		}
		m.clients = append(m.clients, cl)
	}
	return m, nil
}

// SetMetrics attaches a registry for the cluster.mirror.* counters.
func (m *Mirror) SetMetrics(reg *metrics.Registry) {
	m.reg = reg
	m.met = mirrorMetrics{
		versions: reg.Counter("cluster.mirror.versions"),
		ops:      reg.Counter("cluster.mirror.ops"),
		errors:   reg.Counter("cluster.mirror.errors"),
	}
}

// Close tears down every node client and reports every failure.
func (m *Mirror) Close() error {
	var errs []error
	for _, cl := range m.clients {
		if err := cl.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Nodes returns the mirrored node addresses.
func (m *Mirror) Nodes() []string { return append([]string(nil), m.addrs...) }

// PublishVersion ships every entry of a version to every node, batched,
// all nodes in parallel. Dedup-stripped records are forwarded as dedup
// puts so remote nodes resolve them against their own older versions.
// The fan-out runs as one trace (started here if ctx carries no span):
// each node gets its own child span, under which the batch flushes —
// and, across the wire, the remote handler spans — nest.
func (m *Mirror) PublishVersion(ctx context.Context, version uint64, entries []Entry) (err error) {
	ctx, end := m.reg.StartSpanNote(ctx, "cluster.mirror.publish",
		fmt.Sprintf("v%d entries=%d nodes=%d", version, len(entries), len(m.clients)))
	defer func() { end(err) }()
	errs := make([]error, len(m.clients))
	var wg sync.WaitGroup
	for i, cl := range m.clients {
		wg.Add(1)
		go func(i int, cl *server.Client) {
			defer wg.Done()
			nctx, endNode := m.reg.StartSpanNote(ctx, "cluster.mirror.node", m.addrs[i])
			b := cl.Batcher()
			for _, e := range entries {
				if err := b.Put(nctx, e.Key, version, e.Value, false); err != nil {
					errs[i] = err
					endNode(err)
					return
				}
			}
			errs[i] = b.Flush(nctx)
			endNode(errs[i])
		}(i, cl)
	}
	wg.Wait()
	m.met.versions.Inc()
	m.met.ops.Add(int64(len(entries) * len(m.clients)))
	// Aggregate every failed node, not just the first: an operator
	// debugging a partial outage needs the full blast radius in one
	// error, and errors.Is still matches each underlying cause.
	var nodeErrs []error
	for i, e := range errs {
		if e != nil {
			m.met.errors.Inc()
			nodeErrs = append(nodeErrs, fmt.Errorf("node %s: %w", m.addrs[i], e))
		}
	}
	if len(nodeErrs) > 0 {
		return fmt.Errorf("cluster: mirroring v%d: %w", version, errors.Join(nodeErrs...))
	}
	return nil
}

// DropVersion retires a version on every node (the retention policy's
// remote half).
func (m *Mirror) DropVersion(ctx context.Context, version uint64) error {
	errs := make([]error, len(m.clients))
	var wg sync.WaitGroup
	for i, cl := range m.clients {
		wg.Add(1)
		go func(i int, cl *server.Client) {
			defer wg.Done()
			errs[i] = cl.DropVersionContext(ctx, version)
		}(i, cl)
	}
	wg.Wait()
	var nodeErrs []error
	for i, e := range errs {
		if e != nil {
			m.met.errors.Inc()
			nodeErrs = append(nodeErrs, fmt.Errorf("node %s: %w", m.addrs[i], e))
		}
	}
	if len(nodeErrs) > 0 {
		return fmt.Errorf("cluster: dropping v%d: %w", version, errors.Join(nodeErrs...))
	}
	return nil
}
