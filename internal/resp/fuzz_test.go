package resp

import (
	"bytes"
	"testing"
)

// FuzzRESPParse drives arbitrary bytes through the RESP command reader
// and checks the canonical re-encode property: any command the parser
// accepts — array framing or inline — re-encodes through AppendCommand
// into a canonical array-of-bulks form that parses back to the same
// arguments. The property pins both directions of the codec at once,
// so a parser that silently drops or merges argument bytes cannot
// survive the fuzzer.
func FuzzRESPParse(f *testing.F) {
	// Canonical array framing.
	f.Add(AppendCommand(nil, []byte("SET"), []byte("key"), []byte("value")))
	f.Add(AppendCommand(nil, []byte("GET"), []byte("key")))
	f.Add(AppendCommand(nil, []byte("MSET"), []byte("a"), []byte{}, []byte("b"), []byte{0, 1, 2}))
	// Inline commands, blank lines, and torn frames.
	f.Add([]byte("PING\r\n"))
	f.Add([]byte("GET key extra   spaced\r\n"))
	f.Add([]byte("\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$3\r\nke"))
	f.Add([]byte("*-1\r\n"))
	f.Add([]byte("$5\r\nhello\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			args, err := r.ReadCommand()
			if err != nil {
				return // torn frame, protocol error, or EOF: all fine
			}
			if args == nil {
				continue // blank inline line
			}
			// Re-encode canonically and parse back.
			enc := AppendCommand(nil, args...)
			back, err := NewReader(bytes.NewReader(enc)).ReadCommand()
			if err != nil {
				t.Fatalf("canonical re-encode failed to parse: %v\nencoded: %q", err, enc)
			}
			if len(back) != len(args) {
				t.Fatalf("re-encode arg count %d, want %d", len(back), len(args))
			}
			for i := range args {
				if !bytes.Equal(back[i], args[i]) {
					t.Fatalf("re-encode arg %d = %q, want %q", i, back[i], args[i])
				}
			}
			// Canonical form is a fixed point: encoding the re-parsed
			// args must reproduce the same bytes.
			if again := AppendCommand(nil, back...); !bytes.Equal(again, enc) {
				t.Fatalf("canonical encoding not a fixed point: %q vs %q", again, enc)
			}
		}
	})
}
