package resp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/metrics"
	"directload/internal/metrics/testutil"
	"directload/internal/server"
	"directload/internal/ssd"
)

// newBackend builds an engine-backed server.Backend for one test.
func newBackend(t *testing.T, reg *metrics.Registry) *server.Backend {
	t.Helper()
	dev, err := ssd.NewDevice(ssd.DefaultConfig(256 << 20))
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF: aof.Config{FileSize: 4 << 20, GCThreshold: 0.25}, Seed: 1,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	b := server.NewBackend(db)
	b.SetMetrics(reg)
	return b
}

// startRESP serves a RESP listener over b and returns a connected client.
func startRESP(t *testing.T, b *server.Backend) (*Server, *Client) {
	t.Helper()
	srv := New(b)
	srv.SetLogf(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("resp Serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("resp Serve did not return after Close")
		}
	})
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

// startNative serves the binary-wire listener over the same backend.
func startNative(t *testing.T, b *server.Backend) *server.Client {
	t.Helper()
	s := server.NewWithBackend(b)
	s.SetLogf(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("native Serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("native Serve did not return after Close")
		}
	})
	cl, err := server.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func mustDo(t *testing.T, cl *Client, args ...string) Reply {
	t.Helper()
	r, err := cl.Do(args...)
	if err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	return r
}

func TestBasicCommands(t *testing.T) {
	testutil.CheckGoroutines(t)
	_, cl := startRESP(t, newBackend(t, nil))

	if r := mustDo(t, cl, "PING"); r.Str != "PONG" {
		t.Fatalf("PING = %+v", r)
	}
	if r := mustDo(t, cl, "PING", "hello"); string(r.Bulk) != "hello" {
		t.Fatalf("PING msg = %+v", r)
	}
	if r := mustDo(t, cl, "ECHO", "echoed"); string(r.Bulk) != "echoed" {
		t.Fatalf("ECHO = %+v", r)
	}
	if r := mustDo(t, cl, "SET", "k", "v1"); r.Str != "OK" {
		t.Fatalf("SET = %+v", r)
	}
	if r := mustDo(t, cl, "GET", "k"); string(r.Bulk) != "v1" {
		t.Fatalf("GET = %+v", r)
	}
	// Missing key: the canonical nil bulk, not an error.
	if r := mustDo(t, cl, "GET", "missing"); !r.IsNil() {
		t.Fatalf("GET missing = %+v", r)
	}
	if r := mustDo(t, cl, "EXISTS", "k", "missing"); r.Int != 1 {
		t.Fatalf("EXISTS = %+v", r)
	}
	if r := mustDo(t, cl, "DEL", "k", "missing"); r.Int != 1 {
		t.Fatalf("DEL = %+v", r)
	}
	// Deleted key reads back as nil, same as missing.
	if r := mustDo(t, cl, "GET", "k"); !r.IsNil() {
		t.Fatalf("GET deleted = %+v", r)
	}
	if r := mustDo(t, cl, "MSET", "a", "1", "b", "2"); r.Str != "OK" {
		t.Fatalf("MSET = %+v", r)
	}
	r := mustDo(t, cl, "MGET", "a", "missing", "b")
	if len(r.Array) != 3 || string(r.Array[0].Bulk) != "1" ||
		!r.Array[1].IsNil() || string(r.Array[2].Bulk) != "2" {
		t.Fatalf("MGET = %+v", r)
	}
	if r := mustDo(t, cl, "DBSIZE"); r.Int != 2 {
		t.Fatalf("DBSIZE = %+v", r)
	}
	if r := mustDo(t, cl, "COMMAND"); r.Type != '*' || len(r.Array) != 0 {
		t.Fatalf("COMMAND = %+v", r)
	}
	// Errors: unknown command and wrong arity.
	if r := mustDo(t, cl, "FLUSHDB"); r.Err == nil || !strings.Contains(r.Err.Error(), "unknown command") {
		t.Fatalf("FLUSHDB = %+v", r)
	}
	if r := mustDo(t, cl, "SET", "k"); r.Err == nil || !strings.Contains(r.Err.Error(), "wrong number of arguments") {
		t.Fatalf("SET arity = %+v", r)
	}
}

// TestSelectMapsToVersion pins the database-index mapping: SELECT n
// addresses engine version n+1, so db 0 is the conventional version 1.
func TestSelectMapsToVersion(t *testing.T) {
	b := newBackend(t, nil)
	_, cl := startRESP(t, b)
	ctx := context.Background()

	mustDo(t, cl, "SET", "k", "db0")
	if r := mustDo(t, cl, "SELECT", "1"); r.Str != "OK" {
		t.Fatalf("SELECT = %+v", r)
	}
	mustDo(t, cl, "SET", "k", "db1")
	// Engine view: db 0 wrote version 1, db 1 wrote version 2.
	if v, err := b.Get(ctx, []byte("k"), 1); err != nil || string(v) != "db0" {
		t.Fatalf("version 1 = %q, %v", v, err)
	}
	if v, err := b.Get(ctx, []byte("k"), 2); err != nil || string(v) != "db1" {
		t.Fatalf("version 2 = %q, %v", v, err)
	}
	if r := mustDo(t, cl, "GET", "k"); string(r.Bulk) != "db1" {
		t.Fatalf("GET after SELECT = %+v", r)
	}
	if r := mustDo(t, cl, "SELECT", "0"); r.Str != "OK" {
		t.Fatalf("SELECT 0 = %+v", r)
	}
	if r := mustDo(t, cl, "GET", "k"); string(r.Bulk) != "db0" {
		t.Fatalf("GET after SELECT 0 = %+v", r)
	}
	if r := mustDo(t, cl, "SELECT", "nope"); r.Err == nil {
		t.Fatalf("SELECT nope = %+v", r)
	}
}

// TestInteropBothWays runs both front doors over one Backend and checks
// each protocol reads the other's writes — the "one engine, two
// protocols" property the Backend extraction exists for.
func TestInteropBothWays(t *testing.T) {
	b := newBackend(t, nil)
	_, rcl := startRESP(t, b)
	ncl := startNative(t, b)
	ctx := context.Background()

	// Native write → RESP read (db 0 is version 1).
	if err := ncl.PutContext(ctx, []byte("native-key"), 1, []byte("from-native"), false); err != nil {
		t.Fatal(err)
	}
	if r := mustDo(t, rcl, "GET", "native-key"); string(r.Bulk) != "from-native" {
		t.Fatalf("RESP read of native write = %+v", r)
	}

	// RESP write → native read.
	mustDo(t, rcl, "SET", "resp-key", "from-resp")
	if v, err := ncl.GetContext(ctx, []byte("resp-key"), 1); err != nil || string(v) != "from-resp" {
		t.Fatalf("native read of RESP write = %q, %v", v, err)
	}

	// RESP delete observed natively, and vice versa.
	mustDo(t, rcl, "DEL", "native-key")
	if _, err := ncl.GetContext(ctx, []byte("native-key"), 1); !errors.Is(err, core.ErrDeleted) {
		t.Fatalf("native read of RESP delete = %v", err)
	}
	if err := ncl.DelContext(ctx, []byte("resp-key"), 1); err != nil {
		t.Fatal(err)
	}
	if r := mustDo(t, rcl, "GET", "resp-key"); !r.IsNil() {
		t.Fatalf("RESP read of native delete = %+v", r)
	}

	// Native dedup across versions is visible through SELECT.
	if err := ncl.PutContext(ctx, []byte("d"), 1, []byte("base"), false); err != nil {
		t.Fatal(err)
	}
	if err := ncl.PutContext(ctx, []byte("d"), 2, nil, true); err != nil {
		t.Fatal(err)
	}
	mustDo(t, rcl, "SELECT", "1")
	if r := mustDo(t, rcl, "GET", "d"); string(r.Bulk) != "base" {
		t.Fatalf("RESP read of dedup entry = %+v", r)
	}
}

// TestMultiExecCommitsOneBatch checks EXEC's mutations land as ONE
// OpBatch through the shared Backend — same metrics as a native batch —
// and that replies reconstruct per command.
func TestMultiExecCommitsOneBatch(t *testing.T) {
	reg := metrics.NewRegistry()
	b := newBackend(t, reg)
	_, cl := startRESP(t, b)
	ctx := context.Background()

	mustDo(t, cl, "SET", "pre", "existing")

	if r := mustDo(t, cl, "MULTI"); r.Str != "OK" {
		t.Fatalf("MULTI = %+v", r)
	}
	for _, cmd := range [][]string{
		{"SET", "t1", "v1"},
		{"MSET", "t2", "v2", "t3", "v3"},
		{"DEL", "pre", "never-there"},
		{"GET", "t1"},
	} {
		if r := mustDo(t, cl, cmd...); r.Str != "QUEUED" {
			t.Fatalf("%v = %+v", cmd, r)
		}
	}
	// Nothing applied while queued.
	if _, err := b.Get(ctx, []byte("t1"), 1); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("t1 visible before EXEC: %v", err)
	}
	r := mustDo(t, cl, "EXEC")
	if r.Type != '*' || len(r.Array) != 4 {
		t.Fatalf("EXEC = %+v", r)
	}
	if r.Array[0].Str != "OK" || r.Array[1].Str != "OK" {
		t.Fatalf("EXEC SET/MSET replies = %+v", r.Array)
	}
	if r.Array[2].Int != 1 {
		t.Fatalf("EXEC DEL reply = %+v", r.Array[2])
	}
	// The read observes the transaction's own write.
	if string(r.Array[3].Bulk) != "v1" {
		t.Fatalf("EXEC GET reply = %+v", r.Array[3])
	}
	for key, want := range map[string]string{"t1": "v1", "t2": "v2", "t3": "v3"} {
		if v, err := b.Get(ctx, []byte(key), 1); err != nil || string(v) != want {
			t.Fatalf("%s = %q, %v", key, v, err)
		}
	}
	// One batch frame carried all four mutations.
	snap := reg.Snapshot()
	if got := snap["server.req.batch"].(int64); got != 1 {
		t.Fatalf("server.req.batch = %v, want 1", got)
	}
	if got := snap["server.batch.ops"].(int64); got != 5 {
		t.Fatalf("server.batch.ops = %v, want 5", got)
	}
}

// TestFailedExecLeavesNoPartialWrites pins EXEC atomicity for both
// abort paths: a queue-time error (unknown command) and an EXEC-time
// validation failure (empty key). Neither may leave any of the
// transaction's writes behind.
func TestFailedExecLeavesNoPartialWrites(t *testing.T) {
	b := newBackend(t, nil)
	_, cl := startRESP(t, b)
	ctx := context.Background()

	// Queue-time error poisons the transaction.
	mustDo(t, cl, "MULTI")
	if r := mustDo(t, cl, "SET", "q1", "v"); r.Str != "QUEUED" {
		t.Fatalf("SET = %+v", r)
	}
	if r := mustDo(t, cl, "NOSUCHCMD"); r.Err == nil {
		t.Fatalf("NOSUCHCMD = %+v", r)
	}
	if r := mustDo(t, cl, "SET", "q2", "v"); r.Str != "QUEUED" {
		t.Fatalf("SET after error = %+v", r)
	}
	r := mustDo(t, cl, "EXEC")
	var re *ReplyError
	if r.Err == nil || !errors.As(r.Err, &re) || re.Class != ClassExecAbort {
		t.Fatalf("EXEC = %+v", r)
	}
	for _, key := range []string{"q1", "q2"} {
		if _, err := b.Get(ctx, []byte(key), 1); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("%s written by aborted EXEC: %v", key, err)
		}
	}

	// EXEC-time validation failure: the empty key passes queue-time arity
	// checks but fails AtomicBatch validation, so the whole batch — the
	// valid first write included — must be rejected with the engine
	// untouched.
	mustDo(t, cl, "MULTI")
	mustDo(t, cl, "SET", "v1-key", "v")
	mustDo(t, cl, "SET", "", "v")
	r = mustDo(t, cl, "EXEC")
	if r.Err == nil || !errors.As(r.Err, &re) || re.Class != ClassExecAbort {
		t.Fatalf("EXEC with empty key = %+v", r)
	}
	if _, err := b.Get(ctx, []byte("v1-key"), 1); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("v1-key written by rejected EXEC: %v", err)
	}

	// The connection stays usable after both aborts.
	if r := mustDo(t, cl, "SET", "after", "ok"); r.Str != "OK" {
		t.Fatalf("SET after aborts = %+v", r)
	}
}

func TestDiscardAndMultiErrors(t *testing.T) {
	b := newBackend(t, nil)
	_, cl := startRESP(t, b)
	ctx := context.Background()

	mustDo(t, cl, "MULTI")
	mustDo(t, cl, "SET", "dk", "v")
	if r := mustDo(t, cl, "MULTI"); r.Err == nil {
		t.Fatalf("nested MULTI = %+v", r)
	}
	if r := mustDo(t, cl, "DISCARD"); r.Str != "OK" {
		t.Fatalf("DISCARD = %+v", r)
	}
	if _, err := b.Get(ctx, []byte("dk"), 1); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("dk written despite DISCARD: %v", err)
	}
	if r := mustDo(t, cl, "EXEC"); r.Err == nil || !strings.Contains(r.Err.Error(), "EXEC without MULTI") {
		t.Fatalf("EXEC = %+v", r)
	}
	if r := mustDo(t, cl, "DISCARD"); r.Err == nil || !strings.Contains(r.Err.Error(), "DISCARD without MULTI") {
		t.Fatalf("DISCARD = %+v", r)
	}
	// SELECT may not move the version mid-transaction.
	mustDo(t, cl, "MULTI")
	if r := mustDo(t, cl, "SELECT", "3"); r.Err == nil {
		t.Fatalf("SELECT in MULTI = %+v", r)
	}
	mustDo(t, cl, "DISCARD")
}

// TestPipelinedOrdering fires a burst of pipelined RESP commands while
// the native listener (with a bounded dispatch window) hammers the same
// backend, and checks RESP replies come back in submission order with
// the right values.
func TestPipelinedOrdering(t *testing.T) {
	b := newBackend(t, nil)
	_, rcl := startRESP(t, b)

	s := server.NewWithBackend(b)
	s.SetLogf(nil)
	s.SetMaxInFlight(4)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	ncl, err := server.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ncl.Close() })

	// Concurrent native writes to disjoint keys keep the backend busy.
	ctx := context.Background()
	stop := make(chan struct{})
	nativeDone := make(chan error, 1)
	go func() {
		defer close(nativeDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := []byte(fmt.Sprintf("native-%03d", i%100))
			if err := ncl.PutContext(ctx, key, 1, key, false); err != nil {
				nativeDone <- err
				return
			}
		}
	}()

	const n = 200
	for i := 0; i < n; i++ {
		if err := rcl.SendStrings("SET", fmt.Sprintf("p%03d", i), fmt.Sprintf("val-%03d", i)); err != nil {
			t.Fatal(err)
		}
		if err := rcl.SendStrings("GET", fmt.Sprintf("p%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rcl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		set, err := rcl.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if set.Str != "OK" {
			t.Fatalf("pipelined SET %d = %+v", i, set)
		}
		get, err := rcl.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("val-%03d", i); string(get.Bulk) != want {
			t.Fatalf("pipelined GET %d = %q, want %q", i, get.Bulk, want)
		}
	}
	close(stop)
	if err := <-nativeDone; err != nil {
		t.Fatal(err)
	}
}

// TestErrorMappingMatchesStatusError cross-checks the two wire error
// vocabularies: a RESP ReplyError and a native StatusError carrying the
// same engine condition must answer errors.Is identically.
func TestErrorMappingMatchesStatusError(t *testing.T) {
	cases := []struct {
		name   string
		resp   *ReplyError
		native *server.StatusError
	}{
		{"not found", &ReplyError{Class: ClassNotFound, Msg: "x"}, &server.StatusError{Code: server.StatusNotFound, Msg: "x"}},
		{"deleted", &ReplyError{Class: ClassDeleted, Msg: "x"}, &server.StatusError{Code: server.StatusDeleted, Msg: "x"}},
		{"failed", &ReplyError{Class: ClassErr, Msg: "x"}, &server.StatusError{Code: server.StatusFailed, Msg: "x"}},
	}
	sentinels := []error{core.ErrNotFound, core.ErrDeleted}
	for _, tc := range cases {
		for _, sentinel := range sentinels {
			if got, want := errors.Is(tc.resp, sentinel), errors.Is(tc.native, sentinel); got != want {
				t.Errorf("%s: errors.Is(resp, %v) = %v, native = %v", tc.name, sentinel, got, want)
			}
		}
	}
	// Forward and reverse mapping compose: classify an engine error,
	// parse the class back, and errors.Is still holds.
	for _, sentinel := range sentinels {
		wrapped := fmt.Errorf("engine: %w", sentinel)
		re := parseErrorLine(classify(wrapped) + " " + wrapped.Error())
		if !errors.Is(re, sentinel) {
			t.Errorf("classify/parse round trip lost %v (class %q)", sentinel, re.Class)
		}
	}
}

func TestInfoAndInline(t *testing.T) {
	reg := metrics.NewRegistry()
	b := newBackend(t, reg)
	srv, cl := startRESP(t, b)
	srv.SetNode("test-node")

	mustDo(t, cl, "SET", "ik", "iv")
	r := mustDo(t, cl, "INFO")
	info := string(r.Bulk)
	for _, want := range []string{
		"# Server", "node:test-node", "protocol:resp2",
		"# Clients", "connected_clients:",
		"# Stats", "server_req_put:1",
		"# Keyspace", "db0:keys=1,engine_version=1",
	} {
		if !strings.Contains(info, want) {
			t.Errorf("INFO missing %q:\n%s", want, info)
		}
	}
	if r := mustDo(t, cl, "INFO", "keyspace"); strings.Contains(string(r.Bulk), "# Stats") {
		t.Fatalf("INFO keyspace included Stats:\n%s", r.Bulk)
	}

	// Inline commands (the telnet form) share the dispatch path.
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("GET ik\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := nc.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(buf[:n]); got != "$2\r\niv\r\n" {
		t.Fatalf("inline GET = %q", got)
	}
}

func TestProtocolErrorTearsDown(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, _ := startRESP(t, newBackend(t, nil))
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("*not-a-number\r\n")); err != nil {
		t.Fatal(err)
	}
	reply, err := bufReadAll(nc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(reply, []byte("-ERR ")) {
		t.Fatalf("reply = %q, want -ERR prefix", reply)
	}
}

// bufReadAll drains a connection until EOF (the server closing it).
func bufReadAll(nc net.Conn) ([]byte, error) {
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var out []byte
	buf := make([]byte, 256)
	for {
		n, err := nc.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			if len(out) > 0 {
				return out, nil
			}
			return nil, err
		}
	}
}
