package resp

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"directload/internal/core"
	"directload/internal/metrics"
	"directload/internal/server"
)

// Server is the RESP front door: a TCP listener that executes Redis
// commands against a shared server.Backend, one goroutine per
// connection, commands on one connection strictly in order (pipelined
// bursts are parsed ahead and replies coalesce into one write, so
// in-order does not mean one round trip per command).
type Server struct {
	backend *server.Backend

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]bool
	closed bool
	logf   func(format string, args ...any)
	node   string
}

// New builds a RESP listener over an execution backend — typically the
// same Backend the native binary listener serves, which is what makes
// the two protocols one system rather than two stores.
func New(b *server.Backend) *Server {
	return &Server{
		backend: b,
		conns:   make(map[net.Conn]bool),
		logf:    log.Printf,
		node:    "qindb",
	}
}

// SetLogf replaces the server's logger (nil silences it).
func (s *Server) SetLogf(logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
}

// SetNode names this node in INFO's Server section (default "qindb").
func (s *Server) SetNode(name string) {
	if name != "" {
		s.node = name
	}
}

// Serve accepts connections on ln until Close. It returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("resp: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = true
		s.mu.Unlock()
		go s.handle(nc)
	}
}

// ListenAndServe listens on addr ("host:port", port 0 for ephemeral)
// and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and tears down open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// queuedCmd is one command buffered between MULTI and EXEC.
type queuedCmd struct {
	name string
	args [][]byte
}

// conn is the per-connection state: the parser, the reply encoder, the
// SELECTed engine version and the MULTI queue.
type conn struct {
	srv *Server
	nc  net.Conn
	r   *Reader
	w   *Writer

	version uint64 // engine version commands address (SELECT; default 1)
	multi   bool
	aborted bool // a queue-time error poisons the transaction
	queue   []queuedCmd
	closing bool // QUIT: flush the +OK, then drop the connection
}

// VersionForDB maps a Redis database index onto the engine data version
// RESP commands address: index n → version n+1, so the default database
// 0 lands on the repo's conventional first version 1.
func VersionForDB(index int) uint64 {
	return uint64(index) + 1
}

// Read-burst dispatch. A pipelined run of consecutive GETs has no
// ordering constraints among its members — they are pure reads with no
// intervening write — so the handler executes them concurrently (like
// the native v2 listener's -max-inflight window) and writes the replies
// back in command order. The burst ends at the first non-GET command,
// which preserves read-your-writes across the pipeline.
const (
	// maxReadBurst caps how many consecutive GETs one burst gathers.
	maxReadBurst = 256
	// getBurstWorkers bounds the concurrent engine reads per burst.
	getBurstWorkers = 8
)

// handle serves one connection until EOF, QUIT, or a protocol error.
func (s *Server) handle(nc net.Conn) {
	s.backend.ConnOpened()
	defer s.backend.ConnClosed()
	defer s.dropConn(nc)
	c := &conn{srv: s, nc: nc, r: NewReader(nc), w: NewWriter(nc), version: VersionForDB(0)}
	ctx := context.Background()
	protoErr := func(err error) {
		if errors.Is(err, ErrProtocol) {
			// Tell the client why before abandoning the stream.
			c.w.WriteError(ClassErr, err.Error())
			c.w.Flush()
		}
	}
	var pending [][]byte // command read ahead by a burst, not yet run
	for {
		var args [][]byte
		if pending != nil {
			args, pending = pending, nil
		} else {
			var err error
			args, err = c.r.ReadCommand()
			if err != nil {
				protoErr(err)
				return
			}
			if len(args) == 0 {
				continue // blank inline line
			}
		}
		if !c.multi && isPlainGet(args) && c.r.Buffered() > 0 {
			keys := [][]byte{args[1]}
			var readErr error
			for c.r.Buffered() > 0 && len(keys) < maxReadBurst {
				next, err := c.r.ReadCommand()
				if err != nil {
					readErr = err
					break
				}
				if len(next) == 0 {
					continue
				}
				if !isPlainGet(next) {
					pending = next
					break
				}
				keys = append(keys, next[1])
			}
			c.runGetBurst(ctx, keys)
			if readErr != nil {
				protoErr(readErr)
				return
			}
		} else {
			c.dispatch(ctx, args)
		}
		// Flush only once the pipeline drains: a burst of N commands
		// answers with one write, not N.
		if c.r.Buffered() == 0 && pending == nil {
			if err := c.w.Flush(); err != nil {
				return
			}
			if c.closing {
				return
			}
		}
	}
}

// isPlainGet reports whether args is a well-formed GET — the only
// command eligible for concurrent read-burst dispatch.
func isPlainGet(args [][]byte) bool {
	return len(args) == 2 && len(args[0]) == 3 &&
		(args[0][0] == 'G' || args[0][0] == 'g') &&
		(args[0][1] == 'E' || args[0][1] == 'e') &&
		(args[0][2] == 'T' || args[0][2] == 't')
}

// runGetBurst executes a run of consecutive pipelined GETs, fanning the
// engine reads across a bounded worker pool and writing replies in
// command order. Every read still passes through Backend.Get, so the
// per-op metrics, read SLO and slowlog see burst traffic exactly like
// serial traffic.
func (c *conn) runGetBurst(ctx context.Context, keys [][]byte) {
	if len(keys) == 1 {
		val, err := c.srv.backend.Get(ctx, keys[0], c.version)
		c.writeGetReply(val, err)
		return
	}
	type result struct {
		val []byte
		err error
	}
	results := make([]result, len(keys))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < min(len(keys), getBurstWorkers); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(keys) {
					return
				}
				results[i].val, results[i].err = c.srv.backend.Get(ctx, keys[i], c.version)
			}
		}()
	}
	wg.Wait()
	for _, r := range results {
		c.writeGetReply(r.val, r.err)
	}
}

// dispatch routes one command, honoring MULTI queueing.
func (c *conn) dispatch(ctx context.Context, args [][]byte) {
	name := strings.ToUpper(string(args[0]))
	if c.multi {
		switch name {
		case "MULTI":
			c.w.WriteError(ClassErr, "MULTI calls can not be nested")
		case "EXEC":
			c.exec(ctx)
		case "DISCARD":
			c.resetMulti()
			c.w.WriteSimple("OK")
		case "QUIT":
			c.w.WriteSimple("OK")
			c.closing = true
		default:
			if err := validateQueued(name, args); err != nil {
				c.aborted = true
				c.w.WriteError(ClassErr, err.Error())
				return
			}
			c.queue = append(c.queue, queuedCmd{name: name, args: args})
			c.w.WriteSimple("QUEUED")
		}
		return
	}
	switch name {
	case "MULTI":
		c.multi = true
		c.w.WriteSimple("OK")
	case "EXEC":
		c.w.WriteError(ClassErr, "EXEC without MULTI")
	case "DISCARD":
		c.w.WriteError(ClassErr, "DISCARD without MULTI")
	case "QUIT":
		c.w.WriteSimple("OK")
		c.closing = true
	default:
		c.run(ctx, name, args)
	}
}

// resetMulti leaves transaction mode and drops the queue.
func (c *conn) resetMulti() {
	c.multi = false
	c.aborted = false
	c.queue = nil
}

// wrongArity is the canonical Redis arity complaint.
func wrongArity(name string) error {
	return fmt.Errorf("wrong number of arguments for '%s' command", strings.ToLower(name))
}

// validateQueued vets one command at MULTI queue time. Everything that
// can be rejected without touching the engine is rejected here, which
// is what makes a failing EXEC atomic: a transaction with any invalid
// command aborts as a whole before a single sub-op reaches the engine.
func validateQueued(name string, args [][]byte) error {
	switch name {
	case "GET", "SET", "DEL", "MGET", "MSET", "EXISTS", "PING", "ECHO", "INFO", "DBSIZE", "COMMAND":
		return validateArity(name, args)
	case "SELECT":
		return errors.New("SELECT inside MULTI is not supported")
	}
	return fmt.Errorf("unknown command '%s'", strings.ToLower(name))
}

// validateArity vets argument counts and protocol-level size limits.
func validateArity(name string, args [][]byte) error {
	switch name {
	case "GET", "ECHO", "SELECT":
		if len(args) != 2 {
			return wrongArity(name)
		}
	case "SET":
		if len(args) != 3 {
			return wrongArity(name)
		}
	case "DEL", "MGET", "EXISTS":
		if len(args) < 2 {
			return wrongArity(name)
		}
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			return wrongArity(name)
		}
	case "PING", "INFO":
		if len(args) > 2 {
			return wrongArity(name)
		}
	case "DBSIZE":
		if len(args) != 1 {
			return wrongArity(name)
		}
	}
	for _, a := range args[1:] {
		if len(a) > server.MaxKeyLen && name != "SET" && name != "MSET" && name != "ECHO" {
			return fmt.Errorf("key exceeds %d bytes", server.MaxKeyLen)
		}
	}
	if name == "SET" || name == "MSET" {
		for i := 1; i < len(args); i += 2 {
			if len(args[i]) > server.MaxKeyLen {
				return fmt.Errorf("key exceeds %d bytes", server.MaxKeyLen)
			}
		}
	}
	return nil
}

// run executes one non-transactional command and writes its reply.
func (c *conn) run(ctx context.Context, name string, args [][]byte) {
	if err := validateArity(name, args); err != nil {
		c.w.WriteError(ClassErr, err.Error())
		return
	}
	b := c.srv.backend
	switch name {
	case "PING":
		if len(args) == 2 {
			c.w.WriteBulk(args[1])
			return
		}
		b.Ping(ctx)
		c.w.WriteSimple("PONG")
	case "ECHO":
		c.w.WriteBulk(args[1])
	case "GET":
		val, err := b.Get(ctx, args[1], c.version)
		c.writeGetReply(val, err)
	case "SET":
		if err := b.Put(ctx, args[1], c.version, args[2], false); err != nil {
			c.w.WriteError(classify(err), err.Error())
			return
		}
		c.w.WriteSimple("OK")
	case "DEL":
		removed := 0
		for _, key := range args[1:] {
			err := b.Del(ctx, key, c.version)
			switch {
			case err == nil:
				removed++
			case errors.Is(err, core.ErrNotFound), errors.Is(err, core.ErrDeleted):
				// Absent keys are not an error for DEL.
			default:
				c.w.WriteError(classify(err), err.Error())
				return
			}
		}
		c.w.WriteInt(int64(removed))
	case "EXISTS":
		n := 0
		for _, key := range args[1:] {
			if ok, _ := b.Has(ctx, key, c.version); ok {
				n++
			}
		}
		c.w.WriteInt(int64(n))
	case "MGET":
		c.w.WriteArrayHeader(len(args) - 1)
		for _, key := range args[1:] {
			val, err := b.Get(ctx, key, c.version)
			if err != nil {
				c.w.WriteNil()
				continue
			}
			c.w.WriteBulk(val)
		}
	case "MSET":
		ops := make([]server.BatchOp, 0, (len(args)-1)/2)
		for i := 1; i+1 < len(args); i += 2 {
			ops = append(ops, server.BatchOp{Op: server.OpPut, Version: c.version, Key: args[i], Value: args[i+1]})
		}
		// MSET is atomic in Redis; commit it the way EXEC does.
		if _, err := b.AtomicBatch(ctx, ops); err != nil {
			c.w.WriteError(classify(err), err.Error())
			return
		}
		c.w.WriteSimple("OK")
	case "SELECT":
		idx, err := strconv.Atoi(string(args[1]))
		if err != nil || idx < 0 {
			c.w.WriteError(ClassErr, "invalid DB index")
			return
		}
		c.version = VersionForDB(idx)
		c.w.WriteSimple("OK")
	case "DBSIZE":
		c.w.WriteInt(int64(b.KeyCount(c.version)))
	case "INFO":
		section := ""
		if len(args) == 2 {
			section = strings.ToLower(string(args[1]))
		}
		c.w.WriteBulk(c.info(ctx, section))
	case "COMMAND":
		// redis-cli probes COMMAND DOCS on connect; an empty array
		// keeps it (and most client libraries) happy.
		c.w.WriteArrayHeader(0)
	default:
		c.w.WriteError(ClassErr, fmt.Sprintf("unknown command '%s'", strings.ToLower(name)))
	}
}

// writeGetReply encodes a Get outcome: missing and deleted keys answer
// the canonical nil bulk, every other failure is an error reply.
func (c *conn) writeGetReply(val []byte, err error) {
	switch {
	case err == nil:
		c.w.WriteBulk(val)
	case errors.Is(err, core.ErrNotFound), errors.Is(err, core.ErrDeleted):
		c.w.WriteNil()
	default:
		c.w.WriteError(classify(err), err.Error())
	}
}

// exec commits the MULTI queue. All mutations across the queue become
// ONE OpBatch committed through Backend.AtomicBatch — the same code
// path, server.req.batch metrics and trace shape as a native v2 batch
// frame — and the per-command replies are reconstructed from the batch
// results. Reads execute after the commit, so a transaction's reads
// observe its own writes wherever they appear in the queue. A
// validation failure (or any queue-time error) aborts the whole
// transaction before a single sub-op reaches the engine.
func (c *conn) exec(ctx context.Context) {
	queue := c.queue
	aborted := c.aborted
	c.resetMulti()
	if aborted {
		c.w.WriteError(ClassExecAbort, "Transaction discarded because of previous errors.")
		return
	}
	// First pass: gather every mutation into one batch, remembering
	// which sub-op range answers which queued command.
	type slot struct{ start, n int }
	slots := make([]slot, len(queue))
	var ops []server.BatchOp
	for i, cmd := range queue {
		slots[i] = slot{start: -1}
		switch cmd.name {
		case "SET":
			slots[i] = slot{start: len(ops), n: 1}
			ops = append(ops, server.BatchOp{Op: server.OpPut, Version: c.version, Key: cmd.args[1], Value: cmd.args[2]})
		case "DEL":
			slots[i] = slot{start: len(ops), n: len(cmd.args) - 1}
			for _, key := range cmd.args[1:] {
				ops = append(ops, server.BatchOp{Op: server.OpDel, Version: c.version, Key: key})
			}
		case "MSET":
			n := 0
			for j := 1; j+1 < len(cmd.args); j += 2 {
				ops = append(ops, server.BatchOp{Op: server.OpPut, Version: c.version, Key: cmd.args[j], Value: cmd.args[j+1]})
				n++
			}
			slots[i] = slot{start: len(ops) - n, n: n}
		}
	}
	var results []server.BatchResult
	if len(ops) > 0 {
		var err error
		results, err = c.srv.backend.AtomicBatch(ctx, ops)
		if results == nil && err != nil {
			// Validation rejected the batch: nothing was applied.
			c.w.WriteError(ClassExecAbort, "Transaction discarded: "+err.Error())
			return
		}
	}
	// Second pass: one reply per queued command, in queue order.
	c.w.WriteArrayHeader(len(queue))
	for i, cmd := range queue {
		if slots[i].start < 0 {
			c.run(ctx, cmd.name, cmd.args)
			continue
		}
		c.writeBatchedReply(cmd, results[slots[i].start:slots[i].start+slots[i].n])
	}
}

// writeBatchedReply reconstructs one queued mutation's reply from its
// slice of batch results.
func (c *conn) writeBatchedReply(cmd queuedCmd, results []server.BatchResult) {
	switch cmd.name {
	case "SET", "MSET":
		for _, r := range results {
			if r.Err != nil {
				c.w.WriteError(classify(r.Err), r.Err.Error())
				return
			}
		}
		c.w.WriteSimple("OK")
	case "DEL":
		removed := 0
		for _, r := range results {
			switch {
			case r.Err == nil:
				removed++
			case errors.Is(r.Err, core.ErrNotFound), errors.Is(r.Err, core.ErrDeleted):
				// Absent keys are not an error for DEL.
			default:
				c.w.WriteError(classify(r.Err), r.Err.Error())
				return
			}
		}
		c.w.WriteInt(int64(removed))
	}
}

// info renders the INFO reply from the shared metrics registry and the
// engine's stats — the RESP view of the same numbers /metrics and
// OpMetrics serve. An empty section selects every section.
func (c *conn) info(ctx context.Context, section string) []byte {
	b := c.srv.backend
	var sb strings.Builder
	want := func(name string) bool { return section == "" || section == name }
	if want("server") {
		sb.WriteString("# Server\r\n")
		fmt.Fprintf(&sb, "node:%s\r\nprotocol:resp2\r\nengine:qindb\r\n\r\n", c.srv.node)
	}
	if want("clients") {
		st, err := b.Stats(ctx)
		if err == nil {
			sb.WriteString("# Clients\r\n")
			fmt.Fprintf(&sb, "connected_clients:%d\r\n\r\n", st.Conns)
		}
	}
	if want("stats") {
		sb.WriteString("# Stats\r\n")
		snap := b.MetricsSnapshot()
		names := make([]string, 0, len(snap))
		for name := range snap {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			field := strings.ReplaceAll(name, ".", "_")
			switch v := snap[name].(type) {
			case int64:
				fmt.Fprintf(&sb, "%s:%d\r\n", field, v)
			case float64:
				fmt.Fprintf(&sb, "%s:%s\r\n", field, strconv.FormatFloat(v, 'g', -1, 64))
			case metrics.Snapshot:
				fmt.Fprintf(&sb, "%s_count:%d\r\n", field, v.Count)
			}
		}
		sb.WriteString("\r\n")
	}
	if want("keyspace") {
		sb.WriteString("# Keyspace\r\n")
		for _, v := range b.Versions() {
			if v == 0 {
				continue
			}
			fmt.Fprintf(&sb, "db%d:keys=%d,engine_version=%d\r\n", v-1, b.KeyCount(v), v)
		}
	}
	return []byte(sb.String())
}
