package resp

import (
	"errors"
	"strings"

	"directload/internal/core"
)

// RESP error classes. Redis convention puts a one-word class in front
// of the message (-WRONGTYPE, -EXECABORT, ...); the engine sentinels
// get their own classes so the mapping is reversible: a client that
// reads -NOTFOUND back can reconstruct an error for which
// errors.Is(err, core.ErrNotFound) holds, exactly like the binary
// wire's StatusError does for StatusNotFound.
const (
	ClassErr       = "ERR"
	ClassNotFound  = "NOTFOUND"
	ClassDeleted   = "DELETED"
	ClassExecAbort = "EXECABORT"
)

// ReplyError is a RESP error reply (-CLASS msg) surfaced to a caller.
// It is the RESP twin of server.StatusError: errors.Is maps it onto the
// engine sentinels, so both protocols report errors identically.
type ReplyError struct {
	Class string // ERR, NOTFOUND, DELETED, EXECABORT, ...
	Msg   string
}

// Error renders the reply the way it crossed the wire.
func (e *ReplyError) Error() string {
	if e.Msg == "" {
		return e.Class
	}
	return e.Class + " " + e.Msg
}

// Is maps the error class onto the engine sentinels, making errors.Is
// transparent across the RESP wire.
func (e *ReplyError) Is(target error) bool {
	switch target {
	case core.ErrNotFound:
		return e.Class == ClassNotFound
	case core.ErrDeleted:
		return e.Class == ClassDeleted
	}
	return false
}

// classify maps an engine error onto its RESP error class — the
// forward half of the mapping ReplyError.Is reverses.
func classify(err error) string {
	switch {
	case errors.Is(err, core.ErrNotFound):
		return ClassNotFound
	case errors.Is(err, core.ErrDeleted):
		return ClassDeleted
	}
	return ClassErr
}

// parseErrorLine reconstructs a *ReplyError from the payload of an
// error reply (the bytes after '-').
func parseErrorLine(line string) *ReplyError {
	class, msg, ok := strings.Cut(line, " ")
	if !ok {
		return &ReplyError{Class: line}
	}
	return &ReplyError{Class: class, Msg: msg}
}
