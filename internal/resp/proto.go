// Package resp gives the engine a Redis-compatible front door: a RESP2
// listener that any off-the-shelf Redis client or load generator
// (redis-cli, redis-benchmark, memtier) can speak to, layered over the
// transport-agnostic server.Backend that the native binary wire also
// uses. One engine, one set of server.* metrics, one slowlog, one trace
// timeline — two protocols.
//
// # Wire format (RESP2)
//
// A command is an array of bulk strings:
//
//	*2\r\n$3\r\nGET\r\n$3\r\nkey\r\n
//
// or, for hand-typed telnet sessions, an inline command — a single
// whitespace-separated line:
//
//	GET key\r\n
//
// Replies use the five RESP2 types: simple strings (+OK\r\n), errors
// (-ERR message\r\n), integers (:42\r\n), bulk strings
// ($5\r\nhello\r\n, with $-1\r\n as the nil bulk), and arrays.
//
// # Command surface
//
// GET, SET, DEL, MGET, MSET, EXISTS, PING, ECHO, SELECT, INFO, DBSIZE,
// COMMAND, MULTI, EXEC, DISCARD, QUIT. SELECT maps the Redis database
// index onto an engine data version (index n → version n+1, so the
// default database 0 is the conventional version 1). MULTI/EXEC queues
// mutations and commits them as one atomic OpBatch through the shared
// Backend — the same code path, metrics and trace shape as a native v2
// batch frame. See DESIGN.md §12.
package resp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Protocol limits. Bulk payloads share the binary wire's value cap so a
// value writable over one front door is writable over the other; the
// arg-count and inline caps bound what a malicious client can make the
// parser allocate.
const (
	// MaxBulkLen caps one bulk-string payload.
	MaxBulkLen = 64 << 20
	// MaxArgs caps the elements of one command array.
	MaxArgs = 1 << 20
	// maxInlineLen caps one inline command line.
	maxInlineLen = 64 << 10
)

// Protocol errors.
var (
	// ErrProtocol reports a malformed RESP frame; the connection is no
	// longer in sync and must be torn down.
	ErrProtocol = errors.New("resp: protocol error")
)

// Reader parses RESP2 commands off one connection. It accepts both
// array-of-bulk-strings framing and inline commands, like a real Redis
// server.
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps r for command parsing.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// Buffered reports the bytes already read off the wire but not yet
// parsed — the server's cue to keep executing before flushing replies,
// which is what makes pipelined clients fast.
func (r *Reader) Buffered() int {
	return r.br.Buffered()
}

// readLine reads one \r\n-terminated line, excluding the terminator.
// Bare \n is rejected: RESP lines always end \r\n.
func (r *Reader) readLine(max int) ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, fmt.Errorf("%w: line exceeds %d bytes", ErrProtocol, max)
	}
	if err != nil {
		return nil, err
	}
	if len(line) > max {
		return nil, fmt.Errorf("%w: line exceeds %d bytes", ErrProtocol, max)
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("%w: line not \\r\\n terminated", ErrProtocol)
	}
	return line[:len(line)-2], nil
}

// ReadCommand parses one command, returning its arguments (the command
// name is args[0]). An empty inline line returns (nil, nil); callers
// skip it, as Redis does. Protocol-level corruption returns an error
// wrapping ErrProtocol, after which the stream must be abandoned.
func (r *Reader) ReadCommand() ([][]byte, error) {
	first, err := r.br.Peek(1)
	if err != nil {
		return nil, err
	}
	if first[0] != '*' {
		return r.readInline()
	}
	header, err := r.readLine(maxInlineLen)
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(string(header[1:]))
	if err != nil {
		return nil, fmt.Errorf("%w: bad array header %q", ErrProtocol, header)
	}
	if n < 0 || n > MaxArgs {
		return nil, fmt.Errorf("%w: array of %d elements", ErrProtocol, n)
	}
	args := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		arg, err := r.readBulk()
		if err != nil {
			return nil, err
		}
		args = append(args, arg)
	}
	return args, nil
}

// readBulk parses one $len\r\n<payload>\r\n bulk string.
func (r *Reader) readBulk() ([]byte, error) {
	header, err := r.readLine(maxInlineLen)
	if err != nil {
		return nil, err
	}
	if len(header) < 2 || header[0] != '$' {
		return nil, fmt.Errorf("%w: expected bulk string, got %q", ErrProtocol, header)
	}
	n, err := strconv.Atoi(string(header[1:]))
	if err != nil || n < 0 || n > MaxBulkLen {
		return nil, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, header)
	}
	var buf []byte
	if n+2 <= 64<<10 {
		buf = make([]byte, n+2)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return nil, err
		}
	} else {
		// Large declared lengths grow with the bytes actually received
		// rather than allocating up front, so a client declaring a
		// 64 MB bulk and sending nothing cannot make the server
		// allocate 64 MB.
		var payload bytes.Buffer
		payload.Grow(64 << 10)
		if _, err := io.CopyN(&payload, r.br, int64(n+2)); err != nil {
			return nil, err
		}
		buf = payload.Bytes()
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, fmt.Errorf("%w: bulk payload not \\r\\n terminated", ErrProtocol)
	}
	return buf[:n], nil
}

// readInline parses one whitespace-separated inline command line.
func (r *Reader) readInline() ([][]byte, error) {
	line, err := r.readLine(maxInlineLen)
	if err != nil {
		return nil, err
	}
	fields := bytes.Fields(line)
	if len(fields) == 0 {
		return nil, nil
	}
	args := make([][]byte, len(fields))
	for i, f := range fields {
		args[i] = append([]byte(nil), f...)
	}
	return args, nil
}

// AppendCommand appends the canonical RESP2 encoding of a command — an
// array of bulk strings — to buf. Inline commands re-encode through
// this form, which is the canonical-re-encode property the fuzz target
// checks.
func AppendCommand(buf []byte, args ...[]byte) []byte {
	buf = append(buf, '*')
	buf = strconv.AppendInt(buf, int64(len(args)), 10)
	buf = append(buf, '\r', '\n')
	for _, a := range args {
		buf = append(buf, '$')
		buf = strconv.AppendInt(buf, int64(len(a)), 10)
		buf = append(buf, '\r', '\n')
		buf = append(buf, a...)
		buf = append(buf, '\r', '\n')
	}
	return buf
}

// Writer encodes RESP2 replies onto one connection. Replies accumulate
// in a buffer; the serving loop flushes once no further commands are
// buffered, so a pipelined burst costs one syscall, not one per reply.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter wraps w for reply encoding.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// WriteSimple writes a simple string reply (+s).
func (w *Writer) WriteSimple(s string) error {
	w.bw.WriteByte('+')
	w.bw.WriteString(s)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteError writes an error reply (-CLASS msg). Newlines in msg are
// flattened: an error reply is always exactly one line.
func (w *Writer) WriteError(class, msg string) error {
	w.bw.WriteByte('-')
	w.bw.WriteString(class)
	if msg != "" {
		w.bw.WriteByte(' ')
		for i := 0; i < len(msg); i++ {
			c := msg[i]
			if c == '\r' || c == '\n' {
				c = ' '
			}
			w.bw.WriteByte(c)
		}
	}
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteInt writes an integer reply (:n).
func (w *Writer) WriteInt(n int64) error {
	w.bw.WriteByte(':')
	w.bw.Write(strconv.AppendInt(nil, n, 10))
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteBulk writes a bulk string reply; a nil slice writes the nil bulk
// ($-1), the canonical "no such key" reply.
func (w *Writer) WriteBulk(b []byte) error {
	if b == nil {
		return w.WriteNil()
	}
	w.bw.WriteByte('$')
	w.bw.Write(strconv.AppendInt(nil, int64(len(b)), 10))
	w.bw.WriteString("\r\n")
	w.bw.Write(b)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteNil writes the nil bulk string ($-1).
func (w *Writer) WriteNil() error {
	_, err := w.bw.WriteString("$-1\r\n")
	return err
}

// WriteArrayHeader opens an array reply of n elements; the caller
// writes the elements next. n < 0 writes the nil array (*-1).
func (w *Writer) WriteArrayHeader(n int) error {
	w.bw.WriteByte('*')
	w.bw.Write(strconv.AppendInt(nil, int64(n), 10))
	_, err := w.bw.WriteString("\r\n")
	return err
}

// Flush pushes buffered replies onto the wire.
func (w *Writer) Flush() error {
	return w.bw.Flush()
}
