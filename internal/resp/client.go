package resp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
)

// Reply is one decoded RESP2 reply. Type is the wire type byte
// ('+', '-', ':', '$', '*'); exactly one of the payload fields is
// meaningful for each type. A nil bulk decodes as Type '$' with a nil
// Bulk; an error reply decodes into Err (a *ReplyError, so errors.Is
// maps it back onto the engine sentinels).
type Reply struct {
	Type  byte
	Str   string  // '+'
	Int   int64   // ':'
	Bulk  []byte  // '$' (nil for the nil bulk)
	Array []Reply // '*' (nil for the nil array)
	Err   error   // '-'
}

// IsNil reports whether the reply is the nil bulk or nil array.
func (r Reply) IsNil() bool {
	switch r.Type {
	case '$':
		return r.Bulk == nil
	case '*':
		return r.Array == nil
	}
	return false
}

// Client is a minimal RESP2 client: enough to exercise the front door
// from tests, benchmarks and interop checks without an external Redis
// library. Do issues one round trip; Send/Flush/Receive pipeline.
// Not safe for concurrent use.
type Client struct {
	nc net.Conn
	bw *bufio.Writer
	br *bufio.Reader
}

// Dial connects to a RESP server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	return &Client{nc: nc, bw: bufio.NewWriter(nc), br: bufio.NewReader(nc)}
}

// Close tears down the connection.
func (c *Client) Close() error {
	return c.nc.Close()
}

// Send queues one command without flushing — the pipelining half of the
// API. Pair with Flush and one Receive per Send.
func (c *Client) Send(args ...[]byte) error {
	_, err := c.bw.Write(AppendCommand(nil, args...))
	return err
}

// SendStrings is Send for string arguments.
func (c *Client) SendStrings(args ...string) error {
	byteArgs := make([][]byte, len(args))
	for i, a := range args {
		byteArgs[i] = []byte(a)
	}
	return c.Send(byteArgs...)
}

// Flush pushes queued commands onto the wire.
func (c *Client) Flush() error {
	return c.bw.Flush()
}

// Receive decodes the next reply. An error reply decodes successfully
// into Reply.Err; the error return reports transport or protocol
// failures only.
func (c *Client) Receive() (Reply, error) {
	return c.readReply()
}

// Do issues one command and waits for its reply.
func (c *Client) Do(args ...string) (Reply, error) {
	if err := c.SendStrings(args...); err != nil {
		return Reply{}, err
	}
	if err := c.Flush(); err != nil {
		return Reply{}, err
	}
	return c.Receive()
}

// readReplyLine reads one \r\n-terminated reply line.
func (c *Client) readReplyLine() ([]byte, error) {
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("%w: reply line not \\r\\n terminated", ErrProtocol)
	}
	return line[:len(line)-2], nil
}

func (c *Client) readReply() (Reply, error) {
	line, err := c.readReplyLine()
	if err != nil {
		return Reply{}, err
	}
	if len(line) == 0 {
		return Reply{}, fmt.Errorf("%w: empty reply line", ErrProtocol)
	}
	switch line[0] {
	case '+':
		return Reply{Type: '+', Str: string(line[1:])}, nil
	case '-':
		return Reply{Type: '-', Err: parseErrorLine(string(line[1:]))}, nil
	case ':':
		n, err := strconv.ParseInt(string(line[1:]), 10, 64)
		if err != nil {
			return Reply{}, fmt.Errorf("%w: bad integer reply %q", ErrProtocol, line)
		}
		return Reply{Type: ':', Int: n}, nil
	case '$':
		n, err := strconv.Atoi(string(line[1:]))
		if err != nil || n < -1 || n > MaxBulkLen {
			return Reply{}, fmt.Errorf("%w: bad bulk header %q", ErrProtocol, line)
		}
		if n == -1 {
			return Reply{Type: '$'}, nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(c.br, buf); err != nil {
			return Reply{}, err
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Reply{}, fmt.Errorf("%w: bulk payload not \\r\\n terminated", ErrProtocol)
		}
		return Reply{Type: '$', Bulk: buf[:n]}, nil
	case '*':
		n, err := strconv.Atoi(string(line[1:]))
		if err != nil || n < -1 || n > MaxArgs {
			return Reply{}, fmt.Errorf("%w: bad array header %q", ErrProtocol, line)
		}
		if n == -1 {
			return Reply{Type: '*'}, nil
		}
		elems := make([]Reply, n)
		for i := range elems {
			elems[i], err = c.readReply()
			if err != nil {
				return Reply{}, err
			}
		}
		return Reply{Type: '*', Array: elems}, nil
	}
	return Reply{}, fmt.Errorf("%w: unknown reply type %q", ErrProtocol, line[0])
}
