package resp

import (
	"fmt"
	"net"
	"testing"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/server"
	"directload/internal/ssd"
)

// benchRESP starts a RESP listener over a fresh engine and returns a
// connected client.
func benchRESP(b *testing.B) *Client {
	b.Helper()
	dev, err := ssd.NewDevice(ssd.DefaultConfig(1 << 30))
	if err != nil {
		b.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF: aof.Config{FileSize: 16 << 20, GCThreshold: 0.25}, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := New(server.NewBackend(db))
	srv.SetLogf(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	b.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	return cl
}

// benchWindow is the pipelining depth: how many commands ride on the
// wire before the benchmark drains their replies. redis-benchmark's -P
// flag is the same knob.
const benchWindow = 128

func benchRESPKey(i int) string {
	return fmt.Sprintf("bench/%05d", i%10000)
}

// BenchmarkRESPPipelinedSet measures pipelined SET throughput through
// the RESP front door — the number to hold against the native wire's
// pipelined puts in BENCH_directload.json.
func BenchmarkRESPPipelinedSet(b *testing.B) {
	cl := benchRESP(b)
	val := []byte("payload-0123456789abcdef-0123456789abcdef")
	b.ResetTimer()
	inFlight := 0
	drain := func() {
		if err := cl.Flush(); err != nil {
			b.Fatal(err)
		}
		for ; inFlight > 0; inFlight-- {
			r, err := cl.Receive()
			if err != nil {
				b.Fatal(err)
			}
			if r.Str != "OK" {
				b.Fatalf("SET = %+v", r)
			}
		}
	}
	for n := 0; n < b.N; n++ {
		if err := cl.Send([]byte("SET"), []byte(benchRESPKey(n)), val); err != nil {
			b.Fatal(err)
		}
		if inFlight++; inFlight == benchWindow {
			drain()
		}
	}
	drain()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkRESPPipelinedGet measures pipelined GET throughput over a
// pre-populated keyspace.
func BenchmarkRESPPipelinedGet(b *testing.B) {
	cl := benchRESP(b)
	val := []byte("payload-0123456789abcdef-0123456789abcdef")
	for i := 0; i < 10000; i++ {
		if err := cl.Send([]byte("SET"), []byte(benchRESPKey(i)), val); err != nil {
			b.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if r, err := cl.Receive(); err != nil || r.Str != "OK" {
			b.Fatalf("seed SET %d = %+v, %v", i, r, err)
		}
	}
	b.ResetTimer()
	inFlight := 0
	drain := func() {
		if err := cl.Flush(); err != nil {
			b.Fatal(err)
		}
		for ; inFlight > 0; inFlight-- {
			r, err := cl.Receive()
			if err != nil {
				b.Fatal(err)
			}
			if r.IsNil() {
				b.Fatal("GET returned nil for a seeded key")
			}
		}
	}
	for n := 0; n < b.N; n++ {
		if err := cl.Send([]byte("GET"), []byte(benchRESPKey(n))); err != nil {
			b.Fatal(err)
		}
		if inFlight++; inFlight == benchWindow {
			drain()
		}
	}
	drain()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}
