package blockfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"directload/internal/ssd"
)

func testDevice(t *testing.T, blocks int) *ssd.Device {
	t.Helper()
	cfg := ssd.Config{
		PageSize:      4096,
		PagesPerBlock: 64,
		Blocks:        blocks,
		Latency: ssd.LatencyModel{
			PageRead:   80 * time.Microsecond,
			PageWrite:  200 * time.Microsecond,
			BlockErase: 1500 * time.Microsecond,
			Channels:   1,
		},
	}
	d, err := ssd.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// eachFS runs the test against both backends.
func eachFS(t *testing.T, fn func(t *testing.T, fs FS)) {
	t.Run("native", func(t *testing.T) {
		fn(t, NewNativeFS(testDevice(t, 64)))
	})
	t.Run("ftl", func(t *testing.T) {
		d := testDevice(t, 64)
		f, err := ssd.NewFTL(d, 48*64)
		if err != nil {
			t.Fatal(err)
		}
		fn(t, NewFTLFS(f))
	})
}

func TestWriteReadRoundTrip(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		w, err := fs.Create("f1")
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 10000) // crosses page boundaries
		rand.New(rand.NewSource(1)).Read(data)
		off, _, err := w.Append(data)
		if err != nil || off != 0 {
			t.Fatalf("Append = %d, %v", off, err)
		}
		off2, _, _ := w.Append([]byte("tail"))
		if off2 != 10000 {
			t.Fatalf("second Append offset = %d, want 10000", off2)
		}
		if _, err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := fs.Open("f1")
		if err != nil {
			t.Fatal(err)
		}
		if r.Size() != 10004 {
			t.Fatalf("Size = %d, want 10004", r.Size())
		}
		got := make([]byte, 10000)
		n, _, err := r.ReadAt(got, 0)
		if err != nil || n != 10000 {
			t.Fatalf("ReadAt = %d, %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round-trip mismatch")
		}
		small := make([]byte, 4)
		if _, _, err := r.ReadAt(small, 10000); err != nil {
			t.Fatal(err)
		}
		if string(small) != "tail" {
			t.Fatalf("tail read = %q", small)
		}
	})
}

func TestReadWhileWriting(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		w, _ := fs.Create("live")
		w.Append([]byte("hello "))
		r, err := fs.Open("live")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 6)
		if _, _, err := r.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "hello " {
			t.Fatalf("read unflushed tail = %q", buf)
		}
		w.Append([]byte("world"))
		buf = make([]byte, 11)
		r.ReadAt(buf, 0)
		if string(buf) != "hello world" {
			t.Fatalf("after second append = %q", buf)
		}
		w.Close()
	})
}

func TestTailReadIsFree(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		w, _ := fs.Create("t")
		w.Append([]byte("buffered"))
		r, _ := fs.Open("t")
		buf := make([]byte, 8)
		_, cost, err := r.ReadAt(buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if cost != 0 {
			t.Fatalf("tail read cost = %v, want 0 (memory hit)", cost)
		}
		w.Close()
		// After close the page is on flash: reads now cost device time.
		_, cost, _ = r.ReadAt(buf, 0)
		if cost == 0 {
			t.Fatal("flash read should have non-zero cost")
		}
	})
}

func TestOffsetErrors(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		w, _ := fs.Create("f")
		w.Append([]byte("abc"))
		w.Close()
		r, _ := fs.Open("f")
		buf := make([]byte, 1)
		if _, _, err := r.ReadAt(buf, -1); !errors.Is(err, ErrOffset) {
			t.Fatalf("negative offset err = %v", err)
		}
		if _, _, err := r.ReadAt(buf, 3); !errors.Is(err, ErrOffset) {
			t.Fatalf("offset at EOF err = %v", err)
		}
		// Short read at the boundary returns available prefix.
		buf = make([]byte, 10)
		n, _, err := r.ReadAt(buf, 1)
		if err != nil || n != 2 {
			t.Fatalf("short read = %d, %v; want 2, nil", n, err)
		}
	})
}

func TestCreateExistingFails(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		w, _ := fs.Create("dup")
		w.Close()
		if _, err := fs.Create("dup"); !errors.Is(err, ErrExists) {
			t.Fatalf("want ErrExists, got %v", err)
		}
	})
}

func TestOpenMissing(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		if _, err := fs.Open("nope"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("want ErrNotFound, got %v", err)
		}
		if _, err := fs.Size("nope"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Size want ErrNotFound, got %v", err)
		}
		if _, err := fs.Remove("nope"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Remove want ErrNotFound, got %v", err)
		}
	})
}

func TestRemoveOpenWriterFails(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		fs.Create("open")
		if _, err := fs.Remove("open"); !errors.Is(err, ErrWriterOpen) {
			t.Fatalf("want ErrWriterOpen, got %v", err)
		}
	})
}

func TestWriterClosedErrors(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		w, _ := fs.Create("c")
		w.Close()
		if _, _, err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
			t.Fatalf("Append after close err = %v", err)
		}
		if _, err := w.Sync(); !errors.Is(err, ErrClosed) {
			t.Fatalf("Sync after close err = %v", err)
		}
		if _, err := w.Close(); !errors.Is(err, ErrClosed) {
			t.Fatalf("double Close err = %v", err)
		}
	})
}

func TestListAndSize(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		for _, n := range []string{"b", "a", "c"} {
			w, _ := fs.Create(n)
			w.Append(make([]byte, 5000))
			w.Close()
		}
		got := fs.List()
		if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
			t.Fatalf("List = %v", got)
		}
		sz, _ := fs.Size("a")
		if sz != 5000 {
			t.Fatalf("Size = %d", sz)
		}
	})
}

func TestRemoveFreesSpace(t *testing.T) {
	// Native backend: removing a file must return its blocks to the
	// device free list immediately.
	dev := testDevice(t, 8)
	fs := NewNativeFS(dev)
	w, _ := fs.Create("big")
	w.Append(make([]byte, 3*256<<10)) // 3 blocks
	w.Close()
	if free := dev.FreeBlocks(); free != 5 {
		t.Fatalf("FreeBlocks = %d, want 5", free)
	}
	if _, err := fs.Remove("big"); err != nil {
		t.Fatal(err)
	}
	if free := dev.FreeBlocks(); free != 8 {
		t.Fatalf("FreeBlocks after Remove = %d, want 8", free)
	}
	if fs.UsedBytes() != 0 {
		t.Fatalf("UsedBytes = %d, want 0", fs.UsedBytes())
	}
}

func TestNativeRemoveZeroMigration(t *testing.T) {
	// The core paper claim for block-aligned files: create/delete churn
	// causes zero valid-page migration, so sys writes == logical writes.
	dev := testDevice(t, 32)
	fs := NewNativeFS(dev)
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("aof-%d", i)
		w, _ := fs.Create(name)
		w.Append(make([]byte, 5*256<<10))
		w.Close()
		if i >= 3 {
			fs.Remove(fmt.Sprintf("aof-%d", i-3))
		}
	}
	st := dev.Stats()
	wantWrites := int64(20 * 5 * 256 << 10)
	if st.SysWriteBytes != wantWrites {
		t.Fatalf("SysWriteBytes = %d, want exactly %d (no migration)", st.SysWriteBytes, wantWrites)
	}
	if st.SysReadBytes != 0 {
		t.Fatalf("SysReadBytes = %d, want 0", st.SysReadBytes)
	}
}

func TestFTLRemoveCausesGCMigration(t *testing.T) {
	// Counterpart: interleaved files on the FTL share erase blocks, so
	// deleting one forces GC to migrate the survivor's pages eventually.
	dev := testDevice(t, 16)
	ftl, _ := ssd.NewFTL(dev, 10*64)
	fs := NewFTLFS(ftl)
	// Interleave two files page by page so every block holds both.
	wa, _ := fs.Create("a")
	wb, _ := fs.Create("b")
	page := make([]byte, 4096)
	for i := 0; i < 5*64; i++ {
		wa.Append(page)
		wb.Append(page)
	}
	wa.Close()
	wb.Close()
	// Churn: delete and recreate "a" repeatedly. "b" pages keep getting
	// dragged along by GC.
	for r := 0; r < 6; r++ {
		fs.Remove("a")
		w, _ := fs.Create("a")
		for i := 0; i < 5*64; i++ {
			w.Append(page)
		}
		w.Close()
		fs.Remove("a")
		w2, err := fs.Create("a")
		if err != nil {
			t.Fatal(err)
		}
		w2.Close()
		fs.Remove("a")
	}
	if ftl.Stats().MigratedPages == 0 {
		t.Fatal("expected GC migration for interleaved files on FTL")
	}
}

func TestFTLSpaceExhausted(t *testing.T) {
	dev := testDevice(t, 8)
	ftl, _ := ssd.NewFTL(dev, 2*64)
	fs := NewFTLFS(ftl)
	w, _ := fs.Create("f")
	_, _, err := w.Append(make([]byte, 3*256<<10))
	if !errors.Is(err, ErrSpaceExhausted) {
		t.Fatalf("want ErrSpaceExhausted, got %v", err)
	}
}

func TestFTLLPNReuseAfterRemove(t *testing.T) {
	dev := testDevice(t, 8)
	ftl, _ := ssd.NewFTL(dev, 2*64)
	fs := NewFTLFS(ftl)
	for i := 0; i < 10; i++ {
		w, _ := fs.Create("f")
		if _, _, err := w.Append(make([]byte, 256<<10)); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		w.Close()
		if _, err := fs.Remove("f"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUsedBytesCountsPaddedTail(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		w, _ := fs.Create("p")
		w.Append([]byte("x")) // 1 byte -> 1 physical page once padded
		if got := fs.UsedBytes(); got != 4096 {
			t.Fatalf("UsedBytes = %d, want 4096", got)
		}
		w.Close()
		if got := fs.UsedBytes(); got != 4096 {
			t.Fatalf("UsedBytes after close = %d, want 4096", got)
		}
	})
}

func TestSyncFlushesFullPages(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		w, _ := fs.Create("s")
		w.Append(make([]byte, 4096+100))
		// Append already flushed the full page; Sync has nothing extra.
		st := fs.Device().Stats()
		if st.SysWriteBytes != 4096 {
			t.Fatalf("SysWriteBytes = %d, want 4096", st.SysWriteBytes)
		}
		if _, err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if got := fs.Device().Stats().SysWriteBytes; got != 4096 {
			t.Fatalf("Sync flushed partial page: %d", got)
		}
		w.Close() // pads the 100-byte tail
		if got := fs.Device().Stats().SysWriteBytes; got != 8192 {
			t.Fatalf("after Close SysWriteBytes = %d, want 8192", got)
		}
	})
}

// Property: any sequence of appends round-trips through both backends at
// arbitrary read offsets.
func TestQuickAppendReadRoundTrip(t *testing.T) {
	for _, backend := range []string{"native", "ftl"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			quickRoundTrip(t, backend)
		})
	}
}

func quickRoundTrip(t *testing.T, backend string) {
	f := func(chunks [][]byte, seed int64) bool {
		dev, _ := ssd.NewDevice(ssd.Config{
			PageSize: 512, PagesPerBlock: 8, Blocks: 256,
			Latency: ssd.LatencyModel{PageRead: 1, PageWrite: 1, BlockErase: 1, Channels: 1},
		})
		var fs FS
		if backend == "native" {
			fs = NewNativeFS(dev)
		} else {
			ftl, err := ssd.NewFTL(dev, 200*8)
			if err != nil {
				return false
			}
			fs = NewFTLFS(ftl)
		}
		w, _ := fs.Create("f")
		var all []byte
		for _, c := range chunks {
			if len(all)+len(c) > 64<<10 {
				break
			}
			w.Append(c)
			all = append(all, c...)
		}
		w.Close()
		if len(all) == 0 {
			return true
		}
		r, _ := fs.Open("f")
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 16; i++ {
			off := rng.Intn(len(all))
			n := rng.Intn(len(all)-off) + 1
			buf := make([]byte, n)
			got, _, err := r.ReadAt(buf, int64(off))
			if err != nil || got != n || !bytes.Equal(buf, all[off:off+n]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
