package blockfs

import (
	"errors"
	"time"

	"directload/internal/ssd"
)

// NativeFS stores each file in exclusively-owned erase blocks through the
// device's native interface. Files occupy whole blocks; Remove erases
// exactly those blocks. Because no two files ever share a block, device
// garbage collection never migrates a byte — the paper's block-aligned
// layout with zero hardware write amplification.
type NativeFS struct {
	core
	ppb int
}

// NewNativeFS creates a native filesystem over dev.
func NewNativeFS(dev *ssd.Device) *NativeFS {
	fs := &NativeFS{ppb: dev.Config().PagesPerBlock}
	fs.core = core{
		files:    make(map[string]*file),
		pageSize: dev.Config().PageSize,
		dev:      dev,
	}
	fs.core.readPage = fs.readPageRef
	fs.core.writeTail = fs.flushTail
	fs.core.freeFile = fs.releaseFile
	return fs
}

func (fs *NativeFS) readPageRef(ref int32) ([]byte, time.Duration, error) {
	blockID := int(ref) / fs.ppb
	page := int(ref) % fs.ppb
	return fs.dev.ReadPage(ssd.OwnerNative, blockID, page)
}

// flushTail moves every complete page from f.tail onto flash. Runs with
// core.mu held.
func (fs *NativeFS) flushTail(f *file) (time.Duration, error) {
	var total time.Duration
	for len(f.tail) >= fs.pageSize {
		pageInBlock := len(f.pages) % fs.ppb
		var blockID int
		if pageInBlock == 0 {
			id, err := fs.dev.AllocBlock(ssd.OwnerNative)
			if err != nil {
				return total, err
			}
			blockID = id
		} else {
			blockID = int(f.pages[len(f.pages)-1]) / fs.ppb
		}
		cost, err := fs.dev.ProgramPage(ssd.OwnerNative, blockID, pageInBlock, f.tail[:fs.pageSize])
		total += cost
		if err != nil {
			return total, err
		}
		f.pages = append(f.pages, int32(blockID*fs.ppb+pageInBlock))
		f.tail = f.tail[fs.pageSize:]
	}
	if len(f.tail) == 0 {
		f.tail = nil
	}
	return total, nil
}

// releaseFile erases every block the file occupied. All pages in those
// blocks belong to this file, so the erase reclaims them wholesale.
func (fs *NativeFS) releaseFile(f *file) (time.Duration, error) {
	var total time.Duration
	var errs []error
	seen := int32(-1)
	for _, ref := range f.pages {
		blockID := ref / int32(fs.ppb)
		if blockID == seen {
			continue
		}
		seen = blockID
		cost, err := fs.dev.EraseBlock(ssd.OwnerNative, int(blockID))
		total += cost
		if err != nil {
			errs = append(errs, err)
		}
	}
	f.pages = nil
	f.tail = nil
	return total, errors.Join(errs...)
}

var _ FS = (*NativeFS)(nil)

// ErrSpaceExhausted is returned by FTLFS when the logical address space
// is fully allocated to live files.
var ErrSpaceExhausted = errors.New("blockfs: logical space exhausted")

// FTLFS stores files as logical pages of a conventional page-mapped FTL.
// Remove only trims the logical pages; the flash space is reclaimed later
// by device GC, paying the migration cost the paper attributes to
// non-block-aligned layouts.
type FTLFS struct {
	ftl      *ssd.FTL
	freeLPNs []int
	nextLPN  int
	core
}

// NewFTLFS creates a filesystem over a page-mapped FTL.
func NewFTLFS(ftl *ssd.FTL) *FTLFS {
	fs := &FTLFS{ftl: ftl}
	fs.core = core{
		files:    make(map[string]*file),
		pageSize: ftl.Device().Config().PageSize,
		dev:      ftl.Device(),
	}
	fs.core.readPage = fs.readPageRef
	fs.core.writeTail = fs.flushTail
	fs.core.freeFile = fs.releaseFile
	return fs
}

func (fs *FTLFS) readPageRef(ref int32) ([]byte, time.Duration, error) {
	return fs.ftl.Read(int(ref))
}

// allocLPN hands out a free logical page. Runs with core.mu held.
func (fs *FTLFS) allocLPN() (int, error) {
	if n := len(fs.freeLPNs); n > 0 {
		lpn := fs.freeLPNs[n-1]
		fs.freeLPNs = fs.freeLPNs[:n-1]
		return lpn, nil
	}
	if fs.nextLPN >= fs.ftl.LogicalPages() {
		return 0, ErrSpaceExhausted
	}
	lpn := fs.nextLPN
	fs.nextLPN++
	return lpn, nil
}

func (fs *FTLFS) flushTail(f *file) (time.Duration, error) {
	var total time.Duration
	for len(f.tail) >= fs.pageSize {
		lpn, err := fs.allocLPN()
		if err != nil {
			return total, err
		}
		cost, err := fs.ftl.Write(lpn, f.tail[:fs.pageSize])
		total += cost
		if err != nil {
			return total, err
		}
		f.pages = append(f.pages, int32(lpn))
		f.tail = f.tail[fs.pageSize:]
	}
	if len(f.tail) == 0 {
		f.tail = nil
	}
	return total, nil
}

func (fs *FTLFS) releaseFile(f *file) (time.Duration, error) {
	// Trims are metadata-only at the FTL: no device time is charged here;
	// the real cost surfaces later as GC migration of co-located data.
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var errs []error
	for _, ref := range f.pages {
		if err := fs.ftl.Trim(int(ref)); err != nil {
			errs = append(errs, err)
		}
		fs.freeLPNs = append(fs.freeLPNs, int(ref))
	}
	f.pages = nil
	f.tail = nil
	return 0, errors.Join(errs...)
}

var _ FS = (*FTLFS)(nil)
