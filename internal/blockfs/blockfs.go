// Package blockfs provides a minimal append-only file layer over the SSD
// simulator. Storage engines see named files with byte offsets; the two
// backends differ in how bytes map to flash:
//
//   - NativeFS allocates whole erase blocks per file through the device's
//     native interface (paper §2.3 "Block-aligned files"). Deleting a
//     file erases exactly its own blocks, so no valid data is ever
//     migrated: zero hardware write amplification. QinDB stores its AOFs
//     here.
//   - FTLFS maps file pages onto a conventional page-mapped FTL. Deleting
//     a file merely trims its logical pages; the invalidated flash pages
//     are reclaimed later by device GC, which migrates whatever valid
//     data shares their blocks. The LSM baseline lives here.
//
// Both backends implement FS, so the engines are backend-agnostic. Files
// are strictly append-only (matching both AOFs and SSTables); at most one
// writer may be open per file, and reads may run concurrently with the
// writer, observing all appended bytes including the unflushed tail.
// Every operation returns its simulated device cost so engines can build
// latency histograms.
package blockfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"directload/internal/ssd"
)

// Filesystem errors.
var (
	ErrExists     = errors.New("blockfs: file exists")
	ErrNotFound   = errors.New("blockfs: file not found")
	ErrWriterOpen = errors.New("blockfs: file has an open writer")
	ErrClosed     = errors.New("blockfs: writer closed")
	ErrOffset     = errors.New("blockfs: offset out of range")
)

// FS is an append-only filesystem over simulated flash.
type FS interface {
	// Create opens a new file for appending. The name must be unused.
	Create(name string) (Writer, error)
	// Open returns a read handle. The file may still be being written.
	Open(name string) (Reader, error)
	// Remove deletes the file, releasing its flash space. The file must
	// not have an open writer.
	Remove(name string) (time.Duration, error)
	// Size returns the logical length of a file in bytes.
	Size(name string) (int64, error)
	// List returns all file names in lexicographic order.
	List() []string
	// UsedBytes returns the physical flash space currently occupied by
	// all files (full pages, including final-page padding).
	UsedBytes() int64
	// Device returns the underlying flash device (for stats and clock).
	Device() *ssd.Device
}

// Writer appends bytes to a file.
type Writer interface {
	// Append writes p at the end of the file, returning the byte offset
	// at which p begins and the simulated device cost.
	Append(p []byte) (off int64, cost time.Duration, err error)
	// Sync flushes all complete pages to flash. The partial tail page
	// stays buffered (readable, but not yet on flash) until Close.
	Sync() (time.Duration, error)
	// Close flushes everything including a padded final page and
	// releases the writer slot.
	Close() (time.Duration, error)
	// Offset returns the current logical end of the file.
	Offset() int64
}

// Reader reads bytes from a file at arbitrary offsets.
type Reader interface {
	// ReadAt fills p from logical offset off, returning the bytes read
	// and the simulated device cost. Reads that extend past the end of
	// the file return the available prefix and no error; a read entirely
	// past the end returns ErrOffset.
	ReadAt(p []byte, off int64) (n int, cost time.Duration, err error)
	// Size returns the logical file length at call time.
	Size() int64
}

// file is the shared per-file bookkeeping for both backends. pages holds
// backend-specific physical page references; length counts appended
// logical bytes; tail holds bytes not yet flushed to flash.
type file struct {
	pages   []int32 // backend page refs: native = block<<16|page, ftl = lpn
	length  int64
	tail    []byte // unflushed suffix (always < pageSize after flush)
	writing bool
}

// core implements the name table and read path common to both backends.
type core struct {
	mu       sync.Mutex
	files    map[string]*file
	pageSize int
	dev      *ssd.Device

	readPage  func(ref int32) ([]byte, time.Duration, error)
	writeTail func(f *file) (time.Duration, error) // flush full pages from tail
	freeFile  func(f *file) (time.Duration, error)
}

func (c *core) Device() *ssd.Device { return c.dev }

func (c *core) Create(name string) (Writer, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	f := &file{writing: true}
	c.files[name] = f
	return &writer{c: c, f: f, name: name}, nil
}

func (c *core) Open(name string) (Reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return &reader{c: c, f: f}, nil
}

func (c *core) Remove(name string) (time.Duration, error) {
	c.mu.Lock()
	f, ok := c.files[name]
	if !ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if f.writing {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrWriterOpen, name)
	}
	delete(c.files, name)
	c.mu.Unlock()
	// freeFile touches only this dead file's refs; no lock needed.
	return c.freeFile(f)
}

func (c *core) Size(name string) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return f.length, nil
}

func (c *core) List() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.files))
	for n := range c.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (c *core) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, f := range c.files {
		total += int64(len(f.pages)) * int64(c.pageSize)
		if len(f.tail) > 0 {
			total += int64(c.pageSize) // tail will occupy one page
		}
	}
	return total
}

type writer struct {
	mu     sync.Mutex
	c      *core
	f      *file
	name   string
	closed bool
}

func (w *writer) Append(p []byte) (int64, time.Duration, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, 0, ErrClosed
	}
	c := w.c
	c.mu.Lock()
	off := w.f.length
	w.f.tail = append(w.f.tail, p...)
	w.f.length += int64(len(p))
	var cost time.Duration
	var err error
	if len(w.f.tail) >= c.pageSize {
		cost, err = c.writeTail(w.f)
	}
	c.mu.Unlock()
	return off, cost, err
}

func (w *writer) Sync() (time.Duration, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	return w.c.writeTail(w.f)
}

func (w *writer) Close() (time.Duration, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	w.closed = true
	c := w.c
	c.mu.Lock()
	defer c.mu.Unlock()
	cost, err := c.writeTail(w.f)
	if err == nil && len(w.f.tail) > 0 {
		// Pad the final partial page onto flash.
		pad := make([]byte, c.pageSize)
		copy(pad, w.f.tail)
		w.f.tail = append(w.f.tail[:0], pad...)
		var c2 time.Duration
		c2, err = c.writeTail(w.f)
		cost += c2
		// Trim the logical length back: padding is physical only.
	}
	w.f.writing = false
	return cost, err
}

func (w *writer) Offset() int64 {
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	return w.f.length
}

type reader struct {
	c *core
	f *file
}

func (r *reader) Size() int64 {
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	return r.f.length
}

func (r *reader) ReadAt(p []byte, off int64) (int, time.Duration, error) {
	c := r.c
	c.mu.Lock()
	length := r.f.length
	if off < 0 || off > length {
		c.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: off %d, len %d", ErrOffset, off, length)
	}
	if off == length && len(p) > 0 {
		c.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: off %d at end of file", ErrOffset, off)
	}
	want := int64(len(p))
	if off+want > length {
		want = length - off
	}
	// Snapshot the page refs and tail under the lock; device reads happen
	// outside it so concurrent appends aren't blocked by flash latency.
	// Only the refs and tail bytes this read touches are copied: a
	// record-sized read against a large file must not pay for the whole
	// file's page table on every call.
	flushedBytes := int64(len(r.f.pages)) * int64(c.pageSize)
	var refs []int32
	var firstPage int64
	if off < flushedBytes {
		firstPage = off / int64(c.pageSize)
		lastPage := (off + want - 1) / int64(c.pageSize)
		if lastPage >= int64(len(r.f.pages)) {
			lastPage = int64(len(r.f.pages)) - 1
		}
		refs = append([]int32(nil), r.f.pages[firstPage:lastPage+1]...)
	}
	var tail []byte
	if off+want > flushedBytes {
		tail = append([]byte(nil), r.f.tail...)
	}
	c.mu.Unlock()

	var cost time.Duration
	n := 0
	for n < int(want) {
		cur := off + int64(n)
		if cur >= flushedBytes {
			// Served from the in-memory tail buffer: no device cost.
			n += copy(p[n:want], tail[cur-flushedBytes:])
			continue
		}
		pageIdx := cur/int64(c.pageSize) - firstPage
		inPage := int(cur % int64(c.pageSize))
		data, oc, err := c.readPage(refs[pageIdx])
		cost += oc
		if err != nil {
			return n, cost, err
		}
		n += copy(p[n:want], data[inPage:])
	}
	return n, cost, nil
}
