package mint

import (
	"hash/fnv"
	"sort"
)

// Placement is the paper's hash→group→replica math (§2.3), factored out
// of the simulated cluster so the networked fleet router computes
// byte-identical answers: keys map to a group by FNV-32a modulo the
// group count, and within a group cfg.Replicas members are chosen by
// rendezvous (highest-random-weight) hashing over FNV-64a(key‖member).
// Both properties the paper relies on fall out of the math alone —
// groups can grow without moving stored data, and every router computes
// the same replica set without coordination — so the simulated and
// networked paths share this one implementation and cannot drift.
//
// Members are identified by opaque strings (node IDs in the simulation,
// logical node names in a fleet). The zero value places with 3 replicas.
type Placement struct {
	// Replicas is how many members ReplicasFor selects (<= 0 means 3).
	Replicas int
}

// Group maps a key onto one of groups buckets. groups <= 0 returns 0.
func (p Placement) Group(key []byte, groups int) int {
	if groups <= 0 {
		return 0
	}
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(groups))
}

// Score is one member's rendezvous weight for a key; exported so tests
// can probe the raw ranking.
func (p Placement) Score(key []byte, member string) uint64 {
	h := fnv.New64a()
	h.Write(key)
	h.Write([]byte(member))
	return h.Sum64()
}

// ReplicasFor ranks the group's members by descending rendezvous weight
// (ties break toward the lexically smaller member, so the order is a
// pure function of the inputs) and returns the top Replicas of them.
// The first entry is the key's primary replica.
func (p Placement) ReplicasFor(key []byte, members []string) []string {
	type scored struct {
		id string
		w  uint64
	}
	ss := make([]scored, 0, len(members))
	for _, m := range members {
		ss = append(ss, scored{m, p.Score(key, m)})
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].w != ss[j].w {
			return ss[i].w > ss[j].w
		}
		return ss[i].id < ss[j].id
	})
	k := p.Replicas
	if k <= 0 {
		k = 3
	}
	if k > len(ss) {
		k = len(ss)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = ss[i].id
	}
	return out
}
