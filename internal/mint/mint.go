// Package mint implements the regional distributed key-value store of
// DirectLoad (paper §2.3): arriving key-value pairs are dispatched to
// storage-node *groups* by key hash (never directly to nodes, so groups
// can grow or shrink without redistributing stored data), each pair is
// replicated on three nodes of its group, and reads fan out to the
// group's live replicas in parallel so that a single recovering node
// never adds latency.
//
// Every storage node runs a QinDB engine (or, for baseline experiments,
// the LSM engine) over its own simulated SSD.
// Parallelism is modeled, not executed: a fan-out read costs the minimum
// simulated latency among the replicas that answered, which is exactly
// the property the paper relies on ("The parallel requests to the
// replicas will hide the node recovery from front-end users").
package mint

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"directload/internal/core"
	"directload/internal/metrics"
)

// Cluster errors.
var (
	ErrNoGroup        = errors.New("mint: cluster has no groups")
	ErrNodeDown       = errors.New("mint: node down")
	ErrNodeUnknown    = errors.New("mint: unknown node")
	ErrQuorum         = errors.New("mint: not enough live replicas")
	ErrAllReplicasErr = errors.New("mint: all replicas failed")
	ErrDupNode        = errors.New("mint: duplicate node id")
)

// Config sizes a cluster.
type Config struct {
	// Groups is the number of storage groups H(k) maps onto.
	Groups int
	// NodesPerGroup is the initial node count per group (>= Replicas).
	NodesPerGroup int
	// Replicas per key (paper: 3).
	Replicas int
	// NodeCapacity is each node's simulated SSD size in bytes (paper:
	// one 2 TB SSD per node; scale down for experiments).
	NodeCapacity int64
	// Engine configures each node's QinDB instance when Factory is nil.
	Engine core.Options
	// Factory overrides the per-node storage stack; use LSMFactory for
	// the baseline system of Fig. 10a. Nil selects QinDBFactory(Engine).
	Factory EngineFactory
	// WriteQuorum is the minimum replicas that must accept a write
	// (default: majority of Replicas).
	WriteQuorum int
	// Metrics, when non-nil, receives the cluster's `mint.*` metrics
	// (request latencies, per-group read fan-out, replica misses, node
	// health). Nil keeps all paths allocation-free.
	Metrics *metrics.Registry
}

// DefaultConfig returns a small but structurally faithful cluster: 4
// groups of 4 nodes, 3 replicas.
func DefaultConfig() Config {
	return Config{
		Groups:        4,
		NodesPerGroup: 4,
		Replicas:      3,
		NodeCapacity:  1 << 30,
		Engine:        core.DefaultOptions(),
	}
}

// Node is one storage server: a storage engine over a private SSD.
type Node struct {
	ID    string
	db    Engine
	stack *EngineStack
	down  bool
	group int
}

// DB exposes the node's engine (experiments inspect per-node state).
func (n *Node) DB() Engine { return n.db }

// Down reports whether the node is failed.
func (n *Node) Down() bool { return n.down }

// Group is a replication group.
type Group struct {
	ID    int
	Nodes []*Node
}

// Cluster is a Mint deployment in one data center.
type Cluster struct {
	cfg    Config
	place  Placement
	groups []*Group
	byID   map[string]*Node
	nextID int
	met    clusterMetrics
}

// clusterMetrics holds the cluster's registry handles; all nil without a
// registry, making every record site a guarded no-op.
type clusterMetrics struct {
	putLat      *metrics.Histogram
	getLat      *metrics.Histogram
	groupGetLat []*metrics.Histogram // read fan-out latency per group
	replicaMiss *metrics.Counter
	quorumFails *metrics.Counter
	nodesFailed *metrics.Counter
	nodesDown   *metrics.Gauge
	recoveryUs  *metrics.Histogram
}

func newClusterMetrics(reg *metrics.Registry, groups int) clusterMetrics {
	m := clusterMetrics{
		putLat:      reg.Histogram("mint.put.latency_us"),
		getLat:      reg.Histogram("mint.get.latency_us"),
		replicaMiss: reg.Counter("mint.get.replica_miss"),
		quorumFails: reg.Counter("mint.put.quorum_failures"),
		nodesFailed: reg.Counter("mint.nodes.failed"),
		nodesDown:   reg.Gauge("mint.nodes.down"),
		recoveryUs:  reg.Histogram("mint.recovery.scan_us"),
	}
	if reg != nil {
		m.groupGetLat = make([]*metrics.Histogram, groups)
		for g := range m.groupGetLat {
			m.groupGetLat[g] = reg.Histogram(fmt.Sprintf("mint.g%d.get.latency_us", g))
		}
	}
	return m
}

func (m clusterMetrics) groupGet(g int) *metrics.Histogram {
	if g < 0 || g >= len(m.groupGetLat) {
		return nil
	}
	return m.groupGetLat[g]
}

// New builds a cluster with cfg.Groups groups of cfg.NodesPerGroup nodes.
func New(cfg Config) (*Cluster, error) {
	if cfg.Groups <= 0 {
		return nil, fmt.Errorf("mint: non-positive group count %d", cfg.Groups)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.NodesPerGroup < cfg.Replicas {
		return nil, fmt.Errorf("mint: %d nodes per group < %d replicas", cfg.NodesPerGroup, cfg.Replicas)
	}
	if cfg.WriteQuorum <= 0 {
		cfg.WriteQuorum = cfg.Replicas/2 + 1
	}
	if cfg.NodeCapacity <= 0 {
		cfg.NodeCapacity = 1 << 30
	}
	if cfg.Factory == nil {
		cfg.Factory = QinDBFactory(cfg.Engine)
	}
	c := &Cluster{cfg: cfg, place: Placement{Replicas: cfg.Replicas}, byID: make(map[string]*Node)}
	c.met = newClusterMetrics(cfg.Metrics, cfg.Groups)
	for g := 0; g < cfg.Groups; g++ {
		group := &Group{ID: g}
		c.groups = append(c.groups, group)
		for i := 0; i < cfg.NodesPerGroup; i++ {
			if _, err := c.AddNode(g); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// AddNode grows a group by one node — the scalability operation the
// group indirection exists for. No stored data moves.
func (c *Cluster) AddNode(groupID int) (*Node, error) {
	if groupID < 0 || groupID >= len(c.groups) {
		return nil, fmt.Errorf("mint: bad group %d", groupID)
	}
	stack, err := c.cfg.Factory(c.cfg.NodeCapacity, int64(c.nextID+1))
	if err != nil {
		return nil, err
	}
	id := fmt.Sprintf("g%d-n%d", groupID, c.nextID)
	c.nextID++
	if _, dup := c.byID[id]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDupNode, id)
	}
	n := &Node{ID: id, db: stack.Engine, stack: stack, group: groupID}
	c.groups[groupID].Nodes = append(c.groups[groupID].Nodes, n)
	c.byID[id] = n
	return n, nil
}

// RemoveNode detaches a node from its group (its data is simply gone; the
// other replicas keep serving, as in the paper's failure story).
func (c *Cluster) RemoveNode(id string) error {
	n, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	g := c.groups[n.group]
	for i, m := range g.Nodes {
		if m == n {
			g.Nodes = append(g.Nodes[:i], g.Nodes[i+1:]...)
			break
		}
	}
	delete(c.byID, id)
	n.db.Close()
	return nil
}

// GroupFor returns the group a key belongs to (paper: "the H(k) is
// mapped to a group"); the math lives in Placement, shared with the
// networked fleet router.
func (c *Cluster) GroupFor(key []byte) *Group {
	return c.groups[c.place.Group(key, len(c.groups))]
}

// replicasFor selects cfg.Replicas nodes of the key's group by rendezvous
// (highest-random-weight) hashing: stable under node additions, and every
// node knows the answer without coordination.
func (c *Cluster) replicasFor(key []byte, g *Group) []*Node {
	ids := make([]string, len(g.Nodes))
	for i, n := range g.Nodes {
		ids[i] = n.ID
	}
	out := make([]*Node, 0, c.cfg.Replicas)
	for _, id := range c.place.ReplicasFor(key, ids) {
		out = append(out, c.byID[id])
	}
	return out
}

// ReplicaIDs returns the IDs of the key's replica set in placement
// order (primary first) — the answer fleet routers must agree with.
func (c *Cluster) ReplicaIDs(key []byte) []string {
	g := c.GroupFor(key)
	ids := make([]string, len(g.Nodes))
	for i, n := range g.Nodes {
		ids[i] = n.ID
	}
	return c.place.ReplicasFor(key, ids)
}

// Put writes (key, version, value) to the key's replica set. It succeeds
// when at least WriteQuorum replicas accept. The returned cost models
// parallel replication: the slowest accepting replica.
func (c *Cluster) Put(key []byte, version uint64, value []byte, dedup bool) (time.Duration, error) {
	if len(c.groups) == 0 {
		return 0, ErrNoGroup
	}
	g := c.GroupFor(key)
	var slowest time.Duration
	acked := 0
	var lastErr error
	for _, n := range c.replicasFor(key, g) {
		if n.down {
			lastErr = fmt.Errorf("%w: %s", ErrNodeDown, n.ID)
			continue
		}
		cost, err := n.db.Put(key, version, value, dedup)
		if err != nil {
			lastErr = err
			continue
		}
		acked++
		if cost > slowest {
			slowest = cost
		}
	}
	if acked < c.cfg.WriteQuorum {
		c.met.quorumFails.Inc()
		return slowest, fmt.Errorf("%w: %d/%d acked: %v", ErrQuorum, acked, c.cfg.WriteQuorum, lastErr)
	}
	c.met.putLat.Observe(float64(slowest) / float64(time.Microsecond))
	return slowest, nil
}

// Get reads (key, version) from the replica set in parallel and returns
// the first successful answer. The cost models the fastest live replica,
// which is how replication hides a recovering node's latency.
func (c *Cluster) Get(key []byte, version uint64) ([]byte, time.Duration, error) {
	if len(c.groups) == 0 {
		return nil, 0, ErrNoGroup
	}
	g := c.GroupFor(key)
	var best []byte
	bestCost := time.Duration(-1)
	var lastErr error = ErrAllReplicasErr
	// Fan out to the whole group: replicas move when nodes join, and
	// group-wide fan-out finds data written under any historical replica
	// set (the paper's no-redistribution property).
	for _, n := range g.Nodes {
		if n.down {
			continue
		}
		val, cost, err := n.db.Get(key, version)
		if err != nil {
			c.met.replicaMiss.Inc()
			if lastErr == ErrAllReplicasErr {
				lastErr = err
			}
			continue
		}
		if bestCost < 0 || cost < bestCost {
			best, bestCost = val, cost
		}
	}
	if bestCost < 0 {
		return nil, 0, lastErr
	}
	lat := float64(bestCost) / float64(time.Microsecond)
	c.met.getLat.Observe(lat)
	c.met.groupGet(g.ID).Observe(lat)
	return best, bestCost, nil
}

// Del deletes (key, version) on every replica holding it.
func (c *Cluster) Del(key []byte, version uint64) (time.Duration, error) {
	g := c.GroupFor(key)
	var slowest time.Duration
	acked := 0
	var lastErr error
	for _, n := range g.Nodes {
		if n.down {
			continue
		}
		cost, err := n.db.Del(key, version)
		if err != nil {
			lastErr = err
			continue
		}
		acked++
		if cost > slowest {
			slowest = cost
		}
	}
	if acked == 0 {
		if lastErr == nil {
			lastErr = core.ErrNotFound
		}
		return slowest, lastErr
	}
	return slowest, nil
}

// DropVersion retires a whole data version on every node (the paper's
// deletion thread, cluster-wide).
func (c *Cluster) DropVersion(version uint64) (int, time.Duration, error) {
	var total time.Duration
	dropped := 0
	for _, g := range c.groups {
		for _, n := range g.Nodes {
			if n.down {
				continue
			}
			k, cost, err := n.db.DropVersion(version)
			total += cost
			if err != nil {
				return dropped, total, err
			}
			dropped += k
		}
	}
	return dropped, total, nil
}

// FailNode marks a node down (crash injection).
func (c *Cluster) FailNode(id string) error {
	n, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	n.down = true
	c.met.nodesFailed.Inc()
	c.met.nodesDown.Add(1)
	return nil
}

// RecoverNode brings a node back: its engine is reopened over the same
// flash, rebuilding the memtable and GC table by scanning the AOFs —
// QinDB's recovery path — and the estimated recovery time is returned.
func (c *Cluster) RecoverNode(id string) (time.Duration, error) {
	n, ok := c.byID[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	if !n.down {
		return 0, nil
	}
	db, err := n.stack.Reopen()
	if err != nil {
		return 0, err
	}
	// Recovery cost model: the full flash scan reads every stored byte.
	used := n.stack.UsedBytes()
	cfg := n.stack.Device.Config()
	pages := used / int64(cfg.PageSize)
	scanTime := time.Duration(pages) * cfg.Latency.PageRead / time.Duration(cfg.Latency.Channels)
	n.db = db
	n.down = false
	c.met.nodesDown.Add(-1)
	c.met.recoveryUs.Observe(float64(scanTime) / float64(time.Microsecond))
	return scanTime, nil
}

// Nodes lists node ids (sorted) for iteration in tests and tools.
func (c *Cluster) Nodes() []string {
	ids := make([]string, 0, len(c.byID))
	for id := range c.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Node returns a node by id.
func (c *Cluster) Node(id string) (*Node, bool) {
	n, ok := c.byID[id]
	return n, ok
}

// Groups returns the group count.
func (c *Cluster) Groups() int { return len(c.groups) }

// Stats aggregates engine stats across all nodes.
type Stats struct {
	Nodes          int
	DownNodes      int
	Keys           int
	UserWriteBytes int64
	DiskBytes      int64
	GCRuns         int64
}

// Stats returns cluster-wide aggregates.
func (c *Cluster) Stats() Stats {
	var s Stats
	for _, g := range c.groups {
		for _, n := range g.Nodes {
			s.Nodes++
			if n.down {
				s.DownNodes++
				continue
			}
			st := n.stack.Stats()
			s.Keys += st.Keys
			s.UserWriteBytes += st.UserWriteBytes
			s.DiskBytes += st.DiskBytes
			s.GCRuns += st.GCRuns
		}
	}
	return s
}

// Close shuts every node down and reports every failure.
func (c *Cluster) Close() error {
	var errs []error
	for _, g := range c.groups {
		for _, n := range g.Nodes {
			if err := n.db.Close(); err != nil && !errors.Is(err, core.ErrClosed) {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
