package mint

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"directload/internal/aof"
	"directload/internal/core"
)

func testConfig() Config {
	return Config{
		Groups:        3,
		NodesPerGroup: 4,
		Replicas:      3,
		NodeCapacity:  64 << 20,
		Engine: core.Options{
			AOF:  aof.Config{FileSize: 1 << 20, GCThreshold: 0.25},
			Seed: 1,
		},
	}
}

func newTestCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Groups: 0}); err == nil {
		t.Fatal("zero groups should fail")
	}
	if _, err := New(Config{Groups: 1, NodesPerGroup: 2, Replicas: 3}); err == nil {
		t.Fatal("fewer nodes than replicas should fail")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c := newTestCluster(t)
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("url/%04d", i))
		if _, err := c.Put(key, 1, []byte(fmt.Sprintf("val-%d", i)), false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("url/%04d", i))
		val, _, err := c.Get(key, 1)
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		if string(val) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(%s) = %q", key, val)
		}
	}
}

func TestReplication3x(t *testing.T) {
	c := newTestCluster(t)
	key := []byte("replicated-key")
	if _, err := c.Put(key, 1, []byte("v"), false); err != nil {
		t.Fatal(err)
	}
	// Exactly Replicas nodes of the key's group hold the pair.
	holders := 0
	for _, g := range c.groups {
		for _, n := range g.Nodes {
			if n.db.Has(key, 1) {
				holders++
				if g.ID != c.place.Group(key, len(c.groups)) {
					t.Fatal("replica outside the key's group")
				}
			}
		}
	}
	if holders != 3 {
		t.Fatalf("replicas = %d, want 3 (paper: three replicates)", holders)
	}
}

func TestGroupPlacementStable(t *testing.T) {
	c := newTestCluster(t)
	key := []byte("stable-key")
	before := c.place.Group(key, len(c.groups))
	// Adding nodes to any group must not change group placement.
	if _, err := c.AddNode(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNode(2); err != nil {
		t.Fatal(err)
	}
	if c.place.Group(key, len(c.groups)) != before {
		t.Fatal("group placement changed after adding nodes")
	}
}

func TestReadAfterNodeAddition(t *testing.T) {
	// The no-redistribution property: data written before a group grows
	// is still readable afterwards.
	c := newTestCluster(t)
	keys := make([][]byte, 200)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key/%05d", i))
		if _, err := c.Put(keys[i], 1, []byte("before-grow"), false); err != nil {
			t.Fatal(err)
		}
	}
	for g := 0; g < c.Groups(); g++ {
		if _, err := c.AddNode(g); err != nil {
			t.Fatal(err)
		}
	}
	for _, key := range keys {
		val, _, err := c.Get(key, 1)
		if err != nil || string(val) != "before-grow" {
			t.Fatalf("Get(%s) after growth: %q, %v", key, val, err)
		}
	}
}

func TestFailureMasking(t *testing.T) {
	c := newTestCluster(t)
	key := []byte("ha-key")
	c.Put(key, 1, []byte("v"), false)
	// Fail one replica: reads keep working.
	replicas := c.replicasFor(key, c.GroupFor(key))
	if err := c.FailNode(replicas[0].ID); err != nil {
		t.Fatal(err)
	}
	if val, _, err := c.Get(key, 1); err != nil || string(val) != "v" {
		t.Fatalf("Get with 1 failed replica: %q, %v", val, err)
	}
	// Fail a second: still one live replica.
	c.FailNode(replicas[1].ID)
	if _, _, err := c.Get(key, 1); err != nil {
		t.Fatalf("Get with 2 failed replicas: %v", err)
	}
	// Writes now miss quorum (2 of 3 replicas down).
	if _, err := c.Put(key, 2, []byte("v2"), false); !errors.Is(err, ErrQuorum) {
		t.Fatalf("Put should fail quorum, got %v", err)
	}
}

func TestRecoverNodeRebuildsFromFlash(t *testing.T) {
	c := newTestCluster(t)
	key := []byte("durable-key")
	c.Put(key, 1, []byte("survives-crash"), false)
	replicas := c.replicasFor(key, c.GroupFor(key))
	victim := replicas[0]
	c.FailNode(victim.ID)
	scan, err := c.RecoverNode(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if scan <= 0 {
		t.Fatal("recovery scan time should be positive")
	}
	if victim.Down() {
		t.Fatal("node should be live after recovery")
	}
	// The recovered engine holds the key again.
	if !victim.DB().Has(key, 1) {
		t.Fatal("recovered node lost the key")
	}
	// Recovering a live node is a no-op.
	if d, err := c.RecoverNode(victim.ID); err != nil || d != 0 {
		t.Fatalf("no-op recovery = %v, %v", d, err)
	}
}

func TestParallelReadHidesRecovery(t *testing.T) {
	// With one replica failed, Get cost is the min over the live ones;
	// latency must not blow up.
	c := newTestCluster(t)
	key := []byte("latency-key")
	c.Put(key, 1, make([]byte, 20<<10), false)
	_, healthy, err := c.Get(key, 1)
	if err != nil {
		t.Fatal(err)
	}
	replicas := c.replicasFor(key, c.GroupFor(key))
	c.FailNode(replicas[0].ID)
	_, degraded, err := c.Get(key, 1)
	if err != nil {
		t.Fatal(err)
	}
	if degraded > healthy*2 {
		t.Fatalf("degraded read cost %v vs healthy %v: replication not hiding failure", degraded, healthy)
	}
}

func TestDelAndDropVersion(t *testing.T) {
	c := newTestCluster(t)
	for i := 0; i < 30; i++ {
		key := []byte(fmt.Sprintf("k/%03d", i))
		c.Put(key, 1, []byte("v1"), false)
		c.Put(key, 2, []byte("v2"), false)
	}
	if _, err := c.Del([]byte("k/000"), 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get([]byte("k/000"), 2); err == nil {
		t.Fatal("deleted key readable")
	}
	n, _, err := c.DropVersion(1)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("DropVersion dropped nothing")
	}
	if _, _, err := c.Get([]byte("k/011"), 1); err == nil {
		t.Fatal("dropped version readable")
	}
	if _, _, err := c.Get([]byte("k/011"), 2); err != nil {
		t.Fatalf("v2 lost: %v", err)
	}
}

func TestDedupAcrossCluster(t *testing.T) {
	c := newTestCluster(t)
	key := []byte("dedup/key")
	val := bytes.Repeat([]byte{7}, 4096)
	c.Put(key, 1, val, false)
	c.Put(key, 2, nil, true) // deduplicated: value lives at v1
	got, _, err := c.Get(key, 2)
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("dedup Get via cluster = %d bytes, %v", len(got), err)
	}
}

func TestRemoveNode(t *testing.T) {
	c := newTestCluster(t)
	ids := c.Nodes()
	if len(ids) != 12 {
		t.Fatalf("nodes = %d", len(ids))
	}
	if err := c.RemoveNode(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveNode(ids[0]); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("double remove err = %v", err)
	}
	if len(c.Nodes()) != 11 {
		t.Fatalf("nodes after remove = %d", len(c.Nodes()))
	}
}

func TestUnknownNodeOps(t *testing.T) {
	c := newTestCluster(t)
	if err := c.FailNode("nope"); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("FailNode err = %v", err)
	}
	if _, err := c.RecoverNode("nope"); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("RecoverNode err = %v", err)
	}
}

func TestStatsAggregation(t *testing.T) {
	c := newTestCluster(t)
	for i := 0; i < 50; i++ {
		c.Put([]byte(fmt.Sprintf("s/%03d", i)), 1, make([]byte, 1024), false)
	}
	s := c.Stats()
	if s.Nodes != 12 || s.DownNodes != 0 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.Keys != 150 { // 50 keys x 3 replicas
		t.Fatalf("Keys = %d, want 150", s.Keys)
	}
	if s.UserWriteBytes == 0 || s.DiskBytes == 0 {
		t.Fatalf("byte counters empty: %+v", s)
	}
	c.FailNode(c.Nodes()[0])
	if c.Stats().DownNodes != 1 {
		t.Fatal("DownNodes not tracked")
	}
}

func TestAddNodeBadGroup(t *testing.T) {
	c := newTestCluster(t)
	if _, err := c.AddNode(-1); err == nil {
		t.Fatal("negative group should fail")
	}
	if _, err := c.AddNode(99); err == nil {
		t.Fatal("out-of-range group should fail")
	}
}

func TestFactoryErrorPropagates(t *testing.T) {
	boom := fmt.Errorf("factory exploded")
	_, err := New(Config{
		Groups: 1, NodesPerGroup: 3, Replicas: 3,
		Factory: func(capacity, seed int64) (*EngineStack, error) { return nil, boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want factory error", err)
	}
}

func TestDelOnMissingKey(t *testing.T) {
	c := newTestCluster(t)
	if _, err := c.Del([]byte("never-written"), 1); err == nil {
		t.Fatal("Del of missing key should fail")
	}
}

func TestGetAllReplicasDown(t *testing.T) {
	c := newTestCluster(t)
	key := []byte("doomed")
	c.Put(key, 1, []byte("v"), false)
	for _, id := range c.Nodes() {
		c.FailNode(id)
	}
	if _, _, err := c.Get(key, 1); err == nil {
		t.Fatal("Get with every node down should fail")
	}
	if c.Stats().DownNodes != 12 {
		t.Fatalf("DownNodes = %d", c.Stats().DownNodes)
	}
}

func TestWriteQuorumConfigurable(t *testing.T) {
	cfg := testConfig()
	cfg.WriteQuorum = 3 // all replicas must ack
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	key := []byte("strict")
	if _, err := c.Put(key, 1, []byte("v"), false); err != nil {
		t.Fatal(err)
	}
	// One replica down: strict quorum now unreachable for its keys.
	replicas := c.replicasFor(key, c.GroupFor(key))
	c.FailNode(replicas[0].ID)
	if _, err := c.Put(key, 2, []byte("v2"), false); !errors.Is(err, ErrQuorum) {
		t.Fatalf("err = %v, want ErrQuorum at WriteQuorum=3", err)
	}
}

func TestGroupForStability(t *testing.T) {
	c := newTestCluster(t)
	g1 := c.GroupFor([]byte("stable"))
	g2 := c.GroupFor([]byte("stable"))
	if g1 != g2 {
		t.Fatal("GroupFor must be deterministic")
	}
}
