package mint

import (
	"time"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/lsm"
	"directload/internal/ssd"
)

// Engine is the per-node storage engine contract. Both QinDB
// (internal/core) and the LevelDB-style baseline (internal/lsm) satisfy
// it, which lets whole-system experiments swap the storage layer while
// keeping Mint's placement, replication and recovery logic identical —
// the "with vs without DirectLoad" comparison of Fig. 10a.
type Engine interface {
	Put(key []byte, version uint64, value []byte, dedup bool) (time.Duration, error)
	Get(key []byte, version uint64) ([]byte, time.Duration, error)
	Del(key []byte, version uint64) (time.Duration, error)
	DropVersion(version uint64) (int, time.Duration, error)
	Has(key []byte, version uint64) bool
	Close() error
}

// EngineStats is the engine-agnostic per-node summary Mint aggregates.
type EngineStats struct {
	Keys           int
	UserWriteBytes int64
	DiskBytes      int64
	GCRuns         int64
}

// EngineStack bundles a node's engine with the hooks Mint needs for
// recovery and accounting.
type EngineStack struct {
	Engine Engine
	// Reopen recovers the engine over the same flash after a crash.
	Reopen func() (Engine, error)
	// Stats summarizes the engine.
	Stats func() EngineStats
	// Device exposes the node's flash (clock, firmware counters).
	Device *ssd.Device
	// UsedBytes reports physical flash occupied.
	UsedBytes func() int64
}

// EngineFactory builds one node's storage stack.
type EngineFactory func(capacity int64, seed int64) (*EngineStack, error)

// QinDBFactory returns the paper's stack: QinDB over block-aligned
// native flash. A zero opts selects the defaults.
func QinDBFactory(opts core.Options) EngineFactory {
	return func(capacity int64, seed int64) (*EngineStack, error) {
		if opts.AOF.FileSize == 0 {
			opts.AOF = aof.DefaultConfig()
		}
		opts.Seed = seed
		dev, err := ssd.NewDevice(ssd.DefaultConfig(capacity))
		if err != nil {
			return nil, err
		}
		fs := blockfs.NewNativeFS(dev)
		db, err := core.Open(fs, opts)
		if err != nil {
			return nil, err
		}
		stack := &EngineStack{Device: dev, UsedBytes: fs.UsedBytes}
		stack.Engine = db
		stack.Reopen = func() (Engine, error) {
			if err := db.Close(); err != nil {
				return nil, err
			}
			ndb, err := core.Open(fs, opts)
			if err != nil {
				return nil, err
			}
			db = ndb
			return ndb, nil
		}
		stack.Stats = func() EngineStats {
			st := db.Stats()
			return EngineStats{
				Keys:           st.Keys,
				UserWriteBytes: st.UserWriteBytes,
				DiskBytes:      st.Store.DiskBytes,
				GCRuns:         st.Store.GCRuns,
			}
		}
		return stack, nil
	}
}

// LSMFactory returns the baseline stack: a LevelDB-style engine over a
// conventional page-mapped FTL.
func LSMFactory(opts lsm.Options) EngineFactory {
	return func(capacity int64, seed int64) (*EngineStack, error) {
		if opts.MemtableSize == 0 {
			opts = lsm.DefaultOptions()
		}
		opts.Seed = seed
		dev, err := ssd.NewDevice(ssd.DefaultConfig(capacity))
		if err != nil {
			return nil, err
		}
		cfg := dev.Config()
		logical := (cfg.Blocks - cfg.Blocks/8 - 4) * cfg.PagesPerBlock
		ftl, err := ssd.NewFTL(dev, logical)
		if err != nil {
			return nil, err
		}
		fs := blockfs.NewFTLFS(ftl)
		db, err := lsm.Open(fs, opts)
		if err != nil {
			return nil, err
		}
		stack := &EngineStack{Device: dev, UsedBytes: fs.UsedBytes}
		stack.Engine = db
		stack.Reopen = func() (Engine, error) {
			if err := db.Close(); err != nil {
				return nil, err
			}
			ndb, err := lsm.Open(fs, opts)
			if err != nil {
				return nil, err
			}
			db = ndb
			return ndb, nil
		}
		stack.Stats = func() EngineStats {
			st := db.Stats()
			return EngineStats{
				UserWriteBytes: st.UserWriteBytes,
				DiskBytes:      st.DiskBytes,
				GCRuns:         st.Compactions,
			}
		}
		return stack, nil
	}
}
