// Package server exposes a QinDB engine over TCP with a compact binary
// protocol, plus a matching client — the network face a storage node in
// a Mint group presents inside a data center. The protocol is
// deliberately minimal (the paper's front-ends speak an internal RPC):
// length-prefixed request/response frames carrying the mutated
// GET/PUT/DEL operations of paper Fig. 2.
//
// # Protocol v1 (legacy, strictly in-order)
//
// Frame layout (all integers little-endian):
//
//	request:  len u32 | op u8 | version u64 | keyLen u16 | key | valLen u32 | value
//	response: len u32 | status u8 | payloadLen u32 | payload
//
// Requests on a connection are answered in order, one response per
// request.
//
// # Version negotiation
//
// A client that speaks v2 sends OpHello as its very first request, with
// the highest protocol version it supports in the Version field. The
// server answers StatusOK with a one-byte payload carrying the version
// it accepted; if that version is >= 2, both sides switch to v2 framing
// for the remainder of the connection. A server that predates OpHello
// answers a StatusFailed response ("unknown op") and the client stays on v1. Old
// clients never send OpHello, so they keep speaking v1 against new
// servers — both directions interoperate.
//
// A client may additionally offer optional features in the hello's
// Value field (byte 0 = feature bits; today only bit 0, trace-context
// propagation). A server that understands features answers with a
// TWO-byte payload — accepted version, accepted feature bits — but only
// when the client offered features, so clients that predate them still
// get the one-byte reply they expect. Servers that predate features
// ignore the Value field and answer one byte, which the offering client
// reads as "no features": v2-without-trace interop needs no flag day
// either.
//
// # Protocol v2 (pipelined)
//
// Every frame gains a per-request sequence number directly after the
// length prefix:
//
//	request:  len u32 | seq u32 | op u8 | version u64 | keyLen u16 | key | valLen u32 | value
//	response: len u32 | seq u32 | status u8 | payloadLen u32 | payload
//
// (len counts everything after itself, including seq.) The client may
// keep many requests in flight on one connection; the server dispatches
// them concurrently (bounded by its max-in-flight knob) and responses
// may arrive in any order — seq matches a response to its request.
// Operations pipelined concurrently may execute in any order, so
// dependent operations must wait for their predecessor's response.
//
// # Trace context (v2, negotiated)
//
// On a connection that negotiated the trace feature, a request frame
// whose seq has its high bit set carries a 16-byte trace-context field
// between seq and the op byte:
//
//	request: len u32 | seq u32 (bit31=1) | traceID u64 | parentSpanID u64 | op u8 | ...
//
// The client injects the active span from its context.Context; the
// server parents every span the request produces (the handler span and,
// for OpBatch, each sub-op span) under (traceID, parentSpanID), which is
// what stitches one publish's fan-out into a single cross-node trace.
// Untraced requests never set the bit and pay nothing. Response frames
// never carry trace context, and seq is echoed back without the flag
// bit (sequence numbers are 31-bit on trace-enabled connections —
// exhausting them would take decades on one connection).
//
// # OpBatch
//
// OpBatch packs N mutation sub-ops into one frame: Version holds the
// sub-op count and Value the concatenated sub-ops, each encoded exactly
// like a v1 request body (op u8 | version u64 | keyLen u16 | key |
// valLen u32 | value). Only OpPut, OpPutDedup, OpDel and OpDropVersion
// may appear as sub-ops. The server applies the batch in one pass and
// answers StatusOK with one status per sub-op:
//
//	payload: count u32, then per sub-op: status u8 | msgLen u16 | msg
//
// msg is empty for StatusOK entries. A failing sub-op does not poison
// the frame: the remaining sub-ops are still applied and reported
// individually. OpBatch is negotiated with v2 but the server accepts it
// on v1 connections too.
//
// # OpRange
//
// The request reuses the generic fields: Key = inclusive lower bound,
// Value = exclusive upper bound, Version = limit. A limit <= 0 means
// "server default" (the server's range cap, 4096 unless configured);
// a positive limit is clamped to that cap. The v2 reply payload leads
// with the applied limit:
//
//	v2 payload: appliedLimit u32 | entries
//	v1 payload: entries
//
// where entries are keyLen u16 | key | version u64 triples.
//
// For OpStats the payload is a JSON-encoded StatsReply. For OpMetrics
// the payload is the JSON encoding of the server's metrics registry
// snapshot ({} when the server runs uninstrumented).
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"directload/internal/metrics"
)

// Protocol ops.
const (
	OpPut uint8 = iota + 1
	OpPutDedup
	OpGet
	OpDel
	OpDropVersion
	OpHas
	OpStats
	OpRange
	OpPing
	OpMetrics
	OpHello // protocol version negotiation (first request of a v2 client)
	OpBatch // N packed mutation sub-ops in one frame
)

// opMax is the highest assigned opcode (bounds the per-opcode arrays).
const opMax = OpBatch

// Protocol versions. ProtoV1 is the legacy one-op-per-round-trip
// protocol; ProtoV2 adds sequence numbers, pipelining and batching.
const (
	ProtoV1 = 1
	ProtoV2 = 2
	// MaxProto is the highest version this package speaks.
	MaxProto = ProtoV2
)

// Optional feature bits offered in OpHello's Value field (byte 0) and
// echoed in the second byte of a two-byte hello reply.
const (
	// helloFeatTrace: v2 request frames may carry a 16-byte trace
	// context flagged by seqTraceFlag.
	helloFeatTrace uint8 = 1 << 0
)

// seqTraceFlag marks a v2 request frame that carries a trace-context
// field. Responses never set it; the server masks it off before echo.
const seqTraceFlag uint32 = 1 << 31

// traceHeaderLen is the size of the trace-context field: traceID u64 |
// parentSpanID u64.
const traceHeaderLen = 16

// opNames labels ops for per-opcode metric names.
var opNames = [opMax + 1]string{
	OpPut: "put", OpPutDedup: "putd", OpGet: "get", OpDel: "del",
	OpDropVersion: "drop", OpHas: "has", OpStats: "stats",
	OpRange: "range", OpPing: "ping", OpMetrics: "metrics",
	OpHello: "hello", OpBatch: "batch",
}

// Response statuses. (StatusFailed was once named StatusError; the
// name now belongs to the error type carrying these codes to callers.)
const (
	StatusOK uint8 = iota
	StatusNotFound
	StatusDeleted
	StatusFailed
)

// Protocol limits: a request may carry one key and one value (a batch
// frame may carry many sub-ops up to the frame cap).
const (
	MaxKeyLen   = 1 << 16
	MaxValueLen = 64 << 20
	maxFrame    = MaxValueLen + MaxKeyLen + 64
)

// Protocol errors.
var (
	ErrFrameTooBig = errors.New("server: frame exceeds protocol limit")
	ErrBadFrame    = errors.New("server: malformed frame")
)

// request is one decoded client request.
type request struct {
	Op      uint8
	Version uint64
	Key     []byte
	Value   []byte
}

// writeFrame writes a length-prefixed v1 frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return ErrFrameTooBig
	}
	buf := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := w.Write(buf) // one write: a frame never splits into two syscalls
	return err
}

// readFrame reads one length-prefixed v1 frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeFrameSeq writes a v2 frame: len u32 | seq u32 | body.
func writeFrameSeq(w io.Writer, seq uint32, body []byte) error {
	if len(body)+4 > maxFrame {
		return ErrFrameTooBig
	}
	buf := appendFrameSeq(nil, seq, body)
	_, err := w.Write(buf) // one write: a frame never splits into two syscalls
	return err
}

// appendFrameSeq appends one encoded v2 frame to buf, letting callers
// coalesce several frames into a single write.
func appendFrameSeq(buf []byte, seq uint32, body []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)+4))
	buf = binary.LittleEndian.AppendUint32(buf, seq)
	return append(buf, body...)
}

// appendFrameSeqTrace appends one v2 request frame carrying a
// trace-context field; seq must already have seqTraceFlag set.
func appendFrameSeqTrace(buf []byte, seq uint32, sc metrics.SpanContext, body []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)+4+traceHeaderLen))
	buf = binary.LittleEndian.AppendUint32(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, sc.TraceID)
	buf = binary.LittleEndian.AppendUint64(buf, sc.SpanID)
	return append(buf, body...)
}

// splitTraceHeader strips the trace-context field off a flagged request
// body, returning the remote span context and the request body proper.
func splitTraceHeader(body []byte) (metrics.SpanContext, []byte, error) {
	if len(body) < traceHeaderLen {
		return metrics.SpanContext{}, nil, fmt.Errorf("%w: short trace header", ErrBadFrame)
	}
	sc := metrics.SpanContext{
		TraceID: binary.LittleEndian.Uint64(body),
		SpanID:  binary.LittleEndian.Uint64(body[8:]),
	}
	return sc, body[traceHeaderLen:], nil
}

// readFrameSeq reads one v2 frame, returning its sequence number and
// body.
func readFrameSeq(r io.Reader) (uint32, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 4 {
		return 0, nil, fmt.Errorf("%w: v2 frame shorter than its seq", ErrBadFrame)
	}
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return 0, nil, err
	}
	seq := binary.LittleEndian.Uint32(hdr[4:])
	buf := make([]byte, n-4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return seq, buf, nil
}

// encodeRequest serializes a request body (without the frame header).
func encodeRequest(req request) ([]byte, error) {
	if len(req.Key) > MaxKeyLen {
		return nil, fmt.Errorf("%w: key %d bytes", ErrFrameTooBig, len(req.Key))
	}
	if len(req.Value) > MaxValueLen {
		return nil, fmt.Errorf("%w: value %d bytes", ErrFrameTooBig, len(req.Value))
	}
	buf := make([]byte, 0, 1+8+2+len(req.Key)+4+len(req.Value))
	return appendRequest(buf, req), nil
}

// appendRequest appends a request body encoding to buf.
func appendRequest(buf []byte, req request) []byte {
	buf = append(buf, req.Op)
	buf = binary.LittleEndian.AppendUint64(buf, req.Version)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(req.Key)))
	buf = append(buf, req.Key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(req.Value)))
	buf = append(buf, req.Value...)
	return buf
}

// decodeRequestAt parses one request body starting at offset p,
// returning the request and the offset just past it.
func decodeRequestAt(buf []byte, p int) (request, int, error) {
	var req request
	if len(buf) < p+1+8+2 {
		return req, p, fmt.Errorf("%w: short header", ErrBadFrame)
	}
	req.Op = buf[p]
	req.Version = binary.LittleEndian.Uint64(buf[p+1:])
	klen := int(binary.LittleEndian.Uint16(buf[p+9:]))
	p += 11
	if len(buf) < p+klen+4 {
		return req, p, fmt.Errorf("%w: short key", ErrBadFrame)
	}
	req.Key = buf[p : p+klen]
	p += klen
	vlen := int(binary.LittleEndian.Uint32(buf[p:]))
	p += 4
	if len(buf) < p+vlen {
		return req, p, fmt.Errorf("%w: short value", ErrBadFrame)
	}
	if vlen > 0 {
		req.Value = buf[p : p+vlen]
	}
	return req, p + vlen, nil
}

// decodeRequest parses a request body.
func decodeRequest(buf []byte) (request, error) {
	req, _, err := decodeRequestAt(buf, 0)
	return req, err
}

// encodeResponse serializes a response body.
func encodeResponse(status uint8, payload []byte) []byte {
	buf := make([]byte, 0, 1+4+len(payload))
	buf = append(buf, status)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return buf
}

// decodeResponse parses a response body.
func decodeResponse(buf []byte) (status uint8, payload []byte, err error) {
	if len(buf) < 5 {
		return 0, nil, fmt.Errorf("%w: short response", ErrBadFrame)
	}
	status = buf[0]
	n := int(binary.LittleEndian.Uint32(buf[1:]))
	if len(buf) < 5+n {
		return 0, nil, fmt.Errorf("%w: short payload", ErrBadFrame)
	}
	return status, buf[5 : 5+n], nil
}

// RangeEntry is one (key, version) hit returned by OpRange.
type RangeEntry struct {
	Key     []byte
	Version uint64
}

// encodeRangeEntries packs range results.
func encodeRangeEntries(entries []RangeEntry) []byte {
	var buf []byte
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Key)))
		buf = append(buf, e.Key...)
		buf = binary.LittleEndian.AppendUint64(buf, e.Version)
	}
	return buf
}

// decodeRangeEntries unpacks range results.
func decodeRangeEntries(buf []byte) ([]RangeEntry, error) {
	var out []RangeEntry
	for p := 0; p < len(buf); {
		if p+2 > len(buf) {
			return nil, ErrBadFrame
		}
		klen := int(binary.LittleEndian.Uint16(buf[p:]))
		p += 2
		if p+klen+8 > len(buf) {
			return nil, ErrBadFrame
		}
		e := RangeEntry{Key: append([]byte(nil), buf[p:p+klen]...)}
		p += klen
		e.Version = binary.LittleEndian.Uint64(buf[p:])
		p += 8
		out = append(out, e)
	}
	return out, nil
}

// encodeRangeReply packs a v2 range reply: applied limit then entries.
func encodeRangeReply(applied int, entries []RangeEntry) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(applied))
	return append(buf, encodeRangeEntries(entries)...)
}

// decodeRangeReply unpacks a v2 range reply.
func decodeRangeReply(buf []byte) ([]RangeEntry, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("%w: short range reply", ErrBadFrame)
	}
	applied := int(binary.LittleEndian.Uint32(buf))
	entries, err := decodeRangeEntries(buf[4:])
	return entries, applied, err
}

// BatchOp is one sub-op of an OpBatch frame. Only mutations may be
// batched: OpPut, OpPutDedup, OpDel and OpDropVersion.
type BatchOp struct {
	Op      uint8
	Version uint64
	Key     []byte
	Value   []byte
}

// batchable reports whether op may appear inside an OpBatch frame.
func batchable(op uint8) bool {
	switch op {
	case OpPut, OpPutDedup, OpDel, OpDropVersion:
		return true
	}
	return false
}

// encodeBatch packs sub-ops into an OpBatch request body.
func encodeBatch(ops []BatchOp) ([]byte, error) {
	size := 0
	for _, op := range ops {
		if !batchable(op.Op) {
			return nil, fmt.Errorf("%w: op %d not batchable", ErrBadFrame, op.Op)
		}
		if len(op.Key) > MaxKeyLen {
			return nil, fmt.Errorf("%w: key %d bytes", ErrFrameTooBig, len(op.Key))
		}
		if len(op.Value) > MaxValueLen {
			return nil, fmt.Errorf("%w: value %d bytes", ErrFrameTooBig, len(op.Value))
		}
		size += 1 + 8 + 2 + len(op.Key) + 4 + len(op.Value)
	}
	buf := make([]byte, 0, size)
	for _, op := range ops {
		buf = appendRequest(buf, request{Op: op.Op, Version: op.Version, Key: op.Key, Value: op.Value})
	}
	if len(buf) > MaxValueLen {
		return nil, fmt.Errorf("%w: batch %d bytes", ErrFrameTooBig, len(buf))
	}
	return buf, nil
}

// decodeBatch unpacks the sub-ops of an OpBatch request body, verifying
// the declared count.
func decodeBatch(buf []byte, count int) ([]request, error) {
	if count < 0 || count > len(buf) {
		return nil, fmt.Errorf("%w: batch count %d", ErrBadFrame, count)
	}
	out := make([]request, 0, count)
	for p := 0; p < len(buf); {
		req, np, err := decodeRequestAt(buf, p)
		if err != nil {
			return nil, err
		}
		out = append(out, req)
		p = np
	}
	if len(out) != count {
		return nil, fmt.Errorf("%w: batch declared %d sub-ops, carried %d", ErrBadFrame, count, len(out))
	}
	return out, nil
}

// subStatus is one sub-op outcome in a batch reply.
type subStatus struct {
	status uint8
	msg    []byte
}

// encodeBatchReply packs per-sub-op statuses.
func encodeBatchReply(statuses []subStatus) []byte {
	size := 4
	for _, s := range statuses {
		size += 1 + 2 + len(s.msg)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(statuses)))
	for _, s := range statuses {
		buf = append(buf, s.status)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.msg)))
		buf = append(buf, s.msg...)
	}
	return buf
}

// decodeBatchReply unpacks per-sub-op statuses.
func decodeBatchReply(buf []byte) ([]subStatus, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("%w: short batch reply", ErrBadFrame)
	}
	count := int(binary.LittleEndian.Uint32(buf))
	out := make([]subStatus, 0, count)
	for p := 4; p < len(buf); {
		if p+3 > len(buf) {
			return nil, ErrBadFrame
		}
		st := buf[p]
		mlen := int(binary.LittleEndian.Uint16(buf[p+1:]))
		p += 3
		if p+mlen > len(buf) {
			return nil, ErrBadFrame
		}
		var msg []byte
		if mlen > 0 {
			msg = append([]byte(nil), buf[p:p+mlen]...)
		}
		p += mlen
		out = append(out, subStatus{status: st, msg: msg})
	}
	if len(out) != count {
		return nil, fmt.Errorf("%w: batch reply declared %d, carried %d", ErrBadFrame, count, len(out))
	}
	return out, nil
}
