// Package server exposes a QinDB engine over TCP with a compact binary
// protocol, plus a matching client — the network face a storage node in
// a Mint group presents inside a data center. The protocol is
// deliberately minimal (the paper's front-ends speak an internal RPC):
// length-prefixed request/response frames carrying the mutated
// GET/PUT/DEL operations of paper Fig. 2.
//
// Frame layout (all integers little-endian):
//
//	request:  len u32 | op u8 | version u64 | keyLen u16 | key | valLen u32 | value
//	response: len u32 | status u8 | payloadLen u32 | payload
//
// For OpStats the payload is a JSON-encoded StatsReply. For OpRange the
// request value holds the exclusive upper bound key and the response
// payload packs keyLen u16 | key | version u64 triples. For OpMetrics
// the payload is the JSON encoding of the server's metrics registry
// snapshot ({} when the server runs uninstrumented).
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol ops.
const (
	OpPut uint8 = iota + 1
	OpPutDedup
	OpGet
	OpDel
	OpDropVersion
	OpHas
	OpStats
	OpRange
	OpPing
	OpMetrics
)

// opNames labels ops for per-opcode metric names.
var opNames = [OpMetrics + 1]string{
	OpPut: "put", OpPutDedup: "putd", OpGet: "get", OpDel: "del",
	OpDropVersion: "drop", OpHas: "has", OpStats: "stats",
	OpRange: "range", OpPing: "ping", OpMetrics: "metrics",
}

// Response statuses.
const (
	StatusOK uint8 = iota
	StatusNotFound
	StatusDeleted
	StatusError
)

// Protocol limits: a request may carry one key and one value.
const (
	MaxKeyLen   = 1 << 16
	MaxValueLen = 64 << 20
	maxFrame    = MaxValueLen + MaxKeyLen + 64
)

// Protocol errors.
var (
	ErrFrameTooBig = errors.New("server: frame exceeds protocol limit")
	ErrBadFrame    = errors.New("server: malformed frame")
)

// request is one decoded client request.
type request struct {
	Op      uint8
	Version uint64
	Key     []byte
	Value   []byte
}

// writeFrame writes a length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return ErrFrameTooBig
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// encodeRequest serializes a request body (without the frame header).
func encodeRequest(req request) ([]byte, error) {
	if len(req.Key) > MaxKeyLen {
		return nil, fmt.Errorf("%w: key %d bytes", ErrFrameTooBig, len(req.Key))
	}
	if len(req.Value) > MaxValueLen {
		return nil, fmt.Errorf("%w: value %d bytes", ErrFrameTooBig, len(req.Value))
	}
	buf := make([]byte, 0, 1+8+2+len(req.Key)+4+len(req.Value))
	buf = append(buf, req.Op)
	buf = binary.LittleEndian.AppendUint64(buf, req.Version)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(req.Key)))
	buf = append(buf, req.Key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(req.Value)))
	buf = append(buf, req.Value...)
	return buf, nil
}

// decodeRequest parses a request body.
func decodeRequest(buf []byte) (request, error) {
	var req request
	if len(buf) < 1+8+2 {
		return req, fmt.Errorf("%w: short header", ErrBadFrame)
	}
	req.Op = buf[0]
	req.Version = binary.LittleEndian.Uint64(buf[1:])
	klen := int(binary.LittleEndian.Uint16(buf[9:]))
	p := 11
	if len(buf) < p+klen+4 {
		return req, fmt.Errorf("%w: short key", ErrBadFrame)
	}
	req.Key = buf[p : p+klen]
	p += klen
	vlen := int(binary.LittleEndian.Uint32(buf[p:]))
	p += 4
	if len(buf) < p+vlen {
		return req, fmt.Errorf("%w: short value", ErrBadFrame)
	}
	if vlen > 0 {
		req.Value = buf[p : p+vlen]
	}
	return req, nil
}

// encodeResponse serializes a response body.
func encodeResponse(status uint8, payload []byte) []byte {
	buf := make([]byte, 0, 1+4+len(payload))
	buf = append(buf, status)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return buf
}

// decodeResponse parses a response body.
func decodeResponse(buf []byte) (status uint8, payload []byte, err error) {
	if len(buf) < 5 {
		return 0, nil, fmt.Errorf("%w: short response", ErrBadFrame)
	}
	status = buf[0]
	n := int(binary.LittleEndian.Uint32(buf[1:]))
	if len(buf) < 5+n {
		return 0, nil, fmt.Errorf("%w: short payload", ErrBadFrame)
	}
	return status, buf[5 : 5+n], nil
}

// RangeEntry is one (key, version) hit returned by OpRange.
type RangeEntry struct {
	Key     []byte
	Version uint64
}

// encodeRangeEntries packs range results.
func encodeRangeEntries(entries []RangeEntry) []byte {
	var buf []byte
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Key)))
		buf = append(buf, e.Key...)
		buf = binary.LittleEndian.AppendUint64(buf, e.Version)
	}
	return buf
}

// decodeRangeEntries unpacks range results.
func decodeRangeEntries(buf []byte) ([]RangeEntry, error) {
	var out []RangeEntry
	for p := 0; p < len(buf); {
		if p+2 > len(buf) {
			return nil, ErrBadFrame
		}
		klen := int(binary.LittleEndian.Uint16(buf[p:]))
		p += 2
		if p+klen+8 > len(buf) {
			return nil, ErrBadFrame
		}
		e := RangeEntry{Key: append([]byte(nil), buf[p:p+klen]...)}
		p += klen
		e.Version = binary.LittleEndian.Uint64(buf[p:])
		p += 8
		out = append(out, e)
	}
	return out, nil
}
