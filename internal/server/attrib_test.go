package server

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/metrics"
	"directload/internal/ssd"
)

// attribBackend builds an instrumented Backend over a fresh engine for
// attribution tests.
func attribBackend(t *testing.T) (*Backend, *metrics.Registry) {
	t.Helper()
	dev, err := ssd.NewDevice(ssd.DefaultConfig(256 << 20))
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF: aof.Config{FileSize: 8 << 20, GCThreshold: 0.25}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	reg := metrics.NewRegistry()
	bk := NewBackend(db)
	bk.SetMetrics(reg)
	return bk, reg
}

func TestBackendAttributionSampling(t *testing.T) {
	bk, reg := attribBackend(t)
	bk.SetAttribution(4) // every 4th request measured
	ctx := context.Background()
	val := make([]byte, 4096)

	for i := 0; i < 32; i++ {
		key := []byte(fmt.Sprintf("k-%04d", i))
		if err := bk.Put(ctx, key, 1, val, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		key := []byte(fmt.Sprintf("k-%04d", i))
		if _, err := bk.Get(ctx, key, 1); err != nil {
			t.Fatal(err)
		}
	}

	snap := bk.Attribution()
	if snap.SampleEvery != 4 {
		t.Fatalf("SampleEvery = %d, want 4", snap.SampleEvery)
	}
	byOp := make(map[string]metrics.AttribEntry)
	for _, e := range snap.Entries {
		byOp[e.Op] = e
	}
	for _, op := range []string{"put", "get"} {
		e, ok := byOp[op]
		if !ok {
			t.Fatalf("op %q missing from attribution table: %+v", op, snap.Entries)
		}
		// 64 requests total at 1/4 sampling: each op sees ~8 samples;
		// the interleaving guarantees at least a handful per op.
		if e.Samples < 4 {
			t.Errorf("op %q samples = %d, want >= 4", op, e.Samples)
		}
		if e.AllocBytesPerOp <= 0 {
			t.Errorf("op %q alloc bytes/op = %v, want > 0", op, e.AllocBytesPerOp)
		}
		if e.WallUsPerOp <= 0 {
			t.Errorf("op %q wall us/op = %v, want > 0", op, e.WallUsPerOp)
		}
	}
	// Puts move 4 KiB values; gets copy them back. Both should charge at
	// least a value's worth of allocation per measured request.
	if byOp["put"].AllocBytesPerOp < 1024 {
		t.Errorf("put alloc bytes/op = %v, implausibly small", byOp["put"].AllocBytesPerOp)
	}

	// The sampled deltas also land in the per-op alloc_bytes histogram.
	if got := reg.Histogram("server.req.put.alloc_bytes").Snapshot().Count; got < 4 {
		t.Errorf("server.req.put.alloc_bytes count = %d, want >= 4", got)
	}

	// Disabling drops the table.
	bk.SetAttribution(0)
	if snap := bk.Attribution(); snap.SampleEvery != 0 || len(snap.Entries) != 0 {
		t.Fatalf("attribution after disable = %+v, want zero", snap)
	}
}

func TestBackendAttributionOffByDefault(t *testing.T) {
	bk, reg := attribBackend(t)
	ctx := context.Background()
	if err := bk.Put(ctx, []byte("k"), 1, []byte("v"), false); err != nil {
		t.Fatal(err)
	}
	if snap := bk.Attribution(); len(snap.Entries) != 0 {
		t.Fatalf("attribution recorded while disabled: %+v", snap)
	}
	if got := reg.Histogram("server.req.put.alloc_bytes").Snapshot().Count; got != 0 {
		t.Fatalf("alloc_bytes histogram count = %d while disabled, want 0", got)
	}
}

// TestAttributionOverheadPut20KB is the overhead guard for continuous
// attribution: at the default 1/64 sampling the Put hot path must cost
// < 3% extra ns/op over the instrumented-only baseline. One backend is
// measured with attribution toggled off/on in alternating rounds (same
// engine, same device, same memtable) and the per-mode minimum is
// compared — min-of-rounds cancels GC and page-cache drift that would
// otherwise dwarf the effect being measured.
func TestAttributionOverheadPut20KB(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive overhead guard")
	}
	dev, err := ssd.NewDevice(ssd.DefaultConfig(2 << 30))
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF: aof.Config{FileSize: 32 << 20, GCThreshold: 0.25}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	bk := NewBackend(db)
	bk.SetMetrics(metrics.NewRegistry())

	ctx := context.Background()
	val := make([]byte, 20<<10)
	seq := 0
	round := func(n int) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			key := []byte(fmt.Sprintf("key-%08d", seq))
			seq++
			if err := bk.Put(ctx, key, 1, val, false); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	// GC pauses landing in one side's rounds are the dominant noise on a
	// shared machine; park the collector for the measurement window.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	const perRound = 250
	const rounds = 12
	sampled := false
	measure := func() float64 {
		runtime.GC()
		round(perRound) // warm-up after the GC
		minBase, minAttr := time.Duration(1<<62), time.Duration(1<<62)
		for r := 0; r < rounds; r++ {
			bk.SetAttribution(0)
			if d := round(perRound); d < minBase {
				minBase = d
			}
			bk.SetAttribution(64)
			if d := round(perRound); d < minAttr {
				minAttr = d
			}
			if snap := bk.Attribution(); len(snap.Entries) > 0 && snap.Entries[0].Samples > 0 {
				sampled = true
			}
		}
		base := float64(minBase) / perRound
		attr := float64(minAttr) / perRound
		overhead := (attr - base) / base
		t.Logf("put 20KB: base %.0f ns/op, attributed %.0f ns/op, overhead %.2f%%",
			base, attr, overhead*100)
		return overhead
	}

	// A real >= 3% cost shows up in every attempt; scheduler noise does
	// not. Retry a noisy attempt rather than flaking the suite.
	const attempts = 4
	var overhead float64
	for i := 0; i < attempts; i++ {
		if overhead = measure(); overhead < 0.03 {
			break
		}
	}
	if !sampled {
		t.Fatal("attribution rounds never sampled — the guard measured nothing")
	}
	if overhead >= 0.03 {
		t.Fatalf("1/64 attribution overhead %.2f%% on Put across %d attempts, want < 3%%",
			overhead*100, attempts)
	}
}
