package server

import (
	"context"
	"fmt"
	"testing"

	"directload/internal/metrics"
)

// spansByName indexes a trace's spans; duplicate names collect in order.
func spansByName(recs []metrics.SpanRecord) map[string][]metrics.SpanRecord {
	out := make(map[string][]metrics.SpanRecord)
	for _, r := range recs {
		out[r.Name] = append(out[r.Name], r)
	}
	return out
}

// TestTracePropagation checks the happy path: a client span crosses the
// wire and the server's handler span joins the same trace, parented at
// the client span.
func TestTracePropagation(t *testing.T) {
	reg := metrics.NewRegistry()
	s, _ := startServerReg(t, reg)

	cl, err := Dial(s.Addr().String(), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if !cl.TraceEnabled() {
		t.Fatal("TraceEnabled = false on a v2 connection with default options")
	}

	ctx, end := reg.StartSpan(context.Background(), "test.root")
	sc, ok := metrics.SpanFromContext(ctx)
	if !ok || !sc.Valid() {
		t.Fatal("StartSpan left no span in the context")
	}
	if err := cl.PutContext(ctx, []byte("tk"), 1, []byte("tv"), false); err != nil {
		t.Fatal(err)
	}
	end(nil)

	trace := spansByName(reg.Tracer().Trace(sc.TraceID))
	root := trace["test.root"]
	srv := trace["server.req.put"]
	if len(root) != 1 || len(srv) != 1 {
		t.Fatalf("trace has %d test.root and %d server.req.put spans, want 1 and 1",
			len(root), len(srv))
	}
	if srv[0].TraceID != sc.TraceID {
		t.Fatalf("server span trace = %016x, want %016x", srv[0].TraceID, sc.TraceID)
	}
	if srv[0].ParentID != root[0].SpanID {
		t.Fatalf("server span parent = %016x, want the client span %016x",
			srv[0].ParentID, root[0].SpanID)
	}
}

// TestTraceUntracedRequestsMintNothing checks that plain requests on a
// trace-capable connection — no span in the context — leave no trace
// on the server.
func TestTraceUntracedRequestsMintNothing(t *testing.T) {
	reg := metrics.NewRegistry()
	s, _ := startServerReg(t, reg)
	cl, err := Dial(s.Addr().String(), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.PutContext(context.Background(), []byte("uk"), 1, []byte("uv"), false); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetContext(context.Background(), []byte("uk"), 1); err != nil {
		t.Fatal(err)
	}
	// Engine-internal spans (gc.cycle, qindb.recovery) are fine; what
	// must not appear is a request handler span.
	for _, rec := range reg.Tracer().Spans() {
		if len(rec.Name) >= 7 && rec.Name[:7] == "server." {
			t.Fatalf("untraced request minted a %q span", rec.Name)
		}
	}
}

// TestTraceFallbackClientDisabled checks the negotiation fallback: a v2
// client that declines trace propagation interoperates and the server
// records no spans for its requests even when the context carries one.
func TestTraceFallbackClientDisabled(t *testing.T) {
	reg := metrics.NewRegistry()
	s, _ := startServerReg(t, reg)
	cl, err := Dial(s.Addr().String(), WithMetrics(reg), WithTracePropagation(false))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Proto() != ProtoV2 {
		t.Fatalf("Proto = %d, want v2", cl.Proto())
	}
	if cl.TraceEnabled() {
		t.Fatal("TraceEnabled = true after WithTracePropagation(false)")
	}

	ctx, end := reg.StartSpan(context.Background(), "declined.root")
	sc, _ := metrics.SpanFromContext(ctx)
	if err := cl.PutContext(ctx, []byte("dk"), 1, []byte("dv"), false); err != nil {
		t.Fatal(err)
	}
	end(nil)
	for _, rec := range reg.Tracer().Trace(sc.TraceID) {
		if rec.Name != "declined.root" {
			t.Fatalf("trace leaked a %q span despite disabled propagation", rec.Name)
		}
	}
}

// TestTraceFallbackServerDisabled checks the other direction: a server
// with trace propagation off rejects the feature during hello and the
// client downgrades cleanly.
func TestTraceFallbackServerDisabled(t *testing.T) {
	reg := metrics.NewRegistry()
	s, _ := startServerReg(t, reg)
	s.SetTracePropagation(false)
	cl, err := Dial(s.Addr().String(), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Proto() != ProtoV2 {
		t.Fatalf("Proto = %d, want v2", cl.Proto())
	}
	if cl.TraceEnabled() {
		t.Fatal("TraceEnabled = true though the server declined the feature")
	}
	ctx, end := reg.StartSpan(context.Background(), "srv.declined.root")
	sc, _ := metrics.SpanFromContext(ctx)
	if err := cl.PutContext(ctx, []byte("sk"), 1, []byte("sv"), false); err != nil {
		t.Fatal(err)
	}
	end(nil)
	if got := len(reg.Tracer().Trace(sc.TraceID)); got != 1 {
		t.Fatalf("trace has %d spans, want only the client root", got)
	}
}

// TestTraceV1Interop checks that a v1 client is untouched by the trace
// feature: the hello is skipped entirely, requests work, and a span in
// the context goes nowhere.
func TestTraceV1Interop(t *testing.T) {
	reg := metrics.NewRegistry()
	s, _ := startServerReg(t, reg)
	cl, err := Dial(s.Addr().String(), WithMetrics(reg), WithMaxProtocol(ProtoV1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Proto() != ProtoV1 {
		t.Fatalf("Proto = %d, want v1", cl.Proto())
	}
	if cl.TraceEnabled() {
		t.Fatal("TraceEnabled = true on a v1 connection")
	}
	ctx, end := reg.StartSpan(context.Background(), "v1.root")
	sc, _ := metrics.SpanFromContext(ctx)
	if err := cl.PutContext(ctx, []byte("v1k"), 1, []byte("v1v"), false); err != nil {
		t.Fatal(err)
	}
	got, err := cl.GetContext(ctx, []byte("v1k"), 1)
	if err != nil || string(got) != "v1v" {
		t.Fatalf("v1 Get = %q, %v", got, err)
	}
	end(nil)
	if got := len(reg.Tracer().Trace(sc.TraceID)); got != 1 {
		t.Fatalf("v1 trace has %d spans, want only the client root", got)
	}
}

// TestTraceBatchSubOpSpans checks the batch fan-in: one traced flush
// produces a client flush span, one server batch handler span parented
// at it, and one sub-op span per record parented at the handler.
func TestTraceBatchSubOpSpans(t *testing.T) {
	reg := metrics.NewRegistry()
	s, _ := startServerReg(t, reg)
	cl, err := Dial(s.Addr().String(), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, end := reg.StartSpan(context.Background(), "publish.root")
	sc, _ := metrics.SpanFromContext(ctx)
	batch := cl.Batcher()
	const n = 7
	for i := 0; i < n; i++ {
		if err := batch.Put(ctx, []byte(fmt.Sprintf("bk-%02d", i)), 1, []byte("bv"), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	end(nil)

	trace := spansByName(reg.Tracer().Trace(sc.TraceID))
	flush := trace["client.batch.flush"]
	handler := trace["server.req.batch"]
	subs := trace["server.batch.put"]
	if len(flush) != 1 || len(handler) != 1 {
		t.Fatalf("trace has %d flush and %d handler spans, want 1 and 1",
			len(flush), len(handler))
	}
	if len(subs) != n {
		t.Fatalf("trace has %d server.batch.put spans, want %d", len(subs), n)
	}
	if handler[0].ParentID != flush[0].SpanID {
		t.Fatalf("handler parent = %016x, want the flush span %016x",
			handler[0].ParentID, flush[0].SpanID)
	}
	for _, sub := range subs {
		if sub.ParentID != handler[0].SpanID {
			t.Fatalf("sub-op parent = %016x, want the handler span %016x",
				sub.ParentID, handler[0].SpanID)
		}
	}
}

// TestTraceSlowLogCapture checks that a traced request over threshold
// lands in the server's slow-op log tagged with its trace ID.
func TestTraceSlowLogCapture(t *testing.T) {
	reg := metrics.NewRegistry()
	s, _ := startServerReg(t, reg)
	slow := metrics.NewSlowLog(8, 1) // 1ns: everything qualifies
	s.SetSlowLog(slow)
	cl, err := Dial(s.Addr().String(), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, end := reg.StartSpan(context.Background(), "slow.root")
	sc, _ := metrics.SpanFromContext(ctx)
	if err := cl.PutContext(ctx, []byte("slowk"), 1, []byte("v"), false); err != nil {
		t.Fatal(err)
	}
	end(nil)
	entries := slow.Entries(0)
	if len(entries) == 0 {
		t.Fatal("slow log empty with a 1ns threshold")
	}
	var found bool
	for _, e := range entries {
		if e.Op == "put" && e.Key == "slowk" && e.TraceID == sc.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("no slow entry for put/slowk with trace %016x: %+v", sc.TraceID, entries)
	}
}
