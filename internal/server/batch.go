package server

import (
	"context"
	"fmt"

	"directload/internal/metrics"
)

// Batcher defaults: a flush triggers once either bound is reached.
const (
	defaultBatchMaxOps   = 1024
	defaultBatchMaxBytes = 4 << 20
)

// BatchOpError reports one failed sub-op of a flushed batch. Index is
// the op's position in the order it was added since the last Flush
// returned; Err is a *StatusError, so errors.Is against the engine
// sentinels works per sub-op.
type BatchOpError struct {
	Index int
	Op    BatchOp
	Err   error
}

// BatchError is the aggregate error of a flush whose frame succeeded
// but some sub-ops failed. The untouched sub-ops were still applied —
// one bad op does not poison the batch.
type BatchError struct {
	Ops    int // sub-ops in the failed flush
	Failed []BatchOpError
}

// Error summarizes the partial failure.
func (e *BatchError) Error() string {
	return fmt.Sprintf("qindb client: batch: %d/%d sub-ops failed (first: %v)",
		len(e.Failed), e.Ops, e.Failed[0].Err)
}

// Unwrap exposes the first sub-op error for errors.Is/As chains.
func (e *BatchError) Unwrap() error { return e.Failed[0].Err }

// Batcher accumulates mutations and ships them as OpBatch frames — the
// client-side half of turning thousands of round trips into a handful
// of block-sized frames. It is not safe for concurrent use; give each
// goroutine its own Batcher (they may share the Client).
//
// Add calls auto-flush once the batch reaches its op-count or byte
// bound; Flush sends whatever remains. A flush whose frame succeeds but
// whose sub-ops partially fail returns *BatchError naming the failed
// ops; the rest were applied.
type Batcher struct {
	c        *Client
	maxOps   int
	maxBytes int
	ops      []BatchOp
	bytes    int
}

// Batcher returns an empty batcher with default bounds.
func (c *Client) Batcher() *Batcher {
	return &Batcher{c: c, maxOps: defaultBatchMaxOps, maxBytes: defaultBatchMaxBytes}
}

// SetLimits overrides the auto-flush bounds (values < 1 keep the
// defaults). Byte limits above the protocol's value cap are clamped.
func (b *Batcher) SetLimits(maxOps, maxBytes int) *Batcher {
	if maxOps >= 1 {
		b.maxOps = maxOps
	}
	if maxBytes >= 1 {
		b.maxBytes = maxBytes
	}
	if b.maxBytes > MaxValueLen {
		b.maxBytes = MaxValueLen
	}
	return b
}

// Pending returns the number of sub-ops buffered and not yet flushed.
func (b *Batcher) Pending() int { return len(b.ops) }

// add buffers one sub-op, auto-flushing when a bound trips.
func (b *Batcher) add(ctx context.Context, op BatchOp) error {
	size := 1 + 8 + 2 + len(op.Key) + 4 + len(op.Value)
	if len(b.ops) > 0 && (len(b.ops) >= b.maxOps || b.bytes+size > b.maxBytes) {
		if err := b.Flush(ctx); err != nil {
			return err
		}
	}
	b.ops = append(b.ops, op)
	b.bytes += size
	return nil
}

// Put buffers a put (or dedup put) for the next flush.
func (b *Batcher) Put(ctx context.Context, key []byte, version uint64, value []byte, dedup bool) error {
	op := OpPut
	if dedup {
		op = OpPutDedup
	}
	return b.add(ctx, BatchOp{Op: op, Version: version, Key: key, Value: value})
}

// Del buffers a delete for the next flush.
func (b *Batcher) Del(ctx context.Context, key []byte, version uint64) error {
	return b.add(ctx, BatchOp{Op: OpDel, Version: version, Key: key})
}

// DropVersion buffers a version drop for the next flush.
func (b *Batcher) DropVersion(ctx context.Context, version uint64) error {
	return b.add(ctx, BatchOp{Op: OpDropVersion, Version: version})
}

// Flush ships the buffered sub-ops as one OpBatch frame and clears the
// buffer. It returns nil when every sub-op succeeded, *BatchError when
// the frame landed but sub-ops failed, or the transport error when the
// frame itself did not. Inside a trace the flush records a
// "client.batch.flush" span, which also becomes the parent of the
// server-side handler spans for this frame.
func (b *Batcher) Flush(ctx context.Context) error {
	if len(b.ops) == 0 {
		return nil
	}
	if _, ok := metrics.SpanFromContext(ctx); ok {
		var end func(error)
		ctx, end = b.c.opts.reg.ContinueSpanNote(ctx, "client.batch.flush",
			fmt.Sprintf("ops=%d", len(b.ops)))
		err := b.flush(ctx)
		end(err)
		return err
	}
	return b.flush(ctx)
}

func (b *Batcher) flush(ctx context.Context) error {
	ops := b.ops
	b.ops = nil
	b.bytes = 0
	packed, err := encodeBatch(ops)
	if err != nil {
		return err
	}
	status, payload, err := b.c.do(ctx, request{Op: OpBatch, Version: uint64(len(ops)), Value: packed})
	if err != nil {
		return err
	}
	if err := statusErr(status, payload); err != nil {
		return err
	}
	statuses, err := decodeBatchReply(payload)
	if err != nil {
		return err
	}
	if len(statuses) != len(ops) {
		return fmt.Errorf("%w: batch reply for %d ops answered %d", ErrBadFrame, len(ops), len(statuses))
	}
	var failed []BatchOpError
	for i, st := range statuses {
		if st.status == StatusOK {
			continue
		}
		failed = append(failed, BatchOpError{Index: i, Op: ops[i], Err: statusErr(st.status, st.msg)})
	}
	if len(failed) > 0 {
		return &BatchError{Ops: len(ops), Failed: failed}
	}
	return nil
}
