package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/metrics"
	"directload/internal/ssd"
)

func startServer(t *testing.T) (*Server, *Client) {
	return startServerReg(t, nil)
}

func startServerReg(t *testing.T, reg *metrics.Registry) (*Server, *Client) {
	t.Helper()
	dev, err := ssd.NewDevice(ssd.DefaultConfig(256 << 20))
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF: aof.Config{FileSize: 4 << 20, GCThreshold: 0.25}, Seed: 1,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(db)
	s.SetLogf(nil)
	s.SetMetrics(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Close()
		db.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Close")
		}
	})
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return s, cl
}

func TestPingPutGetDel(t *testing.T) {
	_, cl := startServer(t)
	ctx := context.Background()
	if err := cl.PingContext(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutContext(ctx, []byte("k"), 1, []byte("hello"), false); err != nil {
		t.Fatal(err)
	}
	val, err := cl.GetContext(ctx, []byte("k"), 1)
	if err != nil || string(val) != "hello" {
		t.Fatalf("Get = %q, %v", val, err)
	}
	if err := cl.DelContext(ctx, []byte("k"), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetContext(ctx, []byte("k"), 1); !errors.Is(err, ErrDeleted) {
		t.Fatalf("Get after Del err = %v", err)
	}
	if _, err := cl.GetContext(ctx, []byte("missing"), 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing err = %v", err)
	}
}

func TestDedupOverWire(t *testing.T) {
	_, cl := startServer(t)
	ctx := context.Background()
	if err := cl.PutContext(ctx, []byte("k"), 1, []byte("base"), false); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutContext(ctx, []byte("k"), 2, nil, true); err != nil {
		t.Fatal(err)
	}
	val, err := cl.GetContext(ctx, []byte("k"), 2)
	if err != nil || string(val) != "base" {
		t.Fatalf("dedup Get = %q, %v", val, err)
	}
}

func TestHasAndDropVersion(t *testing.T) {
	_, cl := startServer(t)
	ctx := context.Background()
	cl.PutContext(ctx, []byte("a"), 1, []byte("v"), false)
	cl.PutContext(ctx, []byte("a"), 2, []byte("v"), false)
	ok, err := cl.HasContext(ctx, []byte("a"), 1)
	if err != nil || !ok {
		t.Fatalf("Has = %v, %v", ok, err)
	}
	if err := cl.DropVersionContext(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if ok, _ := cl.HasContext(ctx, []byte("a"), 1); ok {
		t.Fatal("Has should be false after DropVersion")
	}
	if ok, _ := cl.HasContext(ctx, []byte("a"), 2); !ok {
		t.Fatal("v2 should survive")
	}
}

func TestRangeOverWire(t *testing.T) {
	_, cl := startServer(t)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		cl.PutContext(ctx, []byte(fmt.Sprintf("key-%02d", i)), 1, []byte("v"), false)
	}
	entries, _, err := cl.RangeContext(ctx, []byte("key-02"), []byte("key-07"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("Range = %d entries, want 5", len(entries))
	}
	if string(entries[0].Key) != "key-02" || entries[0].Version != 1 {
		t.Fatalf("first entry = %+v", entries[0])
	}
	// Limit applies.
	entries, _, err = cl.RangeContext(ctx, nil, nil, 3)
	if err != nil || len(entries) != 3 {
		t.Fatalf("limited Range = %d, %v", len(entries), err)
	}
}

func TestStatsOverWire(t *testing.T) {
	_, cl := startServer(t)
	ctx := context.Background()
	cl.PutContext(ctx, []byte("k"), 1, bytes.Repeat([]byte{1}, 1000), false)
	st, err := cl.StatsContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine.Puts != 1 || st.Engine.UserWriteBytes != 1001 {
		t.Fatalf("Stats = %+v", st.Engine)
	}
	if st.Conns < 1 {
		t.Fatalf("Conns = %d", st.Conns)
	}
}

func TestLargeValue(t *testing.T) {
	_, cl := startServer(t)
	ctx := context.Background()
	val := bytes.Repeat([]byte{0xAB}, 2<<20)
	if err := cl.PutContext(ctx, []byte("big"), 1, val, false); err != nil {
		t.Fatal(err)
	}
	got, err := cl.GetContext(ctx, []byte("big"), 1)
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("large round-trip failed: %d bytes, %v", len(got), err)
	}
}

func TestConcurrentClients(t *testing.T) {
	s, _ := startServer(t)
	ctx := context.Background()
	addr := s.Addr().String()
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 100; i++ {
				key := []byte(fmt.Sprintf("c%d-k%03d", c, i))
				if err := cl.PutContext(ctx, key, 1, key, false); err != nil {
					errCh <- err
					return
				}
				got, err := cl.GetContext(ctx, key, 1)
				if err != nil || !bytes.Equal(got, key) {
					errCh <- fmt.Errorf("round-trip %s: %v", key, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestMalformedFrameGetsError(t *testing.T) {
	s, _ := startServer(t)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A 2-byte body is too short for any request.
	if err := writeFrame(conn, []byte{OpGet, 0}); err != nil {
		t.Fatal(err)
	}
	frame, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	status, payload, err := decodeResponse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusFailed || len(payload) == 0 {
		t.Fatalf("status = %d, payload = %q", status, payload)
	}
	// The connection stays usable.
	body, _ := encodeRequest(request{Op: OpPing})
	writeFrame(conn, body)
	frame, err = readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if status, payload, _ := decodeResponse(frame); status != StatusOK || string(payload) != "pong" {
		t.Fatal("connection unusable after protocol error")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	if _, err := encodeRequest(request{Op: OpPut, Key: make([]byte, MaxKeyLen+1)}); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversize key err = %v", err)
	}
	if _, err := encodeRequest(request{Op: OpPut, Key: []byte("k"), Value: make([]byte, MaxValueLen+1)}); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversize value err = %v", err)
	}
}

func TestCloseUnblocksServe(t *testing.T) {
	// Covered by the startServer cleanup; this exercises double Close.
	s, _ := startServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("double Close should be a no-op")
	}
}

// Property: request encode/decode round-trips arbitrary payloads.
func TestQuickProtocolRoundTrip(t *testing.T) {
	f := func(op uint8, version uint64, key, value []byte) bool {
		if len(key) > MaxKeyLen || len(value) > 1<<16 {
			return true
		}
		req := request{Op: op, Version: version, Key: key, Value: value}
		body, err := encodeRequest(req)
		if err != nil {
			return false
		}
		got, err := decodeRequest(body)
		if err != nil {
			return false
		}
		return got.Op == op && got.Version == version &&
			bytes.Equal(got.Key, key) && bytes.Equal(got.Value, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOpMetricsRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry()
	_, cl := startServerReg(t, reg)
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		key := []byte(fmt.Sprintf("mk-%02d", i))
		if err := cl.PutContext(ctx, key, 1, []byte("payload"), false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.GetContext(ctx, []byte("mk-00"), 1); err != nil {
		t.Fatal(err)
	}

	m, err := cl.MetricsContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Engine metrics flow through: histogram count matches the puts.
	putLat, ok := m["qindb.put.latency_us"].(map[string]any)
	if !ok || putLat["count"].(float64) != 10 {
		t.Fatalf("qindb.put.latency_us = %#v", m["qindb.put.latency_us"])
	}
	if putLat["p99"].(float64) > putLat["max"].(float64) {
		t.Fatalf("inconsistent snapshot over the wire: %#v", putLat)
	}
	// Server per-opcode counters.
	if got, ok := m["server.req.put"].(float64); !ok || got != 10 {
		t.Fatalf("server.req.put = %#v", m["server.req.put"])
	}
	if got, ok := m["server.req.get"].(float64); !ok || got != 1 {
		t.Fatalf("server.req.get = %#v", m["server.req.get"])
	}
	// AOF metrics propagated through the engine's store.
	if got, ok := m["aof.appends"].(float64); !ok || got < 10 {
		t.Fatalf("aof.appends = %#v", m["aof.appends"])
	}
	// Software WA is present and finite (>= 1: the AOF framing adds
	// bytes on top of the user payload).
	wa, ok := m["qindb.software_wa"].(float64)
	if !ok || wa < 1 || wa > 100 {
		t.Fatalf("qindb.software_wa = %#v", m["qindb.software_wa"])
	}
	// Connection gauge counts this client.
	if got, ok := m["server.conns.active"].(float64); !ok || got < 1 {
		t.Fatalf("server.conns.active = %#v", m["server.conns.active"])
	}
}

func TestOpMetricsUninstrumented(t *testing.T) {
	_, cl := startServer(t)
	ctx := context.Background()
	m, err := cl.MetricsContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 0 {
		t.Fatalf("uninstrumented server returned %v", m)
	}
}
