package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"directload/internal/core"
	"directload/internal/metrics"
)

// Backend executes engine operations on behalf of a transport listener.
// It is the transport-agnostic half of the server: every front door —
// the native v1/v2 binary listener in this package, the RESP listener
// in internal/resp — funnels its requests through one Backend, so all
// protocols share one engine, one set of server.* metrics, one slowlog,
// one read SLO, and one trace timeline. The wire encodings stay with
// their listeners; the Backend deals in keys, versions, values and
// engine errors (core.ErrNotFound, core.ErrDeleted, ...), which each
// transport maps onto its own status vocabulary (StatusError on the
// binary wire, nil bulk strings and -ERR replies on RESP).
//
// A Backend is safe for concurrent use by any number of listeners.
type Backend struct {
	db *core.DB

	rangeCap int
	conns    atomic.Int64 // connections across every attached listener

	slow    atomic.Pointer[metrics.SlowLog]
	readSLO atomic.Pointer[metrics.SLO]

	attr    atomic.Pointer[metrics.AttribTable]
	attrCtr atomic.Uint64

	reg *metrics.Registry
	met serverMetrics
}

// NewBackend wraps an engine for transport-agnostic execution. The
// caller keeps ownership of db and must close it after every listener
// using the backend has stopped.
func NewBackend(db *core.DB) *Backend {
	return &Backend{db: db, rangeCap: 4096}
}

// SetMetrics attaches a registry for the per-opcode request counters
// and latency histograms (exported via OpMetrics and, in qindbd, HTTP).
// Call before serving; nil leaves the backend uninstrumented.
func (b *Backend) SetMetrics(reg *metrics.Registry) {
	b.reg = reg
	if reg == nil {
		b.met = serverMetrics{}
		return
	}
	for op := OpPut; op <= opMax; op++ {
		name := opNames[op]
		b.met.reqs[op] = reg.Counter("server.req." + name)
		b.met.lat[op] = reg.Histogram("server.req." + name + ".latency_us")
		b.met.allocB[op] = reg.Histogram("server.req." + name + ".alloc_bytes")
	}
	b.met.badReqs = reg.Counter("server.req.bad")
	b.met.conns = reg.Gauge("server.conns.active")
	b.met.inflight = reg.Gauge("server.pipeline.inflight")
	b.met.batchOps = reg.Counter("server.batch.ops")
}

// SetSlowLog attaches a slow-op log; every executed request whose
// wall-clock latency reaches the log's threshold is recorded with its
// opcode, key prefix, and trace ID. Nil detaches. Safe at runtime.
func (b *Backend) SetSlowLog(l *metrics.SlowLog) {
	b.slow.Store(l)
}

// SlowLog returns the attached slow-op log (nil when none).
func (b *Backend) SlowLog() *metrics.SlowLog {
	return b.slow.Load()
}

// SetReadSLO attaches a read-availability SLO tracker: every executed
// Get feeds it one event — good when the value was served, bad on
// not-found, deleted or failure. Nil detaches. Safe at runtime.
func (b *Backend) SetReadSLO(slo *metrics.SLO) {
	b.readSLO.Store(slo)
}

// SetAttribution enables sampled per-opcode resource attribution: one
// request in every is measured (alloc bytes/objects and, on linux,
// thread CPU time) and its delta charged to the opcode, feeding the
// /debug/attrib table and the server.req.<op>.alloc_bytes histograms.
// every <= 0 disables. Safe at runtime; the table resets on re-enable.
// Because the table hangs off the Backend, it covers every front door —
// native v1/v2 and RESP traffic land in one table.
func (b *Backend) SetAttribution(every int) {
	if every <= 0 {
		b.attr.Store(nil)
		return
	}
	b.attr.Store(metrics.NewAttribTable(every))
}

// Attribution snapshots the per-opcode resource table (zero snapshot
// when attribution is off).
func (b *Backend) Attribution() metrics.AttribSnapshot {
	return b.attr.Load().Snapshot()
}

// ConnOpened notes one transport connection coming up; listeners call
// it on accept so the server.conns.active gauge and StatsReply.Conns
// count every front door, not just the native one.
func (b *Backend) ConnOpened() {
	b.conns.Add(1)
	b.met.conns.Add(1)
}

// ConnClosed undoes ConnOpened.
func (b *Backend) ConnClosed() {
	b.conns.Add(-1)
	b.met.conns.Add(-1)
}

// begin starts the per-request instrumentation every transport shares:
// a handler span when ctx carries a trace, the wall-clock timer behind
// the latency histogram, the per-opcode counter, the read SLO and the
// slowlog. The returned done must be called exactly once with the
// request's key and outcome.
func (b *Backend) begin(ctx context.Context, op uint8) (context.Context, func(key []byte, err error)) {
	sc, traced := metrics.SpanFromContext(ctx)
	var end func(error)
	if traced {
		ctx, end = b.reg.ContinueSpan(ctx, "server.req."+opNames[op])
	}
	// Sampled resource attribution: every Nth request across all front
	// doors is measured and its alloc/CPU delta charged to the opcode.
	var res *metrics.ResourceSample
	attr := b.attr.Load()
	if attr != nil && b.attrCtr.Add(1)%uint64(attr.SampleEvery()) == 0 {
		res = metrics.BeginResourceSample()
	}
	start := time.Now()
	return ctx, func(key []byte, err error) {
		elapsed := time.Since(start)
		if res != nil {
			// End before the shared instrumentation below, so the bill
			// covers the request's work, not the metrics writes.
			d := res.End()
			attr.Charge(opNames[op], d)
			b.met.allocB[op].Observe(float64(d.AllocBytes))
		}
		b.met.reqs[op].Inc()
		b.met.lat[op].Observe(float64(elapsed) / float64(time.Microsecond))
		if op == OpGet {
			b.readSLO.Load().Record(err == nil)
		}
		slow := b.slow.Load()
		if end == nil && slow == nil {
			return
		}
		var msg string
		if err != nil {
			msg = err.Error()
		}
		if end != nil {
			end(err)
		}
		slow.Maybe(opNames[op], key, elapsed, sc.TraceID, msg)
	}
}

// Ping answers liveness; it exists so probes hit the same
// instrumentation path as real traffic.
func (b *Backend) Ping(ctx context.Context) error {
	_, done := b.begin(ctx, OpPing)
	done(nil, nil)
	return nil
}

// Put stores value under (key, version); dedup records a
// value-stripped entry whose payload lives in an older version.
func (b *Backend) Put(ctx context.Context, key []byte, version uint64, value []byte, dedup bool) error {
	op := OpPut
	if dedup {
		op = OpPutDedup
	}
	_, done := b.begin(ctx, op)
	_, err := b.db.Put(key, version, value, dedup)
	done(key, err)
	return err
}

// Get fetches the value at (key, version), following dedup traceback.
// The error is an engine sentinel (core.ErrNotFound, core.ErrDeleted)
// or an engine failure; transports map it to their wire vocabulary.
func (b *Backend) Get(ctx context.Context, key []byte, version uint64) ([]byte, error) {
	_, done := b.begin(ctx, OpGet)
	val, _, err := b.db.Get(key, version)
	done(key, err)
	if err != nil {
		return nil, err
	}
	return val, nil
}

// Del marks (key, version) deleted.
func (b *Backend) Del(ctx context.Context, key []byte, version uint64) error {
	_, done := b.begin(ctx, OpDel)
	_, err := b.db.Del(key, version)
	done(key, err)
	return err
}

// DropVersion retires a whole data version.
func (b *Backend) DropVersion(ctx context.Context, version uint64) error {
	_, done := b.begin(ctx, OpDropVersion)
	_, _, err := b.db.DropVersion(version)
	done(nil, err)
	return err
}

// Has reports whether (key, version) exists and is live.
func (b *Backend) Has(ctx context.Context, key []byte, version uint64) (bool, error) {
	_, done := b.begin(ctx, OpHas)
	ok := b.db.Has(key, version)
	done(key, nil)
	return ok, nil
}

// Range lists newest-live (key, version) pairs in [from, to). A limit
// <= 0 selects the backend default; positive limits clamp to it. The
// second return value is the limit actually applied.
func (b *Backend) Range(ctx context.Context, from, to []byte, limit int) ([]RangeEntry, int, error) {
	_, done := b.begin(ctx, OpRange)
	if limit <= 0 || limit > b.rangeCap {
		limit = b.rangeCap
	}
	var entries []RangeEntry
	b.db.Range(from, to, func(key []byte, ver uint64) bool {
		entries = append(entries, RangeEntry{Key: append([]byte(nil), key...), Version: ver})
		return len(entries) < limit
	})
	done(from, nil)
	return entries, limit, nil
}

// Stats reports engine statistics plus the connection count across
// every attached listener.
func (b *Backend) Stats(ctx context.Context) (StatsReply, error) {
	_, done := b.begin(ctx, OpStats)
	out := StatsReply{Engine: b.db.Stats(), Conns: int(b.conns.Load())}
	done(nil, nil)
	return out, nil
}

// MetricsJSON snapshots the attached registry as JSON ("{}" when the
// backend runs uninstrumented).
func (b *Backend) MetricsJSON(ctx context.Context) ([]byte, error) {
	_, done := b.begin(ctx, OpMetrics)
	var payload []byte
	var err error
	if b.reg == nil {
		payload = []byte("{}")
	} else {
		payload, err = json.Marshal(b.reg)
	}
	done(nil, err)
	return payload, err
}

// MetricsSnapshot returns the registry's typed snapshot, the source the
// RESP INFO command renders from (nil registry returns nil).
func (b *Backend) MetricsSnapshot() map[string]any {
	if b.reg == nil {
		return nil
	}
	return b.reg.Snapshot()
}

// Versions lists the engine's live data versions in ascending order.
func (b *Backend) Versions() []uint64 {
	return b.db.Versions()
}

// KeyCount reports the live keys in one version (RESP DBSIZE and the
// INFO Keyspace section read it).
func (b *Backend) KeyCount(version uint64) int {
	return b.db.KeyCount(version)
}

// BatchResult is the outcome of one sub-op of an executed batch: a nil
// Err, an engine sentinel, or an engine failure.
type BatchResult struct {
	Err error
}

// errNotBatchable rejects sub-ops outside the mutation set.
var errNotBatchable = errors.New("op not batchable")

// Batch applies sub-ops in one instrumented server.req.batch pass with
// the native wire's semantics: failures are reported individually and
// do not poison the rest of the frame. Inside a trace each sub-op
// records its own "server.batch.<op>" span parented under the batch
// handler's span.
func (b *Backend) Batch(ctx context.Context, ops []BatchOp) []BatchResult {
	ctx, done := b.begin(ctx, OpBatch)
	results := b.applyBatch(ctx, ops)
	done(nil, nil)
	return results
}

// AtomicBatch is the all-or-nothing flavor the RESP front door commits
// MULTI/EXEC queues (and MSET) through: every sub-op is validated
// against the protocol limits before any is applied, so a rejected
// batch leaves no partial writes. Validation failures return the error
// with the engine untouched. Once validation passes the sub-ops are
// applied in one pass exactly like Batch — an engine fault mid-batch is
// reported per-op in the results (Redis EXEC semantics: runtime errors
// do not roll back), with err aggregating them.
func (b *Backend) AtomicBatch(ctx context.Context, ops []BatchOp) ([]BatchResult, error) {
	for i, op := range ops {
		if err := validateBatchOp(op); err != nil {
			return nil, fmt.Errorf("sub-op %d: %w", i, err)
		}
	}
	ctx, done := b.begin(ctx, OpBatch)
	results := b.applyBatch(ctx, ops)
	var errs []error
	for i, r := range results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("sub-op %d: %w", i, r.Err))
		}
	}
	err := errors.Join(errs...)
	done(nil, err)
	return results, err
}

// validateBatchOp enforces the protocol-level invariants a sub-op must
// satisfy before AtomicBatch may touch the engine.
func validateBatchOp(op BatchOp) error {
	if !batchable(op.Op) {
		return errNotBatchable
	}
	if op.Op != OpDropVersion && len(op.Key) == 0 {
		return core.ErrEmptyKey
	}
	if len(op.Key) > MaxKeyLen {
		return fmt.Errorf("%w: key %d bytes", ErrFrameTooBig, len(op.Key))
	}
	if len(op.Value) > MaxValueLen {
		return fmt.Errorf("%w: value %d bytes", ErrFrameTooBig, len(op.Value))
	}
	return nil
}

// applyBatch executes sub-ops under an already-begun batch frame.
func (b *Backend) applyBatch(ctx context.Context, ops []BatchOp) []BatchResult {
	_, traced := metrics.SpanFromContext(ctx)
	results := make([]BatchResult, len(ops))
	for i, op := range ops {
		if traced && int(op.Op) < len(opNames) {
			_, endSub := b.reg.ContinueSpan(ctx, "server.batch."+opNames[op.Op])
			err := b.execBatchOp(op)
			endSub(err)
			results[i] = BatchResult{Err: err}
			continue
		}
		results[i] = BatchResult{Err: b.execBatchOp(op)}
	}
	b.met.batchOps.Add(int64(len(ops)))
	return results
}

// execBatchOp runs one batched sub-op against the store.
func (b *Backend) execBatchOp(op BatchOp) error {
	var err error
	switch op.Op {
	case OpPut, OpPutDedup:
		_, err = b.db.Put(op.Key, op.Version, op.Value, op.Op == OpPutDedup)
	case OpDel:
		_, err = b.db.Del(op.Key, op.Version)
	case OpDropVersion:
		_, _, err = b.db.DropVersion(op.Version)
	default:
		err = errNotBatchable
	}
	return err
}
