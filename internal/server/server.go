package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"directload/internal/core"
	"directload/internal/metrics"
)

// defaultMaxInFlight bounds concurrent dispatch per v2 connection when
// the operator does not configure one.
const defaultMaxInFlight = 64

// maxCoalesce caps how many response bytes the v2 writer accumulates
// before forcing a write, bounding both latency and buffer growth.
const maxCoalesce = 64 << 10

// StatsReply is the JSON payload of OpStats.
type StatsReply struct {
	Engine core.Stats `json:"engine"`
	Conns  int        `json:"conns"`
}

// Server exposes one QinDB engine on a TCP listener, one goroutine per
// connection. A v1 connection is handled strictly in order; after a v2
// hello the connection switches to pipelined mode, dispatching up to
// MaxInFlight requests concurrently while a dedicated writer goroutine
// serializes responses back onto the wire.
type Server struct {
	db *core.DB

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]bool
	closed   bool
	logf     func(format string, args ...any)
	rangeCap int

	// Tuning knobs, atomic so they may be adjusted while serving.
	// maxInFlight and maxProto apply to connections accepted (or, for
	// maxInFlight, upgraded to v2) after the change; the deadlines
	// apply from each connection's next frame.
	maxInFlight  atomic.Int32
	readTimeout  atomic.Int64 // nanoseconds; 0 disables
	writeTimeout atomic.Int64 // nanoseconds; 0 disables
	maxProto     atomic.Int32

	reg *metrics.Registry
	met serverMetrics
}

// serverMetrics holds per-opcode request counters and wall-clock latency
// histograms, indexed by opcode. All handles nil without a registry.
type serverMetrics struct {
	reqs     [opMax + 1]*metrics.Counter
	lat      [opMax + 1]*metrics.Histogram
	badReqs  *metrics.Counter
	conns    *metrics.Gauge
	inflight *metrics.Gauge   // server.pipeline.inflight: requests being dispatched
	batchOps *metrics.Counter // server.batch.ops: sub-ops applied via OpBatch
}

// SetMetrics attaches a registry (exported via OpMetrics and, in qindbd,
// HTTP). Call before Serve; nil leaves the server uninstrumented.
func (s *Server) SetMetrics(reg *metrics.Registry) {
	s.reg = reg
	if reg == nil {
		s.met = serverMetrics{}
		return
	}
	for op := OpPut; op <= opMax; op++ {
		name := opNames[op]
		s.met.reqs[op] = reg.Counter("server.req." + name)
		s.met.lat[op] = reg.Histogram("server.req." + name + ".latency_us")
	}
	s.met.badReqs = reg.Counter("server.req.bad")
	s.met.conns = reg.Gauge("server.conns.active")
	s.met.inflight = reg.Gauge("server.pipeline.inflight")
	s.met.batchOps = reg.Counter("server.batch.ops")
}

// New wraps an engine. The caller keeps ownership of db and must close
// it after the server stops.
func New(db *core.DB) *Server {
	s := &Server{
		db:       db,
		conns:    make(map[net.Conn]bool),
		logf:     log.Printf,
		rangeCap: 4096,
	}
	s.maxInFlight.Store(defaultMaxInFlight)
	s.maxProto.Store(MaxProto)
	return s
}

// SetLogf replaces the server's logger (nil silences it).
func (s *Server) SetLogf(logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
}

// SetMaxInFlight bounds concurrent dispatch per v2 connection — the
// backpressure knob: once a connection has n requests being served, the
// server stops reading from it until responses drain. Values < 1 reset
// the default. Safe at runtime; applies to connections upgraded after
// the call.
func (s *Server) SetMaxInFlight(n int) {
	if n < 1 {
		n = defaultMaxInFlight
	}
	s.maxInFlight.Store(int32(n))
}

// SetTimeouts installs per-frame read and write deadlines (zero
// disables either). The read deadline doubles as an idle timeout: a
// connection that sends nothing for `read` is torn down. Safe at
// runtime; applies from each connection's next frame.
func (s *Server) SetTimeouts(read, write time.Duration) {
	s.readTimeout.Store(int64(read))
	s.writeTimeout.Store(int64(write))
}

// SetMaxProtocol caps the protocol version the server negotiates —
// SetMaxProtocol(ProtoV1) makes it behave like a legacy in-order server
// (useful for interop testing and staged rollouts). Safe at runtime;
// applies to hellos received after the call.
func (s *Server) SetMaxProtocol(v int) {
	if v < ProtoV1 || v > MaxProto {
		v = MaxProto
	}
	s.maxProto.Store(int32(v))
}

// Serve accepts connections on ln until Close. It returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr ("host:port", port 0 for ephemeral) and
// serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and tears down open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// handle serves one connection, starting in v1 (in-order) mode. A
// successful OpHello hands the connection over to the pipelined v2
// loop.
func (s *Server) handle(conn net.Conn) {
	s.met.conns.Add(1)
	defer s.met.conns.Add(-1)
	defer s.dropConn(conn)
	br := bufio.NewReader(conn)
	for {
		if rt := time.Duration(s.readTimeout.Load()); rt > 0 {
			conn.SetReadDeadline(time.Now().Add(rt))
		}
		frame, err := readFrame(br)
		if err != nil {
			return // EOF or teardown
		}
		req, err := decodeRequest(frame)
		var resp []byte
		switch {
		case err != nil:
			s.met.badReqs.Inc()
			resp = encodeResponse(StatusFailed, []byte(err.Error()))
		case req.Op == OpHello:
			accepted := s.negotiate(req)
			resp = encodeResponse(StatusOK, []byte{byte(accepted)})
			if err := s.writeResp(conn, resp); err != nil {
				return
			}
			if accepted >= ProtoV2 {
				s.handleV2(conn, br)
				return
			}
			continue
		default:
			resp = s.dispatch(req, ProtoV1)
		}
		if err := s.writeResp(conn, resp); err != nil {
			return
		}
	}
}

// writeResp writes one v1 response frame under the write deadline.
func (s *Server) writeResp(conn net.Conn, resp []byte) error {
	if wt := time.Duration(s.writeTimeout.Load()); wt > 0 {
		conn.SetWriteDeadline(time.Now().Add(wt))
	}
	return writeFrame(conn, resp)
}

// negotiate picks the protocol version for a hello request.
func (s *Server) negotiate(req request) int {
	accepted := int(req.Version)
	if mp := int(s.maxProto.Load()); accepted > mp {
		accepted = mp
	}
	if accepted < ProtoV1 {
		accepted = ProtoV1
	}
	return accepted
}

// seqResp pairs a response body with the sequence number it answers.
type seqResp struct {
	seq  uint32
	body []byte
}

// handleV2 runs the pipelined loop: the reader admits up to maxInFlight
// requests (the backpressure gate — beyond that it stops reading, which
// pushes back through TCP flow control), each dispatched on its own
// goroutine; a single writer goroutine serializes the out-of-order
// completions back onto the wire, coalescing whatever has accumulated
// into one write per syscall.
func (s *Server) handleV2(conn net.Conn, br *bufio.Reader) {
	maxInFlight := int(s.maxInFlight.Load())
	respCh := make(chan seqResp, maxInFlight)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		var werr error
		var buf []byte
		for r := range respCh {
			if werr != nil {
				continue // conn is dead; drain so workers never block
			}
			buf = appendFrameSeq(buf[:0], r.seq, r.body)
		coalesce:
			for len(buf) < maxCoalesce {
				select {
				case r, ok := <-respCh:
					if !ok {
						break coalesce
					}
					buf = appendFrameSeq(buf, r.seq, r.body)
				default:
					break coalesce
				}
			}
			if wt := time.Duration(s.writeTimeout.Load()); wt > 0 {
				conn.SetWriteDeadline(time.Now().Add(wt))
			}
			if _, werr = conn.Write(buf); werr != nil {
				conn.Close() // unblock the reader
			}
		}
	}()

	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup
	for {
		if rt := time.Duration(s.readTimeout.Load()); rt > 0 {
			conn.SetReadDeadline(time.Now().Add(rt))
		}
		seq, body, err := readFrameSeq(br)
		if err != nil {
			break
		}
		req, derr := decodeRequest(body)
		sem <- struct{}{}
		s.met.inflight.Add(1)
		wg.Add(1)
		go func(seq uint32, req request, derr error) {
			defer wg.Done()
			var resp []byte
			if derr != nil {
				s.met.badReqs.Inc()
				resp = encodeResponse(StatusFailed, []byte(derr.Error()))
			} else {
				resp = s.dispatch(req, ProtoV2)
			}
			// Decrement before queueing the response so the gauge
			// never reads >0 after the client has seen every reply.
			s.met.inflight.Add(-1)
			respCh <- seqResp{seq: seq, body: resp}
			<-sem
		}(seq, req, derr)
	}
	wg.Wait()
	close(respCh)
	<-writerDone
}

// dispatch executes one request against the engine, timing it with the
// wall clock (the client-visible latency, unlike the engine's simulated
// device cost).
func (s *Server) dispatch(req request, proto int) []byte {
	if req.Op < OpPut || req.Op > opMax || req.Op == OpHello {
		s.met.badReqs.Inc()
		return encodeResponse(StatusFailed, []byte("unknown op"))
	}
	start := time.Now()
	resp := s.dispatchOp(req, proto)
	s.met.reqs[req.Op].Inc()
	s.met.lat[req.Op].Observe(float64(time.Since(start)) / float64(time.Microsecond))
	return resp
}

func (s *Server) dispatchOp(req request, proto int) []byte {
	switch req.Op {
	case OpPing:
		return encodeResponse(StatusOK, []byte("pong"))
	case OpPut, OpPutDedup:
		_, err := s.db.Put(req.Key, req.Version, req.Value, req.Op == OpPutDedup)
		return statusOnly(err)
	case OpGet:
		val, _, err := s.db.Get(req.Key, req.Version)
		if err != nil {
			return errResponse(err)
		}
		return encodeResponse(StatusOK, val)
	case OpDel:
		_, err := s.db.Del(req.Key, req.Version)
		return statusOnly(err)
	case OpDropVersion:
		_, _, err := s.db.DropVersion(req.Version)
		return statusOnly(err)
	case OpHas:
		if s.db.Has(req.Key, req.Version) {
			return encodeResponse(StatusOK, []byte{1})
		}
		return encodeResponse(StatusOK, []byte{0})
	case OpStats:
		s.mu.Lock()
		conns := len(s.conns)
		s.mu.Unlock()
		payload, err := json.Marshal(StatsReply{Engine: s.db.Stats(), Conns: conns})
		if err != nil {
			return errResponse(err)
		}
		return encodeResponse(StatusOK, payload)
	case OpRange:
		// Key = from, Value = exclusive upper bound, Version = limit;
		// limit <= 0 selects the server default (rangeCap), positive
		// limits clamp to it.
		limit := int(int64(req.Version))
		if limit <= 0 || limit > s.rangeCap {
			limit = s.rangeCap
		}
		var entries []RangeEntry
		s.db.Range(req.Key, req.Value, func(key []byte, ver uint64) bool {
			entries = append(entries, RangeEntry{Key: append([]byte(nil), key...), Version: ver})
			return len(entries) < limit
		})
		if proto >= ProtoV2 {
			return encodeResponse(StatusOK, encodeRangeReply(limit, entries))
		}
		return encodeResponse(StatusOK, encodeRangeEntries(entries))
	case OpBatch:
		return s.dispatchBatch(req)
	case OpMetrics:
		if s.reg == nil {
			return encodeResponse(StatusOK, []byte("{}"))
		}
		payload, err := json.Marshal(s.reg)
		if err != nil {
			return errResponse(err)
		}
		return encodeResponse(StatusOK, payload)
	default:
		return encodeResponse(StatusFailed, []byte("unknown op"))
	}
}

// dispatchBatch applies the sub-ops of one OpBatch frame in one pass.
// Sub-op failures are reported individually; the frame itself succeeds
// unless it is malformed.
func (s *Server) dispatchBatch(req request) []byte {
	ops, err := decodeBatch(req.Value, int(req.Version))
	if err != nil {
		s.met.badReqs.Inc()
		return encodeResponse(StatusFailed, []byte(err.Error()))
	}
	statuses := make([]subStatus, len(ops))
	for i, op := range ops {
		var err error
		switch op.Op {
		case OpPut, OpPutDedup:
			_, err = s.db.Put(op.Key, op.Version, op.Value, op.Op == OpPutDedup)
		case OpDel:
			_, err = s.db.Del(op.Key, op.Version)
		case OpDropVersion:
			_, _, err = s.db.DropVersion(op.Version)
		default:
			err = errors.New("op not batchable")
		}
		statuses[i] = subStatusOf(err)
	}
	s.met.batchOps.Add(int64(len(ops)))
	return encodeResponse(StatusOK, encodeBatchReply(statuses))
}

// subStatusOf maps a sub-op error onto its wire status.
func subStatusOf(err error) subStatus {
	if err == nil {
		return subStatus{status: StatusOK}
	}
	return subStatus{status: statusCode(err), msg: []byte(err.Error())}
}

// statusCode maps an engine error onto a wire status byte.
func statusCode(err error) uint8 {
	switch {
	case errors.Is(err, core.ErrNotFound):
		return StatusNotFound
	case errors.Is(err, core.ErrDeleted):
		return StatusDeleted
	default:
		return StatusFailed
	}
}

func statusOnly(err error) []byte {
	if err != nil {
		return errResponse(err)
	}
	return encodeResponse(StatusOK, nil)
}

func errResponse(err error) []byte {
	return encodeResponse(statusCode(err), []byte(err.Error()))
}
