package server

import (
	"encoding/json"
	"errors"
	"log"
	"net"
	"sync"

	"directload/internal/core"
)

// StatsReply is the JSON payload of OpStats.
type StatsReply struct {
	Engine core.Stats `json:"engine"`
	Conns  int        `json:"conns"`
}

// Server exposes one QinDB engine on a TCP listener. One goroutine per
// connection; requests on a connection are processed in order.
type Server struct {
	db *core.DB

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]bool
	closed   bool
	logf     func(format string, args ...any)
	rangeCap int
}

// New wraps an engine. The caller keeps ownership of db and must close
// it after the server stops.
func New(db *core.DB) *Server {
	return &Server{
		db:       db,
		conns:    make(map[net.Conn]bool),
		logf:     log.Printf,
		rangeCap: 4096,
	}
}

// SetLogf replaces the server's logger (nil silences it).
func (s *Server) SetLogf(logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
}

// Serve accepts connections on ln until Close. It returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr ("host:port", port 0 for ephemeral) and
// serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and tears down open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

func (s *Server) handle(conn net.Conn) {
	defer s.dropConn(conn)
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return // EOF or teardown
		}
		req, err := decodeRequest(frame)
		var resp []byte
		if err != nil {
			resp = encodeResponse(StatusError, []byte(err.Error()))
		} else {
			resp = s.dispatch(req)
		}
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// dispatch executes one request against the engine.
func (s *Server) dispatch(req request) []byte {
	switch req.Op {
	case OpPing:
		return encodeResponse(StatusOK, []byte("pong"))
	case OpPut, OpPutDedup:
		_, err := s.db.Put(req.Key, req.Version, req.Value, req.Op == OpPutDedup)
		return statusOnly(err)
	case OpGet:
		val, _, err := s.db.Get(req.Key, req.Version)
		if err != nil {
			return errResponse(err)
		}
		return encodeResponse(StatusOK, val)
	case OpDel:
		_, err := s.db.Del(req.Key, req.Version)
		return statusOnly(err)
	case OpDropVersion:
		_, _, err := s.db.DropVersion(req.Version)
		return statusOnly(err)
	case OpHas:
		if s.db.Has(req.Key, req.Version) {
			return encodeResponse(StatusOK, []byte{1})
		}
		return encodeResponse(StatusOK, []byte{0})
	case OpStats:
		s.mu.Lock()
		conns := len(s.conns)
		s.mu.Unlock()
		payload, err := json.Marshal(StatsReply{Engine: s.db.Stats(), Conns: conns})
		if err != nil {
			return errResponse(err)
		}
		return encodeResponse(StatusOK, payload)
	case OpRange:
		// Key = from, Value = exclusive upper bound, Version = limit.
		limit := int(req.Version)
		if limit <= 0 || limit > s.rangeCap {
			limit = s.rangeCap
		}
		var entries []RangeEntry
		s.db.Range(req.Key, req.Value, func(key []byte, ver uint64) bool {
			entries = append(entries, RangeEntry{Key: append([]byte(nil), key...), Version: ver})
			return len(entries) < limit
		})
		return encodeResponse(StatusOK, encodeRangeEntries(entries))
	default:
		return encodeResponse(StatusError, []byte("unknown op"))
	}
}

func statusOnly(err error) []byte {
	if err != nil {
		return errResponse(err)
	}
	return encodeResponse(StatusOK, nil)
}

func errResponse(err error) []byte {
	status := StatusError
	switch {
	case errors.Is(err, core.ErrNotFound):
		status = StatusNotFound
	case errors.Is(err, core.ErrDeleted):
		status = StatusDeleted
	}
	return encodeResponse(status, []byte(err.Error()))
}
